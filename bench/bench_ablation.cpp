// T-ABLATE — pipeline ablations for the design choices DESIGN.md calls
// out: §3.1 CSI, §4.2 straightening (fall-through layout), the IR
// peephole pass, and Fig.-5 subsumption. Each is toggled independently
// and measured end-to-end in SIMD cycles.
#include "bench_util.hpp"

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/ir/build.hpp"
#include "msc/ir/passes.hpp"
#include "msc/ir/peephole.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;
constexpr std::uint64_t kSeed = 61;

std::int64_t run_cycles(const driver::Compiled& compiled,
                        const ir::StateGraph& graph, core::ConvertOptions copts,
                        codegen::CodegenOptions gopts) {
  auto conv = core::meta_state_convert(graph, kCost, copts);
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, gopts);
  mimd::RunConfig cfg;
  cfg.nprocs = 16;
  auto m_ptr = simd::make_machine(prog, kCost, cfg);
  simd::SimdMachine& m = *m_ptr;
  driver::seed_machine(m, compiled, cfg, kSeed);
  m.run();
  return m.stats().control_cycles;
}

void report() {
  std::printf("== T-ABLATE: what each pipeline stage buys (SIMD cycles, "
              "16 PEs) ==\n");

  Table t({"kernel", "full", "-peephole", "-csi", "-straighten", "-all"},
          {18, 9, 12, 9, 13, 9});
  for (const char* name :
       {"listing1", "listing3", "branchy4", "loopmix", "floatmix",
        "barrier_pipeline"}) {
    const auto& k = workload::kernel(name);
    auto compiled = driver::compile(k.source);  // peephole applied
    // Rebuild the graph without peephole for that ablation.
    ir::StateGraph raw =
        ir::build_state_graph(*compiled.program, compiled.layout);
    ir::simplify(raw);

    core::ConvertOptions c_full, c_nostraight;
    c_nostraight.straighten = false;
    codegen::CodegenOptions g_full, g_nocsi;
    g_nocsi.use_csi = false;

    std::int64_t full = run_cycles(compiled, compiled.graph, c_full, g_full);
    std::int64_t nopeep = run_cycles(compiled, raw, c_full, g_full);
    std::int64_t nocsi = run_cycles(compiled, compiled.graph, c_full, g_nocsi);
    std::int64_t nostraight =
        run_cycles(compiled, compiled.graph, c_nostraight, g_full);
    std::int64_t none = run_cycles(compiled, raw, c_nostraight, g_nocsi);
    t.row({name, bench::num(full), bench::num(nopeep), bench::num(nocsi),
           bench::num(nostraight), bench::num(none)});
  }
  t.print("Cycle cost with one stage disabled at a time (lower = better; "
          "'full' = shipping pipeline)");

  // How much static code the stages remove.
  Table s({"kernel", "instrs raw", "after peephole", "removed"},
          {18, 12, 16, 10});
  for (const char* name : {"listing1", "recursion", "barrier_pipeline"}) {
    const auto& k = workload::kernel(name);
    auto compiled = driver::compile(k.source);
    ir::StateGraph raw =
        ir::build_state_graph(*compiled.program, compiled.layout);
    ir::simplify(raw);
    std::size_t before = 0, after = 0;
    for (const auto& b : raw.blocks) before += b.body.size();
    for (const auto& b : compiled.graph.blocks) after += b.body.size();
    s.row({name, bench::num(before), bench::num(after),
           bench::pct(1.0 - static_cast<double>(after) /
                                static_cast<double>(before))});
  }
  s.print("Static instruction count, raw vs. peephole-optimized");
}

void BM_PipelineFull(benchmark::State& state) {
  const auto& k = workload::kernel("loopmix");
  for (auto _ : state) {
    auto compiled = driver::compile(k.source);
    auto conv = core::meta_state_convert(compiled.graph, kCost, {});
    auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
    benchmark::DoNotOptimize(prog);
  }
}
BENCHMARK(BM_PipelineFull);

void BM_PeepholePass(benchmark::State& state) {
  const auto& k = workload::kernel("recursion");
  auto compiled = driver::compile(k.source);
  for (auto _ : state) {
    ir::StateGraph raw =
        ir::build_state_graph(*compiled.program, compiled.layout);
    ir::simplify(raw);
    benchmark::DoNotOptimize(ir::peephole(raw));
  }
}
BENCHMARK(BM_PeepholePass);

}  // namespace

MSC_BENCH_MAIN(report)
