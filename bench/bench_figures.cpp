// FIG1/FIG2/FIG5/FIG6/LST5 — regenerate every figure and the Listing 5
// coding from the paper, and verify the exact structural properties the
// paper states for each. Timings: conversion wall-clock per figure.
#include "bench_util.hpp"

#include "msc/codegen/program.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
}

void report() {
  std::printf("== Reproduction of the paper's figures ==\n");

  // FIG1: MIMD state graph of Listing 1.
  auto l1 = driver::compile(workload::listing1().source);
  std::printf("\nFIG1 — MIMD state graph for Listing 1 "
              "(paper: 4 states A, B;C, D;E, F)\n");
  check(l1.graph.size() == 4, "4 MIMD states");
  const ir::Block& a = l1.graph.at(l1.graph.start);
  check(a.exit == ir::ExitKind::Branch, "A has TRUE/FALSE successors");
  check(l1.graph.at(a.target).target == a.target &&
            l1.graph.at(a.alt).target == a.alt,
        "B;C and D;E are self-looping do-while states");
  check(l1.graph.at(l1.graph.at(a.target).alt).exit == ir::ExitKind::Halt,
        "F is the terminal state");

  // FIG2: base meta-state automaton of Listing 1.
  auto base = core::meta_state_convert(l1.graph, kCost, {});
  std::printf("\nFIG2 — meta-state graph for Listing 1 (paper: 8 meta states)\n");
  check(base.automaton.num_states() == 8, "8 meta states");
  check(base.automaton.at(base.automaton.start).arcs.size() == 3,
        "3 successors out of the start state (3^1)");
  check(base.automaton.validate(base.graph).empty(), "automaton validates");

  // FIG5: compressed automaton of Listing 1.
  core::ConvertOptions comp;
  comp.compress = true;
  auto compressed = core::meta_state_convert(l1.graph, kCost, comp);
  std::printf("\nFIG5 — compressed meta-state graph "
              "(paper: only two meta-states, compared to eight)\n");
  check(compressed.automaton.num_states() == 2, "2 meta states");
  check(compressed.automaton.at(compressed.automaton.start).arcs.empty(),
        "entry into the compressed portion is unconditional");

  // FIG6: Listing 3 with barrier under the paper's rule.
  auto l3 = driver::compile(workload::listing3().source);
  core::ConvertOptions prune;
  prune.barrier_mode = core::BarrierMode::PaperPrune;
  auto fig6 = core::meta_state_convert(l3.graph, kCost, prune);
  std::printf("\nFIG6 — meta-state graph for Listing 3 "
              "(paper: loop states {2},{6},{2,6} + barrier state 9)\n");
  check(fig6.automaton.num_states() == 6,
        "6 meta states (start, {B;C}, {D;E}, {B;C,D;E}, {wait}, {F})");
  std::size_t mixed = 0;
  for (const auto& s : fig6.automaton.states)
    if (s.members.intersects(fig6.automaton.barriers) &&
        !s.members.is_subset_of(fig6.automaton.barriers))
      ++mixed;
  check(mixed == 0, "no meta state mixes waiting and running members");

  // LST5: MPL-style coding of Listing 4.
  auto l4 = driver::compile(workload::listing4().source);
  auto conv4 = core::meta_state_convert(l4.graph, kCost, {});
  auto prog = codegen::generate(conv4.automaton, conv4.graph, kCost, {});
  std::string mpl = codegen::to_mpl(prog, conv4.graph);
  std::printf("\nLST5 — MPL coding of Listing 4 (paper: 8 meta states, "
              "globalor + hashed switch)\n");
  check(conv4.automaton.num_states() == 8, "8 meta states (ms_0..ms_2_6_9)");
  std::size_t multiway = 0, hashed = 0;
  for (const auto& mc : prog.states) {
    if (mc.trans != codegen::TransKind::Multiway) continue;
    ++multiway;
    if (!mc.sw.is_linear()) ++hashed;
  }
  check(multiway == 7, "7 multiway branches");
  check(hashed == multiway, "every multiway branch got a perfect hash");
  check(mpl.find("apc = globalor(pc);") != std::string::npos,
        "emitted code aggregates pc via globalor");
  check(mpl.find("if (pc & BIT(") != std::string::npos,
        "emitted code guards ops with pc bit masks");

  // Summary table.
  Table t({"figure", "paper", "measured", "note"}, {10, 24, 24, 40});
  t.row({"FIG1", "4 MIMD states", bench::num(l1.graph.size()),
         "A, B;C, D;E, F"});
  t.row({"FIG2", "8 meta states", bench::num(base.automaton.num_states()),
         bench::num(base.automaton.num_arcs()) + " arcs"});
  t.row({"FIG5", "2 meta states", bench::num(compressed.automaton.num_states()),
         "subsumed compressed automaton"});
  t.row({"FIG6", "4 core + entry/exit",
         bench::num(fig6.automaton.num_states()),
         "PaperPrune barrier handling"});
  t.row({"LST5", "8 meta states", bench::num(conv4.automaton.num_states()),
         bench::num(hashed) + "/" + bench::num(multiway) + " hashed switches"});
  t.print("Figure reproduction summary");
}

void BM_ConvertListing1Base(benchmark::State& state) {
  auto l1 = driver::compile(workload::listing1().source);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::meta_state_convert(l1.graph, kCost, {}));
}
BENCHMARK(BM_ConvertListing1Base);

void BM_ConvertListing1Compressed(benchmark::State& state) {
  auto l1 = driver::compile(workload::listing1().source);
  core::ConvertOptions opts;
  opts.compress = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::meta_state_convert(l1.graph, kCost, opts));
}
BENCHMARK(BM_ConvertListing1Compressed);

void BM_CodegenListing4(benchmark::State& state) {
  auto l4 = driver::compile(workload::listing4().source);
  auto conv = core::meta_state_convert(l4.graph, kCost, {});
  for (auto _ : state)
    benchmark::DoNotOptimize(
        codegen::generate(conv.automaton, conv.graph, kCost, {}));
}
BENCHMARK(BM_CodegenListing4);

void BM_FrontendListing1(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(driver::compile(workload::listing1().source));
}
BENCHMARK(BM_FrontendListing1);

}  // namespace

MSC_BENCH_MAIN(report)
