// T-COMPRESS — §2.5: compression shrinks the automaton dramatically (8→2
// on Listing 1) but "the average meta-state is wider, which implies that
// the SIMD implementation will be less efficient." Quantify both sides of
// that trade across the kernel suite, plus the subsumption ablation.
#include "bench_util.hpp"

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;
constexpr std::uint64_t kSeed = 23;

void report() {
  std::printf("== T-COMPRESS: base vs. compressed automata ==\n");

  Table t({"kernel", "base st", "comp st", "base width", "comp width",
           "base cyc", "comp cyc", "base util", "comp util"},
          {18, 10, 10, 12, 12, 11, 11, 11, 10});
  for (const auto& k : workload::suite()) {
    auto compiled = driver::compile(k.source);
    mimd::RunConfig cfg;
    cfg.nprocs = 16;
    if (k.name == "spawn_tree") cfg.initial_active = 4;

    core::ConvertOptions copts;
    auto base = core::meta_state_convert(compiled.graph, kCost, copts);
    copts.compress = true;
    auto comp = core::meta_state_convert(compiled.graph, kCost, copts);

    simd::SimdStats bs, cs;
    driver::run_simd(compiled, base, cfg, kSeed, kCost, {}, &bs);
    driver::run_simd(compiled, comp, cfg, kSeed, kCost, {}, &cs);

    t.row({k.name, bench::num(base.automaton.num_states()),
           bench::num(comp.automaton.num_states()),
           fmt_double(base.automaton.mean_width(), 2),
           fmt_double(comp.automaton.mean_width(), 2),
           bench::num(bs.control_cycles), bench::num(cs.control_cycles),
           bench::pct(bs.utilization()), bench::pct(cs.utilization())});
  }
  t.print("States / mean width / SIMD cycles / utilization "
          "(paper: fewer-but-wider states cost efficiency)");

  // Ablation: the Fig. 5 subsumption merge.
  Table a({"kernel", "compressed", "without subsumption"}, {18, 12, 20});
  for (const auto& name : {"listing1", "listing3", "branchy4", "loopmix"}) {
    auto compiled = driver::compile(workload::kernel(name).source);
    core::ConvertOptions with, without;
    with.compress = true;
    without.compress = true;
    without.subsume = false;
    auto w = core::meta_state_convert(compiled.graph, kCost, with);
    auto wo = core::meta_state_convert(compiled.graph, kCost, without);
    a.row({name, bench::num(w.automaton.num_states()),
           bench::num(wo.automaton.num_states())});
  }
  a.print("Ablation — subset-subsumption merging (what turns Listing 1's "
          "3 compressed states into Fig. 5's 2)");
}

void BM_RunBase(benchmark::State& state) {
  auto compiled = driver::compile(workload::kernel("loopmix").source);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 16;
  for (auto _ : state) {
    auto m_ptr = simd::make_machine(prog, kCost, cfg);
    simd::SimdMachine& m = *m_ptr;
    driver::seed_machine(m, compiled, cfg, kSeed);
    m.run();
    benchmark::DoNotOptimize(m.stats());
  }
}
BENCHMARK(BM_RunBase);

void BM_RunCompressed(benchmark::State& state) {
  auto compiled = driver::compile(workload::kernel("loopmix").source);
  core::ConvertOptions copts;
  copts.compress = true;
  auto conv = core::meta_state_convert(compiled.graph, kCost, copts);
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 16;
  for (auto _ : state) {
    auto m_ptr = simd::make_machine(prog, kCost, cfg);
    simd::SimdMachine& m = *m_ptr;
    driver::seed_machine(m, compiled, cfg, kSeed);
    m.run();
    benchmark::DoNotOptimize(m.stats());
  }
}
BENCHMARK(BM_RunCompressed);

}  // namespace

MSC_BENCH_MAIN(report)
