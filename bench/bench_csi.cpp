// T-CSI — §3.1 common subexpression induction: factor operations shared
// by multiple threads of a meta state into single SIMD broadcasts.
// Measure schedule cost vs. naive serialization vs. the class lower
// bound, per kernel and per algorithm, plus end-to-end cycle impact.
#include "bench_util.hpp"

#include "msc/csi/csi.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/support/rng.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;
constexpr std::uint64_t kSeed = 41;

struct Agg {
  std::int64_t serialized = 0;
  std::int64_t induced = 0;
  std::int64_t bound = 0;
  std::size_t shared = 0;
  std::size_t wide_states = 0;
};

Agg aggregate(const std::string& src, csi::Algorithm alg) {
  auto compiled = driver::compile(src);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  Agg agg;
  for (const auto& ms : conv.automaton.states) {
    if (ms.width() < 2) continue;
    ++agg.wide_states;
    std::vector<csi::Thread> threads;
    for (std::size_t s : ms.members.bits()) {
      const auto& b = conv.graph.at(static_cast<ir::StateId>(s));
      if (!b.body.empty()) threads.push_back({s, &b.body});
    }
    csi::CsiOptions opts;
    opts.algorithm = alg;
    opts.guard_bits = conv.graph.size();
    auto res = csi::induce(threads, kCost, opts);
    agg.serialized += res.serialized_cost;
    agg.induced += res.induced_cost;
    agg.bound += res.lower_bound;
    agg.shared += res.shared_ops;
  }
  return agg;
}

void report() {
  std::printf("== T-CSI: common subexpression induction over multi-thread "
              "meta states ==\n");

  Table t({"kernel", "wide states", "serialized", "induced", "lower bound",
           "saved", "shared ops"},
          {18, 12, 12, 10, 13, 10, 11});
  for (const auto& k : workload::suite()) {
    if (k.name == "imbalanced") continue;
    Agg a = aggregate(k.source, csi::Algorithm::Best);
    if (a.wide_states == 0) continue;
    double saved = a.serialized == 0
                       ? 0.0
                       : 1.0 - static_cast<double>(a.induced) /
                                   static_cast<double>(a.serialized);
    t.row({k.name, bench::num(a.wide_states), bench::num(a.serialized),
           bench::num(a.induced), bench::num(a.bound), bench::pct(saved),
           bench::num(a.shared)});
  }
  t.print("Aggregate schedule cost across all multi-member meta states "
          "(induced ≤ serialized, ≥ class lower bound)");

  Table alg({"algorithm", "induced cost (listing1)", "induced (branchy4)"},
            {14, 24, 20});
  for (auto [name, a] : std::vector<std::pair<std::string, csi::Algorithm>>{
           {"serialize", csi::Algorithm::Serialize},
           {"greedy", csi::Algorithm::Greedy},
           {"progressive", csi::Algorithm::Progressive},
           {"best", csi::Algorithm::Best}}) {
    alg.row({name,
             bench::num(aggregate(workload::listing1().source, a).induced),
             bench::num(aggregate(workload::branchy_source(4), a).induced)});
  }
  alg.print("Algorithm comparison (§3.1's search quality ladder)");

  // End-to-end: cycles with and without CSI.
  Table e2e({"kernel", "cycles no-CSI", "cycles CSI", "speedup"},
            {18, 14, 12, 10});
  for (const auto& name : {"listing1", "branchy4", "floatmix", "loopmix"}) {
    auto compiled = driver::compile(workload::kernel(name).source);
    auto conv = core::meta_state_convert(compiled.graph, kCost, {});
    mimd::RunConfig cfg;
    cfg.nprocs = 16;
    codegen::CodegenOptions no_csi;
    no_csi.use_csi = false;
    simd::SimdStats off, on;
    driver::run_simd(compiled, conv, cfg, kSeed, kCost, no_csi, &off);
    driver::run_simd(compiled, conv, cfg, kSeed, kCost, {}, &on);
    e2e.row({name, bench::num(off.control_cycles), bench::num(on.control_cycles),
             bench::ratio(static_cast<double>(off.control_cycles) /
                          static_cast<double>(on.control_cycles))});
  }
  e2e.print("End-to-end SIMD cycles, CSI off vs. on");
}

std::vector<std::vector<ir::Instr>> synth_threads(std::size_t n, std::size_t len,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<ir::Instr>> bodies(n);
  for (auto& b : bodies) {
    for (std::size_t i = 0; i < len; ++i) {
      switch (rng.next_below(4)) {
        case 0: b.push_back(ir::Instr::push_i(rng.next_range(0, 4))); break;
        case 1: b.push_back(ir::Instr::of(ir::Opcode::Add)); break;
        case 2: b.push_back(ir::Instr::of(ir::Opcode::LdL)); break;
        default: b.push_back(ir::Instr::of(ir::Opcode::StL)); break;
      }
    }
  }
  return bodies;
}

void bm_alg(benchmark::State& state, csi::Algorithm alg) {
  auto bodies = synth_threads(static_cast<std::size_t>(state.range(0)), 40, 5);
  std::vector<csi::Thread> threads;
  for (std::size_t i = 0; i < bodies.size(); ++i) threads.push_back({i, &bodies[i]});
  csi::CsiOptions opts;
  opts.algorithm = alg;
  opts.guard_bits = bodies.size();
  for (auto _ : state) benchmark::DoNotOptimize(csi::induce(threads, kCost, opts));
}

void BM_CsiGreedy(benchmark::State& state) { bm_alg(state, csi::Algorithm::Greedy); }
BENCHMARK(BM_CsiGreedy)->Arg(2)->Arg(4)->Arg(8);

void BM_CsiProgressive(benchmark::State& state) {
  bm_alg(state, csi::Algorithm::Progressive);
}
BENCHMARK(BM_CsiProgressive)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

MSC_BENCH_MAIN(report)
