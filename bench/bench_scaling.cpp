// T-SCALE — machine-size scaling. The SIMD control unit broadcasts once
// regardless of PE count, so MSC cycles grow only with *divergence*
// (more PEs populate more distinct paths → more meta transitions), while
// the interpreter additionally serializes over every opcode type present.
// The paper's 16K-PE MasPar context makes this the deployment-relevant
// curve.
#include "bench_util.hpp"

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/interp/machine.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;
constexpr std::uint64_t kSeed = 59;

void report() {
  std::printf("== T-SCALE: cycles vs. machine size ==\n");

  for (const char* name : {"listing1", "branchy4"}) {
    auto compiled = driver::compile(workload::kernel(name).source);
    auto conv = core::meta_state_convert(compiled.graph, kCost, {});
    Table t({"PEs", "msc cyc", "msc transitions", "msc util", "interp cyc",
             "interp iters", "mimd makespan"},
            {6, 10, 16, 10, 12, 13, 14});
    for (std::int64_t n : {1, 4, 16, 64, 256, 1024}) {
      mimd::RunConfig cfg;
      cfg.nprocs = n;
      simd::SimdStats ss;
      driver::run_simd(compiled, conv, cfg, kSeed, kCost, {}, &ss);
      interp::InterpMachine im(compiled.graph, kCost, cfg,
                               interp::Dispatch::GlobalOr);
      driver::seed_machine(im, compiled, cfg, kSeed);
      im.run();
      mimd::MimdStats ms;
      driver::run_oracle(compiled, cfg, kSeed, &ms);
      t.row({bench::num(n), bench::num(ss.control_cycles),
             bench::num(ss.meta_transitions), bench::pct(ss.utilization()),
             bench::num(im.stats().control_cycles),
             bench::num(im.stats().iterations), bench::num(ms.makespan)});
    }
    t.print(std::string(name) +
            ": SIMD cycles saturate once every path is populated; the MIMD "
            "makespan is the per-PE critical path");
  }
}

void BM_SimdAtScale(benchmark::State& state) {
  auto compiled = driver::compile(workload::listing1().source);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = state.range(0);
  for (auto _ : state) {
    simd::SimdMachine m(prog, kCost, cfg);
    driver::seed_machine(m, compiled, cfg, kSeed);
    m.run();
    benchmark::DoNotOptimize(m.stats());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimdAtScale)->RangeMultiplier(4)->Range(4, 1024)->Complexity();

void BM_OracleAtScale(benchmark::State& state) {
  auto compiled = driver::compile(workload::listing1().source);
  mimd::RunConfig cfg;
  cfg.nprocs = state.range(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(driver::run_oracle(compiled, cfg, kSeed));
}
BENCHMARK(BM_OracleAtScale)->RangeMultiplier(4)->Range(4, 1024);

}  // namespace

MSC_BENCH_MAIN(report)
