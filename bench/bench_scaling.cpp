// T-SCALE — machine-size scaling. The SIMD control unit broadcasts once
// regardless of PE count, so MSC cycles grow only with *divergence*
// (more PEs populate more distinct paths → more meta transitions), while
// the interpreter additionally serializes over every opcode type present.
// The paper's 16K-PE MasPar context makes this the deployment-relevant
// curve.
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <functional>

#include "msc/codegen/translate.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/interp/machine.hpp"
#include "msc/support/trace.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;
constexpr std::uint64_t kSeed = 59;

/// Best-of-9 wall-clock seconds for run() on one engine. Construction and
/// seeding are untimed: they are engine-independent (and dominated by
/// zero-filling nprocs * local_mem_cells of PE memory), while the engines
/// differ only in the broadcast/step hot path being measured.
double time_engine(const codegen::SimdProgram& prog,
                   const driver::Compiled& compiled, mimd::RunConfig cfg,
                   simd::SimdStats* stats_out) {
  double best = 1e100;
  for (int rep = 0; rep < 9; ++rep) {
    auto m = simd::make_machine(prog, kCost, cfg);
    driver::seed_machine(*m, compiled, cfg, kSeed);
    auto t0 = std::chrono::steady_clock::now();
    m->run();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    if (stats_out) *stats_out = m->stats();
  }
  return best;
}

void report_engines() {
  // The tentpole claim: with sparse occupancy (1 of every 64 PEs active)
  // the occupancy-indexed engine does host work proportional to *enabled*
  // PEs while the reference engine scans all nprocs per broadcast op.
  // Simulated SimdStats are bit-identical by contract; only host wall
  // clock differs.
  std::printf("\n== T-ENGINE: fast vs reference engine, sparse occupancy "
              "(1/64 PEs active) ==\n");
  for (const char* name : {"listing1", "branchy4"}) {
    auto compiled = driver::compile(workload::kernel(name).source);
    auto conv = core::meta_state_convert(compiled.graph, kCost, {});
    auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
    Table t({"PEs", "active", "fast us", "reference us", "host speedup",
             "stats equal"},
            {8, 8, 12, 14, 14, 12});
    for (std::int64_t n : {256, 1024, 4096, 8192}) {
      mimd::RunConfig cfg;
      cfg.nprocs = n;
      cfg.initial_active = n / 64;
      // Kernels here are non-recursive and use a handful of cells; the
      // 4096-cell default would zero-fill up to 0.5 GB per rep and evict
      // the caches the timed run() depends on.
      cfg.local_mem_cells = 256;
      simd::SimdStats fast_stats, ref_stats;
      cfg.engine = mimd::SimdEngine::Fast;
      double fast_s = time_engine(prog, compiled, cfg, &fast_stats);
      cfg.engine = mimd::SimdEngine::Reference;
      double ref_s = time_engine(prog, compiled, cfg, &ref_stats);
      t.row({bench::num(n), bench::num(n / 64),
             bench::num(static_cast<std::int64_t>(fast_s * 1e6)),
             bench::num(static_cast<std::int64_t>(ref_s * 1e6)),
             bench::ratio(ref_s / fast_s),
             fast_stats == ref_stats ? "yes" : "DRIFT"});
    }
    t.print(std::string(name) +
            ": host wall clock of run() (best of 9); simulated cycle "
            "counters are bit-identical between engines");
  }
}

// Const-heavy straight-line loop body: the shape §11's folding and
// fusion — and §14's lane execution — are built for. Every PE follows
// the same path, so occupancy stays at 100% and the per-PE execution
// cost dominates. Shared by T-TC and T-VEC.
const char* kConstHeavy = R"(poly int x;
int main() {
  poly int acc;
  poly int i;
  acc = x;
  i = 64;
  do {
    acc = acc + 12345;
    acc = acc ^ 9876;
    acc = acc + (3 * 14 + 7);
    acc = acc - 4321;
    acc = acc ^ 1234;
    acc = acc + (100 - 36);
    acc = acc + 11;
    acc = acc + 13;
    acc = acc + 17;
    acc = acc + 19;
    i = i - 1;
  } while (i > 0);
  return acc;
}
)";

void report_translation_cache() {
  // T-TC — the translation-cache codegen engine (DESIGN.md §11). On
  // high-occupancy rows (every PE active, one densely populated group per
  // meta state) the specialized engine's pre-resolved guards, fused ops,
  // folded constants, and O(1) per-group stats charging must beat the
  // fast engine's per-SOp interpretation by ≥3x host wall clock while
  // staying bit-identical on the simulated counters. Both engines are
  // pinned to the scalar ISA: T-TC measures translation quality on the
  // per-PE interpretation path; the lane backend has its own table
  // (T-VEC) and would otherwise make the ratio an artifact of how much
  // of each stream vectorizes.
  std::printf("\n== T-TC: translation-cached codegen engine vs fast, "
              "full occupancy ==\n");
  auto compiled = driver::compile(kConstHeavy);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  codegen::translation_cache_clear();  // count only this section's traffic

  bench::JsonReport& report = bench::JsonReport::instance();
  Table t({"PEs", "fast us", "codegen us", "host speedup", "stats equal"},
          {8, 10, 12, 14, 12});
  double gated_speedup = 0.0;
  bool stats_ok = true;
  for (std::int64_t n : {256, 1024, 4096}) {
    mimd::RunConfig cfg;
    cfg.nprocs = n;
    cfg.local_mem_cells = 256;  // see report_engines()
    cfg.simd_isa = SimdIsa::Scalar;
    simd::SimdStats fast_stats, cg_stats;
    cfg.engine = mimd::SimdEngine::Fast;
    double fast_s = time_engine(prog, compiled, cfg, &fast_stats);
    cfg.engine = mimd::SimdEngine::Codegen;
    double cg_s = time_engine(prog, compiled, cfg, &cg_stats);
    const bool equal = fast_stats == cg_stats;
    stats_ok &= equal;
    const double speedup = fast_s / cg_s;
    gated_speedup = std::max(gated_speedup, speedup);
    t.row({bench::num(n), bench::num(static_cast<std::int64_t>(fast_s * 1e6)),
           bench::num(static_cast<std::int64_t>(cg_s * 1e6)),
           bench::ratio(speedup), equal ? "yes" : "DRIFT"});
    report.metric(cat("tc.speedup_", n, "pe"), speedup);
  }
  const codegen::TranslationCacheStats tc = codegen::translation_cache_stats();
  const auto trans = codegen::translate(prog, kCost);
  t.print(cat("const-heavy loop, all PEs active (best of 9); ",
              trans->source_ops, " SOps translated to ", trans->host_ops,
              " TOps; trans-cache hits=", tc.hits, " misses=", tc.misses));
  report.metric("tc.source_ops", static_cast<double>(trans->source_ops));
  report.metric("tc.host_ops", static_cast<double>(trans->host_ops));
  report.metric("tc.trans_cache_hits", static_cast<double>(tc.hits));
  report.metric("tc.trans_cache_misses", static_cast<double>(tc.misses));

  // The tentpole gates: ≥3x host speedup on the best high-occupancy row,
  // bit-identical simulated stats, and one translation shared across every
  // machine built for the automaton (repeat runs hit the cache).
  report.gate("T-TC.codegen-speedup", gated_speedup >= 3.0 && stats_ok,
              cat("best host speedup ", bench::ratio(gated_speedup),
                  " (gate 3.00x), stats ",
                  stats_ok ? "bit-identical" : "DRIFTED"));
  report.gate("T-TC.cache-reuse", tc.misses <= 1 && tc.hits >= 1,
              cat("hits=", tc.hits, " misses=", tc.misses,
                  " (one translation per automaton, shared thereafter)"));
}

void report_vectorization() {
  // T-VEC — the lane-major store's host-SIMD execution backend
  // (DESIGN.md §14). With every PE active the fast engine executes
  // whole-lane op runs under the host vector ISA; forcing
  // --simd-isa scalar takes the per-PE path over the same store. The
  // simulated SimdStats are bit-identical by contract — only host wall
  // clock may differ, and at ≥1024 PEs it must differ by ≥2x. Under
  // sparse occupancy (1/64 active) both ISAs take the per-PE fallback
  // spans, so vector selection must cost nothing there.
  const SimdIsa host = resolve_simd_isa(SimdIsa::Auto);
  std::printf("\n== T-VEC: host-SIMD lane execution vs forced scalar, "
              "fast engine, full occupancy (host isa: %s) ==\n",
              simd_isa_name(host));
  bench::JsonReport& report = bench::JsonReport::instance();
  auto compiled = driver::compile(kConstHeavy);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});

  if (host == SimdIsa::Scalar) {
    // Forced-scalar CI leg (or a host without AVX2/NEON): the comparison
    // is vacuous; the gates skip-pass so the leg still proves the scalar
    // path end to end.
    std::printf("  (no vector ISA: scalar == scalar, gates skip-pass)\n");
    report.gate("T-VEC.simd-speedup", true,
                "skip-pass: host resolves to scalar, no vector ISA to gate");
    report.gate("T-VEC.low-occupancy-no-regression", true,
                "skip-pass: host resolves to scalar");
    return;
  }

  Table t({"PEs", "scalar us", "vector us", "host speedup", "stats equal"},
          {8, 11, 11, 14, 12});
  double gated_speedup = 0.0;
  bool stats_ok = true;
  for (std::int64_t n : {256, 1024, 4096}) {
    mimd::RunConfig cfg;
    cfg.nprocs = n;
    cfg.local_mem_cells = 256;  // see report_engines()
    cfg.engine = mimd::SimdEngine::Fast;
    simd::SimdStats scalar_stats, vec_stats;
    cfg.simd_isa = SimdIsa::Scalar;
    double scalar_s = time_engine(prog, compiled, cfg, &scalar_stats);
    cfg.simd_isa = host;
    double vec_s = time_engine(prog, compiled, cfg, &vec_stats);
    const bool equal = scalar_stats == vec_stats;
    stats_ok &= equal;
    const double speedup = scalar_s / vec_s;
    if (n >= 1024) gated_speedup = std::max(gated_speedup, speedup);
    t.row({bench::num(n),
           bench::num(static_cast<std::int64_t>(scalar_s * 1e6)),
           bench::num(static_cast<std::int64_t>(vec_s * 1e6)),
           bench::ratio(speedup), equal ? "yes" : "DRIFT"});
    report.metric(cat("vec.speedup_", n, "pe"), speedup);
  }
  t.print(cat("const-heavy loop, all PEs active (best of 9), isa ",
              simd_isa_name(host), " lane width ",
              simd_isa_lane_width(host)));
  report.gate("T-VEC.simd-speedup", gated_speedup >= 2.0 && stats_ok,
              cat("best ≥1024-PE host speedup ", bench::ratio(gated_speedup),
                  " (gate 2.00x), stats ",
                  stats_ok ? "bit-identical" : "DRIFTED"));

  // Low occupancy: 1/64 PEs enabled puts every run below the lane
  // threshold, so both ISAs execute the identical per-PE fallback; the
  // vector build must not regress. Summed over the rows to keep the
  // ratio out of timer noise.
  double sparse_scalar = 0.0, sparse_vec = 0.0;
  bool sparse_ok = true;
  for (std::int64_t n : {1024, 4096}) {
    mimd::RunConfig cfg;
    cfg.nprocs = n;
    cfg.initial_active = n / 64;
    cfg.local_mem_cells = 256;
    cfg.engine = mimd::SimdEngine::Fast;
    simd::SimdStats scalar_stats, vec_stats;
    cfg.simd_isa = SimdIsa::Scalar;
    sparse_scalar += time_engine(prog, compiled, cfg, &scalar_stats);
    cfg.simd_isa = host;
    sparse_vec += time_engine(prog, compiled, cfg, &vec_stats);
    sparse_ok &= scalar_stats == vec_stats;
  }
  const double sparse_ratio = sparse_vec / sparse_scalar;
  report.metric("vec.low_occ_ratio", sparse_ratio);
  report.gate("T-VEC.low-occupancy-no-regression",
              sparse_ratio <= 1.15 && sparse_ok,
              cat("sparse vector/scalar wall-clock ratio ",
                  bench::ratio(sparse_ratio), " (gate 1.15x), stats ",
                  sparse_ok ? "bit-identical" : "DRIFTED"));
}

void report_observability() {
  // T-OBS — the zero-cost-when-off contract (ISSUE: with no sink attached
  // FastSimdMachine throughput must not regress). The structural argument
  // is that the step() observability hook is a single bool test when
  // nothing is attached (DESIGN.md §10); this bench pins the residual cost
  // empirically by comparing a machine that never saw a sink against one
  // that had a sink attached and then detached — any state left behind by
  // attachment would show up as a wall-clock gap between the two. Tracing
  // and profiling overheads are reported alongside for the record.
  std::printf("\n== T-OBS: observability overhead on the fast engine ==\n");
  auto compiled = driver::compile(workload::kernel("branchy4").source);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 1024;
  cfg.local_mem_cells = 256;  // see report_engines()

  simd::SimdStats stats;
  // All four modes are timed inside each rep (interleaved, rotating start
  // order, best-of minima): pairing the conditions under the same machine
  // state cancels slow thermal/scheduler drift, the rotation cancels
  // within-rep ordering effects, and a short rep (~1 ms) gives the minima
  // many chances to land in a quiet scheduling window.
  using Setup = std::function<void(simd::SimdMachine&, telemetry::TraceSink&)>;
  const Setup setups[4] = {
      [](simd::SimdMachine&, telemetry::TraceSink&) {},
      [](simd::SimdMachine& m, telemetry::TraceSink& sink) {
        m.set_trace_sink(&sink);    // attach...
        m.set_trace_sink(nullptr);  // ...and detach: must leave no residue
      },
      [](simd::SimdMachine& m, telemetry::TraceSink& sink) {
        m.set_trace_sink(&sink);
      },
      [](simd::SimdMachine& m, telemetry::TraceSink&) {
        m.enable_profiling();
      }};
  double best[4] = {1e100, 1e100, 1e100, 1e100};
  for (int rep = 0; rep < 80; ++rep) {
    for (int slot = 0; slot < 4; ++slot) {
      const int mode = (slot + rep) % 4;
      telemetry::TraceSink sink;
      auto m = simd::make_machine(prog, kCost, cfg);
      driver::seed_machine(*m, compiled, cfg, kSeed);
      setups[mode](*m, sink);
      auto t0 = std::chrono::steady_clock::now();
      m->run();
      auto t1 = std::chrono::steady_clock::now();
      best[mode] = std::min(
          best[mode], std::chrono::duration<double>(t1 - t0).count());
      stats = m->stats();
    }
  }
  const double baseline = best[0], detached = best[1], traced = best[2],
               profiled = best[3];

  const double per_transition =
      baseline / static_cast<double>(stats.meta_transitions) * 1e9;
  Table t({"mode", "best us", "vs baseline"}, {22, 10, 12});
  const auto row = [&](const char* mode, double s) {
    t.row({mode, bench::num(static_cast<std::int64_t>(s * 1e6)),
           bench::ratio(s / baseline)});
  };
  row("no sink (baseline)", baseline);
  row("attach+detach", detached);
  row("chrome trace on", traced);
  row("profiling on", profiled);
  t.print(cat("branchy4, nprocs=", cfg.nprocs, ", ", stats.meta_transitions,
              " meta transitions (best of 80); baseline ",
              fmt_double(per_transition, 1), " ns/transition"));

  bench::JsonReport& report = bench::JsonReport::instance();
  report.metric("obs.baseline_us", baseline * 1e6);
  report.metric("obs.detached_us", detached * 1e6);
  report.metric("obs.traced_us", traced * 1e6);
  report.metric("obs.profiled_us", profiled * 1e6);
  report.metric("obs.ns_per_meta_transition", per_transition);
  report.metric("obs.meta_transitions", stats.meta_transitions);

  // The gate: detaching must restore the exact no-sink cost, within noise.
  // Tolerance is max(1% relative, 30µs absolute) on best-of-80 minima —
  // the absolute floor keeps short runs from gating on scheduler jitter.
  const double tolerance = std::max(0.01 * baseline, 30e-6);
  report.gate("T-OBS.no-sink-overhead", detached <= baseline + tolerance,
              cat("baseline ", fmt_double(baseline * 1e6, 1),
                  " us, after attach+detach ", fmt_double(detached * 1e6, 1),
                  " us, tolerance ", fmt_double(tolerance * 1e6, 1), " us"));
}

void report() {
  std::printf("== T-SCALE: cycles vs. machine size ==\n");

  for (const char* name : {"listing1", "branchy4"}) {
    auto compiled = driver::compile(workload::kernel(name).source);
    auto conv = core::meta_state_convert(compiled.graph, kCost, {});
    Table t({"PEs", "msc cyc", "msc transitions", "msc util", "interp cyc",
             "interp iters", "mimd makespan"},
            {6, 10, 16, 10, 12, 13, 14});
    for (std::int64_t n : {1, 4, 16, 64, 256, 1024}) {
      mimd::RunConfig cfg;
      cfg.nprocs = n;
      simd::SimdStats ss;
      driver::run_simd(compiled, conv, cfg, kSeed, kCost, {}, &ss);
      interp::InterpMachine im(compiled.graph, kCost, cfg,
                               interp::Dispatch::GlobalOr);
      driver::seed_machine(im, compiled, cfg, kSeed);
      im.run();
      mimd::MimdStats ms;
      driver::run_oracle(compiled, cfg, kSeed, &ms);
      t.row({bench::num(n), bench::num(ss.control_cycles),
             bench::num(ss.meta_transitions), bench::pct(ss.utilization()),
             bench::num(im.stats().control_cycles),
             bench::num(im.stats().iterations), bench::num(ms.makespan)});
    }
    t.print(std::string(name) +
            ": SIMD cycles saturate once every path is populated; the MIMD "
            "makespan is the per-PE critical path");
  }
  report_engines();
  report_translation_cache();
  report_vectorization();
  report_observability();
}

void BM_SimdAtScale(benchmark::State& state) {
  auto compiled = driver::compile(workload::listing1().source);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = state.range(0);
  for (auto _ : state) {
    auto m_ptr = simd::make_machine(prog, kCost, cfg);
    simd::SimdMachine& m = *m_ptr;
    driver::seed_machine(m, compiled, cfg, kSeed);
    m.run();
    benchmark::DoNotOptimize(m.stats());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimdAtScale)->RangeMultiplier(4)->Range(4, 1024)->Complexity();

void BM_SimdEngineSparse(benchmark::State& state) {
  // Args: {nprocs, engine} with 1/64 of the PEs initially active — the
  // sparse-occupancy regime where the occupancy-indexed engine wins.
  auto compiled = driver::compile(workload::kernel("branchy4").source);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = state.range(0);
  cfg.initial_active = cfg.nprocs / 64;
  cfg.local_mem_cells = 256;  // see report_engines()
  cfg.engine = state.range(1) == 0   ? mimd::SimdEngine::Fast
               : state.range(1) == 1 ? mimd::SimdEngine::Reference
                                     : mimd::SimdEngine::Codegen;
  for (auto _ : state) {
    state.PauseTiming();  // construction/seeding are engine-independent
    auto m = simd::make_machine(prog, kCost, cfg);
    driver::seed_machine(*m, compiled, cfg, kSeed);
    state.ResumeTiming();
    m->run();
    benchmark::DoNotOptimize(m->stats());
  }
  state.SetLabel(simd::engine_name(cfg.engine));
}
BENCHMARK(BM_SimdEngineSparse)
    ->ArgsProduct({{256, 1024, 4096}, {0, 1, 2}});

void BM_OracleAtScale(benchmark::State& state) {
  auto compiled = driver::compile(workload::listing1().source);
  mimd::RunConfig cfg;
  cfg.nprocs = state.range(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(driver::run_oracle(compiled, cfg, kSeed));
}
BENCHMARK(BM_OracleAtScale)->RangeMultiplier(4)->Range(4, 1024);

}  // namespace

MSC_BENCH_MAIN(report)
