// CONV-CACHE — the restart-surviving successor memo and the parallel
// frontier expansion. §2.4 time splitting restarts conversion from scratch
// every time a block is split; without the memo every restart re-enumerates
// reach() for the entire already-converted prefix. The memo keeps raw
// successor sets across restarts, dropping only entries whose member sets
// contain a split block, so restart n re-pays only the invalidated slice.
//
// Tables:
//   1. cached vs uncached conversion on time-split-heavy workloads —
//      reach() calls and wall time, plus a bit-identity check.
//   2. frontier-expansion thread sweep — wall time and identity versus the
//      serial automaton (the container may expose a single core; identity
//      must hold regardless, speedup only shows with real cores).
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "msc/driver/pipeline.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;

struct Timed {
  core::ConvertResult result;
  double seconds;
};

Timed convert_timed(const driver::Compiled& compiled,
                    const core::ConvertOptions& opts, int reps = 5) {
  Timed t;
  t.seconds = 1e30;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    auto res = core::meta_state_convert(compiled.graph, kCost, opts);
    auto t1 = std::chrono::steady_clock::now();
    t.seconds =
        std::min(t.seconds, std::chrono::duration<double>(t1 - t0).count());
    t.result = std::move(res);
  }
  return t;
}

struct Workload {
  const char* name;
  std::string source;
  int reps = 5;
};

std::vector<Workload> workloads() {
  return {
      {"listing1", workload::listing1().source},
      {"branchy(5)", workload::branchy_source(5)},
      {"oddeven_sort", workload::kernel("oddeven_sort").source},
      {"nested(3)", workload::nested_branch_source(3)},
      {"nested(4)", workload::nested_branch_source(4), 1},
  };
}

void report() {
  std::printf("== CONV-CACHE: restart-surviving memo + parallel frontier ==\n");

  // --- Table 1: the memo across §2.4 restarts -------------------------
  Table memo({"workload", "meta", "restarts", "reach (cache)", "reach (none)",
              "wall (cache)", "wall (none)", "speedup", "identical"},
             {17, 8, 10, 15, 14, 14, 13, 9, 10});
  double heaviest_speedup = 0.0;
  for (const Workload& w : workloads()) {
    auto compiled = driver::compile(w.source);
    core::ConvertOptions cached;
    cached.time_split = true;
    core::ConvertOptions uncached = cached;
    uncached.memoize = false;
    Timed with = convert_timed(compiled, cached, w.reps);
    Timed without = convert_timed(compiled, uncached, w.reps);
    bool same = with.result.automaton.dump() == without.result.automaton.dump();
    double speedup = without.seconds / with.seconds;
    heaviest_speedup = std::max(heaviest_speedup, speedup);
    memo.row({w.name, bench::num(with.result.automaton.num_states()),
              bench::num(std::int64_t{with.result.stats.restarts}),
              bench::num(with.result.stats.reach_calls),
              bench::num(without.result.stats.reach_calls),
              fmt_double(with.seconds * 1e3, 3) + "ms",
              fmt_double(without.seconds * 1e3, 3) + "ms",
              bench::ratio(speedup), same ? "yes" : "NO"});
  }
  memo.print("Successor-set memo under time splitting (--split), cached vs "
             "--no-cache");
  std::printf("best wall-clock speedup from the cache: %s\n",
              bench::ratio(heaviest_speedup).c_str());

  // --- Table 2: frontier-expansion thread sweep -----------------------
  // Bit-identity is the hard requirement; wall-clock scaling needs real
  // cores (this container may report only one).
  std::printf("\nhardware threads available: %u\n",
              std::thread::hardware_concurrency());
  Table sweep({"workload", "threads", "wall", "batches", "expand",
               "identical to serial"},
              {17, 9, 12, 9, 12, 20});
  for (const Workload& w : {workloads()[1], workloads()[3]}) {
    auto compiled = driver::compile(w.source);
    core::ConvertOptions base;
    base.time_split = true;
    std::string serial_dump;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      core::ConvertOptions opts = base;
      opts.threads = threads;
      Timed t = convert_timed(compiled, opts);
      std::string dump = t.result.automaton.dump();
      if (threads == 1) serial_dump = dump;
      sweep.row({w.name, bench::num(std::uint64_t{threads}),
                 fmt_double(t.seconds * 1e3, 3) + "ms",
                 bench::num(t.result.stats.batches),
                 fmt_double(t.result.stats.expand_seconds * 1e3, 3) + "ms",
                 dump == serial_dump ? "yes" : "NO"});
    }
  }
  sweep.print("Deterministic parallel frontier expansion (same automaton at "
              "every width)");
}

void BM_ConvertCached(benchmark::State& state) {
  auto compiled = driver::compile(workload::nested_branch_source(3));
  core::ConvertOptions opts;
  opts.time_split = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::meta_state_convert(compiled.graph, kCost, opts));
}
BENCHMARK(BM_ConvertCached);

void BM_ConvertUncached(benchmark::State& state) {
  auto compiled = driver::compile(workload::nested_branch_source(3));
  core::ConvertOptions opts;
  opts.time_split = true;
  opts.memoize = false;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::meta_state_convert(compiled.graph, kCost, opts));
}
BENCHMARK(BM_ConvertUncached);

void BM_ConvertThreads(benchmark::State& state) {
  auto compiled = driver::compile(workload::kernel("oddeven_sort").source);
  core::ConvertOptions opts;
  opts.time_split = true;
  opts.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::meta_state_convert(compiled.graph, kCost, opts));
}
BENCHMARK(BM_ConvertThreads)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

MSC_BENCH_MAIN(report)
