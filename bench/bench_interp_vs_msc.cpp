// T-INTERP — §1.1's three interpretation overheads vs. meta-state
// conversion. For each kernel: SIMD cycles under the naive interpreter,
// the global-or-dispatch interpreter, and the MSC automaton; the cycle
// breakdown (fetch/decode, dispatch, loop) that MSC eliminates; and the
// per-PE program memory the interpreter replicates (§1.1 overhead 2 — the
// paper's 16 KB MasPar PE memory motivates this) vs. MSC's zero bytes.
#include "bench_util.hpp"

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/interp/machine.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;
constexpr std::uint64_t kSeed = 17;

struct Row {
  std::string kernel;
  interp::InterpStats naive;
  interp::InterpStats smart;
  simd::SimdStats msc;       // fast (occupancy-indexed) engine
  simd::SimdStats msc_ref;   // reference (scalar) engine — must equal msc
};

mimd::RunConfig config_for(const workload::Kernel& k) {
  mimd::RunConfig cfg;
  cfg.nprocs = 16;
  if (k.name == "spawn_tree") cfg.initial_active = 4;
  return cfg;
}

Row measure(const workload::Kernel& k) {
  Row row;
  row.kernel = k.name;
  auto compiled = driver::compile(k.source);
  mimd::RunConfig cfg = config_for(k);
  for (auto dispatch : {interp::Dispatch::Naive, interp::Dispatch::GlobalOr}) {
    interp::InterpMachine m(compiled.graph, kCost, cfg, dispatch);
    driver::seed_machine(m, compiled, cfg, kSeed);
    m.run();
    (dispatch == interp::Dispatch::Naive ? row.naive : row.smart) = m.stats();
  }
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  cfg.engine = mimd::SimdEngine::Fast;
  driver::run_simd(compiled, conv, cfg, kSeed, kCost, {}, &row.msc);
  cfg.engine = mimd::SimdEngine::Reference;
  driver::run_simd(compiled, conv, cfg, kSeed, kCost, {}, &row.msc_ref);
  return row;
}

void report() {
  std::printf("== T-INTERP: MIMD interpretation vs. meta-state conversion "
              "(16 PEs) ==\n");
  std::vector<Row> rows;
  for (const auto& k : workload::suite()) {
    if (k.name == "imbalanced") continue;  // covered by bench_time_split
    rows.push_back(measure(k));
  }

  Table t({"kernel", "interp naive", "interp g-or", "msc", "speedup naive",
           "speedup g-or"},
          {18, 14, 14, 12, 15, 14});
  for (const Row& r : rows) {
    t.row({r.kernel, bench::num(r.naive.control_cycles),
           bench::num(r.smart.control_cycles), bench::num(r.msc.control_cycles),
           bench::ratio(static_cast<double>(r.naive.control_cycles) /
                        static_cast<double>(r.msc.control_cycles)),
           bench::ratio(static_cast<double>(r.smart.control_cycles) /
                        static_cast<double>(r.msc.control_cycles))});
  }
  t.print("Total SIMD cycles (lower is better; paper: interpretation is "
          "\"very inefficient\", MSC has \"no interpretation overhead\")");

  Table o({"kernel", "fetch", "dispatch", "loop", "execute", "overhead"},
          {18, 10, 10, 10, 10, 10});
  for (const Row& r : rows) {
    const auto& s = r.smart;
    double ov = static_cast<double>(s.fetch_cycles + s.dispatch_cycles +
                                    s.loop_cycles) /
                static_cast<double>(s.control_cycles);
    o.row({r.kernel, bench::num(s.fetch_cycles), bench::num(s.dispatch_cycles),
           bench::num(s.loop_cycles), bench::num(s.execute_cycles),
           bench::pct(ov)});
  }
  o.print("Interpreter (global-or dispatch) cycle breakdown — overheads 1 "
          "and 3 of §1.1; MSC spends these cycles on useful work");

  Table m({"kernel", "interp cells/PE", "msc cells/PE", "note"}, {18, 17, 14, 36});
  for (const Row& r : rows)
    m.row({r.kernel, bench::num(r.naive.program_cells_per_pe), "0",
           "control unit holds the automaton"});
  m.print("Per-PE program memory — overhead 2 of §1.1 (\"wastes a huge "
          "amount of memory\")");

  Table u({"kernel", "interp util", "msc util"}, {18, 13, 12});
  for (const Row& r : rows)
    u.row({r.kernel, bench::pct(r.smart.utilization()),
           bench::pct(r.msc.utilization())});
  u.print("PE utilization while executing");

  Table e({"kernel", "fast cyc", "reference cyc", "stats equal"},
          {18, 12, 15, 12});
  for (const Row& r : rows)
    e.row({r.kernel, bench::num(r.msc.control_cycles),
           bench::num(r.msc_ref.control_cycles),
           r.msc == r.msc_ref ? "yes" : "DRIFT"});
  e.print("Engine cross-check — the occupancy-indexed engine and the scalar "
          "reference report bit-identical simulated cycles");
}

void BM_InterpNaive(benchmark::State& state) {
  auto compiled = driver::compile(workload::listing1().source);
  mimd::RunConfig cfg;
  cfg.nprocs = 16;
  for (auto _ : state) {
    interp::InterpMachine m(compiled.graph, kCost, cfg, interp::Dispatch::Naive);
    driver::seed_machine(m, compiled, cfg, kSeed);
    m.run();
    benchmark::DoNotOptimize(m.stats());
  }
}
BENCHMARK(BM_InterpNaive);

void BM_InterpGlobalOr(benchmark::State& state) {
  auto compiled = driver::compile(workload::listing1().source);
  mimd::RunConfig cfg;
  cfg.nprocs = 16;
  for (auto _ : state) {
    interp::InterpMachine m(compiled.graph, kCost, cfg,
                            interp::Dispatch::GlobalOr);
    driver::seed_machine(m, compiled, cfg, kSeed);
    m.run();
    benchmark::DoNotOptimize(m.stats());
  }
}
BENCHMARK(BM_InterpGlobalOr);

void BM_MscExecution(benchmark::State& state) {
  auto compiled = driver::compile(workload::listing1().source);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 16;
  for (auto _ : state) {
    auto m_ptr = simd::make_machine(prog, kCost, cfg);
    simd::SimdMachine& m = *m_ptr;
    driver::seed_machine(m, compiled, cfg, kSeed);
    m.run();
    benchmark::DoNotOptimize(m.stats());
  }
}
BENCHMARK(BM_MscExecution);

}  // namespace

MSC_BENCH_MAIN(report)
