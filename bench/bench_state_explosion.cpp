// T-EXPLODE — §1.2 warns the meta-state space can reach S!/(S−N)! states
// and §2.3 derives up to 3^n successors from n branching members. Measure
// meta-state counts as divergence grows, against the analytic bounds, and
// show which §2 mechanisms (compression, barriers) tame the growth.
#include "bench_util.hpp"

#include "msc/driver/pipeline.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;

std::string states_or_explodes(const std::string& src,
                               core::ConvertOptions opts,
                               std::size_t limit = 150000) {
  opts.max_meta_states = limit;
  auto compiled = driver::compile(src);
  try {
    auto res = core::meta_state_convert(compiled.graph, kCost, opts);
    return bench::num(res.automaton.num_states());
  } catch (const core::ExplosionError&) {
    return ">" + bench::num(limit);
  } catch (const CompileError&) {
    return "rejected";  // PaperPrune + >1 barrier is a compile error now
  }
}

void report() {
  std::printf("== T-EXPLODE: meta-state space growth ==\n");

  // Divergent loop chains: occupancy windows overlap → exponential base
  // growth; compression and barriers both collapse it.
  Table t({"k loops", "base", "compressed", "barrier(prune)",
           "barrier(track)", "4^k"},
          {10, 12, 12, 16, 16, 12});
  for (int k = 1; k <= 8; ++k) {
    core::ConvertOptions base, comp, prune, track;
    comp.compress = true;
    prune.barrier_mode = core::BarrierMode::PaperPrune;
    track.barrier_mode = core::BarrierMode::TrackOccupancy;
    std::int64_t bound = 1;
    for (int i = 0; i < k; ++i) bound *= 4;
    t.row({bench::num(std::int64_t{k}),
           states_or_explodes(workload::loopy_source(k), base),
           states_or_explodes(workload::loopy_source(k), comp),
           states_or_explodes(workload::loopy_barrier_source(k), prune),
           states_or_explodes(workload::loopy_barrier_source(k), track),
           bench::num(bound)});
  }
  t.print("Meta states vs. k sequential divergent loops (base grows ~4^k; "
          "§2.5 compression and §2.6 barriers stay linear)");

  // Sequential diamonds re-synchronize at joins: growth is linear even in
  // base mode. This isolates *where* explosion comes from (loop-exit
  // drift, not branching per se).
  Table d({"k diamonds", "base", "compressed"}, {12, 12, 12});
  for (int k = 2; k <= 12; k += 2) {
    core::ConvertOptions base, comp;
    comp.compress = true;
    d.row({bench::num(std::int64_t{k}),
           states_or_explodes(workload::branchy_source(k), base),
           states_or_explodes(workload::branchy_source(k), comp)});
  }
  d.print("Meta states vs. k sequential if/else diamonds (joins resync: "
          "linear growth even in base mode)");

  // §2.3: 3^n successors from one meta state with n branching members.
  Table s({"n branching members", "successor arcs", "3^n"}, {20, 16, 10});
  for (int n = 1; n <= 5; ++n) {
    // n parallel independent do-while loops reached simultaneously: put n
    // loops behind one divergent split so a meta state holds n branchers.
    // Simpler: measure the widest out-degree in loopy(n)'s automaton.
    auto compiled = driver::compile(workload::loopy_source(n));
    core::ConvertOptions opts;
    opts.max_meta_states = 150000;
    std::size_t max_arcs = 0;
    try {
      auto res = core::meta_state_convert(compiled.graph, kCost, opts);
      for (const auto& ms : res.automaton.states)
        max_arcs = std::max(max_arcs, ms.arcs.size());
    } catch (const core::ExplosionError&) {
    }
    std::int64_t bound = 1;
    for (int i = 0; i < n; ++i) bound *= 3;
    s.row({bench::num(std::int64_t{n}), bench::num(max_arcs),
           bench::num(bound)});
  }
  s.print("Widest multiway branch vs. the §2.3 3^n bound (loopy(k) meta "
          "states hold up to k branching members)");
}

void BM_ConvertLoopy(benchmark::State& state) {
  auto compiled = driver::compile(workload::loopy_source(static_cast<int>(state.range(0))));
  core::ConvertOptions opts;
  opts.max_meta_states = 1 << 22;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::meta_state_convert(compiled.graph, kCost, opts));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConvertLoopy)->DenseRange(1, 6)->Complexity();

void BM_ConvertLoopyCompressed(benchmark::State& state) {
  auto compiled = driver::compile(workload::loopy_source(static_cast<int>(state.range(0))));
  core::ConvertOptions opts;
  opts.compress = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::meta_state_convert(compiled.graph, kCost, opts));
}
BENCHMARK(BM_ConvertLoopyCompressed)->DenseRange(1, 6);

}  // namespace

MSC_BENCH_MAIN(report)
