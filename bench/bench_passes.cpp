// PASS-PIPELINE — the instrumented PassManager (DESIGN.md §9) must cost
// (almost) nothing: its job is attribution, not transformation. Two tables:
//
//   1. per-pass time share — where the default (+compress/+split) pipeline
//      actually spends its wall time on scaling workloads, straight from
//      the telemetry trace the manager records anyway.
//   2. dispatch overhead — PassManager-run default pipeline versus the
//      same stages called directly (simplify → peephole →
//      meta_state_convert → subsume → straighten), with a bit-identity
//      check. The pin: manager overhead < 2% of the direct chain.
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "msc/core/straighten.hpp"
#include "msc/core/subsume.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/ir/passes.hpp"
#include "msc/ir/peephole.hpp"
#include "msc/pass/pass.hpp"
#include "msc/workload/generator.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;

struct Workload {
  const char* name;
  std::string source;
};

std::vector<Workload> workloads() {
  return {
      {"listing4", workload::listing4().source},
      {"branchy(5)", workload::branchy_source(5)},
      {"oddeven_sort", workload::kernel("oddeven_sort").source},
      {"nested(4)", workload::nested_branch_source(4)},
  };
}

double best_of(int reps, const std::function<double()>& once) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) best = std::min(best, once());
  return best;
}

// The exact work the default pipeline performs, called directly with no
// manager, no trace records, no metric snapshots.
core::ConvertResult direct_chain(ir::StateGraph graph,
                                 const core::ConvertOptions& base) {
  ir::simplify(graph);
  ir::peephole(graph);
  core::ConvertOptions o = base;
  o.subsume = false;
  o.straighten = false;
  core::ConvertResult conv = core::meta_state_convert(graph, kCost, o);
  if (conv.automaton.compressed) core::subsume_automaton(conv.automaton);
  core::straighten(conv.automaton);
  return conv;
}

void report() {
  // ---- Table 1: per-pass wall-time share --------------------------------
  Table shares({"workload", "pipeline", "pass", "seconds", "share"},
               {20, 26, 12, 12, 8});
  for (const Workload& w : workloads()) {
    for (bool heavy : {false, true}) {
      driver::PipelineOptions popts;
      popts.convert.compress = heavy;
      popts.convert.time_split = heavy;
      driver::Converted conv = driver::convert(w.source, kCost, popts);
      double total = 0;
      for (const auto& rec : conv.trace.passes) total += rec.seconds;
      for (const auto& rec : conv.trace.passes)
        shares.row({w.name, heavy ? "default+compress+split" : "default",
                    rec.name, fmt_double(rec.seconds * 1e3, 3) + "ms",
                    bench::pct(total > 0 ? rec.seconds / total : 0)});
    }
  }
  shares.print("T-PASS-SHARE: per-pass wall time, telemetry trace");

  // ---- Table 2: manager dispatch overhead vs the direct call chain ------
  // The <2% pin is enforced on workloads whose direct chain runs >=1ms.
  // Below that the fixed telemetry cost (a handful of heap allocations per
  // pass record) and steady_clock jitter dominate a microsecond-scale
  // conversion, so a percentage there measures noise, not dispatch.
  Table overhead({"workload", "direct", "managed", "overhead", "identical"},
                 {20, 12, 12, 12, 10});
  constexpr double kPinThresholdSeconds = 1e-3;
  double worst_overhead = 0;
  for (const Workload& w : workloads()) {
    const driver::Compiled fronted = driver::front(w.source);
    const core::ConvertOptions base;  // default pipeline: no compress/split

    std::string direct_dump;
    const double direct_s = best_of(9, [&] {
      auto t0 = std::chrono::steady_clock::now();
      core::ConvertResult conv = direct_chain(fronted.graph, base);
      auto t1 = std::chrono::steady_clock::now();
      direct_dump = conv.automaton.dump();
      return std::chrono::duration<double>(t1 - t0).count();
    });

    std::string managed_dump;
    const double managed_s = best_of(9, [&] {
      auto t0 = std::chrono::steady_clock::now();
      core::ConvertResult conv = pass::run_conversion_pipeline(
          fronted.graph, kCost, pass::default_pipeline(), base);
      auto t1 = std::chrono::steady_clock::now();
      managed_dump = conv.automaton.dump();
      return std::chrono::duration<double>(t1 - t0).count();
    });

    const double over = managed_s / direct_s - 1.0;
    const bool pinned = direct_s >= kPinThresholdSeconds;
    if (pinned) worst_overhead = std::max(worst_overhead, over);
    overhead.row({w.name, fmt_double(direct_s * 1e3, 3) + "ms",
                  fmt_double(managed_s * 1e3, 3) + "ms",
                  bench::pct(over) + (pinned ? "" : " (info)"),
                  direct_dump == managed_dump ? "yes" : "NO"});
    if (direct_dump != managed_dump) {
      std::fprintf(stderr,
                   "FATAL: managed pipeline diverged from direct chain on %s\n",
                   w.name);
      std::exit(1);
    }
  }
  overhead.print("T-PASS-OVERHEAD: PassManager dispatch vs direct calls");
  std::printf("\nworst dispatch overhead (>=1ms workloads): %.2f%% (budget 2%%)\n",
              100.0 * worst_overhead);
  if (worst_overhead >= 0.02) {
    std::fprintf(stderr, "FATAL: PassManager dispatch overhead exceeds 2%%\n");
    std::exit(1);
  }
}

// google-benchmark timings: the managed/direct pair on the heaviest
// workload, so regressions show up in the standard bench output too.
void BM_DirectChain(benchmark::State& state) {
  const driver::Compiled fronted =
      driver::front(workload::nested_branch_source(3));
  for (auto _ : state)
    benchmark::DoNotOptimize(direct_chain(fronted.graph, {}));
}
BENCHMARK(BM_DirectChain)->Unit(benchmark::kMillisecond);

void BM_ManagedPipeline(benchmark::State& state) {
  const driver::Compiled fronted =
      driver::front(workload::nested_branch_source(3));
  for (auto _ : state)
    benchmark::DoNotOptimize(pass::run_conversion_pipeline(
        fronted.graph, kCost, pass::default_pipeline(), {}));
}
BENCHMARK(BM_ManagedPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

MSC_BENCH_MAIN(report)
