// T-HASH — §3.2.3 / [Die92a]: multiway branches keyed on sparse
// aggregate-pc words must dispatch through a customized-hash jump table
// rather than a compare chain. Measure modeled dispatch cost, table
// density, and which hash families the searcher picks on real automata.
#include "bench_util.hpp"

#include "msc/driver/pipeline.hpp"
#include "msc/codegen/program.hpp"
#include "msc/hash/multiway.hpp"
#include "msc/support/rng.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;

std::vector<std::uint64_t> subset_keys(int nbits, Rng& rng, std::size_t count) {
  // Random aggregate-pc values: subsets of nbits scattered pc bits.
  std::vector<int> bits;
  while (bits.size() < static_cast<std::size_t>(nbits)) {
    int b = static_cast<int>(rng.next_below(48));
    bool dup = false;
    for (int o : bits) dup |= o == b;
    if (!dup) bits.push_back(b);
  }
  std::vector<std::uint64_t> keys;
  while (keys.size() < count) {
    std::uint64_t k = 0;
    for (int b : bits)
      if (rng.chance(1, 2)) k |= 1ull << b;
    if (k == 0) continue;
    bool dup = false;
    for (std::uint64_t o : keys) dup |= o == k;
    if (!dup) keys.push_back(k);
  }
  return keys;
}

void report() {
  std::printf("== T-HASH: multiway-branch encoding ==\n");

  // Modeled dispatch cost: hashed jump table vs. linear compare chain.
  Table t({"cases", "hashed cost", "chain cost", "speedup", "mean density"},
          {8, 12, 12, 10, 13});
  Rng rng(7);
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    double density = 0.0;
    int trials = 20;
    for (int i = 0; i < trials; ++i) {
      auto keys = subset_keys(static_cast<int>(n < 6 ? 6 : n), rng, n);
      auto sw = hash::build_switch(keys);
      density += sw.density();
    }
    std::int64_t hashed = kCost.hash_dispatch;
    std::int64_t chain = kCost.case_test * static_cast<std::int64_t>((n + 1) / 2);
    t.row({bench::num(n), bench::num(hashed), bench::num(chain),
           bench::ratio(static_cast<double>(chain) / static_cast<double>(hashed)),
           bench::pct(density / trials)});
  }
  t.print("Modeled dispatch cycles per transition (chain cost = average "
          "successful compare depth)");

  // What the searcher picks on real meta-state automata.
  Table fam({"kernel", "switches", "identity", "shift", "not-shift",
             "xor-shift", "mul", "linear", "mean table"},
            {14, 10, 10, 8, 11, 11, 6, 8, 11});
  for (const auto& name : {"listing1", "listing3", "branchy4", "recursion"}) {
    auto compiled = driver::compile(workload::kernel(name).source);
    auto conv = core::meta_state_convert(compiled.graph, kCost, {});
    auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
    std::size_t counts[6] = {0, 0, 0, 0, 0, 0};
    std::size_t total = 0, table_cells = 0;
    for (const auto& mc : prog.states) {
      if (mc.trans != codegen::TransKind::Multiway) continue;
      ++total;
      counts[static_cast<int>(mc.sw.fn.kind)]++;
      table_cells += mc.sw.table_size();
    }
    fam.row({name, bench::num(total), bench::num(counts[0]),
             bench::num(counts[1]), bench::num(counts[2]),
             bench::num(counts[3]), bench::num(counts[4]),
             bench::num(counts[5]),
             total ? fmt_double(static_cast<double>(table_cells) /
                                    static_cast<double>(total), 1)
                   : "-"});
  }
  fam.print("Hash-family selection over real automata ([Die92a] families; "
            "Listing 5 used not-shift and xor-shift forms)");
}

void BM_BuildSwitch(benchmark::State& state) {
  Rng rng(11);
  auto keys = subset_keys(8, rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(hash::build_switch(keys));
}
BENCHMARK(BM_BuildSwitch)->Arg(4)->Arg(16)->Arg(64);

void BM_HashedLookup(benchmark::State& state) {
  Rng rng(13);
  auto keys = subset_keys(8, rng, 16);
  auto sw = hash::build_switch(keys);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.lookup(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_HashedLookup);

}  // namespace

MSC_BENCH_MAIN(report)
