#ifndef MSC_BENCH_UTIL_HPP
#define MSC_BENCH_UTIL_HPP

// Shared plumbing for the experiment benches. Each bench binary prints the
// paper-reproduction table(s) first (captured into bench_output.txt /
// EXPERIMENTS.md) and then runs its google-benchmark timings. Every bench
// additionally accepts `--json <path>` ('-' = stdout): the tables, any
// named metrics, and the pass/fail gates are written as one
// machine-readable document (schema below; consumed by CI's perf-smoke
// step and the committed BENCH_baseline.json).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "msc/support/str.hpp"

namespace msc::bench {

/// Collects everything a bench run wants to persist: each printed table,
/// free-form scalar metrics, and gate outcomes. Written as JSON by
/// MSC_BENCH_MAIN when --json was given; otherwise it only tracks gate
/// failures for the exit code.
///
/// Schema (version 1):
///   {"schema": 1, "bench": "<name>",
///    "tables": [{"title", "headers": [...], "rows": [[cell, ...], ...]}],
///    "metrics": {"name": value, ...},
///    "gates": [{"name", "passed", "detail"}]}
class JsonReport {
 public:
  static JsonReport& instance() {
    static JsonReport r;
    return r;
  }

  void set_bench(std::string name) { bench_ = std::move(name); }

  void add_table(const std::string& title,
                 const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows) {
    tables_.push_back({title, headers, rows});
  }

  /// A named scalar (ns/op, ratios, counts). `value` is rendered verbatim,
  /// so pass the decimal rendering you want in the file.
  void metric(const std::string& name, double value) {
    metrics_.emplace_back(name, fmt_double(value, 6));
  }
  void metric(const std::string& name, std::int64_t value) {
    metrics_.emplace_back(name, std::to_string(value));
  }

  /// Record a gate outcome. Failed gates turn the process exit code
  /// non-zero (MSC_BENCH_MAIN) so CI fails even when --json is unused.
  bool gate(const std::string& name, bool passed, const std::string& detail) {
    gates_.push_back({name, passed, detail});
    if (!passed) {
      ++failures_;
      std::fprintf(stderr, "GATE FAILED [%s]: %s\n", name.c_str(),
                   detail.c_str());
    } else {
      std::printf("gate [%s] ok: %s\n", name.c_str(), detail.c_str());
    }
    return passed;
  }

  int failures() const { return failures_; }

  std::string to_json() const {
    std::string out = cat("{\n  \"schema\": 1,\n  \"bench\": \"",
                          json_escape(bench_), "\",\n  \"tables\": [");
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const TableData& tab = tables_[t];
      out += cat(t ? "," : "", "\n    {\"title\": \"",
                 json_escape(tab.title), "\", \"headers\": [");
      for (std::size_t i = 0; i < tab.headers.size(); ++i)
        out += cat(i ? ", " : "", "\"", json_escape(tab.headers[i]), "\"");
      out += "], \"rows\": [";
      for (std::size_t r = 0; r < tab.rows.size(); ++r) {
        out += cat(r ? ", " : "", "[");
        for (std::size_t c = 0; c < tab.rows[r].size(); ++c)
          out += cat(c ? ", " : "", "\"", json_escape(tab.rows[r][c]), "\"");
        out += "]";
      }
      out += "]}";
    }
    out += cat(tables_.empty() ? "" : "\n  ", "],\n  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i)
      out += cat(i ? ", " : "", "\"", json_escape(metrics_[i].first),
                 "\": ", metrics_[i].second);
    out += "},\n  \"gates\": [";
    for (std::size_t i = 0; i < gates_.size(); ++i)
      out += cat(i ? ", " : "", "{\"name\": \"", json_escape(gates_[i].name),
                 "\", \"passed\": ", gates_[i].passed ? "true" : "false",
                 ", \"detail\": \"", json_escape(gates_[i].detail), "\"}");
    out += "]\n}\n";
    return out;
  }

  /// Write to `path` ('-' = stdout). Returns false (and prints to stderr)
  /// when the file cannot be written.
  bool write(const std::string& path) const {
    const std::string json = to_json();
    if (path == "-") {
      std::fputs(json.c_str(), stdout);
      return true;
    }
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write JSON report to '%s'\n",
                   path.c_str());
      return false;
    }
    out << json;
    return static_cast<bool>(out.flush());
  }

 private:
  struct TableData {
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  struct Gate {
    std::string name;
    bool passed;
    std::string detail;
  };

  std::string bench_ = "bench";
  std::vector<TableData> tables_;
  std::vector<std::pair<std::string, std::string>> metrics_;
  std::vector<Gate> gates_;
  int failures_ = 0;
};

/// Fixed-width table printer for paper-style result tables. Every printed
/// table is also registered with JsonReport, so --json captures exactly
/// what the text report showed.
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<int> widths = {})
      : headers_(std::move(headers)), widths_(std::move(widths)) {
    if (widths_.empty())
      for (const std::string& h : headers_)
        widths_.push_back(static_cast<int>(h.size()) + 4);
  }

  void row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void print(const std::string& title) const {
    std::printf("\n### %s\n", title.c_str());
    print_cells(headers_);
    std::string rule;
    for (int w : widths_) rule += std::string(static_cast<std::size_t>(w), '-');
    std::printf("%s\n", rule.c_str());
    for (const auto& r : rows_) print_cells(r);
    std::fflush(stdout);
    JsonReport::instance().add_table(title, headers_, rows_);
  }

 private:
  void print_cells(const std::vector<std::string>& cells) const {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i)
      line += pad_right(cells[i],
                        static_cast<std::size_t>(
                            i < widths_.size() ? widths_[i] : 12));
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<int> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string num(std::int64_t v) { return std::to_string(v); }
inline std::string num(std::size_t v) { return std::to_string(v); }
inline std::string pct(double f) { return fmt_double(100.0 * f, 1) + "%"; }
inline std::string ratio(double f) { return fmt_double(f, 2) + "x"; }

inline std::string bench_name(const char* argv0) {
  const std::string s = argv0;
  const std::size_t slash = s.find_last_of('/');
  return slash == std::string::npos ? s : s.substr(slash + 1);
}

/// Consume a leading `--json <path>` / `--json=<path>` (anywhere in argv)
/// before google-benchmark sees the argument list. Returns the path, empty
/// when absent.
inline std::string consume_json_flag(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    if (starts_with(arg, "--json=")) {
      path = arg.substr(7);
      continue;
    }
    argv[w++] = argv[i];
  }
  argc = w;
  return path;
}

/// Standard main: print the reproduction report, run timings, then write
/// the JSON report when --json was given. Exit code is non-zero when any
/// gate failed or the report could not be written.
#define MSC_BENCH_MAIN(report_fn)                                       \
  int main(int argc, char** argv) {                                     \
    ::msc::bench::JsonReport& msc_bench_report =                        \
        ::msc::bench::JsonReport::instance();                           \
    msc_bench_report.set_bench(::msc::bench::bench_name(argv[0]));      \
    const std::string msc_bench_json_path =                             \
        ::msc::bench::consume_json_flag(argc, argv);                    \
    report_fn();                                                        \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    if (!msc_bench_json_path.empty() &&                                 \
        !msc_bench_report.write(msc_bench_json_path))                   \
      return 1;                                                         \
    return msc_bench_report.failures() == 0 ? 0 : 1;                    \
  }

}  // namespace msc::bench

#endif  // MSC_BENCH_UTIL_HPP
