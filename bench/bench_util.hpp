#ifndef MSC_BENCH_UTIL_HPP
#define MSC_BENCH_UTIL_HPP

// Shared plumbing for the experiment benches. Each bench binary prints the
// paper-reproduction table(s) first (captured into bench_output.txt /
// EXPERIMENTS.md) and then runs its google-benchmark timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "msc/support/str.hpp"

namespace msc::bench {

/// Fixed-width table printer for paper-style result tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<int> widths = {})
      : headers_(std::move(headers)), widths_(std::move(widths)) {
    if (widths_.empty())
      for (const std::string& h : headers_)
        widths_.push_back(static_cast<int>(h.size()) + 4);
  }

  void row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void print(const std::string& title) const {
    std::printf("\n### %s\n", title.c_str());
    print_cells(headers_);
    std::string rule;
    for (int w : widths_) rule += std::string(static_cast<std::size_t>(w), '-');
    std::printf("%s\n", rule.c_str());
    for (const auto& r : rows_) print_cells(r);
    std::fflush(stdout);
  }

 private:
  void print_cells(const std::vector<std::string>& cells) const {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i)
      line += pad_right(cells[i],
                        static_cast<std::size_t>(
                            i < widths_.size() ? widths_[i] : 12));
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<int> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string num(std::int64_t v) { return std::to_string(v); }
inline std::string num(std::size_t v) { return std::to_string(v); }
inline std::string pct(double f) { return fmt_double(100.0 * f, 1) + "%"; }
inline std::string ratio(double f) { return fmt_double(f, 2) + "x"; }

/// Standard main: print the reproduction report, then run timings.
#define MSC_BENCH_MAIN(report_fn)                                     \
  int main(int argc, char** argv) {                                   \
    report_fn();                                                      \
    ::benchmark::Initialize(&argc, argv);                             \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                            \
    ::benchmark::Shutdown();                                          \
    return 0;                                                         \
  }

}  // namespace msc::bench

#endif  // MSC_BENCH_UTIL_HPP
