// T-BARRIER — §2.6: barrier synchronization reduces the state space
// "without adding to the complexity of each meta state." Measure state
// counts and mean width with/without barriers, in both barrier modes,
// against compression (which also shrinks states but widens them).
#include "bench_util.hpp"

#include "msc/driver/pipeline.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;

struct Sample {
  std::string states;
  double width = 0.0;
};

Sample sample(const std::string& src, core::ConvertOptions opts) {
  opts.max_meta_states = 150000;
  auto compiled = driver::compile(src);
  try {
    auto res = core::meta_state_convert(compiled.graph, kCost, opts);
    return {bench::num(res.automaton.num_states()),
            res.automaton.mean_width()};
  } catch (const core::ExplosionError&) {
    return {">150000", 0.0};
  } catch (const CompileError&) {
    // PaperPrune with >1 distinct barrier is rejected at compile time now;
    // keep the table shape and render the refusal.
    return {"rejected", 0.0};
  }
}

void report() {
  std::printf("== T-BARRIER: barriers vs. compression as state-space "
              "control ==\n");

  Table t({"k", "no barrier", "prune", "track", "compressed", "prune width",
           "comp width"},
          {6, 12, 10, 10, 12, 13, 11});
  for (int k = 1; k <= 7; ++k) {
    core::ConvertOptions base, prune, track, comp;
    prune.barrier_mode = core::BarrierMode::PaperPrune;
    track.barrier_mode = core::BarrierMode::TrackOccupancy;
    comp.compress = true;
    Sample none = sample(workload::loopy_source(k), base);
    Sample p = sample(workload::loopy_barrier_source(k), prune);
    Sample tr = sample(workload::loopy_barrier_source(k), track);
    Sample c = sample(workload::loopy_source(k), comp);
    t.row({bench::num(std::int64_t{k}), none.states, p.states, tr.states,
           c.states, fmt_double(p.width, 2), fmt_double(c.width, 2)});
  }
  t.print("Meta states over k divergent loops — barriers keep states "
          "*narrow* (≈1 member) while compression pays with width");

  // Barrier placement frequency sweep: a barrier every loop vs. every
  // second loop vs. only at the end.
  Table f({"placement", "meta states"}, {26, 12});
  {
    core::ConvertOptions prune;
    prune.barrier_mode = core::BarrierMode::PaperPrune;
    f.row({"every loop (k=6)",
           sample(workload::loopy_barrier_source(6), prune).states});
    // Every second loop: interleave manually.
    std::string half = R"(poly int x;
int main() {
  poly int acc;
  poly int i;
  acc = 0;
)";
    for (int j = 0; j < 6; ++j) {
      half += "  i = ((x >> " + std::to_string(j) + ") & 3) + 1;\n";
      half += "  do { acc = acc * 2 + " + std::to_string(j) +
              "; i = i - 1; } while (i > 0);\n";
      if (j % 2 == 1) half += "  wait;\n";
    }
    half += "  return acc;\n}\n";
    f.row({"every 2nd loop (k=6)", sample(half, prune).states});
    f.row({"no barrier (k=6)", sample(workload::loopy_source(6), prune).states});
  }
  f.print("Barrier placement frequency (k=6): each barrier truncates the "
          "divergence window");
}

void BM_ConvertBarrierPrune(benchmark::State& state) {
  auto compiled =
      driver::compile(workload::loopy_barrier_source(static_cast<int>(state.range(0))));
  core::ConvertOptions opts;
  opts.barrier_mode = core::BarrierMode::PaperPrune;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::meta_state_convert(compiled.graph, kCost, opts));
}
// k=1 is the only accepted prune shape since multi-barrier pruning became
// a compile error; the k sweep moved to BM_ConvertBarrierTrack.
BENCHMARK(BM_ConvertBarrierPrune)->DenseRange(1, 1);

void BM_ConvertBarrierTrack(benchmark::State& state) {
  auto compiled =
      driver::compile(workload::loopy_barrier_source(static_cast<int>(state.range(0))));
  core::ConvertOptions opts;
  opts.barrier_mode = core::BarrierMode::TrackOccupancy;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::meta_state_convert(compiled.graph, kCost, opts));
}
BENCHMARK(BM_ConvertBarrierTrack)->DenseRange(2, 8, 2);

void BM_ConvertNoBarrier(benchmark::State& state) {
  auto compiled =
      driver::compile(workload::loopy_source(static_cast<int>(state.range(0))));
  core::ConvertOptions opts;
  opts.max_meta_states = 1 << 22;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::meta_state_convert(compiled.graph, kCost, opts));
}
BENCHMARK(BM_ConvertNoBarrier)->DenseRange(2, 6, 2);

}  // namespace

MSC_BENCH_MAIN(report)
