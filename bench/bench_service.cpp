// T-SERVE — load-generator bench for the mscd daemon (DESIGN.md §13).
//
// A real daemon is started on a Unix socket and hammered the way a build
// farm would: a cold sweep of distinct programs (every compile is a
// conversion-cache miss), a warm sweep of the same programs (every
// compile is a hit), run and stats traffic, and a multi-client burst.
// Per-request wall latency is recorded client-side and reported as
// p50/p95/p99 columns; the gate demands warm-cache compile throughput at
// least 5x the cold throughput — the whole point of sharing one
// process-wide conversion cache across tenants.
#include "bench_util.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "msc/service/client.hpp"
#include "msc/service/daemon.hpp"
#include "msc/service/service.hpp"
#include "msc/support/json.hpp"
#include "msc/support/str.hpp"

using namespace msc;
using bench::Table;

namespace {

std::string quoted(const std::string& s) {
  return cat("\"", json_escape(s), "\"");
}

/// Distinct programs (different multiplier constants) so a cold sweep
/// really is all cache misses, not accidental hits. The bounded barrier
/// loop with a data-dependent branch gives conversion real work (dozens
/// of meta-states), so a cache miss costs what production compiles cost.
std::string source_for(int i) {
  return cat("poly int x;\npoly int y;\n"
             "int main() {\n"
             "  int i; i = 0;\n"
             "  while (i < 16) {\n"
             "    if (x > i) {\n"
             "      if (y > x) { y = y + x * ", i + 2,
             "; } else { y = y + x; }\n"
             "    } else { y = y - x; }\n"
             "    wait;\n"
             "    i = i + 1;\n"
             "  }\n"
             "  return y + procid();\n"
             "}\n");
}

std::string compile_frame(int i) {
  return cat("{\"op\": \"compile\", \"tenant\": \"bench\", \"source\": ",
             quoted(source_for(i)), "}");
}

std::string run_frame(int i) {
  return cat("{\"op\": \"run\", \"tenant\": \"bench\", \"source\": ",
             quoted(source_for(i)), ", \"nprocs\": 8, \"seed\": 1}");
}

struct Sweep {
  std::vector<double> latencies_us;  // per-request, client-observed
  double seconds = 0.0;              // whole-sweep wall time
  int failures = 0;
  double throughput() const {
    return seconds > 0.0 ? static_cast<double>(latencies_us.size()) / seconds
                         : 0.0;
  }
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(rank, v.size() - 1)];
}

/// Send each frame as its own request on one connection, timing every
/// round trip.
Sweep sweep(service::Client& client, const std::vector<std::string>& frames) {
  using clock = std::chrono::steady_clock;
  Sweep s;
  const auto start = clock::now();
  for (const std::string& frame : frames) {
    const auto t0 = clock::now();
    const std::string response = client.request(frame, 120'000);
    const auto t1 = clock::now();
    s.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    json::Value doc = json::parse(response);
    if (!doc.at("ok").b) ++s.failures;
  }
  s.seconds = std::chrono::duration<double>(clock::now() - start).count();
  return s;
}

std::string us(double v) { return fmt_double(v, 1); }

void report_service() {
  auto& report = bench::JsonReport::instance();

  service::DaemonOptions o;
  o.socket_path = cat("/tmp/msc_bench_service_", ::getpid(), ".sock");
  o.workers = 4;
  service::Daemon daemon(o);
  daemon.start();

  constexpr int kPrograms = 24;
  std::vector<std::string> compiles, runs, stats;
  for (int i = 0; i < kPrograms; ++i) compiles.push_back(compile_frame(i));
  for (int i = 0; i < kPrograms; ++i) runs.push_back(run_frame(i));
  for (int i = 0; i < kPrograms; ++i) stats.push_back("{\"op\": \"stats\"}");

  service::Client client;
  client.connect(daemon.socket_path());
  const Sweep cold = sweep(client, compiles);   // all misses
  // Warm sweeps are all hits, so repeats are free — keep the fastest of
  // three to shield the 5x gate from a single scheduler hiccup (the
  // cold sweep cannot be repeated and is long enough to average out).
  Sweep warm = sweep(client, compiles);
  int warm_failures_total = warm.failures;
  for (int rep = 0; rep < 2; ++rep) {
    Sweep again = sweep(client, compiles);
    warm_failures_total += again.failures;
    if (again.seconds < warm.seconds) std::swap(warm, again);
  }
  warm.failures = warm_failures_total;
  const Sweep ran = sweep(client, runs);        // cached conversions
  const Sweep stat = sweep(client, stats);      // no conversion at all

  // Multi-client burst: 4 clients × the warm compile sweep, measuring
  // aggregate served throughput under concurrency.
  constexpr int kClients = 4;
  std::vector<Sweep> burst(kClients);
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c)
      threads.emplace_back([&, c] {
        service::Client burst_client;
        burst_client.connect(daemon.socket_path());
        burst[static_cast<std::size_t>(c)] = sweep(burst_client, compiles);
      });
    for (std::thread& t : threads) t.join();
  }
  double burst_seconds = 0.0;
  std::vector<double> burst_lat;
  int burst_failures = 0;
  for (const Sweep& s : burst) {
    burst_seconds = std::max(burst_seconds, s.seconds);
    burst_lat.insert(burst_lat.end(), s.latencies_us.begin(),
                     s.latencies_us.end());
    burst_failures += s.failures;
  }
  const double burst_throughput =
      burst_seconds > 0.0
          ? static_cast<double>(burst_lat.size()) / burst_seconds
          : 0.0;

  daemon.request_stop();
  daemon.wait();

  Table t({"op", "requests", "p50 us", "p95 us", "p99 us", "req/s"},
          {26, 10, 12, 12, 12, 12});
  const auto row = [&](const char* name, const Sweep& s, double throughput) {
    t.row({name, bench::num(static_cast<std::int64_t>(s.latencies_us.size())),
           us(percentile(s.latencies_us, 0.50)),
           us(percentile(s.latencies_us, 0.95)),
           us(percentile(s.latencies_us, 0.99)),
           fmt_double(throughput, 1)});
  };
  row("compile (cold cache)", cold, cold.throughput());
  row("compile (warm cache)", warm, warm.throughput());
  row("run (cached conversion)", ran, ran.throughput());
  row("stats", stat, stat.throughput());
  Sweep burst_all;
  burst_all.latencies_us = burst_lat;
  burst_all.seconds = burst_seconds;
  row(cat("compile warm x", kClients, " clients").c_str(), burst_all,
      burst_throughput);
  t.print(
      "T-SERVE: daemon round-trip latency over a Unix socket (4 workers)");

  report.metric("serve_cold_p99_us", percentile(cold.latencies_us, 0.99));
  report.metric("serve_warm_p99_us", percentile(warm.latencies_us, 0.99));
  report.metric("serve_cold_throughput_rps", cold.throughput());
  report.metric("serve_warm_throughput_rps", warm.throughput());
  report.metric("serve_burst_throughput_rps", burst_throughput);

  const int failures =
      cold.failures + warm.failures + ran.failures + stat.failures +
      burst_failures;
  report.gate("serve-all-ok", failures == 0,
              cat(failures, " failed responses across ",
                  cold.latencies_us.size() + warm.latencies_us.size() +
                      ran.latencies_us.size() + stat.latencies_us.size() +
                      burst_lat.size(),
                  " requests"));
  const double speedup =
      cold.seconds > 0.0 && warm.seconds > 0.0 ? cold.seconds / warm.seconds
                                               : 0.0;
  report.gate(
      "serve-warm-cache-5x", speedup >= 5.0,
      cat("warm compile sweep ", bench::ratio(speedup),
          " faster than cold (", fmt_double(cold.seconds * 1e3, 1),
          "ms vs ", fmt_double(warm.seconds * 1e3, 1),
          "ms for ", kPrograms, " compiles); gate needs >= 5x"));
}

/// Microbenchmark: one warm compile through the full protocol engine
/// (parse request -> cache hit -> render response), no socket.
void BM_ServiceHandleLineWarmCompile(benchmark::State& state) {
  service::Service svc;
  const std::string frame = compile_frame(0);
  benchmark::DoNotOptimize(svc.handle_line(frame));  // prime the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.handle_line(frame));
  }
}
BENCHMARK(BM_ServiceHandleLineWarmCompile)->Unit(benchmark::kMicrosecond);

/// Microbenchmark: the stats op — pure protocol + bookkeeping overhead.
void BM_ServiceHandleLineStats(benchmark::State& state) {
  service::Service svc;
  const std::string frame = "{\"op\": \"stats\"}";
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.handle_line(frame));
  }
}
BENCHMARK(BM_ServiceHandleLineStats)->Unit(benchmark::kMicrosecond);

}  // namespace

MSC_BENCH_MAIN(report_service)
