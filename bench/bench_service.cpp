// T-SERVE — load-generator bench for the mscd daemon (DESIGN.md §13).
//
// A real daemon is started on a Unix socket and hammered the way a build
// farm would: a cold sweep of distinct programs (every compile is a
// conversion-cache miss), a warm sweep of the same programs (every
// compile is a hit), run and stats traffic, and a multi-client burst.
// Per-request wall latency is recorded client-side and reported as
// p50/p95/p99 columns; the gate demands warm-cache compile throughput at
// least 5x the cold throughput — the whole point of sharing one
// process-wide conversion cache across tenants.
#include "bench_util.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "msc/service/client.hpp"
#include "msc/service/daemon.hpp"
#include "msc/service/service.hpp"
#include "msc/support/json.hpp"
#include "msc/support/str.hpp"

using namespace msc;
using bench::Table;

namespace {

std::string quoted(const std::string& s) {
  return cat("\"", json_escape(s), "\"");
}

/// Distinct programs (different multiplier constants) so a cold sweep
/// really is all cache misses, not accidental hits. The bounded barrier
/// loop with a data-dependent branch gives conversion real work (dozens
/// of meta-states), so a cache miss costs what production compiles cost.
std::string source_for(int i) {
  return cat("poly int x;\npoly int y;\n"
             "int main() {\n"
             "  int i; i = 0;\n"
             "  while (i < 16) {\n"
             "    if (x > i) {\n"
             "      if (y > x) { y = y + x * ", i + 2,
             "; } else { y = y + x; }\n"
             "    } else { y = y - x; }\n"
             "    wait;\n"
             "    i = i + 1;\n"
             "  }\n"
             "  return y + procid();\n"
             "}\n");
}

std::string compile_frame(int i) {
  return cat("{\"op\": \"compile\", \"tenant\": \"bench\", \"source\": ",
             quoted(source_for(i)), "}");
}

std::string run_frame(int i) {
  return cat("{\"op\": \"run\", \"tenant\": \"bench\", \"source\": ",
             quoted(source_for(i)), ", \"nprocs\": 8, \"seed\": 1}");
}

struct Sweep {
  std::vector<double> latencies_us;  // per-request, client-observed
  double seconds = 0.0;              // whole-sweep wall time
  int failures = 0;
  double throughput() const {
    return seconds > 0.0 ? static_cast<double>(latencies_us.size()) / seconds
                         : 0.0;
  }
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(rank, v.size() - 1)];
}

/// Send each frame as its own request on one connection, timing every
/// round trip. When `responses` is given, every response line is kept
/// (byte-identity checks in the T-SERVE-OBS section).
Sweep sweep(service::Client& client, const std::vector<std::string>& frames,
            std::vector<std::string>* responses = nullptr) {
  using clock = std::chrono::steady_clock;
  Sweep s;
  const auto start = clock::now();
  for (const std::string& frame : frames) {
    const auto t0 = clock::now();
    const std::string response = client.request(frame, 120'000);
    const auto t1 = clock::now();
    s.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    json::Value doc = json::parse(response);
    if (!doc.at("ok").b) ++s.failures;
    if (responses) responses->push_back(response);
  }
  s.seconds = std::chrono::duration<double>(clock::now() - start).count();
  return s;
}

std::string us(double v) { return fmt_double(v, 1); }

void report_service() {
  auto& report = bench::JsonReport::instance();

  service::DaemonOptions o;
  o.socket_path = cat("/tmp/msc_bench_service_", ::getpid(), ".sock");
  o.workers = 4;
  service::Daemon daemon(o);
  daemon.start();

  constexpr int kPrograms = 24;
  std::vector<std::string> compiles, runs, stats;
  for (int i = 0; i < kPrograms; ++i) compiles.push_back(compile_frame(i));
  for (int i = 0; i < kPrograms; ++i) runs.push_back(run_frame(i));
  for (int i = 0; i < kPrograms; ++i) stats.push_back("{\"op\": \"stats\"}");

  service::Client client;
  client.connect(daemon.socket_path());
  const Sweep cold = sweep(client, compiles);   // all misses
  // Warm sweeps are all hits, so repeats are free — keep the fastest of
  // three to shield the 5x gate from a single scheduler hiccup (the
  // cold sweep cannot be repeated and is long enough to average out).
  Sweep warm = sweep(client, compiles);
  int warm_failures_total = warm.failures;
  for (int rep = 0; rep < 2; ++rep) {
    Sweep again = sweep(client, compiles);
    warm_failures_total += again.failures;
    if (again.seconds < warm.seconds) std::swap(warm, again);
  }
  warm.failures = warm_failures_total;
  const Sweep ran = sweep(client, runs);        // cached conversions
  const Sweep stat = sweep(client, stats);      // no conversion at all

  // Multi-client burst: 4 clients × the warm compile sweep, measuring
  // aggregate served throughput under concurrency.
  constexpr int kClients = 4;
  std::vector<Sweep> burst(kClients);
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c)
      threads.emplace_back([&, c] {
        service::Client burst_client;
        burst_client.connect(daemon.socket_path());
        burst[static_cast<std::size_t>(c)] = sweep(burst_client, compiles);
      });
    for (std::thread& t : threads) t.join();
  }
  double burst_seconds = 0.0;
  std::vector<double> burst_lat;
  int burst_failures = 0;
  for (const Sweep& s : burst) {
    burst_seconds = std::max(burst_seconds, s.seconds);
    burst_lat.insert(burst_lat.end(), s.latencies_us.begin(),
                     s.latencies_us.end());
    burst_failures += s.failures;
  }
  const double burst_throughput =
      burst_seconds > 0.0
          ? static_cast<double>(burst_lat.size()) / burst_seconds
          : 0.0;

  daemon.request_stop();
  daemon.wait();

  Table t({"op", "requests", "p50 us", "p95 us", "p99 us", "req/s"},
          {26, 10, 12, 12, 12, 12});
  const auto row = [&](const char* name, const Sweep& s, double throughput) {
    t.row({name, bench::num(static_cast<std::int64_t>(s.latencies_us.size())),
           us(percentile(s.latencies_us, 0.50)),
           us(percentile(s.latencies_us, 0.95)),
           us(percentile(s.latencies_us, 0.99)),
           fmt_double(throughput, 1)});
  };
  row("compile (cold cache)", cold, cold.throughput());
  row("compile (warm cache)", warm, warm.throughput());
  row("run (cached conversion)", ran, ran.throughput());
  row("stats", stat, stat.throughput());
  Sweep burst_all;
  burst_all.latencies_us = burst_lat;
  burst_all.seconds = burst_seconds;
  row(cat("compile warm x", kClients, " clients").c_str(), burst_all,
      burst_throughput);
  t.print(
      "T-SERVE: daemon round-trip latency over a Unix socket (4 workers)");

  report.metric("serve_cold_p99_us", percentile(cold.latencies_us, 0.99));
  report.metric("serve_warm_p99_us", percentile(warm.latencies_us, 0.99));
  report.metric("serve_cold_throughput_rps", cold.throughput());
  report.metric("serve_warm_throughput_rps", warm.throughput());
  report.metric("serve_burst_throughput_rps", burst_throughput);

  const int failures =
      cold.failures + warm.failures + ran.failures + stat.failures +
      burst_failures;
  report.gate("serve-all-ok", failures == 0,
              cat(failures, " failed responses across ",
                  cold.latencies_us.size() + warm.latencies_us.size() +
                      ran.latencies_us.size() + stat.latencies_us.size() +
                      burst_lat.size(),
                  " requests"));
  const double speedup =
      cold.seconds > 0.0 && warm.seconds > 0.0 ? cold.seconds / warm.seconds
                                               : 0.0;
  report.gate(
      "serve-warm-cache-5x", speedup >= 5.0,
      cat("warm compile sweep ", bench::ratio(speedup),
          " faster than cold (", fmt_double(cold.seconds * 1e3, 1),
          "ms vs ", fmt_double(warm.seconds * 1e3, 1),
          "ms for ", kPrograms, " compiles); gate needs >= 5x"));
}

/// T-SERVE-OBS (DESIGN.md §15): the observability tax. The same request
/// mix is replayed against two daemons — one with every serving-tier
/// observability feature off, one fully armed (JSONL access log,
/// slowlog capturing every request via --slow-micros 1, labeled
/// per-tenant/per-op metrics always on) — and the gate demands the
/// armed warm-compile p95 stay within max(3%, 50us) of baseline.
/// A second gate pins correctness: responses from the armed daemon are
/// byte-identical to baseline once the optional "trace" member is
/// stripped, and the access log holds exactly one line per request.

/// Remove the trailing `, "trace": "..."` member a traced response
/// carries (Service appends it last, just before the closing brace).
std::string strip_trace(std::string response) {
  const std::size_t pos = response.rfind(", \"trace\": \"");
  if (pos == std::string::npos) return response;
  response.erase(pos, response.size() - 1 - pos);
  return response;
}

/// Zero the conversion's wall-clock block. A compile payload embeds the
/// converter's "stats" string, whose trailing "phase_seconds" object
/// holds real measured times — the one part of a response that can
/// never match across two daemon processes. It is the last member of
/// the stats string and "stats" is the last payload member, so every
/// digit from the marker onward is a timing digit (call after
/// strip_trace so the trace's digits are already gone).
std::string zero_phase_seconds(std::string response) {
  const std::size_t pos = response.find("phase_seconds");
  if (pos == std::string::npos) return response;
  for (std::size_t i = pos; i < response.size(); ++i)
    if (response[i] >= '1' && response[i] <= '9') response[i] = '0';
  return response;
}

std::string traced_compile_frame(int i) {
  return cat("{\"op\": \"compile\", \"tenant\": \"bench\", \"trace\": true, "
             "\"source\": ", quoted(source_for(i)), "}");
}

struct ObsConfigResult {
  std::vector<std::string> cold_responses;    // untraced, all misses
  std::vector<std::string> warm_responses;    // first warm rep, untraced
  std::vector<std::string> traced_responses;  // armed only: traced hits
  Sweep best_warm;        // warm rep with the lowest p95 (of kWarmReps)
  int failures = 0;
  std::int64_t requests = 0;
};

void report_service_obs() {
  auto& report = bench::JsonReport::instance();

  constexpr int kPrograms = 24;
  constexpr int kWarmReps = 4;

  std::vector<std::string> compiles, traced_compiles;
  for (int i = 0; i < kPrograms; ++i) {
    compiles.push_back(compile_frame(i));
    traced_compiles.push_back(traced_compile_frame(i));
  }

  const std::string access_log =
      cat("/tmp/msc_bench_service_obs_", ::getpid(), ".log");

  const auto run_config = [&](bool armed) {
    service::DaemonOptions o;
    o.socket_path = cat("/tmp/msc_bench_service_obs_", ::getpid(),
                        armed ? "_armed" : "_base", ".sock");
    o.workers = 4;
    if (armed) {
      o.service.observability.access_log_path = access_log;
      o.service.observability.slow_micros = 1;  // capture every request
      o.service.observability.slowlog_capacity = 32;
    }
    service::Daemon daemon(o);
    daemon.start();
    service::Client client;
    client.connect(daemon.socket_path());

    ObsConfigResult r;
    const Sweep cold = sweep(client, compiles, &r.cold_responses);
    r.failures += cold.failures;
    r.requests += static_cast<std::int64_t>(cold.latencies_us.size());
    // Warm reps are untraced in both configs so the latency comparison
    // is apples-to-apples; keep the rep with the lowest p95 to shield
    // the 50us gate margin from a single scheduler hiccup.
    for (int rep = 0; rep < kWarmReps; ++rep) {
      Sweep w = sweep(client, compiles,
                      rep == 0 ? &r.warm_responses : nullptr);
      r.failures += w.failures;
      r.requests += static_cast<std::int64_t>(w.latencies_us.size());
      if (rep == 0 || percentile(w.latencies_us, 0.95) <
                          percentile(r.best_warm.latencies_us, 0.95))
        r.best_warm = std::move(w);
    }
    if (armed) {
      // One traced warm sweep: every response is a cache hit serving the
      // same cached payload as the untraced warm hits, so after
      // stripping "trace" it must be byte-identical to them.
      const Sweep traced = sweep(client, traced_compiles,
                                 &r.traced_responses);
      r.failures += traced.failures;
      r.requests += static_cast<std::int64_t>(traced.latencies_us.size());
    }
    daemon.request_stop();
    daemon.wait();
    return r;
  };

  const ObsConfigResult base = run_config(false);
  const ObsConfigResult armed = run_config(true);

  // Byte-identity, trace excluded. Two halves:
  //  - Same daemon: a traced warm hit, "trace" member stripped (and it
  //    must actually be present), is byte-identical to the untraced
  //    warm hit for the same program — attaching a trace perturbs
  //    nothing else in the response.
  //  - Across daemons: armed responses match baseline byte-for-byte
  //    once the converter's measured phase_seconds digits are zeroed —
  //    arming observability changes no response content, only the two
  //    processes' wall clocks differ.
  int mismatches = 0, traces_missing = 0;
  for (std::size_t i = 0; i < armed.traced_responses.size(); ++i) {
    const std::string stripped = strip_trace(armed.traced_responses[i]);
    if (stripped == armed.traced_responses[i]) ++traces_missing;
    if (i >= armed.warm_responses.size() ||
        stripped != armed.warm_responses[i])
      ++mismatches;
  }
  const auto cross_match = [&](const std::vector<std::string>& a,
                               const std::vector<std::string>& b) {
    for (std::size_t i = 0; i < a.size(); ++i)
      if (i >= b.size() ||
          zero_phase_seconds(a[i]) != zero_phase_seconds(b[i]))
        ++mismatches;
  };
  cross_match(armed.cold_responses, base.cold_responses);
  cross_match(armed.warm_responses, base.warm_responses);

  // The access log must hold exactly one line per armed request.
  std::int64_t log_lines = 0;
  {
    std::ifstream in(access_log);
    std::string line;
    while (std::getline(in, line)) ++log_lines;
  }
  ::unlink(access_log.c_str());

  const double base_p95 = percentile(base.best_warm.latencies_us, 0.95);
  const double armed_p95 = percentile(armed.best_warm.latencies_us, 0.95);

  Table t({"config", "requests", "p50 us", "p95 us", "p99 us", "req/s"},
          {26, 10, 12, 12, 12, 12});
  const auto row = [&](const char* name, const Sweep& s) {
    t.row({name, bench::num(static_cast<std::int64_t>(s.latencies_us.size())),
           us(percentile(s.latencies_us, 0.50)),
           us(percentile(s.latencies_us, 0.95)),
           us(percentile(s.latencies_us, 0.99)),
           fmt_double(s.throughput(), 1)});
  };
  row("warm compile (obs off)", base.best_warm);
  row("warm compile (obs armed)", armed.best_warm);
  t.print("T-SERVE-OBS: warm-compile latency with full observability armed "
          "(access log + slowlog + labeled metrics) vs off");

  report.metric("serve_obs_base_p95_us", base_p95);
  report.metric("serve_obs_armed_p95_us", armed_p95);
  report.metric("serve_obs_overhead_us", armed_p95 - base_p95);

  report.gate("serve-obs-all-ok", base.failures + armed.failures == 0,
              cat(base.failures + armed.failures, " failed responses across ",
                  base.requests + armed.requests, " requests"));
  report.gate("serve-obs-byte-identical",
              mismatches == 0 && traces_missing == 0,
              cat(mismatches, " response mismatches (trace-excluded), ",
                  traces_missing, " traced responses without a trace member, ",
                  "across ",
                  armed.traced_responses.size() + armed.cold_responses.size() +
                      armed.warm_responses.size(),
                  " compared"));
  report.gate("serve-obs-access-log-complete", log_lines == armed.requests,
              cat("access log holds ", log_lines, " lines for ",
                  armed.requests, " requests"));
  const double budget = std::max(base_p95 * 0.03, 50.0);
  report.gate("serve-obs-p95-overhead", armed_p95 <= base_p95 + budget,
              cat("armed p95 ", us(armed_p95), "us vs baseline ", us(base_p95),
                  "us; budget +", us(budget), "us (max of 3% and 50us)"));
}

/// Microbenchmark: one warm compile through the full protocol engine
/// (parse request -> cache hit -> render response), no socket.
void BM_ServiceHandleLineWarmCompile(benchmark::State& state) {
  service::Service svc;
  const std::string frame = compile_frame(0);
  benchmark::DoNotOptimize(svc.handle_line(frame));  // prime the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.handle_line(frame));
  }
}
BENCHMARK(BM_ServiceHandleLineWarmCompile)->Unit(benchmark::kMicrosecond);

/// Microbenchmark: the stats op — pure protocol + bookkeeping overhead.
void BM_ServiceHandleLineStats(benchmark::State& state) {
  service::Service svc;
  const std::string frame = "{\"op\": \"stats\"}";
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.handle_line(frame));
  }
}
BENCHMARK(BM_ServiceHandleLineStats)->Unit(benchmark::kMicrosecond);

void report_all() {
  report_service();
  report_service_obs();
}

}  // namespace

MSC_BENCH_MAIN(report_all)
