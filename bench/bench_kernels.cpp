// T-KERN / T-COSCHED — the verified-kernel conformance sweep and the
// MASIM-style co-scheduling payoff (DESIGN.md §12).
//
// T-KERN runs every verified kernel on every engine against its host-side
// ground truth and reports the simulated cost profile; the gate demands
// bit-correct results on all engines at PE counts spanning a machine word
// boundary (5, 64, 65).
//
// T-COSCHED time-multiplexes kernel mixes on one simulated machine and
// compares array utilization (busy / resident PE-cycles) across policies,
// with the best sequential order enumerated exactly over every
// permutation via CoOptions::order. Programs that shed occupancy (halt)
// make their tails cheap to preempt — on a two-reduction mix greedy
// co-scheduling must beat the best sequential order (the gate). Mixes
// where sequential wins (workqueue-heavy: spawns rebuild occupancy, so
// there is no cheap tail) are reported unvarnished.
#include "bench_util.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/kernels/verified.hpp"
#include "msc/simd/coschedule.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;
constexpr std::uint64_t kSeed = 1;

driver::PipelineOptions codegen_pipeline() {
  driver::PipelineOptions popts;
  popts.pipeline = driver::resolve_pipeline(popts);
  popts.pipeline.push_back("codegen");
  return popts;
}

const char* engine_name(mimd::SimdEngine e) {
  switch (e) {
    case mimd::SimdEngine::Reference: return "reference";
    case mimd::SimdEngine::Fast: return "fast";
    case mimd::SimdEngine::Codegen: return "codegen";
  }
  return "?";
}

struct KernelRun {
  simd::SimdStats stats;
  bool ground_truth_ok = false;
  std::string diagnostic;
};

/// Convert + run one verified kernel standalone and check it against the
/// host-side expected() answers.
KernelRun run_kernel(const std::string& spec, mimd::SimdEngine engine) {
  kernels::VerifiedParams params;
  params.input_seed = kSeed;
  const kernels::VerifiedCase c = kernels::parse_case(spec, params);
  auto conv = driver::convert(c.source, kCost, codegen_pipeline());
  mimd::RunConfig config = c.config;
  config.engine = engine;
  auto m = simd::make_machine(*conv.prog, kCost, config);
  driver::seed_machine(*m, conv.compiled, config, kSeed);
  m->run();
  KernelRun r;
  r.stats = m->stats();
  r.diagnostic = kernels::check(c, driver::observe_simd(*m, conv.compiled, config));
  r.ground_truth_ok = r.diagnostic.empty();
  return r;
}

/// Build and run one co-scheduled mix. `order` non-empty pins the
/// schedule order exactly (used to enumerate sequential permutations).
simd::CoResult run_mix(const std::vector<std::string>& mix,
                       simd::CoPolicy policy,
                       const std::vector<std::size_t>& order) {
  std::vector<std::unique_ptr<driver::Converted>> keep;
  simd::CoScheduler cs;
  for (const std::string& spec : mix) {
    kernels::VerifiedParams params;
    params.input_seed = kSeed;
    const kernels::VerifiedCase c = kernels::parse_case(spec, params);
    auto conv = std::make_unique<driver::Converted>(
        driver::convert(c.source, kCost, codegen_pipeline()));
    mimd::RunConfig config = c.config;
    config.engine = mimd::SimdEngine::Fast;
    auto m = simd::make_machine(*conv->prog, kCost, config);
    driver::seed_machine(*m, conv->compiled, config, kSeed);
    cs.add_program(spec, std::move(m));
    keep.push_back(std::move(conv));
  }
  simd::CoOptions co;
  co.policy = policy;
  co.seed = kSeed;
  co.order = order;
  return cs.run(co);
}

/// Exact best-sequential baseline: run every permutation of the mix.
double best_sequential_util(const std::vector<std::string>& mix) {
  std::vector<std::size_t> order(mix.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  double best = 0.0;
  do {
    best = std::max(
        best, run_mix(mix, simd::CoPolicy::Sequential, order)
                  .machine_utilization());
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

void report_kernels() {
  auto& report = bench::JsonReport::instance();

  // ---- T-KERN: every kernel x engine at the word-boundary width.
  std::printf("== T-KERN: verified kernels vs host ground truth "
              "(n=65, all engines) ==\n");
  Table t({"kernel", "engine", "cycles", "busy", "util", "transitions",
           "ground truth"},
          {12, 11, 9, 9, 8, 13, 14});
  bool all_ok = true;
  std::string first_failure;
  for (const std::string& name : kernels::verified_names()) {
    for (const auto engine :
         {mimd::SimdEngine::Reference, mimd::SimdEngine::Fast,
          mimd::SimdEngine::Codegen}) {
      const KernelRun r = run_kernel(name + "@65", engine);
      if (!r.ground_truth_ok && first_failure.empty())
        first_failure = cat(name, "@65/", engine_name(engine), ": ",
                            r.diagnostic);
      all_ok = all_ok && r.ground_truth_ok;
      t.row({name, engine_name(engine), bench::num(r.stats.control_cycles),
             bench::num(r.stats.busy_pe_cycles),
             bench::pct(r.stats.utilization()),
             bench::num(r.stats.meta_transitions),
             r.ground_truth_ok ? "ok" : "FAIL"});
    }
  }
  t.print("verified kernels, n=65 (word boundary), input seed 1");

  // The gate also sweeps the other word-boundary-adjacent widths.
  for (const std::string& name : kernels::verified_names())
    for (const int n : {5, 64})
      for (const auto engine :
           {mimd::SimdEngine::Reference, mimd::SimdEngine::Fast,
            mimd::SimdEngine::Codegen}) {
        const KernelRun r = run_kernel(cat(name, "@", n), engine);
        if (!r.ground_truth_ok && first_failure.empty())
          first_failure = cat(name, "@", n, "/", engine_name(engine), ": ",
                              r.diagnostic);
        all_ok = all_ok && r.ground_truth_ok;
      }
  report.gate("T-KERN.ground-truth", all_ok,
              all_ok ? "6 kernels x 3 engines x n in {5, 64, 65} all "
                       "bit-correct against host expected()"
                     : first_failure);

  // ---- T-COSCHED: policy comparison per mix, best-sequential exact.
  std::printf("\n== T-COSCHED: co-scheduling policies vs exact "
              "best-sequential (fast engine) ==\n");
  const std::vector<std::vector<std::string>> mixes = {
      {"reduce@65", "reduce@64"},
      {"reduce@65", "scan@65"},
      {"reduce@65", "workqueue@64"},
      {"workqueue@64", "workqueue@64"},
      {"reduce@64", "reduce@65", "workqueue@64"},
  };
  Table ct({"mix", "best seq", "rr", "greedy", "winner"},
           {34, 10, 8, 8, 10});
  double gate_greedy = 0.0, gate_seq = 0.0;
  for (const auto& mix : mixes) {
    std::string label = mix[0];
    for (std::size_t i = 1; i < mix.size(); ++i) label += "+" + mix[i];
    const double seq = best_sequential_util(mix);
    const double rr =
        run_mix(mix, simd::CoPolicy::RoundRobin, {}).machine_utilization();
    const double greedy =
        run_mix(mix, simd::CoPolicy::GreedyOccupancy, {})
            .machine_utilization();
    if (mix == mixes[0]) {
      gate_greedy = greedy;
      gate_seq = seq;
    }
    const double best = std::max({seq, rr, greedy});
    ct.row({label, bench::pct(seq), bench::pct(rr), bench::pct(greedy),
            best == greedy && greedy > seq ? "greedy"
            : best == rr && rr > seq      ? "rr"
                                          : "sequential"});
    report.metric(cat("cosched.", label, ".best_seq"), seq);
    report.metric(cat("cosched.", label, ".greedy"), greedy);
  }
  ct.print(
      "array utilization = busy / resident PE-cycles; best seq enumerates "
      "every order; shedding mixes favor greedy, spawn-heavy mixes do not");

  report.gate(
      "T-COSCHED.greedy-beats-best-sequential",
      gate_greedy > gate_seq * 1.05,
      cat("reduce@65+reduce@64: greedy ", bench::pct(gate_greedy),
          " vs best sequential ", bench::pct(gate_seq),
          " (gate: greedy > 1.05x best sequential)"));
}

}  // namespace

MSC_BENCH_MAIN(report_kernels)
