// T-SYNC — §5: "fine-grain MIMD code is generally inefficient on most
// MIMD machines due to the cost of runtime synchronization, but
// synchronization is implicit in the meta-state converted SIMD code, and
// hence has no runtime cost." Measure barrier protocol cycles on the MIMD
// machine vs. zero on the MSC automaton as barrier frequency and PE count
// grow.
#include "bench_util.hpp"

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;
constexpr std::uint64_t kSeed = 47;

void report() {
  std::printf("== T-SYNC: runtime synchronization cost, MIMD vs. MSC ==\n");

  Table t({"barriers", "MIMD sync cyc", "MIMD idle cyc", "MSC sync cyc",
           "MSC global-ors"},
          {10, 15, 15, 14, 15});
  for (int k : {1, 2, 4, 8}) {
    std::string src = workload::loopy_barrier_source(k);
    auto compiled = driver::compile(src);
    mimd::RunConfig cfg;
    cfg.nprocs = 16;
    mimd::MimdStats ms;
    driver::run_oracle(compiled, cfg, kSeed, &ms);
    core::ConvertOptions opts;
    // k>1 distinct barriers makes PaperPrune a compile error; occupancy
    // tracking folds synchronization into the automaton just the same.
    opts.barrier_mode = k == 1 ? core::BarrierMode::PaperPrune
                               : core::BarrierMode::TrackOccupancy;
    auto conv = core::meta_state_convert(compiled.graph, kCost, opts);
    simd::SimdStats ss;
    driver::run_simd(compiled, conv, cfg, kSeed, kCost, {}, &ss);
    t.row({bench::num(std::int64_t{k}), bench::num(ms.barrier_sync_cycles),
           bench::num(ms.barrier_idle_cycles), "0",
           bench::num(ss.global_ors)});
  }
  t.print("Barrier-frequency sweep over k loops+barriers (16 PEs): the "
          "barrier \"does not result in a runtime operation\" under MSC");

  Table p({"PEs", "MIMD sync cyc", "MIMD sync share", "MSC sync cyc"},
          {6, 15, 17, 13});
  for (std::int64_t n : {4, 16, 64, 256}) {
    auto compiled = driver::compile(workload::loopy_barrier_source(4));
    mimd::RunConfig cfg;
    cfg.nprocs = n;
    mimd::MimdStats ms;
    driver::run_oracle(compiled, cfg, kSeed, &ms);
    double share = static_cast<double>(ms.barrier_sync_cycles) /
                   static_cast<double>(ms.busy_cycles + ms.barrier_sync_cycles);
    p.row({bench::num(n), bench::num(ms.barrier_sync_cycles),
           bench::pct(share), "0"});
  }
  p.print("PE-count sweep (4 barriers): MIMD pays per-PE sync cycles that "
          "grow with the machine; MSC folds synchronization into the "
          "automaton structure");
}

void BM_OracleWithBarriers(benchmark::State& state) {
  auto compiled = driver::compile(workload::loopy_barrier_source(4));
  mimd::RunConfig cfg;
  cfg.nprocs = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(driver::run_oracle(compiled, cfg, kSeed));
  }
}
BENCHMARK(BM_OracleWithBarriers)->Arg(16)->Arg(64);

void BM_SimdWithBarriers(benchmark::State& state) {
  auto compiled = driver::compile(workload::loopy_barrier_source(4));
  core::ConvertOptions opts;
  opts.barrier_mode = core::BarrierMode::TrackOccupancy;
  auto conv = core::meta_state_convert(compiled.graph, kCost, opts);
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = state.range(0);
  for (auto _ : state) {
    auto m_ptr = simd::make_machine(prog, kCost, cfg);
    simd::SimdMachine& m = *m_ptr;
    driver::seed_machine(m, compiled, cfg, kSeed);
    m.run();
    benchmark::DoNotOptimize(m.stats());
  }
}
BENCHMARK(BM_SimdWithBarriers)->Arg(16)->Arg(64);

}  // namespace

MSC_BENCH_MAIN(report)
