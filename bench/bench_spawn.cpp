// T-SPAWN — §3.2.5 restricted dynamic process creation: spawn/halt via
// the pc-pool trick. Measure pool occupancy, spawn throughput, and
// oracle-vs-SIMD agreement across pool pressures and reuse policies.
#include "bench_util.hpp"

#include <algorithm>

#include "msc/codegen/program.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/simd/machine.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;

std::string spawn_fanout_source(int children) {
  std::string s = R"(int main() {
  poly int i;
  i = 0;
  while (i < )" + std::to_string(children) +
                  R"() {
    spawn {
      return 1000 + procid();
    }
    i = i + 1;
  }
  return procid();
}
)";
  return s;
}

void report() {
  std::printf("== T-SPAWN: restricted dynamic process creation ==\n");

  Table t({"children/parent", "parents", "PEs", "spawns", "peak alive",
           "final alive", "oracle match"},
          {17, 9, 6, 8, 11, 12, 12});
  for (int children : {1, 2, 4}) {
    std::string src = spawn_fanout_source(children);
    auto compiled = driver::compile(src);
    auto conv = core::meta_state_convert(compiled.graph, kCost, {});
    auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});

    mimd::RunConfig cfg;
    cfg.nprocs = 16;
    cfg.initial_active = 3;
    auto m_ptr = simd::make_machine(prog, kCost, cfg);
    simd::SimdMachine& m = *m_ptr;
    std::int64_t peak = m.alive_count();
    while (m.step()) peak = std::max(peak, m.alive_count());

    auto oracle = driver::run_oracle(compiled, cfg, 1);
    std::vector<long long> a, b;
    for (std::int64_t p = 0; p < cfg.nprocs; ++p) {
      if (m.ever_ran(p)) a.push_back(m.peek(p, frontend::Layout::kResultAddr).i);
      if (oracle.ran[static_cast<std::size_t>(p)])
        b.push_back(oracle.results[static_cast<std::size_t>(p)].i);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    t.row({bench::num(std::int64_t{children}), "3", bench::num(cfg.nprocs),
           bench::num(m.stats().spawns), bench::num(peak),
           bench::num(m.alive_count()), a == b ? "yes" : "NO"});
  }
  t.print("Fan-out sweep: parents spawn workers that compute, return, and "
          "free their PEs");

  // Pool-reuse policy: with reuse, a tiny pool sustains many spawns.
  Table r({"policy", "PEs", "spawns completed", "outcome"}, {22, 6, 18, 24});
  {
    std::string src = spawn_fanout_source(6);
    auto compiled = driver::compile(src);
    auto conv = core::meta_state_convert(compiled.graph, kCost, {});
    auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
    for (bool reuse : {false, true}) {
      mimd::RunConfig cfg;
      cfg.nprocs = 4;
      cfg.initial_active = 1;
      cfg.reuse_halted_pes = reuse;
      auto m_ptr = simd::make_machine(prog, kCost, cfg);
      simd::SimdMachine& m = *m_ptr;
      try {
        m.run();
        r.row({reuse ? "reuse halted PEs" : "fresh PEs only",
               bench::num(cfg.nprocs), bench::num(m.stats().spawns),
               "completed"});
      } catch (const ir::MachineFault&) {
        r.row({reuse ? "reuse halted PEs" : "fresh PEs only",
               bench::num(cfg.nprocs), bench::num(m.stats().spawns),
               "pool exhausted (fault)"});
      }
    }
  }
  r.print("§3.2.5 pool policy: \"processors that complete ... can be "
          "returned to the pool\" — 6 spawns through a 4-PE machine");
}

void BM_SpawnHeavyRun(benchmark::State& state) {
  std::string src = spawn_fanout_source(4);
  auto compiled = driver::compile(src);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 64;
  cfg.initial_active = 8;
  for (auto _ : state) {
    auto m_ptr = simd::make_machine(prog, kCost, cfg);
    simd::SimdMachine& m = *m_ptr;
    m.run();
    benchmark::DoNotOptimize(m.stats());
  }
}
BENCHMARK(BM_SpawnHeavyRun);

}  // namespace

MSC_BENCH_MAIN(report)
