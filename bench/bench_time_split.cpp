// T-SPLIT / FIG3-4 — §2.4: without time splitting, a meta state mixing a
// 5-cycle and a 100-cycle MIMD state wastes "up to 95% of its processor
// cycles simply waiting." Reproduce that exact example, then sweep arm
// imbalance and measure PE utilization before/after splitting.
#include "bench_util.hpp"

#include "msc/core/time_split.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using bench::Table;

namespace {

ir::CostModel kCost;
constexpr std::uint64_t kSeed = 31;

struct Measured {
  std::size_t graph_states;
  std::size_t meta_states;
  double worst_idle;
  double runtime_util;
  std::int64_t cycles;
  int splits;
};

Measured measure(const std::string& src, bool split) {
  auto compiled = driver::compile(src);
  core::ConvertOptions opts;
  opts.time_split = split;
  auto conv = core::meta_state_convert(compiled.graph, kCost, opts);
  Measured m;
  m.graph_states = conv.graph.size();
  m.meta_states = conv.automaton.num_states();
  m.splits = conv.stats.splits_performed;
  m.worst_idle = 0.0;
  for (const auto& ms : conv.automaton.states)
    m.worst_idle = std::max(
        m.worst_idle, core::meta_state_idle_fraction(conv.graph, ms.members, kCost));
  mimd::RunConfig cfg;
  cfg.nprocs = 16;
  simd::SimdStats stats;
  driver::run_simd(compiled, conv, cfg, kSeed, kCost, {}, &stats);
  m.runtime_util = stats.utilization();
  m.cycles = stats.control_cycles;
  return m;
}

void report() {
  std::printf("== T-SPLIT: §2.4 MIMD-state time splitting ==\n");

  // The paper's own numbers: a 5-cycle state merged with a 100-cycle
  // state → ~95%% idle. Build arms with those raw costs.
  {
    // Each `acc = acc * 3 + 1;` costs 11 cycles with the default model
    // (2 loads+2 stores pattern); calibrate op counts to land near 5/100.
    auto compiled = driver::compile(workload::imbalanced_once_source(1, 12));
    const ir::Block& start = compiled.graph.at(compiled.graph.start);
    std::int64_t cheap = kCost.block_cost(compiled.graph.at(start.target));
    std::int64_t dear = kCost.block_cost(compiled.graph.at(start.alt));
    if (cheap > dear) std::swap(cheap, dear);
    std::printf("\nFIG3/4 arms: cheap=%lld cycles, expensive=%lld cycles "
                "(paper example: 5 vs 100)\n",
                static_cast<long long>(cheap), static_cast<long long>(dear));
    Table fig({"", "graph states", "meta states", "worst idle", "runtime util",
               "cycles", "splits"},
              {14, 14, 13, 12, 14, 10, 8});
    Measured before = measure(workload::imbalanced_once_source(1, 12), false);
    Measured after = measure(workload::imbalanced_once_source(1, 12), true);
    fig.row({"unsplit", bench::num(before.graph_states),
             bench::num(before.meta_states), bench::pct(before.worst_idle),
             bench::pct(before.runtime_util), bench::num(before.cycles),
             bench::num(std::int64_t{before.splits})});
    fig.row({"time-split", bench::num(after.graph_states),
             bench::num(after.meta_states), bench::pct(after.worst_idle),
             bench::pct(after.runtime_util), bench::num(after.cycles),
             bench::num(std::int64_t{after.splits})});
    fig.print("Figs. 3-4 reproduction (straight-line imbalanced arms)");
  }

  // Sweep the imbalance ratio.
  Table sweep({"expensive ops", "idle unsplit", "idle split", "util unsplit",
               "util split", "splits"},
              {15, 13, 12, 13, 12, 8});
  for (int ops : {2, 4, 8, 16, 32}) {
    Measured before = measure(workload::imbalanced_once_source(1, ops), false);
    Measured after = measure(workload::imbalanced_once_source(1, ops), true);
    sweep.row({bench::num(std::int64_t{ops}), bench::pct(before.worst_idle),
               bench::pct(after.worst_idle), bench::pct(before.runtime_util),
               bench::pct(after.runtime_util),
               bench::num(std::int64_t{after.splits})});
  }
  sweep.print("Imbalance sweep: worst-case meta-state idle fraction and "
              "measured runtime utilization");

  // Threshold ablation (split_delta / split_percent of the paper's
  // pseudocode).
  Table thr({"split_delta", "split_percent", "splits", "meta states"},
            {13, 15, 8, 12});
  for (auto [delta, percent] : std::vector<std::pair<int, int>>{
           {4, 75}, {16, 75}, {64, 75}, {4, 25}, {4, 5}}) {
    auto compiled = driver::compile(workload::imbalanced_once_source(1, 16));
    core::ConvertOptions opts;
    opts.time_split = true;
    opts.split_delta = delta;
    opts.split_percent = percent;
    auto conv = core::meta_state_convert(compiled.graph, kCost, opts);
    thr.row({bench::num(std::int64_t{delta}), bench::num(std::int64_t{percent}),
             bench::num(std::int64_t{conv.stats.splits_performed}),
             bench::num(conv.automaton.num_states())});
  }
  thr.print("Threshold ablation — the paper's noise-level and "
            "acceptable-utilization cutoffs");

  // The cost of splitting: more states. Loops make base-mode conversion
  // explode (see DESIGN.md); compression keeps it tractable.
  Table cost({"kernel", "mode", "meta unsplit", "meta split", "splits"},
             {16, 12, 13, 11, 8});
  {
    core::ConvertOptions comp;
    comp.compress = true;
    comp.time_split = false;
    auto compiled = driver::compile(workload::imbalanced_source(1, 12));
    auto plain = core::meta_state_convert(compiled.graph, kCost, comp);
    comp.time_split = true;
    auto split = core::meta_state_convert(compiled.graph, kCost, comp);
    cost.row({"imbalanced(loop)", "compressed",
              bench::num(plain.automaton.num_states()),
              bench::num(split.automaton.num_states()),
              bench::num(std::int64_t{split.stats.splits_performed})});
  }
  cost.print("State-count cost of splitting under compression");
}

void BM_ConvertWithSplitting(benchmark::State& state) {
  auto compiled = driver::compile(workload::imbalanced_once_source(1, 16));
  core::ConvertOptions opts;
  opts.time_split = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::meta_state_convert(compiled.graph, kCost, opts));
}
BENCHMARK(BM_ConvertWithSplitting);

void BM_ConvertWithoutSplitting(benchmark::State& state) {
  auto compiled = driver::compile(workload::imbalanced_once_source(1, 16));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::meta_state_convert(compiled.graph, kCost, {}));
}
BENCHMARK(BM_ConvertWithoutSplitting);

}  // namespace

MSC_BENCH_MAIN(report)
