// Protocol conformance for mscd (DESIGN.md §13): every request kind
// round-trips over a real Unix-domain socket; compile/run payloads are
// byte-identical to what the standalone mscc binary emits for the same
// inputs; and hostile frames — malformed JSON, unknown fields, wrong
// types, oversized frames, nesting bombs, mid-request disconnects —
// produce typed error responses, never a crash or a hang.
#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "msc/service/client.hpp"
#include "msc/service/daemon.hpp"
#include "msc/support/json.hpp"
#include "msc/support/str.hpp"

using namespace msc;

namespace {

std::string tmp_path(const std::string& name) {
  return cat(MSCC_TMPDIR, "/", name);
}

/// Short socket paths: sun_path caps at ~107 bytes and the build dir can
/// be deep, so sockets go to /tmp keyed by pid.
std::string socket_path(const std::string& tag) {
  return cat("/tmp/msc_svc_", tag, "_", ::getpid(), ".sock");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string run_mscc(const std::string& args) {
  const std::string cmd = cat(MSCC_BINARY, " ", args, " 2>/dev/null");
  std::array<char, 4096> buf{};
  std::string out;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) return out;
  std::size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    out.append(buf.data(), n);
  pclose(pipe);
  return out;
}

std::string quoted(const std::string& s) {
  return cat("\"", json_escape(s), "\"");
}

/// Daemon + connected client for one test.
struct Server {
  service::Daemon daemon;
  service::Client client;

  explicit Server(const std::string& tag,
                  service::ServiceOptions service = {})
      : daemon([&] {
          service::DaemonOptions o;
          o.socket_path = socket_path(tag);
          o.workers = 4;
          o.service = service;
          return o;
        }()) {
    daemon.start();
    client.connect(daemon.socket_path());
  }
  ~Server() { daemon.request_stop(); daemon.wait(); }

  json::Value request(const std::string& frame) {
    return json::parse(client.request(frame, 60'000));
  }
};

void expect_error(const json::Value& doc, const std::string& kind) {
  ASSERT_TRUE(doc.find("ok") != nullptr);
  EXPECT_FALSE(doc.at("ok").b);
  ASSERT_TRUE(doc.find("error") != nullptr);
  EXPECT_EQ(doc.at("error").at("kind").as_string(), kind);
  EXPECT_FALSE(doc.at("error").at("message").as_string().empty());
}

const char* kSource =
    "poly int x;\n"
    "poly int out;\n"
    "int main() {\n"
    "  out = x * 2 + procid();\n"
    "  return out;\n"
    "}\n";

}  // namespace

TEST(ServiceProtocol, CompileRoundTrip) {
  Server s("compile");
  json::Value doc = s.request(
      cat("{\"op\": \"compile\", \"id\": 7, \"source\": ", quoted(kSource),
          "}"));
  EXPECT_TRUE(doc.at("ok").b);
  EXPECT_EQ(doc.at("op").as_string(), "compile");
  EXPECT_EQ(doc.at("id").as_int(), 7);
  EXPECT_EQ(doc.at("cache").as_string(), "miss");
  EXPECT_GT(doc.at("meta_states").as_int(), 0);
  EXPECT_NE(doc.at("automaton").as_string().find("meta-state automaton"),
            std::string::npos);
  // The convert-stats payload is itself a JSON document.
  json::Value stats = json::parse(doc.at("stats").as_string());
  EXPECT_GT(stats.at("meta_states").as_int(), 0);

  // The identical compile is a cache hit with the same automaton.
  json::Value again = s.request(
      cat("{\"op\": \"compile\", \"id\": \"two\", \"source\": ",
          quoted(kSource), "}"));
  EXPECT_EQ(again.at("id").as_string(), "two");
  EXPECT_EQ(again.at("cache").as_string(), "hit");
  EXPECT_EQ(again.at("automaton").as_string(),
            doc.at("automaton").as_string());
}

TEST(ServiceProtocol, CompileMatchesStandaloneMsccOnCorpus) {
  Server s("bytecmp");
  const std::vector<std::string> programs = {
      "kernel_reduce", "kernel_scan", "kernel_oddeven", "barrier_phases",
      "loop_bounded"};
  for (const std::string& name : programs) {
    const std::string path = cat(MSC_CORPUS_DIR, "/", name, ".mimdc");
    const std::string source = read_file(path);
    ASSERT_FALSE(source.empty()) << path;
    json::Value doc = s.request(
        cat("{\"op\": \"compile\", \"source\": ", quoted(source), "}"));
    ASSERT_TRUE(doc.at("ok").b) << name;
    EXPECT_EQ(doc.at("automaton").as_string(),
              run_mscc(cat("--emit meta ", path)))
        << name;

    // The convert-stats document embeds wall-clock phase timings, so the
    // comparison is field-wise over the deterministic members.
    const std::string trace = tmp_path(cat("svc_trace_", name, ".json"));
    run_mscc(cat("--emit meta --trace-convert ", trace, " ", path));
    json::Value daemon_stats = json::parse(doc.at("stats").as_string());
    json::Value local_stats = json::parse(read_file(trace));
    for (const char* field : {"meta_states", "arcs", "reach_calls",
                              "splits_performed", "restarts", "threads",
                              "batches"})
      EXPECT_EQ(daemon_stats.at(field).as_int(), local_stats.at(field).as_int())
          << name << " " << field;
  }
}

TEST(ServiceProtocol, RunProfileMatchesStandaloneMscc) {
  Server s("runcmp");
  const std::string path = cat(MSC_CORPUS_DIR, "/kernel_reduce.mimdc");
  const std::string source = read_file(path);
  json::Value doc = s.request(
      cat("{\"op\": \"run\", \"source\": ", quoted(source),
          ", \"nprocs\": 8, \"seed\": 3, \"profile\": true}"));
  ASSERT_TRUE(doc.at("ok").b);
  EXPECT_EQ(doc.at("engine").as_string(), "fast");

  const std::string prof = tmp_path("svc_run_profile.json");
  run_mscc(cat("--run --nprocs 8 --seed 3 --profile-simd ", prof, " ", path));
  EXPECT_EQ(doc.at("simd").as_string(), read_file(prof));

  // Determinism: the same request twice gives the same response payload.
  json::Value doc2 = s.request(
      cat("{\"op\": \"run\", \"source\": ", quoted(source),
          ", \"nprocs\": 8, \"seed\": 3, \"profile\": true}"));
  EXPECT_EQ(doc2.at("simd").as_string(), doc.at("simd").as_string());
  EXPECT_EQ(doc2.at("observed").as_string(), doc.at("observed").as_string());
  EXPECT_EQ(doc2.at("cache").as_string(), "hit");
}

TEST(ServiceProtocol, RunHonoursSimdIsaField) {
  // "simd_isa": "scalar" must reach RunConfig: the embedded simd payload
  // (the mscc --profile-simd schema) reports the resolved ISA.
  Server s("runisa");
  const std::string path = cat(MSC_CORPUS_DIR, "/kernel_reduce.mimdc");
  const std::string source = read_file(path);
  json::Value doc = s.request(
      cat("{\"op\": \"run\", \"source\": ", quoted(source),
          ", \"nprocs\": 8, \"seed\": 3, \"simd_isa\": \"scalar\", "
          "\"profile\": true}"));
  ASSERT_TRUE(doc.at("ok").b);
  json::Value simd = json::parse(doc.at("simd").as_string());
  EXPECT_EQ(simd.at("isa").as_string(), "scalar");
  EXPECT_EQ(simd.at("isa_lane_width").as_int(), 1);

  // An unknown ISA is a protocol error, not a crash.
  json::Value bad = s.request(
      cat("{\"op\": \"run\", \"source\": ", quoted(source),
          ", \"simd_isa\": \"mmx\"}"));
  ASSERT_FALSE(bad.at("ok").b);
}

TEST(ServiceProtocol, CoscheduleRoundTrip) {
  Server s("cosched");
  json::Value doc = s.request(
      "{\"op\": \"coschedule\", \"programs\": [\"reduce@8\", \"scan@8\"], "
      "\"policy\": \"rr\", \"quantum\": 2}");
  ASSERT_TRUE(doc.at("ok").b);
  EXPECT_EQ(doc.at("policy").as_string(), "rr");
  EXPECT_EQ(doc.at("machine_pes").as_int(), 16);
  for (const json::Value& v : doc.at("verdicts").elems)
    EXPECT_EQ(v.as_string(), "ok");
  json::Value cosched = json::parse(doc.at("cosched").as_string());
  EXPECT_EQ(cosched.at("programs").elems.size(), 2u);
}

TEST(ServiceProtocol, StatsAndMetrics) {
  Server s("stats");
  json::Value doc = s.request("{\"op\": \"stats\", \"metrics\": true}");
  ASSERT_TRUE(doc.at("ok").b);
  const json::Value& svc = doc.at("service");
  EXPECT_GE(svc.at("cache").at("misses").as_int(), 0);
  EXPECT_GE(svc.at("quota").at("block_budget").as_int(), 0);
  // The metrics member is the registry's own JSON document.
  json::Value metrics = json::parse(doc.at("metrics").as_string());
  EXPECT_TRUE(metrics.is_object());
}

TEST(ServiceProtocol, ShutdownStopsTheDaemon) {
  service::DaemonOptions o;
  o.socket_path = socket_path("shutdown");
  o.workers = 2;
  service::Daemon daemon(o);
  daemon.start();
  service::Client client;
  client.connect(daemon.socket_path());
  json::Value doc = json::parse(client.request("{\"op\": \"shutdown\"}"));
  EXPECT_TRUE(doc.at("ok").b);
  daemon.wait();  // returns only when every thread is joined
  // The socket file is gone; connecting again fails.
  service::Client again;
  EXPECT_THROW(again.connect(daemon.socket_path(), 100), std::runtime_error);
}

TEST(ServiceProtocol, MalformedFramesGetTypedErrors) {
  Server s("hostile");
  expect_error(s.request("this is not json"), "parse-error");
  expect_error(s.request("{\"op\": \"compile\", }"), "parse-error");
  expect_error(s.request("[1, 2, 3]"), "protocol-error");
  expect_error(s.request("{\"source\": \"int main() { return 0; }\"}"),
               "protocol-error");  // missing op
  expect_error(s.request("{\"op\": \"transmogrify\"}"), "protocol-error");
  expect_error(s.request("{\"op\": \"compile\"}"), "protocol-error");
  expect_error(
      s.request("{\"op\": \"compile\", \"source\": \"x\", \"wat\": 1}"),
      "protocol-error");  // unknown field
  expect_error(
      s.request("{\"op\": \"stats\", \"nprocs\": 4}"),
      "protocol-error");  // field from another op
  expect_error(
      s.request("{\"op\": \"run\", \"source\": \"x\", \"nprocs\": \"8\"}"),
      "protocol-error");  // wrong type
  expect_error(
      s.request("{\"op\": \"run\", \"source\": \"x\", \"nprocs\": 0}"),
      "protocol-error");  // out of range
  expect_error(
      s.request(
          "{\"op\": \"run\", \"source\": \"x\", \"nprocs\": 4, \"active\": 9}"),
      "protocol-error");  // active > nprocs
  expect_error(
      s.request("{\"op\": \"compile\", \"source\": \"x\", \"tenant\": \"\"}"),
      "protocol-error");
  expect_error(s.request("{\"op\": \"coschedule\", \"programs\": []}"),
               "protocol-error");

  // Compile errors in valid requests are their own kind.
  expect_error(
      s.request("{\"op\": \"compile\", \"source\": \"int main( {\"}"),
      "compile-error");
  // Tiny explosion guard trips the typed explosion error.
  const std::string source = read_file(cat(MSC_CORPUS_DIR,
                                           "/barrier_phases.mimdc"));
  expect_error(
      s.request(cat("{\"op\": \"compile\", \"source\": ", quoted(source),
                    ", \"max_meta_states\": 1}")),
      "explosion");

  // After all that abuse the daemon still serves.
  json::Value doc = s.request("{\"op\": \"stats\"}");
  EXPECT_TRUE(doc.at("ok").b);
}

TEST(ServiceProtocol, NestingBombIsAParseError) {
  Server s("bomb");
  std::string bomb = "{\"op\": ";
  for (int i = 0; i < 200; ++i) bomb += "[";
  for (int i = 0; i < 200; ++i) bomb += "]";
  bomb += "}";
  expect_error(s.request(bomb), "parse-error");
}

TEST(ServiceProtocol, OversizedFrameErrorsAndDropsTheConnection) {
  service::ServiceOptions opts;
  opts.limits.max_frame_bytes = 4096;
  Server s("oversize", opts);

  // A full oversized frame (with newline) gets the typed error.
  std::string huge = cat("{\"op\": \"compile\", \"source\": \"",
                         std::string(8192, 'x'), "\"}");
  std::string response;
  s.client.send_line(huge);
  ASSERT_TRUE(s.client.recv_line(response, 60'000));
  expect_error(json::parse(response), "frame-too-large");

  // A fresh connection still works: the daemon dropped only that client.
  service::Client fresh;
  fresh.connect(s.daemon.socket_path());
  json::Value doc = json::parse(fresh.request("{\"op\": \"stats\"}"));
  EXPECT_TRUE(doc.at("ok").b);
}

TEST(ServiceProtocol, MidRequestDisconnectLeavesDaemonServing) {
  Server s("disconnect");
  // Half a frame, no newline, then hang up.
  service::Client half;
  half.connect(s.daemon.socket_path());
  half.send_line("{\"op\": \"compile\", \"source\""); // send_line adds \n; so
  // also model a cut before the newline:
  service::Client cut;
  cut.connect(s.daemon.socket_path());
  cut.shutdown_write();
  half.close();
  cut.close();

  json::Value doc = s.request("{\"op\": \"stats\"}");
  EXPECT_TRUE(doc.at("ok").b);
}

TEST(ServiceProtocol, PipelinedRequestsEachGetOneResponse) {
  Server s("pipelined");
  for (int i = 0; i < 8; ++i)
    s.client.send_line(cat("{\"op\": \"stats\", \"id\": ", i, "}"));
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 8; ++i) {
    std::string line;
    ASSERT_TRUE(s.client.recv_line(line, 60'000));
    json::Value doc = json::parse(line);
    EXPECT_TRUE(doc.at("ok").b);
    seen[static_cast<std::size_t>(doc.at("id").as_int())] = true;
  }
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(seen[static_cast<std::size_t>(i)]);
}

TEST(ServiceProtocol, ReqlogCorpusReplays) {
  // Every checked-in request log must replay to exactly one response per
  // frame, with no crash — fuzzer findings land here as regressions.
  Server s("reqlog");
  const std::vector<std::string> logs = {
      cat(MSC_CORPUS_DIR, "/service_smoke.reqlog"),
      cat(MSC_CORPUS_DIR, "/service_hostile.reqlog"),
  };
  for (const std::string& log : logs) {
    std::ifstream in(log);
    ASSERT_TRUE(in.good()) << log;
    std::string frame;
    int frames = 0;
    while (std::getline(in, frame)) {
      if (frame.empty()) continue;
      std::string response = s.client.request(frame, 60'000);
      json::Value doc;
      ASSERT_NO_THROW(doc = json::parse(response)) << frame;
      ASSERT_TRUE(doc.find("ok") != nullptr) << frame;
      ++frames;
    }
    EXPECT_GT(frames, 0) << log;
  }
}
