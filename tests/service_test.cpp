// Protocol conformance for mscd (DESIGN.md §13): every request kind
// round-trips over a real Unix-domain socket; compile/run payloads are
// byte-identical to what the standalone mscc binary emits for the same
// inputs; and hostile frames — malformed JSON, unknown fields, wrong
// types, oversized frames, nesting bombs, mid-request disconnects —
// produce typed error responses, never a crash or a hang.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "msc/service/client.hpp"
#include "msc/service/daemon.hpp"
#include "msc/support/json.hpp"
#include "msc/support/str.hpp"

using namespace msc;

namespace {

std::string tmp_path(const std::string& name) {
  return cat(MSCC_TMPDIR, "/", name);
}

/// Short socket paths: sun_path caps at ~107 bytes and the build dir can
/// be deep, so sockets go to /tmp keyed by pid.
std::string socket_path(const std::string& tag) {
  return cat("/tmp/msc_svc_", tag, "_", ::getpid(), ".sock");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string run_mscc(const std::string& args) {
  const std::string cmd = cat(MSCC_BINARY, " ", args, " 2>/dev/null");
  std::array<char, 4096> buf{};
  std::string out;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) return out;
  std::size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    out.append(buf.data(), n);
  pclose(pipe);
  return out;
}

std::string quoted(const std::string& s) {
  return cat("\"", json_escape(s), "\"");
}

/// Daemon + connected client for one test.
struct Server {
  service::Daemon daemon;
  service::Client client;

  explicit Server(const std::string& tag,
                  service::ServiceOptions service = {})
      : daemon([&] {
          service::DaemonOptions o;
          o.socket_path = socket_path(tag);
          o.workers = 4;
          o.service = service;
          return o;
        }()) {
    daemon.start();
    client.connect(daemon.socket_path());
  }
  ~Server() { daemon.request_stop(); daemon.wait(); }

  json::Value request(const std::string& frame) {
    return json::parse(client.request(frame, 60'000));
  }
};

void expect_error(const json::Value& doc, const std::string& kind) {
  ASSERT_TRUE(doc.find("ok") != nullptr);
  EXPECT_FALSE(doc.at("ok").b);
  ASSERT_TRUE(doc.find("error") != nullptr);
  EXPECT_EQ(doc.at("error").at("kind").as_string(), kind);
  EXPECT_FALSE(doc.at("error").at("message").as_string().empty());
}

const char* kSource =
    "poly int x;\n"
    "poly int out;\n"
    "int main() {\n"
    "  out = x * 2 + procid();\n"
    "  return out;\n"
    "}\n";

}  // namespace

TEST(ServiceProtocol, CompileRoundTrip) {
  Server s("compile");
  json::Value doc = s.request(
      cat("{\"op\": \"compile\", \"id\": 7, \"source\": ", quoted(kSource),
          "}"));
  EXPECT_TRUE(doc.at("ok").b);
  EXPECT_EQ(doc.at("op").as_string(), "compile");
  EXPECT_EQ(doc.at("id").as_int(), 7);
  EXPECT_EQ(doc.at("cache").as_string(), "miss");
  EXPECT_GT(doc.at("meta_states").as_int(), 0);
  EXPECT_NE(doc.at("automaton").as_string().find("meta-state automaton"),
            std::string::npos);
  // The convert-stats payload is itself a JSON document.
  json::Value stats = json::parse(doc.at("stats").as_string());
  EXPECT_GT(stats.at("meta_states").as_int(), 0);

  // The identical compile is a cache hit with the same automaton.
  json::Value again = s.request(
      cat("{\"op\": \"compile\", \"id\": \"two\", \"source\": ",
          quoted(kSource), "}"));
  EXPECT_EQ(again.at("id").as_string(), "two");
  EXPECT_EQ(again.at("cache").as_string(), "hit");
  EXPECT_EQ(again.at("automaton").as_string(),
            doc.at("automaton").as_string());
}

TEST(ServiceProtocol, CompileMatchesStandaloneMsccOnCorpus) {
  Server s("bytecmp");
  const std::vector<std::string> programs = {
      "kernel_reduce", "kernel_scan", "kernel_oddeven", "barrier_phases",
      "loop_bounded"};
  for (const std::string& name : programs) {
    const std::string path = cat(MSC_CORPUS_DIR, "/", name, ".mimdc");
    const std::string source = read_file(path);
    ASSERT_FALSE(source.empty()) << path;
    json::Value doc = s.request(
        cat("{\"op\": \"compile\", \"source\": ", quoted(source), "}"));
    ASSERT_TRUE(doc.at("ok").b) << name;
    EXPECT_EQ(doc.at("automaton").as_string(),
              run_mscc(cat("--emit meta ", path)))
        << name;

    // The convert-stats document embeds wall-clock phase timings, so the
    // comparison is field-wise over the deterministic members.
    const std::string trace = tmp_path(cat("svc_trace_", name, ".json"));
    run_mscc(cat("--emit meta --trace-convert ", trace, " ", path));
    json::Value daemon_stats = json::parse(doc.at("stats").as_string());
    json::Value local_stats = json::parse(read_file(trace));
    for (const char* field : {"meta_states", "arcs", "reach_calls",
                              "splits_performed", "restarts", "threads",
                              "batches"})
      EXPECT_EQ(daemon_stats.at(field).as_int(), local_stats.at(field).as_int())
          << name << " " << field;
  }
}

TEST(ServiceProtocol, RunProfileMatchesStandaloneMscc) {
  Server s("runcmp");
  const std::string path = cat(MSC_CORPUS_DIR, "/kernel_reduce.mimdc");
  const std::string source = read_file(path);
  json::Value doc = s.request(
      cat("{\"op\": \"run\", \"source\": ", quoted(source),
          ", \"nprocs\": 8, \"seed\": 3, \"profile\": true}"));
  ASSERT_TRUE(doc.at("ok").b);
  EXPECT_EQ(doc.at("engine").as_string(), "fast");

  const std::string prof = tmp_path("svc_run_profile.json");
  run_mscc(cat("--run --nprocs 8 --seed 3 --profile-simd ", prof, " ", path));
  EXPECT_EQ(doc.at("simd").as_string(), read_file(prof));

  // Determinism: the same request twice gives the same response payload.
  json::Value doc2 = s.request(
      cat("{\"op\": \"run\", \"source\": ", quoted(source),
          ", \"nprocs\": 8, \"seed\": 3, \"profile\": true}"));
  EXPECT_EQ(doc2.at("simd").as_string(), doc.at("simd").as_string());
  EXPECT_EQ(doc2.at("observed").as_string(), doc.at("observed").as_string());
  EXPECT_EQ(doc2.at("cache").as_string(), "hit");
}

TEST(ServiceProtocol, RunHonoursSimdIsaField) {
  // "simd_isa": "scalar" must reach RunConfig: the embedded simd payload
  // (the mscc --profile-simd schema) reports the resolved ISA.
  Server s("runisa");
  const std::string path = cat(MSC_CORPUS_DIR, "/kernel_reduce.mimdc");
  const std::string source = read_file(path);
  json::Value doc = s.request(
      cat("{\"op\": \"run\", \"source\": ", quoted(source),
          ", \"nprocs\": 8, \"seed\": 3, \"simd_isa\": \"scalar\", "
          "\"profile\": true}"));
  ASSERT_TRUE(doc.at("ok").b);
  json::Value simd = json::parse(doc.at("simd").as_string());
  EXPECT_EQ(simd.at("isa").as_string(), "scalar");
  EXPECT_EQ(simd.at("isa_lane_width").as_int(), 1);

  // An unknown ISA is a protocol error, not a crash.
  json::Value bad = s.request(
      cat("{\"op\": \"run\", \"source\": ", quoted(source),
          ", \"simd_isa\": \"mmx\"}"));
  ASSERT_FALSE(bad.at("ok").b);
}

TEST(ServiceProtocol, CoscheduleRoundTrip) {
  Server s("cosched");
  json::Value doc = s.request(
      "{\"op\": \"coschedule\", \"programs\": [\"reduce@8\", \"scan@8\"], "
      "\"policy\": \"rr\", \"quantum\": 2}");
  ASSERT_TRUE(doc.at("ok").b);
  EXPECT_EQ(doc.at("policy").as_string(), "rr");
  EXPECT_EQ(doc.at("machine_pes").as_int(), 16);
  for (const json::Value& v : doc.at("verdicts").elems)
    EXPECT_EQ(v.as_string(), "ok");
  json::Value cosched = json::parse(doc.at("cosched").as_string());
  EXPECT_EQ(cosched.at("programs").elems.size(), 2u);
}

TEST(ServiceProtocol, StatsAndMetrics) {
  Server s("stats");
  json::Value doc = s.request("{\"op\": \"stats\", \"metrics\": true}");
  ASSERT_TRUE(doc.at("ok").b);
  const json::Value& svc = doc.at("service");
  EXPECT_GE(svc.at("cache").at("misses").as_int(), 0);
  EXPECT_GE(svc.at("quota").at("block_budget").as_int(), 0);
  // The metrics member is the registry's own JSON document.
  json::Value metrics = json::parse(doc.at("metrics").as_string());
  EXPECT_TRUE(metrics.is_object());
}

TEST(ServiceProtocol, ShutdownStopsTheDaemon) {
  service::DaemonOptions o;
  o.socket_path = socket_path("shutdown");
  o.workers = 2;
  service::Daemon daemon(o);
  daemon.start();
  service::Client client;
  client.connect(daemon.socket_path());
  json::Value doc = json::parse(client.request("{\"op\": \"shutdown\"}"));
  EXPECT_TRUE(doc.at("ok").b);
  daemon.wait();  // returns only when every thread is joined
  // The socket file is gone; connecting again fails.
  service::Client again;
  EXPECT_THROW(again.connect(daemon.socket_path(), 100), std::runtime_error);
}

TEST(ServiceProtocol, MalformedFramesGetTypedErrors) {
  Server s("hostile");
  expect_error(s.request("this is not json"), "parse-error");
  expect_error(s.request("{\"op\": \"compile\", }"), "parse-error");
  expect_error(s.request("[1, 2, 3]"), "protocol-error");
  expect_error(s.request("{\"source\": \"int main() { return 0; }\"}"),
               "protocol-error");  // missing op
  expect_error(s.request("{\"op\": \"transmogrify\"}"), "protocol-error");
  expect_error(s.request("{\"op\": \"compile\"}"), "protocol-error");
  expect_error(
      s.request("{\"op\": \"compile\", \"source\": \"x\", \"wat\": 1}"),
      "protocol-error");  // unknown field
  expect_error(
      s.request("{\"op\": \"stats\", \"nprocs\": 4}"),
      "protocol-error");  // field from another op
  expect_error(
      s.request("{\"op\": \"run\", \"source\": \"x\", \"nprocs\": \"8\"}"),
      "protocol-error");  // wrong type
  expect_error(
      s.request("{\"op\": \"run\", \"source\": \"x\", \"nprocs\": 0}"),
      "protocol-error");  // out of range
  expect_error(
      s.request(
          "{\"op\": \"run\", \"source\": \"x\", \"nprocs\": 4, \"active\": 9}"),
      "protocol-error");  // active > nprocs
  expect_error(
      s.request("{\"op\": \"compile\", \"source\": \"x\", \"tenant\": \"\"}"),
      "protocol-error");
  expect_error(s.request("{\"op\": \"coschedule\", \"programs\": []}"),
               "protocol-error");

  // Compile errors in valid requests are their own kind.
  expect_error(
      s.request("{\"op\": \"compile\", \"source\": \"int main( {\"}"),
      "compile-error");
  // Tiny explosion guard trips the typed explosion error.
  const std::string source = read_file(cat(MSC_CORPUS_DIR,
                                           "/barrier_phases.mimdc"));
  expect_error(
      s.request(cat("{\"op\": \"compile\", \"source\": ", quoted(source),
                    ", \"max_meta_states\": 1}")),
      "explosion");

  // After all that abuse the daemon still serves.
  json::Value doc = s.request("{\"op\": \"stats\"}");
  EXPECT_TRUE(doc.at("ok").b);
}

TEST(ServiceProtocol, NestingBombIsAParseError) {
  Server s("bomb");
  std::string bomb = "{\"op\": ";
  for (int i = 0; i < 200; ++i) bomb += "[";
  for (int i = 0; i < 200; ++i) bomb += "]";
  bomb += "}";
  expect_error(s.request(bomb), "parse-error");
}

TEST(ServiceProtocol, OversizedFrameErrorsAndDropsTheConnection) {
  service::ServiceOptions opts;
  opts.limits.max_frame_bytes = 4096;
  Server s("oversize", opts);

  // A full oversized frame (with newline) gets the typed error.
  std::string huge = cat("{\"op\": \"compile\", \"source\": \"",
                         std::string(8192, 'x'), "\"}");
  std::string response;
  s.client.send_line(huge);
  ASSERT_TRUE(s.client.recv_line(response, 60'000));
  expect_error(json::parse(response), "frame-too-large");

  // A fresh connection still works: the daemon dropped only that client.
  service::Client fresh;
  fresh.connect(s.daemon.socket_path());
  json::Value doc = json::parse(fresh.request("{\"op\": \"stats\"}"));
  EXPECT_TRUE(doc.at("ok").b);
}

TEST(ServiceProtocol, MidRequestDisconnectLeavesDaemonServing) {
  Server s("disconnect");
  // Half a frame, no newline, then hang up.
  service::Client half;
  half.connect(s.daemon.socket_path());
  half.send_line("{\"op\": \"compile\", \"source\""); // send_line adds \n; so
  // also model a cut before the newline:
  service::Client cut;
  cut.connect(s.daemon.socket_path());
  cut.shutdown_write();
  half.close();
  cut.close();

  json::Value doc = s.request("{\"op\": \"stats\"}");
  EXPECT_TRUE(doc.at("ok").b);
}

TEST(ServiceProtocol, PipelinedRequestsEachGetOneResponse) {
  Server s("pipelined");
  for (int i = 0; i < 8; ++i)
    s.client.send_line(cat("{\"op\": \"stats\", \"id\": ", i, "}"));
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 8; ++i) {
    std::string line;
    ASSERT_TRUE(s.client.recv_line(line, 60'000));
    json::Value doc = json::parse(line);
    EXPECT_TRUE(doc.at("ok").b);
    seen[static_cast<std::size_t>(doc.at("id").as_int())] = true;
  }
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(seen[static_cast<std::size_t>(i)]);
}

// ------------------------------------------------------------ client EINTR
// A client sharing its process with an interval timer (profilers, GC-ish
// runtimes, alarm-driven tools) sees poll/recv/connect interrupted
// constantly. None of that is a timeout and none of it may tear a frame.

namespace {

void noop_handler(int) {}

/// 2ms SIGALRM storm with SA_RESTART deliberately off, so every blocking
/// syscall in scope actually returns EINTR. Restores state on scope exit.
struct SignalStorm {
  struct sigaction old_action {};
  itimerval old_timer {};

  SignalStorm() {
    struct sigaction sa {};
    sa.sa_handler = noop_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: syscalls must see EINTR
    sigaction(SIGALRM, &sa, &old_action);
    itimerval timer{};
    timer.it_interval.tv_usec = 2000;
    timer.it_value.tv_usec = 2000;
    setitimer(ITIMER_REAL, &timer, &old_timer);
  }
  ~SignalStorm() {
    setitimer(ITIMER_REAL, &old_timer, nullptr);
    sigaction(SIGALRM, &old_action, nullptr);
  }
};

}  // namespace

TEST(ClientEintr, RecvLineSurvivesASignalStorm) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  service::Client client;
  client.adopt(fds[0]);

  SignalStorm storm;
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    const char line[] = "{\"ok\": true}\n";
    ASSERT_EQ(::send(fds[1], line, sizeof(line) - 1, 0),
              static_cast<ssize_t>(sizeof(line) - 1));
  });
  // ~40 interruptions before the line arrives: each one used to be
  // mis-read as a timeout. The deadline-based loop must ride them out.
  std::string line;
  EXPECT_TRUE(client.recv_line(line, 10'000));
  EXPECT_EQ(line, "{\"ok\": true}");
  writer.join();
  ::close(fds[1]);
}

TEST(ClientEintr, RecvLineDeadlineHoldsUnderInterruption) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  service::Client client;
  client.adopt(fds[0]);

  SignalStorm storm;
  // No data ever arrives: the genuine timeout must fire — but not early.
  // The buggy EINTR-as-timeout path returned within the first 2ms tick.
  const auto t0 = std::chrono::steady_clock::now();
  std::string line;
  EXPECT_FALSE(client.recv_line(line, 150));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 140);
  EXPECT_LT(elapsed.count(), 5'000);
  ::close(fds[1]);
}

TEST(ClientEintr, ConnectKeepsRetryingThroughSignals) {
  // An unreachable socket under the storm: connect() must spend its whole
  // retry budget (EINTR burns none of it) and then throw — not give up on
  // the first interrupted attempt.
  SignalStorm storm;
  const auto t0 = std::chrono::steady_clock::now();
  service::Client client;
  EXPECT_THROW(client.connect(socket_path("nonexistent"), 200),
               std::runtime_error);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 200);
}

TEST(ServiceObservability, MetricsOpRoundTrip) {
  Server s("metricsop");
  ASSERT_TRUE(s.request(cat("{\"op\": \"compile\", \"tenant\": \"t0\", "
                            "\"source\": ", quoted(kSource), "}"))
                  .at("ok")
                  .b);
  // A request is committed to the metrics *after* its response is written
  // (the trace must cover the write phase), so a scraper racing its own
  // previous request can miss it by one snapshot: poll briefly.
  json::Value doc, m;
  for (int attempt = 0; attempt < 500; ++attempt) {
    doc = s.request("{\"op\": \"metrics\", \"tenant\": \"t0\"}");
    ASSERT_TRUE(doc.at("ok").b);
    // The payload is the labeled schema-2 document, JSON-escaped.
    m = json::parse(doc.at("metrics").as_string());
    if (m.at("requests").at("ok").as_int() >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(m.at("schema").as_int(), 2);
  EXPECT_GT(m.at("uptime_micros").as_int(), 0);
  EXPECT_GE(m.at("requests").at("ok").as_int(), 1);
  EXPECT_EQ(m.at("folded_samples").as_int(), 0);
  const json::Value& requests = m.at("families").at("requests");
  EXPECT_EQ(requests.at("kind").as_string(), "counter");
  bool found = false;
  for (const json::Value& series : requests.at("series").elems)
    if (series.at("tenant").as_string() == "t0" &&
        series.at("op").as_string() == "compile") {
      EXPECT_EQ(series.at("value").as_int(), 1);
      found = true;
    }
  EXPECT_TRUE(found) << doc.at("metrics").as_string();
  // Latency histogram counts cover every request seen so far.
  const json::Value& lat = m.at("families").at("latency_us");
  EXPECT_EQ(lat.at("kind").as_string(), "histogram");
  EXPECT_GT(lat.at("bounds").elems.size(), 4u);
}

TEST(ServiceObservability, TraceFieldAttachesRequestTrace) {
  Server s("traced");
  json::Value doc = s.request(
      cat("{\"op\": \"compile\", \"tenant\": \"t1\", \"trace\": true, "
          "\"source\": ", quoted(kSource), "}"));
  ASSERT_TRUE(doc.at("ok").b);
  json::Value rt = json::parse(doc.at("trace").as_string());
  EXPECT_GE(rt.at("request_id").as_int(), 1);
  EXPECT_GE(rt.at("conn").as_int(), 1);
  EXPECT_EQ(rt.at("tenant").as_string(), "t1");
  EXPECT_EQ(rt.at("op").as_string(), "compile");
  EXPECT_EQ(rt.at("outcome").as_string(), "ok");
  EXPECT_EQ(rt.at("cache").as_string(), "miss");
  EXPECT_GT(rt.at("bytes_in").as_int(), 0);
  const json::Value& phases = rt.at("phase_micros");
  for (const char* p : {"accept", "parse", "admission", "cache", "convert",
                        "run", "serialize", "write"})
    EXPECT_GE(phases.at(p).as_int(), 0) << p;
  EXPECT_GT(phases.at("convert").as_int(), 0) << "a miss must time convert";

  // Untraced requests stay untraced — the member is strictly opt-in.
  json::Value plain = s.request("{\"op\": \"stats\"}");
  EXPECT_EQ(plain.find("trace"), nullptr);
  // Post-parse errors carry the trace too. (Parse failures cannot: the
  // trace flag lives in the frame that failed to parse.)
  json::Value err = s.request(
      "{\"op\": \"compile\", \"trace\": true, \"source\": \"int main( {\"}");
  EXPECT_FALSE(err.at("ok").b);
  json::Value errt = json::parse(err.at("trace").as_string());
  EXPECT_EQ(errt.at("outcome").as_string(), "error");
  EXPECT_EQ(errt.at("error_kind").as_string(), "compile-error");
}

TEST(ServiceObservability, SlowlogCapturesSlowRequests) {
  service::ServiceOptions opts;
  opts.observability.slow_micros = 1;  // everything is "slow"
  opts.observability.slowlog_capacity = 4;
  Server s("slowlog", opts);
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(
        s.request(cat("{\"op\": \"stats\", \"id\": ", i, "}")).at("ok").b);

  json::Value doc = s.request("{\"op\": \"slowlog\"}");
  ASSERT_TRUE(doc.at("ok").b);
  EXPECT_EQ(doc.at("threshold_micros").as_int(), 1);
  const json::Value& entries = doc.at("slowlog");
  // Capacity bounds the ring; entries arrive slowest-first and each is a
  // full RequestTrace. (The slowlog op itself is not yet committed when
  // its own snapshot is taken, so at most the 6 stats land.)
  EXPECT_EQ(doc.at("count").as_int(),
            static_cast<std::int64_t>(entries.elems.size()));
  ASSERT_LE(entries.elems.size(), 4u);
  ASSERT_GE(entries.elems.size(), 1u);
  std::int64_t prev = INT64_MAX;
  for (const json::Value& e : entries.elems) {
    EXPECT_LE(e.at("total_us").as_int(), prev);
    prev = e.at("total_us").as_int();
    EXPECT_GE(e.at("request_id").as_int(), 1);
    EXPECT_TRUE(e.find("phase_micros") != nullptr);
  }
}

TEST(ServiceObservability, StatsCarriesUptimeAndDaemonInfo) {
  Server s("statsdaemon");
  json::Value doc = s.request("{\"op\": \"stats\"}");
  ASSERT_TRUE(doc.at("ok").b);
  EXPECT_GT(doc.at("uptime_micros").as_int(), 0);
  const json::Value& daemon = doc.at("service").at("daemon");
  EXPECT_EQ(daemon.at("workers").as_int(), 4);
  EXPECT_GE(daemon.at("queue_depth").as_int(), 0);
  EXPECT_GE(daemon.at("connections_accepted").as_int(), 1);
  EXPECT_GE(daemon.at("connections_active").as_int(), 1);

  // Per-tenant admission snapshots appear once a tenant has been seen.
  ASSERT_TRUE(s.request(cat("{\"op\": \"compile\", \"tenant\": \"seen\", "
                            "\"source\": ", quoted(kSource), "}"))
                  .at("ok")
                  .b);
  json::Value after = s.request("{\"op\": \"stats\"}");
  bool found = false;
  for (const json::Value& t : after.at("service").at("tenants").elems)
    if (t.at("tenant").as_string() == "seen") {
      EXPECT_GE(t.at("admitted").as_int(), 1);
      EXPECT_EQ(t.at("rejected").as_int(), 0);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(ServiceObservability, AccessLogGoldenLines) {
  const std::string log_path = tmp_path(cat("access_", ::getpid(), ".jsonl"));
  std::remove(log_path.c_str());
  {
    service::ServiceOptions opts;
    opts.observability.access_log_path = log_path;
    Server s("accesslog", opts);
    ASSERT_TRUE(s.request(cat("{\"op\": \"compile\", \"tenant\": \"alice\", "
                              "\"source\": ", quoted(kSource), "}"))
                    .at("ok")
                    .b);
    ASSERT_TRUE(s.request("{\"op\": \"stats\"}").at("ok").b);
    ASSERT_FALSE(s.request("{\"op\": \"run\"}").at("ok").b);
  }  // daemon drains + joins: every committed line is on disk

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good()) << log_path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);

  // Golden field order: one flat JSON line per request, keys in lifecycle
  // order — consumers parse it positionally with cut/awk as well as JSON.
  const char* kOrder[] = {"\"request_id\": ", "\"conn\": ",    "\"tenant\": ",
                          "\"op\": ",         "\"outcome\": ", "\"error_kind\": ",
                          "\"cache\": ",      "\"bytes_in\": ", "\"bytes_out\": ",
                          "\"start_us\": ",   "\"total_us\": ",
                          "\"phase_micros\": {\"accept\": "};
  std::int64_t prev_id = 0;
  for (const std::string& l : lines) {
    std::size_t pos = 0;
    for (const char* key : kOrder) {
      const std::size_t at = l.find(key, pos);
      ASSERT_NE(at, std::string::npos) << key << " out of order in: " << l;
      pos = at;
    }
    json::Value doc = json::parse(l);
    // One client connection drove every request: ids are monotonic.
    EXPECT_GT(doc.at("request_id").as_int(), prev_id);
    prev_id = doc.at("request_id").as_int();
    EXPECT_EQ(doc.at("conn").as_int(), 1);
  }
  json::Value first = json::parse(lines[0]);
  EXPECT_EQ(first.at("tenant").as_string(), "alice");
  EXPECT_EQ(first.at("outcome").as_string(), "ok");
  json::Value last = json::parse(lines[2]);
  EXPECT_EQ(last.at("outcome").as_string(), "error");
  EXPECT_EQ(last.at("error_kind").as_string(), "protocol-error");
  std::remove(log_path.c_str());
}

TEST(ServiceObservability, MsctopOnceRendersTheTable) {
  service::ServiceOptions opts;
  opts.observability.slow_micros = 1;
  Server s("msctop", opts);
  ASSERT_TRUE(s.request(cat("{\"op\": \"compile\", \"tenant\": \"alice\", "
                            "\"source\": ", quoted(kSource), "}"))
                  .at("ok")
                  .b);

  const std::string cmd = cat(MSCTOP_BINARY, " --socket ",
                              s.daemon.socket_path(), " --once 2>&1");
  std::array<char, 4096> buf{};
  std::string out;
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    out.append(buf.data(), n);
  const int rc = pclose(pipe);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("per-tenant/per-op"), std::string::npos) << out;
  EXPECT_NE(out.find("alice"), std::string::npos) << out;
  EXPECT_NE(out.find("compile"), std::string::npos) << out;
  EXPECT_NE(out.find("slowest requests"), std::string::npos) << out;
  EXPECT_EQ(out.find("\x1b["), std::string::npos)
      << "--once must not emit ANSI control sequences";
}

TEST(ServiceProtocol, ReqlogCorpusReplays) {
  // Every checked-in request log must replay to exactly one response per
  // frame, with no crash — fuzzer findings land here as regressions.
  Server s("reqlog");
  const std::vector<std::string> logs = {
      cat(MSC_CORPUS_DIR, "/service_smoke.reqlog"),
      cat(MSC_CORPUS_DIR, "/service_hostile.reqlog"),
  };
  for (const std::string& log : logs) {
    std::ifstream in(log);
    ASSERT_TRUE(in.good()) << log;
    std::string frame;
    int frames = 0;
    while (std::getline(in, frame)) {
      if (frame.empty()) continue;
      std::string response = s.client.request(frame, 60'000);
      json::Value doc;
      ASSERT_NO_THROW(doc = json::parse(response)) << frame;
      ASSERT_TRUE(doc.find("ok") != nullptr) << frame;
      ++frames;
    }
    EXPECT_GT(frames, 0) << log;
  }
}
