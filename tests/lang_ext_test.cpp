// Tests for the MIMDC language extensions: compound assignment,
// increment/decrement, and break/continue — end-to-end through the oracle
// and the converted SIMD automaton.
#include <gtest/gtest.h>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/frontend/parser.hpp"

using namespace msc;
using msc::CompileError;

namespace {

ir::CostModel kCost;

/// Run `src` on 1 PE through the oracle and return main's result.
std::int64_t run1(const std::string& src) {
  auto compiled = driver::compile(src);
  mimd::RunConfig cfg;
  cfg.nprocs = 1;
  auto obs = driver::run_oracle(compiled, cfg, 0);
  return obs.results[0].i;
}

/// Run on 4 PEs through oracle and all SIMD modes; EXPECT equality and
/// return PE0's oracle result.
std::int64_t run_checked(const std::string& src) {
  auto compiled = driver::compile(src);
  mimd::RunConfig cfg;
  cfg.nprocs = 4;
  auto oracle = driver::run_oracle(compiled, cfg, 5);
  for (bool compress : {false, true}) {
    core::ConvertOptions opts;
    opts.compress = compress;
    auto conv = core::meta_state_convert(compiled.graph, kCost, opts);
    auto simd = driver::run_simd(compiled, conv, cfg, 5, kCost);
    EXPECT_TRUE(oracle == simd) << src << "\noracle: " << oracle.to_string()
                                << "\nsimd:   " << simd.to_string();
  }
  return oracle.results[0].i;
}

}  // namespace

// ------------------------------------------------------- compound assignment

TEST(CompoundAssign, AllOperators) {
  EXPECT_EQ(run1("int main() { int a; a = 10; a += 3; return a; }"), 13);
  EXPECT_EQ(run1("int main() { int a; a = 10; a -= 3; return a; }"), 7);
  EXPECT_EQ(run1("int main() { int a; a = 10; a *= 3; return a; }"), 30);
  EXPECT_EQ(run1("int main() { int a; a = 10; a /= 3; return a; }"), 3);
  EXPECT_EQ(run1("int main() { int a; a = 10; a %= 3; return a; }"), 1);
  EXPECT_EQ(run1("int main() { int a; a = 12; a &= 10; return a; }"), 8);
  EXPECT_EQ(run1("int main() { int a; a = 12; a |= 3; return a; }"), 15);
  EXPECT_EQ(run1("int main() { int a; a = 12; a ^= 10; return a; }"), 6);
  EXPECT_EQ(run1("int main() { int a; a = 3; a <<= 2; return a; }"), 12);
  EXPECT_EQ(run1("int main() { int a; a = 12; a >>= 2; return a; }"), 3);
}

TEST(CompoundAssign, YieldsItsValue) {
  EXPECT_EQ(run1("int main() { int a; int b; a = 5; b = (a += 2); "
                 "return b * 100 + a; }"),
            707);
}

TEST(CompoundAssign, OnArrayElement) {
  EXPECT_EQ(run1("int main() { int a[3]; a[1] = 4; a[1] += 5; return a[1]; }"), 9);
  // Subscript evaluated relative to mutated state consistently.
  EXPECT_EQ(run1("int main() { int a[3]; int i; i = 2; a[2] = 7; "
                 "a[i] *= 2; return a[2]; }"),
            14);
}

TEST(CompoundAssign, FloatTargetTruncationRules) {
  EXPECT_EQ(run1("int main() { float f; f = 2.5; f += 1; return f * 2.0; }"), 7);
  EXPECT_EQ(run1("int main() { int a; a = 7; a /= 2; return a; }"), 3);
  // int target += float: result converts back to int (C semantics).
  EXPECT_EQ(run1("int main() { int a; a = 1; a += 2.9; return a; }"), 3);
}

TEST(CompoundAssign, RhsWithSideEffectsRunsOnce) {
  EXPECT_EQ(run1("int counter;"
                 "int bump() { counter += 1; return counter; }"
                 "int main() { int a; a = 10; a += bump(); "
                 "return a * 10 + counter; }"),
            111);
}

TEST(CompoundAssign, ImpureSubscriptRejected) {
  EXPECT_THROW(run1("int f() { return 1; }"
                    "int main() { int a[3]; a[f()] += 1; return 0; }"),
               CompileError);
  EXPECT_THROW(run1("int main() { int a[3]; int i; i = 0; a[i++] += 1; "
                    "return 0; }"),
               CompileError);
}

TEST(CompoundAssign, TypeRules) {
  EXPECT_THROW(run1("int main() { float f; f %= 2; return 0; }"), CompileError);
  EXPECT_THROW(run1("int main() { float f; f <<= 1; return 0; }"), CompileError);
  EXPECT_THROW(run1("int main() { int a[2]; a += 1; return 0; }"), CompileError);
}

// ------------------------------------------------------------------- inc/dec

TEST(IncDec, PrefixYieldsNewValue) {
  EXPECT_EQ(run1("int main() { int a; a = 5; return ++a * 100 + a; }"), 606);
  EXPECT_EQ(run1("int main() { int a; a = 5; return --a * 100 + a; }"), 404);
}

TEST(IncDec, PostfixYieldsOldValue) {
  EXPECT_EQ(run1("int main() { int a; a = 5; return a++ * 100 + a; }"), 506);
  EXPECT_EQ(run1("int main() { int a; a = 5; return a-- * 100 + a; }"), 504);
}

TEST(IncDec, OnArrayAndFloat) {
  EXPECT_EQ(run1("int main() { int a[2]; a[1] = 9; a[1]++; ++a[1]; "
                 "return a[1]; }"),
            11);
  EXPECT_EQ(run1("int main() { float f; f = 1.5; ++f; return f * 2.0; }"), 5);
}

TEST(IncDec, RequiresLvalue) {
  EXPECT_THROW(run1("int main() { return 3++; }"), CompileError);
  EXPECT_THROW(run1("int main() { return ++procid(); }"), CompileError);
}

// ------------------------------------------------------------ break/continue

TEST(BreakContinue, BreakLeavesLoop) {
  EXPECT_EQ(run1("int main() { int i; int s; s = 0; "
                 "for (i = 0; i < 10; i++) { if (i == 4) { break; } s += i; } "
                 "return s * 100 + i; }"),
            604);  // 0+1+2+3=6, stopped at i=4
}

TEST(BreakContinue, ContinueSkipsRest) {
  EXPECT_EQ(run1("int main() { int i; int s; s = 0; "
                 "for (i = 0; i < 6; i++) { if (i % 2) { continue; } s += i; } "
                 "return s; }"),
            6);  // 0+2+4
}

TEST(BreakContinue, ContinueInForStillRunsStep) {
  // Classic infinite-loop bug if continue skips the step.
  EXPECT_EQ(run1("int main() { int i; int n; n = 0; "
                 "for (i = 0; i < 5; i++) { continue; n = 99; } return i; }"),
            5);
}

TEST(BreakContinue, WhileAndDoWhile) {
  EXPECT_EQ(run1("int main() { int i; i = 0; "
                 "while (1) { i++; if (i >= 7) { break; } } return i; }"),
            7);
  EXPECT_EQ(run1("int main() { int i; int s; i = 0; s = 0; "
                 "do { i++; if (i == 2) { continue; } s += i; } while (i < 4); "
                 "return s; }"),
            8);  // 1+3+4
}

TEST(BreakContinue, NestedLoopsBindInnermost) {
  EXPECT_EQ(run1("int main() { int i; int j; int s; s = 0; "
                 "for (i = 0; i < 3; i++) { "
                 "  for (j = 0; j < 10; j++) { if (j == 2) { break; } s++; } "
                 "} return s; }"),
            6);
}

TEST(BreakContinue, OutsideLoopRejected) {
  EXPECT_THROW(run1("int main() { break; return 0; }"), CompileError);
  EXPECT_THROW(run1("int main() { continue; return 0; }"), CompileError);
  // A spawn body is a fresh process: enclosing loops don't apply.
  EXPECT_THROW(run1("int main() { int i; for (i = 0; i < 2; i++) { "
                    "spawn { break; } } return 0; }"),
               CompileError);
}

// ------------------------------- end-to-end through the meta-state machinery

TEST(LangExt, DivergentBreakMatchesSimd) {
  run_checked(R"(poly int x;
int main() {
  poly int i;
  poly int s;
  s = 0;
  for (i = 0; i < 10; i++) {
    if (i > (x % 5)) { break; }
    s += i * i;
    if ((x & 1) && i == 2) { continue; }
    s++;
  }
  return s * 10 + i;
}
)");
}

TEST(LangExt, CompoundOpsOnRouteTargets) {
  run_checked(R"(int main() {
  poly int v;
  v = procid() * 10;
  wait;
  v[[(procid() + 1) % nprocs()]] += 1000;
  wait;
  return v;
}
)");
}
