#include <gtest/gtest.h>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/mimd/machine.hpp"
#include "msc/simd/machine.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

namespace {

ir::CostModel kCost;

driver::Compiled compile(const std::string& src) { return driver::compile(src); }

}  // namespace

// --------------------------------------------------------------- MIMD oracle

TEST(MimdMachine, AsynchronousClocksDiverge) {
  // PEs with larger trip counts finish later.
  auto c = compile(workload::listing1().source);
  mimd::RunConfig cfg;
  cfg.nprocs = 4;
  mimd::MimdMachine m(c.graph, kCost, cfg);
  const auto* slot = c.layout.find("x");
  for (int p = 0; p < 4; ++p) m.poke(p, slot->addr, Value::of_int(p));
  m.run();
  // x=3 loops twice as often as x=1 in the same arm.
  EXPECT_GT(m.finish_clock(3), m.finish_clock(1));
  EXPECT_GT(m.stats().makespan, 0);
  EXPECT_EQ(m.stats().makespan,
            std::max({m.finish_clock(0), m.finish_clock(1), m.finish_clock(2),
                      m.finish_clock(3)}));
}

TEST(MimdMachine, BarrierBlocksEarlyArrivals) {
  auto c = compile(workload::listing3().source);
  mimd::RunConfig cfg;
  cfg.nprocs = 4;
  mimd::MimdMachine m(c.graph, kCost, cfg);
  const auto* slot = c.layout.find("x");
  // Strongly imbalanced trip counts.
  m.poke(0, slot->addr, Value::of_int(0));
  m.poke(1, slot->addr, Value::of_int(3));
  m.poke(2, slot->addr, Value::of_int(3));
  m.poke(3, slot->addr, Value::of_int(3));
  m.run();
  EXPECT_EQ(m.stats().barrier_releases, 1);
  EXPECT_GT(m.stats().barrier_idle_cycles, 0);  // PE0 waited for the rest
  EXPECT_EQ(m.stats().barrier_sync_cycles,
            4 * mimd::MimdMachine::kBarrierSyncCost);
}

TEST(MimdMachine, BarrierThenHaltDoesNotDeadlock) {
  // One PE takes the barrier path, the other halts without ever waiting:
  // the waiter must still be released.
  auto c = compile(R"(
poly int x;
int main() {
  if (x) { halt; }
  wait;
  return 7;
}
)");
  mimd::RunConfig cfg;
  cfg.nprocs = 2;
  mimd::MimdMachine m(c.graph, kCost, cfg);
  const auto* slot = c.layout.find("x");
  m.poke(0, slot->addr, Value::of_int(0));
  m.poke(1, slot->addr, Value::of_int(1));
  m.run();
  EXPECT_EQ(m.peek(0, frontend::Layout::kResultAddr).i, 7);
}

TEST(MimdMachine, SpawnWithoutFreePEFaults) {
  auto c = compile("int main() { spawn { return 1; } return 0; }");
  mimd::RunConfig cfg;
  cfg.nprocs = 2;
  cfg.initial_active = 2;  // nobody free
  mimd::MimdMachine m(c.graph, kCost, cfg);
  EXPECT_THROW(m.run(), ir::MachineFault);
}

TEST(MimdMachine, SpawnReusePolicy) {
  // 1 parent spawning 2 children sequentially with only 1 spare PE:
  // works only when halted PEs return to the pool.
  auto c = compile(R"(
int main() {
  poly int i;
  i = 0;
  while (i < 2) {
    spawn { return 5; }
    i = i + 1;
  }
  return 1;
}
)");
  mimd::RunConfig cfg;
  cfg.nprocs = 2;
  cfg.initial_active = 1;
  {
    mimd::MimdMachine strict(c.graph, kCost, cfg);
    EXPECT_THROW(strict.run(), ir::MachineFault);
  }
  cfg.reuse_halted_pes = true;
  mimd::MimdMachine reuse(c.graph, kCost, cfg);
  reuse.run();
  EXPECT_EQ(reuse.stats().spawns, 2);
  EXPECT_EQ(reuse.peek(1, frontend::Layout::kResultAddr).i, 5);
}

TEST(MimdMachine, TimeoutOnInfiniteLoop) {
  auto c = compile("int main() { for (;;) ; }");
  mimd::RunConfig cfg;
  cfg.nprocs = 1;
  cfg.max_blocks = 100;
  mimd::MimdMachine m(c.graph, kCost, cfg);
  EXPECT_THROW(m.run(), mimd::Timeout);
}

TEST(MimdMachine, MonoBroadcastVisibleToAll) {
  auto c = compile(workload::kernel("mono_reduce").source);
  mimd::RunConfig cfg;
  cfg.nprocs = 3;
  mimd::MimdMachine m(c.graph, kCost, cfg);
  const auto* x = c.layout.find("x");
  for (int p = 0; p < 3; ++p) m.poke(p, x->addr, Value::of_int(p * 10));
  m.run();
  const auto* total = c.layout.find("total");
  EXPECT_EQ(m.peek_mono(total->addr).i, 42);
  for (int p = 0; p < 3; ++p)
    EXPECT_EQ(m.peek(p, frontend::Layout::kResultAddr).i, 42 + p * 10);
}

// --------------------------------------------------------------- SIMD machine

TEST(SimdMachine, UtilizationIsOneWithoutDivergence) {
  auto c = compile("int main() { poly int a; a = 3 * 4; return a; }");
  auto conv = core::meta_state_convert(c.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 8;
  auto m_ptr = simd::make_machine(prog, kCost, cfg);
  simd::SimdMachine& m = *m_ptr;
  m.run();
  EXPECT_DOUBLE_EQ(m.stats().utilization(), 1.0);
  EXPECT_EQ(m.stats().spawns, 0);
}

TEST(SimdMachine, DivergenceCostsUtilization) {
  auto c = compile(workload::imbalanced_once_source(1, 12));
  auto conv = core::meta_state_convert(c.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 8;
  auto m_ptr = simd::make_machine(prog, kCost, cfg);
  simd::SimdMachine& m = *m_ptr;
  driver::seed_machine(m, c, cfg, 3);
  m.run();
  EXPECT_LT(m.stats().utilization(), 1.0);
  EXPECT_GT(m.stats().utilization(), 0.0);
}

TEST(SimdMachine, TrackOccupancyNeedsNoRescues) {
  for (const auto& k : workload::suite()) {
    auto c = compile(k.source);
    auto conv = core::meta_state_convert(c.graph, kCost, {});
    auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
    mimd::RunConfig cfg;
    cfg.nprocs = 8;
    if (k.name == "spawn_tree") cfg.initial_active = 2;
    auto m_ptr = simd::make_machine(prog, kCost, cfg);
    simd::SimdMachine& m = *m_ptr;
    driver::seed_machine(m, c, cfg, 9);
    m.run();
    EXPECT_EQ(m.stats().rescue_transitions, 0) << k.name;
  }
}

TEST(SimdMachine, StateVisitCountsCoverRun) {
  auto c = compile(workload::listing1().source);
  auto conv = core::meta_state_convert(c.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 4;
  auto m_ptr = simd::make_machine(prog, kCost, cfg);
  simd::SimdMachine& m = *m_ptr;
  driver::seed_machine(m, c, cfg, 1);
  m.run();
  std::int64_t total = 0;
  for (std::int64_t v : m.state_visits()) total += v;
  EXPECT_EQ(total, m.stats().meta_transitions);
  EXPECT_EQ(m.state_visits()[prog.start], 1);
}

TEST(SimdMachine, GlobalOrCountMatchesMultiwayTraffic) {
  auto c = compile(workload::listing1().source);
  auto conv = core::meta_state_convert(c.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 4;
  auto m_ptr = simd::make_machine(prog, kCost, cfg);
  simd::SimdMachine& m = *m_ptr;
  driver::seed_machine(m, c, cfg, 2);
  m.run();
  EXPECT_GT(m.stats().global_ors, 0);
  EXPECT_LE(m.stats().global_ors, m.stats().meta_transitions);
}

TEST(SimdMachine, ZeroActivePEsExitImmediately) {
  auto c = compile("int main() { return 1; }");
  auto conv = core::meta_state_convert(c.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 4;
  cfg.initial_active = 0;
  auto m_ptr = simd::make_machine(prog, kCost, cfg);
  simd::SimdMachine& m = *m_ptr;
  m.run();
  EXPECT_EQ(m.stats().meta_transitions, 0);
}

TEST(SimdMachine, ControlCyclesAreChargedOncePerBroadcast) {
  // The whole point of SIMD: control cycles don't scale with PE count.
  auto c = compile(workload::kernel("uniform").source);
  auto conv = core::meta_state_convert(c.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  std::int64_t cycles_small, cycles_large;
  {
    mimd::RunConfig cfg;
    cfg.nprocs = 2;
    auto m_ptr = simd::make_machine(prog, kCost, cfg);
    simd::SimdMachine& m = *m_ptr;
    driver::seed_machine(m, c, cfg, 4);
    m.run();
    cycles_small = m.stats().control_cycles;
  }
  {
    mimd::RunConfig cfg;
    cfg.nprocs = 64;
    auto m_ptr = simd::make_machine(prog, kCost, cfg);
    simd::SimdMachine& m = *m_ptr;
    driver::seed_machine(m, c, cfg, 4);
    m.run();
    cycles_large = m.stats().control_cycles;
  }
  // Identical inputs per PE (uniform kernel is seeded but control flow is
  // the same shape), so the control stream length matches.
  EXPECT_EQ(cycles_small, cycles_large);
}

namespace {

/// Records the occupancy sequence for tracer tests.
class RecordingTracer final : public simd::SimdTracer {
 public:
  std::vector<std::string> states;
  std::vector<std::string> apcs;
  bool exited = false;

  void on_state(core::MetaId, const DynBitset& occ, std::int64_t) override {
    states.push_back(occ.to_string());
  }
  void on_transition(core::MetaId, core::MetaId to, const DynBitset& apc) override {
    apcs.push_back(apc.to_string());
    if (to == core::kNoMeta) exited = true;
  }
};

}  // namespace

TEST(SimdMachine, TracerSeesEveryStateAndTheExit) {
  auto c = compile(workload::listing1().source);
  auto conv = core::meta_state_convert(c.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 4;
  auto m_ptr = simd::make_machine(prog, kCost, cfg);
  simd::SimdMachine& m = *m_ptr;
  driver::seed_machine(m, c, cfg, 6);
  RecordingTracer tracer;
  m.set_tracer(&tracer);
  m.run();
  EXPECT_EQ(static_cast<std::int64_t>(tracer.states.size()),
            m.stats().meta_transitions);
  EXPECT_TRUE(tracer.exited);
  // First state is the SPMD start occupancy; last apc is empty (all halted).
  EXPECT_EQ(tracer.states.front(),
            DynBitset::single(c.graph.start).to_string());
  EXPECT_EQ(tracer.apcs.back(), "{}");
}

// ------------------------------------------- engine boundaries & regressions

TEST(SimdMachine, PeCountBoundaries) {
  // PE counts straddling the 64-bit words of the occupancy and free-pool
  // bitsets (1, 63, 64, 65, 127) plus a large non-power-of-two count.
  // Every engine must match the oracle and each other at every size.
  auto c = compile(workload::kernel("escape_iter").source);
  auto conv = core::meta_state_convert(c.graph, kCost, {});
  for (std::int64_t nprocs : {1, 63, 64, 65, 127, 1000}) {
    SCOPED_TRACE(nprocs);
    mimd::RunConfig cfg;
    cfg.nprocs = nprocs;
    auto oracle = driver::run_oracle(c, cfg, 3);
    simd::SimdStats stats[3];
    int idx = 0;
    for (auto engine : {mimd::SimdEngine::Fast, mimd::SimdEngine::Reference,
                        mimd::SimdEngine::Codegen}) {
      cfg.engine = engine;
      auto simd = driver::run_simd(c, conv, cfg, 3, kCost, {}, &stats[idx]);
      EXPECT_TRUE(oracle == simd)
          << "engine=" << simd::engine_name(engine)
          << "\noracle: " << oracle.to_string()
          << "\nsimd:   " << simd.to_string();
      ++idx;
    }
    EXPECT_TRUE(stats[0] == stats[1]);
    EXPECT_TRUE(stats[0] == stats[2]);
  }
}

TEST(SimdMachine, SpawnWithoutFreePEFaultsAllEngines) {
  auto c = compile("int main() { spawn { return 1; } return 0; }");
  auto conv = core::meta_state_convert(c.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  for (auto engine : {mimd::SimdEngine::Fast, mimd::SimdEngine::Reference,
                      mimd::SimdEngine::Codegen}) {
    mimd::RunConfig cfg;
    cfg.nprocs = 2;
    cfg.initial_active = 2;  // nobody free
    cfg.engine = engine;
    auto m = simd::make_machine(prog, kCost, cfg);
    EXPECT_THROW(m->run(), ir::MachineFault);
  }
}

TEST(SimdMachine, SpawnReusePolicyAllEngines) {
  // SIMD twin of MimdMachine.SpawnReusePolicy: 1 parent spawning 2
  // children sequentially with only 1 spare PE. Succeeds only when halted
  // PEs return to the pool — the exact path the fast engine's free list
  // must get right.
  auto c = compile(R"(
int main() {
  poly int i;
  i = 0;
  while (i < 2) {
    spawn { return 5; }
    i = i + 1;
  }
  return 1;
}
)");
  auto conv = core::meta_state_convert(c.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  for (auto engine : {mimd::SimdEngine::Fast, mimd::SimdEngine::Reference,
                      mimd::SimdEngine::Codegen}) {
    mimd::RunConfig cfg;
    cfg.nprocs = 2;
    cfg.initial_active = 1;
    cfg.engine = engine;
    {
      auto strict = simd::make_machine(prog, kCost, cfg);
      EXPECT_THROW(strict->run(), ir::MachineFault);
    }
    cfg.reuse_halted_pes = true;
    auto reuse = simd::make_machine(prog, kCost, cfg);
    reuse->run();
    EXPECT_EQ(reuse->stats().spawns, 2);
    EXPECT_EQ(reuse->peek(1, frontend::Layout::kResultAddr).i, 5);
  }
}

TEST(SimdMachine, TracerDoesNotChangeStats) {
  // Tracer inputs (occupancy, alive count, apc) are computed lazily; an
  // attached tracer must observe the run without perturbing any counter.
  auto c = compile(workload::listing1().source);
  auto conv = core::meta_state_convert(c.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  for (auto engine : {mimd::SimdEngine::Fast, mimd::SimdEngine::Reference,
                      mimd::SimdEngine::Codegen}) {
    mimd::RunConfig cfg;
    cfg.nprocs = 8;
    cfg.engine = engine;
    auto plain = simd::make_machine(prog, kCost, cfg);
    driver::seed_machine(*plain, c, cfg, 6);
    plain->run();
    auto traced = simd::make_machine(prog, kCost, cfg);
    driver::seed_machine(*traced, c, cfg, 6);
    RecordingTracer tracer;
    traced->set_tracer(&tracer);
    traced->run();
    EXPECT_TRUE(plain->stats() == traced->stats()) << plain->engine_name();
    EXPECT_EQ(plain->state_visits(), traced->state_visits());
    EXPECT_FALSE(tracer.states.empty());
  }
}

TEST(SimdMachine, GuardSwitchesCounted) {
  auto c = compile(workload::listing1().source);
  auto conv = core::meta_state_convert(c.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 8;
  auto m_ptr = simd::make_machine(prog, kCost, cfg);
  simd::SimdMachine& m = *m_ptr;
  driver::seed_machine(m, c, cfg, 6);
  m.run();
  EXPECT_GT(m.stats().guard_switches, 0);
  // At least one mask program per executed meta state.
  EXPECT_GE(m.stats().guard_switches, m.stats().meta_transitions);
}
