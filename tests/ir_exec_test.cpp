#include <gtest/gtest.h>

#include "msc/ir/cost.hpp"
#include "msc/ir/exec.hpp"

using namespace msc;
using namespace msc::ir;

namespace {

/// Scripted bus for instruction-level tests.
class TestBus : public MemoryBus {
 public:
  std::vector<Value> mono = std::vector<Value>(16);
  std::vector<std::vector<Value>> remotes{4, std::vector<Value>(16)};

  Value mono_load(std::int64_t addr) override { return mono.at(addr); }
  void mono_store(std::int64_t addr, Value v) override { mono.at(addr) = v; }
  Value route_load(std::int64_t proc, std::int64_t addr) override {
    return remotes.at(proc).at(addr);
  }
  void route_store(std::int64_t proc, std::int64_t addr, Value v) override {
    remotes.at(proc).at(addr) = v;
  }
};

class ExecTest : public testing::Test {
 protected:
  SoaLocal local_mem = [] {
    SoaLocal m;
    m.assign(16);
    return m;
  }();
  std::vector<Value> stack;
  TestBus bus;
  PeContext pe{local_mem.view(), &stack, 2, 4};

  void run(std::initializer_list<Instr> instrs) {
    for (const Instr& in : instrs) exec_instr(in, pe, bus);
  }
  Value top() { return stack.back(); }
};

}  // namespace

TEST_F(ExecTest, PushPopDup) {
  run({Instr::push_i(7), Instr::push_f(1.5), Instr::of(Opcode::Dup)});
  EXPECT_EQ(stack.size(), 3u);
  EXPECT_EQ(top(), Value::of_float(1.5));
  run({Instr::pop(2)});
  EXPECT_EQ(stack.size(), 1u);
  EXPECT_EQ(top(), Value::of_int(7));
}

TEST_F(ExecTest, IntArithmetic) {
  run({Instr::push_i(10), Instr::push_i(3), Instr::of(Opcode::Sub)});
  EXPECT_EQ(top(), Value::of_int(7));
  run({Instr::push_i(3), Instr::of(Opcode::Mul)});
  EXPECT_EQ(top(), Value::of_int(21));
  run({Instr::push_i(4), Instr::of(Opcode::Div)});
  EXPECT_EQ(top(), Value::of_int(5));
  run({Instr::push_i(3), Instr::of(Opcode::Mod)});
  EXPECT_EQ(top(), Value::of_int(2));
}

TEST_F(ExecTest, DivisionByZeroIsDefined) {
  run({Instr::push_i(9), Instr::push_i(0), Instr::of(Opcode::Div)});
  EXPECT_EQ(top(), Value::of_int(0));
  run({Instr::push_i(9), Instr::push_i(0), Instr::of(Opcode::Mod)});
  EXPECT_EQ(top(), Value::of_int(0));
}

TEST_F(ExecTest, MixedArithmeticPromotesToFloat) {
  run({Instr::push_i(1), Instr::push_f(0.5), Instr::of(Opcode::Add)});
  EXPECT_EQ(top(), Value::of_float(1.5));
  run({Instr::push_i(2), Instr::of(Opcode::Mul)});
  EXPECT_EQ(top(), Value::of_float(3.0));
}

TEST_F(ExecTest, ComparisonsYieldInt) {
  run({Instr::push_f(1.5), Instr::push_i(2), Instr::of(Opcode::Lt)});
  EXPECT_EQ(top(), Value::of_int(1));
  run({Instr::push_i(3), Instr::push_i(3), Instr::of(Opcode::Ge)});
  EXPECT_EQ(top(), Value::of_int(1));
  run({Instr::push_i(3), Instr::push_i(4), Instr::of(Opcode::Eq)});
  EXPECT_EQ(top(), Value::of_int(0));
}

TEST_F(ExecTest, LogicalOpsUseTruthiness) {
  run({Instr::push_f(0.25), Instr::push_i(0), Instr::of(Opcode::LOr)});
  EXPECT_EQ(top(), Value::of_int(1));
  run({Instr::push_i(2), Instr::of(Opcode::LAnd)});
  EXPECT_EQ(top(), Value::of_int(1));
  run({Instr::push_i(0), Instr::of(Opcode::LAnd)});
  EXPECT_EQ(top(), Value::of_int(0));
  run({Instr::of(Opcode::Not)});
  EXPECT_EQ(top(), Value::of_int(1));
}

TEST_F(ExecTest, ShiftsMaskTheCount) {
  run({Instr::push_i(1), Instr::push_i(65), Instr::of(Opcode::Shl)});
  EXPECT_EQ(top(), Value::of_int(2));  // 65 & 63 == 1
}

TEST_F(ExecTest, Casts) {
  run({Instr::push_f(2.75), Instr::of(Opcode::CastI)});
  EXPECT_EQ(top(), Value::of_int(2));
  run({Instr::of(Opcode::CastF)});
  EXPECT_EQ(top(), Value::of_float(2.0));
}

TEST_F(ExecTest, LocalLoadStore) {
  run({Instr::push_i(42), Instr::push_i(5), Instr::of(Opcode::StL)});
  EXPECT_EQ(local_mem.get(5), Value::of_int(42));
  run({Instr::push_i(5), Instr::of(Opcode::LdL)});
  EXPECT_EQ(top(), Value::of_int(42));
}

TEST_F(ExecTest, MonoLoadStore) {
  run({Instr::push_i(9), Instr::push_i(1), Instr::of(Opcode::StM)});
  EXPECT_EQ(bus.mono[1], Value::of_int(9));
  run({Instr::push_i(1), Instr::of(Opcode::LdM)});
  EXPECT_EQ(top(), Value::of_int(9));
}

TEST_F(ExecTest, Routing) {
  bus.remotes[3][2] = Value::of_int(77);
  // RouteLd: push addr, push proc.
  run({Instr::push_i(2), Instr::push_i(3), Instr::of(Opcode::RouteLd)});
  EXPECT_EQ(top(), Value::of_int(77));
  // RouteSt: push value, addr, proc.
  run({Instr::push_i(55), Instr::push_i(4), Instr::push_i(1),
       Instr::of(Opcode::RouteSt)});
  EXPECT_EQ(bus.remotes[1][4], Value::of_int(55));
}

TEST_F(ExecTest, MachineQueries) {
  run({Instr::of(Opcode::ProcId)});
  EXPECT_EQ(top(), Value::of_int(2));
  run({Instr::of(Opcode::NProcs)});
  EXPECT_EQ(top(), Value::of_int(4));
}

TEST_F(ExecTest, Faults) {
  EXPECT_THROW(run({Instr::of(Opcode::Add)}), MachineFault);
  stack.clear();
  EXPECT_THROW(run({Instr::of(Opcode::Dup)}), MachineFault);
  EXPECT_THROW(run({Instr::push_i(99), Instr::of(Opcode::LdL)}), MachineFault);
  stack.clear();
  EXPECT_THROW(run({Instr::push_i(1), Instr::pop(2)}), MachineFault);
}

TEST(CostModel, OrderingOfCosts) {
  CostModel cost;
  // Relative cost structure the experiments rely on.
  EXPECT_GT(cost.route, cost.st_mono);
  EXPECT_GT(cost.st_mono, cost.st_local);
  EXPECT_GT(cost.div, cost.mul);
  EXPECT_GT(cost.mul, cost.alu);
  EXPECT_GT(cost.global_or, cost.jump);
  EXPECT_EQ(cost.instr_cost(Instr::of(Opcode::RouteLd)), cost.route);
  EXPECT_EQ(cost.instr_cost(Instr::push_i(1)), cost.push);
}

TEST(CostModel, BlockCostSumsBodyAndExit) {
  CostModel cost;
  Block b;
  b.body = {Instr::push_i(1), Instr::of(Opcode::Mul)};
  b.exit = ExitKind::Branch;
  EXPECT_EQ(cost.block_cost(b), cost.push + cost.mul + cost.branch);
  b.exit = ExitKind::Halt;
  EXPECT_EQ(cost.block_cost(b), cost.push + cost.mul + cost.halt);
}
