#include <gtest/gtest.h>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/ir/build.hpp"
#include "msc/ir/passes.hpp"
#include "msc/ir/peephole.hpp"
#include "msc/workload/generator.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using namespace msc::ir;

namespace {

std::vector<Instr> opt(std::vector<Instr> body) {
  StateGraph g;
  StateId b = g.add_block();
  g.start = b;
  g.at(b).body = std::move(body);
  peephole(g);
  return g.at(b).body;
}

}  // namespace

TEST(Peephole, ConstantFoldingBinary) {
  auto out = opt({Instr::push_i(2), Instr::push_i(3), Instr::of(Opcode::Mul)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Instr::push_i(6));
  // Chains fold to a single push.
  out = opt({Instr::push_i(2), Instr::push_i(3), Instr::of(Opcode::Add),
             Instr::push_i(4), Instr::of(Opcode::Mul)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Instr::push_i(20));
}

TEST(Peephole, FoldingMatchesRuntimeSemantics) {
  // Total division and float promotion must match exec_instr exactly.
  auto out = opt({Instr::push_i(7), Instr::push_i(0), Instr::of(Opcode::Div)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Instr::push_i(0));
  out = opt({Instr::push_i(1), Instr::push_f(0.5), Instr::of(Opcode::Add)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Instr::push_f(1.5));
  out = opt({Instr::push_f(2.75), Instr::of(Opcode::CastI)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Instr::push_i(2));
}

TEST(Peephole, DeadValueElimination) {
  EXPECT_TRUE(opt({Instr::push_i(9), Instr::pop(1)}).empty());
  EXPECT_TRUE(opt({Instr::of(Opcode::Dup), Instr::pop(1)}).empty());
  // Pop(2) is not touched by the dead-value rule.
  auto out = opt({Instr::push_i(9), Instr::pop(2)});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Peephole, StatementStoreShrinks) {
  auto out = opt({Instr::push_i(5), Instr::of(Opcode::Dup), Instr::push_i(12),
                  Instr::of(Opcode::StL), Instr::pop(1)});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], Instr::push_i(5));
  EXPECT_EQ(out[1], Instr::push_i(12));
  EXPECT_EQ(out[2].op, Opcode::StL);
}

TEST(Peephole, PopFusion) {
  auto out = opt({Instr::of(Opcode::LdL), Instr::pop(1), Instr::pop(2)});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1], Instr::pop(3));
}

TEST(Peephole, LeavesImpureCodeAlone) {
  std::vector<Instr> body = {Instr::push_i(1), Instr::of(Opcode::LdL),
                             Instr::of(Opcode::Add)};
  EXPECT_EQ(opt(body).size(), 3u);
}

TEST(Peephole, ShrinksRealKernels) {
  // compile() already runs peephole; rebuilding without it must be bigger.
  auto compiled = driver::compile(workload::listing1().source);
  ir::StateGraph raw = ir::build_state_graph(*compiled.program, compiled.layout);
  ir::simplify(raw);
  std::size_t before = 0, after = 0;
  for (const auto& b : raw.blocks) before += b.body.size();
  std::size_t removed = ir::peephole(raw);
  for (const auto& b : raw.blocks) after += b.body.size();
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(after + removed, before);
}

TEST(Peephole, WholeSuiteStillEquivalentToOracle) {
  ir::CostModel cost;
  for (const auto& k : workload::suite()) {
    auto compiled = driver::compile(k.source);  // peephole applied
    auto conv = core::meta_state_convert(compiled.graph, cost, {});
    mimd::RunConfig cfg;
    cfg.nprocs = 6;
    if (k.name == "spawn_tree") cfg.initial_active = 2;
    auto oracle = driver::run_oracle(compiled, cfg, 13);
    auto simd = driver::run_simd(compiled, conv, cfg, 13, cost);
    if (k.per_pe_deterministic) {
      EXPECT_TRUE(oracle == simd) << k.name;
    } else {
      EXPECT_TRUE(oracle.equivalent_unordered(simd)) << k.name;
    }
  }
}

TEST(Peephole, RandomProgramsUnchangedSemantics) {
  // Optimized vs unoptimized graphs must produce identical oracle results.
  ir::CostModel cost;
  for (std::uint64_t seed = 900; seed < 915; ++seed) {
    std::string src = workload::generate_program(seed);
    SCOPED_TRACE(src);
    auto compiled = driver::compile(src);  // with peephole
    ir::StateGraph raw = ir::build_state_graph(*compiled.program, compiled.layout);
    ir::simplify(raw);  // without peephole
    mimd::RunConfig cfg;
    cfg.nprocs = 4;

    mimd::MimdMachine a(compiled.graph, cost, cfg);
    mimd::MimdMachine b(raw, cost, cfg);
    driver::seed_machine(a, compiled, cfg, seed);
    driver::seed_machine(b, compiled, cfg, seed);
    a.run();
    b.run();
    for (std::int64_t p = 0; p < cfg.nprocs; ++p)
      EXPECT_EQ(a.peek(p, frontend::Layout::kResultAddr),
                b.peek(p, frontend::Layout::kResultAddr))
          << "PE " << p;
  }
}
