// Golden snapshot: the MPL-style coding of the paper's Listing 4 must be
// byte-identical to tests/golden/listing4.mpl. This pins the emitter,
// hash-function selection, CSI schedule, and automaton numbering all at
// once. If an intentional pipeline change alters the output, regenerate
// with:  ./build/examples/mscc --kernel listing4 --emit mpl \
//           > tests/golden/listing4.mpl
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "msc/codegen/program.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

TEST(Golden, Listing4MplSnapshot) {
  std::ifstream in(MSC_GOLDEN_DIR "/listing4.mpl");
  ASSERT_TRUE(in) << "missing golden file";
  std::ostringstream want;
  want << in.rdbuf();

  auto compiled = driver::compile(workload::listing4().source);
  ir::CostModel cost;
  auto conv = core::meta_state_convert(compiled.graph, cost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, cost, {});
  std::string got = codegen::to_mpl(prog, conv.graph);

  EXPECT_EQ(got, want.str())
      << "emitter output drifted from the golden snapshot; if intentional, "
         "regenerate per the header comment";
}
