// Golden snapshot: the MPL-style coding of the paper's Listing 4 must be
// byte-identical to tests/golden/listing4.mpl. This pins the emitter,
// hash-function selection, CSI schedule, and automaton numbering all at
// once. If an intentional pipeline change alters the output, regenerate
// with:
//   ./build/tools/mscc --kernel listing4 --emit mpl > tests/golden/listing4.mpl
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "msc/codegen/program.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/simd/machine.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

TEST(Golden, Listing4MplSnapshot) {
  std::ifstream in(MSC_GOLDEN_DIR "/listing4.mpl");
  ASSERT_TRUE(in) << "missing golden file";
  std::ostringstream want;
  want << in.rdbuf();

  auto compiled = driver::compile(workload::listing4().source);
  ir::CostModel cost;
  auto conv = core::meta_state_convert(compiled.graph, cost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, cost, {});
  std::string got = codegen::to_mpl(prog, conv.graph);

  EXPECT_EQ(got, want.str())
      << "emitter output drifted from the golden snapshot; if intentional, "
         "regenerate per the header comment";
}

// The --trace-simd JSON dump for listing1 (fast engine, nprocs 4, seed 1)
// must be byte-identical to tests/golden/listing1_trace.json. This pins the
// execution-stats schema (engine name, resolved ISA, every cycle counter,
// utilization formatting, per-meta-state visits) and — because the
// counters themselves are part of the snapshot — the engine's cost
// accounting. The ISA is pinned to scalar so the snapshot is
// host-independent. Regenerate with:
//   ./build/tools/mscc --kernel listing1 --emit meta --nprocs 4 --seed 1
//       --simd-isa scalar --trace-simd tests/golden/listing1_trace.json
//       > /dev/null
// (single command line; wrapped here for width)
TEST(Golden, TraceSimdJsonSnapshot) {
  std::ifstream in(MSC_GOLDEN_DIR "/listing1_trace.json");
  ASSERT_TRUE(in) << "missing golden file";
  std::ostringstream want;
  want << in.rdbuf();

  auto compiled = driver::compile(workload::listing1().source);
  ir::CostModel cost;
  auto conv = core::meta_state_convert(compiled.graph, cost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, cost, {});
  mimd::RunConfig config;
  config.nprocs = 4;
  config.simd_isa = SimdIsa::Scalar;  // host-independent snapshot
  auto machine = simd::make_machine(prog, cost, config);
  driver::seed_machine(*machine, compiled, config, 1);
  machine->run();
  std::string got = simd::to_json(*machine);

  EXPECT_EQ(got, want.str())
      << "simd trace JSON drifted from the golden snapshot; if intentional, "
         "regenerate per the comment above";
  // Schema sanity independent of exact values.
  EXPECT_NE(got.find("\"engine\": \"fast\""), std::string::npos);
  EXPECT_NE(got.find("\"utilization\""), std::string::npos);
  EXPECT_NE(got.find("\"visits\""), std::string::npos);
}
