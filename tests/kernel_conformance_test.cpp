// Ground-truth conformance: every verified kernel (src/kernels) must
// produce its host-side expected() answer — not merely agree with another
// engine — on all three SIMD engines, across the default / dme / compress+
// subsume pipelines, at several PE counts including a word-boundary 65.
// The MIMD oracle is held to the same ground truth, so a bug shared by
// every engine (or by the converter) cannot hide behind differential
// equality.
#include <gtest/gtest.h>

#include <cstdlib>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/kernels/verified.hpp"
#include "msc/support/str.hpp"

using namespace msc;

namespace {

struct Case {
  std::string kernel;
  std::int64_t n;
  mimd::SimdEngine engine;
  const char* pipeline;  // "default", "dme", "compress"
};

std::string engine_tag(mimd::SimdEngine e) {
  switch (e) {
    case mimd::SimdEngine::Reference: return "reference";
    case mimd::SimdEngine::Codegen: return "codegen";
    default: return "fast";
  }
}

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  return msc::cat(c.kernel, "_n", c.n, "_", engine_tag(c.engine), "_", c.pipeline);
}

driver::PipelineOptions pipeline_options(const std::string& which) {
  driver::PipelineOptions popts;
  if (which == "dme")
    popts.pipeline = {"simplify", "peephole", "convert",
                      "subsume",  "dme",      "straighten"};
  else if (which == "compress")
    popts.pipeline = {"simplify", "peephole", "compress",
                      "convert",  "subsume",  "straighten"};
  return popts;
}

class KernelConformanceTest : public testing::TestWithParam<Case> {};

TEST_P(KernelConformanceTest, MatchesGroundTruth) {
  const Case& tc = GetParam();
  kernels::VerifiedParams params;
  params.n = tc.n;
  const kernels::VerifiedCase c = kernels::make_case(tc.kernel, params);

  ir::CostModel cost;
  auto converted = driver::convert(c.source, cost, pipeline_options(tc.pipeline));

  mimd::RunConfig config = c.config;
  config.engine = tc.engine;
  auto obs = driver::run_simd(converted.compiled, converted.conversion, config,
                              c.input_seed, cost);
  EXPECT_EQ(kernels::check(c, obs), "");
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const std::string& k : kernels::verified_names())
    for (std::int64_t n : {5, 16, 65})  // non-pow2, pow2, word boundary
      for (auto engine : {mimd::SimdEngine::Reference, mimd::SimdEngine::Fast,
                          mimd::SimdEngine::Codegen})
        for (const char* pipeline : {"default", "dme", "compress"})
          cases.push_back({k, n, engine, pipeline});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelConformanceTest,
                         testing::ValuesIn(all_cases()), case_name);

// The asynchronous MIMD oracle meets the same ground truth: expected()
// encodes the program's meaning, not an artifact of lockstep execution.
TEST(KernelGroundTruth, OracleMatches) {
  for (const std::string& k : kernels::verified_names()) {
    for (std::int64_t n : {5, 16, 65}) {
      kernels::VerifiedParams params;
      params.n = n;
      const kernels::VerifiedCase c = kernels::make_case(k, params);
      auto compiled = driver::compile(c.source);
      auto obs = driver::run_oracle(compiled, c.config, c.input_seed);
      EXPECT_EQ(kernels::check(c, obs), "") << k << " n=" << n;
    }
  }
}

// A machine wider than the problem: trailing PEs must never run and the
// participating prefix still meets ground truth (initial_active < nprocs,
// spawn claims keep inside the expected range).
TEST(KernelGroundTruth, WiderMachineThanProblem) {
  for (const std::string& k : kernels::verified_names()) {
    kernels::VerifiedParams params;
    params.n = 13;
    params.nprocs = 16;
    const kernels::VerifiedCase c = kernels::make_case(k, params);
    ir::CostModel cost;
    auto converted = driver::convert(c.source, cost, driver::PipelineOptions{});
    mimd::RunConfig config = c.config;
    config.engine = mimd::SimdEngine::Fast;
    auto obs = driver::run_simd(converted.compiled, converted.conversion,
                                config, c.input_seed, cost);
    EXPECT_EQ(kernels::check(c, obs), "") << k;
  }
}

// Ground truth is seed-sensitive where the kernel consumes inputs: two
// different seeds produce different expected vectors (guards against an
// expected() that ignores its inputs).
TEST(KernelGroundTruth, SeedSensitivity) {
  for (const std::string& k : kernels::verified_names()) {
    kernels::VerifiedParams a, b;
    a.n = b.n = 16;
    a.input_seed = 1;
    b.input_seed = 99;
    const auto ca = kernels::make_case(k, a);
    const auto cb = kernels::make_case(k, b);
    if (ca.uses_seed_input)
      EXPECT_NE(ca.expected_results, cb.expected_results) << k;
    else
      EXPECT_EQ(ca.expected_results, cb.expected_results) << k;
  }
}

TEST(KernelGroundTruth, ParseCaseSpecs) {
  const auto c = kernels::parse_case("reduce@65");
  EXPECT_EQ(c.n, 65);
  EXPECT_EQ(c.name, "reduce");
  EXPECT_EQ(kernels::parse_case("scan").n, kernels::VerifiedParams{}.n);
  EXPECT_THROW(kernels::parse_case("reduce@banana"), std::invalid_argument);
  EXPECT_THROW(kernels::parse_case("nosuch"), std::out_of_range);
  EXPECT_THROW(kernels::make_case("reduce", {.n = 0}), std::invalid_argument);
  kernels::VerifiedParams narrow;
  narrow.n = 8;
  narrow.nprocs = 4;
  EXPECT_THROW(kernels::make_case("reduce", narrow), std::invalid_argument);
}

}  // namespace
