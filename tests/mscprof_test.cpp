// Integration test for the mscprof report tool: generates observability
// JSON with the built mscc, then pins mscprof's rendering byte-exactly
// against goldens (profiles live on the simulated-cycle timeline, so the
// reports are deterministic across hosts) and cross-checks the Chrome
// trace aggregation path against the profile path.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct CliResult {
  int exit_code;
  std::string output;
};

/// Run `cmd` (stderr folded into stdout) and capture everything.
CliResult run_cmd(const std::string& cmd) {
  std::array<char, 4096> buf{};
  CliResult res;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (!pipe) {
    res.exit_code = -1;
    return res;
  }
  std::size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    res.output.append(buf.data(), n);
  int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

/// mscprof prints the input path verbatim in its headers, so goldens are
/// only byte-stable when the tool runs with the tmpdir as cwd and sees a
/// bare relative filename.
CliResult run_mscprof(const std::string& args) {
  return run_cmd("cd " + std::string(MSCC_TMPDIR) + " && " +
                 std::string(MSCPROF_BINARY) + " " + args);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Generate a deterministic per-meta-state profile with mscc. Returns the
/// bare filename (inside MSCC_TMPDIR).
std::string make_profile(const std::string& name, const std::string& flags) {
  const std::string file = name + ".json";
  CliResult r = run_cmd(std::string(MSCC_BINARY) + " " + flags +
                        " --profile-simd " + MSCC_TMPDIR + "/" + file);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  return file;
}

// --simd-isa scalar pins the report's "simd isa" line (and the profile's
// isa header) so the goldens are host-independent.
const char* kListing1N4 =
    "--kernel listing1 --emit meta --nprocs 4 --seed 1 --simd-isa scalar";
const char* kListing1N8 =
    "--kernel listing1 --emit meta --nprocs 8 --seed 1 --simd-isa scalar";

/// Extract the summary lines that must agree between a profile input and
/// the Chrome-trace aggregation of the same run.
std::vector<std::string> totals_lines(const std::string& report) {
  std::vector<std::string> out;
  std::istringstream in(report);
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, 2, "  ") != 0) continue;  // summary rows only
    if (line.find("meta transitions") != std::string::npos ||
        line.find("control cycles") != std::string::npos ||
        line.find("PE utilization") != std::string::npos ||
        line.find("global-ors") != std::string::npos)
      out.push_back(line);
  }
  return out;
}

TEST(Mscprof, GoldenProfileReport) {
  const std::string file = make_profile("mscprof_listing1", kListing1N4);
  CliResult r = run_mscprof(file);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::string golden =
      slurp(std::string(MSC_GOLDEN_DIR) + "/mscprof_listing1.txt");
  ASSERT_FALSE(golden.empty()) << "missing golden; regenerate with:\n"
                                  "  mscc " << kListing1N4
                               << " --profile-simd mscprof_listing1.json\n"
                                  "  mscprof mscprof_listing1.json";
  EXPECT_EQ(r.output, golden)
      << "mscprof output drifted; regenerate the golden if intentional";
}

TEST(Mscprof, GoldenDiffReport) {
  const std::string before = make_profile("mscprof_listing1", kListing1N4);
  const std::string after = make_profile("mscprof_listing1_n8", kListing1N8);
  CliResult r = run_mscprof(before + " --diff " + after);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::string golden =
      slurp(std::string(MSC_GOLDEN_DIR) + "/mscprof_diff.txt");
  ASSERT_FALSE(golden.empty()) << "missing golden mscprof_diff.txt";
  EXPECT_EQ(r.output, golden);
}

TEST(Mscprof, GoldenCoscheduleReport) {
  // A co-scheduled profile document renders a machine-level header plus
  // one full per-program section per automaton (DESIGN.md §12). The
  // schedule lives on the simulated-cycle timeline, so the report is
  // byte-stable.
  const std::string file = "mscprof_cosched.json";
  CliResult gen = run_cmd(std::string(MSCC_BINARY) +
                          " --coschedule reduce@16,scan@16"
                          " --cosched-policy greedy --seed 1"
                          " --simd-isa scalar"
                          " --profile-simd " +
                          MSCC_TMPDIR + "/" + file);
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  CliResult r = run_mscprof(file);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::string golden =
      slurp(std::string(MSC_GOLDEN_DIR) + "/mscprof_cosched.txt");
  ASSERT_FALSE(golden.empty())
      << "missing golden; regenerate with:\n"
         "  mscc --coschedule reduce@16,scan@16 --cosched-policy greedy"
         " --seed 1 --simd-isa scalar --profile-simd mscprof_cosched.json\n"
         "  mscprof mscprof_cosched.json";
  EXPECT_EQ(r.output, golden)
      << "mscprof co-schedule output drifted; regenerate if intentional";

  // --diff refuses co-scheduled inputs with a pointed message.
  CliResult diff = run_mscprof(file + " --diff " + file);
  EXPECT_EQ(diff.exit_code, 1);
  EXPECT_NE(diff.output.find("does not support co-scheduled"),
            std::string::npos)
      << diff.output;
}

TEST(Mscprof, ChromeTraceAggregationMatchesProfileTotals) {
  // One mscc invocation writes both views of the same run; aggregating
  // the pid-2 meta-state events must reproduce the profile's totals
  // (the cycle fields are exact int64 sums on both paths).
  const std::string prof = std::string(MSCC_TMPDIR) + "/mscprof_chrome_p.json";
  const std::string chrome =
      std::string(MSCC_TMPDIR) + "/mscprof_chrome_t.json";
  CliResult gen =
      run_cmd(std::string(MSCC_BINARY) + " " + kListing1N4 +
              " --profile-simd " + prof + " --trace-chrome " + chrome);
  ASSERT_EQ(gen.exit_code, 0) << gen.output;

  CliResult from_prof = run_mscprof("mscprof_chrome_p.json");
  CliResult from_chrome = run_mscprof("mscprof_chrome_t.json");
  ASSERT_EQ(from_prof.exit_code, 0) << from_prof.output;
  ASSERT_EQ(from_chrome.exit_code, 0) << from_chrome.output;
  const std::vector<std::string> p = totals_lines(from_prof.output);
  const std::vector<std::string> c = totals_lines(from_chrome.output);
  ASSERT_EQ(p.size(), 4u) << from_prof.output;
  EXPECT_EQ(p, c) << "profile:\n"
                  << from_prof.output << "\nchrome:\n"
                  << from_chrome.output;
  // The chrome path also tabulates the toolchain pass spans.
  EXPECT_NE(from_chrome.output.find("pass wall time"), std::string::npos)
      << from_chrome.output;
  EXPECT_NE(from_chrome.output.find("convert"), std::string::npos);
}

TEST(Mscprof, TopLimitsTheTable) {
  const std::string file = make_profile("mscprof_listing1", kListing1N4);
  CliResult r = run_mscprof("--top 1 " + file);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("top 1 of"), std::string::npos) << r.output;
}

TEST(Mscprof, ExitCodes) {
  EXPECT_EQ(run_mscprof("").exit_code, 2) << "no input is a usage error";
  EXPECT_EQ(run_mscprof("--help").exit_code, 2);
  EXPECT_EQ(run_mscprof("--no-such-flag x.json").exit_code, 2);
  EXPECT_EQ(run_mscprof("does_not_exist.json").exit_code, 1);
  const std::string bad = std::string(MSCC_TMPDIR) + "/mscprof_bad.json";
  {
    std::ofstream out(bad);
    out << "{not json";
  }
  EXPECT_EQ(run_mscprof("mscprof_bad.json").exit_code, 1);
  // Valid JSON that is not an mscc output is still an input error.
  const std::string other = std::string(MSCC_TMPDIR) + "/mscprof_other.json";
  {
    std::ofstream out(other);
    out << "{\"schema\": 1}";
  }
  EXPECT_EQ(run_mscprof("mscprof_other.json").exit_code, 1);
}

}  // namespace
