#include <gtest/gtest.h>

#include "msc/core/profile.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using namespace msc::core;

namespace {
ir::CostModel kCost;
}

TEST(Profile, Listing1BaseShape) {
  auto conv = core::meta_state_convert(
      driver::compile(workload::listing1().source).graph, kCost, {});
  AutomatonProfile p = profile(conv.automaton);
  EXPECT_EQ(p.states, 8u);
  EXPECT_EQ(p.arcs, conv.automaton.num_arcs());
  EXPECT_EQ(p.terminal_states, 1u);
  EXPECT_EQ(p.unconditional_states, 0u);
  EXPECT_EQ(p.max_width, 3u);
  // Fig. 2 widths: four singletons, three pairs, one triple.
  EXPECT_EQ(p.width_histogram.at(1), 4u);
  EXPECT_EQ(p.width_histogram.at(2), 3u);
  EXPECT_EQ(p.width_histogram.at(3), 1u);
  // 3^1 successors from the start; loop states also branch 3 ways.
  EXPECT_EQ(p.max_out_degree, 5u);  // {B;C,D;E}: 5 distinct aggregates
  // Every MIMD state except A appears in 4 meta states, A in 1.
  std::size_t ones = 0, fours = 0;
  for (std::size_t r : p.replication) (r == 1 ? ones : fours) += 1;
  EXPECT_EQ(ones, 1u);
  EXPECT_EQ(fours, 3u);
  EXPECT_GT(p.mean_replication(), 1.0);
}

TEST(Profile, CompressedShape) {
  core::ConvertOptions opts;
  opts.compress = true;
  auto conv = core::meta_state_convert(
      driver::compile(workload::listing1().source).graph, kCost, opts);
  AutomatonProfile p = profile(conv.automaton);
  EXPECT_EQ(p.states, 2u);
  EXPECT_EQ(p.unconditional_states, 2u);
  EXPECT_EQ(p.terminal_states, 0u);
  EXPECT_EQ(p.max_out_degree, 0u);  // no keyed arcs at all
}

TEST(Profile, BarrierStatesCounted) {
  core::ConvertOptions opts;
  opts.barrier_mode = BarrierMode::PaperPrune;
  auto conv = core::meta_state_convert(
      driver::compile(workload::listing3().source).graph, kCost, opts);
  AutomatonProfile p = profile(conv.automaton);
  EXPECT_EQ(p.all_barrier_states, 1u);
}

TEST(Profile, TextReportContainsEverything) {
  auto conv = core::meta_state_convert(
      driver::compile(workload::listing1().source).graph, kCost, {});
  std::string text = profile(conv.automaton).to_string();
  EXPECT_NE(text.find("states            8"), std::string::npos) << text;
  EXPECT_NE(text.find("width histogram"), std::string::npos);
  EXPECT_NE(text.find("degree histogram"), std::string::npos);
}
