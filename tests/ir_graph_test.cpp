#include <gtest/gtest.h>

#include "msc/driver/pipeline.hpp"
#include "msc/ir/build.hpp"
#include "msc/ir/graph.hpp"
#include "msc/ir/passes.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using namespace msc::ir;

namespace {

StateGraph graph_of(const std::string& src) { return driver::compile(src).graph; }

std::size_t count_exits(const StateGraph& g, ExitKind kind) {
  std::size_t n = 0;
  for (const Block& b : g.blocks)
    if (b.exit == kind) ++n;
  return n;
}

}  // namespace

// ------------------------------------------------------------ StateGraph API

TEST(StateGraph, SuccessorsPerExitKind) {
  StateGraph g;
  StateId a = g.add_block("a");
  StateId b = g.add_block("b");
  StateId c = g.add_block("c");
  g.start = a;
  g.at(a).exit = ExitKind::Branch;
  g.at(a).target = b;
  g.at(a).alt = c;
  g.at(b).exit = ExitKind::Jump;
  g.at(b).target = c;
  g.at(c).exit = ExitKind::Halt;
  EXPECT_EQ(g.successors(a), (std::vector<StateId>{b, c}));
  EXPECT_EQ(g.successors(b), (std::vector<StateId>{c}));
  EXPECT_TRUE(g.successors(c).empty());
  auto preds = g.predecessors();
  EXPECT_EQ(preds[c], (std::vector<StateId>{a, b}));
  EXPECT_TRUE(g.validate().empty());
}

TEST(StateGraph, ValidateCatchesBadArcs) {
  StateGraph g;
  StateId a = g.add_block();
  g.start = a;
  g.at(a).exit = ExitKind::Jump;
  g.at(a).target = 99;
  EXPECT_FALSE(g.validate().empty());
  g.at(a).exit = ExitKind::Branch;  // missing alt
  g.at(a).target = a;
  EXPECT_FALSE(g.validate().empty());
}

TEST(StateGraph, ValidateCatchesBarrierWithBody) {
  StateGraph g;
  StateId a = g.add_block();
  g.start = a;
  g.at(a).barrier_wait = true;
  g.at(a).body.push_back(Instr::push_i(1));
  g.at(a).exit = ExitKind::Jump;
  g.at(a).target = a;
  EXPECT_FALSE(g.validate().empty());
}

// --------------------------------------------------------------------- build

TEST(Build, Listing1HasPaperShape) {
  StateGraph g = graph_of(workload::listing1().source);
  // Fig. 1: A (branch), B;C (branch), D;E (branch), F (halt).
  ASSERT_EQ(g.size(), 4u) << g.dump();
  const Block& a = g.at(g.start);
  EXPECT_EQ(a.exit, ExitKind::Branch);
  StateId bc = a.target, de = a.alt;
  EXPECT_EQ(g.at(bc).exit, ExitKind::Branch);
  EXPECT_EQ(g.at(bc).target, bc);  // loop back edge
  EXPECT_EQ(g.at(de).exit, ExitKind::Branch);
  EXPECT_EQ(g.at(de).target, de);
  EXPECT_EQ(g.at(bc).alt, g.at(de).alt);  // both exit to F
  EXPECT_EQ(g.at(g.at(bc).alt).exit, ExitKind::Halt);
}

TEST(Build, Listing3AddsExactlyOneBarrierState) {
  StateGraph g = graph_of(workload::listing3().source);
  ASSERT_EQ(g.size(), 5u) << g.dump();
  DynBitset barriers = g.barrier_states();
  EXPECT_EQ(barriers.count(), 1u);
  const Block& w = g.at(static_cast<StateId>(barriers.first()));
  EXPECT_TRUE(w.body.empty());
  EXPECT_EQ(w.exit, ExitKind::Jump);
  EXPECT_EQ(g.at(w.target).exit, ExitKind::Halt);  // F after the barrier
}

TEST(Build, WhileLoopIsNormalizedToEntryTestPlusBottomTest) {
  // §4.2: loops execute the body one or more times; the condition code is
  // replicated, so a while loop compiles to 3 states, with no extra
  // header state for the back edge.
  StateGraph g = graph_of(
      "poly int x; int main() { while (x) { x = x - 1; } return x; }");
  EXPECT_EQ(g.size(), 3u) << g.dump();
  // Entry tests the condition and branches around the loop entirely.
  EXPECT_EQ(g.at(g.start).exit, ExitKind::Branch);
}

TEST(Build, SpawnAndHalt) {
  StateGraph g = graph_of("int main() { spawn { halt; } return 1; }");
  EXPECT_EQ(count_exits(g, ExitKind::Spawn), 1u);
  EXPECT_TRUE(g.has_spawn());
  EXPECT_FALSE(graph_of("int main() { return 1; }").has_spawn());
}

TEST(Build, EmptyMainStillReturnsZero) {
  StateGraph g = graph_of("int main() { }");
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.at(g.start).exit, ExitKind::Halt);
  EXPECT_FALSE(g.at(g.start).body.empty());  // prologue + return 0
}

TEST(Build, InlineExpansionDuplicatesPerCallSite) {
  // Two calls to f: its body appears twice (§2.2 in-line expansion).
  StateGraph one = graph_of(
      "int f(int n) { if (n) { return 1; } return 2; }"
      "int main() { return f(1); }");
  StateGraph two = graph_of(
      "int f(int n) { if (n) { return 1; } return 2; }"
      "int main() { return f(1) + f(0); }");
  EXPECT_GT(two.size(), one.size());
}

TEST(Build, RecursiveBodyIsSharedNotDuplicated) {
  // Three call sites of a recursive function share one body; the graph
  // grows only by call/return glue, not by a full body copy per site.
  StateGraph one = graph_of(
      "int f(int n) { if (n < 1) { return 0; } return f(n - 1) + 1; }"
      "int main() { return f(2); }");
  StateGraph two = graph_of(
      "int f(int n) { if (n < 1) { return 0; } return f(n - 1) + 1; }"
      "int main() { return f(2) + f(3); }");
  EXPECT_LT(two.size(), one.size() * 2);
}

TEST(Build, CallerOfMainRejected) {
  EXPECT_THROW(graph_of("int main() { return main(); }"), CompileError);
}

// -------------------------------------------------------------------- passes

TEST(Passes, StraighteningMergesChains) {
  StateGraph g;
  StateId a = g.add_block("a");
  StateId b = g.add_block("b");
  StateId c = g.add_block("c");
  g.start = a;
  g.at(a).body.push_back(Instr::push_i(1));
  g.at(a).exit = ExitKind::Jump;
  g.at(a).target = b;
  g.at(b).body.push_back(Instr::push_i(2));
  g.at(b).exit = ExitKind::Jump;
  g.at(b).target = c;
  g.at(c).body.push_back(Instr::pop(2));
  g.at(c).exit = ExitKind::Halt;
  simplify(g);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g.at(0).body.size(), 3u);
  EXPECT_EQ(g.at(0).exit, ExitKind::Halt);
  EXPECT_EQ(g.at(0).label, "a;b;c");
}

TEST(Passes, StraighteningStopsAtSharedBlocks) {
  StateGraph g;
  StateId a = g.add_block();
  StateId b = g.add_block();
  StateId join = g.add_block();
  g.start = a;
  g.at(a).exit = ExitKind::Branch;
  g.at(a).target = b;
  g.at(a).alt = join;  // join has two preds: a and b
  g.at(b).body.push_back(Instr::push_i(1));
  g.at(b).exit = ExitKind::Jump;
  g.at(b).target = join;
  g.at(join).body.push_back(Instr::push_i(2));
  g.at(join).exit = ExitKind::Halt;
  simplify(g);
  EXPECT_EQ(g.size(), 3u);  // nothing merged into join
}

TEST(Passes, EmptyForwardersAreBypassed) {
  StateGraph g;
  StateId a = g.add_block();
  StateId e1 = g.add_block();
  StateId e2 = g.add_block();
  StateId d = g.add_block();
  g.start = a;
  g.at(a).body.push_back(Instr::push_i(1));
  g.at(a).exit = ExitKind::Branch;
  g.at(a).target = e1;
  g.at(a).alt = e2;
  g.at(e1).exit = ExitKind::Jump;
  g.at(e1).target = d;
  g.at(e2).exit = ExitKind::Jump;
  g.at(e2).target = d;
  g.at(d).exit = ExitKind::Halt;
  simplify(g);
  // Both arms forward to d; the branch folds and merges with d.
  ASSERT_EQ(g.size(), 1u) << g.dump();
  EXPECT_EQ(g.at(0).exit, ExitKind::Halt);
}

TEST(Passes, BarrierStatesSurviveSimplification) {
  StateGraph g = graph_of("int main() { wait; return 1; }");
  EXPECT_EQ(g.barrier_states().count(), 1u);
  // Barrier block still empty-bodied with a single exit.
  EXPECT_TRUE(g.validate().empty());
}

TEST(Passes, UnreachableCodeRemoved) {
  StateGraph g = graph_of("int main() { return 1; int x; x = 2; return x; }");
  EXPECT_EQ(g.size(), 1u);
}

TEST(Passes, EmptyInfiniteLoopSurvives) {
  // for(;;); is an empty cycle; simplify must not hang or corrupt it.
  StateGraph g = driver::compile("int main() { for (;;) ; }").graph;
  EXPECT_TRUE(g.validate().empty());
  bool has_cycle = false;
  for (const Block& b : g.blocks)
    if (b.exit == ExitKind::Jump && b.target == b.id) has_cycle = true;
  EXPECT_TRUE(has_cycle);
}

TEST(Passes, FoldsBranchWithIdenticalArms) {
  StateGraph g;
  StateId a = g.add_block();
  StateId t = g.add_block();
  g.start = a;
  g.at(a).body.push_back(Instr::push_i(1));
  g.at(a).exit = ExitKind::Branch;
  g.at(a).target = t;
  g.at(a).alt = t;
  g.at(t).body.push_back(Instr::push_i(9));
  g.at(t).exit = ExitKind::Halt;
  simplify(g);
  ASSERT_EQ(g.size(), 1u);
  // The popped condition and both bodies merged.
  EXPECT_EQ(g.at(0).body.size(), 3u);
}

// ---------------------------------------------------------------------- dump

TEST(Dump, GraphDumpAndDotContainStates) {
  StateGraph g = graph_of(workload::listing1().source);
  std::string dump = g.dump();
  EXPECT_NE(dump.find("4 states"), std::string::npos);
  EXPECT_NE(dump.find("JumpF("), std::string::npos);
  std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph mimd"), std::string::npos);
  EXPECT_NE(dot.find("\"s0\" -> "), std::string::npos);
}
