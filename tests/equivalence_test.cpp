#include <gtest/gtest.h>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

namespace {

struct Case {
  std::string kernel;
  bool compress;
  core::BarrierMode barrier_mode;
  bool time_split;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string n = c.kernel;
  n += c.compress ? "_compressed" : "_base";
  n += c.barrier_mode == core::BarrierMode::PaperPrune ? "_prune" : "_track";
  if (c.time_split) n += "_split";
  return n;
}

class EquivalenceTest : public testing::TestWithParam<Case> {};

TEST_P(EquivalenceTest, SimdMatchesOracle) {
  const Case& c = GetParam();
  const workload::Kernel& k = workload::kernel(c.kernel);
  auto compiled = driver::compile(k.source);

  core::ConvertOptions opts;
  opts.compress = c.compress;
  opts.barrier_mode = c.barrier_mode;
  opts.time_split = c.time_split;
  ir::CostModel cost;
  auto conversion = core::meta_state_convert(compiled.graph, cost, opts);
  ASSERT_TRUE(conversion.automaton.validate(conversion.graph).empty())
      << conversion.automaton.dump();

  mimd::RunConfig config;
  config.nprocs = 8;
  if (c.kernel == "spawn_tree") config.initial_active = 2;

  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    auto oracle = driver::run_oracle(compiled, config, seed);
    auto simd = driver::run_simd(compiled, conversion, config, seed, cost);
    if (k.per_pe_deterministic) {
      EXPECT_TRUE(oracle == simd)
          << "seed " << seed << "\noracle: " << oracle.to_string()
          << "\nsimd:   " << simd.to_string();
    } else {
      EXPECT_TRUE(oracle.equivalent_unordered(simd))
          << "seed " << seed << "\noracle: " << oracle.to_string()
          << "\nsimd:   " << simd.to_string();
    }
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const workload::Kernel& k : workload::suite()) {
    for (bool compress : {false, true}) {
      for (auto mode :
           {core::BarrierMode::TrackOccupancy, core::BarrierMode::PaperPrune}) {
        for (bool split : {false, true}) {
          // PaperPrune is exercised only where the converter accepts it:
          // one barrier state, static process population, no compression
          // (the other combinations are compile errors — soundness_test).
          if (mode == core::BarrierMode::PaperPrune &&
              (compress || k.source.find("spawn") != std::string::npos ||
               driver::compile(k.source).graph.barrier_states().count() > 1))
            continue;
          // Time splitting multiplies MIMD states; on loop-heavy divergent
          // kernels the *base* conversion then exceeds the explosion guard
          // (a real §1.2 phenomenon, measured in bench_state_explosion).
          // Compression handles those; skip only base+split there.
          if (split && !compress &&
              (k.name == "recursion" || k.name == "imbalanced"))
            continue;
          cases.push_back({k.name, compress, mode, split});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, EquivalenceTest,
                         testing::ValuesIn(all_cases()), case_name);

}  // namespace
