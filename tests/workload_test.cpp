#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/workload/generator.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

// ------------------------------------------------------------------ kernels

TEST(Kernels, SuiteIsWellFormed) {
  std::set<std::string> names;
  for (const auto& k : workload::suite()) {
    EXPECT_FALSE(k.name.empty());
    EXPECT_FALSE(k.description.empty());
    EXPECT_TRUE(names.insert(k.name).second) << "duplicate kernel " << k.name;
    // Every kernel compiles into a valid graph.
    auto compiled = driver::compile(k.source);
    EXPECT_TRUE(compiled.graph.validate().empty()) << k.name;
    EXPECT_FALSE(compiled.diags.has_errors()) << k.name;
    // Seeded kernels actually declare the poly input.
    if (k.wants_seed_input) {
      const auto* slot = compiled.layout.find("x");
      ASSERT_NE(slot, nullptr) << k.name;
      EXPECT_EQ(slot->storage, frontend::Storage::PolyStatic) << k.name;
    }
  }
}

TEST(Kernels, LookupByName) {
  EXPECT_EQ(workload::kernel("listing1").name, "listing1");
  EXPECT_EQ(workload::kernel("listing4").name, "listing4");
  EXPECT_THROW(workload::kernel("nope"), std::out_of_range);
}

TEST(Kernels, ParameterizedSourcesScale) {
  auto small = driver::compile(workload::loopy_source(2));
  auto large = driver::compile(workload::loopy_source(6));
  EXPECT_GT(large.graph.size(), small.graph.size());
  auto barrier = driver::compile(workload::loopy_barrier_source(3));
  EXPECT_EQ(barrier.graph.barrier_states().count(), 3u);
  auto imbalance = driver::compile(workload::imbalanced_once_source(1, 20));
  ir::CostModel cost;
  const auto& start = imbalance.graph.at(imbalance.graph.start);
  std::int64_t a = cost.block_cost(imbalance.graph.at(start.target));
  std::int64_t b = cost.block_cost(imbalance.graph.at(start.alt));
  EXPECT_GT(std::max(a, b), 5 * std::min(a, b));
}

TEST(Kernels, Listing4IsStaticOnly) {
  // Verbatim Listing 4 never terminates at runtime (documented); the
  // oracle must hit the block budget rather than finish.
  auto compiled = driver::compile(workload::listing4().source);
  ir::CostModel cost;
  mimd::RunConfig cfg;
  cfg.nprocs = 1;
  cfg.max_blocks = 1000;
  mimd::MimdMachine m(compiled.graph, cost, cfg);
  m.poke(0, compiled.layout.frame_stack_base - 1, Value{});  // touch memory
  EXPECT_THROW(m.run(), mimd::Timeout);
}

// ---------------------------------------------------------------- generator

TEST(Generator, DeterministicPerSeed) {
  workload::GenOptions opts;
  EXPECT_EQ(workload::generate_program(42, opts), workload::generate_program(42, opts));
  EXPECT_NE(workload::generate_program(42, opts), workload::generate_program(43, opts));
}

TEST(Generator, AllProgramsCompileAndTerminate) {
  ir::CostModel cost;
  for (std::uint64_t seed = 500; seed < 530; ++seed) {
    std::string src = workload::generate_program(seed);
    SCOPED_TRACE(src);
    auto compiled = driver::compile(src);
    EXPECT_TRUE(compiled.graph.validate().empty());
    mimd::RunConfig cfg;
    cfg.nprocs = 4;
    // Must finish well within the budget (loops are bounded counters).
    auto obs = driver::run_oracle(compiled, cfg, seed);
    for (bool ran : obs.ran) EXPECT_TRUE(ran);
  }
}

TEST(Generator, HaltsWithinDeclaredBlockBound) {
  // The generator's termination contract: every program halts inside its
  // structural block_bound() — loops are counted down from a bounded start,
  // so no program relies on the interpreter's default block budget to stop.
  workload::GenOptions gen;
  gen.allow_spawn = true;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    workload::GenProgram prog = workload::generate_ast(seed, gen);
    const std::string src = prog.render();
    SCOPED_TRACE(src);
    EXPECT_EQ(src, workload::generate_program(seed, gen));
    auto compiled = driver::compile(src);
    mimd::RunConfig cfg;
    cfg.nprocs = 6;
    cfg.initial_active = 2;  // headroom for spawn
    cfg.max_blocks = cfg.nprocs * prog.block_bound();
    try {
      driver::run_oracle(compiled, cfg, seed);
    } catch (const mimd::Timeout&) {
      FAIL() << "program exceeded its declared bound of "
             << prog.block_bound() << " blocks per PE";
    } catch (const ir::MachineFault&) {
      // spawn exhaustion is a legitimate way to halt
    }
  }
}

TEST(Generator, MutationsPreserveWellFormednessAndTermination) {
  workload::GenOptions gen;
  gen.allow_spawn = true;
  Rng rng(99);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    workload::GenProgram prog = workload::generate_ast(seed, gen);
    for (int round = 0; round < 8; ++round) {
      workload::mutate_program(prog, rng);
      const std::string src = prog.render();
      SCOPED_TRACE(src);
      driver::Compiled compiled;
      ASSERT_NO_THROW(compiled = driver::compile(src));
      mimd::RunConfig cfg;
      cfg.nprocs = 4;
      cfg.initial_active = 2;
      cfg.max_blocks = cfg.nprocs * prog.block_bound();
      try {
        driver::run_oracle(compiled, cfg, seed);
      } catch (const mimd::Timeout&) {
        FAIL() << "mutated program exceeded its declared bound of "
               << prog.block_bound() << " blocks per PE";
      } catch (const ir::MachineFault&) {
      }
    }
  }
}

TEST(Generator, OptionKnobsAreRespected) {
  workload::GenOptions no_barrier;
  no_barrier.allow_barrier = false;
  no_barrier.allow_mono = false;
  for (std::uint64_t seed = 1; seed < 20; ++seed) {
    std::string src = workload::generate_program(seed, no_barrier);
    EXPECT_EQ(src.find("wait;"), std::string::npos) << src;
    EXPECT_EQ(src.find("mono"), std::string::npos) << src;
  }
  workload::GenOptions no_loops;
  no_loops.allow_loops = false;
  for (std::uint64_t seed = 1; seed < 20; ++seed) {
    std::string src = workload::generate_program(seed, no_loops);
    EXPECT_EQ(src.find("do {"), std::string::npos) << src;
  }
  workload::GenOptions no_float;
  no_float.allow_float = false;
  for (std::uint64_t seed = 1; seed < 20; ++seed) {
    std::string src = workload::generate_program(seed, no_float);
    EXPECT_EQ(src.find("float"), std::string::npos) << src;
  }
}

// ------------------------------------------------------------------- runner

TEST(Runner, SeedInputIsDeterministicAndSmall) {
  for (std::int64_t p = 0; p < 32; ++p) {
    std::int64_t v = driver::seed_input(7, p);
    EXPECT_EQ(v, driver::seed_input(7, p));
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 97);
  }
  EXPECT_NE(driver::seed_input(7, 0), driver::seed_input(8, 0));
}

TEST(Runner, ObservedComparesMemoriesNotJustResults) {
  const char* a = "poly int g; int main() { g = procid(); return 1; }";
  const char* b = "poly int g; int main() { g = procid() + 1; return 1; }";
  mimd::RunConfig cfg;
  cfg.nprocs = 2;
  auto oa = driver::run_oracle(driver::compile(a), cfg, 1);
  auto ob = driver::run_oracle(driver::compile(b), cfg, 1);
  EXPECT_FALSE(oa == ob);  // same results, different global memory
  EXPECT_EQ(oa.results[0], ob.results[0]);
}

TEST(Runner, UnorderedEquivalenceIgnoresPePermutation) {
  driver::Observed a, b;
  a.ran = {true, true, false};
  a.results = {Value::of_int(1), Value::of_int(2), Value{}};
  b.ran = {true, false, true};
  b.results = {Value::of_int(2), Value{}, Value::of_int(1)};
  EXPECT_TRUE(a.equivalent_unordered(b));
  EXPECT_FALSE(a == b);
  b.results[2] = Value::of_int(3);
  EXPECT_FALSE(a.equivalent_unordered(b));
}

TEST(Runner, MimdStatsExposed) {
  auto compiled = driver::compile(workload::listing3().source);
  mimd::RunConfig cfg;
  cfg.nprocs = 4;
  mimd::MimdStats stats;
  driver::run_oracle(compiled, cfg, 1, &stats);
  EXPECT_GT(stats.blocks_executed, 0);
  EXPECT_GT(stats.busy_cycles, 0);
  EXPECT_EQ(stats.barrier_releases, 1);
}

TEST(Kernels, OddEvenSortActuallySorts) {
  auto compiled = driver::compile(workload::kernel("oddeven_sort").source);
  mimd::RunConfig cfg;
  cfg.nprocs = 8;
  auto obs = driver::run_oracle(compiled, cfg, 21);
  // PE p must end with the p-th smallest input.
  std::vector<std::int64_t> inputs;
  for (std::int64_t p = 0; p < cfg.nprocs; ++p)
    inputs.push_back(driver::seed_input(21, p));
  std::sort(inputs.begin(), inputs.end());
  for (std::size_t p = 0; p < 8; ++p)
    EXPECT_EQ(obs.results[p].i, inputs[p]) << "PE " << p;
}

TEST(Kernels, EscapeIterDiverges) {
  auto compiled = driver::compile(workload::kernel("escape_iter").source);
  mimd::RunConfig cfg;
  cfg.nprocs = 16;
  auto obs = driver::run_oracle(compiled, cfg, 33);
  std::set<std::int64_t> distinct;
  for (const Value& v : obs.results) {
    EXPECT_GE(v.i, 1);
    EXPECT_LE(v.i, 24);
    distinct.insert(v.i);
  }
  EXPECT_GE(distinct.size(), 3u);  // real divergence across PEs
}
