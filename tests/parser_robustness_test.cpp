// Robustness fuzzing: mutated/truncated sources must produce CompileError
// (or parse fine), never crash, hang, or trip UB. Run under the normal
// test budget with deterministic seeds.
#include <gtest/gtest.h>

#include "msc/driver/pipeline.hpp"
#include "msc/support/rng.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

namespace {

/// Compile and swallow the expected failure modes.
void try_compile(const std::string& src) {
  try {
    auto compiled = driver::compile(src);
    // If it compiled, the graph must still be structurally valid.
    EXPECT_TRUE(compiled.graph.validate().empty()) << src;
  } catch (const CompileError&) {
    // expected for most mutants
  }
}

}  // namespace

TEST(ParserRobustness, RandomByteMutations) {
  Rng rng(2026);
  const std::string chars = "abxy01(){}[];=+-*/%<>&|!~,. \n\"";
  for (const auto& k : workload::suite()) {
    for (int trial = 0; trial < 30; ++trial) {
      std::string src = k.source;
      int edits = 1 + static_cast<int>(rng.next_below(4));
      for (int e = 0; e < edits; ++e) {
        std::size_t pos = rng.next_below(src.size());
        src[pos] = chars[rng.next_below(chars.size())];
      }
      try_compile(src);
    }
  }
}

TEST(ParserRobustness, Truncations) {
  for (const auto& k : workload::suite()) {
    for (std::size_t frac = 1; frac < 8; ++frac) {
      try_compile(k.source.substr(0, k.source.size() * frac / 8));
    }
  }
}

TEST(ParserRobustness, TokenDeletions) {
  Rng rng(7);
  const std::string& src = workload::listing3().source;
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t a = rng.next_below(src.size());
    std::size_t len = 1 + rng.next_below(12);
    std::string mutant = src.substr(0, a) + src.substr(std::min(src.size(), a + len));
    try_compile(mutant);
  }
}

TEST(ParserRobustness, PathologicalInputs) {
  try_compile("");
  try_compile(";;;;;;");
  try_compile(std::string(10000, '('));
  try_compile("int main() { return " + std::string(500, '-') + "1; }");
  try_compile("int main() { int a" + std::string(2000, '[') + "; }");
  std::string deep = "int main() { ";
  for (int i = 0; i < 200; ++i) deep += "if (1) { ";
  deep += "return 0; ";
  for (int i = 0; i < 200; ++i) deep += "} ";
  deep += "}";
  try_compile(deep);
}
