// Differential harness for the SIMD engines: the occupancy-indexed fast
// engine and the translation-cache codegen engine must be bit-identical
// to the scalar reference oracle — same final memories, same SimdStats
// counters, same per-meta-state visit counts, same tracer streams — on
// every equivalence-suite workload and nested_branch_source, across a
// seed sweep and both conversion modes. This is the contract that lets
// the fast engine's incremental occupancy bookkeeping and the codegen
// engine's folded host streams be trusted forever (DESIGN.md §7, §11).
#include <gtest/gtest.h>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/simd/machine.hpp"
#include "msc/support/str.hpp"
#include "msc/support/trace.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

namespace {

ir::CostModel kCost;

struct Case {
  std::string name;
  std::string source;
  bool spawn = false;
};

std::vector<Case> all_cases() {
  std::vector<Case> v;
  for (const workload::Kernel& k : workload::suite())
    v.push_back({k.name, k.source, k.name == "spawn_tree"});
  v.push_back({"nested_branch3", workload::nested_branch_source(3), false});
  return v;
}

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return info.param.name;
}

/// Runs every engine on an identical configuration and asserts every
/// observable is bit-identical to the reference oracle.
void expect_engines_identical(const driver::Compiled& compiled,
                              const core::ConvertResult& conv,
                              mimd::RunConfig config, std::uint64_t seed,
                              const std::string& label) {
  SCOPED_TRACE(label);
  simd::SimdStats ref_stats;
  std::vector<std::int64_t> ref_visits;
  config.engine = mimd::SimdEngine::Reference;
  auto ref = driver::run_simd(compiled, conv, config, seed, kCost, {},
                              &ref_stats, &ref_visits);
  for (auto engine : {mimd::SimdEngine::Fast, mimd::SimdEngine::Codegen}) {
    SCOPED_TRACE(simd::engine_name(engine));
    simd::SimdStats stats;
    std::vector<std::int64_t> visits;
    config.engine = engine;
    auto got = driver::run_simd(compiled, conv, config, seed, kCost, {},
                                &stats, &visits);

    // Final memories (results, poly globals, mono globals, ran flags).
    EXPECT_TRUE(got == ref) << "got: " << got.to_string()
                            << "\nref: " << ref.to_string();
    // Every cycle counter, bit for bit.
    EXPECT_EQ(stats.control_cycles, ref_stats.control_cycles);
    EXPECT_EQ(stats.busy_pe_cycles, ref_stats.busy_pe_cycles);
    EXPECT_EQ(stats.offered_pe_cycles, ref_stats.offered_pe_cycles);
    EXPECT_EQ(stats.meta_transitions, ref_stats.meta_transitions);
    EXPECT_EQ(stats.global_ors, ref_stats.global_ors);
    EXPECT_EQ(stats.guard_switches, ref_stats.guard_switches);
    EXPECT_EQ(stats.spawns, ref_stats.spawns);
    EXPECT_EQ(stats.rescue_transitions, ref_stats.rescue_transitions);
    EXPECT_TRUE(stats == ref_stats);
    // Per-meta-state visit counts (pins the whole state sequence length).
    EXPECT_EQ(visits, ref_visits);
  }
}

class SimdDifferentialTest : public testing::TestWithParam<Case> {};

TEST_P(SimdDifferentialTest, EnginesBitIdenticalAcrossSeedsAndModes) {
  const Case& c = GetParam();
  auto compiled = driver::compile(c.source);

  int combos = 0;
  for (bool compress : {false, true}) {
    core::ConvertOptions opts;
    opts.compress = compress;
    core::ConvertResult conv;
    try {
      conv = core::meta_state_convert(compiled.graph, kCost, opts);
    } catch (const core::ExplosionError&) {
      continue;  // base-mode explosion is a measured phenomenon, not a bug
    }
    mimd::RunConfig config;
    config.nprocs = 8;
    if (c.spawn) config.initial_active = 2;
    for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
      expect_engines_identical(compiled, conv, config, seed,
                               cat(c.name, compress ? "/compressed" : "/base",
                                   "/seed", seed));
      ++combos;
    }
  }
  EXPECT_GE(combos, 3) << "every conversion mode exploded";
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SimdDifferentialTest,
                         testing::ValuesIn(all_cases()), case_name);

TEST(SimdDifferential, ScalarVsVectorBitIdenticalOnAllEngines) {
  // The lane-major store executes whole-lane op runs under the host
  // vector ISA; forcing --simd-isa scalar takes the per-PE path over the
  // same store. Both paths must produce bit-identical memories, stats
  // and visit counts on every suite workload × engine. Skip-pass when
  // the host has no vector ISA (the forced-scalar CI leg).
  const SimdIsa host = resolve_simd_isa(SimdIsa::Auto);
  if (host == SimdIsa::Scalar)
    GTEST_SKIP() << "host has no vector ISA; scalar == scalar trivially";
  for (const Case& c : all_cases()) {
    SCOPED_TRACE(c.name);
    auto compiled = driver::compile(c.source);
    auto conv = core::meta_state_convert(compiled.graph, kCost, {});
    for (std::int64_t nprocs : {8ll, 65ll}) {
      SCOPED_TRACE(nprocs);
      mimd::RunConfig config;
      config.nprocs = nprocs;
      if (c.spawn) config.initial_active = 2;
      for (auto engine : {mimd::SimdEngine::Reference, mimd::SimdEngine::Fast,
                          mimd::SimdEngine::Codegen}) {
        SCOPED_TRACE(simd::engine_name(engine));
        config.engine = engine;
        config.simd_isa = SimdIsa::Scalar;
        simd::SimdStats s_stats;
        std::vector<std::int64_t> s_visits;
        auto scalar = driver::run_simd(compiled, conv, config, 42, kCost, {},
                                       &s_stats, &s_visits);
        config.simd_isa = host;
        simd::SimdStats v_stats;
        std::vector<std::int64_t> v_visits;
        auto vector = driver::run_simd(compiled, conv, config, 42, kCost, {},
                                       &v_stats, &v_visits);
        EXPECT_TRUE(scalar == vector)
            << "scalar: " << scalar.to_string()
            << "\nvector: " << vector.to_string();
        EXPECT_TRUE(s_stats == v_stats);
        EXPECT_EQ(s_visits, v_visits);
      }
    }
  }
}

TEST(SimdDifferential, SpawnReusePolicyIdentical) {
  // reuse_halted_pes re-routes spawn allocation through the halted-PE
  // path of the free pool — the exact paths the fast engine's free list
  // replaces, so compare both policies differentially.
  auto compiled = driver::compile(workload::kernel("spawn_tree").source);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  for (bool reuse : {false, true}) {
    mimd::RunConfig config;
    config.nprocs = 8;
    config.initial_active = 2;
    config.reuse_halted_pes = reuse;
    expect_engines_identical(compiled, conv, config, 1,
                             reuse ? "reuse" : "fresh");
  }
}

/// Serializes the full tracer stream for engine-vs-engine comparison.
class RecordingTracer final : public simd::SimdTracer {
 public:
  std::vector<std::string> events;

  void on_state(core::MetaId id, const DynBitset& occ,
                std::int64_t alive) override {
    events.push_back(cat("state ", id, " occ=", occ.to_string(),
                         " alive=", alive));
  }
  void on_transition(core::MetaId from, core::MetaId to,
                     const DynBitset& apc) override {
    events.push_back(cat("trans ", from, "->", to, " apc=", apc.to_string()));
  }
};

TEST(SimdDifferential, ObservabilityNeverChangesExecution) {
  // Attaching a trace sink and/or enabling profiling must leave every
  // observable of the run — final memories, SimdStats, visit counts —
  // bit-identical to an uninstrumented run, on both engines. The profiles
  // themselves must also be engine-independent, and summing any cycle
  // field over all meta states must reproduce the run total exactly (the
  // accumulation happens in the engine-independent step() skeleton, but
  // this pins it against regressions).
  for (const char* name : {"listing1", "spawn_tree", "oddeven_sort"}) {
    SCOPED_TRACE(name);
    auto compiled = driver::compile(workload::kernel(name).source);
    auto conv = core::meta_state_convert(compiled.graph, kCost, {});
    auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
    mimd::RunConfig config;
    config.nprocs = 8;
    if (std::string(name) == "spawn_tree") config.initial_active = 2;

    std::vector<simd::StateProfile> profiles[3];
    std::string traces[3];
    int idx = 0;
    for (auto engine : {mimd::SimdEngine::Fast, mimd::SimdEngine::Reference,
                        mimd::SimdEngine::Codegen}) {
      SCOPED_TRACE(simd::engine_name(engine));
      config.engine = engine;
      // Plain run.
      auto plain = simd::make_machine(prog, kCost, config);
      driver::seed_machine(*plain, compiled, config, 5);
      plain->run();
      // Instrumented run: sink + profiling.
      telemetry::TraceSink sink;
      auto inst = simd::make_machine(prog, kCost, config);
      driver::seed_machine(*inst, compiled, config, 5);
      inst->set_trace_sink(&sink);
      inst->enable_profiling();
      inst->run();

      EXPECT_TRUE(plain->stats() == inst->stats());
      EXPECT_EQ(plain->state_visits(), inst->state_visits());
      for (std::int64_t p = 0; p < config.nprocs; ++p) {
        EXPECT_EQ(plain->ever_ran(p), inst->ever_ran(p));
        EXPECT_EQ(plain->peek(p, 0).to_string(), inst->peek(p, 0).to_string());
      }

      // Per-state sums reproduce the run totals bit-exactly.
      const simd::SimdStats& s = inst->stats();
      simd::StateProfile sum;
      std::int64_t visits = 0;
      for (const simd::StateProfile& p : inst->profile()) {
        visits += p.visits;
        sum.control_cycles += p.control_cycles;
        sum.busy_pe_cycles += p.busy_pe_cycles;
        sum.offered_pe_cycles += p.offered_pe_cycles;
        sum.global_ors += p.global_ors;
        sum.guard_switches += p.guard_switches;
        sum.router_ops += p.router_ops;
        sum.spawns += p.spawns;
      }
      EXPECT_EQ(visits, s.meta_transitions);
      EXPECT_EQ(sum.control_cycles, s.control_cycles);
      EXPECT_EQ(sum.busy_pe_cycles, s.busy_pe_cycles);
      EXPECT_EQ(sum.offered_pe_cycles, s.offered_pe_cycles);
      EXPECT_EQ(sum.global_ors, s.global_ors);
      EXPECT_EQ(sum.guard_switches, s.guard_switches);
      EXPECT_EQ(sum.router_ops, s.router_ops);
      EXPECT_EQ(sum.spawns, s.spawns);

      profiles[idx] = inst->profile();
      traces[idx] = sink.to_json();
      ++idx;
    }
    // Engine-independent: identical profiles and identical (deterministic,
    // simulated-cycle-timestamped) trace files.
    EXPECT_TRUE(profiles[0] == profiles[1]);
    EXPECT_TRUE(profiles[0] == profiles[2]);
    EXPECT_EQ(traces[0], traces[1]);
    EXPECT_EQ(traces[0], traces[2]);
  }
}

TEST(SimdDifferential, TracerStreamsIdentical) {
  // The occupancy/alive/apc values handed to tracers come from full scans
  // in the reference engine and incremental structures in the fast one;
  // the streams must still match event for event.
  for (const char* name : {"listing1", "spawn_tree", "oddeven_sort"}) {
    auto compiled = driver::compile(workload::kernel(name).source);
    auto conv = core::meta_state_convert(compiled.graph, kCost, {});
    auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
    mimd::RunConfig config;
    config.nprocs = 8;
    if (std::string(name) == "spawn_tree") config.initial_active = 2;

    std::vector<std::string> streams[3];
    int idx = 0;
    for (auto engine : {mimd::SimdEngine::Fast, mimd::SimdEngine::Reference,
                        mimd::SimdEngine::Codegen}) {
      config.engine = engine;
      auto m = simd::make_machine(prog, kCost, config);
      driver::seed_machine(*m, compiled, config, 5);
      RecordingTracer tracer;
      m->set_tracer(&tracer);
      m->run();
      streams[idx++] = std::move(tracer.events);
    }
    EXPECT_EQ(streams[0], streams[1]) << name;
    EXPECT_EQ(streams[0], streams[2]) << name;
  }
}

}  // namespace
