#include <gtest/gtest.h>

#include "msc/driver/pipeline.hpp"
#include "msc/mimd/machine.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

TEST(Smoke, Listing1GraphShape) {
  auto c = driver::compile(workload::listing1().source);
  EXPECT_TRUE(c.graph.validate().empty()) << c.graph.dump();
  // Fig. 1: four states — A, B;C, D;E, F.
  EXPECT_EQ(c.graph.size(), 4u) << c.graph.dump();
}

TEST(Smoke, Listing1BaseConversionEightMetaStates) {
  auto v = driver::convert(workload::listing1().source);
  // Fig. 2: eight meta states.
  EXPECT_EQ(v.conversion.automaton.num_states(), 8u)
      << v.conversion.automaton.dump();
  EXPECT_TRUE(v.conversion.automaton.validate(v.conversion.graph).empty());
}

TEST(Smoke, Listing1CompressedTwoMetaStates) {
  core::ConvertOptions opts;
  opts.compress = true;
  auto v = driver::convert(workload::listing1().source, {}, opts);
  // Fig. 5: two meta states.
  EXPECT_EQ(v.conversion.automaton.num_states(), 2u)
      << v.conversion.automaton.dump();
}

TEST(Smoke, Listing1OracleRuns) {
  auto c = driver::compile(workload::listing1().source);
  ir::CostModel cost;
  mimd::RunConfig cfg;
  cfg.nprocs = 4;
  mimd::MimdMachine m(c.graph, cost, cfg);
  auto* slot = c.layout.find("x");
  ASSERT_NE(slot, nullptr);
  for (int p = 0; p < 4; ++p) m.poke(p, slot->addr, Value::of_int(p));
  m.run();
  // x=0: else arm, i=1: acc=1, +100 = 101
  // x=1: then arm, i=2: acc=6, +100 = 106
  // x=2: else arm, i=3: acc: 1,3 → i:1,-1 two iters: acc=1 then 3 → 103
  // x=3: then arm, i=4: acc=3,6,9,12 → 112
  EXPECT_EQ(m.peek(0, 0).i, 101);
  EXPECT_EQ(m.peek(1, 0).i, 106);
  EXPECT_EQ(m.peek(2, 0).i, 103);
  EXPECT_EQ(m.peek(3, 0).i, 112);
}
