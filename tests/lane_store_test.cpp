// Unit tests for the lane-major PE state store (simd/lanes.hpp) at the
// PE counts where the 64-PE word geometry has edges — 1, 63, 64, 65,
// 127, 1000 — plus the seeded-input regression that pins fill_int_lane
// byte-identical to the per-PE poke path it replaced. Machine-level
// companions (tail masks never enable pad PEs, spawn free-list /
// reuse_halted_pes on the lane store) run the real engines at the same
// PE counts and compare scalar vs host-vector execution.
#include <gtest/gtest.h>

#include <cstring>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/simd/lanes.hpp"
#include "msc/simd/machine.hpp"
#include "msc/support/str.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using simd::LaneStore;

namespace {

const std::int64_t kPeCounts[] = {1, 63, 64, 65, 127, 1000};

ir::CostModel kCost;

TEST(LaneStore, GeometryAndWordAlignment) {
  for (std::int64_t n : kPeCounts) {
    SCOPED_TRACE(n);
    LaneStore ls(n, 3);
    EXPECT_EQ(ls.nprocs(), n);
    EXPECT_EQ(ls.cells(), 3);
    // width is nprocs rounded up to a whole number of 64-bit mask words.
    EXPECT_EQ(ls.width(), (n + 63) / 64 * 64);
    EXPECT_EQ(ls.width() % 64, 0);
    EXPECT_EQ(ls.mask_words(), static_cast<std::size_t>(ls.width()) / 64);
    EXPECT_GE(ls.width(), n);
    EXPECT_LT(ls.width() - n, 64);
  }
}

TEST(LaneStore, AddrMajorLayoutRoundTrips) {
  for (std::int64_t n : kPeCounts) {
    SCOPED_TRACE(n);
    LaneStore ls(n, 4);
    for (std::int64_t pe = 0; pe < n; ++pe) {
      ls.store(pe, 0, Value::of_int(pe * 3 + 1));
      ls.store(pe, 2, Value::of_float(0.5 * static_cast<double>(pe)));
    }
    for (std::int64_t pe = 0; pe < n; ++pe) {
      // Scalar view and raw lanes agree on the same element.
      EXPECT_EQ(ls.load(pe, 0).as_int(), pe * 3 + 1);
      EXPECT_EQ(ls.int_lane(0)[pe], pe * 3 + 1);
      EXPECT_EQ(ls.load(pe, 2).as_double(), 0.5 * static_cast<double>(pe));
      EXPECT_EQ(ls.float_lane(2)[pe], 0.5 * static_cast<double>(pe));
    }
    // Untouched addresses and every pad element stay default-initialized.
    for (std::int64_t pe = 0; pe < ls.width(); ++pe) {
      EXPECT_EQ(ls.tag_lane(1)[pe], ls.tag_lane(3)[pe]);
      EXPECT_EQ(ls.int_lane(1)[pe], 0);
      EXPECT_EQ(ls.float_lane(1)[pe], 0.0);
    }
    for (std::int64_t pe = n; pe < ls.width(); ++pe) {
      EXPECT_EQ(ls.int_lane(0)[pe], 0) << "pad lane written at pe " << pe;
      EXPECT_EQ(ls.float_lane(2)[pe], 0.0) << "pad lane written at pe " << pe;
    }
  }
}

TEST(LaneStore, FillIntLaneByteIdenticalToScalarStores) {
  for (std::int64_t n : kPeCounts) {
    SCOPED_TRACE(n);
    std::vector<std::int64_t> vals(static_cast<std::size_t>(n));
    for (std::int64_t p = 0; p < n; ++p)
      vals[static_cast<std::size_t>(p)] = driver::seed_input(42, p);

    LaneStore bulk(n, 2), scalar(n, 2);
    bulk.fill_int_lane(1, vals.data(), n);
    for (std::int64_t p = 0; p < n; ++p)
      scalar.store(p, 1, Value::of_int(vals[static_cast<std::size_t>(p)]));

    const std::size_t w = static_cast<std::size_t>(bulk.width());
    EXPECT_EQ(0, std::memcmp(bulk.tag_lane(1), scalar.tag_lane(1), w));
    EXPECT_EQ(0, std::memcmp(bulk.int_lane(1), scalar.int_lane(1),
                             w * sizeof(std::int64_t)));
    EXPECT_EQ(0, std::memcmp(bulk.float_lane(1), scalar.float_lane(1),
                             w * sizeof(double)));
    // Neighbouring lanes untouched.
    for (std::int64_t p = 0; p < bulk.width(); ++p)
      EXPECT_EQ(bulk.int_lane(0)[p], 0);
  }
}

TEST(LaneStore, ClearPeResetsOneColumnOnly) {
  LaneStore ls(65, 3);
  for (std::int64_t pe = 0; pe < 65; ++pe)
    for (std::int64_t a = 0; a < 3; ++a)
      ls.store(pe, a, Value::of_int(100 * pe + a));
  ls.stack(64).push_back(Value::of_int(9));
  ls.clear_pe(64);
  EXPECT_TRUE(ls.stack(64).empty());
  for (std::int64_t a = 0; a < 3; ++a) {
    EXPECT_EQ(ls.load(64, a).as_int(), 0);
    EXPECT_EQ(ls.load(63, a).as_int(), 100 * 63 + a) << "neighbour clobbered";
    EXPECT_EQ(ls.load(0, a).as_int(), a) << "neighbour clobbered";
  }
}

TEST(LaneStore, StacksAreIndependentPerPe) {
  LaneStore ls(127, 1);
  for (std::int64_t pe = 0; pe < 127; ++pe)
    for (std::int64_t d = 0; d <= pe % 3; ++d)
      ls.stack(pe).push_back(Value::of_int(pe * 10 + d));
  for (std::int64_t pe = 0; pe < 127; ++pe) {
    ASSERT_EQ(ls.stack(pe).size(), static_cast<std::size_t>(pe % 3 + 1));
    EXPECT_EQ(ls.stack(pe).back().as_int(), pe * 10 + pe % 3);
  }
}

// ---------------------------------------------------------------------------
// Seeded-input regression (satellite of the lane-store refactor): the
// bulk fill_lane seeding path must produce exactly the values the
// per-PE poke loop produced before the refactor. The constants below
// are the pre-refactor golden seed_input values — if seed_input or the
// fill path drifts, machine inputs silently change and every downstream
// differential loses its anchor.

TEST(LaneSeeding, SeedInputGoldenValues) {
  const std::int64_t want42[] = {6, 1, 88, 58, 48, 90, 18, 65};
  const std::int64_t want1[] = {37, 18, 79, 33, 14, 10, 45, 31};
  for (std::int64_t p = 0; p < 8; ++p) {
    EXPECT_EQ(driver::seed_input(42, p), want42[p]) << "pe " << p;
    EXPECT_EQ(driver::seed_input(1, p), want1[p]) << "pe " << p;
  }
}

TEST(LaneSeeding, FillLaneMatchesPokeLoopOnRealMachine) {
  auto compiled = driver::compile(workload::kernel("listing1").source);
  const auto* slot = compiled.layout.find("x");
  ASSERT_NE(slot, nullptr);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
  for (std::int64_t n : kPeCounts) {
    SCOPED_TRACE(n);
    mimd::RunConfig config;
    config.nprocs = n;
    auto bulk = simd::make_machine(prog, kCost, config);
    auto poked = simd::make_machine(prog, kCost, config);
    driver::seed_machine(*bulk, compiled, config, 42);  // fill_lane path
    for (std::int64_t p = 0; p < n; ++p)
      poked->poke(p, slot->addr, Value::of_int(driver::seed_input(42, p)));
    for (std::int64_t p = 0; p < n; ++p) {
      const Value a = bulk->peek(p, slot->addr);
      const Value b = poked->peek(p, slot->addr);
      EXPECT_TRUE(a == b) << "pe " << p << ": " << a.to_string() << " vs "
                          << b.to_string();
    }
  }
}

// ---------------------------------------------------------------------------
// Machine-level edges: tail masks and the spawn free-list, at the same
// PE counts, under both the scalar and the host-vector path.

void expect_scalar_vector_identical(const driver::Compiled& compiled,
                                    const core::ConvertResult& conv,
                                    mimd::RunConfig config,
                                    std::uint64_t seed) {
  const SimdIsa host = resolve_simd_isa(SimdIsa::Auto);
  for (auto engine : {mimd::SimdEngine::Reference, mimd::SimdEngine::Fast,
                      mimd::SimdEngine::Codegen}) {
    SCOPED_TRACE(simd::engine_name(engine));
    config.engine = engine;
    config.simd_isa = SimdIsa::Scalar;
    simd::SimdStats s_stats;
    std::vector<std::int64_t> s_visits;
    auto scalar = driver::run_simd(compiled, conv, config, seed, kCost, {},
                                   &s_stats, &s_visits);
    if (host == SimdIsa::Scalar) continue;  // no vector ISA on this host
    config.simd_isa = host;
    simd::SimdStats v_stats;
    std::vector<std::int64_t> v_visits;
    auto vector = driver::run_simd(compiled, conv, config, seed, kCost, {},
                                   &v_stats, &v_visits);
    EXPECT_TRUE(scalar == vector)
        << "scalar: " << scalar.to_string() << "\nvector: "
        << vector.to_string();
    EXPECT_TRUE(s_stats == v_stats);
    EXPECT_EQ(s_visits, v_visits);
  }
}

TEST(LaneMachine, TailMasksNeverEnablePadPes) {
  // At 63/65/127/1000 PEs the last mask word is partial: a stray pad bit
  // would corrupt results or over-count busy cycles. Run a branchy
  // kernel at every edge count and demand scalar/vector bit-identity on
  // all three engines.
  auto compiled = driver::compile(workload::kernel("listing1").source);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  for (std::int64_t n : kPeCounts) {
    SCOPED_TRACE(n);
    mimd::RunConfig config;
    config.nprocs = n;
    expect_scalar_vector_identical(compiled, conv, config, 42);
  }
}

TEST(LaneMachine, SpawnFreeListAndReuseAcrossWordBoundaries) {
  // spawn_tree allocates PEs through the free list (clear_pe on the lane
  // store); reuse_halted_pes re-routes allocation through halted
  // columns. Both policies must stay bit-identical across ISAs exactly
  // at the word-boundary PE counts.
  auto compiled = driver::compile(workload::kernel("spawn_tree").source);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  for (std::int64_t n : {63ll, 64ll, 65ll}) {
    for (bool reuse : {false, true}) {
      SCOPED_TRACE(cat("n", n, reuse ? "/reuse" : "/fresh"));
      mimd::RunConfig config;
      config.nprocs = n;
      config.initial_active = 2;
      config.reuse_halted_pes = reuse;
      expect_scalar_vector_identical(compiled, conv, config, 7);
    }
  }
}

}  // namespace
