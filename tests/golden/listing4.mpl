/* meta-state SIMD automaton, MPL-style (cf. paper Listing 5) */
ms_0:
  if (pc & BIT(0)) {
    Push(5) Push(2) StL Push(4)
    LdL JumpF(3,2) 
  }
  apc = globalor(pc);
  switch (((apc >> 2) & 3)) {
  case 1: goto ms_2;
  case 2: goto ms_3;
  case 3: goto ms_2_3;
  }

ms_2:
  if (pc & BIT(2)) {
    Push(1) Push(4) StL Push(4)
    LdL JumpF(1,2) 
  }
  apc = globalor(pc);
  switch (((apc >> 1) & 3)) {
  case 1: goto ms_1;
  case 2: goto ms_2;
  case 3: goto ms_1_2;
  }

ms_3:
  if (pc & BIT(3)) {
    Push(2) Push(4) StL Push(4)
    LdL JumpF(1,3) 
  }
  apc = globalor(pc);
  switch ((((apc >> 3) ^ apc) & 3)) {
  case 2: goto ms_1;
  case 1: goto ms_3;
  case 3: goto ms_1_3;
  }

ms_2_3:
  if (pc & BIT(2)) {
    Push(1) 
  }
  if (pc & BIT(3)) {
    Push(2) 
  }
  if (pc & (BIT(2) | BIT(3))) {
    Push(4) StL Push(4) LdL 
  }
  if (pc & BIT(2)) {
    JumpF(1,2) 
  }
  if (pc & BIT(3)) {
    JumpF(1,3) 
  }
  apc = globalor(pc);
  switch (((apc >> 1) & 7)) {
  case 1: goto ms_1;
  case 3: goto ms_1_2;
  case 5: goto ms_1_3;
  case 6: goto ms_2_3;
  case 7: goto ms_1_2_3;
  }

ms_1:
  if (pc & BIT(1)) {
    Push(4) LdL Push(0) StL
    Ret 
  }
  /* no next meta state */
  exit(0);

ms_1_2:
  if (pc & BIT(2)) {
    Push(1) 
  }
  if (pc & (BIT(1) | BIT(2))) {
    Push(4) 
  }
  if (pc & BIT(1)) {
    LdL Push(0) 
  }
  if (pc & (BIT(1) | BIT(2))) {
    StL 
  }
  if (pc & BIT(2)) {
    Push(4) LdL 
  }
  if (pc & BIT(1)) {
    Ret 
  }
  if (pc & BIT(2)) {
    JumpF(1,2) 
  }
  apc = globalor(pc);
  switch (((apc >> 1) & 3)) {
  case 1: goto ms_1;
  case 2: goto ms_2;
  case 3: goto ms_1_2;
  }

ms_1_3:
  if (pc & BIT(3)) {
    Push(2) 
  }
  if (pc & (BIT(1) | BIT(3))) {
    Push(4) 
  }
  if (pc & BIT(1)) {
    LdL Push(0) 
  }
  if (pc & (BIT(1) | BIT(3))) {
    StL 
  }
  if (pc & BIT(3)) {
    Push(4) LdL 
  }
  if (pc & BIT(1)) {
    Ret 
  }
  if (pc & BIT(3)) {
    JumpF(1,3) 
  }
  apc = globalor(pc);
  switch ((((apc >> 3) ^ apc) & 3)) {
  case 2: goto ms_1;
  case 1: goto ms_3;
  case 3: goto ms_1_3;
  }

ms_1_2_3:
  if (pc & BIT(2)) {
    Push(1) 
  }
  if (pc & BIT(3)) {
    Push(2) 
  }
  if (pc & (BIT(1) | BIT(2) | BIT(3))) {
    Push(4) 
  }
  if (pc & BIT(1)) {
    LdL Push(0) 
  }
  if (pc & (BIT(1) | BIT(2) | BIT(3))) {
    StL 
  }
  if (pc & (BIT(2) | BIT(3))) {
    Push(4) LdL 
  }
  if (pc & BIT(1)) {
    Ret 
  }
  if (pc & BIT(2)) {
    JumpF(1,2) 
  }
  if (pc & BIT(3)) {
    JumpF(1,3) 
  }
  apc = globalor(pc);
  switch (((apc >> 1) & 7)) {
  case 1: goto ms_1;
  case 3: goto ms_1_2;
  case 5: goto ms_1_3;
  case 6: goto ms_2_3;
  case 7: goto ms_1_2_3;
  }

