// Property sweep: for randomly generated, always-terminating SPMD programs,
// the SIMD execution of the converted automaton must match the MIMD oracle
// in every conversion mode, and the automaton must be structurally closed
// (DESIGN.md invariants 1–3).
#include <gtest/gtest.h>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/interp/machine.hpp"
#include "msc/simd/machine.hpp"
#include "msc/workload/generator.hpp"

using namespace msc;

namespace {

class RandomProgramTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramTest, AllModesMatchOracle) {
  workload::GenOptions gen;
  gen.stmts = 5;
  gen.max_depth = 2;
  std::string source = workload::generate_program(GetParam(), gen);
  SCOPED_TRACE(source);

  driver::Compiled compiled;
  ASSERT_NO_THROW(compiled = driver::compile(source));
  ASSERT_TRUE(compiled.graph.validate().empty()) << compiled.graph.dump();

  mimd::RunConfig config;
  config.nprocs = 6;
  ir::CostModel cost;
  auto oracle = driver::run_oracle(compiled, config, GetParam() * 13 + 1);

  bool single_barrier = compiled.graph.barrier_states().count() <= 1;
  int configs_run = 0;
  for (bool compress : {false, true}) {
    for (auto mode :
         {core::BarrierMode::TrackOccupancy, core::BarrierMode::PaperPrune}) {
      if (mode == core::BarrierMode::PaperPrune &&
          (compress || !single_barrier || compiled.graph.has_spawn())) {
        // Unsound combinations must be rejected at compile time (the
        // converter's PaperPrune guard); soundness_test pins the details.
        core::ConvertOptions bad;
        bad.compress = compress;
        bad.barrier_mode = mode;
        EXPECT_THROW(core::meta_state_convert(compiled.graph, cost, bad),
                     CompileError);
        continue;
      }
      core::ConvertOptions opts;
      opts.compress = compress;
      opts.barrier_mode = mode;
      opts.max_meta_states = 60000;
      core::ConvertResult conversion;
      try {
        conversion = core::meta_state_convert(compiled.graph, cost, opts);
      } catch (const core::ExplosionError&) {
        continue;  // base-mode explosion is a measured phenomenon, not a bug
      }
      ASSERT_TRUE(conversion.automaton.validate(conversion.graph).empty())
          << conversion.automaton.dump();

      simd::SimdStats stats;
      auto simd = driver::run_simd(compiled, conversion, config,
                                   GetParam() * 13 + 1, cost, {}, &stats);
      EXPECT_TRUE(oracle == simd)
          << "compress=" << compress << " prune="
          << (mode == core::BarrierMode::PaperPrune) << "\noracle: "
          << oracle.to_string() << "\nsimd:   " << simd.to_string();
      if (mode == core::BarrierMode::TrackOccupancy && !compress) {
        // Invariant 2 (closure): occupancy-tracked base automata never need
        // a rescue transition.
        EXPECT_EQ(stats.rescue_transitions, 0);
      }
      ++configs_run;
    }
  }
  EXPECT_GE(configs_run, 1) << "every mode exploded";

  // The §1.1 interpreter must agree with the oracle as well.
  interp::InterpMachine interp(compiled.graph, cost, config);
  driver::seed_machine(interp, compiled, config, GetParam() * 13 + 1);
  interp.run();
  for (std::int64_t p = 0; p < config.nprocs; ++p) {
    if (!oracle.ran[static_cast<std::size_t>(p)]) continue;
    EXPECT_EQ(interp.peek(p, frontend::Layout::kResultAddr),
              oracle.results[static_cast<std::size_t>(p)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         testing::Range<std::uint64_t>(1, 41));

// 32-seed sweep over PE counts straddling the 64-bit word boundaries of
// the fast engine's occupancy/free-pool bitsets, plus a large
// non-power-of-two count. Each seed's random program must match the oracle
// on every engine at every size, with bit-identical stats between the
// engines. The binary is registered as four `property`-labeled ctest
// shards (GTEST_SHARD_INDEX — see tests/CMakeLists.txt) so the widened
// sweep keeps tier-1 wall time flat.
class BoundaryPeCountTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundaryPeCountTest, AllEnginesMatchOracleAtWordBoundaries) {
  const std::uint64_t seed = GetParam();
  ir::CostModel cost;
  workload::GenOptions gen;
  gen.stmts = 5;
  gen.max_depth = 2;
  std::string source = workload::generate_program(seed, gen);
  SCOPED_TRACE(source);
  auto compiled = driver::compile(source);
  core::ConvertResult conversion;
  try {
    conversion = core::meta_state_convert(compiled.graph, cost, {});
  } catch (const core::ExplosionError&) {
    GTEST_SKIP() << "base-mode explosion is a measured phenomenon, not a bug";
  }
  // Word-boundary sizes for every seed; the allocation-heavy 1000-PE case
  // on every fourth seed (it checks scale, not boundaries, so a quarter of
  // the sweep buys the same signal at a quarter of the wall time).
  std::vector<std::int64_t> sizes{1, 63, 64, 65, 127};
  if (seed % 4 == 1) sizes.push_back(1000);
  for (std::int64_t nprocs : sizes) {
    mimd::RunConfig config;
    config.nprocs = nprocs;
    auto oracle = driver::run_oracle(compiled, config, seed + 1);
    simd::SimdStats stats[3];
    int idx = 0;
    for (auto engine : {mimd::SimdEngine::Fast, mimd::SimdEngine::Reference,
                        mimd::SimdEngine::Codegen}) {
      config.engine = engine;
      auto simd = driver::run_simd(compiled, conversion, config, seed + 1,
                                   cost, {}, &stats[idx]);
      EXPECT_TRUE(oracle == simd)
          << "nprocs=" << nprocs << " engine=" << simd::engine_name(engine)
          << "\noracle: " << oracle.to_string()
          << "\nsimd:   " << simd.to_string();
      ++idx;
    }
    EXPECT_TRUE(stats[0] == stats[1]) << "nprocs=" << nprocs;
    EXPECT_TRUE(stats[0] == stats[2]) << "nprocs=" << nprocs;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, BoundaryPeCountTest,
                         testing::Range<std::uint64_t>(1, 33));

}  // namespace
