#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "msc/core/convert.hpp"
#include "msc/core/time_split.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using namespace msc::core;
using ir::ExitKind;
using ir::StateGraph;
using ir::StateId;

namespace {

ir::CostModel kCost;

std::set<std::string> member_sets(const MetaAutomaton& aut) {
  std::set<std::string> sets;
  for (const MetaState& s : aut.states) sets.insert(s.members.to_string());
  return sets;
}

MetaAutomaton convert_src(const std::string& src, ConvertOptions opts = {}) {
  auto compiled = driver::compile(src);
  auto res = meta_state_convert(compiled.graph, kCost, opts);
  EXPECT_TRUE(res.automaton.validate(res.graph).empty()) << res.automaton.dump();
  return std::move(res.automaton);
}

}  // namespace

TEST(Convert, Figure2ExactMetaStateSets) {
  // Fig. 2 (Listing 1, base conversion): with our numbering A=0, B;C=1,
  // D;E=2, F=3, the eight meta states are exactly these.
  MetaAutomaton aut = convert_src(workload::listing1().source);
  EXPECT_EQ(member_sets(aut),
            (std::set<std::string>{"{0}", "{1}", "{2}", "{3}", "{1,2}", "{1,3}",
                                   "{2,3}", "{1,2,3}"}));
}

TEST(Convert, Figure2StartStateBranchesThreeWays) {
  // From {A}: both arms, either arm — 3^1 successors (§2.3).
  auto compiled = driver::compile(workload::listing1().source);
  auto res = meta_state_convert(compiled.graph, kCost, {});
  const MetaAutomaton& aut = res.automaton;
  const MetaState& start = aut.at(aut.start);
  ASSERT_EQ(start.arcs.size(), 3u);
  const ir::Block& a = compiled.graph.at(compiled.graph.start);
  StateId bc = a.target, de = a.alt;
  std::set<DynBitset> keys;
  for (const auto& [key, target] : start.arcs) {
    keys.insert(key);
    EXPECT_EQ(aut.at(target).members, key);  // exact-occupancy invariant
  }
  std::set<DynBitset> want{DynBitset::of({bc}), DynBitset::of({de}),
                           DynBitset::of({bc, de})};
  EXPECT_EQ(keys, want);
}

TEST(Convert, TerminalMetaStateHasNoArcs) {
  auto compiled = driver::compile(workload::listing1().source);
  auto res = meta_state_convert(compiled.graph, kCost, {});
  // F is the halt state: {F} must be terminal.
  StateId f_state = ir::kNoState;
  for (const auto& b : compiled.graph.blocks)
    if (b.exit == ExitKind::Halt) f_state = b.id;
  ASSERT_NE(f_state, ir::kNoState);
  MetaId f = res.automaton.find(DynBitset::of({f_state}));
  ASSERT_NE(f, kNoMeta);
  EXPECT_TRUE(res.automaton.at(f).terminal());
}

TEST(Convert, Figure5CompressedTwoStates) {
  ConvertOptions opts;
  opts.compress = true;
  MetaAutomaton aut = convert_src(workload::listing1().source, opts);
  ASSERT_EQ(aut.num_states(), 2u) << aut.dump();
  EXPECT_EQ(member_sets(aut), (std::set<std::string>{"{0}", "{1,2,3}"}));
  // Entries into compressed states are unconditional (§3.2.2).
  EXPECT_EQ(aut.at(aut.start).unconditional, aut.find(DynBitset::of({1, 2, 3})));
  EXPECT_TRUE(aut.at(aut.start).arcs.empty());
  // The wide state loops on itself.
  MetaId wide = aut.find(DynBitset::of({1, 2, 3}));
  EXPECT_EQ(aut.at(wide).unconditional, wide);
}

TEST(Convert, CompressedWithoutSubsumptionKeepsIntermediateState) {
  ConvertOptions opts;
  opts.compress = true;
  opts.subsume = false;
  MetaAutomaton aut = convert_src(workload::listing1().source, opts);
  EXPECT_EQ(aut.num_states(), 3u);  // {A}, {B;C,D;E}, {B;C,D;E,F}
  // The intermediate two-member state is strictly contained in the wide
  // one (which is why subsumption can remove it).
  std::vector<std::size_t> widths;
  for (const MetaState& s : aut.states) widths.push_back(s.width());
  std::sort(widths.begin(), widths.end());
  EXPECT_EQ(widths, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(Convert, Figure6BarrierGraphUnderPaperPrune) {
  // Fig. 6 (Listing 3): meta states {B;C}, {D;E}, {B;C,D;E} and the
  // all-barrier state, nothing else past the start.
  ConvertOptions opts;
  opts.barrier_mode = BarrierMode::PaperPrune;
  auto compiled = driver::compile(workload::listing3().source);
  auto res = meta_state_convert(compiled.graph, kCost, opts);
  const MetaAutomaton& aut = res.automaton;
  // Our numbering: A=0, B;C=1, D;E=2, wait=3, F=4.
  EXPECT_EQ(member_sets(aut),
            (std::set<std::string>{"{0}", "{1}", "{2}", "{1,2}", "{3}", "{4}"}));
  // No meta state mixes barrier and non-barrier members.
  for (const MetaState& s : aut.states) {
    bool has_barrier = s.members.intersects(aut.barriers);
    bool all_barrier = s.members.is_subset_of(aut.barriers);
    EXPECT_TRUE(!has_barrier || all_barrier) << s.members.to_string();
  }
}

TEST(Convert, BarrierTrackOccupancyKeepsWaitingMembers) {
  ConvertOptions opts;
  opts.barrier_mode = BarrierMode::TrackOccupancy;
  MetaAutomaton aut = convert_src(workload::listing3().source, opts);
  // Occupied barrier state 3 stays in the member sets: {1,3}, {2,3} exist.
  auto sets = member_sets(aut);
  EXPECT_TRUE(sets.count("{1,3}")) << aut.dump();
  EXPECT_TRUE(sets.count("{2,3}")) << aut.dump();
  // Still no transition past the barrier until everyone waits: the F
  // state {4} is only reachable from the all-barrier state {3}.
  MetaId f = aut.find(DynBitset::of({4}));
  MetaId w = aut.find(DynBitset::of({3}));
  ASSERT_NE(f, kNoMeta);
  ASSERT_NE(w, kNoMeta);
  for (const MetaState& s : aut.states) {
    for (const auto& [key, target] : s.arcs) {
      if (target == f) {
        EXPECT_EQ(s.id, w);
      }
    }
  }
}

TEST(Convert, BarrierCutsStateSpace) {
  // §2.6's purpose: the barrier version must be no bigger than the
  // barrier-free version for the same divergent code. With five distinct
  // barriers PaperPrune is a compile error, so occupancy tracking carries
  // the claim (waiting PEs pin their members, killing the cross-product).
  auto no_barrier = convert_src(workload::loopy_source(5));
  auto with_barrier = convert_src(workload::loopy_barrier_source(5));
  EXPECT_LT(with_barrier.num_states(), no_barrier.num_states());

  ConvertOptions prune;
  prune.barrier_mode = BarrierMode::PaperPrune;
  EXPECT_THROW(convert_src(workload::loopy_barrier_source(5), prune),
               CompileError);
  // One barrier keeps the paper's rule sound and accepted.
  auto pruned = convert_src(workload::loopy_barrier_source(1), prune);
  auto plain = convert_src(workload::loopy_source(1));
  EXPECT_LE(pruned.num_states(), plain.num_states());
}

TEST(Convert, SpawnTakesBothArcs) {
  MetaAutomaton aut = convert_src("int main() { spawn { return 2; } return 1; }");
  // Start state spawns: its single successor contains both the child
  // entry and the continuation.
  const MetaState& start = aut.at(aut.start);
  ASSERT_EQ(start.arcs.size(), 1u);
  EXPECT_EQ(start.arcs[0].first.count(), 2u);
}

TEST(Convert, UniformProgramStaysNarrow) {
  // No divergence → every meta state has exactly one member, even in base
  // mode (branches are uniform but conversion still enumerates... the
  // automaton width measures *potential* divergence).
  MetaAutomaton aut = convert_src(
      "int main() { poly int i; i = 3; do { i = i - 1; } while (i); return i; }");
  EXPECT_GE(aut.num_states(), 2u);
  EXPECT_LE(aut.max_width(), 2u);
}

TEST(Convert, ExplosionGuardFires) {
  ConvertOptions opts;
  opts.max_meta_states = 4;
  auto compiled = driver::compile(workload::loopy_source(6));
  EXPECT_THROW(meta_state_convert(compiled.graph, kCost, opts), ExplosionError);
}

TEST(Convert, ExplosionLimitIsExactAtBoundary) {
  // The guard must fire *before* inserting the state that exceeds it:
  // a limit of exactly the automaton's final state count succeeds, one
  // less throws. Listing 1's base conversion needs exactly 8 meta states.
  auto compiled = driver::compile(workload::listing1().source);
  ConvertOptions at_limit;
  at_limit.max_meta_states = 8;
  auto res = meta_state_convert(compiled.graph, kCost, at_limit);
  EXPECT_EQ(res.automaton.num_states(), 8u);
  ConvertOptions below;
  below.max_meta_states = 7;
  EXPECT_THROW(meta_state_convert(compiled.graph, kCost, below), ExplosionError);
  // Degenerate budgets: even the start state must respect the limit.
  ConvertOptions zero;
  zero.max_meta_states = 0;
  EXPECT_THROW(meta_state_convert(compiled.graph, kCost, zero), ExplosionError);
}

TEST(Convert, CompressionNeverExplodes) {
  // §2.5: compressed meta-state count is bounded by reachable unions —
  // tiny even where base mode blows past the guard.
  ConvertOptions opts;
  opts.compress = true;
  opts.max_meta_states = 64;
  auto compiled = driver::compile(workload::loopy_source(10));
  auto res = meta_state_convert(compiled.graph, kCost, opts);
  EXPECT_LE(res.automaton.num_states(), 24u);
  // ... where base mode on the same graph blows far past that:
  ConvertOptions base;
  base.max_meta_states = 2000;
  EXPECT_THROW(meta_state_convert(compiled.graph, kCost, base), ExplosionError);
}

TEST(Convert, StatsAreFilled) {
  auto compiled = driver::compile(workload::listing1().source);
  auto res = meta_state_convert(compiled.graph, kCost, {});
  EXPECT_EQ(res.stats.meta_states, 8u);
  EXPECT_EQ(res.stats.arcs, res.automaton.num_arcs());
  EXPECT_GT(res.stats.reach_calls, 8u);
  EXPECT_EQ(res.stats.splits_performed, 0);
}

TEST(Convert, DumpShowsPaperStyleLabels) {
  MetaAutomaton aut = convert_src(workload::listing1().source);
  std::string dump = aut.dump();
  EXPECT_NE(dump.find("{1,2,3}"), std::string::npos);
  EXPECT_NE(dump.find("8 states"), std::string::npos);
  std::string dot = aut.to_dot();
  EXPECT_NE(dot.find("digraph meta"), std::string::npos);
}

// ------------------------------------------------------------ time splitting

TEST(TimeSplit, SplitsExpensiveMemberIntoHeadAndTail) {
  // Fig. 3/4: states α (cheap) and β (expensive) merged into one meta
  // state; β is split so the head matches α's cost.
  auto compiled = driver::compile(workload::imbalanced_once_source(1, 12));
  StateGraph g = compiled.graph;
  std::size_t before = g.size();

  // Find the two divergent arms (successors of the start branch). Copy the
  // ids out: splitting appends blocks, invalidating references into g.
  ir::StateId arm_a = g.at(g.start).target;
  ir::StateId arm_b = g.at(g.start).alt;
  DynBitset members = DynBitset::of({arm_a, arm_b});
  std::int64_t cheap =
      std::min(kCost.block_cost(g.at(arm_a)), kCost.block_cost(g.at(arm_b)));

  int splits = time_split_state(g, members, kCost, 4, 75);
  EXPECT_EQ(splits, 1);
  EXPECT_EQ(g.size(), before + 1);
  EXPECT_TRUE(g.validate().empty());
  // The expensive arm now costs about the cheap arm.
  std::int64_t head_cost =
      std::max(kCost.block_cost(g.at(arm_a)), kCost.block_cost(g.at(arm_b)));
  EXPECT_LE(head_cost, cheap + 4);
}

TEST(TimeSplit, RespectsDeltaThreshold) {
  auto compiled = driver::compile(workload::imbalanced_once_source(3, 4));
  StateGraph g = compiled.graph;
  const ir::Block& start = g.at(g.start);
  DynBitset members = DynBitset::of({start.target, start.alt});
  // With a huge delta, the imbalance counts as noise.
  EXPECT_EQ(time_split_state(g, members, kCost, 1000, 75), 0);
}

TEST(TimeSplit, RespectsPercentThreshold) {
  auto compiled = driver::compile(workload::imbalanced_once_source(8, 10));
  StateGraph g = compiled.graph;
  const ir::Block& start = g.at(g.start);
  DynBitset members = DynBitset::of({start.target, start.alt});
  // min/max utilization is already above 10%: no split.
  EXPECT_EQ(time_split_state(g, members, kCost, 0, 10), 0);
}

TEST(TimeSplit, SingleInstructionBlocksCannotSplit) {
  StateGraph g;
  StateId a = g.add_block();
  StateId b = g.add_block();
  g.start = a;
  g.at(a).body.push_back(ir::Instr::push_i(1));
  g.at(a).exit = ExitKind::Jump;
  g.at(a).target = b;
  g.at(b).body.push_back(ir::Instr::of(ir::Opcode::RouteLd));  // expensive
  g.at(b).exit = ExitKind::Halt;
  EXPECT_EQ(time_split_state(g, DynBitset::of({a, b}), kCost, 0, 99), 0);
}

TEST(TimeSplit, SplitPreservesExecutionSemantics) {
  // Work conservation (DESIGN.md invariant 5): the split graph computes
  // the same results (checked via conversion in equivalence_test; here
  // check instruction conservation directly).
  auto compiled = driver::compile(workload::imbalanced_once_source(1, 12));
  StateGraph g = compiled.graph;
  std::size_t instrs_before = 0;
  for (const auto& b : g.blocks) instrs_before += b.body.size();
  const ir::Block& start = g.at(g.start);
  time_split_state(g, DynBitset::of({start.target, start.alt}), kCost, 4, 75);
  std::size_t instrs_after = 0;
  for (const auto& b : g.blocks) instrs_after += b.body.size();
  EXPECT_EQ(instrs_before, instrs_after);
}

TEST(TimeSplit, ConversionWithSplittingReducesIdleFraction) {
  auto compiled = driver::compile(workload::imbalanced_once_source(1, 12));
  ConvertOptions plain;
  auto unsplit = meta_state_convert(compiled.graph, kCost, plain);
  ConvertOptions split;
  split.time_split = true;
  auto splitres = meta_state_convert(compiled.graph, kCost, split);
  EXPECT_GT(splitres.stats.splits_performed, 0);
  EXPECT_GT(splitres.stats.restarts, 0);
  EXPECT_GT(splitres.graph.size(), unsplit.graph.size());

  // Worst idle fraction across meta states must improve.
  auto worst_idle = [&](const ConvertResult& res) {
    double worst = 0.0;
    for (const MetaState& s : res.automaton.states)
      worst = std::max(worst,
                       meta_state_idle_fraction(res.graph, s.members, kCost));
    return worst;
  };
  EXPECT_LT(worst_idle(splitres), worst_idle(unsplit));
}

// ----------------------------------------------------------- memo cache

TEST(ConvertCache, SurvivesTimeSplitRestartsAndMatchesUncached) {
  // Splitting restarts conversion (§2.4); the memo must serve the
  // untouched frontier back (hits), drop entries containing split states
  // (invalidations), and change nothing about the result. listing1 splits
  // blocks that earlier rounds already expanded, so all three counters move.
  auto compiled = driver::compile(workload::listing1().source);
  ConvertOptions cached;
  cached.time_split = true;
  auto with = meta_state_convert(compiled.graph, kCost, cached);
  ASSERT_GT(with.stats.restarts, 0);
  EXPECT_GT(with.stats.cache_hits, 0u);
  EXPECT_GT(with.stats.cache_invalidated, 0u);

  ConvertOptions uncached = cached;
  uncached.memoize = false;
  auto without = meta_state_convert(compiled.graph, kCost, uncached);
  EXPECT_EQ(without.stats.cache_hits, 0u);
  EXPECT_EQ(with.automaton.dump(), without.automaton.dump());
  EXPECT_EQ(with.graph.dump(), without.graph.dump());
  // The cache replaces re-enumeration: strictly fewer reach() calls.
  EXPECT_LT(with.stats.reach_calls, without.stats.reach_calls);
}

TEST(ConvertCache, NoRestartMeansNoHits) {
  // Member sets are unique per meta state, so within a single round every
  // lookup is a miss; hits only come from restart reuse.
  auto compiled = driver::compile(workload::listing1().source);
  auto res = meta_state_convert(compiled.graph, kCost, {});
  EXPECT_EQ(res.stats.cache_hits, 0u);
  EXPECT_EQ(res.stats.cache_misses, res.automaton.num_states());
  EXPECT_EQ(res.stats.restarts, 0);
}

TEST(ConvertStatsJson, ContainsEveryCounter) {
  auto compiled = driver::compile(workload::listing1().source);
  auto res = meta_state_convert(compiled.graph, kCost, {});
  std::string json = to_json(res.stats);
  for (const char* field :
       {"\"meta_states\"", "\"arcs\"", "\"reach_calls\"", "\"splits_performed\"",
        "\"restarts\"", "\"cache\"", "\"hits\"", "\"misses\"", "\"invalidated\"",
        "\"threads\"", "\"batches\"", "\"phase_seconds\"", "\"expand\"",
        "\"merge\"", "\"subsume\"", "\"straighten\"", "\"total\""})
    EXPECT_NE(json.find(field), std::string::npos) << field << "\n" << json;
}

TEST(Convert, AdaptiveFallsBackToCompression) {
  ConvertOptions opts;
  opts.max_meta_states = 200;
  // Small graph: base mode fits, stays uncompressed.
  auto small = driver::compile(workload::listing1().source);
  auto a = meta_state_convert_adaptive(small.graph, kCost, opts);
  EXPECT_FALSE(a.automaton.compressed);
  EXPECT_EQ(a.automaton.num_states(), 8u);
  // Divergent loop chain: base explodes past 200 → compressed result.
  auto big = driver::compile(workload::loopy_source(8));
  auto b = meta_state_convert_adaptive(big.graph, kCost, opts);
  EXPECT_TRUE(b.automaton.compressed);
  EXPECT_LT(b.automaton.num_states(), 200u);
  EXPECT_TRUE(b.automaton.validate(b.graph).empty());
}
