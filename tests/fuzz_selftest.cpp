// Mutation-tests the fuzzing pipeline end to end: a converter bug is
// deliberately injected through EvalConfig::corrupt_conversion and the
// fuzzer must detect it, shrink the reproducer deterministically to a
// handful of lines, and round-trip its manifest. Also pins the pieces the
// pipeline is built from: the shrinker's fixpoint/determinism contract,
// the manifest codec, the coverage sink, and the option matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "msc/fuzz/fuzz.hpp"
#include "msc/fuzz/manifest.hpp"

using namespace msc;
using namespace msc::fuzz;

namespace {

int count_lines(const std::string& s) {
  return static_cast<int>(std::count(s.begin(), s.end(), '\n'));
}

// The injected defect: swap the targets of the first meta state holding
// two or more transition arcs — a mis-wired divergent branch, the classic
// conversion bug shape.
void swap_arc_targets(core::ConvertResult& conv) {
  for (auto& st : conv.automaton.states) {
    if (st.arcs.size() >= 2) {
      std::swap(st.arcs[0].second, st.arcs[1].second);
      return;
    }
  }
}

TEST(FuzzSelftest, InjectedConverterBugIsDetectedAndShrunk) {
  FuzzOptions opts;
  opts.seed = 5;
  opts.time_budget_seconds = 240.0;  // iteration-capped long before this
  opts.max_iterations = 200;
  opts.max_findings = 1;
  opts.shrink = true;
  opts.eval.initial_active = 2;
  opts.eval.corrupt_conversion = swap_arc_targets;
  opts.gen.stmts = 4;
  opts.gen.max_depth = 2;
  opts.gen.allow_spawn = true;

  FuzzResult res = run_fuzzer(opts);
  ASSERT_EQ(res.findings.size(), 1u)
      << "fuzzer missed the injected converter bug in " << res.iterations
      << " iterations";
  const Finding& f = res.findings[0];
  EXPECT_NE(f.kind, FindingKind::CompileError) << f.detail;

  // Acceptance: the shrunk reproducer is tiny and still reproduces.
  EXPECT_LE(count_lines(f.source), 15) << f.source;
  EXPECT_TRUE(reproduces(f.source, opts.eval, f.spec, f.kind)) << f.source;

  // Shrinking is a pure function of (source, predicate): two runs over the
  // same input are byte-identical, and the fuzzer's own output is already
  // a fixpoint.
  auto pred = [&](const std::string& s) {
    return reproduces(s, opts.eval, f.spec, f.kind);
  };
  const std::string once = shrink_source(f.source, pred);
  const std::string twice = shrink_source(f.source, pred);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(once, f.source);

  // The finding's manifest round-trips through the JSON codec.
  Manifest m = manifest_for(f, opts.eval, "repro_1.mimdc");
  Manifest back = parse_manifest(to_json(m));
  EXPECT_EQ(back.kind, to_string(f.kind));
  EXPECT_EQ(back.spec().label(), f.spec.label());
  EXPECT_EQ(back.nprocs, opts.eval.nprocs);
  EXPECT_EQ(back.initial_active, opts.eval.initial_active);
}

TEST(FuzzSelftest, CleanPipelineProducesNoFindings) {
  FuzzOptions opts;
  opts.seed = 11;
  opts.time_budget_seconds = 20.0;
  opts.max_iterations = 6;
  opts.eval.initial_active = 2;
  opts.gen.allow_spawn = true;
  FuzzResult res = run_fuzzer(opts);
  EXPECT_TRUE(res.findings.empty())
      << to_string(res.findings[0].kind) << "\n"
      << res.findings[0].detail << "\n"
      << res.findings[0].source;
  EXPECT_GT(res.features, 0u) << "coverage hooks never fired";
  EXPECT_GT(res.corpus_size, 0u);
}

// The kernel-shaped mutation seeds (DESIGN.md §12): one skeleton per
// verified kernel, every one well-formed, spawn-bearing where the kernel
// spawns, and differentially clean across the whole default matrix — a
// bad seed would poison every fuzzing run from iteration one.
TEST(FuzzSelftest, KernelSeedCorpusEvaluatesCleanAcrossTheMatrix) {
  std::vector<workload::GenProgram> seeds = kernel_seed_corpus();
  ASSERT_EQ(seeds.size(), 6u);
  bool any_spawn = false;
  EvalConfig cfg;  // defaults: nprocs=6, all active, seed 1
  for (const workload::GenProgram& p : seeds) {
    const std::string source = p.render();
    EXPECT_GT(p.block_bound(), 0);
    any_spawn = any_spawn || p.uses_spawn();
    EvalResult ev = evaluate(source, cfg, default_matrix());
    EXPECT_FALSE(ev.skipped) << source;
    if (ev.finding)
      ADD_FAILURE() << to_string(ev.finding->kind) << " in seed\n"
                    << source << "\n"
                    << ev.finding->detail;
  }
  EXPECT_TRUE(any_spawn) << "workqueue skeleton lost its spawn";
}

TEST(FuzzSelftest, ShrinkerReachesMinimalFormOnTextPredicates) {
  const std::string source =
      "poly int x;\n"
      "int main() {\n"
      "  poly int v0;\n"
      "  v0 = x + 3;\n"
      "  if (x % 2 == 0) {\n"
      "    v0 = v0 * 3;\n"
      "  } else {\n"
      "    v0 = v0 - 1;\n"
      "  }\n"
      "  wait;\n"
      "  return v0;\n"
      "}\n";
  auto pred = [](const std::string& s) {
    return s.find("v0 = v0 * 3;") != std::string::npos;
  };
  const std::string shrunk = shrink_source(source, pred);
  EXPECT_NE(shrunk.find("v0 = v0 * 3;"), std::string::npos);
  // Everything deletable around the marker is gone: the else branch, the
  // barrier, the unrelated statements, and the if wrapper itself.
  EXPECT_EQ(shrunk.find("else"), std::string::npos);
  EXPECT_EQ(shrunk.find("wait;"), std::string::npos);
  EXPECT_EQ(shrunk.find("v0 = x + 3;"), std::string::npos);
  EXPECT_EQ(shrunk.find("if ("), std::string::npos);
  // Deterministic and idempotent.
  EXPECT_EQ(shrunk, shrink_source(source, pred));
  EXPECT_EQ(shrunk, shrink_source(shrunk, pred));
}

TEST(FuzzSelftest, ShrinkerKeepsNonReproducingInputUnchanged) {
  const std::string source = "int main() {\n  return 0;\n}\n";
  EXPECT_EQ(shrink_source(source, [](const std::string&) { return false; }),
            source);
}

TEST(FuzzSelftest, ManifestRejectsMalformedInput) {
  EXPECT_THROW(parse_manifest("{"), std::runtime_error);
  EXPECT_THROW(parse_manifest("not json at all"), std::runtime_error);
  EXPECT_THROW(parse_manifest(R"({"schema": 2, "source_file": "a.mimdc"})"),
               std::runtime_error);  // unknown schema version
  EXPECT_THROW(parse_manifest(R"({"schema": 1})"),
               std::runtime_error);  // missing source_file
  EXPECT_THROW(parse_manifest(
                   R"({"schema": 1, "source_file": "a.mimdc", "prune": 7})"),
               std::runtime_error);  // non-boolean bool field
  // Unknown keys are ignored (forward compatibility).
  Manifest m = parse_manifest(
      R"({"schema": 1, "source_file": "a.mimdc", "future_field": "ok"})");
  EXPECT_EQ(m.source_file, "a.mimdc");
  EXPECT_EQ(m.kind, "corpus");
}

TEST(FuzzSelftest, CoverageSinkScopingAndBuckets) {
  EXPECT_EQ(coverage_bucket(0), 0u);
  EXPECT_EQ(coverage_bucket(1), 1u);
  EXPECT_EQ(coverage_bucket(3), 2u);
  EXPECT_EQ(coverage_bucket(4), 3u);
  EXPECT_EQ(coverage_bucket(~0ull), 64u);

  FuzzCoverage cov;
  {
    ScopedCoverage installed(&cov);
    EXPECT_EQ(coverage_sink(), &cov);
    cov.begin_candidate();
    coverage_hit(cov::kConvertShape, 42);
    coverage_hit(cov::kConvertShape, 42);  // duplicate within a candidate
    coverage_hit(cov::kSimdRescue, 1);
    EXPECT_EQ(cov.candidate_features(), 2u);
    EXPECT_EQ(cov.merge(), 2u);
    cov.begin_candidate();
    coverage_hit(cov::kConvertShape, 42);  // already global: not novel
    EXPECT_EQ(cov.merge(), 0u);
    EXPECT_EQ(cov.total_features(), 2u);
  }
  EXPECT_EQ(coverage_sink(), nullptr);  // restored on scope exit
  coverage_hit(cov::kConvertShape, 7);  // no sink: must be a no-op
  EXPECT_EQ(cov.total_features(), 2u);
}

TEST(FuzzSelftest, DefaultMatrixCoversEveryMode) {
  const std::vector<RunSpec> matrix = default_matrix();
  std::vector<std::string> labels;
  bool fast = false, reference = false, codegen = false, prune = false;
  bool compress = false;
  bool nosub = false, split = false, threaded = false, dme = false;
  for (const RunSpec& s : matrix) {
    labels.push_back(s.label());
    fast |= s.engine == mimd::SimdEngine::Fast;
    reference |= s.engine == mimd::SimdEngine::Reference;
    codegen |= s.engine == mimd::SimdEngine::Codegen;
    prune |= s.barrier_mode == core::BarrierMode::PaperPrune;
    compress |= s.has("compress");
    nosub |= s.has("compress") && !s.has("subsume");
    split |= s.has("time-split");
    dme |= s.has("dme");
    threaded |= s.threads > 1;
    EXPECT_TRUE(s.has("convert")) << s.label();
  }
  EXPECT_TRUE(fast && reference && codegen && prune && compress && nosub &&
              split && threaded && dme);
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(std::adjacent_find(labels.begin(), labels.end()), labels.end())
      << "duplicate matrix cells";
}

TEST(FuzzSelftest, ManifestPipelineRoundTripAndLegacyFallback) {
  // Schema-1-with-pipeline manifests replay the pass list verbatim.
  Manifest m = parse_manifest(
      R"({"schema": 1, "source_file": "a.mimdc",
          "pipeline": "compress,convert,straighten", "threads": 2})");
  EXPECT_EQ(m.spec().pipeline,
            (std::vector<std::string>{"compress", "convert", "straighten"}));
  EXPECT_EQ(m.spec().threads, 2u);

  // Pre-pipeline manifests carry booleans; the spec they meant must be
  // reconstructed so every checked-in corpus manifest keeps replaying.
  Manifest legacy = parse_manifest(
      R"({"schema": 1, "source_file": "a.mimdc",
          "compress": true, "subsume": false, "time_split": true})");
  EXPECT_EQ(legacy.spec().pipeline,
            (std::vector<std::string>{"compress", "time-split", "convert",
                                      "straighten"}));
  Manifest plain = parse_manifest(R"({"schema": 1, "source_file": "a.mimdc"})");
  EXPECT_EQ(plain.spec().pipeline,
            (std::vector<std::string>{"convert", "subsume", "straighten"}));
}

}  // namespace
