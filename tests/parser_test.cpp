#include <gtest/gtest.h>

#include "msc/frontend/parser.hpp"

using namespace msc;
using namespace msc::frontend;

namespace {

/// Parse a program whose main consists of `body`, return main's dump.
std::string main_dump(const std::string& body) {
  auto prog = parse_mimdc("int main() {" + body + "}");
  return dump(*prog->find_func("main")->body);
}

/// Dump of a single expression statement.
std::string expr_dump(const std::string& expr) {
  return main_dump(expr + ";");
}

}  // namespace

TEST(Parser, Precedence) {
  EXPECT_EQ(expr_dump("1 + 2 * 3"), "(block (expr (+ 1 (* 2 3))))");
  EXPECT_EQ(expr_dump("(1 + 2) * 3"), "(block (expr (* (+ 1 2) 3)))");
  EXPECT_EQ(expr_dump("1 < 2 == 3 < 4"), "(block (expr (== (< 1 2) (< 3 4))))");
  EXPECT_EQ(expr_dump("1 | 2 ^ 3 & 4"), "(block (expr (| 1 (^ 2 (& 3 4)))))");
  EXPECT_EQ(expr_dump("1 && 2 || 3"), "(block (expr (|| (&& 1 2) 3)))");
  EXPECT_EQ(expr_dump("1 << 2 + 3"), "(block (expr (<< 1 (+ 2 3))))");
}

TEST(Parser, Associativity) {
  EXPECT_EQ(expr_dump("10 - 2 - 3"), "(block (expr (- (- 10 2) 3)))");
  EXPECT_EQ(expr_dump("100 / 10 / 2"), "(block (expr (/ (/ 100 10) 2)))");
}

TEST(Parser, UnaryOperators) {
  EXPECT_EQ(expr_dump("-1 + !2"), "(block (expr (+ (- 1) (! 2))))");
  EXPECT_EQ(expr_dump("~-3"), "(block (expr (~ (- 3))))");
  EXPECT_EQ(expr_dump("- - 5"), "(block (expr (- (- 5))))");
}

TEST(Parser, AssignmentIsRightAssociative) {
  EXPECT_EQ(main_dump("int a; int b; a = b = 3;"),
            "(block (decl poly int a) (decl poly int b) (expr (= a (= b 3))))");
}

TEST(Parser, AssignToNonLvalueRejected) {
  EXPECT_THROW(parse_mimdc("int main() { 1 = 2; }"), CompileError);
  EXPECT_THROW(parse_mimdc("int main() { procid() = 2; }"), CompileError);
}

TEST(Parser, Subscripts) {
  EXPECT_EQ(main_dump("int a[4]; a[1] = a[2];"),
            "(block (decl poly int a[4]) (expr (= (index a 1) (index a 2))))");
}

TEST(Parser, ParallelSubscript) {
  EXPECT_EQ(main_dump("int y; y[[3]];"),
            "(block (decl poly int y) (expr (par y 3)))");
  // Element of an array on another PE: a[1][[p]].
  EXPECT_EQ(main_dump("int a[4]; a[1][[2]];"),
            "(block (decl poly int a[4]) (expr (par (index a 1) 2)))");
  // Nested normal subscripts must still close properly: a[b[1]].
  EXPECT_EQ(main_dump("int a[4]; int b[4]; a[b[1]];"),
            "(block (decl poly int a[4]) (decl poly int b[4]) "
            "(expr (index a (index b 1))))");
}

TEST(Parser, ControlFlow) {
  EXPECT_EQ(main_dump("if (1) { 2; } else 3;"),
            "(block (if 1 (block (expr 2)) (expr 3)))");
  EXPECT_EQ(main_dump("while (1) 2;"), "(block (while 1 (expr 2)))");
  EXPECT_EQ(main_dump("do 2; while (1);"), "(block (do (expr 2) 1))");
  EXPECT_EQ(main_dump("int i; for (i = 0; i < 3; i = i + 1) ;"),
            "(block (decl poly int i) (for (= i 0) (< i 3) (= i (+ i 1)) ()))");
  EXPECT_EQ(main_dump("for (;;) halt;"), "(block (for () () () (halt)))");
}

TEST(Parser, DanglingElseBindsToInner) {
  EXPECT_EQ(main_dump("if (1) if (2) 3; else 4;"),
            "(block (if 1 (if 2 (expr 3) (expr 4))))");
}

TEST(Parser, ParallelConstructs) {
  EXPECT_EQ(main_dump("wait;"), "(block (wait))");
  EXPECT_EQ(main_dump("spawn { return 1; }"),
            "(block (spawn (block (return 1))))");
  EXPECT_EQ(main_dump("halt;"), "(block (halt))");
  EXPECT_EQ(expr_dump("procid() + nprocs()"),
            "(block (expr (+ (procid) (nprocs))))");
}

TEST(Parser, Calls) {
  auto prog = parse_mimdc("int f(int a, float b) { return a; }"
                          "int main() { return f(1, 2.5); }");
  EXPECT_EQ(prog->funcs.size(), 2u);
  const FuncDecl* f = prog->find_func("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->params.size(), 2u);
  EXPECT_EQ(f->params[1]->ty, Ty::Float);
  EXPECT_EQ(dump(*prog->find_func("main")->body),
            "(block (return (call f 1 2.500)))");
}

TEST(Parser, GlobalQualifiers) {
  auto prog = parse_mimdc("mono int m; poly int p; int d; int main() { return 0; }");
  EXPECT_EQ(prog->find_global("m")->qual, Qual::Mono);
  EXPECT_EQ(prog->find_global("p")->qual, Qual::Poly);
  // Top-level default is mono (shared), like a C global.
  EXPECT_EQ(prog->find_global("d")->qual, Qual::Mono);
}

TEST(Parser, LocalMonoRejected) {
  EXPECT_THROW(parse_mimdc("int main() { mono int m; }"), CompileError);
}

TEST(Parser, ArrayDeclarations) {
  auto prog = parse_mimdc("poly int a[8]; int main() { return 0; }");
  EXPECT_EQ(prog->find_global("a")->array_size, 8);
  EXPECT_THROW(parse_mimdc("poly int a[0]; int main() { return 0; }"),
               CompileError);
  EXPECT_THROW(parse_mimdc("int main() { int a[4] = 3; }"), CompileError);
}

TEST(Parser, SyntaxErrors) {
  EXPECT_THROW(parse_mimdc("int main() { 1 + ; }"), CompileError);
  EXPECT_THROW(parse_mimdc("int main() { if 1) {} }"), CompileError);
  EXPECT_THROW(parse_mimdc("int main() { return 1 }"), CompileError);
  EXPECT_THROW(parse_mimdc("int main( { }"), CompileError);
  EXPECT_THROW(parse_mimdc("void 3() {}"), CompileError);
  EXPECT_THROW(parse_mimdc("mono int f() { }"), CompileError);
  EXPECT_THROW(parse_mimdc("void x; int main() { return 0; }"), CompileError);
}

TEST(Parser, EmptyStatementsAndBlocks) {
  EXPECT_EQ(main_dump(";;{}"), "(block () () (block))");
}

TEST(Parser, FunctionWithVoidParamList) {
  auto prog = parse_mimdc("int g(void) { return 1; } int main() { return g(); }");
  EXPECT_TRUE(prog->find_func("g")->params.empty());
}
