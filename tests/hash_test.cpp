#include <gtest/gtest.h>

#include "msc/hash/multiway.hpp"
#include "msc/support/rng.hpp"

using namespace msc;
using namespace msc::hash;

namespace {

/// Every built switch must be a perfect lookup over its keys and reject
/// foreign keys.
void check_perfect(const std::vector<std::uint64_t>& keys,
                   const SearchOptions& opts = {}) {
  HashedSwitch sw = build_switch(keys, opts);
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(sw.lookup(keys[i]), static_cast<std::int32_t>(i))
        << "key " << keys[i];
  // A value sharing low bits with a real key must not alias.
  for (std::uint64_t k : keys) {
    std::uint64_t foreign = k ^ (1ull << 63) ^ 0x5a5a5a5aull;
    bool is_key = false;
    for (std::uint64_t other : keys) is_key |= other == foreign;
    if (!is_key) {
      EXPECT_EQ(sw.lookup(foreign), -1);
    }
  }
}

}  // namespace

TEST(Hash, SingleKey) { check_perfect({0x40ull}); }

TEST(Hash, PaperListing5MsZeroPattern) {
  // Meta state 0 of Listing 5 branches on aggregates {BIT(2)|BIT(6),
  // BIT(6), BIT(2)} and the paper hashes them contiguous.
  std::vector<std::uint64_t> keys = {(1ull << 2) | (1ull << 6), 1ull << 6,
                                     1ull << 2};
  HashedSwitch sw = build_switch(keys);
  EXPECT_FALSE(sw.is_linear());
  EXPECT_LE(sw.table_size(), 8u);
  check_perfect(keys);
}

TEST(Hash, PaperListing5Ms26Pattern) {
  // ms_2_6 dispatches over five aggregates of bits {2,6,9}.
  auto bit = [](int b) { return 1ull << b; };
  std::vector<std::uint64_t> keys = {
      bit(2) | bit(6), bit(9), bit(6) | bit(9), bit(2) | bit(9),
      bit(2) | bit(6) | bit(9)};
  HashedSwitch sw = build_switch(keys);
  EXPECT_FALSE(sw.is_linear());
  EXPECT_LE(sw.table_size(), 16u);  // the paper's mask is 15
  check_perfect(keys);
}

TEST(Hash, DenseKeysUseIdentity) {
  HashedSwitch sw = build_switch({0, 1, 2, 3});
  EXPECT_EQ(sw.fn.kind, HashFn::Kind::Identity);
  EXPECT_EQ(sw.table_size(), 4u);
  EXPECT_DOUBLE_EQ(sw.density(), 1.0);
}

TEST(Hash, ShiftedDenseKeysUseShiftMask) {
  HashedSwitch sw = build_switch({0x100, 0x200, 0x300, 0x000});
  EXPECT_EQ(sw.fn.kind, HashFn::Kind::ShiftMask);
  EXPECT_EQ(sw.fn.shift, 8u);
  check_perfect({0x100, 0x200, 0x300, 0x000});
}

TEST(Hash, TableSizeIsMinimalPowerOfTwoWhenPossible) {
  // 5 keys need ≥8 slots; these hash perfectly at 8.
  std::vector<std::uint64_t> keys = {1, 2, 3, 4, 5};
  HashedSwitch sw = build_switch(keys);
  EXPECT_EQ(sw.table_size(), 8u);
}

TEST(Hash, SparseRandomKeySets) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint64_t> keys;
    std::size_t n = 2 + rng.next_below(12);
    while (keys.size() < n) {
      std::uint64_t k = rng.next_u64() & ((1ull << 40) - 1);
      bool dup = false;
      for (std::uint64_t o : keys) dup |= o == k;
      if (!dup) keys.push_back(k);
    }
    check_perfect(keys);
  }
}

TEST(Hash, SubsetBitPatterns) {
  // The real workload: all non-empty subsets of a few pc bits.
  std::vector<int> bits = {3, 7, 12, 20};
  std::vector<std::uint64_t> keys;
  for (unsigned m = 1; m < 16; ++m) {
    std::uint64_t k = 0;
    for (int i = 0; i < 4; ++i)
      if (m & (1u << i)) k |= 1ull << bits[static_cast<std::size_t>(i)];
    keys.push_back(k);
  }
  check_perfect(keys);
}

TEST(Hash, LinearFallbackStillCorrect) {
  // Force the fallback with an impossible table budget.
  SearchOptions opts;
  opts.max_bits = 1;  // at most 2 slots
  opts.mul_attempts = 1;
  std::vector<std::uint64_t> keys = {10, 20, 30, 40, 50};
  HashedSwitch sw = build_switch(keys, opts);
  EXPECT_TRUE(sw.is_linear());
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(sw.lookup(keys[i]), static_cast<std::int32_t>(i));
  EXPECT_EQ(sw.lookup(99), -1);
}

TEST(Hash, RejectsBadInput) {
  EXPECT_THROW(build_switch({}), std::invalid_argument);
  EXPECT_THROW(build_switch({5, 5}), std::invalid_argument);
}

TEST(Hash, ForeignKeyHashingToEmptySlotIsMiss) {
  // 5 keys in an 8-slot table leave empty (-1 sentinel) slots. A foreign
  // key landing in one must report a miss — the sentinel must not escape
  // as a fake "index -1 matched" result, nor index keys[] out of range.
  std::vector<std::uint64_t> keys = {1, 2, 3, 4, 5};
  HashedSwitch sw = build_switch(keys);
  ASSERT_FALSE(sw.is_linear());
  bool probed_empty_slot = false;
  for (std::uint64_t probe = 0; probe < 64; ++probe) {
    bool is_key = false;
    for (std::uint64_t k : keys) is_key |= k == probe;
    if (is_key) continue;
    std::uint64_t h = sw.fn.eval(probe);
    ASSERT_LT(h, sw.table.size());
    if (sw.table[h] < 0) probed_empty_slot = true;
    EXPECT_EQ(sw.lookup(probe), -1) << "probe " << probe;
  }
  EXPECT_TRUE(probed_empty_slot);
}

TEST(Hash, CorruptTableIndexOutOfRangeIsMiss) {
  // A hand-built (or corrupted/deserialized) table may hold slot indexes
  // past the key vector; lookup must answer miss, not read out of range.
  HashedSwitch sw = build_switch({0, 1, 2, 3});
  ASSERT_EQ(sw.fn.kind, HashFn::Kind::Identity);
  sw.table[2] = 99;  // points far past keys.size()
  EXPECT_EQ(sw.lookup(2), -1);
  // Untouched slots still resolve.
  EXPECT_EQ(sw.lookup(1), 1);
}

TEST(Hash, AllEmptyTableRejectsEverything) {
  HashedSwitch sw = build_switch({7, 11});
  for (auto& slot : sw.table) slot = -1;
  EXPECT_EQ(sw.lookup(7), -1);
  EXPECT_EQ(sw.lookup(11), -1);
  EXPECT_EQ(sw.lookup(0), -1);
}

TEST(Hash, RenderedExpressionsLookLikeListing5) {
  HashFn f1{HashFn::Kind::NotShiftMask, 5, 0, 3};
  EXPECT_EQ(f1.render("apc"), "(((~apc) >> 5) & 3)");
  HashFn f2{HashFn::Kind::XorShiftMask, 6, 0, 15};
  EXPECT_EQ(f2.render("apc"), "(((apc >> 6) ^ apc) & 15)");
}

TEST(Hash, EvalMatchesRenderSemantics) {
  HashFn f{HashFn::Kind::XorShiftMask, 6, 0, 15};
  std::uint64_t apc = (1ull << 2) | (1ull << 9);
  EXPECT_EQ(f.eval(apc), ((apc >> 6) ^ apc) & 15);
  HashFn g{HashFn::Kind::NotShiftMask, 5, 0, 3};
  EXPECT_EQ(g.eval(apc), (~apc >> 5) & 3);
}
