// Build determinism: two independent runs of the whole pipeline over the
// same source must produce byte-identical artifacts (guards against
// unordered-container iteration leaking into output), and the automaton
// validator must catch each class of structural corruption.
#include <gtest/gtest.h>

#include "msc/codegen/program.hpp"
#include "msc/core/serialize.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/workload/generator.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using namespace msc::core;

namespace {
ir::CostModel kCost;
}

TEST(Determinism, PipelineArtifactsAreByteStable) {
  for (const auto& name : {"listing1", "listing3", "recursion", "oddeven_sort"}) {
    const auto& k = workload::kernel(name);
    for (bool compress : {false, true}) {
      ConvertOptions opts;
      opts.compress = compress;
      auto run = [&] {
        auto compiled = driver::compile(k.source);
        auto conv = meta_state_convert(compiled.graph, kCost, opts);
        auto prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
        return serialize(Module{conv.graph, conv.automaton}) + "\n---\n" +
               codegen::to_mpl(prog, conv.graph);
      };
      EXPECT_EQ(run(), run()) << name << " compress=" << compress;
    }
  }
}

TEST(Determinism, RandomProgramsStable) {
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    std::string src = workload::generate_program(seed);
    auto run = [&] {
      auto compiled = driver::compile(src);
      auto conv = meta_state_convert(compiled.graph, kCost, {});
      return conv.automaton.dump();
    };
    EXPECT_EQ(run(), run()) << src;
  }
}

TEST(Determinism, ParallelConversionBitIdenticalToSerial) {
  // The parallel frontier expansion must not leak thread timing into the
  // result: across every option combination, 1-thread and 4-thread (and
  // all-cores) conversions must produce bit-identical automata — same
  // state ids, transitions, straightened order, serialized bytes.
  for (const auto& name : {"listing1", "listing3", "branchy4", "oddeven_sort"}) {
    const auto& k = workload::kernel(name);
    const bool multi_barrier =
        driver::compile(k.source).graph.barrier_states().count() > 1;
    for (bool compress : {false, true}) {
      for (bool subsume : {false, true}) {
        for (auto mode :
             {BarrierMode::TrackOccupancy, BarrierMode::PaperPrune}) {
          // PaperPrune with compression or >1 barrier (oddeven_sort) is a
          // compile error now, not a conversion mode.
          if (mode == BarrierMode::PaperPrune && (compress || multi_barrier))
            continue;
          for (bool split : {false, true}) {
            ConvertOptions opts;
            opts.compress = compress;
            opts.subsume = subsume;
            opts.barrier_mode = mode;
            opts.time_split = split;
            auto run = [&](unsigned threads) {
              opts.threads = threads;
              auto compiled = driver::compile(k.source);
              auto conv = meta_state_convert(compiled.graph, kCost, opts);
              return serialize(
                  Module{std::move(conv.graph), std::move(conv.automaton)});
            };
            std::string serial = run(1);
            EXPECT_EQ(serial, run(4))
                << name << " compress=" << compress << " subsume=" << subsume
                << " prune=" << (mode == BarrierMode::PaperPrune)
                << " split=" << split;
            EXPECT_EQ(serial, run(0)) << name << " (threads=all)";
          }
        }
      }
    }
  }
}

TEST(Determinism, CacheDoesNotChangeResults) {
  // Memoized and unmemoized conversions of a restart-heavy workload must
  // serialize identically (stats excluded — Module carries default stats).
  std::string src = workload::kernel("branchy4").source;
  for (bool split : {false, true}) {
    ConvertOptions opts;
    opts.time_split = split;
    auto run = [&](bool memoize) {
      opts.memoize = memoize;
      auto compiled = driver::compile(src);
      auto conv = meta_state_convert(compiled.graph, kCost, opts);
      return serialize(Module{std::move(conv.graph), std::move(conv.automaton)});
    };
    EXPECT_EQ(run(true), run(false)) << "split=" << split;
  }
}

TEST(Validate, CatchesStructuralCorruption) {
  auto compiled = driver::compile(workload::listing1().source);
  auto conv = meta_state_convert(compiled.graph, kCost, {});
  ASSERT_TRUE(conv.automaton.validate(conv.graph).empty());

  {  // arc target out of range
    MetaAutomaton bad = conv.automaton;
    bad.states[0].arcs[0].second = 999;
    EXPECT_FALSE(bad.validate(conv.graph).empty());
  }
  {  // empty member set
    MetaAutomaton bad = conv.automaton;
    bad.states[1].members = DynBitset();
    EXPECT_FALSE(bad.validate(conv.graph).empty());
  }
  {  // key does not match target members (exact-occupancy violation)
    MetaAutomaton bad = conv.automaton;
    bad.states[0].arcs[0].first = DynBitset::of({1, 2, 3});
    EXPECT_FALSE(bad.validate(conv.graph).empty());
  }
  {  // member referencing a MIMD state beyond the graph
    MetaAutomaton bad = conv.automaton;
    bad.states[1].members.set(77);
    EXPECT_FALSE(bad.validate(conv.graph).empty());
  }
  {  // unconditional arc in a base-mode automaton
    MetaAutomaton bad = conv.automaton;
    bad.states[1].unconditional = 0;
    EXPECT_FALSE(bad.validate(conv.graph).empty());
  }
  {  // start state out of range
    MetaAutomaton bad = conv.automaton;
    bad.start = 999;
    EXPECT_FALSE(bad.validate(conv.graph).empty());
  }
}
