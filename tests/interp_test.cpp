#include <gtest/gtest.h>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/interp/machine.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

namespace {

class InterpTest : public testing::TestWithParam<std::string> {};

TEST_P(InterpTest, MatchesOracle) {
  const workload::Kernel& k = workload::kernel(GetParam());
  auto compiled = driver::compile(k.source);
  ir::CostModel cost;
  mimd::RunConfig config;
  config.nprocs = 8;
  if (k.name == "spawn_tree") config.initial_active = 2;

  for (auto dispatch : {interp::Dispatch::Naive, interp::Dispatch::GlobalOr}) {
    for (std::uint64_t seed : {3ull, 11ull}) {
      auto oracle = driver::run_oracle(compiled, config, seed);

      interp::InterpMachine m(compiled.graph, cost, config, dispatch);
      driver::seed_machine(m, compiled, config, seed);
      m.run();
      for (std::int64_t p = 0; p < config.nprocs; ++p) {
        ASSERT_EQ(m.ever_ran(p), oracle.ran[static_cast<std::size_t>(p)]);
        if (!m.ever_ran(p)) continue;
        EXPECT_EQ(m.peek(p, frontend::Layout::kResultAddr),
                  oracle.results[static_cast<std::size_t>(p)])
            << "PE " << p << " seed " << seed;
      }
    }
  }
}

TEST_P(InterpTest, NaiveCostsMoreThanGlobalOrDispatch) {
  const workload::Kernel& k = workload::kernel(GetParam());
  auto compiled = driver::compile(k.source);
  ir::CostModel cost;
  mimd::RunConfig config;
  config.nprocs = 8;
  if (k.name == "spawn_tree") config.initial_active = 2;

  interp::InterpMachine naive(compiled.graph, cost, config, interp::Dispatch::Naive);
  driver::seed_machine(naive, compiled, config, 5);
  naive.run();
  interp::InterpMachine smart(compiled.graph, cost, config,
                              interp::Dispatch::GlobalOr);
  driver::seed_machine(smart, compiled, config, 5);
  smart.run();
  EXPECT_GT(naive.stats().dispatch_cycles, smart.stats().dispatch_cycles);
  EXPECT_EQ(naive.stats().iterations, smart.stats().iterations);
}

std::vector<std::string> interp_kernels() {
  std::vector<std::string> names;
  for (const auto& k : workload::suite()) names.push_back(k.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Suite, InterpTest, testing::ValuesIn(interp_kernels()),
                         [](const auto& info) { return info.param; });

TEST(InterpImage, ProgramFootprintGrowsWithCode) {
  auto small = driver::compile(workload::listing1().source);
  auto big = driver::compile(workload::branchy_source(10));
  auto img_small = interp::assemble(small.graph);
  auto img_big = interp::assemble(big.graph);
  EXPECT_GT(img_big.cells_per_pe(), img_small.cells_per_pe());
  EXPECT_GT(img_small.cells_per_pe(), 0);
}

}  // namespace
