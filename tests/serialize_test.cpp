#include <gtest/gtest.h>

#include "msc/core/serialize.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using namespace msc::core;

namespace {

ir::CostModel kCost;

Module module_of(const std::string& src, ConvertOptions opts = {}) {
  auto compiled = driver::compile(src);
  auto conv = meta_state_convert(compiled.graph, kCost, opts);
  return Module{std::move(conv.graph), std::move(conv.automaton)};
}

}  // namespace

TEST(Serialize, RoundTripPreservesStructure) {
  for (const auto& k : workload::suite()) {
    for (bool compress : {false, true}) {
      ConvertOptions opts;
      opts.compress = compress;
      Module a = module_of(k.source, opts);
      Module b = deserialize(serialize(a));
      // Graph identical.
      EXPECT_EQ(a.graph.dump(), b.graph.dump()) << k.name;
      // Automaton identical.
      EXPECT_EQ(a.automaton.dump(), b.automaton.dump()) << k.name;
      EXPECT_EQ(serialize(a), serialize(b)) << k.name;
    }
  }
}

TEST(Serialize, ReloadedModuleExecutesIdentically) {
  const auto& k = workload::listing1();
  auto compiled = driver::compile(k.source);
  auto conv = meta_state_convert(compiled.graph, kCost, {});
  Module reloaded =
      deserialize(serialize(Module{conv.graph, conv.automaton}));

  auto prog = codegen::generate(reloaded.automaton, reloaded.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 8;
  simd::SimdMachine m(prog, kCost, cfg);
  driver::seed_machine(m, compiled, cfg, 3);
  m.run();
  auto oracle = driver::run_oracle(compiled, cfg, 3);
  for (std::int64_t p = 0; p < cfg.nprocs; ++p)
    EXPECT_EQ(m.peek(p, frontend::Layout::kResultAddr),
              oracle.results[static_cast<std::size_t>(p)]);
}

TEST(Serialize, FloatPayloadsAreBitExact) {
  Module a = module_of(workload::kernel("floatmix").source);
  Module b = deserialize(serialize(a));
  for (const auto& blk : a.graph.blocks)
    for (std::size_t i = 0; i < blk.body.size(); ++i)
      EXPECT_EQ(blk.body[i], b.graph.at(blk.id).body[i]);
}

TEST(Serialize, RejectsMalformedInput) {
  Module good = module_of(workload::listing1().source);
  std::string text = serialize(good);

  EXPECT_THROW(deserialize(""), std::runtime_error);
  EXPECT_THROW(deserialize("bogus 1\n"), std::runtime_error);
  EXPECT_THROW(deserialize("mscmod 99\n"), std::runtime_error);
  // Truncated (no 'end').
  EXPECT_THROW(deserialize(text.substr(0, text.size() / 2)), std::runtime_error);
  // Corrupt a block record's exit kind.
  std::string bad = text;
  auto pos = bad.find("\nblock ");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos + 1, 5, "blork");
  EXPECT_THROW(deserialize(bad), std::runtime_error);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  Module a = module_of(workload::listing1().source);
  std::string text = "# cached conversion\n\n" + serialize(a) + "\n# trailer\n";
  Module b = deserialize(text);
  EXPECT_EQ(a.automaton.dump(), b.automaton.dump());
}
