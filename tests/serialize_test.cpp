#include <gtest/gtest.h>

#include "msc/core/serialize.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using namespace msc::core;

namespace {

ir::CostModel kCost;

Module module_of(const std::string& src, ConvertOptions opts = {}) {
  auto compiled = driver::compile(src);
  auto conv = meta_state_convert(compiled.graph, kCost, opts);
  return Module{std::move(conv.graph), std::move(conv.automaton), conv.stats};
}

}  // namespace

TEST(Serialize, RoundTripPreservesStructure) {
  for (const auto& k : workload::suite()) {
    for (bool compress : {false, true}) {
      ConvertOptions opts;
      opts.compress = compress;
      Module a = module_of(k.source, opts);
      Module b = deserialize(serialize(a));
      // Graph identical.
      EXPECT_EQ(a.graph.dump(), b.graph.dump()) << k.name;
      // Automaton identical.
      EXPECT_EQ(a.automaton.dump(), b.automaton.dump()) << k.name;
      EXPECT_EQ(serialize(a), serialize(b)) << k.name;
    }
  }
}

TEST(Serialize, ReloadedModuleExecutesIdentically) {
  const auto& k = workload::listing1();
  auto compiled = driver::compile(k.source);
  auto conv = meta_state_convert(compiled.graph, kCost, {});
  Module reloaded =
      deserialize(serialize(Module{conv.graph, conv.automaton}));

  auto prog = codegen::generate(reloaded.automaton, reloaded.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 8;
  auto m_ptr = simd::make_machine(prog, kCost, cfg);
  simd::SimdMachine& m = *m_ptr;
  driver::seed_machine(m, compiled, cfg, 3);
  m.run();
  auto oracle = driver::run_oracle(compiled, cfg, 3);
  for (std::int64_t p = 0; p < cfg.nprocs; ++p)
    EXPECT_EQ(m.peek(p, frontend::Layout::kResultAddr),
              oracle.results[static_cast<std::size_t>(p)]);
}

TEST(Serialize, FloatPayloadsAreBitExact) {
  Module a = module_of(workload::kernel("floatmix").source);
  Module b = deserialize(serialize(a));
  for (const auto& blk : a.graph.blocks)
    for (std::size_t i = 0; i < blk.body.size(); ++i)
      EXPECT_EQ(blk.body[i], b.graph.at(blk.id).body[i]);
}

TEST(Serialize, RejectsMalformedInput) {
  Module good = module_of(workload::listing1().source);
  std::string text = serialize(good);

  EXPECT_THROW(deserialize(""), std::runtime_error);
  EXPECT_THROW(deserialize("bogus 1\n"), std::runtime_error);
  EXPECT_THROW(deserialize("mscmod 99\n"), std::runtime_error);
  // Truncated (no 'end').
  EXPECT_THROW(deserialize(text.substr(0, text.size() / 2)), std::runtime_error);
  // Corrupt a block record's exit kind.
  std::string bad = text;
  auto pos = bad.find("\nblock ");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos + 1, 5, "blork");
  EXPECT_THROW(deserialize(bad), std::runtime_error);
}

TEST(Serialize, RoundTripsFullConfiguration) {
  // barrier_mode, compressed, and the ConvertStats block must all survive
  // a round trip — not just the graph/automaton structure.
  ConvertOptions opts;
  opts.barrier_mode = BarrierMode::PaperPrune;
  opts.time_split = true;
  Module a = module_of(workload::listing3().source, opts);
  ASSERT_EQ(a.automaton.barrier_mode, BarrierMode::PaperPrune);
  Module b = deserialize(serialize(a));
  EXPECT_EQ(b.automaton.barrier_mode, BarrierMode::PaperPrune);
  EXPECT_EQ(b.automaton.compressed, a.automaton.compressed);
  EXPECT_EQ(b.stats.meta_states, a.stats.meta_states);
  EXPECT_EQ(b.stats.arcs, a.stats.arcs);
  EXPECT_EQ(b.stats.reach_calls, a.stats.reach_calls);
  EXPECT_EQ(b.stats.splits_performed, a.stats.splits_performed);
  EXPECT_EQ(b.stats.restarts, a.stats.restarts);
  EXPECT_EQ(b.stats.cache_hits, a.stats.cache_hits);
  EXPECT_EQ(b.stats.cache_misses, a.stats.cache_misses);
  EXPECT_EQ(b.stats.cache_invalidated, a.stats.cache_invalidated);
  EXPECT_EQ(b.stats.threads_used, a.stats.threads_used);
  EXPECT_EQ(b.stats.batches, a.stats.batches);
  // Times are stored at microsecond resolution: stable once round-tripped.
  EXPECT_EQ(serialize(a), serialize(b));
}

TEST(Serialize, RejectsMismatchedVersionWithClearError) {
  Module good = module_of(workload::listing1().source);
  std::string text = serialize(good);
  auto expect_version_error = [&](const std::string& header) {
    std::string old = text;
    old.replace(0, old.find('\n'), header);
    try {
      deserialize(old);
      FAIL() << "expected version rejection for '" << header << "'";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
          << e.what();
    }
  };
  expect_version_error("mscmod 1");   // the pre-stats format
  expect_version_error("mscmod 3");   // from the future
  expect_version_error("mscmod -1");
}

TEST(Serialize, RejectsOutOfRangeConfiguration) {
  Module good = module_of(workload::listing1().source);
  std::string text = serialize(good);
  // Corrupt the automaton record's barrier mode / compressed flag.
  auto corrupt = [&](const std::string& from, const std::string& to) {
    std::string bad = text;
    auto pos = bad.find(from);
    EXPECT_NE(pos, std::string::npos);
    bad.replace(pos, from.size(), to);
    EXPECT_THROW(deserialize(bad), std::runtime_error) << to;
  };
  // "automaton <nstates> <start> <mode> <compressed>"
  std::string line = text.substr(text.find("automaton "));
  line = line.substr(0, line.find('\n'));
  corrupt(line, line.substr(0, line.rfind(' ')) + " 7");  // bad compressed
  std::string head = line.substr(0, line.rfind(' '));
  corrupt(head, head.substr(0, head.rfind(' ')) + " 9");  // bad mode
  // Truncated stats record.
  corrupt("\nstats ", "\nstats 1 2 3\nstats9 ");
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  Module a = module_of(workload::listing1().source);
  std::string text = "# cached conversion\n\n" + serialize(a) + "\n# trailer\n";
  Module b = deserialize(text);
  EXPECT_EQ(a.automaton.dump(), b.automaton.dump());
}
