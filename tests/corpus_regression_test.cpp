// Replays every checked-in reproducer under tests/corpus/ across the full
// differential option matrix (compress × subsume × barrier_mode ×
// time_split × threads × engine): known-tricky shapes keep matching the
// MIMD oracle bit-for-bit, and bugs mscfuzz has found stay fixed — a
// finding manifest that evaluates clean here proves the defect it once
// witnessed no longer exists.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/fuzz/fuzz.hpp"
#include "msc/fuzz/manifest.hpp"

using namespace msc;
namespace fs = std::filesystem;

namespace {

std::vector<std::string> manifest_paths() {
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(MSC_CORPUS_DIR))
    if (entry.path().extension() == ".json")
      paths.push_back(entry.path().string());
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string param_name(const testing::TestParamInfo<std::string>& info) {
  std::string stem = fs::path(info.param).stem().string();
  for (char& c : stem)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return stem;
}

TEST(Corpus, HasTheSeededEntries) {
  EXPECT_GE(manifest_paths().size(), 8u)
      << "tests/corpus/ lost its seeded reproducers";
  // Every source file must be claimed by exactly one manifest.
  for (const auto& entry : fs::directory_iterator(MSC_CORPUS_DIR)) {
    if (entry.path().extension() != ".mimdc") continue;
    fs::path manifest = entry.path();
    manifest.replace_extension(".json");
    EXPECT_TRUE(fs::exists(manifest))
        << entry.path().filename() << " has no manifest";
  }
}

class CorpusTest : public testing::TestWithParam<std::string> {};

TEST_P(CorpusTest, ReplaysCleanAcrossTheMatrix) {
  std::string source;
  fuzz::Manifest m;
  ASSERT_NO_THROW(m = fuzz::load_manifest(GetParam(), &source)) << GetParam();
  SCOPED_TRACE(source);

  // The manifest's expectation about the oracle itself.
  driver::Compiled compiled;
  ASSERT_NO_THROW(compiled = driver::compile(source));
  const fuzz::EvalConfig cfg = m.eval_config();
  mimd::RunConfig rc;
  rc.nprocs = cfg.nprocs;
  rc.initial_active = cfg.initial_active;
  rc.reuse_halted_pes = cfg.reuse_halted_pes;
  if (m.expect == "fault") {
    EXPECT_THROW(driver::run_oracle(compiled, rc, cfg.input_seed),
                 ir::MachineFault);
  } else {
    EXPECT_NO_THROW(driver::run_oracle(compiled, rc, cfg.input_seed));
  }

  // The whole matrix must agree with the oracle (including agreeing on the
  // fault, for expect == "fault" entries — evaluate() checks both sides).
  fuzz::EvalResult ev =
      fuzz::evaluate(source, cfg, fuzz::default_matrix());
  ASSERT_FALSE(ev.skipped) << "oracle could not run " << m.source_file;
  if (ev.finding)
    FAIL() << to_string(ev.finding->kind) << " in "
           << ev.finding->spec.label() << "\n"
           << ev.finding->detail;
}

INSTANTIATE_TEST_SUITE_P(Manifests, CorpusTest,
                         testing::ValuesIn(manifest_paths()), param_name);

}  // namespace
