// The observability layer's own contracts (DESIGN.md §10): the metrics
// registry's typed-name discipline and stable references, Chrome-trace
// JSON validity, the in-repo JSON parser the tooling reads it back with,
// and — the load-bearing one — that per-meta-state profiles sum bit-
// exactly to the run's SimdStats totals and are identical across engines
// for every corpus reproducer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/support/json.hpp"
#include "msc/support/metrics.hpp"
#include "msc/support/str.hpp"
#include "msc/support/trace.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
namespace fs = std::filesystem;

namespace {

ir::CostModel kCost;

// ------------------------------------------------------------------ metrics

TEST(Metrics, CounterGaugeBasics) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter& c = reg.counter("c");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  EXPECT_EQ(&reg.counter("c"), &c) << "same name must yield the same metric";
  telemetry::Gauge& g = reg.gauge("g");
  g.set(7);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
}

TEST(Metrics, HistogramBucketsInclusiveUpperEdges) {
  telemetry::MetricsRegistry reg;
  telemetry::Histogram& h = reg.histogram("h", {10, 100});
  for (std::int64_t v : {0, 10, 11, 100, 101, 5000}) h.record(v);
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.sum(), 0 + 10 + 11 + 100 + 101 + 5000);
  // counts() has one extra overflow bucket past the last edge.
  EXPECT_EQ(h.counts(), (std::vector<std::int64_t>{2, 2, 2}));
}

TEST(Metrics, Pow2Bounds) {
  EXPECT_EQ(telemetry::Histogram::pow2_bounds(4),
            (std::vector<std::int64_t>{1, 2, 4, 8}));
}

TEST(Metrics, TypedNameConflictsThrow) {
  telemetry::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {1}), std::logic_error);
  reg.histogram("h", {1, 2});
  // Same bounds: fine (same object). Different bounds: the bucket layout
  // is part of the metric's identity.
  EXPECT_NO_THROW(reg.histogram("h", {1, 2}));
  EXPECT_THROW(reg.histogram("h", {1, 2, 4}), std::logic_error);
}

TEST(Metrics, ResetZeroesButKeepsReferencesValid) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter& c = reg.counter("c");
  telemetry::Histogram& h = reg.histogram("h", {1});
  c.add(9);
  h.record(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  // The hot-path pattern: cached references survive reset().
  c.add(3);
  h.record(1);
  EXPECT_EQ(c.value(), 3);
  EXPECT_EQ(h.counts(), (std::vector<std::int64_t>{1, 0}));
}

TEST(Metrics, ToJsonIsValidAndEscaped) {
  telemetry::MetricsRegistry reg;
  reg.counter("convert.runs").add(2);
  reg.gauge("weird\n\"name\"").set(1);
  reg.histogram("h", {1, 2}).record(2);
  const std::string out = reg.to_json();
  json::Value doc;
  ASSERT_NO_THROW(doc = json::parse(out)) << out;
  EXPECT_EQ(doc.at("schema").as_int(), 1);
  EXPECT_EQ(doc.at("counters").at("convert.runs").as_int(), 2);
  EXPECT_EQ(doc.at("gauges").at("weird\n\"name\"").as_int(), 1);
  const json::Value& h = doc.at("histograms").at("h");
  EXPECT_EQ(h.at("count").as_int(), 1);
  EXPECT_EQ(h.at("bounds").elems.size(), 2u);
  EXPECT_EQ(h.at("counts").elems.size(), 3u);
}

TEST(Metrics, GlobalRegistryCarriesToolchainMetrics) {
  // One end-to-end pipeline run must land the convert.* and simd.* series
  // that mscc --metrics exposes (exact values depend on prior tests having
  // shared the process-global registry, so assert presence + lower bound).
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  auto compiled = driver::compile(workload::kernel("listing1").source);
  auto conv = core::meta_state_convert(compiled.graph, kCost, {});
  mimd::RunConfig rc;
  rc.nprocs = 4;
  driver::run_simd(compiled, conv, rc, 1, kCost, {});
  json::Value doc = json::parse(reg.to_json());
  EXPECT_GE(doc.at("counters").at("convert.runs").as_int(), 1);
  EXPECT_GE(doc.at("counters").at("simd.runs").as_int(), 1);
  EXPECT_GE(doc.at("counters").at("simd.control_cycles").as_int(), 1);
  EXPECT_GE(doc.at("histograms").at("convert.meta_states").at("count")
                .as_int(), 1);
}

// --------------------------------------------------------- labeled metrics

TEST(LabeledMetrics, SeriesAreKeyedByTenantAndOp) {
  telemetry::LabeledRegistry reg;
  reg.counter("requests", "alice", "run").add(3);
  reg.counter("requests", "alice", "compile").add();
  reg.counter("requests", "bob", "run").add(2);
  EXPECT_EQ(&reg.counter("requests", "alice", "run"),
            &reg.counter("requests", "alice", "run"))
      << "same key must yield the same series";
  EXPECT_EQ(reg.counter("requests", "alice", "run").value(), 3);
  EXPECT_EQ(reg.counter("requests", "bob", "run").value(), 2);
  EXPECT_EQ(reg.folded_samples(), 0);
}

TEST(LabeledMetrics, CardinalityOverflowFoldsIntoOther) {
  // Bound 4: the first four tenants get their own series, every later
  // tenant folds into the shared "other" tenant (per op), and each fold
  // is counted — the daemon survives a tenant-id cardinality attack with
  // bounded memory and an explicit signal that folding happened.
  telemetry::LabeledRegistry reg(4);
  for (int t = 0; t < 10; ++t)
    reg.counter("requests", cat("tenant", t), "run").add();
  EXPECT_EQ(reg.folded_samples(), 6);
  EXPECT_EQ(reg.counter("requests",
                        telemetry::LabeledRegistry::kOverflowTenant, "run")
                .value(),
            6);
  // Existing keys keep resolving to their own series past the bound.
  reg.counter("requests", "tenant0", "run").add();
  EXPECT_EQ(reg.counter("requests", "tenant0", "run").value(), 2);

  // The fold is per family: a fresh family starts with fresh capacity.
  reg.counter("errors.internal", "tenant9", "run").add();
  EXPECT_EQ(reg.counter("errors.internal", "tenant9", "run").value(), 1);

  json::Value doc = json::parse(reg.to_json());
  EXPECT_EQ(doc.at("schema").as_int(), 2);
  EXPECT_EQ(doc.at("folded_samples").as_int(), 6);
  const json::Value& series = doc.at("families").at("requests").at("series");
  // 4 real tenants + "other"; series are sorted by (tenant, op).
  ASSERT_EQ(series.elems.size(), 5u);
  std::string prev;
  bool other_seen = false;
  for (const json::Value& s : series.elems) {
    const std::string key =
        cat(s.at("tenant").as_string(), "\x1f", s.at("op").as_string());
    EXPECT_GT(key, prev) << "series must be sorted for deterministic JSON";
    prev = key;
    if (s.at("tenant").as_string() ==
        telemetry::LabeledRegistry::kOverflowTenant) {
      other_seen = true;
      EXPECT_EQ(s.at("value").as_int(), 6);
    }
  }
  EXPECT_TRUE(other_seen);
}

TEST(LabeledMetrics, HistogramFamiliesCarryBoundsAndFoldToo) {
  telemetry::LabeledRegistry reg(2);
  const std::vector<std::int64_t> bounds{10, 100};
  reg.histogram("latency_us", bounds, "a", "run").record(5);
  reg.histogram("latency_us", bounds, "b", "run").record(50);
  reg.histogram("latency_us", bounds, "c", "run").record(5000);  // folds
  EXPECT_EQ(reg.folded_samples(), 1);

  json::Value doc = json::parse(reg.to_json());
  const json::Value& fam = doc.at("families").at("latency_us");
  EXPECT_EQ(fam.at("kind").as_string(), "histogram");
  ASSERT_EQ(fam.at("bounds").elems.size(), 2u);
  std::int64_t count = 0;
  for (const json::Value& s : fam.at("series").elems) {
    count += s.at("count").as_int();
    EXPECT_EQ(s.at("counts").elems.size(), 3u);  // + overflow bucket
  }
  EXPECT_EQ(count, 3);
}

TEST(LabeledMetrics, KindAndBoundsConflictsThrow) {
  telemetry::LabeledRegistry reg;
  reg.counter("f", "a", "run");
  EXPECT_THROW(reg.gauge("f", "a", "run"), std::logic_error);
  EXPECT_THROW(reg.histogram("f", {1}, "a", "run"), std::logic_error);
  reg.histogram("h", {1, 2}, "a", "run");
  EXPECT_NO_THROW(reg.histogram("h", {1, 2}, "b", "run"));
  EXPECT_THROW(reg.histogram("h", {1, 2, 4}, "b", "run"), std::logic_error);
}

TEST(LabeledMetrics, ResetZeroesButKeepsReferencesValid) {
  telemetry::LabeledRegistry reg(2);
  telemetry::Counter& c = reg.counter("requests", "a", "run");
  c.add(5);
  reg.counter("requests", "b", "run").add();
  reg.counter("requests", "z", "run").add();  // folds
  EXPECT_EQ(reg.folded_samples(), 1);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(reg.folded_samples(), 0);
  c.add(2);
  EXPECT_EQ(reg.counter("requests", "a", "run").value(), 2);
}

TEST(LabeledMetrics, ExtraMembersLandAtTheTop) {
  telemetry::LabeledRegistry reg;
  reg.counter("requests", "a", "run").add();
  json::Value doc =
      json::parse(reg.to_json("\"uptime_micros\": 42, \"x\": {\"y\": 1}"));
  EXPECT_EQ(doc.at("uptime_micros").as_int(), 42);
  EXPECT_EQ(doc.at("x").at("y").as_int(), 1);
  EXPECT_EQ(doc.at("schema").as_int(), 2);
}

// -------------------------------------------------------------------- trace

TEST(Trace, ToJsonIsValidChromeTraceJson) {
  telemetry::TraceSink sink;
  sink.name_process(telemetry::TraceSink::kSimdPid, "simd machine");
  sink.complete("ms3", "meta-state", telemetry::TraceSink::kSimdPid, 0, 10, 5,
                {{"enabled_pes", 8}}, {{"engine", "fast"}});
  sink.instant("note \"quoted\"\n", "cat", telemetry::TraceSink::kToolchainPid,
               0, 1);
  {
    telemetry::ScopedSpan span(&sink, "pass", "toolchain");
    span.arg("meta_states_after", 12);
  }
  EXPECT_EQ(sink.size(), 4u);

  json::Value doc;
  ASSERT_NO_THROW(doc = json::parse(sink.to_json())) << sink.to_json();
  const json::Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.elems.size(), 4u);
  EXPECT_EQ(events.elems[0].at("ph").as_string(), "M");
  const json::Value& x = events.elems[1];
  EXPECT_EQ(x.at("ph").as_string(), "X");
  EXPECT_EQ(x.at("pid").as_int(), telemetry::TraceSink::kSimdPid);
  EXPECT_EQ(x.at("ts").as_int(), 10);
  EXPECT_EQ(x.at("dur").as_int(), 5);
  EXPECT_EQ(x.at("args").at("enabled_pes").as_int(), 8);
  EXPECT_EQ(x.at("args").at("engine").as_string(), "fast");
  EXPECT_EQ(events.elems[2].at("name").as_string(), "note \"quoted\"\n");
  EXPECT_EQ(events.elems[3].at("args").at("meta_states_after").as_int(), 12);
}

TEST(Trace, NullSinkSpanIsANoop) {
  telemetry::ScopedSpan span(nullptr, "n", "c");
  span.arg("k", 1);  // must not crash
}

// -------------------------------------------------------------- json parser

TEST(Json, ParsesScalarsAndNesting) {
  json::Value v = json::parse(
      " {\"a\": [1, -2.5, true, false, null], \"b\": {\"c\": \"s\"}} ");
  ASSERT_TRUE(v.is_object());
  const json::Value& a = v.at("a");
  ASSERT_EQ(a.elems.size(), 5u);
  EXPECT_EQ(a.elems[0].as_int(), 1);
  EXPECT_TRUE(a.elems[0].is_exact_int);
  EXPECT_DOUBLE_EQ(a.elems[1].as_double(), -2.5);
  EXPECT_FALSE(a.elems[1].is_exact_int);
  EXPECT_TRUE(a.elems[2].b);
  EXPECT_TRUE(a.elems[4].is_null());
  EXPECT_EQ(v.at("b").at("c").as_string(), "s");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), json::ParseError);
}

TEST(Json, Int64RoundTripsBitExactly) {
  json::Value v = json::parse("[9223372036854775807, -9223372036854775808]");
  ASSERT_TRUE(v.elems[0].is_exact_int);
  EXPECT_EQ(v.elems[0].as_int(), INT64_MAX);
  ASSERT_TRUE(v.elems[1].is_exact_int);
  EXPECT_EQ(v.elems[1].as_int(), INT64_MIN);
}

TEST(Json, StringEscapesAndSurrogates) {
  json::Value v = json::parse(
      "\"a\\\"b\\\\c\\/\\n\\t\\u0041\\u00e9\\ud83d\\ude00\"");
  EXPECT_EQ(v.as_string(),
            "a\"b\\c/\n\tA\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse(""), json::ParseError);
  EXPECT_THROW(json::parse("{\"a\": 1,}"), json::ParseError);
  EXPECT_THROW(json::parse("[1] trailing"), json::ParseError);
  EXPECT_THROW(json::parse("\"unterminated"), json::ParseError);
  EXPECT_THROW(json::parse("\"bad \\q escape\""), json::ParseError);
  EXPECT_THROW(json::parse("{\"a\" 1}"), json::ParseError);
  EXPECT_THROW(json::parse("[1 2]"), json::ParseError);
}

TEST(Json, SizeLimitIsAnExactBoundary) {
  // A hostile client must not be able to make the daemon buffer-parse an
  // arbitrarily large document (mscd passes its frame limit here).
  const std::string doc = "[1, 2, 3]";
  json::ParseLimits limits;
  limits.max_bytes = doc.size();
  EXPECT_NO_THROW(json::parse(doc, limits));  // exactly at the limit
  limits.max_bytes = doc.size() - 1;
  EXPECT_THROW(json::parse(doc, limits), json::ParseError);
  limits.max_bytes = 0;  // 0 = unlimited (the default-overload behavior)
  EXPECT_NO_THROW(json::parse(doc, limits));
}

TEST(Json, DepthLimitIsAnExactBoundary) {
  auto nested = [](int depth) {
    std::string s;
    for (int i = 0; i < depth; ++i) s += "[";
    s += "1";
    for (int i = 0; i < depth; ++i) s += "]";
    return s;
  };
  json::ParseLimits limits;
  limits.max_depth = 8;
  EXPECT_NO_THROW(json::parse(nested(8), limits));  // exactly at the limit
  EXPECT_THROW(json::parse(nested(9), limits), json::ParseError);
  // Mixed nesting counts objects too.
  EXPECT_THROW(json::parse("{\"a\": [[[[[[[[1]]]]]]]]}", limits),
               json::ParseError);
  EXPECT_NO_THROW(json::parse("{\"a\": [[[[[[[1]]]]]]]}", limits));

  // The default limit still accepts every document the toolchain emits,
  // but a pathological 10k-deep bomb dies instead of overflowing the
  // parser's recursion.
  EXPECT_THROW(json::parse(nested(10'000)), json::ParseError);
}

// --------------------------------------------------- corpus profile sweep

std::vector<std::string> corpus_sources() {
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(MSC_CORPUS_DIR))
    if (entry.path().extension() == ".mimdc")
      paths.push_back(entry.path().string());
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ObservabilityCorpus, ProfileSumsMatchRunTotalsOnBothEngines) {
  // For every corpus reproducer that converts and runs cleanly, enable
  // profiling on both engines and demand (a) the per-state sums equal the
  // run totals field-for-field — the invariant mscprof's tables rest on —
  // and (b) the two engines' profiles are bit-identical. Sources that
  // fault or explode under the default conversion are skipped (their
  // differential coverage lives in corpus_regression_test).
  int checked = 0;
  for (const std::string& path : corpus_sources()) {
    SCOPED_TRACE(path);
    const std::string source = slurp(path);
    ASSERT_FALSE(source.empty()) << path;

    driver::Compiled compiled;
    core::ConvertResult conv;
    codegen::SimdProgram prog;
    try {
      compiled = driver::compile(source);
      conv = core::meta_state_convert(compiled.graph, kCost, {});
      prog = codegen::generate(conv.automaton, conv.graph, kCost, {});
    } catch (const std::exception&) {
      continue;  // explosion/compile limits: not this test's concern
    }
    mimd::RunConfig config;
    config.nprocs = 8;
    config.initial_active = 2;  // spawn corpus entries need free PEs

    std::vector<simd::StateProfile> profiles[2];
    bool ran_both = true;
    for (int e = 0; e < 2; ++e) {
      config.engine =
          e == 0 ? mimd::SimdEngine::Fast : mimd::SimdEngine::Reference;
      auto m = simd::make_machine(prog, kCost, config);
      driver::seed_machine(*m, compiled, config, 1);
      m->enable_profiling();
      try {
        m->run();
      } catch (const ir::MachineFault&) {
        ran_both = false;  // expect-fault reproducers (spawn exhaustion)
        break;
      }

      const simd::SimdStats& s = m->stats();
      simd::StateProfile sum;
      std::int64_t visits = 0, enabled_sum_hist = 0;
      for (const simd::StateProfile& p : m->profile()) {
        visits += p.visits;
        sum.control_cycles += p.control_cycles;
        sum.busy_pe_cycles += p.busy_pe_cycles;
        sum.offered_pe_cycles += p.offered_pe_cycles;
        sum.global_ors += p.global_ors;
        sum.guard_switches += p.guard_switches;
        sum.router_ops += p.router_ops;
        sum.spawns += p.spawns;
        std::int64_t hist_visits = 0;
        for (std::int64_t b : p.enabled_hist) hist_visits += b;
        EXPECT_EQ(hist_visits, p.visits) << "enabled_hist loses visits";
        enabled_sum_hist += hist_visits;
      }
      EXPECT_EQ(visits, s.meta_transitions);
      EXPECT_EQ(enabled_sum_hist, s.meta_transitions);
      EXPECT_EQ(sum.control_cycles, s.control_cycles);
      EXPECT_EQ(sum.busy_pe_cycles, s.busy_pe_cycles);
      EXPECT_EQ(sum.offered_pe_cycles, s.offered_pe_cycles);
      EXPECT_EQ(sum.global_ors, s.global_ors);
      EXPECT_EQ(sum.guard_switches, s.guard_switches);
      EXPECT_EQ(sum.router_ops, s.router_ops);
      EXPECT_EQ(sum.spawns, s.spawns);
      profiles[e] = m->profile();

      // The JSON view of the same machine parses and its totals agree.
      json::Value doc = json::parse(simd::to_json(*m));
      EXPECT_EQ(doc.at("control_cycles").as_int(), s.control_cycles);
      EXPECT_EQ(doc.at("router_ops").as_int(), s.router_ops);
      const json::Value& prof = doc.at("profile");
      ASSERT_TRUE(prof.is_array());
      std::int64_t json_cycles = 0;
      for (const json::Value& row : prof.elems)
        json_cycles += row.at("control_cycles").as_int();
      EXPECT_EQ(json_cycles, s.control_cycles);
    }
    if (!ran_both) continue;
    EXPECT_TRUE(profiles[0] == profiles[1])
        << "profiles differ between engines";
    ++checked;
  }
  EXPECT_GE(checked, 6) << "corpus sweep silently skipped almost everything";
}

}  // namespace
