// The PassManager contract: pipeline construction errors, per-pass
// telemetry, byte-identity of the pass-based toolchain with the legacy
// direct call chain, adaptive parity across the driver overloads, trace
// emission (and its failure paths), --verify-each pinpointing, and the
// dme cleanup pass.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "msc/core/dme.hpp"
#include "msc/core/subsume.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/pass/pass.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using pass::ManagerOptions;
using pass::PassManager;
using pass::PipelineError;

namespace {

const ir::CostModel kCost;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string tmp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

ManagerOptions mo(std::vector<std::string> pipeline,
                  std::vector<std::string> disabled = {}) {
  ManagerOptions o;
  o.pipeline = std::move(pipeline);
  o.disabled = std::move(disabled);
  return o;
}

/// The legacy pre-PassManager toolchain: direct calls with the stage
/// flags folded into ConvertOptions. The default pipeline must reproduce
/// this byte for byte.
core::ConvertResult legacy_convert(const std::string& source,
                                   const core::ConvertOptions& opts) {
  driver::Compiled compiled = driver::compile(source);
  return core::meta_state_convert(compiled.graph, kCost, opts);
}

}  // namespace

// ---------------------------------------------------------- construction

TEST(PassManager, DefaultPipelineIsTheRegisteredDefaults) {
  PassManager pm(ManagerOptions{});
  EXPECT_EQ(pm.names(),
            (std::vector<std::string>{"simplify", "peephole", "convert",
                                      "subsume", "straighten"}));
  EXPECT_TRUE(pm.contains("convert"));
  EXPECT_FALSE(pm.contains("dme"));
}

TEST(PassManager, PrintablePassRegistryCoversEveryStage) {
  bool ir = false, config = false, convert = false, automaton = false,
       codegen = false;
  for (const pass::Pass& p : pass::registered_passes()) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.description.empty()) << p.name;
    EXPECT_TRUE(p.run != nullptr) << p.name;
    ir |= p.stage == pass::Stage::IR;
    config |= p.stage == pass::Stage::Config;
    convert |= p.stage == pass::Stage::Convert;
    automaton |= p.stage == pass::Stage::Automaton;
    codegen |= p.stage == pass::Stage::Codegen;
  }
  EXPECT_TRUE(ir && config && convert && automaton && codegen);
}

TEST(PassManager, RejectsUnknownDuplicateAndEmptyPipelines) {
  EXPECT_THROW(PassManager(mo({"convert", "frobnicate"})),
               PipelineError);
  EXPECT_THROW(PassManager(mo({"convert", "subsume", "subsume"})),
               PipelineError);
  EXPECT_THROW(PassManager(mo({"simplify"}, {"simplify"})),
               PipelineError);  // empty after disabling
  EXPECT_THROW(PassManager(mo({}, {"frobnicate"})), PipelineError);
  try {
    PassManager(mo({"nope"}));
    FAIL() << "unknown pass accepted";
  } catch (const PipelineError& e) {
    // The error lists the registry so the typo is self-diagnosing.
    EXPECT_NE(std::string(e.what()).find("unknown pass 'nope'"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("straighten"), std::string::npos);
  }
}

TEST(PassManager, RejectsInvariantViolatingOrders) {
  // Automaton/codegen passes need a conversion to exist.
  EXPECT_THROW(PassManager(mo({"subsume", "convert"})), PipelineError);
  EXPECT_THROW(PassManager(mo({"straighten"})), PipelineError);
  EXPECT_THROW(PassManager(mo({"codegen", "convert"})), PipelineError);
  // IR and config passes cannot run after conversion.
  EXPECT_THROW(PassManager(mo({"convert", "simplify"})),
               PipelineError);
  EXPECT_THROW(PassManager(mo({"convert", "compress"})),
               PipelineError);
  // A config pass with nothing to configure is meaningless.
  EXPECT_THROW(PassManager(mo({"compress", "simplify"})),
               PipelineError);
  // At most one conversion.
  EXPECT_THROW(PassManager(mo({"convert", "convert"})),
               PipelineError);
  // Valid reorderings construct fine.
  EXPECT_NO_THROW(PassManager(mo({"peephole", "simplify", "convert", "straighten", "dme"})));
}

TEST(PassManager, RegisterPassRejectsDuplicatesAndBrokenPasses) {
  EXPECT_FALSE(pass::register_pass(
      {"convert", "dup", pass::Stage::Convert, false,
       [](pass::PipelineState&, pass::Counters&) {}}));
  EXPECT_FALSE(pass::register_pass({"", "anonymous", pass::Stage::IR, false,
                                    [](pass::PipelineState&, pass::Counters&) {}}));
  EXPECT_FALSE(pass::register_pass({"no-run", "missing fn", pass::Stage::IR,
                                    false, nullptr}));
}

// ------------------------------------------------------- byte identity

TEST(Pipeline, DefaultPipelineMatchesLegacyCallChainByteForByte) {
  // Every conversion mode, over every checked-in kernel shape: the pass
  // pipeline must reproduce the legacy direct call chain exactly.
  struct Mode {
    const char* name;
    core::ConvertOptions opts;
  };
  std::vector<Mode> modes;
  modes.push_back({"base", {}});
  {
    core::ConvertOptions o;
    o.compress = true;
    modes.push_back({"compress", o});
    o.subsume = false;
    modes.push_back({"compress-nosub", o});
  }
  {
    core::ConvertOptions o;
    o.barrier_mode = core::BarrierMode::PaperPrune;
    modes.push_back({"prune", o});
  }
  {
    core::ConvertOptions o;
    o.time_split = true;
    modes.push_back({"split", o});
  }
  const std::vector<std::string> sources = {
      workload::listing1().source, workload::listing3().source,
      workload::listing4().source, workload::branchy_source(4),
      workload::loopy_barrier_source(3)};
  for (const Mode& mode : modes) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      core::ConvertResult legacy;
      try {
        legacy = legacy_convert(sources[i], mode.opts);
      } catch (const CompileError&) {
        // PaperPrune rejections (multi-barrier loopy_barrier_source) must
        // be byte-identical too: the pipeline throws the same error.
        EXPECT_THROW(
            {
              driver::PipelineOptions popts;
              popts.convert = mode.opts;
              driver::convert(sources[i], kCost, popts);
            },
            CompileError)
            << mode.name << " kernel " << i;
        continue;
      }
      driver::PipelineOptions popts;
      popts.convert = mode.opts;
      driver::Converted now = driver::convert(sources[i], kCost, popts);
      EXPECT_EQ(legacy.automaton.dump(), now.conversion.automaton.dump())
          << mode.name << " kernel " << i;
      EXPECT_EQ(legacy.stats.meta_states, now.conversion.stats.meta_states)
          << mode.name << " kernel " << i;
      EXPECT_EQ(legacy.stats.arcs, now.conversion.stats.arcs)
          << mode.name << " kernel " << i;
    }
  }
}

TEST(Pipeline, ConvertOptionsOverloadDelegatesToThePipeline) {
  // Satellite contract: the ConvertOptions overload is the PipelineOptions
  // overload with defaults — same automaton, and it now carries a trace.
  core::ConvertOptions opts;
  opts.compress = true;
  driver::Converted a =
      driver::convert(workload::listing4().source, kCost, opts);
  driver::PipelineOptions popts;
  popts.convert = opts;
  driver::Converted b =
      driver::convert(workload::listing4().source, kCost, popts);
  EXPECT_EQ(a.conversion.automaton.dump(), b.conversion.automaton.dump());
  ASSERT_FALSE(a.trace.passes.empty());
  EXPECT_EQ(a.trace.passes.front().name, "simplify");
  EXPECT_EQ(a.trace.passes.back().name, "straighten");
}

// ------------------------------------------------------ adaptive parity

TEST(Pipeline, AdaptiveMatchesNonAdaptiveWhenNothingExplodes) {
  driver::PipelineOptions plain, adaptive;
  adaptive.adaptive = true;
  driver::Converted a =
      driver::convert(workload::listing1().source, kCost, plain);
  driver::Converted b =
      driver::convert(workload::listing1().source, kCost, adaptive);
  EXPECT_EQ(a.conversion.automaton.dump(), b.conversion.automaton.dump());
  EXPECT_FALSE(b.conversion.automaton.compressed);
}

TEST(Pipeline, AdaptiveFallsBackToCompressionOnExplosion) {
  driver::PipelineOptions popts;
  popts.convert.max_meta_states = 200;
  popts.adaptive = true;
  const std::string big = workload::loopy_source(8);
  driver::Converted conv = driver::convert(big, kCost, popts);
  EXPECT_TRUE(conv.conversion.automaton.compressed);
  // Identical to asking for compression up front.
  driver::PipelineOptions direct;
  direct.convert.max_meta_states = 200;
  direct.convert.compress = true;
  driver::Converted want = driver::convert(big, kCost, direct);
  EXPECT_EQ(conv.conversion.automaton.dump(),
            want.conversion.automaton.dump());
  // Without the adaptive policy the same request must throw.
  driver::PipelineOptions no_fallback;
  no_fallback.convert.max_meta_states = 200;
  EXPECT_THROW(driver::convert(big, kCost, no_fallback), core::ExplosionError);
}

// ----------------------------------------------------------- telemetry

TEST(Pipeline, TraceRecordsEveryPassBoundary) {
  driver::PipelineOptions popts;
  popts.convert.compress = true;
  // listing3 keeps conditional arcs even after compression, so the
  // post-convert arc metric is observable.
  driver::Converted conv =
      driver::convert(workload::listing3().source, kCost, popts);
  const telemetry::PipelineTrace& trace = conv.trace;
  ASSERT_EQ(trace.passes.size(), 6u);  // simplify peephole compress convert
                                       // subsume straighten
  // Metrics are n/a before conversion and populated after it.
  const telemetry::PassRecord& convert = trace.passes[3];
  EXPECT_EQ(convert.name, "convert");
  EXPECT_EQ(convert.before.meta_states, -1);
  EXPECT_GT(convert.after.meta_states, 0);
  EXPECT_GT(convert.after.meta_arcs, 0);
  // The convert pass surfaces its cache counters.
  bool has_cache_counter = false;
  for (const auto& [k, v] : convert.counters)
    has_cache_counter |= k == "cache_misses" && v > 0;
  EXPECT_TRUE(has_cache_counter);
  EXPECT_GE(trace.total_seconds, 0.0);
  // The spliced raw ConvertStats section rides along in the JSON.
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"convert\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"phase_seconds\""), std::string::npos) << json;
}

TEST(Pipeline, PassTimingsFileEmissionAndWriteFailure) {
  const std::string path = tmp_path("pipeline_timings.json");
  driver::PipelineOptions popts;
  popts.pass_timings_path = path;
  driver::convert(workload::listing1().source, kCost, popts);
  const std::string json = read_file(path);
  EXPECT_NE(json.find("\"pipeline\": [\"simplify\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"total_seconds\""), std::string::npos);
  std::remove(path.c_str());

  driver::PipelineOptions bad;
  bad.pass_timings_path = tmp_path("no/such/dir/timings.json");
  EXPECT_THROW(driver::convert(workload::listing1().source, kCost, bad),
               std::runtime_error);
  // The legacy trace-convert path fails the same way.
  driver::PipelineOptions badtrace;
  badtrace.trace_convert_path = tmp_path("no/such/dir/trace.json");
  EXPECT_THROW(driver::convert(workload::listing1().source, kCost, badtrace),
               std::runtime_error);
}

// ---------------------------------------------------------- verify-each

TEST(Pipeline, VerifyEachPinpointsTheCorruptingPass) {
  // Register (once) a pass that mis-wires the automaton, then demand
  // --verify-each name it. This is the whole point of boundary checking:
  // the failure is attributed to the pass that caused it, not discovered
  // three stages later.
  static bool registered = pass::register_pass(
      {"corrupt-for-test", "test-only: point the first arc at a bogus state",
       pass::Stage::Automaton, /*default_on=*/false,
       [](pass::PipelineState& st, pass::Counters&) {
         auto& aut = st.conversion->automaton;
         for (auto& ms : aut.states)
           if (!ms.arcs.empty()) {
             ms.arcs[0].second = static_cast<core::MetaId>(aut.states.size() + 7);
             return;
           }
       }});
  ASSERT_TRUE(registered);

  driver::PipelineOptions popts;
  popts.pipeline = {"simplify", "peephole", "convert", "corrupt-for-test",
                    "straighten"};
  popts.verify_each = true;
  try {
    driver::convert(workload::listing1().source, kCost, popts);
    FAIL() << "verify-each missed the corruption";
  } catch (const PipelineError& e) {
    EXPECT_NE(std::string(e.what()).find("after pass 'corrupt-for-test'"),
              std::string::npos)
        << e.what();
  }
  // Without verification the corruption sails through undetected (that's
  // the bug class --verify-each exists for). End the pipeline at the
  // corrupting pass: downstream passes would index the bogus state id.
  popts.verify_each = false;
  popts.pipeline = {"simplify", "peephole", "convert", "corrupt-for-test"};
  driver::Converted sailed;
  EXPECT_NO_THROW(sailed =
                      driver::convert(workload::listing1().source, kCost, popts));
  EXPECT_FALSE(
      sailed.conversion.automaton.validate(sailed.conversion.graph).empty());
}

TEST(Pipeline, VerifyEachAcceptsEveryDefaultMode) {
  for (bool compress : {false, true}) {
    driver::PipelineOptions popts;
    popts.convert.compress = compress;
    popts.convert.time_split = !compress;
    popts.verify_each = true;
    EXPECT_NO_THROW(driver::convert(workload::listing4().source, kCost, popts))
        << (compress ? "compress" : "split");
  }
}

// ------------------------------------------------------------- the dme pass

TEST(Pipeline, DmeIsANoOpOnFreshConverterOutput) {
  // The converter only creates reachable states and never duplicates an
  // (APC, target) arc, so dme must find nothing to do — and therefore
  // cannot perturb the default pipeline.
  for (bool compress : {false, true}) {
    driver::PipelineOptions with, without;
    with.convert.compress = compress;
    without.convert.compress = compress;
    with.pipeline = driver::resolve_pipeline(with);
    with.pipeline.push_back("dme");
    driver::Converted a =
        driver::convert(workload::listing4().source, kCost, with);
    driver::Converted b =
        driver::convert(workload::listing4().source, kCost, without);
    EXPECT_EQ(a.conversion.automaton.dump(), b.conversion.automaton.dump());
    const telemetry::PassRecord& dme = a.trace.passes.back();
    ASSERT_EQ(dme.name, "dme");
    for (const auto& [k, v] : dme.counters) EXPECT_EQ(v, 0) << k;
  }
}

TEST(Pipeline, DmeRemovesUnreachableStatesAndDuplicateArcs) {
  driver::Converted conv = driver::convert(
      workload::listing1().source, kCost, driver::PipelineOptions{});
  core::MetaAutomaton aut = conv.conversion.automaton;
  const std::size_t before = aut.num_states();
  // Graft an unreachable state and a duplicate arc.
  core::MetaState orphan = aut.states[1];
  orphan.arcs.clear();
  aut.states.push_back(orphan);
  ASSERT_FALSE(aut.states[0].arcs.empty());
  aut.states[0].arcs.push_back(aut.states[0].arcs[0]);
  core::DmeResult r = core::eliminate_dead_states(aut);
  EXPECT_EQ(r.states_removed, 1u);
  EXPECT_EQ(r.arcs_removed, 1u);
  EXPECT_EQ(aut.num_states(), before);
  EXPECT_EQ(aut.dump(), conv.conversion.automaton.dump());
}

// ----------------------------------------------------- pipeline shaping

TEST(Pipeline, DisablingSubsumeKeepsSubsetStates) {
  driver::PipelineOptions with, without;
  with.convert.compress = true;
  without.convert.compress = true;
  without.disabled = {"subsume"};
  driver::Converted a =
      driver::convert(workload::listing4().source, kCost, with);
  driver::Converted b =
      driver::convert(workload::listing4().source, kCost, without);
  EXPECT_LT(a.conversion.automaton.num_states(),
            b.conversion.automaton.num_states());
}

TEST(Pipeline, CodegenPassProducesTheProgram) {
  driver::PipelineOptions popts;
  popts.pipeline = {"simplify", "peephole", "convert", "subsume", "straighten",
                    "codegen"};
  driver::Converted conv =
      driver::convert(workload::listing4().source, kCost, popts);
  ASSERT_TRUE(conv.prog.has_value());
  EXPECT_EQ(conv.prog->states.size(), conv.conversion.automaton.num_states());
  // Without the codegen pass no program materializes.
  driver::Converted bare = driver::convert(workload::listing4().source, kCost,
                                           driver::PipelineOptions{});
  EXPECT_FALSE(bare.prog.has_value());
}

TEST(Pipeline, RunConversionPipelineRequiresAConvertPass) {
  driver::Compiled compiled = driver::compile(workload::listing1().source);
  EXPECT_THROW(pass::run_conversion_pipeline(compiled.graph, kCost,
                                             {"simplify"}, {}),
               PipelineError);
  core::ConvertResult conv = pass::run_conversion_pipeline(
      compiled.graph, kCost, {"convert", "subsume", "straighten"}, {});
  EXPECT_EQ(conv.automaton.num_states(), 8u);
}
