#include <gtest/gtest.h>

#include "msc/frontend/parser.hpp"
#include "msc/frontend/sema.hpp"

using namespace msc;
using namespace msc::frontend;

namespace {

struct Analyzed {
  std::unique_ptr<Program> program;
  Layout layout;
  Diagnostics diags;
};

Analyzed analyze_src(const std::string& src) {
  Analyzed a;
  a.program = parse_mimdc(src);
  a.layout = analyze(*a.program, a.diags);
  return a;
}

void expect_rejected(const std::string& src, const std::string& needle) {
  try {
    analyze_src(src);
    FAIL() << "expected rejection: " << needle << "\n" << src;
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

}  // namespace

TEST(Sema, RequiresMain) {
  expect_rejected("int f() { return 1; }", "no main");
  expect_rejected("float main() { return 1.0; }", "main must return int");
  expect_rejected("int main(int a) { return a; }", "no parameters");
}

TEST(Sema, UndeclaredVariable) {
  expect_rejected("int main() { return zz; }", "undeclared variable 'zz'");
}

TEST(Sema, Redeclaration) {
  expect_rejected("int main() { int a; int a; }", "redeclaration");
  expect_rejected("poly int g; poly float g; int main() { return 0; }",
                  "redeclaration");
  expect_rejected("int f() { return 1; } int f() { return 2; } "
                  "int main() { return 0; }",
                  "redefinition");
}

TEST(Sema, ShadowingInNestedScopeAllowed) {
  auto a = analyze_src("int main() { int a; a = 1; { int a; a = 2; } return a; }");
  EXPECT_FALSE(a.diags.has_errors());
}

TEST(Sema, TypeRules) {
  expect_rejected("int main() { float f; return f % 2; }", "must be int");
  expect_rejected("int main() { float f; return f & 1; }", "must be int");
  expect_rejected("int main() { float f; return ~f; }", "must be int");
  expect_rejected("int main() { int a[3]; return a[1.5]; }", "must be int");
  // int/float mix is fine in arithmetic and assignment (implicit casts).
  auto ok = analyze_src("int main() { float f; f = 1; int i; i = f + 2; return i; }");
  EXPECT_FALSE(ok.diags.has_errors());
}

TEST(Sema, ArrayRules) {
  expect_rejected("int main() { int s; return s[0]; }", "not an array");
  expect_rejected("int main() { int a[3]; int b[3]; a = b; return 0; }",
                  "whole array");
  expect_rejected("int main() { int a[3]; return a + 1; }", "whole array");
}

TEST(Sema, ParallelSubscriptRules) {
  // mono base is rejected: a parallel subscript names another PE's copy.
  expect_rejected("mono int m; int main() { return m[[1]]; }",
                  "requires a poly variable");
  expect_rejected("int main() { int a[3]; return a[[1]]; }",
                  "needs an element");
  auto ok = analyze_src("int main() { int y; int a[2]; return y[[0]] + a[1][[2]]; }");
  EXPECT_FALSE(ok.diags.has_errors());
}

TEST(Sema, CallChecking) {
  expect_rejected("int main() { return g(); }", "undeclared function");
  expect_rejected("int f(int a) { return a; } int main() { return f(); }",
                  "expects 1 argument");
  expect_rejected("void v() { return 3; } int main() { v(); return 0; }",
                  "void function cannot return a value");
  expect_rejected("int f() { return; } int main() { return f(); }",
                  "must return a value");
}

TEST(Sema, PolyToMonoStoreWarns) {
  auto a = analyze_src("mono int m; int main() { m = procid(); return m; }");
  EXPECT_FALSE(a.diags.has_errors());
  ASSERT_FALSE(a.diags.messages().empty());
  EXPECT_NE(a.diags.messages()[0].find("broadcasts"), std::string::npos);
}

TEST(Sema, PolyPropagation) {
  auto a = analyze_src(
      "mono int m; poly int p; int main() { return m + p; }");
  const auto* ret = static_cast<const ReturnStmt*>(
      a.program->find_func("main")->body->stmts[0].get());
  EXPECT_TRUE(ret->value->poly);  // mono + poly → poly
  auto b = analyze_src("mono int m; int main() { return m + nprocs(); }");
  const auto* ret2 = static_cast<const ReturnStmt*>(
      b.program->find_func("main")->body->stmts[0].get());
  EXPECT_FALSE(ret2->value->poly);  // all-mono expression stays mono
}

TEST(Sema, LayoutSeparatesSegments) {
  auto a = analyze_src(
      "mono int m1; mono int m2[4]; poly int p1; poly float p2[3];"
      "int main() { return 0; }");
  const auto* m1 = a.layout.find("m1");
  const auto* m2 = a.layout.find("m2");
  const auto* p1 = a.layout.find("p1");
  const auto* p2 = a.layout.find("p2");
  ASSERT_TRUE(m1 && m2 && p1 && p2);
  EXPECT_EQ(m1->storage, Storage::MonoStatic);
  EXPECT_EQ(m1->addr, 0);
  EXPECT_EQ(m2->addr, 1);
  EXPECT_EQ(m2->size, 4);
  EXPECT_EQ(a.layout.mono_size, 5);
  EXPECT_EQ(p1->storage, Storage::PolyStatic);
  EXPECT_EQ(p1->addr, Layout::kFirstStatic);
  EXPECT_EQ(p2->addr, Layout::kFirstStatic + 1);
  EXPECT_GE(a.layout.frame_stack_base, p2->addr + 3);
}

TEST(Sema, RecursionDetection) {
  auto direct = analyze_src(
      "int f(int n) { if (n) { return f(n - 1); } return 0; }"
      "int main() { return f(3); }");
  EXPECT_TRUE(direct.program->find_func("f")->recursive);
  // A function that merely calls another is not recursive.
  auto plain = analyze_src(
      "int leaf(int n) { return n + 1; }"
      "int caller(int n) { return leaf(n) + leaf(n + 1); }"
      "int main() { return caller(1); }");
  EXPECT_FALSE(plain.program->find_func("leaf")->recursive);
  EXPECT_FALSE(plain.program->find_func("caller")->recursive);
}

TEST(Sema, MutualRecursionViaSCC) {
  // f and g call each other; h is plain. Parse order: callee after caller
  // is fine because sema resolves against the whole program.
  auto a = analyze_src(
      "int f(int n) { return g(n - 1); }"
      "int g(int n) { if (n > 0) { return f(n); } return 0; }"
      "int h(int n) { return n + 1; }"
      "int main() { return f(3) + h(1); }");
  EXPECT_TRUE(a.program->find_func("f")->recursive);
  EXPECT_TRUE(a.program->find_func("g")->recursive);
  EXPECT_FALSE(a.program->find_func("h")->recursive);
}

TEST(Sema, RecursiveFramesLayout) {
  auto a = analyze_src(
      "int f(int n, int m) { int local; local = n + m; "
      "if (n) { return f(n - 1, m); } return local; }"
      "int main() { return f(2, 3); }");
  const FuncDecl* f = a.program->find_func("f");
  ASSERT_TRUE(f->recursive);
  // Frame: [saved FP, ret-site id, n, m, local].
  EXPECT_EQ(f->frame_size, 5);
  EXPECT_EQ(f->params[0]->storage, Storage::Frame);
  EXPECT_EQ(f->params[0]->addr, 2);
  EXPECT_EQ(f->params[1]->addr, 3);
  ASSERT_EQ(f->frame_vars.size(), 3u);
  EXPECT_EQ(f->frame_vars[2]->name, "local");
  EXPECT_EQ(f->frame_vars[2]->addr, 4);
  EXPECT_GE(f->retval_addr, Layout::kFirstStatic);
}

TEST(Sema, NonRecursiveLocalsAreStatic) {
  auto a = analyze_src(
      "int f(int n) { int t; t = n * 2; return t; }"
      "int main() { return f(4); }");
  const FuncDecl* f = a.program->find_func("f");
  EXPECT_FALSE(f->recursive);
  EXPECT_EQ(f->params[0]->storage, Storage::PolyStatic);
  EXPECT_EQ(f->frame_size, 0);
}
