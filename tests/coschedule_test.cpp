// Co-scheduler semantics (DESIGN.md §12): per-program attribution must be
// exact — each program's SimdStats/StateProfile/visits are identical to a
// standalone run and sum bit-exactly to the machine-level totals across
// every policy, seed, engine, and quantum; the whole run is a pure
// function of (programs, policy, seed, quantum); and on occupancy-
// shedding mixes greedy co-scheduling beats the best sequential order on
// machine utilization (the T-COSCHED property bench_kernels gates).
#include <gtest/gtest.h>

#include <memory>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/kernels/verified.hpp"
#include "msc/simd/coschedule.hpp"

using namespace msc;

namespace {

driver::PipelineOptions codegen_pipeline() {
  driver::PipelineOptions popts;
  popts.pipeline = driver::resolve_pipeline(popts);
  popts.pipeline.push_back("codegen");
  return popts;
}

/// Build a CoScheduler over verified-kernel specs, mirroring
/// mscc --coschedule: one partition per program, seeded inputs, optional
/// profiling. Keeps the Converted programs alive for the machines.
struct CoHarness {
  ir::CostModel cost;  // machines keep a reference; must outlive them
  std::vector<std::unique_ptr<driver::Converted>> keep;
  std::vector<kernels::VerifiedCase> cases;
  std::vector<mimd::RunConfig> configs;
  simd::CoScheduler cs;

  CoHarness(const std::vector<std::string>& specs, mimd::SimdEngine engine,
            bool profiling, std::uint64_t input_seed = 1) {
    for (const std::string& spec : specs) {
      kernels::VerifiedParams params;
      params.input_seed = input_seed;
      kernels::VerifiedCase c = kernels::parse_case(spec, params);
      auto conv = std::make_unique<driver::Converted>(
          driver::convert(c.source, cost, codegen_pipeline()));
      mimd::RunConfig config = c.config;
      config.engine = engine;
      auto m = simd::make_machine(*conv->prog, cost, config);
      driver::seed_machine(*m, conv->compiled, config, input_seed);
      if (profiling) m->enable_profiling();
      cs.add_program(spec, std::move(m));
      keep.push_back(std::move(conv));
      cases.push_back(std::move(c));
      configs.push_back(config);
    }
  }
};

/// The same program run standalone (machine.run()) — the attribution
/// baseline co-scheduling must not perturb.
simd::SimdStats standalone_stats(const std::string& spec,
                                 mimd::SimdEngine engine,
                                 std::vector<std::int64_t>* visits_out) {
  ir::CostModel cost;
  kernels::VerifiedParams params;
  params.input_seed = 1;
  const kernels::VerifiedCase c = kernels::parse_case(spec, params);
  auto conv = driver::convert(c.source, cost, codegen_pipeline());
  mimd::RunConfig config = c.config;
  config.engine = engine;
  auto m = simd::make_machine(*conv.prog, cost, config);
  driver::seed_machine(*m, conv.compiled, config, 1);
  m->run();
  if (visits_out) *visits_out = m->state_visits();
  return m->stats();
}

void expect_stats_sum(const simd::CoResult& r) {
  simd::SimdStats sum;
  std::int64_t held = 0, idle = 0;
  for (const simd::CoProgramResult& p : r.programs) {
    sum.control_cycles += p.stats.control_cycles;
    sum.busy_pe_cycles += p.stats.busy_pe_cycles;
    sum.offered_pe_cycles += p.stats.offered_pe_cycles;
    sum.meta_transitions += p.stats.meta_transitions;
    sum.global_ors += p.stats.global_ors;
    sum.guard_switches += p.stats.guard_switches;
    sum.spawns += p.stats.spawns;
    sum.rescue_transitions += p.stats.rescue_transitions;
    sum.router_ops += p.stats.router_ops;
    held += p.held_pe_cycles;
    idle += p.idle_pe_cycles;
  }
  EXPECT_EQ(sum, r.machine);  // bit-exact, field by field
  EXPECT_EQ(r.elapsed_control_cycles, r.machine.control_cycles);
  EXPECT_EQ(r.held_pe_cycles, held);
  EXPECT_EQ(r.idle_pe_cycles, idle);
}

void expect_profile_sums(const simd::CoProgramResult& p) {
  ASSERT_FALSE(p.profile.empty());
  simd::StateProfile total;
  std::int64_t visits = 0;
  for (const simd::StateProfile& sp : p.profile) {
    visits += sp.visits;
    total.control_cycles += sp.control_cycles;
    total.busy_pe_cycles += sp.busy_pe_cycles;
    total.offered_pe_cycles += sp.offered_pe_cycles;
    total.global_ors += sp.global_ors;
    total.guard_switches += sp.guard_switches;
    total.router_ops += sp.router_ops;
    total.spawns += sp.spawns;
  }
  EXPECT_EQ(visits, p.steps);
  EXPECT_EQ(total.control_cycles, p.stats.control_cycles);
  EXPECT_EQ(total.busy_pe_cycles, p.stats.busy_pe_cycles);
  EXPECT_EQ(total.offered_pe_cycles, p.stats.offered_pe_cycles);
  EXPECT_EQ(total.global_ors, p.stats.global_ors);
  EXPECT_EQ(total.guard_switches, p.stats.guard_switches);
  EXPECT_EQ(total.router_ops, p.stats.router_ops);
  EXPECT_EQ(total.spawns, p.stats.spawns);
}

const std::vector<std::string> kMix = {"reduce@65", "workqueue@64", "scan@16"};

// Satellite: per-program StateProfile visit and cycle totals sum
// bit-exactly to the machine-level SimdStats across seeds and policies.
TEST(CoScheduleTest, AccountingSumsBitExactly) {
  for (const auto policy :
       {simd::CoPolicy::Sequential, simd::CoPolicy::RoundRobin,
        simd::CoPolicy::GreedyOccupancy}) {
    for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
      CoHarness h(kMix, mimd::SimdEngine::Fast, /*profiling=*/true);
      simd::CoOptions co;
      co.policy = policy;
      co.seed = seed;
      const simd::CoResult r = h.cs.run(co);
      expect_stats_sum(r);
      for (const simd::CoProgramResult& p : r.programs) {
        expect_profile_sums(p);
        std::int64_t visit_sum = 0;
        for (const std::int64_t v : p.visits) visit_sum += v;
        EXPECT_EQ(visit_sum, p.steps);
        EXPECT_EQ(p.held_pe_cycles + p.idle_pe_cycles >= 0, true);
        EXPECT_LE(p.completion_cycle, r.elapsed_control_cycles);
      }
    }
  }
}

// Preemption must not perturb execution: a co-scheduled program's stats
// and visits are identical to its standalone run on every engine.
TEST(CoScheduleTest, AttributionMatchesStandaloneRun) {
  for (const auto engine :
       {mimd::SimdEngine::Fast, mimd::SimdEngine::Reference,
        mimd::SimdEngine::Codegen}) {
    CoHarness h(kMix, engine, /*profiling=*/false);
    simd::CoOptions co;
    co.policy = simd::CoPolicy::RoundRobin;
    co.quantum = 3;
    const simd::CoResult r = h.cs.run(co);
    for (std::size_t i = 0; i < kMix.size(); ++i) {
      std::vector<std::int64_t> visits;
      const simd::SimdStats alone = standalone_stats(kMix[i], engine, &visits);
      EXPECT_EQ(r.programs[i].stats, alone) << kMix[i];
      EXPECT_EQ(r.programs[i].visits, visits) << kMix[i];
    }
  }
}

// Every co-scheduled program still meets its host-side ground truth.
TEST(CoScheduleTest, GroundTruthUnderCoscheduling) {
  CoHarness h(kMix, mimd::SimdEngine::Codegen, /*profiling=*/false);
  simd::CoOptions co;
  co.policy = simd::CoPolicy::GreedyOccupancy;
  h.cs.run(co);
  for (std::size_t i = 0; i < kMix.size(); ++i) {
    const auto obs =
        driver::observe_simd(h.cs.machine(i), h.keep[i]->compiled, h.configs[i]);
    EXPECT_EQ(kernels::check(h.cases[i], obs), "") << kMix[i];
  }
}

// The run is a pure function of (programs, policy, seed, quantum): two
// identical schedulers render byte-identical documents; engines agree
// bit-exactly on everything the document contains.
TEST(CoScheduleTest, DeterministicAndEngineIndependent) {
  const auto render = [](mimd::SimdEngine engine) {
    CoHarness h(kMix, engine, /*profiling=*/true);
    simd::CoOptions co;
    co.policy = simd::CoPolicy::GreedyOccupancy;
    co.seed = 42;
    return simd::to_json(h.cs.run(co));
  };
  const std::string a = render(mimd::SimdEngine::Fast);
  EXPECT_EQ(a, render(mimd::SimdEngine::Fast));
  // The engine name and the resolved host ISA appear inside each embedded
  // run document; both are legitimately engine-dependent (the reference
  // engine always reports scalar), so strip them before comparing.
  const auto neutral = [](std::string s) {
    for (const char* e : {"\"fast\"", "\"reference\"", "\"codegen\""}) {
      std::size_t pos;
      while ((pos = s.find(e)) != std::string::npos)
        s.replace(pos, std::string(e).size(), "\"E\"");
    }
    for (const char* line : {"\"isa\": ", "\"isa_lane_width\": "}) {
      std::size_t pos = 0;
      while ((pos = s.find(line, pos)) != std::string::npos) {
        const std::size_t from = pos + std::string(line).size();
        const std::size_t to = s.find_first_of(",\n", from);
        s.replace(from, to - from, "X");
        pos = from;
      }
    }
    return s;
  };
  EXPECT_EQ(neutral(a), neutral(render(mimd::SimdEngine::Reference)));
  EXPECT_EQ(neutral(a), neutral(render(mimd::SimdEngine::Codegen)));
}

TEST(CoScheduleTest, ExplicitOrderAndErrorHandling) {
  {
    CoHarness h({"reduce@16", "scan@16"}, mimd::SimdEngine::Fast, false);
    simd::CoOptions co;
    co.policy = simd::CoPolicy::Sequential;
    co.order = {1, 0};
    const simd::CoResult r = h.cs.run(co);
    // Sequential in explicit order: program 1 finishes before program 0
    // starts accruing anything but idle.
    EXPECT_EQ(r.programs[1].idle_pe_cycles, 0);
    EXPECT_GT(r.programs[0].idle_pe_cycles, 0);
    EXPECT_THROW(h.cs.run(co), std::logic_error);  // re-run refused
  }
  {
    CoHarness h({"reduce@16", "scan@16"}, mimd::SimdEngine::Fast, false);
    simd::CoOptions co;
    co.order = {0, 0};
    EXPECT_THROW(h.cs.run(co), std::invalid_argument);
    co.order = {0, 2};
    EXPECT_THROW(h.cs.run(co), std::invalid_argument);
    co.order.clear();
    co.quantum = 0;
    EXPECT_THROW(h.cs.run(co), std::invalid_argument);
  }
  simd::CoScheduler empty;
  EXPECT_THROW(empty.run(simd::CoOptions{}), std::logic_error);
  EXPECT_THROW(simd::parse_copolicy("nope"), std::invalid_argument);
  EXPECT_EQ(std::string(simd::copolicy_name(simd::CoPolicy::GreedyOccupancy)),
            "greedy");
}

// The MASIM payoff, pinned as a property: on a mix of two occupancy-
// shedding reductions, greedy co-scheduling beats BOTH sequential orders
// on machine utilization (bench_kernels gates the same property with
// numbers in T-COSCHED).
TEST(CoScheduleTest, GreedyBeatsBestSequentialOnSheddingMix) {
  const std::vector<std::string> mix = {"reduce@65", "reduce@64"};
  const auto run_util = [&](simd::CoPolicy policy,
                            std::vector<std::size_t> order) {
    CoHarness h(mix, mimd::SimdEngine::Fast, false);
    simd::CoOptions co;
    co.policy = policy;
    co.order = std::move(order);
    return h.cs.run(co).machine_utilization();
  };
  const double seq01 = run_util(simd::CoPolicy::Sequential, {0, 1});
  const double seq10 = run_util(simd::CoPolicy::Sequential, {1, 0});
  const double greedy = run_util(simd::CoPolicy::GreedyOccupancy, {0, 1});
  EXPECT_GT(greedy, std::max(seq01, seq10) * 1.05)
      << "greedy=" << greedy << " seq01=" << seq01 << " seq10=" << seq10;
}

}  // namespace
