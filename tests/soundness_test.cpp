// Deeper soundness properties from DESIGN.md:
//  - invariant 4 (compression soundness): every base-reachable occupancy is
//    contained in some compressed meta state;
//  - the multi-barrier analysis behind the two §2.6 modes: TrackOccupancy
//    stays exact when two distinct barrier states are occupied at once,
//    while the paper's pruning rule is rejected outright (a compile error
//    pointing at the second barrier — the occupancies it can reach are
//    ones conversion never enumerates);
//  - machine-level fault behaviour (recursion overflowing the frame stack).
#include <gtest/gtest.h>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/workload/generator.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using namespace msc::core;

namespace {

ir::CostModel kCost;

/// A program where PEs wait at *different* textual barriers concurrently:
/// the unsound corner of the paper's §2.6 pruning rule.
const char* kTwoBarrierSource = R"(poly int x;
int main() {
  poly int r;
  poly int i;
  if (x & 1) {
    r = 10;
    wait;          // barrier state W1 — reached quickly
    r += 1;
  } else {
    r = 20;
    i = (x % 3) + 1;
    do { r += 5; i--; } while (i > 0);   // stagger the W2 arrivals
    wait;          // barrier state W2
    r += 2;
  }
  return r + x;
}
)";

}  // namespace

TEST(CompressionSoundness, BaseOccupanciesContainedInCompressedStates) {
  for (const auto& k : workload::suite()) {
    auto compiled = driver::compile(k.source);
    ConvertOptions base_opts;
    base_opts.max_meta_states = 100000;
    ConvertResult base;
    try {
      base = meta_state_convert(compiled.graph, kCost, base_opts);
    } catch (const ExplosionError&) {
      continue;
    }
    ConvertOptions copts;
    copts.compress = true;
    auto comp = meta_state_convert(compiled.graph, kCost, copts);
    // Invariant 4: each base meta state's members (an exact reachable
    // occupancy) must be ⊆ the members of some compressed state.
    for (const MetaState& bs : base.automaton.states) {
      bool covered = false;
      for (const MetaState& cs : comp.automaton.states)
        covered |= bs.members.is_subset_of(cs.members);
      EXPECT_TRUE(covered) << k.name << ": occupancy "
                           << bs.members.to_string()
                           << " not covered by any compressed state\n"
                           << comp.automaton.dump();
    }
  }
}

TEST(MultiBarrier, GraphHasTwoDistinctBarrierStates) {
  auto compiled = driver::compile(kTwoBarrierSource);
  EXPECT_EQ(compiled.graph.barrier_states().count(), 2u)
      << compiled.graph.dump();
}

TEST(MultiBarrier, TrackOccupancyIsExactWithoutRescues) {
  auto compiled = driver::compile(kTwoBarrierSource);
  ConvertOptions opts;
  opts.barrier_mode = BarrierMode::TrackOccupancy;
  auto conv = meta_state_convert(compiled.graph, kCost, opts);
  mimd::RunConfig cfg;
  cfg.nprocs = 8;
  for (std::uint64_t seed : {1ull, 5ull, 9ull}) {
    simd::SimdStats stats;
    auto oracle = driver::run_oracle(compiled, cfg, seed);
    auto simd = driver::run_simd(compiled, conv, cfg, seed, kCost, {}, &stats);
    EXPECT_TRUE(oracle == simd) << "seed " << seed;
    EXPECT_EQ(stats.rescue_transitions, 0);
  }
}

TEST(MultiBarrier, PaperPruneIsRejectedAtCompileTime) {
  // The paper's rule merges the two waiting populations out of the
  // transition key, so conversion never enumerates the mixed-barrier
  // aggregates the program can reach. That unsoundness used to be papered
  // over by a runtime rescue; it is now a compile error whose location
  // points at the second `wait`.
  auto compiled = driver::compile(kTwoBarrierSource);
  ConvertOptions opts;
  opts.barrier_mode = BarrierMode::PaperPrune;
  try {
    meta_state_convert(compiled.graph, kCost, opts);
    FAIL() << "multi-barrier PaperPrune conversion must throw";
  } catch (const CompileError& e) {
    EXPECT_TRUE(e.loc().valid());
    EXPECT_NE(std::string(e.what()).find("barrier mode 'prune'"),
              std::string::npos)
        << e.what();
  }
}

TEST(MultiBarrier, PaperPruneRejectsSpawnAndCompression) {
  // Same promotion for the other two unsound corners: a dynamic process
  // population (found by mscfuzz — tests/corpus/spawn_child_barrier.mimdc)
  // and §2.5 compression (whose unconditional transitions leave the
  // §3.2.4 masking nothing to key on).
  auto spawny = driver::compile(R"(
int main() {
  spawn { return 2; }
  wait;
  return 1;
}
)");
  ConvertOptions opts;
  opts.barrier_mode = BarrierMode::PaperPrune;
  EXPECT_THROW(meta_state_convert(spawny.graph, kCost, opts), CompileError);

  auto single = driver::compile("int main() { wait; return 1; }");
  ConvertOptions copts;
  copts.barrier_mode = BarrierMode::PaperPrune;
  copts.compress = true;
  EXPECT_THROW(meta_state_convert(single.graph, kCost, copts), CompileError);
  // Without compression the single-barrier static program is fine.
  copts.compress = false;
  EXPECT_NO_THROW(meta_state_convert(single.graph, kCost, copts));
}

TEST(MultiBarrier, CompressedHandlesBothBarriers) {
  auto compiled = driver::compile(kTwoBarrierSource);
  ConvertOptions opts;
  opts.compress = true;
  auto conv = meta_state_convert(compiled.graph, kCost, opts);
  mimd::RunConfig cfg;
  cfg.nprocs = 8;
  auto oracle = driver::run_oracle(compiled, cfg, 3);
  auto simd = driver::run_simd(compiled, conv, cfg, 3, kCost);
  EXPECT_TRUE(oracle == simd);
}

TEST(Faults, DeepRecursionOverflowsFrameStack) {
  // f recurses `x` deep with a sizeable frame; a tiny local memory must
  // fault cleanly rather than corrupt memory.
  const char* src = R"(poly int x;
int f(int n) {
  int a; int b; int c; int d;
  a = n; b = n; c = n; d = n;
  if (n <= 0) { return a; }
  return f(n - 1) + b + c + d;
}
int main() { return f(x); }
)";
  auto compiled = driver::compile(src);
  mimd::RunConfig cfg;
  cfg.nprocs = 1;
  cfg.local_mem_cells = 64;  // room for only a few frames
  mimd::MimdMachine m(compiled.graph, kCost, cfg);
  const auto* slot = compiled.layout.find("x");
  m.poke(0, slot->addr, Value::of_int(1000));
  EXPECT_THROW(m.run(), ir::MachineFault);
}

TEST(Faults, ModerateRecursionFitsAndMatches) {
  const char* src = R"(poly int x;
int f(int n) {
  if (n <= 0) { return 0; }
  return f(n - 1) + n;
}
int main() { return f(x % 10); }
)";
  auto compiled = driver::compile(src);
  auto conv = meta_state_convert(compiled.graph, kCost, {});
  mimd::RunConfig cfg;
  cfg.nprocs = 6;
  auto oracle = driver::run_oracle(compiled, cfg, 2);
  auto simd = driver::run_simd(compiled, conv, cfg, 2, kCost);
  EXPECT_TRUE(oracle == simd);
  // Triangular numbers of x%10.
  for (std::size_t p = 0; p < 6; ++p) {
    std::int64_t x = driver::seed_input(2, static_cast<std::int64_t>(p)) % 10;
    EXPECT_EQ(oracle.results[p].i, x * (x + 1) / 2);
  }
}

TEST(RandomPrograms, WithNewSyntaxStillEquivalent) {
  // The generator now emits compound assignment, ++/--, and guarded break.
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    workload::GenOptions gen;
    gen.stmts = 6;
    gen.max_depth = 3;
    std::string source = workload::generate_program(seed, gen);
    SCOPED_TRACE(source);
    auto compiled = driver::compile(source);
    ConvertOptions opts;
    opts.compress = true;  // compression never explodes
    auto conv = meta_state_convert(compiled.graph, kCost, opts);
    mimd::RunConfig cfg;
    cfg.nprocs = 5;
    auto oracle = driver::run_oracle(compiled, cfg, seed);
    auto simd = driver::run_simd(compiled, conv, cfg, seed, kCost);
    EXPECT_TRUE(oracle == simd)
        << "oracle: " << oracle.to_string() << "\nsimd: " << simd.to_string();
  }
}
