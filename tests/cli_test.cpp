// Integration test for the mscc command-line driver: invokes the built
// binary (path injected by CMake) and checks output/exit codes.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

namespace {

struct CliResult {
  int exit_code;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  std::string cmd = std::string(MSCC_BINARY) + " " + args + " 2>&1";
  std::array<char, 4096> buf{};
  CliResult res;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) {
    res.exit_code = -1;
    return res;
  }
  std::size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    res.output.append(buf.data(), n);
  int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

}  // namespace

TEST(Cli, EmitMetaForKernel) {
  auto r = run_cli("--kernel listing1 --emit meta");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("meta-state automaton: 8 states"), std::string::npos)
      << r.output;
}

TEST(Cli, CompressedEmitsTwoStates) {
  auto r = run_cli("--kernel listing1 --compress --emit meta");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("2 states"), std::string::npos) << r.output;
}

TEST(Cli, EmitMplLooksLikeListing5) {
  auto r = run_cli("--kernel listing4 --emit mpl");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("apc = globalor(pc);"), std::string::npos);
  EXPECT_NE(r.output.find("ms_0:"), std::string::npos);
}

TEST(Cli, EmitDotIsWellFormed) {
  auto r = run_cli("--kernel listing3 --prune --emit dot");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("digraph meta {"), std::string::npos);
  auto g = run_cli("--kernel listing3 --emit dot-mimd");
  EXPECT_NE(g.output.find("digraph mimd {"), std::string::npos);
}

TEST(Cli, RunReportsMatchAndStats) {
  auto r = run_cli("--kernel listing1 --run --nprocs 4 --seed 9 --emit meta");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("match : yes"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("utilization="), std::string::npos);
}

TEST(Cli, CompilesFromFile) {
  std::string path = std::string(MSCC_TMPDIR) + "/cli_test_prog.mimdc";
  {
    std::ofstream out(path);
    out << "int main() { return 7 * 6; }\n";
  }
  auto r = run_cli(path + " --run --nprocs 2 --emit mimd");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("match : yes"), std::string::npos);
  EXPECT_NE(r.output.find("results: 42 42"), std::string::npos) << r.output;
}

TEST(Cli, ReportsCompileErrorsWithCaretAndExit3) {
  std::string path = std::string(MSCC_TMPDIR) + "/cli_test_bad.mimdc";
  {
    std::ofstream out(path);
    out << "int main() { return zz; }\n";
  }
  auto r = run_cli(path);
  EXPECT_EQ(r.exit_code, 3) << r.output;
  // file:line:col: error: message, the source line, a caret under col 21.
  EXPECT_NE(r.output.find(path + ":1:21: error:"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("undeclared"), std::string::npos);
  EXPECT_NE(r.output.find("  int main() { return zz; }"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\n                      ^"), std::string::npos)
      << r.output;
}

TEST(Cli, UsageOnBadArguments) {
  EXPECT_EQ(run_cli("--emit bogus --kernel listing1").exit_code, 2);
  EXPECT_EQ(run_cli("").exit_code, 2);
  EXPECT_EQ(run_cli("--no-such-flag").exit_code, 2);
}

TEST(Cli, AdaptiveFallsBackOnExplosion) {
  auto r = run_cli("--kernel listing1 --adaptive --emit meta");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("8 states"), std::string::npos);
}

TEST(Cli, ProfileEmit) {
  auto r = run_cli("--kernel listing1 --emit profile");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("automaton profile:"), std::string::npos);
  EXPECT_NE(r.output.find("width histogram"), std::string::npos);
}

TEST(Cli, ModuleEmitIsParseable) {
  auto r = run_cli("--kernel listing1 --emit module");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("mscmod 2"), std::string::npos);
  EXPECT_NE(r.output.find("\nstats "), std::string::npos);
  EXPECT_NE(r.output.find("\nend\n"), std::string::npos);
}

TEST(Cli, ThreadedConversionIsBitIdentical) {
  auto serial = run_cli("--kernel oddeven_sort --emit module");
  auto threaded = run_cli("--kernel oddeven_sort --threads 4 --emit module");
  EXPECT_EQ(serial.exit_code, 0);
  EXPECT_EQ(threaded.exit_code, 0);
  // Stats lines differ (thread count, timings); everything structural
  // above them must be byte-identical.
  auto structural = [](const std::string& s) {
    return s.substr(0, s.find("\nstats "));
  };
  EXPECT_EQ(structural(serial.output), structural(threaded.output));
}

TEST(Cli, TraceConvertWritesJson) {
  std::string path = std::string(MSCC_TMPDIR) + "/cli_trace.json";
  auto r = run_cli("--kernel listing1 --split --trace-convert " + path +
                   " --emit meta");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"cache\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"restarts\""), std::string::npos);
  EXPECT_NE(json.find("\"phase_seconds\""), std::string::npos);
}

TEST(Cli, TraceSimdWritesJsonForAllEngines) {
  for (const char* engine : {"fast", "reference", "codegen"}) {
    std::string path =
        std::string(MSCC_TMPDIR) + "/cli_simd_trace_" + engine + ".json";
    auto r = run_cli("--kernel listing1 --emit meta --simd-engine " +
                     std::string(engine) + " --trace-simd " + path);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    // --trace-simd implies --run: the summary must name the engine.
    EXPECT_NE(r.output.find("engine=" + std::string(engine)),
              std::string::npos)
        << r.output;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(json.find("\"engine\": \"" + std::string(engine) + "\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"utilization\""), std::string::npos);
    EXPECT_NE(json.find("\"visits\""), std::string::npos);
  }
}

TEST(Cli, CodegenEngineRunsAndReportsTranslationCache) {
  auto r = run_cli("--kernel listing1 --run --nprocs 4 --seed 9 "
                   "--simd-engine codegen --emit meta");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("match : yes"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("engine=codegen"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("trans-cache: hits="), std::string::npos) << r.output;
}

TEST(Cli, PruneUnsoundCombinationsExitWithCode3) {
  // Satellite of the PaperPrune soundness promotion: the CLI surfaces all
  // three rejected corners as ordinary compile errors (exit 3), with a
  // caret when the construct has a source location.
  std::string spawny = std::string(MSCC_TMPDIR) + "/cli_prune_spawn.mimdc";
  {
    std::ofstream out(spawny);
    out << "int main() {\n  spawn { return 2; }\n  wait;\n  return 1;\n}\n";
  }
  auto s = run_cli(spawny + " --prune --emit meta");
  EXPECT_EQ(s.exit_code, 3) << s.output;
  EXPECT_NE(s.output.find("error:"), std::string::npos) << s.output;
  EXPECT_NE(s.output.find("barrier mode 'prune'"), std::string::npos)
      << s.output;
  EXPECT_NE(s.output.find("^"), std::string::npos) << s.output;

  std::string twob = std::string(MSCC_TMPDIR) + "/cli_prune_twob.mimdc";
  {
    std::ofstream out(twob);
    out << "poly int x;\nint main() {\n  poly int r;\n"
           "  if (x & 1) { r = 1; wait; } else { r = 2; wait; }\n"
           "  return r + x;\n}\n";
  }
  auto t = run_cli(twob + " --prune --emit meta");
  EXPECT_EQ(t.exit_code, 3) << t.output;
  EXPECT_NE(t.output.find("barrier mode 'prune'"), std::string::npos)
      << t.output;

  auto c = run_cli("--kernel listing3 --prune --compress --emit meta");
  EXPECT_EQ(c.exit_code, 3) << c.output;
  EXPECT_NE(c.output.find("compression"), std::string::npos) << c.output;

  // The sound corner still works: one static barrier, no compression.
  auto ok = run_cli("--kernel listing3 --prune --emit meta");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
}

TEST(Cli, BadSimdEngineIsUsageError) {
  auto r = run_cli("--kernel listing1 --simd-engine warp");
  EXPECT_NE(r.exit_code, 0);
}

TEST(Cli, PrintPipelineListsEveryRegisteredPass) {
  auto r = run_cli("--print-pipeline");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find(
                "pipeline: simplify -> peephole -> convert -> subsume -> "
                "straighten"),
            std::string::npos)
      << r.output;
  for (const char* pass : {"simplify", "peephole", "compress", "time-split",
                           "convert", "subsume", "dme", "straighten", "codegen"})
    EXPECT_NE(r.output.find(pass), std::string::npos) << pass;

  // Stage flags and --disable-pass reshape the printed pipeline.
  auto c = run_cli("--print-pipeline --compress --split --disable-pass subsume");
  EXPECT_NE(c.output.find("pipeline: simplify -> peephole -> compress -> "
                          "time-split -> convert -> straighten"),
            std::string::npos)
      << c.output;
}

TEST(Cli, DisablePassChangesEmittedAutomaton) {
  auto with = run_cli("--kernel listing4 --compress --emit meta");
  auto without =
      run_cli("--kernel listing4 --compress --disable-pass subsume --emit meta");
  EXPECT_EQ(with.exit_code, 0);
  EXPECT_EQ(without.exit_code, 0);
  EXPECT_NE(with.output, without.output)
      << "disabling subsume should keep subset meta states";
}

TEST(Cli, PassPipelineSelectsExactPasses) {
  // Same passes as the default, spelled explicitly: identical output.
  auto dflt = run_cli("--kernel listing1 --emit meta");
  auto expl = run_cli(
      "--kernel listing1 "
      "--pass-pipeline simplify,peephole,convert,subsume,straighten "
      "--emit meta");
  EXPECT_EQ(expl.exit_code, 0) << expl.output;
  EXPECT_EQ(dflt.output, expl.output);

  // Unknown names and invariant-violating orders are usage errors (2).
  auto unknown = run_cli("--kernel listing1 --pass-pipeline convert,frobnicate");
  EXPECT_EQ(unknown.exit_code, 2);
  EXPECT_NE(unknown.output.find("unknown pass 'frobnicate'"), std::string::npos)
      << unknown.output;
  auto disorder = run_cli("--kernel listing1 --pass-pipeline straighten,convert");
  EXPECT_EQ(disorder.exit_code, 2);
  EXPECT_NE(disorder.output.find("before any convert pass"), std::string::npos)
      << disorder.output;
}

TEST(Cli, PassTimingsWritesSchemaJson) {
  std::string path = std::string(MSCC_TMPDIR) + "/cli_pass_timings.json";
  auto r = run_cli("--kernel listing1 --compress --verify-each --pass-timings " +
                   path + " --emit meta");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"schema\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pipeline\": [\"simplify\", \"peephole\", "
                      "\"compress\", \"convert\", \"subsume\", "
                      "\"straighten\"]"),
            std::string::npos)
      << json;
  for (const char* key : {"\"passes\"", "\"seconds\"", "\"before\"", "\"after\"",
                          "\"meta_states\"", "\"counters\"", "\"total_seconds\"",
                          "\"convert\""})
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
}

TEST(Cli, ExplosionExitsWithCode4) {
  auto r = run_cli("--kernel oddeven_sort --max-meta-states 3 --emit meta");
  EXPECT_EQ(r.exit_code, 4) << r.output;
  EXPECT_NE(r.output.find("state explosion"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("--adaptive"), std::string::npos) << r.output;
}

TEST(Cli, MachineFaultExitsWithCode5) {
  std::string path = std::string(MSCC_TMPDIR) + "/cli_test_fault.mimdc";
  {
    std::ofstream out(path);
    // Spawn exhaustion: every PE is busy, so spawn faults at runtime on
    // both machines (the oracle faults first).
    out << "int main() { spawn { halt; } return 1; }\n";
  }
  auto r = run_cli(path + " --run --nprocs 2 --active 2 --emit meta");
  EXPECT_EQ(r.exit_code, 5) << r.output;
  EXPECT_NE(r.output.find("machine fault"), std::string::npos) << r.output;
}

TEST(Cli, VerifyEachPassesOnDefaultPipeline) {
  // listing3 terminates under the default run config (listing4's MIMD
  // oracle exhausts the block budget regardless of PE count).
  auto r = run_cli("--kernel listing3 --split --verify-each --run --emit meta");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("match : yes"), std::string::npos) << r.output;
}

TEST(Cli, HelpDocumentsObservabilityFlagsAndExitCodes) {
  auto r = run_cli("--help");
  EXPECT_EQ(r.exit_code, 2);
  for (const char* text :
       {"--profile-simd", "--trace-chrome", "--metrics", "--trace-simd",
        "--trace-convert", "--pass-timings", "mscprof",
        "exit codes: 0 ok, 1 I/O or internal error, 2 usage/pipeline error",
        "3 compile error, 4 state explosion, 5 machine fault"})
    EXPECT_NE(r.output.find(text), std::string::npos) << text;
}

TEST(Cli, ProfileSimdWritesPerStateProfiles) {
  std::string path = std::string(MSCC_TMPDIR) + "/cli_profile_simd.json";
  // --profile-simd implies --run.
  auto r = run_cli("--kernel listing1 --emit meta --nprocs 4 --profile-simd " +
                   path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("match : yes"), std::string::npos) << r.output;
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  for (const char* key : {"\"profile\"", "\"enabled_hist\"", "\"visits\"",
                          "\"router_ops\"", "\"utilization\""})
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
}

TEST(Cli, TraceChromeWritesTraceEventsForPassesAndRun) {
  std::string path = std::string(MSCC_TMPDIR) + "/cli_chrome.json";
  auto r = run_cli("--kernel listing1 --emit meta --run --nprocs 4 "
                   "--trace-chrome " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Toolchain spans (pid 1): passes and conversion phases.
  EXPECT_NE(json.find("\"name\": \"convert\", \"cat\": \"pass\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"cat\": \"convert-phase\""), std::string::npos);
  // Simulated-cycle meta-state events (pid 2) with their stat deltas.
  EXPECT_NE(json.find("\"cat\": \"meta-state\""), std::string::npos);
  EXPECT_NE(json.find("\"enabled_pes\""), std::string::npos);
  // Without --run there must be no pid-2 events, but the file still writes.
  std::string path2 = std::string(MSCC_TMPDIR) + "/cli_chrome_norun.json";
  auto r2 = run_cli("--kernel listing1 --emit meta --trace-chrome " + path2);
  EXPECT_EQ(r2.exit_code, 0) << r2.output;
  std::ifstream in2(path2);
  ASSERT_TRUE(in2.good());
  std::string json2((std::istreambuf_iterator<char>(in2)),
                    std::istreambuf_iterator<char>());
  EXPECT_EQ(json2.find("\"cat\": \"meta-state\""), std::string::npos);
  EXPECT_NE(json2.find("\"cat\": \"pass\""), std::string::npos);
}

TEST(Cli, MetricsWritesGlobalRegistry) {
  std::string path = std::string(MSCC_TMPDIR) + "/cli_metrics.json";
  auto r = run_cli("--kernel listing1 --emit meta --run --nprocs 4 "
                   "--metrics " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  for (const char* key :
       {"\"schema\": 1", "\"counters\"", "\"histograms\"", "\"convert.runs\"",
        "\"simd.runs\"", "\"pass.runs\"", "\"simd.utilization_pct\""})
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
}

TEST(Cli, FlagEqualsValueFormAccepted) {
  auto r = run_cli("--kernel=listing1 --emit=meta --threads=2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("meta-state automaton"), std::string::npos);
}
