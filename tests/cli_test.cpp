// Integration test for the mscc command-line driver: invokes the built
// binary (path injected by CMake) and checks output/exit codes.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

namespace {

struct CliResult {
  int exit_code;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  std::string cmd = std::string(MSCC_BINARY) + " " + args + " 2>&1";
  std::array<char, 4096> buf{};
  CliResult res;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) {
    res.exit_code = -1;
    return res;
  }
  std::size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    res.output.append(buf.data(), n);
  int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

}  // namespace

TEST(Cli, EmitMetaForKernel) {
  auto r = run_cli("--kernel listing1 --emit meta");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("meta-state automaton: 8 states"), std::string::npos)
      << r.output;
}

TEST(Cli, CompressedEmitsTwoStates) {
  auto r = run_cli("--kernel listing1 --compress --emit meta");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("2 states"), std::string::npos) << r.output;
}

TEST(Cli, EmitMplLooksLikeListing5) {
  auto r = run_cli("--kernel listing4 --emit mpl");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("apc = globalor(pc);"), std::string::npos);
  EXPECT_NE(r.output.find("ms_0:"), std::string::npos);
}

TEST(Cli, EmitDotIsWellFormed) {
  auto r = run_cli("--kernel listing3 --prune --emit dot");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("digraph meta {"), std::string::npos);
  auto g = run_cli("--kernel listing3 --emit dot-mimd");
  EXPECT_NE(g.output.find("digraph mimd {"), std::string::npos);
}

TEST(Cli, RunReportsMatchAndStats) {
  auto r = run_cli("--kernel listing1 --run --nprocs 4 --seed 9 --emit meta");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("match : yes"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("utilization="), std::string::npos);
}

TEST(Cli, CompilesFromFile) {
  std::string path = std::string(MSCC_TMPDIR) + "/cli_test_prog.mimdc";
  {
    std::ofstream out(path);
    out << "int main() { return 7 * 6; }\n";
  }
  auto r = run_cli(path + " --run --nprocs 2 --emit mimd");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("match : yes"), std::string::npos);
  EXPECT_NE(r.output.find("results: 42 42"), std::string::npos) << r.output;
}

TEST(Cli, ReportsCompileErrors) {
  std::string path = std::string(MSCC_TMPDIR) + "/cli_test_bad.mimdc";
  {
    std::ofstream out(path);
    out << "int main() { return zz; }\n";
  }
  auto r = run_cli(path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("compile error"), std::string::npos);
  EXPECT_NE(r.output.find("undeclared"), std::string::npos);
}

TEST(Cli, UsageOnBadArguments) {
  EXPECT_EQ(run_cli("--emit bogus --kernel listing1").exit_code, 2);
  EXPECT_EQ(run_cli("").exit_code, 2);
  EXPECT_EQ(run_cli("--no-such-flag").exit_code, 2);
}

TEST(Cli, AdaptiveFallsBackOnExplosion) {
  auto r = run_cli("--kernel listing1 --adaptive --emit meta");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("8 states"), std::string::npos);
}

TEST(Cli, ProfileEmit) {
  auto r = run_cli("--kernel listing1 --emit profile");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("automaton profile:"), std::string::npos);
  EXPECT_NE(r.output.find("width histogram"), std::string::npos);
}

TEST(Cli, ModuleEmitIsParseable) {
  auto r = run_cli("--kernel listing1 --emit module");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("mscmod 2"), std::string::npos);
  EXPECT_NE(r.output.find("\nstats "), std::string::npos);
  EXPECT_NE(r.output.find("\nend\n"), std::string::npos);
}

TEST(Cli, ThreadedConversionIsBitIdentical) {
  auto serial = run_cli("--kernel oddeven_sort --emit module");
  auto threaded = run_cli("--kernel oddeven_sort --threads 4 --emit module");
  EXPECT_EQ(serial.exit_code, 0);
  EXPECT_EQ(threaded.exit_code, 0);
  // Stats lines differ (thread count, timings); everything structural
  // above them must be byte-identical.
  auto structural = [](const std::string& s) {
    return s.substr(0, s.find("\nstats "));
  };
  EXPECT_EQ(structural(serial.output), structural(threaded.output));
}

TEST(Cli, TraceConvertWritesJson) {
  std::string path = std::string(MSCC_TMPDIR) + "/cli_trace.json";
  auto r = run_cli("--kernel listing1 --split --trace-convert " + path +
                   " --emit meta");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"cache\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"restarts\""), std::string::npos);
  EXPECT_NE(json.find("\"phase_seconds\""), std::string::npos);
}

TEST(Cli, TraceSimdWritesJsonForBothEngines) {
  for (const char* engine : {"fast", "reference"}) {
    std::string path =
        std::string(MSCC_TMPDIR) + "/cli_simd_trace_" + engine + ".json";
    auto r = run_cli("--kernel listing1 --emit meta --simd-engine " +
                     std::string(engine) + " --trace-simd " + path);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    // --trace-simd implies --run: the summary must name the engine.
    EXPECT_NE(r.output.find("engine=" + std::string(engine)),
              std::string::npos)
        << r.output;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(json.find("\"engine\": \"" + std::string(engine) + "\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"utilization\""), std::string::npos);
    EXPECT_NE(json.find("\"visits\""), std::string::npos);
  }
}

TEST(Cli, BadSimdEngineIsUsageError) {
  auto r = run_cli("--kernel listing1 --simd-engine warp");
  EXPECT_NE(r.exit_code, 0);
}
