#include <gtest/gtest.h>

#include "msc/codegen/program.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using namespace msc::codegen;

namespace {

ir::CostModel kCost;

SimdProgram gen(const std::string& src, core::ConvertOptions copts = {},
                CodegenOptions gopts = {}) {
  auto c = driver::compile(src);
  auto conv = core::meta_state_convert(c.graph, kCost, copts);
  return generate(conv.automaton, conv.graph, kCost, gopts);
}

const MetaCode* find_by_width(const SimdProgram& p, std::size_t width) {
  for (const MetaCode& mc : p.states)
    if (mc.members.count() == width) return &mc;
  return nullptr;
}

}  // namespace

TEST(Codegen, TransitionKindsMatchArcStructure) {
  SimdProgram p = gen(workload::listing1().source);
  ASSERT_EQ(p.states.size(), 8u);
  int exits = 0, multiway = 0, direct = 0;
  for (const MetaCode& mc : p.states) {
    switch (mc.trans) {
      case TransKind::Exit: ++exits; break;
      case TransKind::Direct: ++direct; break;
      case TransKind::Multiway: ++multiway; break;
    }
  }
  // {F} is terminal; every other Listing-1 meta state carries branches.
  EXPECT_EQ(exits, 1);
  EXPECT_EQ(direct, 0);
  EXPECT_EQ(multiway, 7);
}

TEST(Codegen, SingleExitArcBecomesPlainGoto) {
  // A deterministic straight-line region: Jump-only members → Direct with
  // no global-or (§3.2.2).
  SimdProgram p = gen("int main() { wait; return 1; }");
  bool found_free_goto = false;
  for (const MetaCode& mc : p.states)
    if (mc.trans == TransKind::Direct && !mc.needs_apc) found_free_goto = true;
  EXPECT_TRUE(found_free_goto);
}

TEST(Codegen, GuardsRestrictOpsToTheirThreads) {
  SimdProgram p = gen(workload::listing1().source);
  for (const MetaCode& mc : p.states) {
    for (const SOp& op : mc.code) {
      EXPECT_FALSE(op.guard.empty());
      EXPECT_TRUE(op.guard.is_subset_of(mc.members));
    }
  }
}

TEST(Codegen, EveryAdvancingMemberGetsExactlyOnePcUpdate) {
  for (const auto& kernel : workload::suite()) {
    SimdProgram p = gen(kernel.source);
    for (const MetaCode& mc : p.states) {
      bool all_barrier =
          !p.barriers.empty() && mc.members.is_subset_of(p.barriers);
      for (std::size_t m : mc.members.bits()) {
        int pc_updates = 0;
        for (const SOp& op : mc.code) {
          if (op.kind == SOpKind::Data || !op.guard.test(m)) continue;
          ++pc_updates;
        }
        bool stalled = !all_barrier && p.barriers.test(m);
        EXPECT_EQ(pc_updates, stalled ? 0 : 1)
            << kernel.name << " ms" << mc.id << " member " << m;
      }
    }
  }
}

TEST(Codegen, CsiStatsRecorded) {
  SimdProgram with_csi = gen(workload::listing1().source);
  CodegenOptions no_csi;
  no_csi.use_csi = false;
  SimdProgram without = gen(workload::listing1().source, {}, no_csi);
  std::int64_t induced = 0, serialized = 0, naive = 0;
  for (const MetaCode& mc : with_csi.states) {
    induced += mc.induced_cost;
    serialized += mc.serialized_cost;
    EXPECT_GE(mc.induced_cost, mc.csi_lower_bound);
  }
  for (const MetaCode& mc : without.states) naive += mc.induced_cost;
  EXPECT_LE(induced, serialized);
  EXPECT_EQ(naive, serialized);  // no_csi == serialization
  // Listing 1's B;C and D;E share stack scaffolding: CSI must find some.
  EXPECT_LT(induced, serialized);
}

TEST(Codegen, HashedSwitchesArePerfectOverTheirKeys) {
  SimdProgram p = gen(workload::listing1().source);
  for (const MetaCode& mc : p.states) {
    if (mc.trans != TransKind::Multiway) continue;
    EXPECT_FALSE(mc.sw.is_linear());
    for (std::size_t i = 0; i < mc.case_keys.size(); ++i)
      EXPECT_EQ(mc.sw.lookup(mc.case_keys[i].fold64()),
                static_cast<std::int32_t>(i));
  }
}

TEST(Codegen, TransitionCostOrdering) {
  SimdProgram p = gen(workload::listing1().source);
  const MetaCode* exit_state = nullptr;
  const MetaCode* multi = nullptr;
  for (const MetaCode& mc : p.states) {
    if (mc.trans == TransKind::Exit) exit_state = &mc;
    if (mc.trans == TransKind::Multiway) multi = &mc;
  }
  ASSERT_TRUE(exit_state && multi);
  EXPECT_GT(p.transition_cost(*multi, kCost), p.transition_cost(*exit_state, kCost));
}

TEST(Codegen, CompressedFallbackSet) {
  core::ConvertOptions copts;
  copts.compress = true;
  SimdProgram p = gen(workload::listing1().source, copts);
  ASSERT_EQ(p.states.size(), 2u);
  const MetaCode* wide = find_by_width(p, 3);
  ASSERT_NE(wide, nullptr);
  EXPECT_EQ(wide->trans, TransKind::Direct);
  EXPECT_EQ(wide->direct_target, wide->id);  // self loop
  EXPECT_TRUE(wide->needs_apc);              // must detect all-halted
}

// ------------------------------------------------------------------- emitter

TEST(Emitter, Listing5ShapeForListing4) {
  // The paper's Listing 5: 8 meta states ms_0 .. ms_2_6_9 with BIT()
  // guards, globalor, and hashed switch dispatch.
  auto c = driver::compile(workload::listing4().source);
  auto conv = core::meta_state_convert(c.graph, kCost, {});
  EXPECT_EQ(conv.automaton.num_states(), 8u);
  auto prog = generate(conv.automaton, conv.graph, kCost, {});
  std::string mpl = to_mpl(prog, conv.graph);

  EXPECT_NE(mpl.find("ms_0:"), std::string::npos) << mpl;
  EXPECT_NE(mpl.find("if (pc & BIT("), std::string::npos);
  EXPECT_NE(mpl.find("apc = globalor(pc);"), std::string::npos);
  EXPECT_NE(mpl.find("switch ("), std::string::npos);
  EXPECT_NE(mpl.find("case "), std::string::npos);
  EXPECT_NE(mpl.find("goto ms_"), std::string::npos);
  EXPECT_NE(mpl.find("JumpF("), std::string::npos);
  EXPECT_NE(mpl.find("exit(0);"), std::string::npos);
  // Guard over multiple states, like `pc & (BIT(2) | BIT(9))`.
  EXPECT_NE(mpl.find("| BIT("), std::string::npos);
  // All eight labels present (one per meta state).
  std::size_t labels = 0;
  for (std::size_t pos = 0; (pos = mpl.find("\nms_", pos)) != std::string::npos;
       ++pos)
    ++labels;
  EXPECT_EQ(labels, 8u);  // the header comment line precedes ms_0's newline
}

TEST(Emitter, DirectTransitionRendersGoto) {
  core::ConvertOptions copts;
  copts.compress = true;
  auto c = driver::compile(workload::listing1().source);
  auto conv = core::meta_state_convert(c.graph, kCost, copts);
  auto prog = generate(conv.automaton, conv.graph, kCost, {});
  std::string mpl = to_mpl(prog, conv.graph);
  EXPECT_NE(mpl.find("goto ms_"), std::string::npos);
  EXPECT_NE(mpl.find("if (!globalor(pc != NOWHERE)) exit(0);"),
            std::string::npos);
}
