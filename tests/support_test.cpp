#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "msc/support/bitset.hpp"
#include "msc/support/diag.hpp"
#include "msc/support/dot.hpp"
#include "msc/support/rng.hpp"
#include "msc/support/str.hpp"
#include "msc/support/value.hpp"

using namespace msc;

// ---------------------------------------------------------------- DynBitset

TEST(DynBitset, StartsEmpty) {
  DynBitset b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.first(), DynBitset::npos);
  EXPECT_FALSE(b.test(0));
  EXPECT_FALSE(b.test(1000));
}

TEST(DynBitset, SetTestReset) {
  DynBitset b(10);
  b.set(3);
  b.set(9);
  EXPECT_TRUE(b.test(3));
  EXPECT_TRUE(b.test(9));
  EXPECT_FALSE(b.test(4));
  EXPECT_EQ(b.count(), 2u);
  b.reset(3);
  EXPECT_FALSE(b.test(3));
  EXPECT_EQ(b.count(), 1u);
}

TEST(DynBitset, GrowsOnSet) {
  DynBitset b;
  b.set(200);
  EXPECT_TRUE(b.test(200));
  EXPECT_GE(b.size(), 201u);
  EXPECT_EQ(b.count(), 1u);
}

TEST(DynBitset, IterationAcrossWords) {
  DynBitset b;
  std::vector<std::size_t> want = {0, 1, 63, 64, 65, 127, 128, 300};
  for (std::size_t i : want) b.set(i);
  EXPECT_EQ(b.to_vector(), want);
}

TEST(DynBitset, SetAlgebra) {
  auto a = DynBitset::of({1, 2, 3});
  auto b = DynBitset::of({3, 4});
  EXPECT_EQ((a | b).to_vector(), (std::vector<std::size_t>{1, 2, 3, 4}));
  EXPECT_EQ((a & b).to_vector(), (std::vector<std::size_t>{3}));
  EXPECT_EQ((a - b).to_vector(), (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE((a - a).empty());
}

TEST(DynBitset, AlgebraWithDifferentCapacities) {
  auto small = DynBitset::of({2});
  auto big = DynBitset::of({2, 500});
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  EXPECT_TRUE(small.intersects(big));
  EXPECT_EQ((big - small).to_vector(), (std::vector<std::size_t>{500}));
  // Difference never grows the left side's membership.
  EXPECT_EQ((small - big).count(), 0u);
}

TEST(DynBitset, EqualityIgnoresCapacity) {
  DynBitset a(10), b(1000);
  a.set(5);
  b.set(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(700);
  EXPECT_NE(a, b);
}

TEST(DynBitset, OrderingMatchesNumericValue) {
  EXPECT_LT(DynBitset::of({0}), DynBitset::of({1}));
  EXPECT_LT(DynBitset::of({1}), DynBitset::of({0, 1}));
  EXPECT_LT(DynBitset::of({0, 1}), DynBitset::of({2}));
  EXPECT_LT(DynBitset::of({63}), DynBitset::of({64}));
  EXPECT_FALSE(DynBitset::of({2}) < DynBitset::of({2}));
  // Usable as a std::map key.
  std::map<DynBitset, int> m;
  m[DynBitset::of({1, 2})] = 1;
  m[DynBitset::of({3})] = 2;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(DynBitset::of({1, 2})), 1);
}

TEST(DynBitset, HashUsableInUnorderedSet) {
  std::unordered_set<DynBitset, DynBitsetHash> set;
  set.insert(DynBitset::of({1}));
  set.insert(DynBitset::of({1}));
  set.insert(DynBitset::of({2, 64}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(DynBitset, ToString) {
  EXPECT_EQ(DynBitset::of({2, 6, 9}).to_string(), "{2,6,9}");
  EXPECT_EQ(DynBitset().to_string(), "{}");
}

TEST(DynBitset, Fold64StableAcrossCapacity) {
  auto a = DynBitset::of({3, 70});
  DynBitset b(4096);
  b.set(3);
  b.set(70);
  EXPECT_EQ(a.fold64(), b.fold64());
  EXPECT_NE(a.fold64(), 0u);
}

// -------------------------------------------------------------------- Value

TEST(Value, TaggedEquality) {
  EXPECT_EQ(Value::of_int(3), Value::of_int(3));
  EXPECT_NE(Value::of_int(3), Value::of_float(3.0));  // tag matters
  EXPECT_NE(Value::of_int(3), Value::of_int(4));
  EXPECT_EQ(Value::of_float(0.5), Value::of_float(0.5));
}

TEST(Value, Conversions) {
  EXPECT_EQ(Value::of_float(2.9).as_int(), 2);  // C truncation
  EXPECT_EQ(Value::of_int(-7).as_double(), -7.0);
  EXPECT_TRUE(Value::of_float(0.1).truthy());
  EXPECT_FALSE(Value::of_float(0.0).truthy());
  EXPECT_FALSE(Value::of_int(0).truthy());
}

TEST(Value, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.i, 0);
}

// ---------------------------------------------------------------------- str

TEST(Str, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Str, Padding) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

TEST(Str, FmtDouble) {
  EXPECT_EQ(fmt_double(1.5, 2), "1.50");
  EXPECT_EQ(fmt_double(-0.125, 3), "-0.125");
}

TEST(Str, Cat) { EXPECT_EQ(cat("x=", 42, ", y=", 1.5), "x=42, y=1.5"); }

TEST(Str, JsonEscapeQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(Str, JsonEscapeControlCharacters) {
  // Regression: control characters used to pass through verbatim, making
  // telemetry/trace/metrics output invalid JSON when a pass name or file
  // path carried one. Short forms for the common ones, \uXXXX otherwise.
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string("\b\f")), "\\b\\f");
  EXPECT_EQ(json_escape(std::string("x\x01y", 3)), "x\\u0001y");
  EXPECT_EQ(json_escape(std::string("\x00", 1)), "\\u0000");
  EXPECT_EQ(json_escape(std::string("\x1f")), "\\u001f");
}

TEST(Str, JsonEscapeNonAsciiBytesBecomeEscapes) {
  // Non-ASCII bytes are emitted byte-by-byte as \u00XX so the output is
  // plain-ASCII valid JSON regardless of the input encoding.
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\\u00c3\\u00a9");
  for (char c : json_escape("any\x80\xffthing"))
    EXPECT_TRUE(static_cast<unsigned char>(c) < 0x80) << json_escape("any\x80\xffthing");
}

// ---------------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, RangeBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.next_range(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

// --------------------------------------------------------------------- diag

TEST(Diag, CompileErrorCarriesLocation) {
  CompileError err({4, 7}, "bad thing");
  EXPECT_EQ(std::string(err.what()), "4:7: bad thing");
  EXPECT_EQ(err.loc().line, 4u);
}

TEST(Diag, DiagnosticsCollect) {
  Diagnostics d;
  EXPECT_FALSE(d.has_errors());
  d.warn({1, 1}, "w");
  EXPECT_FALSE(d.has_errors());
  d.error({2, 2}, "e");
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.error_count(), 1u);
  EXPECT_NE(d.joined().find("warning: 1:1: w"), std::string::npos);
  EXPECT_NE(d.joined().find("error: 2:2: e"), std::string::npos);
}

// ---------------------------------------------------------------------- dot

TEST(Dot, EmitsNodesAndEdges) {
  DotWriter w("g");
  w.node("a", "A \"quoted\"\nline");
  w.edge("a", "b", "lbl");
  std::string out = w.finish();
  EXPECT_NE(out.find("digraph g {"), std::string::npos);
  EXPECT_NE(out.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(out.find("\\n"), std::string::npos);
  EXPECT_NE(out.find("\"a\" -> \"b\" [label=\"lbl\"];"), std::string::npos);
  EXPECT_EQ(out.substr(out.size() - 2), "}\n");
}
