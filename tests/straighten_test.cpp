#include <gtest/gtest.h>

#include "msc/core/straighten.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;
using namespace msc::core;

namespace {

ir::CostModel kCost;

ConvertResult convert_unstraightened(const std::string& src,
                                     ConvertOptions opts = {}) {
  opts.straighten = false;
  auto compiled = driver::compile(src);
  return meta_state_convert(compiled.graph, kCost, opts);
}

}  // namespace

TEST(Straighten, PureRelabeling) {
  // Straightening must not change state count, arc count, or member sets.
  auto res = convert_unstraightened(workload::kernel("barrier_pipeline").source);
  MetaAutomaton before = res.automaton;
  MetaAutomaton after = res.automaton;
  straighten(after);
  EXPECT_EQ(before.num_states(), after.num_states());
  EXPECT_EQ(before.num_arcs(), after.num_arcs());
  for (const MetaState& s : before.states) {
    MetaId mapped = after.find(s.members);
    ASSERT_NE(mapped, kNoMeta) << s.members.to_string();
  }
  EXPECT_EQ(after.states[after.start].members,
            before.states[before.start].members);
  EXPECT_TRUE(after.validate(res.graph).empty());
}

TEST(Straighten, ChainsBecomeConsecutive) {
  // barrier_pipeline is a straight chain of phases: after straightening,
  // every single-successor state with an in-degree-1 target must sit
  // right before it.
  auto res = convert_unstraightened(workload::kernel("barrier_pipeline").source);
  std::size_t ft = straighten(res.automaton);
  EXPECT_GT(ft, 0u);
  // Verify the layout property the emitter relies on.
  std::size_t consecutive = 0;
  for (const MetaState& s : res.automaton.states) {
    MetaId next = kNoMeta;
    if (s.unconditional != kNoMeta && s.arcs.empty()) next = s.unconditional;
    if (s.unconditional == kNoMeta && s.arcs.size() == 1) next = s.arcs[0].second;
    if (next == s.id + 1) ++consecutive;
  }
  EXPECT_GE(consecutive, ft);
}

TEST(Straighten, IdempotentOnSecondPass) {
  auto res = convert_unstraightened(workload::listing3().source);
  straighten(res.automaton);
  auto snapshot = res.automaton.dump();
  straighten(res.automaton);
  EXPECT_EQ(res.automaton.dump(), snapshot);
}

TEST(Straighten, FallthroughsSaveCycles) {
  const std::string src = workload::kernel("barrier_pipeline").source;
  auto compiled = driver::compile(src);
  ConvertOptions with, without;
  without.straighten = false;
  auto a = meta_state_convert(compiled.graph, kCost, with);
  auto b = meta_state_convert(compiled.graph, kCost, without);
  mimd::RunConfig cfg;
  cfg.nprocs = 8;
  simd::SimdStats sa, sb;
  auto ra = driver::run_simd(compiled, a, cfg, 3, kCost, {}, &sa);
  auto rb = driver::run_simd(compiled, b, cfg, 3, kCost, {}, &sb);
  EXPECT_TRUE(ra == rb);  // semantics unchanged
  EXPECT_LT(sa.control_cycles, sb.control_cycles);  // gotos became free
}

TEST(Straighten, WholeSuiteStillEquivalent) {
  for (const auto& k : workload::suite()) {
    auto compiled = driver::compile(k.source);
    auto conv = meta_state_convert(compiled.graph, kCost, {});  // straighten on
    mimd::RunConfig cfg;
    cfg.nprocs = 8;
    if (k.name == "spawn_tree") cfg.initial_active = 2;
    auto oracle = driver::run_oracle(compiled, cfg, 11);
    auto simd = driver::run_simd(compiled, conv, cfg, 11, kCost);
    if (k.per_pe_deterministic) {
      EXPECT_TRUE(oracle == simd) << k.name;
    } else {
      EXPECT_TRUE(oracle.equivalent_unordered(simd)) << k.name;
    }
  }
}
