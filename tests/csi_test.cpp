#include <gtest/gtest.h>

#include "msc/csi/csi.hpp"
#include "msc/support/rng.hpp"

using namespace msc;
using namespace msc::csi;
using ir::Instr;
using ir::Opcode;

namespace {

ir::CostModel kCost;

std::vector<Instr> body(std::initializer_list<Instr> instrs) { return instrs; }

CsiResult run(const std::vector<std::vector<Instr>>& bodies,
              Algorithm alg = Algorithm::Best) {
  std::vector<Thread> threads;
  for (std::size_t i = 0; i < bodies.size(); ++i)
    threads.push_back({i, &bodies[i]});
  CsiOptions opts;
  opts.algorithm = alg;
  opts.guard_bits = bodies.size();
  CsiResult res = induce(threads, kCost, opts);
  EXPECT_TRUE(schedule_valid(res.schedule, threads));
  EXPECT_GE(res.induced_cost, res.lower_bound);
  EXPECT_LE(res.induced_cost, res.serialized_cost);
  return res;
}

}  // namespace

TEST(Csi, IdenticalThreadsCollapseToOneCopy) {
  auto b = body({Instr::push_i(1), Instr::push_i(0), Instr::of(Opcode::StL)});
  auto res = run({b, b, b});
  EXPECT_EQ(res.schedule.size(), 3u);
  EXPECT_EQ(res.induced_cost, res.lower_bound);
  EXPECT_EQ(res.shared_ops, 3u);
  for (const GuardedOp& op : res.schedule) EXPECT_EQ(op.guard.count(), 3u);
}

TEST(Csi, DisjointThreadsSerialize) {
  auto a = body({Instr::push_i(1), Instr::of(Opcode::Add)});
  auto b = body({Instr::push_i(2), Instr::of(Opcode::Mul)});
  auto res = run({a, b});
  EXPECT_EQ(res.induced_cost, res.serialized_cost);
  EXPECT_EQ(res.shared_ops, 0u);
}

TEST(Csi, PartialOverlapFactorsSharedPrefix) {
  // Common prefix Push(0) LdL; divergent tails.
  auto a = body({Instr::push_i(0), Instr::of(Opcode::LdL), Instr::push_i(1),
                 Instr::of(Opcode::Add)});
  auto b = body({Instr::push_i(0), Instr::of(Opcode::LdL), Instr::push_i(2),
                 Instr::of(Opcode::Mul)});
  auto res = run({a, b});
  // Shared: Push(0), LdL → 2 ops saved relative to serialization.
  EXPECT_EQ(res.shared_ops, 2u);
  EXPECT_EQ(res.induced_cost,
            res.serialized_cost - (kCost.push + kCost.ld_local));
}

TEST(Csi, InterleavedSharingRespectsThreadOrder) {
  // a = [X, Y], b = [Y, X]: only one op can be shared; SCS length 3.
  auto a = body({Instr::of(Opcode::Add), Instr::of(Opcode::Mul)});
  auto b = body({Instr::of(Opcode::Mul), Instr::of(Opcode::Add)});
  auto res = run({a, b});
  EXPECT_EQ(res.schedule.size(), 3u);
}

TEST(Csi, EmptyThreadsAreFine) {
  std::vector<Instr> empty;
  auto a = body({Instr::push_i(1)});
  std::vector<Thread> threads{{0, &empty}, {1, &a}};
  CsiOptions opts;
  opts.guard_bits = 2;
  auto res = induce(threads, kCost, opts);
  EXPECT_EQ(res.schedule.size(), 1u);
  EXPECT_TRUE(schedule_valid(res.schedule, threads));
}

TEST(Csi, NoThreadsAtAll) {
  auto res = induce({}, kCost, {});
  EXPECT_TRUE(res.schedule.empty());
  EXPECT_EQ(res.serialized_cost, 0);
}

TEST(Csi, SerializeAlgorithmNeverShares) {
  auto b = body({Instr::push_i(1), Instr::push_i(2)});
  auto res = run({b, b}, Algorithm::Serialize);
  EXPECT_EQ(res.shared_ops, 0u);
  EXPECT_EQ(res.induced_cost, res.serialized_cost);
}

TEST(Csi, ImmediatesDistinguishInstructions) {
  // Push(1) and Push(2) are different ops and must not merge.
  auto a = body({Instr::push_i(1)});
  auto b = body({Instr::push_i(2)});
  auto res = run({a, b});
  EXPECT_EQ(res.schedule.size(), 2u);
  // But float 1.0 vs int 1 must also be distinct.
  auto fa = body({Instr::push_f(1.0)});
  auto ia = body({Instr::push_i(1)});
  auto res2 = run({fa, ia});
  EXPECT_EQ(res2.schedule.size(), 2u);
}

TEST(Csi, LowerBoundCountsRepeatsPerThread) {
  // Thread a needs Add twice; b needs it once → at least 2 Adds.
  auto a = body({Instr::of(Opcode::Add), Instr::of(Opcode::Add)});
  auto b = body({Instr::of(Opcode::Add)});
  auto res = run({a, b});
  EXPECT_EQ(res.lower_bound, 2 * kCost.alu);
  EXPECT_EQ(res.induced_cost, 2 * kCost.alu);
}

TEST(Csi, CostWeightedChoicePrefersExpensiveSharing) {
  // Greedy should prefer merging the expensive Div over a cheap Push when
  // both are available fronts.
  auto a = body({Instr::of(Opcode::Div), Instr::push_i(1)});
  auto b = body({Instr::of(Opcode::Div), Instr::push_i(2)});
  auto res = run({a, b}, Algorithm::Greedy);
  ASSERT_FALSE(res.schedule.empty());
  EXPECT_EQ(res.schedule[0].instr.op, Opcode::Div);
  EXPECT_EQ(res.schedule[0].guard.count(), 2u);
}

TEST(Csi, RandomizedSchedulesAlwaysValidAndBounded) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::vector<Instr>> bodies;
    std::size_t nthreads = 2 + rng.next_below(4);
    for (std::size_t t = 0; t < nthreads; ++t) {
      std::vector<Instr> b;
      std::size_t len = rng.next_below(12);
      for (std::size_t i = 0; i < len; ++i) {
        switch (rng.next_below(5)) {
          case 0: b.push_back(Instr::push_i(rng.next_range(0, 3))); break;
          case 1: b.push_back(Instr::of(Opcode::Add)); break;
          case 2: b.push_back(Instr::of(Opcode::LdL)); break;
          case 3: b.push_back(Instr::of(Opcode::Mul)); break;
          default: b.push_back(Instr::of(Opcode::StL)); break;
        }
      }
      bodies.push_back(std::move(b));
    }
    for (Algorithm alg :
         {Algorithm::Greedy, Algorithm::Progressive, Algorithm::Best}) {
      run(bodies, alg);  // run() asserts validity and cost bounds
    }
  }
}

TEST(Csi, ProgressiveIsOptimalForTwoThreads) {
  // For two threads the pairwise DP is exactly optimal: compare against
  // the known SCS of a small instance.
  auto a = body({Instr::push_i(1), Instr::of(Opcode::Add), Instr::push_i(2)});
  auto b = body({Instr::of(Opcode::Add), Instr::push_i(2), Instr::push_i(1)});
  auto res = run({a, b}, Algorithm::Progressive);
  // SCS of [1,A,2] and [A,2,1] is [1,A,2,1] (length 4).
  EXPECT_EQ(res.schedule.size(), 4u);
}

TEST(Csi, OrderSearchNeverWorseThanAnySingleOrder) {
  // Three threads where merge order matters: the long thread shares with
  // each short one in different regions.
  auto a = body({Instr::of(Opcode::Add), Instr::of(Opcode::Mul),
                 Instr::of(Opcode::LdL), Instr::of(Opcode::StL)});
  auto b = body({Instr::of(Opcode::Add), Instr::of(Opcode::Mul)});
  auto c = body({Instr::of(Opcode::LdL), Instr::of(Opcode::StL)});
  auto res = run({b, c, a}, Algorithm::Progressive);
  // Optimal: schedule a's body once, shared with b's prefix and c's
  // suffix → 4 ops.
  EXPECT_EQ(res.schedule.size(), 4u);
  EXPECT_EQ(res.induced_cost, res.lower_bound);
}
