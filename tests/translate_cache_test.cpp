// Unit tests for the translation cache behind the codegen engine
// (DESIGN.md §11): repeat translations of a structurally identical
// program+cost pair must hit (sharing one immutable TransProgram), any
// structural or cost-model change must miss, and the LRU bound must hold.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "msc/codegen/translate.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/simd/machine.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

namespace {

ir::CostModel kCost;

codegen::SimdProgram program_for(const std::string& source,
                                 const ir::CostModel& cost) {
  auto compiled = driver::compile(source);
  auto conv = core::meta_state_convert(compiled.graph, cost, {});
  return codegen::generate(conv.automaton, conv.graph, cost, {});
}

TEST(TranslationCache, RepeatTranslationHits) {
  codegen::translation_cache_clear();
  EXPECT_EQ(codegen::translation_cache_stats().entries, 0u);

  const auto prog = program_for(workload::kernel("listing1").source, kCost);
  auto first = codegen::translate(prog, kCost);
  auto stats = codegen::translation_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 1u);

  // Same structure, different SimdProgram object: still a hit, and the
  // cached translation is shared, not re-derived.
  const auto again = program_for(workload::kernel("listing1").source, kCost);
  auto second = codegen::translate(again, kCost);
  stats = codegen::translation_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(second.get(), first.get());

  // Folding never grows the host stream.
  EXPECT_LE(first->host_ops, first->source_ops);
  EXPECT_GT(first->source_ops, 0u);
}

TEST(TranslationCache, MachinesShareOneTranslationPerAutomaton) {
  codegen::translation_cache_clear();
  const auto prog = program_for(workload::kernel("listing1").source, kCost);
  mimd::RunConfig config;
  config.nprocs = 8;
  config.engine = mimd::SimdEngine::Codegen;
  auto a = simd::make_machine(prog, kCost, config);
  auto b = simd::make_machine(prog, kCost, config);
  const auto stats = codegen::translation_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(TranslationCache, ProgramOrCostChangeInvalidates) {
  codegen::translation_cache_clear();
  const auto prog = program_for(workload::kernel("listing1").source, kCost);
  codegen::translate(prog, kCost);

  // A different program misses.
  const auto other =
      program_for(workload::kernel("oddeven_sort").source, kCost);
  codegen::translate(other, kCost);
  auto stats = codegen::translation_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);

  // Same program under a different cost model misses too: the per-group
  // cycle aggregates bake the cost model in.
  ir::CostModel expensive = kCost;
  expensive.alu += 7;
  codegen::translate(prog, expensive);
  stats = codegen::translation_cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.entries, 3u);

  // And every original entry still hits.
  codegen::translate(prog, kCost);
  codegen::translate(other, kCost);
  codegen::translate(prog, expensive);
  stats = codegen::translation_cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 3u);
}

TEST(TranslationCache, LruEvictsBeyondCapacity) {
  codegen::translation_cache_clear();
  const auto prog = program_for(workload::kernel("listing1").source, kCost);
  // 17 distinct cost models > the 16-entry capacity: the oldest entry
  // (jump=+1) must be evicted and miss on re-translation.
  for (int i = 1; i <= 17; ++i) {
    ir::CostModel c = kCost;
    c.jump += i;
    codegen::translate(prog, c);
  }
  auto stats = codegen::translation_cache_stats();
  EXPECT_EQ(stats.misses, 17u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.entries, 16u);

  ir::CostModel first = kCost;
  first.jump += 1;
  codegen::translate(prog, first);
  EXPECT_EQ(codegen::translation_cache_stats().misses, 18u);

  // The most recent entry survived.
  ir::CostModel last = kCost;
  last.jump += 17;
  codegen::translate(prog, last);
  EXPECT_EQ(codegen::translation_cache_stats().hits, 1u);
}

// The cache is process-global and machines are built from arbitrary
// threads (the fuzzer's differential matrix, co-scheduling harnesses):
// N threads racing to translate the same program must produce exactly one
// translation — 1 miss, N−1 hits, every thread holding the same shared
// TransProgram. Run under MSC_SANITIZE this also proves the lock
// discipline is ASan/TSan-clean.
TEST(TranslationCache, ConcurrentTranslationIsSingleMiss) {
  codegen::translation_cache_clear();
  const auto prog = program_for(workload::kernel("listing1").source, kCost);

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::shared_ptr<const codegen::TransProgram>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load()) {
      }  // spin so all threads hit the cache as close together as possible
      got[static_cast<std::size_t>(t)] = codegen::translate(prog, kCost);
    });
  }
  while (ready.load() < kThreads) {
  }
  go.store(true);
  for (std::thread& th : threads) th.join();

  const auto stats = codegen::translation_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.entries, 1u);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(got[0].get(), got[t].get());
}

}  // namespace
