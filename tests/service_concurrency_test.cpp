// Concurrency battery for mscd (DESIGN.md §13), run under ASan+UBSan in
// CI (MSC_SANITIZE=ON): N workers × M clients hammering one daemon;
// the shared conversion cache is single-miss for identical concurrent
// compiles; per-tenant quotas hold under contention; and shutdown with
// requests in flight answers everything already read, then stops clean.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "msc/service/client.hpp"
#include "msc/service/daemon.hpp"
#include "msc/service/service.hpp"
#include "msc/support/json.hpp"
#include "msc/support/str.hpp"

using namespace msc;

namespace {

std::string socket_path(const std::string& tag) {
  return cat("/tmp/msc_svcc_", tag, "_", ::getpid(), ".sock");
}

/// Reusable start barrier: maximizes the racers' overlap so the
/// single-miss discipline is actually exercised, not just possible.
class Barrier {
 public:
  explicit Barrier(int n) : waiting_for_(n) {}
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--waiting_for_ == 0) {
      cv_.notify_all();
    } else {
      cv_.wait(lock, [this] { return waiting_for_ <= 0; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int waiting_for_;
};

const char* kSourceA =
    "poly int x;\n"
    "int main() { return x * 3 + procid(); }\n";
const char* kSourceB =
    "poly int x;\npoly int y;\n"
    "int main() { y = x + 1; return y * y; }\n";

std::string quoted(const std::string& s) {
  return cat("\"", json_escape(s), "\"");
}

std::string compile_frame(const std::string& source,
                          const std::string& tenant = "anon") {
  return cat("{\"op\": \"compile\", \"tenant\": \"", tenant,
             "\", \"source\": ", quoted(source), "}");
}

}  // namespace

TEST(ServiceConcurrency, IdenticalConcurrentCompilesAreSingleMiss) {
  // In-process Service (no socket noise): 8 racers release together on a
  // barrier, all compiling the same program. Exactly one conversion may
  // run; everyone else must share it — the translate-cache race idiom,
  // one layer up.
  service::Service svc;
  constexpr int kThreads = 8;
  Barrier barrier(kThreads);
  std::vector<std::thread> threads;
  std::vector<std::string> responses(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      responses[static_cast<std::size_t>(t)] =
          svc.handle_line(compile_frame(kSourceA));
    });
  for (std::thread& t : threads) t.join();

  const service::ConversionCache::Stats stats = svc.cache().stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, kThreads - 1);
  EXPECT_EQ(stats.entries, 1);

  // Every response carries the identical automaton; exactly one says
  // "miss".
  int misses = 0;
  std::string automaton;
  for (const std::string& r : responses) {
    json::Value doc = json::parse(r);
    ASSERT_TRUE(doc.at("ok").b) << r;
    if (doc.at("cache").as_string() == "miss") ++misses;
    if (automaton.empty()) automaton = doc.at("automaton").as_string();
    EXPECT_EQ(doc.at("automaton").as_string(), automaton);
  }
  EXPECT_EQ(misses, 1);
}

TEST(ServiceConcurrency, SingleMissHoldsOverTheSocketToo) {
  service::DaemonOptions o;
  o.socket_path = socket_path("singlemiss");
  o.workers = 8;
  service::Daemon daemon(o);
  daemon.start();

  constexpr int kClients = 8;
  Barrier barrier(kClients);
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&] {
      service::Client client;
      client.connect(daemon.socket_path());
      barrier.arrive_and_wait();
      json::Value doc =
          json::parse(client.request(compile_frame(kSourceB), 60'000));
      if (doc.at("ok").b) ++ok;
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);

  service::Client client;
  client.connect(daemon.socket_path());
  json::Value stats = json::parse(client.request("{\"op\": \"stats\"}"));
  const json::Value& cache = stats.at("service").at("cache");
  EXPECT_EQ(cache.at("misses").as_int(), 1);
  EXPECT_EQ(cache.at("hits").as_int(), kClients - 1);

  daemon.request_stop();
  daemon.wait();
}

TEST(ServiceConcurrency, HammerMixedOpsAcrossClients) {
  service::DaemonOptions o;
  o.socket_path = socket_path("hammer");
  o.workers = 4;
  service::Daemon daemon(o);
  daemon.start();

  constexpr int kClients = 6;
  constexpr int kRequests = 20;
  std::atomic<int> responses{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&, c] {
      service::Client client;
      client.connect(daemon.socket_path());
      for (int i = 0; i < kRequests; ++i) {
        std::string frame;
        switch ((c + i) % 4) {
          case 0: frame = compile_frame(kSourceA); break;
          case 1: frame = compile_frame(kSourceB); break;
          case 2:
            frame = cat("{\"op\": \"run\", \"source\": ", quoted(kSourceA),
                        ", \"nprocs\": 4, \"seed\": ", i % 3, "}");
            break;
          case 3: frame = "{\"op\": \"stats\"}"; break;
        }
        json::Value doc = json::parse(client.request(frame, 120'000));
        ++responses;
        if (!doc.at("ok").b) ++failures;
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(responses.load(), kClients * kRequests);
  EXPECT_EQ(failures.load(), 0);

  daemon.request_stop();
  daemon.wait();
}

TEST(ServiceConcurrency, ExplosionQuotaHoldsUnderContention) {
  // Tenant "bomber" hammers an exploding compile from 4 threads while
  // tenant "good" works normally. Once the quota (3 strikes) is hit,
  // bomber's requests are rejected with the typed quota error; good's
  // requests all succeed throughout.
  service::ServiceOptions opts;
  opts.quota.explosion_quota = 3;
  service::Service svc(opts);

  // Branchy barrier loop that explodes under a 1-state ceiling.
  const std::string bomb = cat(
      "{\"op\": \"compile\", \"tenant\": \"bomber\", \"source\": ",
      quoted("poly int x;\nint main() { int i; i = 0; while (i < x) { if (x "
             "> 1) { i = i + 1; } else { i = i + 2; } wait; } return i; "
             "}\n"),
      ", \"max_meta_states\": 1}");

  constexpr int kThreads = 4;
  constexpr int kIters = 6;
  std::atomic<int> explosions{0}, quota_rejections{0}, good_failures{0};
  Barrier barrier(kThreads + 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        json::Value doc = json::parse(svc.handle_line(bomb));
        const std::string kind = doc.at("error").at("kind").as_string();
        if (kind == "explosion") ++explosions;
        else if (kind == "quota-exceeded") ++quota_rejections;
      }
    });
  threads.emplace_back([&] {
    barrier.arrive_and_wait();
    for (int i = 0; i < kIters; ++i) {
      json::Value doc =
          json::parse(svc.handle_line(compile_frame(kSourceA, "good")));
      if (!doc.at("ok").b) ++good_failures;
    }
  });
  for (std::thread& t : threads) t.join();

  // Every bomber request resolved to exactly one of the two kinds, at
  // least quota strikes exploded, and once the counter passed the quota
  // the rejections began — under contention a few extra explosions may
  // land before the counter is read, but rejections must dominate the
  // tail.
  EXPECT_EQ(explosions + quota_rejections, kThreads * kIters);
  EXPECT_GE(explosions.load(), 3);
  EXPECT_GT(quota_rejections.load(), 0);
  EXPECT_EQ(good_failures.load(), 0);

  // Serially, bomber is now always rejected — deterministically.
  json::Value doc = json::parse(svc.handle_line(bomb));
  EXPECT_EQ(doc.at("error").at("kind").as_string(), "quota-exceeded");
}

TEST(ServiceConcurrency, BlockBudgetRejectsOversizedRun) {
  service::ServiceOptions opts;
  opts.quota.block_budget = 10'000;
  service::Service svc(opts);

  // A single run within budget is admitted.
  json::Value ok = json::parse(svc.handle_line(
      cat("{\"op\": \"run\", \"source\": ", quoted(kSourceA),
          ", \"nprocs\": 4, \"max_blocks\": 9000}")));
  EXPECT_TRUE(ok.at("ok").b);

  // Over budget in one request: typed rejection, deterministic.
  json::Value doc = json::parse(svc.handle_line(
      cat("{\"op\": \"run\", \"source\": ", quoted(kSourceA),
          ", \"nprocs\": 4, \"max_blocks\": 20000}")));
  EXPECT_EQ(doc.at("error").at("kind").as_string(), "quota-exceeded");

  // The budget is in-flight, not cumulative: sequential within-budget
  // runs keep working (release() returns the charge).
  for (int i = 0; i < 4; ++i) {
    json::Value again = json::parse(svc.handle_line(
        cat("{\"op\": \"run\", \"source\": ", quoted(kSourceA),
            ", \"nprocs\": 4, \"max_blocks\": 9000}")));
    EXPECT_TRUE(again.at("ok").b) << i;
  }
}

TEST(ServiceConcurrency, PerTenantCountersSumToGlobal) {
  // 8 threads, one tenant each, hammering one in-process Service with a
  // mix of ok and error requests. The single-commit-point design must
  // make every labeled family sum exactly to the matching global — no
  // drops, no double counts, under full contention.
  service::Service svc;
  constexpr int kThreads = 8;
  constexpr int kIters = 25;
  Barrier barrier(kThreads);
  std::atomic<std::int64_t> sent_ok{0}, sent_error{0}, bytes_in{0};
  std::atomic<std::int64_t> compiles{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      const std::string tenant = cat("tenant", t);
      barrier.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        std::string frame;
        switch (i % 4) {
          case 0: frame = compile_frame(kSourceA, tenant); ++compiles; break;
          case 1: frame = compile_frame(kSourceB, tenant); ++compiles; break;
          case 2:
            frame = cat("{\"op\": \"stats\", \"tenant\": \"", tenant, "\"}");
            break;
          case 3:  // typed error: missing source
            frame = cat("{\"op\": \"run\", \"tenant\": \"", tenant, "\"}");
            break;
        }
        bytes_in += static_cast<std::int64_t>(frame.size());
        json::Value doc = json::parse(svc.handle_line(frame));
        if (doc.at("ok").b) ++sent_ok; else ++sent_error;
      }
    });
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(sent_ok + sent_error, kThreads * kIters);

  json::Value m = json::parse(svc.metrics_json());
  EXPECT_EQ(m.at("requests").at("ok").as_int(), sent_ok.load());
  EXPECT_EQ(m.at("requests").at("error").as_int(), sent_error.load());
  EXPECT_EQ(m.at("folded_samples").as_int(), 0);

  const auto family_sum = [&](const char* family,
                              const char* value_key) -> std::int64_t {
    const json::Value* fam = m.at("families").find(family);
    if (!fam) return 0;
    std::int64_t sum = 0;
    for (const json::Value& s : fam->at("series").elems)
      sum += s.at(value_key).as_int();
    return sum;
  };
  // Exact equality, not >=: every request commits exactly once.
  EXPECT_EQ(family_sum("requests", "value"), kThreads * kIters);
  EXPECT_EQ(family_sum("errors.protocol-error", "value"), sent_error.load());
  EXPECT_EQ(family_sum("latency_us", "count"), kThreads * kIters);
  EXPECT_EQ(family_sum("bytes_in", "value"), bytes_in.load());
  // Cache looks: every compile resolves to exactly one of the three
  // states; stats/error requests never touch the cache.
  const std::int64_t looks = family_sum("cache.hit", "value") +
                             family_sum("cache.miss", "value") +
                             family_sum("cache.inflight-wait", "value");
  EXPECT_EQ(looks, compiles.load());

  // Each tenant's own request count is exactly its share.
  const json::Value& requests = m.at("families").at("requests");
  for (int t = 0; t < kThreads; ++t) {
    std::int64_t mine = 0;
    for (const json::Value& s : requests.at("series").elems)
      if (s.at("tenant").as_string() == cat("tenant", t))
        mine += s.at("value").as_int();
    EXPECT_EQ(mine, kIters) << "tenant" << t;
  }
}

TEST(ServiceConcurrency, CleanShutdownWithInflightRequests) {
  service::DaemonOptions o;
  o.socket_path = socket_path("shutdown");
  o.workers = 2;
  service::Daemon daemon(o);
  daemon.start();

  // Several clients pipeline a burst of requests; one more client then
  // requests shutdown. Every frame that reached the daemon must get
  // exactly one response line — ok or a typed shutting-down error — and
  // wait() must join everything without hanging.
  constexpr int kClients = 4;
  constexpr int kBurst = 8;
  std::atomic<int> answered{0};
  std::vector<std::thread> threads;
  Barrier barrier(kClients + 1);
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&] {
      service::Client client;
      client.connect(daemon.socket_path());
      barrier.arrive_and_wait();
      for (int i = 0; i < kBurst; ++i)
        client.send_line(compile_frame(kSourceA));
      std::string line;
      // EOF before kBurst lines is fine — the daemon answers what it
      // read before the sockets closed; what matters is no hang and no
      // torn line.
      while (client.recv_line(line, 10'000)) {
        json::Value doc = json::parse(line);
        ASSERT_TRUE(doc.find("ok") != nullptr);
        ++answered;
      }
    });

  barrier.arrive_and_wait();
  service::Client stopper;
  stopper.connect(daemon.socket_path());
  json::Value doc = json::parse(stopper.request("{\"op\": \"shutdown\"}"));
  EXPECT_TRUE(doc.at("ok").b);
  daemon.wait();
  for (std::thread& t : threads) t.join();
  EXPECT_GT(answered.load(), 0);

  // Fully stopped: the socket is unlinked.
  service::Client again;
  EXPECT_THROW(again.connect(daemon.socket_path(), 100), std::runtime_error);
}
