#include <gtest/gtest.h>

#include "msc/frontend/lexer.hpp"

using namespace msc;
using namespace msc::frontend;

namespace {

std::vector<Tok> kinds(const std::string& src) {
  Lexer lex(src);
  std::vector<Tok> out;
  for (const Token& t : lex.lex_all()) out.push_back(t.kind);
  return out;
}

}  // namespace

TEST(Lexer, EmptyInputYieldsEof) {
  EXPECT_EQ(kinds(""), (std::vector<Tok>{Tok::Eof}));
  EXPECT_EQ(kinds("   \n\t  "), (std::vector<Tok>{Tok::Eof}));
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kinds("int float void mono poly if else while do for return wait "
                  "spawn halt"),
            (std::vector<Tok>{Tok::KwInt, Tok::KwFloat, Tok::KwVoid, Tok::KwMono,
                              Tok::KwPoly, Tok::KwIf, Tok::KwElse, Tok::KwWhile,
                              Tok::KwDo, Tok::KwFor, Tok::KwReturn, Tok::KwWait,
                              Tok::KwSpawn, Tok::KwHalt, Tok::Eof}));
}

TEST(Lexer, IdentifiersVsKeywords) {
  Lexer lex("ifx _if int3 waiting");
  auto toks = lex.lex_all();
  ASSERT_EQ(toks.size(), 5u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(toks[i].kind, Tok::Ident);
  EXPECT_EQ(toks[0].text, "ifx");
  EXPECT_EQ(toks[3].text, "waiting");
}

TEST(Lexer, IntLiterals) {
  Lexer lex("0 42 1234567890123");
  auto toks = lex.lex_all();
  EXPECT_EQ(toks[0].int_val, 0);
  EXPECT_EQ(toks[1].int_val, 42);
  EXPECT_EQ(toks[2].int_val, 1234567890123LL);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(toks[i].kind, Tok::IntLit);
}

TEST(Lexer, FloatLiterals) {
  Lexer lex("1.5 0.25 2e3 1.5e-2");
  auto toks = lex.lex_all();
  EXPECT_EQ(toks[0].kind, Tok::FloatLit);
  EXPECT_DOUBLE_EQ(toks[0].float_val, 1.5);
  EXPECT_DOUBLE_EQ(toks[1].float_val, 0.25);
  EXPECT_DOUBLE_EQ(toks[2].float_val, 2000.0);
  EXPECT_DOUBLE_EQ(toks[3].float_val, 0.015);
}

TEST(Lexer, IntFollowedByIdentStartingWithE) {
  // "2e" with no exponent digits: the 'e' starts an identifier.
  Lexer lex("2elephants");
  auto toks = lex.lex_all();
  EXPECT_EQ(toks[0].kind, Tok::IntLit);
  EXPECT_EQ(toks[0].int_val, 2);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[1].text, "elephants");
}

TEST(Lexer, TwoCharOperators) {
  EXPECT_EQ(kinds("== != <= >= << >> && ||"),
            (std::vector<Tok>{Tok::Eq, Tok::Ne, Tok::Le, Tok::Ge, Tok::Shl,
                              Tok::Shr, Tok::AmpAmp, Tok::PipePipe, Tok::Eof}));
}

TEST(Lexer, OneCharOperatorsDoNotMerge) {
  EXPECT_EQ(kinds("= ! < > & |"),
            (std::vector<Tok>{Tok::Assign, Tok::Bang, Tok::Lt, Tok::Gt, Tok::Amp,
                              Tok::Pipe, Tok::Eof}));
  EXPECT_EQ(kinds("<= ="), (std::vector<Tok>{Tok::Le, Tok::Assign, Tok::Eof}));
}

TEST(Lexer, BracketsStaySingle) {
  // Parallel subscripts are recognized by the parser; the lexer must not
  // fuse "[[" or "]]" — otherwise a[b[1]] would mis-lex.
  EXPECT_EQ(kinds("a[[i]]"),
            (std::vector<Tok>{Tok::Ident, Tok::LBracket, Tok::LBracket,
                              Tok::Ident, Tok::RBracket, Tok::RBracket, Tok::Eof}));
}

TEST(Lexer, Comments) {
  EXPECT_EQ(kinds("a // line comment\n b"),
            (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::Eof}));
  EXPECT_EQ(kinds("a /* block\n comment */ b"),
            (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::Eof}));
  EXPECT_EQ(kinds("a /* nested // inside */ b"),
            (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::Eof}));
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  Lexer lex("a /* never closed");
  EXPECT_THROW(lex.lex_all(), CompileError);
}

TEST(Lexer, UnknownCharacterThrows) {
  Lexer lex("a $ b");
  EXPECT_THROW(lex.lex_all(), CompileError);
}

TEST(Lexer, TracksLineAndColumn) {
  Lexer lex("a\n  b");
  auto toks = lex.lex_all();
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.col, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.col, 3u);
}
