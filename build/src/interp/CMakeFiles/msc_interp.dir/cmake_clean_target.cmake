file(REMOVE_RECURSE
  "libmsc_interp.a"
)
