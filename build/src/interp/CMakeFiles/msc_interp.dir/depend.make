# Empty dependencies file for msc_interp.
# This may be replaced when dependencies are built.
