file(REMOVE_RECURSE
  "CMakeFiles/msc_interp.dir/machine.cpp.o"
  "CMakeFiles/msc_interp.dir/machine.cpp.o.d"
  "libmsc_interp.a"
  "libmsc_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
