file(REMOVE_RECURSE
  "CMakeFiles/msc_mimd.dir/machine.cpp.o"
  "CMakeFiles/msc_mimd.dir/machine.cpp.o.d"
  "libmsc_mimd.a"
  "libmsc_mimd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_mimd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
