# Empty compiler generated dependencies file for msc_mimd.
# This may be replaced when dependencies are built.
