file(REMOVE_RECURSE
  "libmsc_mimd.a"
)
