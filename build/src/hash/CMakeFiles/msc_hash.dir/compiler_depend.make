# Empty compiler generated dependencies file for msc_hash.
# This may be replaced when dependencies are built.
