file(REMOVE_RECURSE
  "CMakeFiles/msc_hash.dir/multiway.cpp.o"
  "CMakeFiles/msc_hash.dir/multiway.cpp.o.d"
  "libmsc_hash.a"
  "libmsc_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
