file(REMOVE_RECURSE
  "libmsc_hash.a"
)
