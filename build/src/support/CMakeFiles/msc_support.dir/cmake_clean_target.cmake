file(REMOVE_RECURSE
  "libmsc_support.a"
)
