# Empty compiler generated dependencies file for msc_support.
# This may be replaced when dependencies are built.
