file(REMOVE_RECURSE
  "CMakeFiles/msc_support.dir/bitset.cpp.o"
  "CMakeFiles/msc_support.dir/bitset.cpp.o.d"
  "CMakeFiles/msc_support.dir/support.cpp.o"
  "CMakeFiles/msc_support.dir/support.cpp.o.d"
  "libmsc_support.a"
  "libmsc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
