file(REMOVE_RECURSE
  "libmsc_frontend.a"
)
