# Empty dependencies file for msc_frontend.
# This may be replaced when dependencies are built.
