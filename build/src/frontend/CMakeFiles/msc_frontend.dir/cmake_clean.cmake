file(REMOVE_RECURSE
  "CMakeFiles/msc_frontend.dir/ast.cpp.o"
  "CMakeFiles/msc_frontend.dir/ast.cpp.o.d"
  "CMakeFiles/msc_frontend.dir/lexer.cpp.o"
  "CMakeFiles/msc_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/msc_frontend.dir/parser.cpp.o"
  "CMakeFiles/msc_frontend.dir/parser.cpp.o.d"
  "CMakeFiles/msc_frontend.dir/sema.cpp.o"
  "CMakeFiles/msc_frontend.dir/sema.cpp.o.d"
  "libmsc_frontend.a"
  "libmsc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
