file(REMOVE_RECURSE
  "CMakeFiles/msc_core.dir/automaton.cpp.o"
  "CMakeFiles/msc_core.dir/automaton.cpp.o.d"
  "CMakeFiles/msc_core.dir/convert.cpp.o"
  "CMakeFiles/msc_core.dir/convert.cpp.o.d"
  "CMakeFiles/msc_core.dir/profile.cpp.o"
  "CMakeFiles/msc_core.dir/profile.cpp.o.d"
  "CMakeFiles/msc_core.dir/serialize.cpp.o"
  "CMakeFiles/msc_core.dir/serialize.cpp.o.d"
  "CMakeFiles/msc_core.dir/straighten.cpp.o"
  "CMakeFiles/msc_core.dir/straighten.cpp.o.d"
  "CMakeFiles/msc_core.dir/time_split.cpp.o"
  "CMakeFiles/msc_core.dir/time_split.cpp.o.d"
  "libmsc_core.a"
  "libmsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
