
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/automaton.cpp" "src/core/CMakeFiles/msc_core.dir/automaton.cpp.o" "gcc" "src/core/CMakeFiles/msc_core.dir/automaton.cpp.o.d"
  "/root/repo/src/core/convert.cpp" "src/core/CMakeFiles/msc_core.dir/convert.cpp.o" "gcc" "src/core/CMakeFiles/msc_core.dir/convert.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/msc_core.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/msc_core.dir/profile.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/msc_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/msc_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/straighten.cpp" "src/core/CMakeFiles/msc_core.dir/straighten.cpp.o" "gcc" "src/core/CMakeFiles/msc_core.dir/straighten.cpp.o.d"
  "/root/repo/src/core/time_split.cpp" "src/core/CMakeFiles/msc_core.dir/time_split.cpp.o" "gcc" "src/core/CMakeFiles/msc_core.dir/time_split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/msc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/msc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
