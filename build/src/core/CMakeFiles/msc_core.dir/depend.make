# Empty dependencies file for msc_core.
# This may be replaced when dependencies are built.
