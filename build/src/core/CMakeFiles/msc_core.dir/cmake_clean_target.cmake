file(REMOVE_RECURSE
  "libmsc_core.a"
)
