
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/emitter.cpp" "src/codegen/CMakeFiles/msc_codegen.dir/emitter.cpp.o" "gcc" "src/codegen/CMakeFiles/msc_codegen.dir/emitter.cpp.o.d"
  "/root/repo/src/codegen/generate.cpp" "src/codegen/CMakeFiles/msc_codegen.dir/generate.cpp.o" "gcc" "src/codegen/CMakeFiles/msc_codegen.dir/generate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/msc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/csi/CMakeFiles/msc_csi.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/msc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/msc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/msc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
