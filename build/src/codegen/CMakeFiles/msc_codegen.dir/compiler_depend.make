# Empty compiler generated dependencies file for msc_codegen.
# This may be replaced when dependencies are built.
