file(REMOVE_RECURSE
  "libmsc_codegen.a"
)
