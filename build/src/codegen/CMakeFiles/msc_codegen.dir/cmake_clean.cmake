file(REMOVE_RECURSE
  "CMakeFiles/msc_codegen.dir/emitter.cpp.o"
  "CMakeFiles/msc_codegen.dir/emitter.cpp.o.d"
  "CMakeFiles/msc_codegen.dir/generate.cpp.o"
  "CMakeFiles/msc_codegen.dir/generate.cpp.o.d"
  "libmsc_codegen.a"
  "libmsc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
