file(REMOVE_RECURSE
  "libmsc_csi.a"
)
