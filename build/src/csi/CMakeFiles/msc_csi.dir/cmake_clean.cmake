file(REMOVE_RECURSE
  "CMakeFiles/msc_csi.dir/csi.cpp.o"
  "CMakeFiles/msc_csi.dir/csi.cpp.o.d"
  "libmsc_csi.a"
  "libmsc_csi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_csi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
