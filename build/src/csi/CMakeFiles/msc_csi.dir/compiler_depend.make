# Empty compiler generated dependencies file for msc_csi.
# This may be replaced when dependencies are built.
