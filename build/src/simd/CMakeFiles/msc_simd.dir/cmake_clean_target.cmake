file(REMOVE_RECURSE
  "libmsc_simd.a"
)
