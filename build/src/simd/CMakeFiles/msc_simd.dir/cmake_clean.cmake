file(REMOVE_RECURSE
  "CMakeFiles/msc_simd.dir/machine.cpp.o"
  "CMakeFiles/msc_simd.dir/machine.cpp.o.d"
  "libmsc_simd.a"
  "libmsc_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
