# Empty dependencies file for msc_simd.
# This may be replaced when dependencies are built.
