file(REMOVE_RECURSE
  "CMakeFiles/msc_workload.dir/generator.cpp.o"
  "CMakeFiles/msc_workload.dir/generator.cpp.o.d"
  "CMakeFiles/msc_workload.dir/kernels.cpp.o"
  "CMakeFiles/msc_workload.dir/kernels.cpp.o.d"
  "libmsc_workload.a"
  "libmsc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
