file(REMOVE_RECURSE
  "libmsc_workload.a"
)
