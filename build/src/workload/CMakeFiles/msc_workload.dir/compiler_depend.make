# Empty compiler generated dependencies file for msc_workload.
# This may be replaced when dependencies are built.
