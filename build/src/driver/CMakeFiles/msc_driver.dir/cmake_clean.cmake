file(REMOVE_RECURSE
  "CMakeFiles/msc_driver.dir/pipeline.cpp.o"
  "CMakeFiles/msc_driver.dir/pipeline.cpp.o.d"
  "CMakeFiles/msc_driver.dir/runner.cpp.o"
  "CMakeFiles/msc_driver.dir/runner.cpp.o.d"
  "libmsc_driver.a"
  "libmsc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
