file(REMOVE_RECURSE
  "libmsc_driver.a"
)
