# Empty compiler generated dependencies file for msc_driver.
# This may be replaced when dependencies are built.
