file(REMOVE_RECURSE
  "CMakeFiles/msc_ir.dir/build.cpp.o"
  "CMakeFiles/msc_ir.dir/build.cpp.o.d"
  "CMakeFiles/msc_ir.dir/cost.cpp.o"
  "CMakeFiles/msc_ir.dir/cost.cpp.o.d"
  "CMakeFiles/msc_ir.dir/exec.cpp.o"
  "CMakeFiles/msc_ir.dir/exec.cpp.o.d"
  "CMakeFiles/msc_ir.dir/graph.cpp.o"
  "CMakeFiles/msc_ir.dir/graph.cpp.o.d"
  "CMakeFiles/msc_ir.dir/passes.cpp.o"
  "CMakeFiles/msc_ir.dir/passes.cpp.o.d"
  "CMakeFiles/msc_ir.dir/peephole.cpp.o"
  "CMakeFiles/msc_ir.dir/peephole.cpp.o.d"
  "libmsc_ir.a"
  "libmsc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
