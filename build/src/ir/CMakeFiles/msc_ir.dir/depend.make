# Empty dependencies file for msc_ir.
# This may be replaced when dependencies are built.
