
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/build.cpp" "src/ir/CMakeFiles/msc_ir.dir/build.cpp.o" "gcc" "src/ir/CMakeFiles/msc_ir.dir/build.cpp.o.d"
  "/root/repo/src/ir/cost.cpp" "src/ir/CMakeFiles/msc_ir.dir/cost.cpp.o" "gcc" "src/ir/CMakeFiles/msc_ir.dir/cost.cpp.o.d"
  "/root/repo/src/ir/exec.cpp" "src/ir/CMakeFiles/msc_ir.dir/exec.cpp.o" "gcc" "src/ir/CMakeFiles/msc_ir.dir/exec.cpp.o.d"
  "/root/repo/src/ir/graph.cpp" "src/ir/CMakeFiles/msc_ir.dir/graph.cpp.o" "gcc" "src/ir/CMakeFiles/msc_ir.dir/graph.cpp.o.d"
  "/root/repo/src/ir/passes.cpp" "src/ir/CMakeFiles/msc_ir.dir/passes.cpp.o" "gcc" "src/ir/CMakeFiles/msc_ir.dir/passes.cpp.o.d"
  "/root/repo/src/ir/peephole.cpp" "src/ir/CMakeFiles/msc_ir.dir/peephole.cpp.o" "gcc" "src/ir/CMakeFiles/msc_ir.dir/peephole.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/msc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/msc_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
