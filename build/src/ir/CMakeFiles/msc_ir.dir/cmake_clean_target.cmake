file(REMOVE_RECURSE
  "libmsc_ir.a"
)
