file(REMOVE_RECURSE
  "CMakeFiles/barrier_reduction.dir/barrier_reduction.cpp.o"
  "CMakeFiles/barrier_reduction.dir/barrier_reduction.cpp.o.d"
  "barrier_reduction"
  "barrier_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
