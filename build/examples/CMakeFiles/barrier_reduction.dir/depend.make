# Empty dependencies file for barrier_reduction.
# This may be replaced when dependencies are built.
