file(REMOVE_RECURSE
  "CMakeFiles/spawn_pool.dir/spawn_pool.cpp.o"
  "CMakeFiles/spawn_pool.dir/spawn_pool.cpp.o.d"
  "spawn_pool"
  "spawn_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spawn_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
