# Empty compiler generated dependencies file for spawn_pool.
# This may be replaced when dependencies are built.
