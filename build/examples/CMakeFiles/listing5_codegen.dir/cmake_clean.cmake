file(REMOVE_RECURSE
  "CMakeFiles/listing5_codegen.dir/listing5_codegen.cpp.o"
  "CMakeFiles/listing5_codegen.dir/listing5_codegen.cpp.o.d"
  "listing5_codegen"
  "listing5_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listing5_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
