# Empty compiler generated dependencies file for listing5_codegen.
# This may be replaced when dependencies are built.
