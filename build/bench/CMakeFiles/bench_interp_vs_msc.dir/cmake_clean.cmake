file(REMOVE_RECURSE
  "CMakeFiles/bench_interp_vs_msc.dir/bench_interp_vs_msc.cpp.o"
  "CMakeFiles/bench_interp_vs_msc.dir/bench_interp_vs_msc.cpp.o.d"
  "bench_interp_vs_msc"
  "bench_interp_vs_msc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interp_vs_msc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
