# Empty dependencies file for bench_interp_vs_msc.
# This may be replaced when dependencies are built.
