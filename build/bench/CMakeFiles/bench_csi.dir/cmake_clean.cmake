file(REMOVE_RECURSE
  "CMakeFiles/bench_csi.dir/bench_csi.cpp.o"
  "CMakeFiles/bench_csi.dir/bench_csi.cpp.o.d"
  "bench_csi"
  "bench_csi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_csi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
