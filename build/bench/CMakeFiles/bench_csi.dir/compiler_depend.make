# Empty compiler generated dependencies file for bench_csi.
# This may be replaced when dependencies are built.
