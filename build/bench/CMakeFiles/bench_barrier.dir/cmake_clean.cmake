file(REMOVE_RECURSE
  "CMakeFiles/bench_barrier.dir/bench_barrier.cpp.o"
  "CMakeFiles/bench_barrier.dir/bench_barrier.cpp.o.d"
  "bench_barrier"
  "bench_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
