# Empty compiler generated dependencies file for bench_state_explosion.
# This may be replaced when dependencies are built.
