file(REMOVE_RECURSE
  "CMakeFiles/bench_state_explosion.dir/bench_state_explosion.cpp.o"
  "CMakeFiles/bench_state_explosion.dir/bench_state_explosion.cpp.o.d"
  "bench_state_explosion"
  "bench_state_explosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_explosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
