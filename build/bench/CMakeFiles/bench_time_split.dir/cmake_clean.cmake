file(REMOVE_RECURSE
  "CMakeFiles/bench_time_split.dir/bench_time_split.cpp.o"
  "CMakeFiles/bench_time_split.dir/bench_time_split.cpp.o.d"
  "bench_time_split"
  "bench_time_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_time_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
