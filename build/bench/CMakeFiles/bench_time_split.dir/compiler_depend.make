# Empty compiler generated dependencies file for bench_time_split.
# This may be replaced when dependencies are built.
