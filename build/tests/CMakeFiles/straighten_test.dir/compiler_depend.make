# Empty compiler generated dependencies file for straighten_test.
# This may be replaced when dependencies are built.
