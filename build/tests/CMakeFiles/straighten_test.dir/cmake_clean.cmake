file(REMOVE_RECURSE
  "CMakeFiles/straighten_test.dir/straighten_test.cpp.o"
  "CMakeFiles/straighten_test.dir/straighten_test.cpp.o.d"
  "straighten_test"
  "straighten_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/straighten_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
