file(REMOVE_RECURSE
  "CMakeFiles/lang_ext_test.dir/lang_ext_test.cpp.o"
  "CMakeFiles/lang_ext_test.dir/lang_ext_test.cpp.o.d"
  "lang_ext_test"
  "lang_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
