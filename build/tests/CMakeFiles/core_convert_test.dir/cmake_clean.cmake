file(REMOVE_RECURSE
  "CMakeFiles/core_convert_test.dir/core_convert_test.cpp.o"
  "CMakeFiles/core_convert_test.dir/core_convert_test.cpp.o.d"
  "core_convert_test"
  "core_convert_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_convert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
