# Empty dependencies file for core_convert_test.
# This may be replaced when dependencies are built.
