# Empty dependencies file for ir_exec_test.
# This may be replaced when dependencies are built.
