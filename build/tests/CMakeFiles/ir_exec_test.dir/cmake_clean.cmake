file(REMOVE_RECURSE
  "CMakeFiles/ir_exec_test.dir/ir_exec_test.cpp.o"
  "CMakeFiles/ir_exec_test.dir/ir_exec_test.cpp.o.d"
  "ir_exec_test"
  "ir_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
