
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/golden_test.cpp" "tests/CMakeFiles/golden_test.dir/golden_test.cpp.o" "gcc" "tests/CMakeFiles/golden_test.dir/golden_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/msc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/msc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/msc_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/msc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/msc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/csi/CMakeFiles/msc_csi.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/msc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/mimd/CMakeFiles/msc_mimd.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/msc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/msc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/msc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
