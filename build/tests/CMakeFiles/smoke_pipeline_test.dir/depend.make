# Empty dependencies file for smoke_pipeline_test.
# This may be replaced when dependencies are built.
