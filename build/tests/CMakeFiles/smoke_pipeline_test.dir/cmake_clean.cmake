file(REMOVE_RECURSE
  "CMakeFiles/smoke_pipeline_test.dir/smoke_pipeline_test.cpp.o"
  "CMakeFiles/smoke_pipeline_test.dir/smoke_pipeline_test.cpp.o.d"
  "smoke_pipeline_test"
  "smoke_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
