// mscfuzz — coverage-guided differential fuzzer for the MSC pipeline.
//
//   mscfuzz [--time-budget SEC] [--seed N] [--out DIR] ...   fuzzing loop
//   mscfuzz --target service ...                             wire-format fuzz
//   mscfuzz --replay manifest.json                           replay a repro
//   mscfuzz --replay-log frames.reqlog                       replay a reqlog
//   mscfuzz --shrink-only manifest.json                      re-shrink one
//
// Exit codes: 0 = clean (or replay behaved as recorded), 2 = findings
// (or a replayed finding no longer reproduces), 1 = usage/IO error.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "msc/fuzz/fuzz.hpp"
#include "msc/fuzz/manifest.hpp"
#include "msc/fuzz/service_fuzz.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: mscfuzz [options]\n"
        "  --time-budget SEC   fuzzing wall-clock budget (default 10)\n"
        "  --iterations N      stop after N candidates (default: budget)\n"
        "  --seed N            fuzzer seed (default 1)\n"
        "  --nprocs N          PE count for every run (default 6)\n"
        "  --max-findings N    stop after N findings (default 4)\n"
        "  --out DIR           write repro_<n>.mimdc/.json pairs to DIR\n"
        "  --no-shrink         keep findings unshrunk\n"
        "  --no-spawn          generate spawn-free programs only\n"
        "  --replay FILE       replay a manifest instead of fuzzing\n"
        "  --shrink-only FILE  shrink a manifest's source and print it\n"
        "  --target T          pipeline (default) | service: fuzz the mscd\n"
        "                      wire format against an in-process daemon;\n"
        "                      findings shrink to replayable request logs\n"
        "  --replay-log FILE   replay a request log (one frame per line)\n"
        "                      against a fresh in-process service\n";
}

struct Cli {
  msc::fuzz::FuzzOptions fuzz;
  std::string replay_path;
  std::string shrink_path;
  std::string target = "pipeline";
  std::string replay_log_path;
};

bool parse_args(int argc, char** argv, Cli& cli) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "mscfuzz: " << argv[i] << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--time-budget") {
      if (!(v = need(i))) return false;
      cli.fuzz.time_budget_seconds = std::stod(v);
    } else if (arg == "--iterations") {
      if (!(v = need(i))) return false;
      cli.fuzz.max_iterations = std::stoll(v);
    } else if (arg == "--seed") {
      if (!(v = need(i))) return false;
      cli.fuzz.seed = std::stoull(v);
    } else if (arg == "--nprocs") {
      if (!(v = need(i))) return false;
      cli.fuzz.eval.nprocs = std::stoll(v);
    } else if (arg == "--max-findings") {
      if (!(v = need(i))) return false;
      cli.fuzz.max_findings = std::stoi(v);
    } else if (arg == "--out") {
      if (!(v = need(i))) return false;
      cli.fuzz.out_dir = v;
    } else if (arg == "--no-shrink") {
      cli.fuzz.shrink = false;
    } else if (arg == "--no-spawn") {
      cli.fuzz.gen.allow_spawn = false;
    } else if (arg == "--replay") {
      if (!(v = need(i))) return false;
      cli.replay_path = v;
    } else if (arg == "--shrink-only") {
      if (!(v = need(i))) return false;
      cli.shrink_path = v;
    } else if (arg == "--target") {
      if (!(v = need(i))) return false;
      cli.target = v;
      if (cli.target != "pipeline" && cli.target != "service") {
        std::cerr << "mscfuzz: unknown target '" << cli.target << "'\n";
        return false;
      }
    } else if (arg == "--replay-log") {
      if (!(v = need(i))) return false;
      cli.replay_log_path = v;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "mscfuzz: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return false;
    }
  }
  return true;
}

int replay(const std::string& path) {
  using namespace msc::fuzz;
  std::string source;
  const Manifest m = load_manifest(path, &source);
  const EvalConfig cfg = m.eval_config();
  if (m.kind == "corpus") {
    // A corpus entry must stay clean across the whole matrix.
    EvalResult ev = evaluate(source, cfg, default_matrix());
    if (ev.skipped) {
      std::cerr << "replay: oracle could not run " << m.source_file << "\n";
      return 2;
    }
    if (ev.finding) {
      std::cerr << "replay: corpus entry " << m.source_file << " now fails: "
                << to_string(ev.finding->kind) << " in "
                << ev.finding->spec.label() << "\n"
                << ev.finding->detail << "\n";
      return 2;
    }
    std::cout << "replay: " << m.source_file << " matches across "
              << default_matrix().size() << " matrix cells\n";
    return 0;
  }
  // A finding manifest replays its recorded matrix cell.
  const bool still = reproduces(source, cfg, m.spec(), m.finding_kind());
  std::cout << "replay: " << m.kind << " in " << m.spec().label() << " "
            << (still ? "still reproduces" : "no longer reproduces") << "\n";
  return still ? 0 : 2;
}

int shrink_only(const std::string& path) {
  using namespace msc::fuzz;
  std::string source;
  const Manifest m = load_manifest(path, &source);
  if (m.kind == "corpus") {
    std::cerr << "mscfuzz: --shrink-only needs a finding manifest, not a "
                 "corpus entry\n";
    return 1;
  }
  const EvalConfig cfg = m.eval_config();
  const RunSpec spec = m.spec();
  const FindingKind kind = m.finding_kind();
  const std::string shrunk =
      shrink_source(source, [&](const std::string& s) {
        return reproduces(s, cfg, spec, kind);
      });
  std::cout << shrunk;
  return 0;
}

int replay_log(const std::string& path) {
  using namespace msc::fuzz;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "mscfuzz: cannot open '" << path << "'\n";
    return 1;
  }
  std::vector<std::string> frames;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) frames.push_back(line);
  ServiceFuzzOptions defaults;
  std::string detail;
  if (replay_request_log(frames, defaults.max_frame_bytes, &detail)) {
    std::cout << "replay-log: " << frames.size()
              << " frame(s), contract holds\n";
    return 0;
  }
  std::cerr << "replay-log: contract violated: " << detail << "\n";
  return 2;
}

int fuzz_service_target(const Cli& cli) {
  using namespace msc::fuzz;
  ServiceFuzzOptions opts;
  opts.seed = cli.fuzz.seed;
  opts.time_budget_seconds = cli.fuzz.time_budget_seconds;
  opts.max_iterations = cli.fuzz.max_iterations;
  opts.max_findings = cli.fuzz.max_findings;
  opts.shrink = cli.fuzz.shrink;
  opts.out_dir = cli.fuzz.out_dir;
  ServiceFuzzResult res = fuzz_service(opts);
  std::cout << "[mscfuzz] service: " << res.iterations << " sequences, pool "
            << res.corpus_size << ", " << res.total_features
            << " coverage features, " << res.findings.size()
            << " finding(s)\n";
  for (const ServiceFinding& f : res.findings) {
    std::cout << "--- protocol violation: " << f.detail << " ---\n";
    for (const std::string& frame : f.frames) std::cout << frame << "\n";
  }
  return res.findings.empty() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.fuzz.gen.allow_spawn = true;
  // Leave idle PEs for spawn to claim (equivalence_test's configuration);
  // spawn exhaustion still gets exercised once children multiply.
  cli.fuzz.eval.initial_active = 2;
  cli.fuzz.log = &std::cout;
  if (!parse_args(argc, argv, cli)) return 1;

  try {
    if (!cli.replay_path.empty()) return replay(cli.replay_path);
    if (!cli.replay_log_path.empty()) return replay_log(cli.replay_log_path);
    if (!cli.shrink_path.empty()) return shrink_only(cli.shrink_path);
    if (cli.target == "service") return fuzz_service_target(cli);

    msc::fuzz::FuzzResult res = msc::fuzz::run_fuzzer(cli.fuzz);
    std::cout << "[mscfuzz] done: " << res.iterations << " iterations, "
              << res.skipped << " skipped, corpus " << res.corpus_size << ", "
              << res.features << " coverage features, " << res.findings.size()
              << " finding(s)\n";
    for (const msc::fuzz::Finding& f : res.findings) {
      std::cout << "--- " << to_string(f.kind) << " in " << f.spec.label()
                << " ---\n"
                << f.detail << "\n"
                << f.source;
    }
    for (const std::string& p : res.written)
      std::cout << "[mscfuzz] wrote " << p << "\n";
    return res.findings.empty() ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "mscfuzz: " << e.what() << "\n";
    return 1;
  }
}
