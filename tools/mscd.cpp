// mscd — the multi-tenant conversion-and-execution daemon (DESIGN.md §13).
// Serves the mscc front half over a Unix-domain socket: newline-delimited
// JSON requests in (compile / run / coschedule / stats / shutdown), one
// JSON response line out per request. All connections share one
// conversion cache and one admission controller; see mscli for the
// client.
//
// Exit codes: 0 clean shutdown, 1 startup failure, 2 bad usage.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "msc/service/daemon.hpp"
#include "msc/support/str.hpp"

using namespace msc;

namespace {

service::Daemon* g_daemon = nullptr;

void on_signal(int) {
  if (g_daemon) g_daemon->request_stop();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: mscd --socket PATH [options]\n"
      "\n"
      "  --socket PATH        Unix-domain socket to listen on (required)\n"
      "  --workers N          worker threads (default 4; 0 = one per core)\n"
      "  --max-frame BYTES    per-request frame limit (default 1048576)\n"
      "  --max-depth N        JSON nesting limit per frame (default 64)\n"
      "  --block-budget N     per-tenant in-flight block budget\n"
      "                       (default 64000000; 0 = unlimited)\n"
      "  --explosion-quota N  ExplosionErrors a tenant may provoke before\n"
      "                       admission rejects it (default 16; 0 = off)\n"
      "  --cache-capacity N   conversion-cache entries (default 64)\n"
      "\n"
      "Protocol: one JSON object per line; see DESIGN.md §13 and mscli.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  service::DaemonOptions options;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mscd: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") options.socket_path = next(i);
    else if (arg == "--workers")
      options.workers = static_cast<std::size_t>(std::atoll(next(i)));
    else if (arg == "--max-frame")
      options.service.limits.max_frame_bytes =
          static_cast<std::size_t>(std::atoll(next(i)));
    else if (arg == "--max-depth")
      options.service.limits.max_json_depth = std::atoi(next(i));
    else if (arg == "--block-budget")
      options.service.quota.block_budget = std::atoll(next(i));
    else if (arg == "--explosion-quota")
      options.service.quota.explosion_quota = std::atoll(next(i));
    else if (arg == "--cache-capacity")
      options.service.cache_capacity =
          static_cast<std::size_t>(std::atoll(next(i)));
    else if (arg == "--help" || arg == "-h") return usage();
    else {
      std::fprintf(stderr, "mscd: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (options.socket_path.empty()) return usage();
  if (options.service.limits.max_frame_bytes < 16 ||
      options.service.limits.max_json_depth < 1 ||
      options.service.cache_capacity < 1) {
    std::fprintf(stderr, "mscd: limits out of range\n");
    return usage();
  }

  try {
    service::Daemon daemon(options);
    g_daemon = &daemon;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    daemon.start();
    std::fprintf(stderr, "mscd: serving on %s (%zu workers)\n",
                 daemon.socket_path().c_str(), options.workers);
    daemon.wait();
    g_daemon = nullptr;
    std::fprintf(stderr, "mscd: stopped\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mscd: %s\n", e.what());
    return 1;
  }
  return 0;
}
