// mscd — the multi-tenant conversion-and-execution daemon (DESIGN.md §13).
// Serves the mscc front half over a Unix-domain socket: newline-delimited
// JSON requests in (compile / run / coschedule / stats / metrics /
// slowlog / shutdown), one JSON response line out per request. All
// connections share one conversion cache and one admission controller;
// see mscli for the client, msctop for the live telemetry view.
//
// Exit codes: 0 clean shutdown, 1 startup failure, 2 bad usage.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "msc/service/daemon.hpp"
#include "msc/support/str.hpp"

using namespace msc;

namespace {

service::Daemon* g_daemon = nullptr;

void on_signal(int) {
  if (g_daemon) g_daemon->request_stop();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: mscd --socket PATH [options]\n"
      "\n"
      "  --socket PATH        Unix-domain socket to listen on (required)\n"
      "  --workers N          worker threads (default 4; 0 = one per core)\n"
      "  --max-frame BYTES    per-request frame limit (default 1048576)\n"
      "  --max-depth N        JSON nesting limit per frame (default 64)\n"
      "  --block-budget N     per-tenant in-flight block budget\n"
      "                       (default 64000000; 0 = unlimited)\n"
      "  --explosion-quota N  ExplosionErrors a tenant may provoke before\n"
      "                       admission rejects it (default 16; 0 = off)\n"
      "  --cache-capacity N   conversion-cache entries (default 64)\n"
      "\n"
      "Observability (DESIGN.md §15):\n"
      "  --access-log PATH       append one JSON line per request\n"
      "  --slow-micros N         keep the full trace of requests at/above\n"
      "                          N microseconds (slowlog op; default off)\n"
      "  --slowlog-capacity N    slowlog ring size (default 32)\n"
      "  --metrics-interval MS   snapshot the labeled metrics document\n"
      "                          every MS milliseconds (needs --metrics-file)\n"
      "  --metrics-file PATH     metrics snapshot file (atomic rename;\n"
      "                          also written once at shutdown)\n"
      "  --trace-chrome PATH     dump the slowlog ring as pid-3 Chrome\n"
      "                          spans at shutdown (implies --slow-micros 1\n"
      "                          when unset)\n"
      "  --max-label-series N    labeled-family cardinality bound before\n"
      "                          folding into the 'other' tenant (default 64)\n"
      "\n"
      "Protocol: one JSON object per line; see DESIGN.md §13 and mscli.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  service::DaemonOptions options;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mscd: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") options.socket_path = next(i);
    else if (arg == "--workers")
      options.workers = static_cast<std::size_t>(std::atoll(next(i)));
    else if (arg == "--max-frame")
      options.service.limits.max_frame_bytes =
          static_cast<std::size_t>(std::atoll(next(i)));
    else if (arg == "--max-depth")
      options.service.limits.max_json_depth = std::atoi(next(i));
    else if (arg == "--block-budget")
      options.service.quota.block_budget = std::atoll(next(i));
    else if (arg == "--explosion-quota")
      options.service.quota.explosion_quota = std::atoll(next(i));
    else if (arg == "--cache-capacity")
      options.service.cache_capacity =
          static_cast<std::size_t>(std::atoll(next(i)));
    else if (arg == "--access-log")
      options.service.observability.access_log_path = next(i);
    else if (arg == "--slow-micros")
      options.service.observability.slow_micros = std::atoll(next(i));
    else if (arg == "--slowlog-capacity")
      options.service.observability.slowlog_capacity =
          static_cast<std::size_t>(std::atoll(next(i)));
    else if (arg == "--metrics-interval")
      options.metrics_interval_ms = std::atoll(next(i));
    else if (arg == "--metrics-file")
      options.metrics_path = next(i);
    else if (arg == "--trace-chrome")
      options.trace_chrome_path = next(i);
    else if (arg == "--max-label-series")
      options.service.observability.max_label_series =
          static_cast<std::size_t>(std::atoll(next(i)));
    else if (arg == "--help" || arg == "-h") return usage();
    else {
      std::fprintf(stderr, "mscd: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (options.socket_path.empty()) return usage();
  if (options.service.limits.max_frame_bytes < 16 ||
      options.service.limits.max_json_depth < 1 ||
      options.service.cache_capacity < 1 ||
      options.service.observability.slow_micros < 0 ||
      options.metrics_interval_ms < 0 ||
      options.service.observability.max_label_series < 1) {
    std::fprintf(stderr, "mscd: limits out of range\n");
    return usage();
  }
  if (options.metrics_interval_ms > 0 && options.metrics_path.empty()) {
    std::fprintf(stderr, "mscd: --metrics-interval needs --metrics-file\n");
    return usage();
  }
  // A chrome dump sources the slowlog ring; make sure it captures.
  if (!options.trace_chrome_path.empty() &&
      options.service.observability.slow_micros == 0)
    options.service.observability.slow_micros = 1;

  try {
    service::Daemon daemon(options);
    g_daemon = &daemon;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    daemon.start();
    std::fprintf(stderr, "mscd: serving on %s (%zu workers)\n",
                 daemon.socket_path().c_str(), options.workers);
    daemon.wait();
    g_daemon = nullptr;
    std::fprintf(stderr, "mscd: stopped\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mscd: %s\n", e.what());
    return 1;
  }
  return 0;
}
