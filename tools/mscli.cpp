// mscli — command-line client for mscd (DESIGN.md §13). Builds one wire
// request per invocation, prints the daemon's response, and maps typed
// protocol errors onto mscc-compatible exit codes so scripts treat a
// daemon compile exactly like a local one.
//
// Usage:
//   mscli --socket S compile file.mimdc [compile options]
//   mscli --socket S run file.mimdc [compile/run options]
//   mscli --socket S coschedule spec... [--policy P] [--quantum N]
//   mscli --socket S stats [--metrics]
//   mscli --socket S metrics        # labeled per-tenant/per-op telemetry
//   mscli --socket S slowlog        # worst-request traces
//   mscli --socket S shutdown
//   mscli --socket S raw            # frames from stdin, one per line
//
// Exit codes:
//   0 ok, 1 internal/I-O, 2 usage / parse / protocol / frame errors,
//   3 compile error, 4 explosion, 5 machine fault, 6 quota rejection.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "msc/service/client.hpp"
#include "msc/service/protocol.hpp"
#include "msc/support/json.hpp"
#include "msc/support/str.hpp"

using namespace msc;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mscli --socket PATH <op> [args] [options]\n"
      "\n"
      "ops:\n"
      "  compile FILE         convert FILE; response carries the automaton\n"
      "  run FILE             convert + execute on the simulated machine\n"
      "  coschedule SPEC...   time-multiplex verified kernels (name@n)\n"
      "  stats                daemon counters (cache, tenants, quota)\n"
      "  metrics              labeled {tenant, op} telemetry (schema 2)\n"
      "  slowlog              ring-buffered worst-request traces\n"
      "  shutdown             stop the daemon\n"
      "  raw                  relay stdin lines as frames (testing)\n"
      "\n"
      "request options:\n"
      "  --tenant T           tenant id for admission (default anon)\n"
      "  --id N               request id echoed in the response\n"
      "  --pipeline P         explicit pass pipeline (comma-separated)\n"
      "  --compress --adaptive --time-split --prune --no-subsume\n"
      "  --max-meta-states N  explosion guard\n"
      "  --nprocs N --active N --seed N --engine E --simd-isa I\n"
      "  --max-blocks N\n"
      "  --reuse-halted-pes   (run)\n"
      "  --policy P --quantum N   (coschedule)\n"
      "  --profile            accumulate per-meta-state profiles\n"
      "  --metrics            (stats) include the metrics registry\n"
      "  --trace              attach the request's lifecycle trace to the\n"
      "                       response (any op; render with mscprof)\n"
      "\n"
      "output options:\n"
      "  --emit M             print one payload member instead of the raw\n"
      "                       response: automaton | observed | simd |\n"
      "                       cosched | stats | metrics | trace | slowlog\n"
      "                       (strings are decoded)\n"
      "  --out FILE           write the --emit payload to FILE (e.g. a\n"
      "                       simd/cosched profile document for mscprof)\n");
  return 2;
}

int exit_code_for(service::ErrorKind kind) {
  switch (kind) {
    case service::ErrorKind::Compile: return 3;
    case service::ErrorKind::Explosion: return 4;
    case service::ErrorKind::Fault: return 5;
    case service::ErrorKind::Quota: return 6;
    case service::ErrorKind::ParseError:
    case service::ErrorKind::Protocol:
    case service::ErrorKind::FrameTooLarge:
    case service::ErrorKind::Pipeline: return 2;
    case service::ErrorKind::ShuttingDown:
    case service::ErrorKind::Internal: return 1;
  }
  return 1;
}

std::string read_file(const std::string& path) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(cat("cannot open '", path, "'"));
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Render the response (or one payload member) and derive the exit code.
int handle_response(const std::string& response, const std::string& emit,
                    const std::string& out_path) {
  json::Value doc;
  try {
    doc = json::parse(response);
  } catch (const json::ParseError& e) {
    std::fprintf(stderr, "mscli: unparseable response: %s\n", e.what());
    return 1;
  }
  const json::Value* ok = doc.find("ok");
  if (!ok || ok->kind != json::Value::Kind::Bool) {
    std::fprintf(stderr, "mscli: malformed response envelope\n");
    return 1;
  }
  if (!ok->b) {
    const json::Value* err = doc.find("error");
    std::string kind = "internal-error", message = "(no message)";
    if (err && err->is_object()) {
      if (const json::Value* k = err->find("kind"); k && k->is_string())
        kind = k->str;
      if (const json::Value* m = err->find("message"); m && m->is_string())
        message = m->str;
    }
    std::fprintf(stderr, "mscli: %s: %s\n", kind.c_str(), message.c_str());
    try {
      return exit_code_for(service::parse_error_kind(kind));
    } catch (const std::invalid_argument&) {
      return 1;
    }
  }

  std::string text;
  if (emit.empty()) {
    text = response + "\n";
  } else {
    const json::Value* member = doc.find(emit);
    if (!member) {
      std::fprintf(stderr, "mscli: response has no '%s' member\n",
                   emit.c_str());
      return 1;
    }
    // Strings (automaton, observed) decode to the exact toolchain bytes;
    // objects (simd, cosched, stats) re-render via the original response
    // slice would require offsets, so splice from the wire line instead.
    if (member->is_string()) {
      text = member->str;
    } else {
      // The payload members are verbatim splices of toolchain JSON; cut
      // the member's balanced object out of the raw response line.
      const std::string needle = cat("\"", emit, "\": ");
      const std::size_t at = response.find(needle);
      if (at == std::string::npos) {
        std::fprintf(stderr, "mscli: cannot locate '%s' payload\n",
                     emit.c_str());
        return 1;
      }
      std::size_t i = at + needle.size(), depth = 0;
      bool in_string = false;
      const std::size_t start = i;
      for (; i < response.size(); ++i) {
        const char c = response[i];
        if (in_string) {
          if (c == '\\') ++i;
          else if (c == '"') in_string = false;
        } else if (c == '"') {
          in_string = true;
        } else if (c == '{' || c == '[') {
          ++depth;
        } else if (c == '}' || c == ']') {
          if (--depth == 0) { ++i; break; }
        }
      }
      text = response.substr(start, i - start) + "\n";
    }
  }

  if (out_path.empty() || out_path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "mscli: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    out << text;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, op, file, tenant, id, pipeline, engine, policy;
  std::string simd_isa;
  std::string emit, out_path;
  std::vector<std::string> specs;
  bool compress = false, adaptive = false, time_split = false, prune = false;
  bool no_subsume = false, reuse = false, profile = false, metrics = false;
  bool trace = false;
  long long max_meta_states = -1, nprocs = -1, active = -2, seed = -1;
  long long max_blocks = -1, quantum = -1;

  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mscli: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") socket_path = next(i);
    else if (arg == "--tenant") tenant = next(i);
    else if (arg == "--id") id = next(i);
    else if (arg == "--pipeline") pipeline = next(i);
    else if (arg == "--compress") compress = true;
    else if (arg == "--adaptive") adaptive = true;
    else if (arg == "--time-split") time_split = true;
    else if (arg == "--prune") prune = true;
    else if (arg == "--no-subsume") no_subsume = true;
    else if (arg == "--reuse-halted-pes") reuse = true;
    else if (arg == "--profile") profile = true;
    else if (arg == "--metrics") metrics = true;
    else if (arg == "--trace") trace = true;
    else if (arg == "--max-meta-states") max_meta_states = std::atoll(next(i));
    else if (arg == "--nprocs") nprocs = std::atoll(next(i));
    else if (arg == "--active") active = std::atoll(next(i));
    else if (arg == "--seed") seed = std::atoll(next(i));
    else if (arg == "--max-blocks") max_blocks = std::atoll(next(i));
    else if (arg == "--quantum") quantum = std::atoll(next(i));
    else if (arg == "--engine") engine = next(i);
    else if (arg == "--simd-isa") simd_isa = next(i);
    else if (arg == "--policy") policy = next(i);
    else if (arg == "--emit") emit = next(i);
    else if (arg == "--out") out_path = next(i);
    else if (arg == "--help" || arg == "-h") return usage();
    else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mscli: unknown option '%s'\n", arg.c_str());
      return usage();
    } else if (op.empty()) {
      op = arg;
    } else if ((op == "compile" || op == "run") && file.empty()) {
      file = arg;
    } else if (op == "coschedule") {
      specs.push_back(arg);
    } else {
      std::fprintf(stderr, "mscli: unexpected argument '%s'\n", arg.c_str());
      return usage();
    }
  }

  if (socket_path.empty() || op.empty()) return usage();

  try {
    service::Client client;
    client.connect(socket_path);

    if (op == "raw") {
      std::string line;
      int rc = 0;
      while (std::getline(std::cin, line)) {
        const std::string response = client.request(line, 30'000);
        const int code = handle_response(response, emit, out_path);
        if (code != 0) rc = code;
      }
      return rc;
    }

    std::string frame = cat("{\"op\": \"", op, "\"");
    if (!id.empty()) {
      const bool numeric =
          id.find_first_not_of("0123456789") == std::string::npos;
      frame += cat(", \"id\": ",
                   numeric ? id : cat("\"", json_escape(id), "\""));
    }
    if (!tenant.empty())
      frame += cat(", \"tenant\": \"", json_escape(tenant), "\"");

    if (op == "compile" || op == "run") {
      if (file.empty()) {
        std::fprintf(stderr, "mscli: %s needs a source file\n", op.c_str());
        return usage();
      }
      frame += cat(", \"source\": \"", json_escape(read_file(file)), "\"");
      if (!pipeline.empty())
        frame += cat(", \"pipeline\": \"", json_escape(pipeline), "\"");
      if (compress) frame += ", \"compress\": true";
      if (adaptive) frame += ", \"adaptive\": true";
      if (time_split) frame += ", \"time_split\": true";
      if (prune) frame += ", \"prune\": true";
      if (no_subsume) frame += ", \"subsume\": false";
      if (max_meta_states >= 0)
        frame += cat(", \"max_meta_states\": ", max_meta_states);
    }
    if (op == "run") {
      if (nprocs >= 0) frame += cat(", \"nprocs\": ", nprocs);
      if (active >= -1) frame += cat(", \"active\": ", active);
      if (max_blocks >= 0) frame += cat(", \"max_blocks\": ", max_blocks);
      if (reuse) frame += ", \"reuse_halted_pes\": true";
    }
    if (op == "run" || op == "coschedule") {
      if (seed >= 0) frame += cat(", \"seed\": ", seed);
      if (!engine.empty())
        frame += cat(", \"engine\": \"", json_escape(engine), "\"");
      if (!simd_isa.empty())
        frame += cat(", \"simd_isa\": \"", json_escape(simd_isa), "\"");
      if (profile) frame += ", \"profile\": true";
    }
    if (op == "coschedule") {
      if (specs.empty()) {
        std::fprintf(stderr, "mscli: coschedule needs kernel specs\n");
        return usage();
      }
      frame += ", \"programs\": [";
      for (std::size_t i = 0; i < specs.size(); ++i)
        frame += cat(i ? ", " : "", "\"", json_escape(specs[i]), "\"");
      frame += "]";
      if (!policy.empty())
        frame += cat(", \"policy\": \"", json_escape(policy), "\"");
      if (quantum >= 0) frame += cat(", \"quantum\": ", quantum);
    }
    if (op == "stats" && metrics) frame += ", \"metrics\": true";
    if (trace) frame += ", \"trace\": true";
    frame += "}";

    const std::string response = client.request(frame, 120'000);
    return handle_response(response, emit, out_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mscli: %s\n", e.what());
    return 1;
  }
}
