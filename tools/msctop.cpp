// msctop — live telemetry view for a running mscd (DESIGN.md §15).
// Polls the daemon's observability ops over its Unix-domain socket:
//
//   stats   — uptime, worker pool, connection counts, cache totals,
//   metrics — the labeled schema-2 document (per-tenant/per-op series),
//   slowlog — the slowest captured request traces,
//
// and renders a ranked per-tenant/per-op table (requests, errors,
// admission rejections, cache hit rate, p50/p95/p99 latency estimated
// from the fixed-bucket histogram) plus the slowest-requests tail.
// Refreshes every --interval seconds; --once renders a single frame and
// exits (CI smoke mode).
//
// Usage: msctop --socket PATH [--once] [--interval SEC] [--top N]
// Exit codes: 0 ok, 1 connect/protocol error, 2 bad usage.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "msc/service/client.hpp"
#include "msc/support/json.hpp"
#include "msc/support/str.hpp"

using namespace msc;

namespace {

enum ExitCode { kOk = 0, kInternal = 1, kUsage = 2 };

int usage() {
  std::fprintf(
      stderr,
      "usage: msctop --socket PATH [options]\n"
      "\n"
      "  --socket PATH   mscd Unix-domain socket (required)\n"
      "  --once          render one frame and exit (CI mode; no ANSI)\n"
      "  --interval SEC  refresh period in loop mode (default 2)\n"
      "  --top N         rows in the per-tenant/per-op table\n"
      "                  (default 10, 0 = all)\n"
      "\n"
      "Polls the stats/metrics/slowlog ops; see mscd and DESIGN.md §15.\n"
      "exit codes: 0 ok, 1 connect or protocol error, 2 bad usage\n");
  return kUsage;
}

std::int64_t get_int(const json::Value& obj, const char* key,
                     std::int64_t fallback = 0) {
  const json::Value* v = obj.find(key);
  return v && v->is_number() ? v->as_int() : fallback;
}

std::string get_str(const json::Value& obj, const char* key,
                    const std::string& fallback = "") {
  const json::Value* v = obj.find(key);
  return v && v->is_string() ? v->as_string() : fallback;
}

/// One {tenant, op} series aggregated across the labeled families.
struct Row {
  std::int64_t requests = 0;
  std::int64_t errors = 0;
  std::int64_t rejections = 0;
  std::int64_t cache_hits = 0, cache_misses = 0, cache_waits = 0;
  std::int64_t lat_count = 0;
  std::vector<std::int64_t> lat_counts;  ///< bounds.size() + 1 buckets

  double hit_rate() const {
    const std::int64_t looks = cache_hits + cache_misses + cache_waits;
    return looks == 0 ? -1.0
                      : 100.0 * static_cast<double>(cache_hits) /
                            static_cast<double>(looks);
  }
};

/// One rendered frame's worth of daemon state.
struct Frame {
  std::int64_t uptime_us = 0;
  std::int64_t requests_ok = 0, requests_error = 0;
  std::int64_t folded_samples = 0;
  bool has_daemon = false;
  std::int64_t workers = 0, queue_depth = 0;
  std::int64_t conns_accepted = 0, conns_active = 0;
  std::int64_t cache_hits = 0, cache_misses = 0, cache_waits = 0;
  std::int64_t cache_entries = 0, cache_evictions = 0;
  std::vector<std::int64_t> lat_bounds;
  std::map<std::pair<std::string, std::string>, Row> rows;
  std::int64_t slow_threshold_us = 0;
  /// (request_id, tenant, op, outcome, total_us) slowest-first.
  std::vector<std::tuple<std::int64_t, std::string, std::string, std::string,
                         std::int64_t>>
      slow;
};

/// Upper-bound percentile estimate from cumulative bucket counts: the
/// smallest bound whose cumulative count covers quantile q, or -1 when
/// the sample lands in the overflow bucket (beyond the last bound).
std::int64_t percentile_upper(const std::vector<std::int64_t>& bounds,
                              const std::vector<std::int64_t>& counts,
                              std::int64_t total, double q) {
  if (total <= 0 || counts.empty()) return 0;
  const double target = q * static_cast<double>(total);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (static_cast<double>(cum) >= target)
      return i < bounds.size() ? bounds[i] : -1;
  }
  return -1;
}

/// "123us" / "4.5ms" / "1.2s"; "-" for no samples, ">1.0s"-style for the
/// overflow bucket (value -1 with the family's last bound).
std::string fmt_us(std::int64_t us, std::int64_t overflow_bound = 0) {
  std::string prefix;
  if (us < 0) {
    us = overflow_bound;
    prefix = ">";
  }
  if (us < 1000) return cat(prefix, us, "us");
  if (us < 1000000) return cat(prefix, fmt_double(us / 1000.0, 1), "ms");
  return cat(prefix, fmt_double(us / 1000000.0, 1), "s");
}

Frame poll(service::Client& client, int timeout_ms) {
  Frame f;
  std::int64_t id = 0;
  const auto ask = [&](const char* op) {
    const std::string response = client.request(
        cat("{\"op\": \"", op, "\", \"id\": ", ++id,
            ", \"tenant\": \"msctop\"}"),
        timeout_ms);
    json::Value doc = json::parse(response);
    const json::Value* ok = doc.find("ok");
    if (!ok || ok->kind != json::Value::Kind::Bool || !ok->b)
      throw std::runtime_error(cat("daemon rejected the ", op, " op: ",
                                   get_str(doc, "message", response)));
    return doc;
  };

  const json::Value stats = ask("stats");
  f.uptime_us = get_int(stats, "uptime_micros");
  const json::Value& service = stats.at("service");
  if (const json::Value* cache = service.find("cache")) {
    f.cache_hits = get_int(*cache, "hits");
    f.cache_misses = get_int(*cache, "misses");
    f.cache_waits = get_int(*cache, "inflight_waits");
    f.cache_entries = get_int(*cache, "entries");
    f.cache_evictions = get_int(*cache, "evictions");
  }
  if (const json::Value* daemon = service.find("daemon")) {
    f.has_daemon = true;
    f.workers = get_int(*daemon, "workers");
    f.queue_depth = get_int(*daemon, "queue_depth");
    f.conns_accepted = get_int(*daemon, "connections_accepted");
    f.conns_active = get_int(*daemon, "connections_active");
  }

  // The metrics payload is a JSON-escaped string member: parse twice.
  const json::Value metrics_rsp = ask("metrics");
  const json::Value metrics = json::parse(metrics_rsp.at("metrics").as_string());
  f.folded_samples = get_int(metrics, "folded_samples");
  if (const json::Value* reqs = metrics.find("requests")) {
    f.requests_ok = get_int(*reqs, "ok");
    f.requests_error = get_int(*reqs, "error");
  }
  if (const json::Value* families = metrics.find("families")) {
    for (const auto& [name, fam] : families->members) {
      const json::Value* series = fam.find("series");
      if (!series) continue;
      if (name == "latency_us") {
        if (const json::Value* bounds = fam.find("bounds"))
          for (const json::Value& b : bounds->elems)
            f.lat_bounds.push_back(b.as_int());
      }
      for (const json::Value& s : series->elems) {
        Row& row = f.rows[{get_str(s, "tenant"), get_str(s, "op")}];
        if (name == "requests") row.requests += get_int(s, "value");
        else if (starts_with(name, "errors."))
          row.errors += get_int(s, "value");
        else if (name == "admission_rejections")
          row.rejections += get_int(s, "value");
        else if (name == "cache.hit") row.cache_hits += get_int(s, "value");
        else if (name == "cache.miss") row.cache_misses += get_int(s, "value");
        else if (name == "cache.inflight-wait")
          row.cache_waits += get_int(s, "value");
        else if (name == "latency_us") {
          row.lat_count += get_int(s, "count");
          if (const json::Value* counts = s.find("counts")) {
            if (row.lat_counts.size() < counts->elems.size())
              row.lat_counts.resize(counts->elems.size(), 0);
            for (std::size_t i = 0; i < counts->elems.size(); ++i)
              row.lat_counts[i] += counts->elems[i].as_int();
          }
        }
      }
    }
  }

  const json::Value slowlog = ask("slowlog");
  f.slow_threshold_us = get_int(slowlog, "threshold_micros");
  if (const json::Value* entries = slowlog.find("slowlog"))
    for (const json::Value& e : entries->elems)
      f.slow.emplace_back(get_int(e, "request_id"), get_str(e, "tenant"),
                          get_str(e, "op"), get_str(e, "outcome"),
                          get_int(e, "total_us"));
  return f;
}

void render(const Frame& f, const std::string& socket_path, std::size_t top) {
  std::printf("== mscd @ %s  (uptime %s) ==\n", socket_path.c_str(),
              fmt_us(f.uptime_us).c_str());
  std::printf("  requests   ok %" PRId64 "  error %" PRId64
              "  (folded label samples %" PRId64 ")\n",
              f.requests_ok, f.requests_error, f.folded_samples);
  if (f.has_daemon)
    std::printf("  daemon     workers %" PRId64 "  queue %" PRId64
                "  connections %" PRId64 " active / %" PRId64 " accepted\n",
                f.workers, f.queue_depth, f.conns_active, f.conns_accepted);
  std::printf("  cache      hits %" PRId64 "  misses %" PRId64
              "  inflight-waits %" PRId64 "  entries %" PRId64
              "  evictions %" PRId64 "\n",
              f.cache_hits, f.cache_misses, f.cache_waits, f.cache_entries,
              f.cache_evictions);

  // Rank by requests, then errors, then (tenant, op) for a total order.
  std::vector<std::pair<std::pair<std::string, std::string>, const Row*>> rows;
  for (const auto& [key, row] : f.rows) rows.emplace_back(key, &row);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second->requests != b.second->requests)
      return a.second->requests > b.second->requests;
    if (a.second->errors != b.second->errors)
      return a.second->errors > b.second->errors;
    return a.first < b.first;
  });
  const std::size_t total = rows.size();
  if (top > 0 && rows.size() > top) rows.resize(top);

  std::printf("\n== per-tenant/per-op (by requests%s) ==\n",
              top > 0 && total > top
                  ? cat(", top ", top, " of ", total).c_str()
                  : "");
  std::printf("  %-12s %-10s %7s %6s %6s %6s %8s %8s %8s\n", "tenant", "op",
              "req", "err", "rej", "hit%", "p50", "p95", "p99");
  const std::int64_t overflow =
      f.lat_bounds.empty() ? 0 : f.lat_bounds.back();
  for (const auto& [key, row] : rows) {
    const double hit = row->hit_rate();
    const auto pct = [&](double q) {
      return row->lat_count == 0
                 ? std::string("-")
                 : fmt_us(percentile_upper(f.lat_bounds, row->lat_counts,
                                           row->lat_count, q),
                          overflow);
    };
    std::printf("  %-12s %-10s %7" PRId64 " %6" PRId64 " %6" PRId64
                " %6s %8s %8s %8s\n",
                key.first.c_str(), key.second.c_str(), row->requests,
                row->errors, row->rejections,
                hit < 0 ? "-" : fmt_double(hit, 1).c_str(), pct(0.50).c_str(),
                pct(0.95).c_str(), pct(0.99).c_str());
  }
  if (rows.empty()) std::printf("  (no labeled series yet)\n");

  if (f.slow_threshold_us > 0) {
    std::printf("\n== slowest requests (threshold %s, %zu kept) ==\n",
                fmt_us(f.slow_threshold_us).c_str(), f.slow.size());
    if (f.slow.empty()) {
      std::printf("  (none captured)\n");
    } else {
      std::printf("  %-8s %-12s %-10s %-10s %8s\n", "id", "tenant", "op",
                  "outcome", "total");
      std::size_t shown = 0;
      for (const auto& [rid, tenant, op, outcome, total_us] : f.slow) {
        if (top > 0 && ++shown > top) break;
        std::printf("  %-8" PRId64 " %-12s %-10s %-10s %8s\n", rid,
                    tenant.c_str(), op.c_str(), outcome.c_str(),
                    fmt_us(total_us).c_str());
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  bool once = false;
  double interval_sec = 2.0;
  std::size_t top = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(usage());
      return argv[++i];
    };
    if (arg == "--socket") socket_path = next();
    else if (arg == "--once") once = true;
    else if (arg == "--interval") interval_sec = std::atof(next());
    else if (arg == "--top") top = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--help" || arg == "-h") return usage();
    else {
      std::fprintf(stderr, "msctop: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (socket_path.empty() || interval_sec <= 0) return usage();

  try {
    service::Client client;
    client.connect(socket_path);
    while (true) {
      const Frame f = poll(client, 5000);
      if (!once) std::printf("\x1b[2J\x1b[H");  // clear + home
      render(f, socket_path, top);
      std::fflush(stdout);
      if (once) break;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int>(interval_sec * 1000)));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "msctop: %s\n", e.what());
    return kInternal;
  }
  return kOk;
}
