// mscprof — report tool for the observability outputs (DESIGN.md §10).
// Reads either a per-meta-state profile (mscc --profile-simd, or a plain
// --trace-simd stats dump) or a Chrome trace-event file (mscc
// --trace-chrome) and renders:
//
//   - a run summary (engine, cycles, overall PE utilization),
//   - a per-meta-state utilization table ranked by control-cycle share,
//   - the paper-style "PE utilization vs. meta-state count" curve
//     (cumulative utilization as hottest states are added, §4's lens),
//   - with --diff, a side-by-side comparison of two runs.
//
// Usage:
//   mscprof [options] run.json
//   mscprof --diff before.json after.json
//
// Exit codes: 0 ok, 1 I/O or parse error, 2 bad usage.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "msc/support/json.hpp"
#include "msc/support/str.hpp"

using namespace msc;

namespace {

enum ExitCode { kOk = 0, kInternal = 1, kUsage = 2 };

int usage() {
  std::fprintf(
      stderr,
      "usage: mscprof [options] run.json\n"
      "       mscprof --diff before.json after.json\n"
      "\n"
      "Reads mscc observability JSON and renders utilization reports.\n"
      "Accepted inputs (auto-detected):\n"
      "  - mscc --profile-simd output (per-meta-state profiles)\n"
      "  - mscc --trace-simd output (run stats; summary only)\n"
      "  - mscc --trace-chrome output (Chrome trace events; meta-state\n"
      "    events are aggregated into a profile, pass spans tabulated)\n"
      "  - mscc --coschedule profile output (machine-level header plus\n"
      "    one per-program section per co-scheduled automaton)\n"
      "  - mscd request traces (a single RequestTrace document, e.g. the\n"
      "    \"trace\" member of a trace-armed response, or a slowlog op\n"
      "    payload: per-phase microsecond tables per request)\n"
      "\n"
      "options:\n"
      "  --top N      rows in the per-meta-state table (default 10, 0 = all)\n"
      "  --diff B     compare run.json (before) against B (after): per-state\n"
      "               visit/cycle/utilization deltas and summary drift\n"
      "\n"
      "exit codes: 0 ok, 1 I/O or parse error, 2 bad usage\n");
  return kUsage;
}

/// One meta state's aggregated execution record, whichever input it came
/// from. Cycle fields are exact int64s (the bit-exactness tests compare
/// them against SimdStats totals).
struct StateRow {
  std::int64_t state = 0;
  std::int64_t visits = 0;
  std::int64_t enabled_min = 0, enabled_max = 0, enabled_sum = 0;
  std::int64_t control_cycles = 0;
  std::int64_t busy_pe_cycles = 0, offered_pe_cycles = 0;
  std::int64_t global_ors = 0, guard_switches = 0, router_ops = 0, spawns = 0;

  double utilization() const {
    return offered_pe_cycles == 0 ? 1.0
                                  : static_cast<double>(busy_pe_cycles) /
                                        static_cast<double>(offered_pe_cycles);
  }
  double enabled_mean() const {
    return visits == 0 ? 0.0
                       : static_cast<double>(enabled_sum) /
                             static_cast<double>(visits);
  }
};

struct Run {
  std::string source;           ///< input path (headers)
  std::string engine = "?";     ///< "fast"/"reference" when known
  std::string isa;              ///< resolved SIMD ISA ("scalar"/"avx2"/...)
  std::int64_t isa_lane_width = 0;
  std::string kind;             ///< "profile" | "stats" | "chrome-trace"
  std::int64_t meta_states = 0;
  std::int64_t meta_transitions = 0;
  std::int64_t control_cycles = 0;
  std::int64_t busy_pe_cycles = 0, offered_pe_cycles = 0;
  std::int64_t global_ors = 0, guard_switches = 0, router_ops = 0, spawns = 0;
  bool has_totals = false;
  std::vector<StateRow> states;  ///< empty for stats-only inputs
  /// Pass spans from a chrome trace (name, wall µs), execution order.
  std::vector<std::pair<std::string, std::int64_t>> passes;

  double utilization() const {
    return offered_pe_cycles == 0 ? 1.0
                                  : static_cast<double>(busy_pe_cycles) /
                                        static_cast<double>(offered_pe_cycles);
  }
};

std::int64_t get_int(const json::Value& obj, const char* key,
                     std::int64_t fallback = 0) {
  const json::Value* v = obj.find(key);
  return v && v->kind == json::Value::Kind::Number ? v->as_int() : fallback;
}

/// mscc --profile-simd / --trace-simd documents.
Run load_profile(const json::Value& doc, const std::string& path) {
  Run run;
  run.source = path;
  run.kind = doc.find("profile") ? "profile" : "stats";
  if (const json::Value* e = doc.find("engine")) run.engine = e->as_string();
  if (const json::Value* i = doc.find("isa")) run.isa = i->as_string();
  run.isa_lane_width = get_int(doc, "isa_lane_width");
  run.meta_states = get_int(doc, "meta_states");
  run.meta_transitions = get_int(doc, "meta_transitions");
  run.control_cycles = get_int(doc, "control_cycles");
  run.busy_pe_cycles = get_int(doc, "busy_pe_cycles");
  run.offered_pe_cycles = get_int(doc, "offered_pe_cycles");
  run.global_ors = get_int(doc, "global_ors");
  run.guard_switches = get_int(doc, "guard_switches");
  run.router_ops = get_int(doc, "router_ops");
  run.spawns = get_int(doc, "spawns");
  run.has_totals = true;
  if (const json::Value* prof = doc.find("profile")) {
    for (const json::Value& s : prof->elems) {
      StateRow row;
      row.state = get_int(s, "state");
      row.visits = get_int(s, "visits");
      row.enabled_min = get_int(s, "enabled_min");
      row.enabled_max = get_int(s, "enabled_max");
      row.enabled_sum = get_int(s, "enabled_sum");
      row.control_cycles = get_int(s, "control_cycles");
      row.busy_pe_cycles = get_int(s, "busy_pe_cycles");
      row.offered_pe_cycles = get_int(s, "offered_pe_cycles");
      row.global_ors = get_int(s, "global_ors");
      row.guard_switches = get_int(s, "guard_switches");
      row.router_ops = get_int(s, "router_ops");
      row.spawns = get_int(s, "spawns");
      run.states.push_back(row);
    }
  }
  return run;
}

/// mscc --trace-chrome documents: aggregate pid-2 "meta-state" complete
/// events into StateRows; collect pid-1 pass spans.
Run load_chrome(const json::Value& doc, const std::string& path) {
  Run run;
  run.source = path;
  run.kind = "chrome-trace";
  const json::Value& events = doc.at("traceEvents");
  for (const json::Value& e : events.elems) {
    const json::Value* ph = e.find("ph");
    if (!ph || ph->as_string() != "X") continue;
    const std::int64_t pid = get_int(e, "pid");
    if (pid == 2) {
      const json::Value* args = e.find("args");
      if (!args) continue;
      const std::int64_t id = get_int(*args, "state");
      if (run.states.size() <= static_cast<std::size_t>(id))
        run.states.resize(static_cast<std::size_t>(id) + 1);
      StateRow& row = run.states[static_cast<std::size_t>(id)];
      row.state = id;
      const std::int64_t enabled = get_int(*args, "enabled_pes");
      if (row.visits == 0 || enabled < row.enabled_min)
        row.enabled_min = enabled;
      row.enabled_max = std::max(row.enabled_max, enabled);
      row.enabled_sum += enabled;
      ++row.visits;
      row.control_cycles += get_int(e, "dur");
      row.busy_pe_cycles += get_int(*args, "busy_pe_cycles");
      row.offered_pe_cycles += get_int(*args, "offered_pe_cycles");
      row.global_ors += get_int(*args, "global_ors");
      row.guard_switches += get_int(*args, "guard_switches");
      row.router_ops += get_int(*args, "router_ops");
      row.spawns += get_int(*args, "spawns");
    } else if (pid == 1) {
      const json::Value* cat = e.find("cat");
      if (cat && cat->as_string() == "pass")
        run.passes.emplace_back(e.at("name").as_string(), get_int(e, "dur"));
    }
  }
  run.meta_states = static_cast<std::int64_t>(run.states.size());
  for (const StateRow& row : run.states) {
    run.meta_transitions += row.visits;
    run.control_cycles += row.control_cycles;
    run.busy_pe_cycles += row.busy_pe_cycles;
    run.offered_pe_cycles += row.offered_pe_cycles;
    run.global_ors += row.global_ors;
    run.guard_switches += row.guard_switches;
    run.router_ops += row.router_ops;
    run.spawns += row.spawns;
  }
  run.has_totals = true;
  return run;
}

json::Value read_doc(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(cat("cannot open '", path, "'"));
  std::ostringstream ss;
  ss << in.rdbuf();
  return json::parse(ss.str());
}

Run load_doc(const json::Value& doc, const std::string& path) {
  if (doc.find("traceEvents")) return load_chrome(doc, path);
  if (doc.find("engine")) return load_profile(doc, path);
  throw std::runtime_error(
      cat("'", path,
          "': not a recognized mscc output (expected a --profile-simd/"
          "--trace-simd stats object, a --coschedule profile, or a "
          "--trace-chrome event file)"));
}

Run load(const std::string& path) { return load_doc(read_doc(path), path); }

/// States ranked hottest-first (control-cycle share, then visits, then id
/// for a total, deterministic order).
std::vector<const StateRow*> ranked(const Run& run) {
  std::vector<const StateRow*> rows;
  for (const StateRow& r : run.states)
    if (r.visits > 0) rows.push_back(&r);
  std::sort(rows.begin(), rows.end(),
            [](const StateRow* a, const StateRow* b) {
              if (a->control_cycles != b->control_cycles)
                return a->control_cycles > b->control_cycles;
              if (a->visits != b->visits) return a->visits > b->visits;
              return a->state < b->state;
            });
  return rows;
}

void print_summary(const Run& run) {
  std::printf("== run summary: %s ==\n", run.source.c_str());
  std::printf("  input kind        %s\n", run.kind.c_str());
  if (run.engine != "?") std::printf("  engine            %s\n",
                                     run.engine.c_str());
  if (!run.isa.empty())
    std::printf("  simd isa          %s (lane width %" PRId64 ")\n",
                run.isa.c_str(), run.isa_lane_width);
  std::int64_t visited = 0;
  for (const StateRow& r : run.states)
    if (r.visits > 0) ++visited;
  if (run.states.empty())
    std::printf("  meta states       %" PRId64 "\n", run.meta_states);
  else
    std::printf("  meta states       %" PRId64 " (%" PRId64 " visited)\n",
                run.meta_states, visited);
  std::printf("  meta transitions  %" PRId64 "\n", run.meta_transitions);
  std::printf("  control cycles    %" PRId64 "\n", run.control_cycles);
  std::printf("  PE utilization    %.1f%%  (busy %" PRId64 " / offered %" PRId64
              ")\n",
              100.0 * run.utilization(), run.busy_pe_cycles,
              run.offered_pe_cycles);
  std::printf("  global-ors %" PRId64 "  router ops %" PRId64
              "  guard switches %" PRId64 "  spawns %" PRId64 "\n",
              run.global_ors, run.router_ops, run.guard_switches, run.spawns);
}

void print_table(const Run& run, std::size_t top) {
  std::vector<const StateRow*> rows = ranked(run);
  if (rows.empty()) return;
  if (top > 0 && rows.size() > top) rows.resize(top);
  std::printf(
      "\n== per-meta-state utilization (hottest first%s) ==\n",
      top > 0 && ranked(run).size() > top
          ? cat(", top ", top, " of ", ranked(run).size()).c_str()
          : "");
  std::printf("  %-6s %7s %7s %6s %7s  %-14s %6s %7s %7s\n", "state", "visits",
              "cycles", "share", "util", "enabled min/avg/max", "gors",
              "router", "guards");
  for (const StateRow* r : rows) {
    const double share =
        run.control_cycles == 0
            ? 0.0
            : 100.0 * static_cast<double>(r->control_cycles) /
                  static_cast<double>(run.control_cycles);
    std::printf("  ms%-4" PRId64 " %7" PRId64 " %7" PRId64
                " %5.1f%% %6.1f%%  %5" PRId64 "/%5.1f/%-5" PRId64 " %6" PRId64
                " %7" PRId64 " %7" PRId64 "\n",
                r->state, r->visits, r->control_cycles, share,
                100.0 * r->utilization(), r->enabled_min, r->enabled_mean(),
                r->enabled_max, r->global_ors, r->router_ops,
                r->guard_switches);
  }
}

/// §4's lens: overall PE utilization as a function of how many (hottest)
/// meta states are counted — shows how concentrated the run's work is.
void print_curve(const Run& run) {
  std::vector<const StateRow*> rows = ranked(run);
  if (rows.empty()) return;
  std::printf("\n== PE utilization vs. meta-state count ==\n");
  std::printf("  %-11s %9s %9s %7s %7s\n", "states", "busy", "offered", "util",
              "cycles%");
  std::int64_t busy = 0, offered = 0, cycles = 0;
  for (std::size_t n = 0; n < rows.size(); ++n) {
    busy += rows[n]->busy_pe_cycles;
    offered += rows[n]->offered_pe_cycles;
    cycles += rows[n]->control_cycles;
    // Log-spaced sampling keeps big automata readable.
    const bool emit = n + 1 == rows.size() || n < 4 || ((n + 1) & n) == 0;
    if (!emit) continue;
    std::printf("  top %-7zu %9" PRId64 " %9" PRId64 " %6.1f%% %6.1f%%\n",
                n + 1, busy, offered,
                offered == 0 ? 100.0
                             : 100.0 * static_cast<double>(busy) /
                                   static_cast<double>(offered),
                run.control_cycles == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(cycles) /
                          static_cast<double>(run.control_cycles));
  }
}

void print_passes(const Run& run) {
  if (run.passes.empty()) return;
  std::int64_t total = 0;
  for (const auto& [name, us] : run.passes) total += us;
  std::printf("\n== pass wall time ==\n");
  for (const auto& [name, us] : run.passes)
    std::printf("  %-12s %8" PRId64 " us  %5.1f%%\n", name.c_str(), us,
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(us) /
                                 static_cast<double>(total));
  std::printf("  %-12s %8" PRId64 " us\n", "total", total);
}

void print_diff(const Run& before, const Run& after, std::size_t top) {
  std::printf("== diff: %s -> %s ==\n", before.source.c_str(),
              after.source.c_str());
  const auto line = [](const char* name, std::int64_t b, std::int64_t a) {
    std::printf("  %-18s %10" PRId64 " -> %10" PRId64 "  (%+" PRId64 ")\n",
                name, b, a, a - b);
  };
  line("meta states", before.meta_states, after.meta_states);
  line("meta transitions", before.meta_transitions, after.meta_transitions);
  line("control cycles", before.control_cycles, after.control_cycles);
  line("busy PE cycles", before.busy_pe_cycles, after.busy_pe_cycles);
  line("offered PE cycles", before.offered_pe_cycles,
       after.offered_pe_cycles);
  line("global-ors", before.global_ors, after.global_ors);
  line("router ops", before.router_ops, after.router_ops);
  line("guard switches", before.guard_switches, after.guard_switches);
  std::printf("  %-18s %9.1f%% -> %9.1f%%  (%+.1f pts)\n", "PE utilization",
              100.0 * before.utilization(), 100.0 * after.utilization(),
              100.0 * (after.utilization() - before.utilization()));

  if (before.states.empty() || after.states.empty()) return;
  // Per-state deltas over the union of visited states, ranked by absolute
  // control-cycle movement.
  struct Delta {
    std::int64_t state, d_visits, d_cycles;
    double d_util;
  };
  std::vector<Delta> deltas;
  const std::size_t n = std::max(before.states.size(), after.states.size());
  for (std::size_t i = 0; i < n; ++i) {
    const StateRow none{static_cast<std::int64_t>(i)};
    const StateRow& b = i < before.states.size() ? before.states[i] : none;
    const StateRow& a = i < after.states.size() ? after.states[i] : none;
    if (b.visits == 0 && a.visits == 0) continue;
    deltas.push_back({static_cast<std::int64_t>(i), a.visits - b.visits,
                      a.control_cycles - b.control_cycles,
                      a.utilization() - b.utilization()});
  }
  std::sort(deltas.begin(), deltas.end(), [](const Delta& x, const Delta& y) {
    const std::int64_t ax = x.d_cycles < 0 ? -x.d_cycles : x.d_cycles;
    const std::int64_t ay = y.d_cycles < 0 ? -y.d_cycles : y.d_cycles;
    if (ax != ay) return ax > ay;
    return x.state < y.state;
  });
  if (top > 0 && deltas.size() > top) deltas.resize(top);
  std::printf("\n== per-meta-state movement (largest cycle delta first) ==\n");
  std::printf("  %-6s %9s %9s %9s\n", "state", "dvisits", "dcycles", "dutil");
  for (const Delta& d : deltas)
    std::printf("  ms%-4" PRId64 " %+9" PRId64 " %+9" PRId64 " %+8.1f%%\n",
                d.state, d.d_visits, d.d_cycles, 100.0 * d.d_util);
}

/// mscc --coschedule documents (DESIGN.md §12): a machine-level header —
/// policy, clock, held/idle PE-cycle split, array utilization — followed
/// by one full per-program section per entry. Each program's "run"
/// sub-object is exactly the single-run schema, so the standard summary/
/// table/curve renderers apply unchanged.
void print_coschedule(const json::Value& doc, const std::string& path,
                      std::size_t top) {
  std::printf("== co-scheduled run: %s ==\n", path.c_str());
  if (const json::Value* p = doc.find("policy"))
    std::printf("  policy            %s\n", p->as_string().c_str());
  std::printf("  seed              %" PRId64 "\n", get_int(doc, "seed"));
  std::printf("  quantum           %" PRId64 "\n", get_int(doc, "quantum"));
  const json::Value& programs = doc.at("programs");
  std::printf("  programs          %zu\n", programs.elems.size());
  std::printf("  machine PEs       %" PRId64 "\n", get_int(doc, "machine_pes"));
  std::printf("  elapsed cycles    %" PRId64 "\n",
              get_int(doc, "elapsed_control_cycles"));
  const std::int64_t held = get_int(doc, "held_pe_cycles");
  const std::int64_t idle = get_int(doc, "idle_pe_cycles");
  const std::int64_t busy = get_int(doc.at("machine"), "busy_pe_cycles");
  std::printf("  held/idle PE-cyc  %" PRId64 " / %" PRId64 "\n", held, idle);
  std::printf("  array utilization %.1f%%  (busy %" PRId64 " / resident %"
              PRId64 ")\n",
              held + idle == 0 ? 100.0
                               : 100.0 * static_cast<double>(busy) /
                                     static_cast<double>(held + idle),
              busy, held + idle);

  for (const json::Value& p : programs.elems) {
    const std::string name =
        p.find("name") ? p.at("name").as_string() : "?";
    std::printf("\n-- program %s: %" PRId64 " PEs, %" PRId64
                " steps, done @%" PRId64 " (held %" PRId64 ", idle %" PRId64
                " PE-cycles) --\n",
                name.c_str(), get_int(p, "pes"), get_int(p, "steps"),
                get_int(p, "completion_cycle"), get_int(p, "held_pe_cycles"),
                get_int(p, "idle_pe_cycles"));
    const Run run = load_profile(p.at("run"), cat(path, "#", name));
    print_summary(run);
    print_table(run, top);
    print_curve(run);
  }
}

/// mscd request traces (DESIGN.md §15): the serving tier's RequestTrace
/// as emitted on the access log, by the slowlog op, and as the "trace"
/// member of a trace-armed response. One per-phase table per request;
/// the phase order matches the request lifecycle.
void print_reqtrace(const json::Value& doc) {
  std::printf("-- request #%" PRId64 " (conn %" PRId64 ") --\n",
              get_int(doc, "request_id"), get_int(doc, "conn"));
  const auto field = [&](const char* key) {
    const json::Value* v = doc.find(key);
    return v && v->is_string() && !v->as_string().empty() ? v->as_string()
                                                          : std::string("-");
  };
  std::printf("  tenant %s  op %s  outcome %s  cache %s\n",
              field("tenant").c_str(), field("op").c_str(),
              field("outcome").c_str(), field("cache").c_str());
  if (field("error_kind") != "-")
    std::printf("  error kind        %s\n", field("error_kind").c_str());
  std::printf("  bytes in/out      %" PRId64 " / %" PRId64 "\n",
              get_int(doc, "bytes_in"), get_int(doc, "bytes_out"));
  const std::int64_t total = get_int(doc, "total_us");
  std::printf("  total             %" PRId64 " us\n", total);
  if (const json::Value* phases = doc.find("phase_micros")) {
    std::printf("  %-12s %8s %7s\n", "phase", "us", "share");
    for (const auto& [name, v] : phases->members) {
      const std::int64_t us = v.is_number() ? v.as_int() : 0;
      std::printf("  %-12s %8" PRId64 " %6.1f%%\n", name.c_str(), us,
                  total == 0 ? 0.0
                             : 100.0 * static_cast<double>(us) /
                                   static_cast<double>(total));
    }
  }
}

/// mscd slowlog op payloads — either the full response payload
/// (`{"threshold_micros": …, "slowlog": […]}`) or the bare trace array
/// that `mscli --emit slowlog` extracts. Traces arrive slowest-first.
void print_slowlog(const json::Value& doc, const std::string& path,
                   std::size_t top) {
  const json::Value& entries = doc.is_array() ? doc : doc.at("slowlog");
  if (doc.is_array())
    std::printf("== slowlog: %s (%zu captured) ==\n", path.c_str(),
                entries.elems.size());
  else
    std::printf("== slowlog: %s (threshold %" PRId64 " us, %zu captured) ==\n",
                path.c_str(), get_int(doc, "threshold_micros"),
                entries.elems.size());
  std::size_t shown = 0;
  for (const json::Value& e : entries.elems) {
    if (top > 0 && ++shown > top) {
      std::printf("\n  (… %zu more; raise --top to see them)\n",
                  entries.elems.size() - top);
      break;
    }
    std::printf("\n");
    print_reqtrace(e);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string diff_path;
  std::size_t top = 10;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (starts_with(arg, "--")) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) std::exit(usage());
      return argv[++i];
    };
    if (arg == "--top") top = static_cast<std::size_t>(std::atoll(next().c_str()));
    else if (arg == "--diff") diff_path = next();
    else if (arg == "--help" || arg == "-h") return usage();
    else if (!arg.empty() && arg[0] == '-') return usage();
    else inputs.push_back(arg);
  }
  if (inputs.size() != 1) return usage();

  try {
    const json::Value doc = read_doc(inputs[0]);
    if (doc.find("slowlog") ||
        (doc.is_array() && !doc.elems.empty() &&
         doc.elems.front().find("request_id"))) {
      print_slowlog(doc, inputs[0], top);
      return kOk;
    }
    if (doc.find("request_id") && doc.find("phase_micros")) {
      print_reqtrace(doc);
      return kOk;
    }
    if (doc.find("coschedule")) {
      if (!diff_path.empty())
        throw std::runtime_error(
            "--diff does not support co-scheduled profiles; diff the "
            "per-program sections individually");
      print_coschedule(doc, inputs[0], top);
      return kOk;
    }
    const Run run = load_doc(doc, inputs[0]);
    if (!diff_path.empty()) {
      print_diff(run, load(diff_path), top);
      return kOk;
    }
    print_summary(run);
    print_table(run, top);
    print_curve(run);
    print_passes(run);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mscprof: %s\n", e.what());
    return kInternal;
  }
  return kOk;
}
