// mscc — the meta-state converter driver, a command-line equivalent of the
// paper's prototype (§4): MIMDC in, meta-state automaton / MPL-style SIMD
// code / DOT graphs out, with optional execution on the simulated machines.
//
// The toolchain is a named pass pipeline (DESIGN.md §9): --print-pipeline
// shows it, --pass-pipeline / --disable-pass reshape it, --pass-timings
// exports per-pass telemetry, --verify-each checks invariants at every
// pass boundary.
//
// Usage:
//   mscc [options] file.mimdc
//   mscc [options] --kernel listing1
//
// Exit codes (one per failing stage, so scripts can tell them apart):
//   0  success
//   1  I/O or internal error
//   2  bad usage or pipeline-construction error (unknown pass, bad order)
//   3  compile error in the MIMDC input
//   4  meta-state explosion (conversion exceeded --max-meta-states)
//   5  machine fault while executing (--run)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "msc/codegen/program.hpp"
#include "msc/codegen/translate.hpp"
#include "msc/core/profile.hpp"
#include "msc/core/serialize.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/ir/exec.hpp"
#include "msc/pass/pass.hpp"
#include "msc/kernels/verified.hpp"
#include "msc/simd/coschedule.hpp"
#include "msc/simd/machine.hpp"
#include "msc/support/metrics.hpp"
#include "msc/support/simd_isa.hpp"
#include "msc/support/str.hpp"
#include "msc/support/trace.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

namespace {

enum ExitCode {
  kOk = 0,
  kInternal = 1,
  kUsage = 2,
  kCompile = 3,
  kExplosion = 4,
  kFault = 5,
};

int usage() {
  std::fprintf(
      stderr,
      "usage: mscc [options] (file.mimdc | --kernel <name> | --coschedule L)\n"
      "\n"
      "conversion stages (shorthands for pipeline edits):\n"
      "  --compress          §2.5 meta-state compression\n"
      "  --adaptive          base conversion, compress only on state explosion\n"
      "  --no-subsume        keep subset meta states when compressing\n"
      "  --prune             §2.6 barrier handling exactly as in the paper\n"
      "                      (compile error with spawn, more than one barrier\n"
      "                      state, or --compress — those corners are unsound)\n"
      "  --split             §2.4 MIMD-state time splitting\n"
      "\n"
      "pass pipeline:\n"
      "  --print-pipeline    print the resolved pipeline and the full pass\n"
      "                      registry, then exit\n"
      "  --pass-pipeline L   run exactly the comma-separated pass list L\n"
      "                      (overrides the stage shorthands above)\n"
      "  --disable-pass P    drop pass P from the pipeline (repeatable)\n"
      "  --verify-each       run the structural invariant checkers after\n"
      "                      every pass; a failure names the offending pass\n"
      "  --pass-timings F    write per-pass telemetry JSON (wall time,\n"
      "                      state/arc counts, counters; DESIGN.md §9) to\n"
      "                      F; '-' writes to stdout\n"
      "\n"
      "conversion engine:\n"
      "  --no-cache          disable the successor-set memo cache (it\n"
      "                      otherwise survives --split restarts)\n"
      "  --threads N         frontier-expansion workers; 1 = serial,\n"
      "                      0 = all cores; output is bit-identical for\n"
      "                      every N\n"
      "  --max-meta-states N abort conversion (exit 4) past N meta states\n"
      "  --trace-convert F   write conversion stats JSON (cache hits/misses,\n"
      "                      restarts, per-phase wall time) to F; '-' = stdout\n"
      "\n"
      "output and execution:\n"
      "  --no-csi            serialize meta-state bodies instead of CSI (§3.1)\n"
      "  --emit K            mpl|meta|mimd|dot|dot-mimd|profile|module\n"
      "                      (default meta)\n"
      "  --run               also execute on SIMD machine + MIMD oracle\n"
      "  --trace             like --run, plus a per-meta-state occupancy trace\n"
      "  --simd-engine E     fast = occupancy-indexed engine (default),\n"
      "                      reference = the scalar oracle, codegen = the\n"
      "                      translation-cached specialized engine; results\n"
      "                      and stats are bit-identical in every case\n"
      "  --simd-isa I        auto = best host ISA (default), scalar = force\n"
      "                      the portable path, avx2|neon = require that\n"
      "                      ISA (error if the host lacks it); results and\n"
      "                      stats are bit-identical in every case\n"
      "  --trace-simd F      implies --run; write SIMD execution stats JSON\n"
      "                      (engine, cycle counters, utilization, router\n"
      "                      ops, per-meta-state visits) to F; '-' = stdout\n"
      "  --nprocs N          PEs (default 8)\n"
      "  --active N          initially active PEs (default all)\n"
      "  --seed S            per-PE input seed (default 1)\n"
      "\n"
      "kernels and co-scheduling (DESIGN.md §12):\n"
      "  --kernel K          use a built-in workload kernel, or a verified\n"
      "                      kernel 'name[@n]' (reduce, scan, oddeven,\n"
      "                      stencil, bfs, workqueue; default n = 8) — the\n"
      "                      latter preset --nprocs/--active to the kernel's\n"
      "                      geometry and, with --run, check the results\n"
      "                      against the host-side ground truth\n"
      "  --coschedule L      MASIM-style time-multiplexing: convert each\n"
      "                      verified kernel in the comma list L (e.g.\n"
      "                      'reduce@65,workqueue@64') and co-schedule the\n"
      "                      automata on one simulated machine; prints per-\n"
      "                      program attribution + machine utilization and\n"
      "                      checks every program against ground truth\n"
      "  --cosched-policy P  sequential | rr | greedy (default rr)\n"
      "  --cosched-quantum N meta-state steps per scheduling turn (default 1)\n"
      "                      (--seed also shuffles the program order;\n"
      "                      --profile-simd writes the co-scheduled profile\n"
      "                      JSON with per-program sections for mscprof)\n"
      "\n"
      "observability (DESIGN.md §10; read the outputs with mscprof):\n"
      "  --profile-simd F    implies --run; write per-meta-state utilization\n"
      "                      profiles (visits, enabled-PE min/mean/max and\n"
      "                      histogram, cycle/global-or/router shares) as\n"
      "                      JSON to F; '-' = stdout\n"
      "  --trace-chrome F    write a Chrome trace-event JSON file to F\n"
      "                      ('-' = stdout): wall-clock spans for every pass\n"
      "                      and conversion phase (pid 1) plus, with --run,\n"
      "                      one event per executed meta state on the\n"
      "                      simulated-cycle timeline (pid 2); load in\n"
      "                      Perfetto / chrome://tracing\n"
      "  --metrics F         write the process-global metrics registry\n"
      "                      (counters, gauges, histograms from conversion,\n"
      "                      passes, and the SIMD machines) as JSON to F;\n"
      "                      '-' = stdout\n"
      "\n"
      "exit codes: 0 ok, 1 I/O or internal error, 2 usage/pipeline error,\n"
      "            3 compile error, 4 state explosion, 5 machine fault\n");
  return kUsage;
}

/// file:line:col: error: message, plus the offending source line with a
/// caret under the column — the same rendering for every stage that can
/// point at source.
void render_compile_error(const std::string& file, const std::string& source,
                          const CompileError& e) {
  const SourceLoc loc = e.loc();
  std::string message = e.what();
  // CompileError::what() is pre-formatted as "line:col: message"; strip
  // the prefix so the location appears exactly once.
  const std::string prefix = cat(loc.line, ":", loc.col, ": ");
  if (starts_with(message, prefix)) message = message.substr(prefix.size());
  if (loc.valid())
    std::fprintf(stderr, "%s:%u:%u: error: %s\n", file.c_str(), loc.line,
                 loc.col, message.c_str());
  else
    std::fprintf(stderr, "%s: error: %s\n", file.c_str(), message.c_str());

  if (!loc.valid()) return;
  const std::vector<std::string> lines = split(source, '\n');
  if (loc.line > lines.size()) return;
  const std::string& text = lines[loc.line - 1];
  std::fprintf(stderr, "  %s\n", text.c_str());
  std::string caret;
  for (std::uint32_t c = 1; c < loc.col && c <= text.size(); ++c)
    caret += text[c - 1] == '\t' ? '\t' : ' ';
  std::fprintf(stderr, "  %s^\n", caret.c_str());
}

int print_pipeline(const driver::PipelineOptions& popts) {
  pass::ManagerOptions mo;
  mo.pipeline = driver::resolve_pipeline(popts);
  mo.disabled = popts.disabled;
  pass::PassManager pm(std::move(mo));
  std::printf("pipeline: %s\n\n", join(pm.names(), " -> ").c_str());
  std::printf("registered passes:\n");
  std::printf("  %-12s %-10s %-8s %s\n", "name", "stage", "default",
              "description");
  for (const pass::Pass& p : pass::registered_passes())
    std::printf("  %-12s %-10s %-8s %s\n", p.name.c_str(),
                pass::to_string(p.stage), p.default_on ? "on" : "off",
                p.description.c_str());
  return kOk;
}

/// --coschedule: convert each verified kernel in `specs`, load all the
/// automata onto one simulated machine and time-multiplex them. Prints
/// per-program attribution plus machine-level utilization, checks every
/// program against its host-side ground truth, and (with --profile-simd /
/// --trace-simd) writes the co-scheduled profile document.
int run_coschedule(const std::vector<std::string>& specs,
                   driver::PipelineOptions popts, const mimd::RunConfig& base,
                   std::uint64_t seed, const simd::CoOptions& co,
                   const std::string& profile_path,
                   const std::string& trace_path, std::string& input_name,
                   std::string& source) {
  ir::CostModel cost;
  if (popts.pipeline.empty()) popts.pipeline = driver::resolve_pipeline(popts);
  if (std::find(popts.pipeline.begin(), popts.pipeline.end(), "codegen") ==
      popts.pipeline.end())
    popts.pipeline.push_back("codegen");

  // Converted holds the SimdProgram the machines reference; keep each at a
  // stable address for the machines' lifetime.
  std::vector<std::unique_ptr<driver::Converted>> converted;
  std::vector<kernels::VerifiedCase> cases;
  std::vector<mimd::RunConfig> configs;
  simd::CoScheduler cs;
  const bool profiling = !profile_path.empty();
  for (const std::string& spec : specs) {
    kernels::VerifiedParams params;
    params.input_seed = seed;
    kernels::VerifiedCase c = kernels::parse_case(spec, params);
    input_name = cat("<kernel:", spec, ">");
    source = c.source;
    auto conv = std::make_unique<driver::Converted>(
        driver::convert(c.source, cost, popts));
    mimd::RunConfig config = base;
    config.nprocs = c.config.nprocs;
    config.initial_active = c.config.initial_active;
    config.reuse_halted_pes = c.config.reuse_halted_pes;
    auto machine = simd::make_machine(*conv->prog, cost, config);
    driver::seed_machine(*machine, conv->compiled, config, seed);
    if (profiling) machine->enable_profiling();
    cs.add_program(spec, std::move(machine));
    converted.push_back(std::move(conv));
    cases.push_back(std::move(c));
    configs.push_back(config);
  }

  const simd::CoResult r = cs.run(co);

  std::printf("co-schedule: policy=%s seed=%llu quantum=%lld engine=%s "
              "programs=%zu machine-pes=%lld\n\n",
              simd::copolicy_name(r.policy),
              static_cast<unsigned long long>(r.seed),
              static_cast<long long>(r.quantum),
              simd::engine_name(base.engine), r.programs.size(),
              static_cast<long long>(r.machine_pes));
  std::printf("%-18s %5s %7s %10s %10s %6s %10s %10s  %s\n", "program", "pes",
              "steps", "cycles", "busy", "util%", "done@", "idle-pe",
              "ground-truth");
  int rc = kOk;
  for (std::size_t i = 0; i < r.programs.size(); ++i) {
    const simd::CoProgramResult& p = r.programs[i];
    const driver::Observed obs = driver::observe_simd(
        cs.machine(i), converted[i]->compiled, configs[i]);
    const std::string verdict = kernels::check(cases[i], obs);
    if (!verdict.empty()) {
      rc = kInternal;
      std::fprintf(stderr, "mscc: ground-truth mismatch: %s\n",
                   verdict.c_str());
    }
    std::printf("%-18s %5lld %7lld %10lld %10lld %6.1f %10lld %10lld  %s\n",
                p.name.c_str(), static_cast<long long>(p.pes),
                static_cast<long long>(p.steps),
                static_cast<long long>(p.stats.control_cycles),
                static_cast<long long>(p.stats.busy_pe_cycles),
                100.0 * p.utilization(),
                static_cast<long long>(p.completion_cycle),
                static_cast<long long>(p.idle_pe_cycles),
                verdict.empty() ? "ok" : "FAIL");
  }
  std::printf("\nmachine: elapsed=%lld busy=%lld held=%lld idle=%lld "
              "utilization=%.1f%%\n",
              static_cast<long long>(r.elapsed_control_cycles),
              static_cast<long long>(r.machine.busy_pe_cycles),
              static_cast<long long>(r.held_pe_cycles),
              static_cast<long long>(r.idle_pe_cycles),
              100.0 * r.machine_utilization());

  if (!profile_path.empty())
    driver::write_json_file(simd::to_json(r), "co-scheduled profile",
                            profile_path);
  if (!trace_path.empty())
    driver::write_json_file(simd::to_json(r), "co-scheduled trace",
                            trace_path);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string source, input_name = "<stdin>", emit = "meta";
  driver::PipelineOptions popts;
  core::ConvertOptions& copts = popts.convert;
  codegen::CodegenOptions& gopts = popts.codegen;
  mimd::RunConfig config;
  config.nprocs = 8;
  bool run = false;
  bool trace = false;
  bool show_pipeline = false;
  std::string trace_simd_path;
  std::string profile_simd_path;
  std::string trace_chrome_path;
  std::string metrics_path;
  std::uint64_t seed = 1;
  std::vector<std::string> cosched_specs;
  simd::CoOptions co;
  std::optional<std::string> verified_spec;
  bool user_nprocs = false;
  bool user_active = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both "--flag value" and "--flag=value".
    std::string inline_value;
    bool has_inline = false;
    if (starts_with(arg, "--")) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) std::exit(usage());
      return argv[++i];
    };
    if (arg == "--compress") copts.compress = true;
    else if (arg == "--adaptive") popts.adaptive = true;
    else if (arg == "--no-subsume") copts.subsume = false;
    else if (arg == "--prune") copts.barrier_mode = core::BarrierMode::PaperPrune;
    else if (arg == "--split") copts.time_split = true;
    else if (arg == "--no-cache") copts.memoize = false;
    else if (arg == "--threads")
      copts.threads = static_cast<unsigned>(std::atoll(next().c_str()));
    else if (arg == "--max-meta-states")
      copts.max_meta_states =
          static_cast<std::size_t>(std::atoll(next().c_str()));
    else if (arg == "--trace-convert") popts.trace_convert_path = next();
    else if (arg == "--print-pipeline") show_pipeline = true;
    else if (arg == "--pass-pipeline") {
      popts.pipeline.clear();
      for (const std::string& name : split(next(), ','))
        if (!name.empty()) popts.pipeline.push_back(name);
    }
    else if (arg == "--disable-pass") popts.disabled.push_back(next());
    else if (arg == "--verify-each") popts.verify_each = true;
    else if (arg == "--pass-timings") popts.pass_timings_path = next();
    else if (arg == "--no-csi") gopts.use_csi = false;
    else if (arg == "--emit") emit = next();
    else if (arg == "--run") run = true;
    else if (arg == "--trace") { run = true; trace = true; }
    else if (arg == "--simd-engine") {
      try {
        config.engine = simd::parse_engine(next());
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "mscc: %s\n", e.what());
        return usage();
      }
    }
    else if (arg == "--simd-isa") {
      try {
        config.simd_isa = parse_simd_isa(next());
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "mscc: %s\n", e.what());
        return usage();
      }
    }
    else if (arg == "--trace-simd") { run = true; trace_simd_path = next(); }
    else if (arg == "--profile-simd") { run = true; profile_simd_path = next(); }
    else if (arg == "--trace-chrome") trace_chrome_path = next();
    else if (arg == "--metrics") metrics_path = next();
    else if (arg == "--nprocs") {
      config.nprocs = std::atoll(next().c_str());
      user_nprocs = true;
    }
    else if (arg == "--active") {
      config.initial_active = std::atoll(next().c_str());
      user_active = true;
    }
    else if (arg == "--seed")
      seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
    else if (arg == "--kernel") {
      const std::string name = next();
      if (kernels::is_verified(name.substr(0, name.find('@')))) {
        verified_spec = name;  // source + geometry resolved after parsing
      } else {
        source = workload::kernel(name).source;
      }
      input_name = cat("<kernel:", name, ">");
    }
    else if (arg == "--coschedule") {
      for (const std::string& spec : split(next(), ','))
        if (!spec.empty()) cosched_specs.push_back(spec);
    }
    else if (arg == "--cosched-policy") {
      try {
        co.policy = simd::parse_copolicy(next());
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "mscc: %s\n", e.what());
        return usage();
      }
    }
    else if (arg == "--cosched-quantum")
      co.quantum = std::atoll(next().c_str());
    else if (arg == "--help" || arg == "-h") return usage();
    else if (!arg.empty() && arg[0] == '-') return usage();
    else {
      std::ifstream in(arg);
      if (!in) {
        std::fprintf(stderr, "mscc: cannot open '%s'\n", arg.c_str());
        return kInternal;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      source = ss.str();
      input_name = arg;
    }
  }

  if (show_pipeline) {
    try {
      return print_pipeline(popts);
    } catch (const pass::PipelineError& e) {
      std::fprintf(stderr, "mscc: %s\n", e.what());
      return kUsage;
    }
  }
  if (source.empty() && !verified_spec && cosched_specs.empty())
    return usage();

  // Verified kernels resolve after parsing so --seed/--nprocs are known;
  // they preset the machine geometry unless the flags override it.
  std::optional<kernels::VerifiedCase> vcase;
  if (verified_spec && cosched_specs.empty()) {
    try {
      kernels::VerifiedParams params;
      params.input_seed = seed;
      if (user_nprocs) params.nprocs = config.nprocs;
      kernels::VerifiedCase c = kernels::parse_case(*verified_spec, params);
      source = c.source;
      if (!user_nprocs) config.nprocs = c.config.nprocs;
      if (!user_active) config.initial_active = c.config.initial_active;
      config.reuse_halted_pes = c.config.reuse_halted_pes;
      vcase = std::move(c);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mscc: %s\n", e.what());
      return usage();
    }
  }

  const bool need_codegen = emit == "mpl" || run;
  if (need_codegen) {
    if (popts.pipeline.empty()) popts.pipeline = driver::resolve_pipeline(popts);
    popts.pipeline.push_back("codegen");
  }

  // One sink spans the whole invocation: pipeline spans land on pid 1, the
  // SIMD machine's per-meta-state events (with --run) on pid 2.
  std::optional<telemetry::TraceSink> chrome;
  if (!trace_chrome_path.empty()) {
    chrome.emplace();
    chrome->name_process(telemetry::TraceSink::kToolchainPid, "mscc toolchain");
    chrome->name_process(telemetry::TraceSink::kSimdPid, "simd machine");
    popts.trace_sink = &*chrome;
  }

  try {
    if (!cosched_specs.empty()) {
      co.seed = seed;
      return run_coschedule(cosched_specs, popts, config, seed, co,
                            profile_simd_path, trace_simd_path, input_name,
                            source);
    }
    ir::CostModel cost;
    driver::Converted converted = driver::convert(source, cost, popts);
    driver::Compiled& compiled = converted.compiled;
    for (const std::string& msg : compiled.diags.messages())
      std::fprintf(stderr, "%s\n", msg.c_str());
    core::ConvertResult& conv = converted.conversion;
    if (need_codegen && !converted.prog)
      throw pass::PipelineError(
          "--emit mpl / --run need the 'codegen' pass, but the pipeline "
          "omits it");

    if (emit == "mimd") {
      std::printf("%s", conv.graph.dump().c_str());
    } else if (emit == "meta") {
      std::printf("%s", conv.automaton.dump().c_str());
    } else if (emit == "dot") {
      std::printf("%s", conv.automaton.to_dot().c_str());
    } else if (emit == "dot-mimd") {
      std::printf("%s", conv.graph.to_dot().c_str());
    } else if (emit == "profile") {
      std::printf("%s", core::profile(conv.automaton).to_string().c_str());
    } else if (emit == "module") {
      std::printf("%s", core::serialize(
                            core::Module{conv.graph, conv.automaton, conv.stats})
                            .c_str());
    } else if (emit == "mpl") {
      std::printf("%s", codegen::to_mpl(*converted.prog, conv.graph).c_str());
    } else {
      return usage();
    }

    if (run) {
      simd::SimdStats stats;
      auto oracle = driver::run_oracle(compiled, config, seed);
      const bool observe_machine = trace || !trace_simd_path.empty() ||
                                   !profile_simd_path.empty() ||
                                   chrome.has_value();
      if (observe_machine) {
        // Step the SIMD machine manually, printing occupancy per state
        // and/or dumping the execution-stats JSON.
        class Printer final : public simd::SimdTracer {
         public:
          void on_state(core::MetaId id, const DynBitset& occ,
                        std::int64_t alive) override {
            std::printf("%5d  ms%-4u occ=%-18s alive=%lld\n", step_++, id,
                        occ.to_string().c_str(), static_cast<long long>(alive));
          }
          void on_transition(core::MetaId, core::MetaId to,
                             const DynBitset& apc) override {
            if (to == core::kNoMeta)
              std::printf("       exit on apc=%s\n", apc.to_string().c_str());
          }

         private:
          int step_ = 0;
        } printer;
        auto machine = simd::make_machine(*converted.prog, cost, config);
        driver::seed_machine(*machine, compiled, config, seed);
        if (trace) {
          machine->set_tracer(&printer);
          std::printf("\n%5s  %-6s %-22s %s\n", "step", "state", "occupancy",
                      "alive");
        }
        if (!profile_simd_path.empty()) machine->enable_profiling();
        if (chrome) machine->set_trace_sink(&*chrome);
        machine->run();
        if (!trace_simd_path.empty())
          driver::write_simd_trace(*machine, trace_simd_path);
        if (!profile_simd_path.empty())
          driver::write_json_file(simd::to_json(*machine), "simd profile",
                                  profile_simd_path);
      }
      auto simd = driver::run_simd(compiled, conv, config, seed, cost, gopts,
                                   &stats);
      std::printf("\noracle: %s\n", oracle.to_string().c_str());
      std::printf("simd  : %s\n", simd.to_string().c_str());
      std::printf("match : %s\n", oracle == simd ? "yes" : "NO");
      if (vcase && !user_active) {
        const std::string verdict = kernels::check(*vcase, simd);
        std::printf("ground-truth: %s\n", verdict.empty() ? "ok" : "FAIL");
        if (!verdict.empty()) {
          std::fprintf(stderr, "mscc: ground-truth mismatch: %s\n",
                       verdict.c_str());
          return kInternal;
        }
      }
      const SimdIsa run_isa = config.engine == mimd::SimdEngine::Reference
                                  ? SimdIsa::Scalar
                                  : resolve_simd_isa(config.simd_isa);
      std::printf("engine=%s isa=%s meta states=%zu cycles=%lld "
                  "utilization=%.1f%% global-ors=%lld\n",
                  simd::engine_name(config.engine), simd_isa_name(run_isa),
                  conv.automaton.num_states(),
                  static_cast<long long>(stats.control_cycles),
                  100.0 * stats.utilization(),
                  static_cast<long long>(stats.global_ors));
      if (config.engine == mimd::SimdEngine::Codegen) {
        const codegen::TranslationCacheStats tc =
            codegen::translation_cache_stats();
        std::printf("trans-cache: hits=%llu misses=%llu evictions=%llu "
                    "entries=%llu\n",
                    static_cast<unsigned long long>(tc.hits),
                    static_cast<unsigned long long>(tc.misses),
                    static_cast<unsigned long long>(tc.evictions),
                    static_cast<unsigned long long>(tc.entries));
      }
    }
    if (chrome)
      driver::write_json_file(chrome->to_json(), "chrome trace",
                              trace_chrome_path);
    if (!metrics_path.empty())
      driver::write_json_file(telemetry::MetricsRegistry::global().to_json(),
                              "metrics", metrics_path);
  } catch (const CompileError& e) {
    render_compile_error(input_name, source, e);
    return kCompile;
  } catch (const core::ExplosionError& e) {
    std::fprintf(stderr,
                 "mscc: state explosion: %s\n"
                 "mscc: note: retry with --compress or --adaptive, or raise "
                 "--max-meta-states\n",
                 e.what());
    return kExplosion;
  } catch (const ir::MachineFault& e) {
    std::fprintf(stderr, "mscc: machine fault: %s\n", e.what());
    return kFault;
  } catch (const pass::PipelineError& e) {
    std::fprintf(stderr, "mscc: %s\n", e.what());
    return kUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mscc: %s\n", e.what());
    return kInternal;
  }
  return kOk;
}
