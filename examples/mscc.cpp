// mscc — the meta-state converter driver, a command-line equivalent of the
// paper's prototype (§4): MIMDC in, meta-state automaton / MPL-style SIMD
// code / DOT graphs out, with optional execution on the simulated machines.
//
// Usage:
//   mscc [options] file.mimdc
//   mscc [options] --kernel listing1
//
// Options:
//   --compress          §2.5 meta-state compression
//   --adaptive          base conversion, compress only on state explosion
//   --no-subsume        keep subset meta states when compressing
//   --prune             §2.6 barrier handling exactly as in the paper
//   --split             §2.4 MIMD-state time splitting
//   --no-cache          disable the successor-set memo cache
//   --threads N         frontier-expansion workers (1 = serial, 0 = all cores;
//                       any value yields a bit-identical automaton)
//   --trace-convert F   write conversion stats (cache hits/misses, restarts,
//                       per-phase wall time) as JSON to file F ('-' = stdout)
//   --no-csi            serialize meta-state bodies instead of CSI (§3.1)
//   --emit mpl|meta|mimd|dot|dot-mimd|profile|module   what to print (default meta)
//   --run               also execute on SIMD machine + MIMD oracle
//   --trace             like --run, plus a per-meta-state occupancy trace
//   --simd-engine E     SIMD simulator engine: fast (occupancy-indexed,
//                       default) or reference (scalar oracle); both are
//                       bit-identical in results and stats
//   --trace-simd F      like --run, plus write execution stats (engine,
//                       cycles, utilization, per-meta-state visits) as
//                       JSON to file F ('-' = stdout)
//   --nprocs N          PEs (default 8)
//   --active N          initially active PEs (default all)
//   --seed S            per-PE input seed (default 1)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "msc/codegen/program.hpp"
#include "msc/core/profile.hpp"
#include "msc/core/serialize.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/simd/machine.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: mscc [--compress] [--adaptive] [--no-subsume] [--prune] "
               "[--split]\n"
               "            [--no-cache] [--threads N] [--trace-convert FILE] "
               "[--no-csi]\n"
               "            [--emit mpl|meta|mimd|dot|dot-mimd|profile|module] [--run]\n"
               "            [--simd-engine fast|reference] [--trace-simd FILE]\n"
               "            [--nprocs N] [--active N] [--seed S]\n"
               "            (file.mimdc | --kernel <name>)\n"
               "\n"
               "  --no-cache        disable the successor-set memo cache (it\n"
               "                    otherwise survives --split restarts)\n"
               "  --threads N       frontier-expansion workers; 1 = serial,\n"
               "                    0 = all cores; output is bit-identical\n"
               "                    for every N\n"
               "  --trace-convert F write conversion stats JSON (cache\n"
               "                    hits/misses, restarts, per-phase wall\n"
               "                    time) to F; '-' writes to stdout\n"
               "  --simd-engine E   fast = occupancy-indexed engine (default),\n"
               "                    reference = the scalar oracle; results and\n"
               "                    stats are bit-identical either way\n"
               "  --trace-simd F    implies --run; write SIMD execution stats\n"
               "                    JSON (engine, cycles, utilization,\n"
               "                    per-meta-state visits) to F; '-' = stdout\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string source, emit = "meta";
  driver::PipelineOptions popts;
  core::ConvertOptions& copts = popts.convert;
  codegen::CodegenOptions gopts;
  mimd::RunConfig config;
  config.nprocs = 8;
  bool run = false;
  bool trace = false;
  std::string trace_simd_path;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--compress") copts.compress = true;
    else if (arg == "--adaptive") popts.adaptive = true;
    else if (arg == "--no-subsume") copts.subsume = false;
    else if (arg == "--prune") copts.barrier_mode = core::BarrierMode::PaperPrune;
    else if (arg == "--split") copts.time_split = true;
    else if (arg == "--no-cache") copts.memoize = false;
    else if (arg == "--threads")
      copts.threads = static_cast<unsigned>(std::atoll(next()));
    else if (arg == "--trace-convert") popts.trace_convert_path = next();
    else if (arg == "--no-csi") gopts.use_csi = false;
    else if (arg == "--emit") emit = next();
    else if (arg == "--run") run = true;
    else if (arg == "--trace") { run = true; trace = true; }
    else if (arg == "--simd-engine") {
      try {
        config.engine = simd::parse_engine(next());
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "mscc: %s\n", e.what());
        return usage();
      }
    }
    else if (arg == "--trace-simd") { run = true; trace_simd_path = next(); }
    else if (arg == "--nprocs") config.nprocs = std::atoll(next());
    else if (arg == "--active") config.initial_active = std::atoll(next());
    else if (arg == "--seed") seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--kernel") source = workload::kernel(next()).source;
    else if (arg == "--help" || arg == "-h") return usage();
    else if (!arg.empty() && arg[0] == '-') return usage();
    else {
      std::ifstream in(arg);
      if (!in) {
        std::fprintf(stderr, "mscc: cannot open '%s'\n", arg.c_str());
        return 1;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      source = ss.str();
    }
  }
  if (source.empty()) return usage();

  try {
    ir::CostModel cost;
    driver::Converted converted = driver::convert(source, cost, popts);
    driver::Compiled& compiled = converted.compiled;
    for (const std::string& msg : compiled.diags.messages())
      std::fprintf(stderr, "%s\n", msg.c_str());
    core::ConvertResult& conv = converted.conversion;

    if (emit == "mimd") {
      std::printf("%s", conv.graph.dump().c_str());
    } else if (emit == "meta") {
      std::printf("%s", conv.automaton.dump().c_str());
    } else if (emit == "dot") {
      std::printf("%s", conv.automaton.to_dot().c_str());
    } else if (emit == "dot-mimd") {
      std::printf("%s", conv.graph.to_dot().c_str());
    } else if (emit == "profile") {
      std::printf("%s", core::profile(conv.automaton).to_string().c_str());
    } else if (emit == "module") {
      std::printf("%s", core::serialize(
                            core::Module{conv.graph, conv.automaton, conv.stats})
                            .c_str());
    } else if (emit == "mpl") {
      auto prog = codegen::generate(conv.automaton, conv.graph, cost, gopts);
      std::printf("%s", codegen::to_mpl(prog, conv.graph).c_str());
    } else {
      return usage();
    }

    if (run) {
      simd::SimdStats stats;
      auto oracle = driver::run_oracle(compiled, config, seed);
      if (trace || !trace_simd_path.empty()) {
        // Step the SIMD machine manually, printing occupancy per state
        // and/or dumping the execution-stats JSON.
        class Printer final : public simd::SimdTracer {
         public:
          void on_state(core::MetaId id, const DynBitset& occ,
                        std::int64_t alive) override {
            std::printf("%5d  ms%-4u occ=%-18s alive=%lld\n", step_++, id,
                        occ.to_string().c_str(), static_cast<long long>(alive));
          }
          void on_transition(core::MetaId, core::MetaId to,
                             const DynBitset& apc) override {
            if (to == core::kNoMeta)
              std::printf("       exit on apc=%s\n", apc.to_string().c_str());
          }

         private:
          int step_ = 0;
        } printer;
        auto prog = codegen::generate(conv.automaton, conv.graph, cost, gopts);
        auto machine = simd::make_machine(prog, cost, config);
        driver::seed_machine(*machine, compiled, config, seed);
        if (trace) {
          machine->set_tracer(&printer);
          std::printf("\n%5s  %-6s %-22s %s\n", "step", "state", "occupancy",
                      "alive");
        }
        machine->run();
        if (!trace_simd_path.empty())
          driver::write_simd_trace(*machine, trace_simd_path);
      }
      auto simd = driver::run_simd(compiled, conv, config, seed, cost, gopts,
                                   &stats);
      std::printf("\noracle: %s\n", oracle.to_string().c_str());
      std::printf("simd  : %s\n", simd.to_string().c_str());
      std::printf("match : %s\n", oracle == simd ? "yes" : "NO");
      std::printf("engine=%s meta states=%zu cycles=%lld utilization=%.1f%% "
                  "global-ors=%lld\n",
                  config.engine == mimd::SimdEngine::Fast ? "fast" : "reference",
                  conv.automaton.num_states(),
                  static_cast<long long>(stats.control_cycles),
                  100.0 * stats.utilization(),
                  static_cast<long long>(stats.global_ors));
    }
  } catch (const CompileError& e) {
    std::fprintf(stderr, "mscc: compile error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mscc: %s\n", e.what());
    return 1;
  }
  return 0;
}
