// §2.6 barrier synchronization: how a `wait` statement constrains the
// meta-state space. Reproduces Fig. 6 on the paper's Listing 3 and then
// sweeps k sequential divergent loops with and without barriers, showing
// the state-count cliff and the zero runtime cost of MSC synchronization
// (§5) versus the MIMD machine's runtime barrier protocol.
//
// Build & run:  ./build/examples/barrier_reduction
#include <cstdio>
#include <string>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

namespace {

std::string states_of(const std::string& src, core::ConvertOptions opts) {
  auto compiled = driver::compile(src);
  ir::CostModel cost;
  try {
    return std::to_string(
        core::meta_state_convert(compiled.graph, cost, opts)
            .automaton.num_states());
  } catch (const core::ExplosionError&) {
    return "explodes";
  } catch (const CompileError&) {
    // PaperPrune outside its soundness envelope (k>1 distinct barriers)
    // is a compile error now; the sweep renders the rejection.
    return "rejected";
  }
}

}  // namespace

int main() {
  ir::CostModel cost;

  // --- Fig. 6: Listing 3 under the paper's barrier rule.
  auto compiled = driver::compile(workload::listing3().source);
  core::ConvertOptions prune;
  prune.barrier_mode = core::BarrierMode::PaperPrune;
  auto fig6 = core::meta_state_convert(compiled.graph, cost, prune);
  std::printf("== Fig. 6: Listing 3 meta-state graph (PaperPrune) ==\n%s\n",
              fig6.automaton.dump().c_str());

  // --- State-count sweep: divergent loop chains, barrier vs not.
  std::printf("== Meta states vs. divergent-loop count k ==\n");
  std::printf("%4s %14s %14s %14s\n", "k", "no barrier", "barrier(prune)",
              "barrier(track)");
  for (int k = 1; k <= 7; ++k) {
    core::ConvertOptions base;
    base.max_meta_states = 30000;
    core::ConvertOptions track;
    track.barrier_mode = core::BarrierMode::TrackOccupancy;
    std::string none = states_of(workload::loopy_source(k), base);
    std::string p = states_of(workload::loopy_barrier_source(k), prune);
    std::string t = states_of(workload::loopy_barrier_source(k), track);
    std::printf("%4d %14s %14s %14s\n", k, none.c_str(), p.c_str(),
                t.c_str());
  }

  // --- Runtime synchronization cost: MIMD pays, MSC does not (§5).
  std::printf("\n== Synchronization cost at runtime (Listing 3, 8 PEs) ==\n");
  mimd::RunConfig config;
  config.nprocs = 8;
  mimd::MimdStats mimd_stats;
  driver::run_oracle(compiled, config, 7, &mimd_stats);
  auto conv = core::meta_state_convert(compiled.graph, cost, prune);
  simd::SimdStats simd_stats;
  driver::run_simd(compiled, conv, config, 7, cost, {}, &simd_stats);
  std::printf("MIMD barrier protocol cycles : %lld (+%lld idle)\n",
              static_cast<long long>(mimd_stats.barrier_sync_cycles),
              static_cast<long long>(mimd_stats.barrier_idle_cycles));
  std::printf("MSC synchronization cycles   : 0 (implicit in the automaton; "
              "%lld global-ors already counted in dispatch)\n",
              static_cast<long long>(simd_stats.global_ors));
  return 0;
}
