// Regenerate the paper's Listing 5: compile Listing 4 (verbatim), run the
// base meta-state conversion (8 meta states: ms_0 .. ms_2_6_9 in the
// paper's numbering), and emit the MasPar-MPL-style SIMD coding with
// global-or + customized-hash multiway branches (§3.2.3, [Die92a]).
//
// Build & run:  ./build/examples/listing5_codegen
#include <cstdio>

#include "msc/codegen/program.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

int main() {
  const workload::Kernel& kernel = workload::listing4();
  std::printf("== Listing 4 (verbatim from the paper) ==\n%s\n",
              kernel.source.c_str());

  driver::Compiled compiled = driver::compile(kernel.source);
  ir::CostModel cost;
  auto conv = core::meta_state_convert(compiled.graph, cost, {});
  std::printf("meta states: %zu (paper Listing 5 has 8)\n\n",
              conv.automaton.num_states());

  codegen::SimdProgram prog =
      codegen::generate(conv.automaton, conv.graph, cost, {});

  std::printf("== Customized hash functions chosen per multiway branch ==\n");
  for (const codegen::MetaCode& mc : prog.states) {
    if (mc.trans != codegen::TransKind::Multiway) continue;
    std::printf("  %-14s %zu cases, table[%zu], %s\n",
                mc.members.to_string().c_str(), mc.case_targets.size(),
                mc.sw.table_size(), mc.sw.fn.render("apc").c_str());
  }

  std::printf("\n== MPL-style SIMD coding (cf. paper Listing 5) ==\n%s",
              codegen::to_mpl(prog, conv.graph).c_str());
  return 0;
}
