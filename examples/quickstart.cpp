// Quickstart: the full meta-state conversion pipeline on the paper's
// Listing 1 — compile MIMDC, inspect the MIMD state graph (Fig. 1),
// convert to a meta-state automaton (Fig. 2 / Fig. 5), generate SIMD code,
// and run it against the asynchronous MIMD oracle.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

int main() {
  const workload::Kernel& kernel = workload::listing1();
  std::printf("== MIMDC source (%s) ==\n%s\n", kernel.name.c_str(),
              kernel.source.c_str());

  // 1. Front half: lex → parse → sema → CFG → straighten.
  driver::Compiled compiled = driver::compile(kernel.source);
  std::printf("== MIMD state graph (Fig. 1) ==\n%s\n",
              compiled.graph.dump().c_str());

  // 2. Meta-state conversion, base algorithm (§2.3 → Fig. 2).
  ir::CostModel cost;
  auto base = core::meta_state_convert(compiled.graph, cost, {});
  std::printf("== Base meta-state automaton (Fig. 2) ==\n%s\n",
              base.automaton.dump().c_str());

  // 3. With §2.5 compression (→ Fig. 5).
  core::ConvertOptions copts;
  copts.compress = true;
  auto compressed = core::meta_state_convert(compiled.graph, cost, copts);
  std::printf("== Compressed automaton (Fig. 5) ==\n%s\n",
              compressed.automaton.dump().c_str());

  // 4. Execute both on the SIMD machine and compare with the MIMD oracle.
  mimd::RunConfig config;
  config.nprocs = 8;
  std::uint64_t seed = 2026;
  driver::Observed oracle = driver::run_oracle(compiled, config, seed);

  simd::SimdStats base_stats, comp_stats;
  driver::Observed simd_base =
      driver::run_simd(compiled, base, config, seed, cost, {}, &base_stats);
  driver::Observed simd_comp = driver::run_simd(compiled, compressed, config,
                                                seed, cost, {}, &comp_stats);

  std::printf("oracle     : %s\n", oracle.to_string().c_str());
  std::printf("simd base  : %s\n", simd_base.to_string().c_str());
  std::printf("simd compr : %s\n", simd_comp.to_string().c_str());
  bool ok = oracle == simd_base && oracle == simd_comp;
  std::printf("\nequivalence: %s\n", ok ? "EXACT MATCH" : "MISMATCH");

  std::printf("\n              %12s %12s\n", "base", "compressed");
  std::printf("meta states   %12zu %12zu\n", base.automaton.num_states(),
              compressed.automaton.num_states());
  std::printf("cycles        %12lld %12lld\n",
              static_cast<long long>(base_stats.control_cycles),
              static_cast<long long>(comp_stats.control_cycles));
  std::printf("utilization   %11.1f%% %11.1f%%\n",
              100.0 * base_stats.utilization(),
              100.0 * comp_stats.utilization());
  std::printf("global-ors    %12lld %12lld\n",
              static_cast<long long>(base_stats.global_ors),
              static_cast<long long>(comp_stats.global_ors));
  return ok ? 0 : 1;
}
