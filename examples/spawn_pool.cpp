// §3.2.5 restricted dynamic process creation: spawn/halt on the SIMD
// machine. Traces the PE pool occupancy meta-state by meta-state while a
// couple of initial processes fork workers that compute and release their
// PEs, and cross-checks the final results against the MIMD oracle.
//
// Build & run:  ./build/examples/spawn_pool
#include <algorithm>
#include <cstdio>
#include <vector>

#include "msc/codegen/program.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/simd/machine.hpp"
#include "msc/workload/kernels.hpp"

using namespace msc;

int main() {
  const workload::Kernel& kernel = workload::kernel("spawn_tree");
  std::printf("== MIMDC source ==\n%s\n", kernel.source.c_str());

  driver::Compiled compiled = driver::compile(kernel.source);
  ir::CostModel cost;
  auto conv = core::meta_state_convert(compiled.graph, cost, {});
  auto prog = codegen::generate(conv.automaton, conv.graph, cost, {});

  mimd::RunConfig config;
  config.nprocs = 8;
  config.initial_active = 2;  // PEs 2..7 form the free pool

  auto machine_ptr = simd::make_machine(prog, cost, config);
  simd::SimdMachine& machine = *machine_ptr;
  std::printf("== PE pool occupancy per meta state ==\n");
  std::printf("%6s %-14s %6s %8s\n", "step", "meta state", "alive", "spawns");
  int step = 0;
  std::printf("%6d %-14s %6lld %8lld\n", step, "(initial)",
              static_cast<long long>(machine.alive_count()), 0LL);
  while (machine.step()) {
    ++step;
    const auto& mc = prog.states[machine.current_state()];
    std::printf("%6d %-14s %6lld %8lld\n", step,
                mc.members.to_string().c_str(),
                static_cast<long long>(machine.alive_count()),
                static_cast<long long>(machine.stats().spawns));
  }
  std::printf("total spawns: %lld, final alive: %lld\n\n",
              static_cast<long long>(machine.stats().spawns),
              static_cast<long long>(machine.alive_count()));

  // Compare result multisets against the oracle (PE assignment order can
  // legally differ between the asynchronous and lockstep machines).
  auto oracle = driver::run_oracle(compiled, config, 1);
  std::vector<long long> simd_results, oracle_results;
  for (std::int64_t p = 0; p < config.nprocs; ++p) {
    if (machine.ever_ran(p))
      simd_results.push_back(machine.peek(p, frontend::Layout::kResultAddr).i);
    if (oracle.ran[static_cast<std::size_t>(p)])
      oracle_results.push_back(oracle.results[static_cast<std::size_t>(p)].i);
  }
  std::sort(simd_results.begin(), simd_results.end());
  std::sort(oracle_results.begin(), oracle_results.end());
  std::printf("sorted results (simd)  :");
  for (long long v : simd_results) std::printf(" %lld", v);
  std::printf("\nsorted results (oracle):");
  for (long long v : oracle_results) std::printf(" %lld", v);
  bool ok = simd_results == oracle_results;
  std::printf("\nequivalence: %s\n", ok ? "MATCH" : "MISMATCH");
  return ok ? 0 : 1;
}
