// Domain example: 1-D Jacobi-style relaxation with a per-PE convergence
// test — the mixed data-parallel / control-parallel workload the paper's
// introduction motivates. Every PE owns a strip of cells, exchanges halo
// values with its neighbours through the router (`[[ ]]`), iterates until
// *its* strip converges (control-parallel divergence!), and a barrier
// separates the phases. MSC turns the whole thing into one SIMD automaton.
//
// Build & run:  ./build/examples/stencil_relaxation
#include <cstdio>

#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"

using namespace msc;

namespace {

// Each PE relaxes STRIP interior cells; halo cells come from neighbours.
// The per-PE iteration count depends on the PE's data, so PEs diverge.
const char* kSource = R"(poly int x;          // seeded per-PE input

int main() {
  poly float cell[6];   // [0] left halo, [1..4] interior, [5] right halo
  poly float next[4];
  poly int j;
  poly int iters;
  poly int moved;

  // Initialize the strip from the seed: a spiky profile.
  for (j = 1; j <= 4; j++) { cell[j] = ((x >> j) & 3) * 8.0; }
  cell[0] = 0.0;
  cell[5] = 0.0;
  wait;                          // everyone's strip is ready

  iters = 0;
  moved = 1;
  while (moved) {
    // Halo exchange: my cell[1] is my left neighbour's right halo, etc.
    cell[0] = cell[4][[(procid() + nprocs() - 1) % nprocs()]];
    cell[5] = cell[1][[(procid() + 1) % nprocs()]];
    wait;                        // halos consistent before relaxing

    moved = 0;
    for (j = 1; j <= 4; j++) {
      next[j - 1] = (cell[j - 1] + cell[j] + cell[j + 1]) / 3.0;
      if (next[j - 1] - cell[j] > 0.5 || cell[j] - next[j - 1] > 0.5) {
        moved = 1;               // this PE's strip still changing
      }
    }
    for (j = 1; j <= 4; j++) { cell[j] = next[j - 1]; }
    iters++;
    if (iters >= 12) { break; }  // cap, like any real solver
    wait;                        // lockstep sweeps
  }
  wait;

  // Report: packed (iterations, rounded strip energy).
  poly float energy;
  energy = 0.0;
  for (j = 1; j <= 4; j++) { energy += cell[j]; }
  return iters * 1000 + energy;
}
)";

}  // namespace

int main() {
  driver::Compiled compiled = driver::compile(kSource);
  ir::CostModel cost;
  std::printf("MIMD states: %zu, barrier states: %zu\n", compiled.graph.size(),
              compiled.graph.barrier_states().count());

  core::ConvertOptions opts;  // TrackOccupancy: several barriers interleave
  auto conv = core::meta_state_convert(compiled.graph, cost, opts);
  std::printf("meta states: %zu (mean width %.2f)\n\n",
              conv.automaton.num_states(), conv.automaton.mean_width());

  mimd::RunConfig config;
  config.nprocs = 8;
  std::uint64_t seed = 77;

  mimd::MimdStats oracle_stats;
  auto oracle = driver::run_oracle(compiled, config, seed, &oracle_stats);
  simd::SimdStats simd_stats;
  auto simd = driver::run_simd(compiled, conv, config, seed, cost, {}, &simd_stats);

  std::printf("%4s %10s %8s\n", "PE", "iters", "energy");
  for (std::int64_t p = 0; p < config.nprocs; ++p) {
    long long packed = oracle.results[static_cast<std::size_t>(p)].i;
    std::printf("%4lld %10lld %8lld\n", static_cast<long long>(p),
                packed / 1000, packed % 1000);
  }
  bool ok = oracle == simd;
  std::printf("\noracle == simd: %s\n", ok ? "EXACT MATCH" : "MISMATCH");
  std::printf("MIMD: %lld busy cycles, %lld barrier releases, %lld idle at "
              "barriers\n",
              static_cast<long long>(oracle_stats.busy_cycles),
              static_cast<long long>(oracle_stats.barrier_releases),
              static_cast<long long>(oracle_stats.barrier_idle_cycles));
  std::printf("SIMD: %lld control cycles, utilization %.1f%%, %lld global-ors, "
              "0 sync cycles (automaton-implicit)\n",
              static_cast<long long>(simd_stats.control_cycles),
              100.0 * simd_stats.utilization(),
              static_cast<long long>(simd_stats.global_ors));
  return ok ? 0 : 1;
}
