#ifndef MSC_KERNELS_VERIFIED_HPP
#define MSC_KERNELS_VERIFIED_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "msc/driver/runner.hpp"
#include "msc/mimd/machine.hpp"
#include "msc/support/value.hpp"

namespace msc::kernels {

/// Parameters of a verified-kernel instance. Every kernel is generated
/// for a concrete problem size `n` (the participating PEs), so the source
/// embeds `n` as a literal and the machine may be wider than the problem
/// (`nprocs > n` with `initial_active = n`).
struct VerifiedParams {
  std::int64_t n = 8;        ///< problem size == participating PEs
  std::int64_t nprocs = -1;  ///< machine width; -1 ⇒ exactly n
  std::uint64_t input_seed = 1;
};

/// A concrete kernel instance paired with its host-side ground truth.
/// Unlike workload::Kernel (shape generators checked engine-vs-engine),
/// a VerifiedCase carries `expected_results`/`expected_ran` computed by an
/// independent host-side reference function — a run is checked against
/// the *answer*, not against another engine.
struct VerifiedCase {
  std::string name;
  std::string description;
  std::string source;
  std::int64_t n = 0;
  std::uint64_t input_seed = 0;
  /// nprocs / initial_active / reuse_halted_pes preset for this instance.
  /// Engine and limits are left at their defaults for the caller to set.
  mimd::RunConfig config;
  bool uses_seed_input = false;  ///< reads the seeded poly global `x`
  bool uses_spawn = false;
  /// The alive-PE count falls while the kernel runs (halt/tree collapse)
  /// — the profile co-scheduling mixes care about (DESIGN.md §12).
  bool sheds_occupancy = false;
  /// Ground truth, indexed by PE over [0, config.nprocs): main's return
  /// value where `expected_ran[p]`, meaningless otherwise. PEs that halt
  /// without returning are expected to leave the zero-initialised result
  /// cell, i.e. int 0.
  std::vector<Value> expected_results;
  std::vector<bool> expected_ran;
};

/// The six verified kernels, in canonical order: "reduce", "scan",
/// "oddeven", "stencil", "bfs", "workqueue".
const std::vector<std::string>& verified_names();
bool is_verified(const std::string& name);

/// Build the instance `name` for `params` (source + config + expected
/// outputs). Throws std::out_of_range for unknown names and
/// std::invalid_argument for unusable params (n < 1, nprocs < n).
VerifiedCase make_case(const std::string& name, VerifiedParams params = {});

/// Parse "name" or "name@n" (e.g. "reduce@65") into a case; `base` seeds
/// the remaining params. Throws like make_case on bad input.
VerifiedCase parse_case(const std::string& spec, VerifiedParams base = {});

/// Compare a run's observations against the case's ground truth. Returns
/// "" on a match, else a human-readable diagnostic naming the first
/// mismatching PE.
std::string check(const VerifiedCase& c, const driver::Observed& obs);

}  // namespace msc::kernels

#endif  // MSC_KERNELS_VERIFIED_HPP
