#include "msc/kernels/verified.hpp"

#include <algorithm>
#include <stdexcept>

#include "msc/support/str.hpp"

namespace msc::kernels {

namespace {



std::int64_t input(const VerifiedParams& p, std::int64_t pe) {
  return driver::seed_input(p.input_seed, pe);
}

/// Shared scaffolding: machine config + ground-truth vectors sized to the
/// machine, everything defaulted to "never ran".
VerifiedCase shell(std::string name, std::string description,
                   const VerifiedParams& p, std::int64_t initial_active) {
  if (p.n < 1) throw std::invalid_argument(cat("kernel n must be >= 1, got ", p.n));
  VerifiedCase c;
  c.name = std::move(name);
  c.description = std::move(description);
  c.n = p.n;
  c.input_seed = p.input_seed;
  c.config.nprocs = p.nprocs < 0 ? p.n : p.nprocs;
  if (c.config.nprocs < p.n)
    throw std::invalid_argument(
        cat("kernel '", c.name, "' needs nprocs >= n, got nprocs=",
            c.config.nprocs, " n=", p.n));
  c.config.initial_active = initial_active;
  c.config.reuse_halted_pes = false;
  c.expected_results.assign(static_cast<std::size_t>(c.config.nprocs), Value{});
  c.expected_ran.assign(static_cast<std::size_t>(c.config.nprocs), false);
  return c;
}

// ---------------------------------------------------------------------------
// reduce — tree reduction over the seeded inputs. Non-receivers halt at
// each level, so the alive count collapses n → 1 (the canonical occupancy-
// shedding kernel). PE 0 returns the total; halted PEs leave result 0.
VerifiedCase make_reduce(const VerifiedParams& p) {
  VerifiedCase c = shell(
      "reduce",
      "Tree reduction of the seeded inputs; non-receivers halt each level "
      "(occupancy sheds n -> 1), PE 0 returns the sum",
      p, p.n);
  c.uses_seed_input = true;
  c.sheds_occupancy = true;
  c.source = cat(R"(poly int x;
poly int buf;

int main() {
  poly int s;
  poly int pid;
  poly int stride;
  s = x;
  pid = procid();
  stride = 1;
  while (stride < )", p.n, R"() {
    buf = s;
    wait;
    if (pid % (stride * 2) != 0) { halt; }
    if (pid + stride < )", p.n, R"() { s = s + buf[[pid + stride]]; }
    stride = stride * 2;
  }
  return s;
}
)");
  // Host-side reference: the same halving recurrence. A level's readers
  // (p ≡ 0 mod 2·stride) and read cells (p + stride) are disjoint, so the
  // in-place update is exact.
  std::vector<std::int64_t> s(static_cast<std::size_t>(p.n));
  for (std::int64_t i = 0; i < p.n; ++i)
    s[static_cast<std::size_t>(i)] = input(p, i);
  for (std::int64_t stride = 1; stride < p.n; stride *= 2)
    for (std::int64_t i = 0; i < p.n; i += 2 * stride)
      if (i + stride < p.n)
        s[static_cast<std::size_t>(i)] += s[static_cast<std::size_t>(i + stride)];
  for (std::int64_t i = 0; i < p.n; ++i) {
    c.expected_ran[static_cast<std::size_t>(i)] = true;
    c.expected_results[static_cast<std::size_t>(i)] =
        Value::of_int(i == 0 ? s[0] : 0);  // halted PEs never return
  }
  return c;
}

// ---------------------------------------------------------------------------
// scan — Hillis–Steele inclusive prefix sum; full occupancy throughout.
VerifiedCase make_scan(const VerifiedParams& p) {
  VerifiedCase c = shell(
      "scan",
      "Hillis-Steele inclusive prefix sum over the seeded inputs (full "
      "occupancy, log2(n) double-barrier rounds)",
      p, p.n);
  c.uses_seed_input = true;
  c.source = cat(R"(poly int x;
poly int buf;

int main() {
  poly int s;
  poly int pid;
  poly int d;
  poly int t;
  s = x;
  pid = procid();
  d = 1;
  while (d < )", p.n, R"() {
    buf = s;
    wait;
    t = 0;
    if (pid >= d) { t = buf[[pid - d]]; }
    wait;
    s = s + t;
    d = d * 2;
  }
  return s;
}
)");
  std::vector<std::int64_t> s(static_cast<std::size_t>(p.n));
  for (std::int64_t i = 0; i < p.n; ++i)
    s[static_cast<std::size_t>(i)] = input(p, i);
  for (std::int64_t d = 1; d < p.n; d *= 2) {
    std::vector<std::int64_t> snap = s;
    for (std::int64_t i = 0; i < p.n; ++i)
      if (i >= d)
        s[static_cast<std::size_t>(i)] += snap[static_cast<std::size_t>(i - d)];
  }
  for (std::int64_t i = 0; i < p.n; ++i) {
    c.expected_ran[static_cast<std::size_t>(i)] = true;
    c.expected_results[static_cast<std::size_t>(i)] =
        Value::of_int(s[static_cast<std::size_t>(i)]);
  }
  return c;
}

// ---------------------------------------------------------------------------
// oddeven — odd-even transposition sort (n phases suffice for n keys).
VerifiedCase make_oddeven(const VerifiedParams& p) {
  VerifiedCase c = shell(
      "oddeven",
      "Odd-even transposition sort of the seeded inputs; PE p returns the "
      "p-th smallest key after n compare-exchange phases",
      p, p.n);
  c.uses_seed_input = true;
  c.source = cat(R"(poly int x;
poly int buf;

int main() {
  poly int v;
  poly int pid;
  poly int phase;
  poly int partner;
  poly int other;
  v = x;
  pid = procid();
  phase = 0;
  while (phase < )", p.n, R"() {
    buf = v;
    wait;
    if (phase % 2 == pid % 2) { partner = pid + 1; } else { partner = pid - 1; }
    if (partner >= 0 && partner < )", p.n, R"() {
      other = buf[[partner]];
      if (partner > pid) { if (other < v) { v = other; } }
      if (partner < pid) { if (other > v) { v = other; } }
    }
    wait;
    phase = phase + 1;
  }
  return v;
}
)");
  // After n phases odd-even transposition is provably sorted, so the
  // ground truth is simply the sorted input vector.
  std::vector<std::int64_t> keys(static_cast<std::size_t>(p.n));
  for (std::int64_t i = 0; i < p.n; ++i)
    keys[static_cast<std::size_t>(i)] = input(p, i);
  std::sort(keys.begin(), keys.end());
  for (std::int64_t i = 0; i < p.n; ++i) {
    c.expected_ran[static_cast<std::size_t>(i)] = true;
    c.expected_results[static_cast<std::size_t>(i)] =
        Value::of_int(keys[static_cast<std::size_t>(i)]);
  }
  return c;
}

// ---------------------------------------------------------------------------
// stencil — 1-D Jacobi relaxation (l + 2v + r)/4 with zero boundaries,
// fixed iteration count, integer arithmetic (total division: trunc==floor
// on these non-negative values).
constexpr std::int64_t kStencilIters = 4;

VerifiedCase make_stencil(const VerifiedParams& p) {
  VerifiedCase c = shell(
      "stencil",
      "1-D Jacobi relaxation (l + 2v + r)/4 over the seeded inputs, zero "
      "boundaries, 4 fixed iterations",
      p, p.n);
  c.uses_seed_input = true;
  c.source = cat(R"(poly int x;
poly int buf;

int main() {
  poly int v;
  poly int pid;
  poly int it;
  poly int l;
  poly int r;
  v = x;
  pid = procid();
  it = 0;
  while (it < )", kStencilIters, R"() {
    buf = v;
    wait;
    l = 0;
    r = 0;
    if (pid > 0) { l = buf[[pid - 1]]; }
    if (pid < )", p.n - 1, R"() { r = buf[[pid + 1]]; }
    wait;
    v = (l + 2 * v + r) / 4;
    it = it + 1;
  }
  return v;
}
)");
  std::vector<std::int64_t> v(static_cast<std::size_t>(p.n));
  for (std::int64_t i = 0; i < p.n; ++i)
    v[static_cast<std::size_t>(i)] = input(p, i);
  for (std::int64_t it = 0; it < kStencilIters; ++it) {
    std::vector<std::int64_t> snap = v;
    for (std::int64_t i = 0; i < p.n; ++i) {
      const std::int64_t l = i > 0 ? snap[static_cast<std::size_t>(i - 1)] : 0;
      const std::int64_t r =
          i < p.n - 1 ? snap[static_cast<std::size_t>(i + 1)] : 0;
      v[static_cast<std::size_t>(i)] =
          (l + 2 * snap[static_cast<std::size_t>(i)] + r) / 4;
    }
  }
  for (std::int64_t i = 0; i < p.n; ++i) {
    c.expected_ran[static_cast<std::size_t>(i)] = true;
    c.expected_results[static_cast<std::size_t>(i)] =
        Value::of_int(v[static_cast<std::size_t>(i)]);
  }
  return c;
}

// ---------------------------------------------------------------------------
// bfs — synchronous multi-source BFS by pull relaxation on a fixed sparse
// digraph: vertex p's in-neighbours are (5p+1) % n, (3p+2) % n and p-1
// (mod n). Sources are PE 0 plus every PE whose seed is ≡ 0 mod 7; a
// fixed number of rounds is run and the (possibly still unconverged)
// distance is returned — the host reference runs the identical rounds.
constexpr std::int64_t kBfsRounds = 5;
constexpr std::int64_t kBfsInf = 1000000;

VerifiedCase make_bfs(const VerifiedParams& p) {
  VerifiedCase c = shell(
      "bfs",
      "Synchronous BFS frontier expansion (pull relaxation, 5 rounds) on "
      "a fixed sparse digraph; sources = PE 0 and seeds divisible by 7",
      p, p.n);
  c.uses_seed_input = true;
  c.source = cat(R"(poly int x;
poly int buf;

int main() {
  poly int d;
  poly int pid;
  poly int round;
  poly int best;
  poly int t;
  pid = procid();
  d = )", kBfsInf, R"(;
  if (x % 7 == 0) { d = 0; }
  if (pid == 0) { d = 0; }
  round = 0;
  while (round < )", kBfsRounds, R"() {
    buf = d;
    wait;
    best = d;
    t = buf[[(pid * 5 + 1) % )", p.n, R"(]] + 1;
    if (t < best) { best = t; }
    t = buf[[(pid * 3 + 2) % )", p.n, R"(]] + 1;
    if (t < best) { best = t; }
    t = buf[[(pid + )", p.n - 1, R"() % )", p.n, R"(]] + 1;
    if (t < best) { best = t; }
    wait;
    d = best;
    round = round + 1;
  }
  return d;
}
)");
  std::vector<std::int64_t> d(static_cast<std::size_t>(p.n));
  for (std::int64_t i = 0; i < p.n; ++i)
    d[static_cast<std::size_t>(i)] =
        (i == 0 || input(p, i) % 7 == 0) ? 0 : kBfsInf;
  for (std::int64_t r = 0; r < kBfsRounds; ++r) {
    std::vector<std::int64_t> snap = d;
    for (std::int64_t i = 0; i < p.n; ++i) {
      std::int64_t best = snap[static_cast<std::size_t>(i)];
      const std::int64_t in[3] = {(i * 5 + 1) % p.n, (i * 3 + 2) % p.n,
                                  (i + p.n - 1) % p.n};
      for (const std::int64_t q : in)
        best = std::min(best, snap[static_cast<std::size_t>(q)] + 1);
      d[static_cast<std::size_t>(i)] = best;
    }
  }
  for (std::int64_t i = 0; i < p.n; ++i) {
    c.expected_ran[static_cast<std::size_t>(i)] = true;
    c.expected_results[static_cast<std::size_t>(i)] =
        Value::of_int(d[static_cast<std::size_t>(i)]);
  }
  return c;
}

// ---------------------------------------------------------------------------
// workqueue — §3.2.5 work-queue consumer: max(1, n/4) parent PEs each
// spawn (n - parents) / parents children; every child derives its work
// item from its own procid() (spawned PEs start with zeroed memory, so
// inherited state cannot be used), burns a divergent weight loop and
// returns a closed-form checkable sum. With reuse_halted_pes=false the
// claimed PE set is exactly [parents, parents + parents*items): spawn
// always takes the lowest free PE and none are recycled, so results are
// per-PE deterministic even though the oracle interleaves claims.
std::int64_t wq_parents(std::int64_t n) { return std::max<std::int64_t>(1, n / 4); }
std::int64_t wq_weight(std::int64_t pe) { return (pe * 17) % 23 + 1; }
std::int64_t wq_sum(std::int64_t w) {
  std::int64_t s = 0;
  for (std::int64_t k = w; k > 0; --k) s += k * k;
  return s;
}

VerifiedCase make_workqueue(const VerifiedParams& p) {
  const std::int64_t parents = wq_parents(p.n);
  const std::int64_t items = (p.n - parents) / parents;  // per parent
  VerifiedCase c = shell(
      "workqueue",
      "Work-queue consumer: n/4 parents each spawn children that compute "
      "a weight-dependent square-sum from their own procid() and halt "
      "(spawn growth then a straggler shed tail)",
      p, parents);
  c.uses_spawn = true;
  c.sheds_occupancy = true;
  c.source = cat(R"(int main() {
  poly int i;
  i = 0;
  while (i < )", items, R"() {
    spawn {
      poly int w;
      poly int s;
      w = (procid() * 17) % 23 + 1;
      s = 0;
      while (w > 0) { s = s + w * w; w = w - 1; }
      return s;
    }
    i = i + 1;
  }
  return 1000 + procid();
}
)");
  for (std::int64_t i = 0; i < parents; ++i) {
    c.expected_ran[static_cast<std::size_t>(i)] = true;
    c.expected_results[static_cast<std::size_t>(i)] = Value::of_int(1000 + i);
  }
  for (std::int64_t i = parents; i < parents + parents * items; ++i) {
    c.expected_ran[static_cast<std::size_t>(i)] = true;
    c.expected_results[static_cast<std::size_t>(i)] =
        Value::of_int(wq_sum(wq_weight(i)));
  }
  return c;
}

}  // namespace

const std::vector<std::string>& verified_names() {
  static const std::vector<std::string> names = {
      "reduce", "scan", "oddeven", "stencil", "bfs", "workqueue"};
  return names;
}

bool is_verified(const std::string& name) {
  const auto& v = verified_names();
  return std::find(v.begin(), v.end(), name) != v.end();
}

VerifiedCase make_case(const std::string& name, VerifiedParams params) {
  if (name == "reduce") return make_reduce(params);
  if (name == "scan") return make_scan(params);
  if (name == "oddeven") return make_oddeven(params);
  if (name == "stencil") return make_stencil(params);
  if (name == "bfs") return make_bfs(params);
  if (name == "workqueue") return make_workqueue(params);
  throw std::out_of_range(cat("unknown verified kernel '", name, "'"));
}

VerifiedCase parse_case(const std::string& spec, VerifiedParams base) {
  std::string name = spec;
  const auto at = spec.find('@');
  if (at != std::string::npos) {
    name = spec.substr(0, at);
    const std::string num = spec.substr(at + 1);
    try {
      std::size_t used = 0;
      base.n = std::stoll(num, &used);
      if (used != num.size()) throw std::invalid_argument(num);
    } catch (const std::exception&) {
      throw std::invalid_argument(
          cat("bad kernel size in '", spec, "' (want name@n)"));
    }
  }
  return make_case(name, base);
}

std::string check(const VerifiedCase& c, const driver::Observed& obs) {
  
  const std::size_t nprocs = static_cast<std::size_t>(c.config.nprocs);
  if (obs.ran.size() != nprocs || obs.results.size() != nprocs)
    return cat("kernel '", c.name, "': observed ", obs.ran.size(),
               " PEs, expected ", nprocs);
  for (std::size_t pe = 0; pe < nprocs; ++pe) {
    if (obs.ran[pe] != c.expected_ran[pe])
      return cat("kernel '", c.name, "' n=", c.n, " seed=", c.input_seed,
                 ": PE ", pe, " ran=", obs.ran[pe] ? "true" : "false",
                 ", ground truth says ",
                 c.expected_ran[pe] ? "true" : "false");
    if (c.expected_ran[pe] && !(obs.results[pe] == c.expected_results[pe]))
      return cat("kernel '", c.name, "' n=", c.n, " seed=", c.input_seed,
                 ": PE ", pe, " returned ", obs.results[pe].to_string(),
                 ", ground truth ", c.expected_results[pe].to_string());
  }
  return "";
}

}  // namespace msc::kernels
