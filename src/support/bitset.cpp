#include "msc/support/bitset.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

namespace msc {

bool DynBitset::empty() const {
  for (std::uint64_t w : words_)
    if (w != 0) return false;
  return true;
}

std::size_t DynBitset::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t DynBitset::first() const { return next(npos); }

std::size_t DynBitset::next(std::size_t bit) const {
  std::size_t start = (bit == npos) ? 0 : bit + 1;
  if (start >= nbits_) return npos;
  std::size_t wi = start >> 6;
  std::uint64_t w = words_[wi] >> (start & 63);
  if (w != 0) return start + static_cast<std::size_t>(std::countr_zero(w));
  for (++wi; wi < words_.size(); ++wi) {
    if (words_[wi] != 0)
      return (wi << 6) + static_cast<std::size_t>(std::countr_zero(words_[wi]));
  }
  return npos;
}

void DynBitset::grow(std::size_t nbits) {
  if (nbits <= nbits_) return;
  nbits_ = nbits;
  if (word_count(nbits) > words_.size()) words_.resize(word_count(nbits), 0);
}

DynBitset& DynBitset::operator|=(const DynBitset& o) {
  grow(o.nbits_);
  for (std::size_t i = 0; i < o.words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

DynBitset& DynBitset::operator&=(const DynBitset& o) {
  std::size_t common = std::min(words_.size(), o.words_.size());
  for (std::size_t i = 0; i < common; ++i) words_[i] &= o.words_[i];
  for (std::size_t i = common; i < words_.size(); ++i) words_[i] = 0;
  return *this;
}

DynBitset& DynBitset::operator-=(const DynBitset& o) {
  std::size_t common = std::min(words_.size(), o.words_.size());
  for (std::size_t i = 0; i < common; ++i) words_[i] &= ~o.words_[i];
  return *this;
}

bool DynBitset::operator==(const DynBitset& o) const {
  std::size_t common = std::min(words_.size(), o.words_.size());
  for (std::size_t i = 0; i < common; ++i)
    if (words_[i] != o.words_[i]) return false;
  for (std::size_t i = common; i < words_.size(); ++i)
    if (words_[i] != 0) return false;
  for (std::size_t i = common; i < o.words_.size(); ++i)
    if (o.words_[i] != 0) return false;
  return true;
}

bool DynBitset::operator<(const DynBitset& o) const {
  std::size_t n = std::max(words_.size(), o.words_.size());
  // Compare from the most significant word down so the order matches
  // numeric order of the bit pattern.
  for (std::size_t i = n; i-- > 0;) {
    std::uint64_t a = i < words_.size() ? words_[i] : 0;
    std::uint64_t b = i < o.words_.size() ? o.words_[i] : 0;
    if (a != b) return a < b;
  }
  return false;
}

bool DynBitset::is_subset_of(const DynBitset& o) const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t b = i < o.words_.size() ? o.words_[i] : 0;
    if ((words_[i] & ~b) != 0) return false;
  }
  return true;
}

bool DynBitset::intersects(const DynBitset& o) const {
  std::size_t common = std::min(words_.size(), o.words_.size());
  for (std::size_t i = 0; i < common; ++i)
    if ((words_[i] & o.words_[i]) != 0) return true;
  return false;
}

std::uint64_t DynBitset::fold64() const {
  std::uint64_t acc = 0;
  for (std::uint64_t w : words_) acc ^= w;
  return acc;
}

std::size_t DynBitset::hash() const {
  // FNV-style mix over significant words only (trailing zero words are
  // guaranteed not to change the value because of the equality contract).
  std::uint64_t h = 1469598103934665603ull;
  std::size_t last = words_.size();
  while (last > 0 && words_[last - 1] == 0) --last;
  for (std::size_t i = 0; i < last; ++i) {
    h ^= words_[i];
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

std::vector<std::size_t> DynBitset::to_vector() const {
  std::vector<std::size_t> v;
  for (std::size_t b : bits()) v.push_back(b);
  return v;
}

std::string DynBitset::to_string() const {
  std::ostringstream os;
  os << '{';
  bool sep = false;
  for (std::size_t b : bits()) {
    if (sep) os << ',';
    os << b;
    sep = true;
  }
  os << '}';
  return os.str();
}

}  // namespace msc
