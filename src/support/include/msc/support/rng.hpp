#ifndef MSC_SUPPORT_RNG_HPP
#define MSC_SUPPORT_RNG_HPP

#include <cstdint>

namespace msc {

/// Deterministic splitmix64 generator.
///
/// Workload generation and property-test seeds must be reproducible across
/// platforms and standard-library versions, so we do not use <random>
/// engines/distributions anywhere results matter.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); n must be > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Uniform in [lo, hi] inclusive. The span is computed in unsigned
  /// arithmetic so full-width ranges (e.g. [0, INT64_MAX]) don't overflow;
  /// for every narrower range the value stream is unchanged.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    const std::uint64_t off = span == 0 ? next_u64() : next_below(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + off);
  }

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return next_below(den) < num; }

  double next_double() {  // [0,1)
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace msc

#endif  // MSC_SUPPORT_RNG_HPP
