#ifndef MSC_SUPPORT_TELEMETRY_HPP
#define MSC_SUPPORT_TELEMETRY_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace msc::telemetry {

/// Sizes of the intermediate program sampled at a pass boundary. -1 means
/// "not applicable at this point in the pipeline" (rendered as JSON null):
/// meta_states/meta_arcs are -1 before the conversion stage has run.
struct Metrics {
  std::int64_t mimd_states = -1;  ///< blocks in the MIMD state graph
  std::int64_t meta_states = -1;  ///< states in the meta-state automaton
  std::int64_t meta_arcs = -1;    ///< keyed arcs in the automaton

  bool operator==(const Metrics&) const = default;
};

/// One instrumented pass execution: wall time plus the metrics snapshot
/// immediately before and after, and pass-specific counters (cache hits,
/// blocks removed, fall-throughs created, ...).
struct PassRecord {
  std::string name;
  double seconds = 0.0;
  Metrics before;
  Metrics after;
  std::vector<std::pair<std::string, std::int64_t>> counters;
};

/// The whole pipeline's instrumentation, rendered by to_json() as the
/// `--pass-timings` payload (schema: DESIGN.md §9). `sections` carries
/// extra top-level members spliced in verbatim — the driver appends the
/// conversion's ConvertStats object under "convert", extending the
/// `--trace-convert` schema rather than duplicating it.
struct PipelineTrace {
  std::vector<PassRecord> passes;
  double total_seconds = 0.0;
  /// (key, pre-rendered JSON value) pairs appended as top-level members.
  std::vector<std::pair<std::string, std::string>> sections;

  std::string to_json() const;
};

}  // namespace msc::telemetry

#endif  // MSC_SUPPORT_TELEMETRY_HPP
