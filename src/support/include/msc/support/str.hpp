#ifndef MSC_SUPPORT_STR_HPP
#define MSC_SUPPORT_STR_HPP

#include <sstream>
#include <string>
#include <vector>

namespace msc {

/// Tiny string helpers shared by dumpers and the text emitter.
/// (std::format is not available in the toolchain's libstdc++.)

template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Split on a single character; keeps empty fields.
std::vector<std::string> split(const std::string& s, char sep);

bool starts_with(const std::string& s, const std::string& prefix);

/// Left-pad with spaces to at least `width`.
std::string pad_left(const std::string& s, std::size_t width);
/// Right-pad with spaces to at least `width`.
std::string pad_right(const std::string& s, std::size_t width);

/// Fixed-point rendering with `digits` decimals (locale-independent).
std::string fmt_double(double v, int digits);

/// Escape `s` for embedding inside a JSON string literal: quotes and
/// backslashes are backslash-escaped, control characters become \uXXXX
/// (with \n/\t/\r/\b/\f short forms), and non-ASCII bytes are emitted as
/// \u00XX escapes so the output is plain-ASCII valid JSON regardless of
/// the input encoding. Every JSON emitter in the tree must route free-form
/// keys/values (pass names, counter keys, file paths) through this.
std::string json_escape(const std::string& s);

}  // namespace msc

#endif  // MSC_SUPPORT_STR_HPP
