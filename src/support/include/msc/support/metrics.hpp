#ifndef MSC_SUPPORT_METRICS_HPP
#define MSC_SUPPORT_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace msc::telemetry {

/// Monotonic event count. Updates are relaxed atomics: publishing from the
/// hot paths costs one uncontended RMW, no lock.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-written point-in-time value (queue depths, sizes, config echoes).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram over int64 samples. `bounds` are inclusive upper
/// bucket edges; one implicit overflow bucket catches everything past the
/// last edge, so counts() has bounds.size() + 1 entries. Bucket layout is
/// fixed at registration — record() is bounds.size() compares plus one
/// relaxed RMW, allocation-free.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void record(std::int64_t v);

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  std::vector<std::int64_t> counts() const;
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

  /// {1, 2, 4, ..., 2^(n-1)}: the standard power-of-two layout used for
  /// cycle counts and PE occupancies.
  static std::vector<std::int64_t> pow2_bounds(int n);

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// Process-wide named-metric registry. Registration (the name lookup)
/// takes a mutex; the returned references are stable for the process
/// lifetime, so hot paths resolve a metric once (function-local static)
/// and then touch only its atomics. Names are typed: re-registering a
/// name as a different kind, or a histogram with different bounds, throws
/// std::logic_error. to_json() renders every metric, keys escaped, sorted
/// by name (schema: DESIGN.md §10).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<std::int64_t> bounds);

  /// Zero every value; entries (and references to them) stay valid.
  void reset();

  std::string to_json() const;

  /// The process-global instance every subsystem publishes into.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace msc::telemetry

#endif  // MSC_SUPPORT_METRICS_HPP
