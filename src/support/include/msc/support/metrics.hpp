#ifndef MSC_SUPPORT_METRICS_HPP
#define MSC_SUPPORT_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace msc::telemetry {

/// Monotonic event count. Updates are relaxed atomics: publishing from the
/// hot paths costs one uncontended RMW, no lock.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-written point-in-time value (queue depths, sizes, config echoes).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram over int64 samples. `bounds` are inclusive upper
/// bucket edges; one implicit overflow bucket catches everything past the
/// last edge, so counts() has bounds.size() + 1 entries. Bucket layout is
/// fixed at registration — record() is bounds.size() compares plus one
/// relaxed RMW, allocation-free.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void record(std::int64_t v);

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  std::vector<std::int64_t> counts() const;
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

  /// {1, 2, 4, ..., 2^(n-1)}: the standard power-of-two layout used for
  /// cycle counts and PE occupancies.
  static std::vector<std::int64_t> pow2_bounds(int n);

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// Labeled metric families for the serving tier (DESIGN.md §15). Each
/// family is a named set of series keyed by {tenant, op}; the value type
/// (counter/gauge/histogram) is fixed per family on first use, like the
/// typed names in MetricsRegistry. Cardinality is bounded: once a family
/// holds `max_series_per_family` distinct series, samples for new
/// {tenant, op} pairs fold into the {"other", op} overflow series (ops are
/// a closed protocol-level set, so the bound effectively caps tenants),
/// and folded_samples() counts every redirected attribution. Lookup takes
/// a mutex; returned references are stable for the registry lifetime and
/// the values themselves are relaxed atomics, so hot paths can cache a
/// series reference. to_json() renders a schema-2 document with families
/// and series in sorted (family, tenant, op) order — byte-deterministic
/// for a given set of values.
class LabeledRegistry {
 public:
  explicit LabeledRegistry(std::size_t max_series_per_family = 64);

  Counter& counter(const std::string& family, const std::string& tenant,
                   const std::string& op);
  Gauge& gauge(const std::string& family, const std::string& tenant,
               const std::string& op);
  Histogram& histogram(const std::string& family,
                       const std::vector<std::int64_t>& bounds,
                       const std::string& tenant, const std::string& op);

  /// Attributions redirected into the "other" overflow tenant so far.
  std::int64_t folded_samples() const { return folded_.value(); }

  /// Zero every value; series (and references to them) stay valid.
  void reset();

  /// `extra_members`, when non-empty, is a pre-rendered `"key": value`
  /// member sequence spliced right after "schema" — how the serving tier
  /// folds uptime and global request counts into one document.
  std::string to_json(const std::string& extra_members = "") const;

  /// Tenant label that absorbs series past the cardinality bound.
  static constexpr const char* kOverflowTenant = "other";

 private:
  using SeriesKey = std::pair<std::string, std::string>;  // {tenant, op}
  struct Family {
    char kind = 0;  // 'c' | 'g' | 'h'
    std::vector<std::int64_t> bounds;  // histograms only
    std::map<SeriesKey, std::unique_ptr<Counter>> counters;
    std::map<SeriesKey, std::unique_ptr<Gauge>> gauges;
    std::map<SeriesKey, std::unique_ptr<Histogram>> histograms;
    std::size_t series() const {
      return counters.size() + gauges.size() + histograms.size();
    }
  };

  Family& family_for(const std::string& name, char kind,
                     const std::vector<std::int64_t>* bounds);
  SeriesKey key_for(Family& fam, const std::string& tenant,
                    const std::string& op);

  mutable std::mutex mu_;
  std::size_t max_series_;
  std::map<std::string, Family> families_;
  Counter folded_;
};

/// Process-wide named-metric registry. Registration (the name lookup)
/// takes a mutex; the returned references are stable for the process
/// lifetime, so hot paths resolve a metric once (function-local static)
/// and then touch only its atomics. Names are typed: re-registering a
/// name as a different kind, or a histogram with different bounds, throws
/// std::logic_error. to_json() renders every metric, keys escaped, sorted
/// by name (schema: DESIGN.md §10).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<std::int64_t> bounds);

  /// Zero every value; entries (and references to them) stay valid.
  void reset();

  std::string to_json() const;

  /// The process-global instance every subsystem publishes into.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace msc::telemetry

#endif  // MSC_SUPPORT_METRICS_HPP
