#ifndef MSC_SUPPORT_TRACE_HPP
#define MSC_SUPPORT_TRACE_HPP

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace msc::telemetry {

/// Event sink emitting Chrome trace-event JSON (the "trace event format"
/// Perfetto / chrome://tracing / catapult load directly). Two timeline
/// conventions share one file, separated by pid:
///
///   pid kToolchainPid — wall-clock spans (microseconds since the sink was
///     created): pass executions, conversion phases.
///   pid kSimdPid — the simulated machines' deterministic timeline, one
///     "microsecond" per control-unit cycle, so per-meta-state events are
///     byte-stable across hosts and reruns.
///   pid kServicePid — mscd request lifecycles (DESIGN.md §15): one lane
///     per connection, phase spans exported from RequestTrace on the
///     daemon's own microsecond clock.
///
/// Appends take a mutex; nothing in the toolchain emits from more than one
/// thread at a time, so the lock is uncontended — it exists so a sink can
/// be shared by future parallel stages without a rewrite. The zero-cost
/// contract when tracing is off lives at the call sites: every producer
/// holds a `TraceSink*` that is null by default and skips all argument
/// computation when unset (pinned by bench_scaling's T-OBS gate).
class TraceSink {
 public:
  static constexpr std::int64_t kToolchainPid = 1;
  static constexpr std::int64_t kSimdPid = 2;
  static constexpr std::int64_t kServicePid = 3;

  using Args = std::vector<std::pair<std::string, std::int64_t>>;
  using StrArgs = std::vector<std::pair<std::string, std::string>>;

  TraceSink();

  /// Microseconds of wall clock since construction (ts for kToolchainPid).
  std::int64_t now_us() const;

  /// A complete ("ph":"X") event: a span with explicit start + duration.
  void complete(const std::string& name, const std::string& cat,
                std::int64_t pid, std::int64_t tid, std::int64_t ts_us,
                std::int64_t dur_us, Args args = {}, StrArgs sargs = {});

  /// An instant ("ph":"i") event.
  void instant(const std::string& name, const std::string& cat,
               std::int64_t pid, std::int64_t tid, std::int64_t ts_us,
               Args args = {}, StrArgs sargs = {});

  /// Label a pid / a (pid, tid) lane in the viewer ("ph":"M" metadata).
  void name_process(std::int64_t pid, const std::string& name);
  void name_thread(std::int64_t pid, std::int64_t tid,
                   const std::string& name);

  std::size_t size() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — valid JSON by
  /// construction (all free-form strings escaped).
  std::string to_json() const;

 private:
  struct Event {
    std::string name, cat;
    char ph;
    std::int64_t pid, tid, ts, dur;  // dur used by "X" only
    Args args;
    StrArgs sargs;
  };

  void push(Event e);

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Event> events_;
};

/// RAII wall-clock span on the toolchain timeline: opens at construction,
/// emits one complete event at destruction. Null `sink` makes the whole
/// object a no-op, so call sites need no branches.
class ScopedSpan {
 public:
  ScopedSpan(TraceSink* sink, std::string name, std::string cat,
             std::int64_t tid = 0);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a numeric arg to the event emitted at close.
  void arg(const std::string& key, std::int64_t value);

 private:
  TraceSink* sink_;
  std::string name_, cat_;
  std::int64_t tid_, ts_;
  TraceSink::Args args_;
};

}  // namespace msc::telemetry

#endif  // MSC_SUPPORT_TRACE_HPP
