#ifndef MSC_SUPPORT_BITSET_HPP
#define MSC_SUPPORT_BITSET_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace msc {

/// Dynamically-sized bit set.
///
/// Meta states are sets of MIMD state ids; the whole conversion pipeline
/// (reach(), barrier_sync(), compression, transition keys) manipulates such
/// sets, so this type provides the set algebra the paper's pseudocode uses:
/// union, intersection, difference, subset tests, iteration over members,
/// plus a stable 64-bit fold used as the aggregate-pc key for multiway
/// branch hashing.
///
/// Invariant: all words beyond the last significant bit are zero, so
/// equality/hash/compare can work word-wise regardless of capacity history.
class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t nbits) : nbits_(nbits), words_(word_count(nbits), 0) {}

  /// Singleton set {bit} sized to hold it.
  static DynBitset single(std::size_t bit) {
    DynBitset b(bit + 1);
    b.set(bit);
    return b;
  }

  /// Set holding every listed bit.
  static DynBitset of(std::initializer_list<std::size_t> bits) {
    DynBitset b;
    for (std::size_t i : bits) b.set(i);
    return b;
  }

  std::size_t size() const { return nbits_; }
  bool empty() const;
  std::size_t count() const;

  bool test(std::size_t bit) const {
    if (bit >= nbits_) return false;
    return (words_[bit >> 6] >> (bit & 63)) & 1u;
  }

  void set(std::size_t bit) {
    grow(bit + 1);
    words_[bit >> 6] |= (std::uint64_t{1} << (bit & 63));
  }

  void reset(std::size_t bit) {
    if (bit >= nbits_) return;
    words_[bit >> 6] &= ~(std::uint64_t{1} << (bit & 63));
  }

  void clear() { words_.assign(words_.size(), 0); }

  /// Lowest set bit, or npos if empty.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t first() const;
  /// Next set bit strictly after `bit`, or npos.
  std::size_t next(std::size_t bit) const;

  DynBitset& operator|=(const DynBitset& o);
  DynBitset& operator&=(const DynBitset& o);
  /// Set difference (this \ o).
  DynBitset& operator-=(const DynBitset& o);

  friend DynBitset operator|(DynBitset a, const DynBitset& b) { return a |= b; }
  friend DynBitset operator&(DynBitset a, const DynBitset& b) { return a &= b; }
  friend DynBitset operator-(DynBitset a, const DynBitset& b) { return a -= b; }

  bool operator==(const DynBitset& o) const;
  bool operator!=(const DynBitset& o) const { return !(*this == o); }
  /// Total order (by content, lowest-bit-significant); usable in std::map.
  bool operator<(const DynBitset& o) const;

  bool is_subset_of(const DynBitset& o) const;
  bool intersects(const DynBitset& o) const;

  /// XOR-fold of all words into 64 bits; stable across capacities.
  /// Used as the aggregate-pc word handed to the multiway-branch hasher.
  std::uint64_t fold64() const;

  /// Backing-word access for whole-lane mask assembly (bit i lives in
  /// word i/64, bit i%64). Words past the last significant bit are zero.
  std::size_t word_size() const { return words_.size(); }
  std::uint64_t word(std::size_t w) const { return words_[w]; }

  std::size_t hash() const;

  /// Members as a sorted vector, e.g. {2, 6, 9}.
  std::vector<std::size_t> to_vector() const;

  /// Render like the paper labels meta states: "{2,6,9}".
  std::string to_string() const;

  /// Iteration support: for (std::size_t s : bits.bits()) ...
  class BitRange {
   public:
    class Iter {
     public:
      Iter(const DynBitset* b, std::size_t pos) : b_(b), pos_(pos) {}
      std::size_t operator*() const { return pos_; }
      Iter& operator++() {
        pos_ = b_->next(pos_);
        return *this;
      }
      bool operator!=(const Iter& o) const { return pos_ != o.pos_; }

     private:
      const DynBitset* b_;
      std::size_t pos_;
    };
    explicit BitRange(const DynBitset* b) : b_(b) {}
    Iter begin() const { return Iter(b_, b_->first()); }
    Iter end() const { return Iter(b_, npos); }

   private:
    const DynBitset* b_;
  };
  BitRange bits() const { return BitRange(this); }

 private:
  static std::size_t word_count(std::size_t nbits) { return (nbits + 63) / 64; }
  void grow(std::size_t nbits);

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

struct DynBitsetHash {
  std::size_t operator()(const DynBitset& b) const { return b.hash(); }
};

}  // namespace msc

#endif  // MSC_SUPPORT_BITSET_HPP
