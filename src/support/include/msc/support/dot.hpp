#ifndef MSC_SUPPORT_DOT_HPP
#define MSC_SUPPORT_DOT_HPP

#include <sstream>
#include <string>

namespace msc {

/// Minimal Graphviz DOT emitter used by the graph dumpers (MIMD state
/// graph, meta-state automaton). Nodes/edges are identified by caller-
/// chosen string ids; labels are escaped here.
class DotWriter {
 public:
  explicit DotWriter(const std::string& graph_name);

  void node(const std::string& id, const std::string& label,
            const std::string& extra_attrs = "");
  void edge(const std::string& from, const std::string& to,
            const std::string& label = "");

  std::string finish();

  static std::string escape(const std::string& s);

 private:
  std::ostringstream out_;
  bool finished_ = false;
};

}  // namespace msc

#endif  // MSC_SUPPORT_DOT_HPP
