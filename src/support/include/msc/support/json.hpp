#ifndef MSC_SUPPORT_JSON_HPP
#define MSC_SUPPORT_JSON_HPP

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace msc::json {

/// Thrown by parse() with a byte offset and a short description.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed JSON document node. Small recursive DOM — enough for the
/// toolchain's own emitters (trace/profile/metrics payloads, bench JSON),
/// used by mscprof and by tests that assert emitted JSON is well-formed.
/// Numbers are kept as doubles plus an exact-int64 flag so cycle counters
/// round-trip bit-exactly.
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::int64_t inum = 0;
  bool is_exact_int = false;
  std::string str;
  std::vector<Value> elems;                            ///< Kind::Array
  std::vector<std::pair<std::string, Value>> members;  ///< Kind::Object

  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }

  /// Object member lookup (first occurrence); nullptr when absent or when
  /// this node is not an object.
  const Value* find(const std::string& key) const;
  /// find() that throws ParseError naming the missing key.
  const Value& at(const std::string& key) const;

  /// Number accessors; throw ParseError on kind mismatch.
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
};

/// Resource bounds enforced while parsing. The defaults are generous
/// enough for every document the toolchain itself emits (trace files,
/// profiles, bench reports); services parsing *hostile* input (mscd's
/// wire frames) pass tighter limits so a malicious client can neither
/// OOM the process with a huge document nor overflow the parser's
/// recursion with a deeply nested one.
struct ParseLimits {
  /// Maximum input size in bytes; 0 = unlimited.
  std::size_t max_bytes = 0;
  /// Maximum container nesting depth (each '[' or '{' adds one level).
  int max_depth = 512;
};

/// Parse a complete JSON document (trailing whitespace allowed, anything
/// else after the value is an error). Throws ParseError, including when
/// `limits` are exceeded.
Value parse(const std::string& text, const ParseLimits& limits);
Value parse(const std::string& text);

}  // namespace msc::json

#endif  // MSC_SUPPORT_JSON_HPP
