#ifndef MSC_SUPPORT_COVERAGE_HPP
#define MSC_SUPPORT_COVERAGE_HPP

#include <cstdint>

namespace msc {

/// Feature-coverage hook for the differential fuzzer (DESIGN.md §8).
///
/// Subsystems report coarse execution features — (signal, key) pairs —
/// through a process-global sink installed by the fuzzer. With no sink
/// installed (every normal run) the hook is a single pointer load; the
/// hot paths never compute keys unless a sink is present. Sinks are not
/// synchronized: hooks fire only from the orchestrating thread
/// (conversion records post-run, the SIMD machines are single-threaded).
class CoverageSink {
 public:
  virtual ~CoverageSink() = default;
  virtual void hit(std::uint32_t signal, std::uint64_t key) = 0;
};

namespace cov {
/// Signal ids (stable; used in FuzzCoverage fingerprints).
enum : std::uint32_t {
  kConvertShape = 1,   ///< key: packed log2 buckets of states/arcs/reach
  kConvertRestarts,    ///< key: §2.4 restarts (capped) + splits bucket
  kConvertExplosion,   ///< key: 1 — conversion hit max_meta_states
  kSimdTransitionKind, ///< key: TransKind actually resolved at runtime
  kSimdRescue,         ///< key: 1 — a rescue (member-index) transition ran
  kSimdRunShape,       ///< key: packed buckets: guard switches, spawns,
                       ///  meta transitions, global-ors (per finished run)
  kSimdSpawnReuse,     ///< key: 1 — a spawn claimed a previously-run PE
};
}  // namespace cov

/// Install/read the process-global sink (nullptr = coverage off).
void set_coverage_sink(CoverageSink* sink);
CoverageSink* coverage_sink();

/// 0 → 0, otherwise 1 + floor(log2(v)): a stable bucketing for counters.
std::uint32_t coverage_bucket(std::uint64_t v);

inline void coverage_hit(std::uint32_t signal, std::uint64_t key) {
  if (CoverageSink* s = coverage_sink()) s->hit(signal, key);
}

}  // namespace msc

#endif  // MSC_SUPPORT_COVERAGE_HPP
