#ifndef MSC_SUPPORT_DIAG_HPP
#define MSC_SUPPORT_DIAG_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace msc {

/// Position in MIMDC source (1-based, 0 = unknown).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t col = 0;

  bool valid() const { return line != 0; }
  std::string to_string() const;
};

/// Thrown by pipeline stages on unrecoverable input errors. Carries the
/// already-formatted "line:col: message" text.
class CompileError : public std::runtime_error {
 public:
  CompileError(SourceLoc loc, const std::string& message);
  SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_;
};

/// Collects non-fatal diagnostics (warnings and recoverable errors).
/// Fatal problems throw CompileError instead.
class Diagnostics {
 public:
  void warn(SourceLoc loc, const std::string& message);
  void error(SourceLoc loc, const std::string& message);

  bool has_errors() const { return error_count_ > 0; }
  std::size_t error_count() const { return error_count_; }
  const std::vector<std::string>& messages() const { return messages_; }
  std::string joined() const;

 private:
  std::vector<std::string> messages_;
  std::size_t error_count_ = 0;
};

}  // namespace msc

#endif  // MSC_SUPPORT_DIAG_HPP
