#ifndef MSC_SUPPORT_VALUE_HPP
#define MSC_SUPPORT_VALUE_HPP

#include <cstdint>
#include <string>

namespace msc {

/// One memory/stack cell of the simulated machines.
///
/// MIMDC has two scalar types, `int` and `float` (paper §4.1); we widen
/// them to int64/double so overflow in synthetic workloads is a non-issue.
/// Cells are tagged so the oracle and the SIMD target can be compared
/// bit-for-bit including type.
struct Value {
  enum class Kind : std::uint8_t { Int, Float };

  Kind kind = Kind::Int;
  std::int64_t i = 0;
  double f = 0.0;

  Value() = default;
  static Value of_int(std::int64_t v) {
    Value x;
    x.kind = Kind::Int;
    x.i = v;
    return x;
  }
  static Value of_float(double v) {
    Value x;
    x.kind = Kind::Float;
    x.f = v;
    return x;
  }

  bool is_int() const { return kind == Kind::Int; }
  bool is_float() const { return kind == Kind::Float; }

  /// Numeric value as double regardless of tag (for mixed arithmetic).
  double as_double() const { return is_int() ? static_cast<double>(i) : f; }
  /// Numeric value as int64 (floats truncate, as C does).
  std::int64_t as_int() const { return is_int() ? i : static_cast<std::int64_t>(f); }

  /// C truthiness.
  bool truthy() const { return is_int() ? i != 0 : f != 0.0; }

  bool operator==(const Value& o) const {
    if (kind != o.kind) return false;
    return is_int() ? i == o.i : f == o.f;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }

  std::string to_string() const;
};

}  // namespace msc

#endif  // MSC_SUPPORT_VALUE_HPP
