// Host-SIMD ISA selection for the lane-major execution backend.
//
// The simulated machine's semantics never depend on the host ISA: every
// engine must produce bit-identical SimdStats, visits, tracer streams and
// profiles whichever ISA executes the lanes. This header only decides
// *how* whole lanes are evaluated:
//
//   Scalar  - the per-PE interpretation paths run unchanged (also the
//             forced fallback when built with -DMSC_SIMD_ISA=scalar).
//   Avx2    - x86-64 lane kernels, 4 x 64-bit elements per register.
//   Neon    - AArch64 lane kernels, 2 x 64-bit elements per register.
//   Auto    - resolve to the best ISA the host supports at runtime.
//
// Requesting an ISA the host (or build) cannot execute is a configuration
// error and throws std::invalid_argument from resolve_simd_isa().
#pragma once

#include <cstdint>
#include <string>

namespace msc {

enum class SimdIsa : std::uint8_t { Auto, Scalar, Avx2, Neon };

/// Best ISA the current host can execute (never Auto). Returns Scalar when
/// the build forced -DMSC_SIMD_ISA=scalar or the CPU lacks vector support.
SimdIsa detect_simd_isa();

/// Auto -> detect_simd_isa(); explicit ISAs are validated against the host
/// and build. Throws std::invalid_argument for an unavailable request.
SimdIsa resolve_simd_isa(SimdIsa requested);

/// Parse "auto" | "scalar" | "avx2" | "neon"; throws std::invalid_argument.
SimdIsa parse_simd_isa(const std::string& text);

const char* simd_isa_name(SimdIsa isa);

/// 64-bit elements processed per vector register (1 for Scalar/Auto).
int simd_isa_lane_width(SimdIsa isa);

/// True when the build carries lane kernels (false under
/// -DMSC_SIMD_ISA=scalar, where the vector TUs are compiled out).
bool simd_isa_compiled();

}  // namespace msc
