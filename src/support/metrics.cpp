#include "msc/support/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "msc/support/str.hpp"

namespace msc::telemetry {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::logic_error("histogram bucket bounds must be sorted");
}

void Histogram::record(std::int64_t v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::int64_t> Histogram::counts() const {
  std::vector<std::int64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<std::int64_t> Histogram::pow2_bounds(int n) {
  std::vector<std::int64_t> b;
  for (int i = 0; i < n; ++i) b.push_back(std::int64_t{1} << i);
  return b;
}

namespace {

template <typename Map>
void check_untyped(const Map& map, const std::string& name,
                   const char* wanted) {
  if (map.count(name))
    throw std::logic_error(
        cat("metric '", name, "' already registered with a different type "
            "(requested ", wanted, ")"));
}

}  // namespace

LabeledRegistry::LabeledRegistry(std::size_t max_series_per_family)
    : max_series_(max_series_per_family) {}

LabeledRegistry::Family& LabeledRegistry::family_for(
    const std::string& name, char kind,
    const std::vector<std::int64_t>* bounds) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family fam;
    fam.kind = kind;
    if (bounds) fam.bounds = *bounds;
    it = families_.emplace(name, std::move(fam)).first;
    return it->second;
  }
  Family& fam = it->second;
  if (fam.kind != kind)
    throw std::logic_error(
        cat("labeled family '", name, "' already registered with a "
            "different kind"));
  if (kind == 'h' && bounds && fam.bounds != *bounds)
    throw std::logic_error(cat("labeled histogram '", name,
                               "' re-registered with different bounds"));
  return fam;
}

LabeledRegistry::SeriesKey LabeledRegistry::key_for(Family& fam,
                                                    const std::string& tenant,
                                                    const std::string& op) {
  SeriesKey key{tenant, op};
  const bool exists = fam.counters.count(key) || fam.gauges.count(key) ||
                      fam.histograms.count(key);
  if (exists || fam.series() < max_series_) return key;
  // Family is full and this {tenant, op} is new: fold into the overflow
  // tenant. The overflow series itself may be created past the bound —
  // there is at most one per op, so it stays small.
  folded_.add(1);
  return SeriesKey{kOverflowTenant, op};
}

Counter& LabeledRegistry::counter(const std::string& family,
                                  const std::string& tenant,
                                  const std::string& op) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family_for(family, 'c', nullptr);
  const SeriesKey key = key_for(fam, tenant, op);
  auto it = fam.counters.find(key);
  if (it == fam.counters.end())
    it = fam.counters.emplace(key, std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& LabeledRegistry::gauge(const std::string& family,
                              const std::string& tenant,
                              const std::string& op) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family_for(family, 'g', nullptr);
  const SeriesKey key = key_for(fam, tenant, op);
  auto it = fam.gauges.find(key);
  if (it == fam.gauges.end())
    it = fam.gauges.emplace(key, std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& LabeledRegistry::histogram(const std::string& family,
                                      const std::vector<std::int64_t>& bounds,
                                      const std::string& tenant,
                                      const std::string& op) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family_for(family, 'h', &bounds);
  const SeriesKey key = key_for(fam, tenant, op);
  auto it = fam.histograms.find(key);
  if (it == fam.histograms.end())
    it = fam.histograms.emplace(key, std::make_unique<Histogram>(bounds))
             .first;
  return *it->second;
}

void LabeledRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, fam] : families_) {
    for (auto& [key, c] : fam.counters) c->reset();
    for (auto& [key, g] : fam.gauges) g->reset();
    for (auto& [key, h] : fam.histograms) h->reset();
  }
  folded_.reset();
}

namespace {

void append_series_prefix(std::ostringstream& os, bool first,
                          const std::pair<std::string, std::string>& key) {
  os << (first ? "\n" : ",\n") << "        {\"tenant\": \""
     << json_escape(key.first) << "\", \"op\": \"" << json_escape(key.second)
     << "\", ";
}

}  // namespace

std::string LabeledRegistry::to_json(const std::string& extra_members) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"schema\": 2,\n";
  if (!extra_members.empty()) os << "  " << extra_members << ",\n";
  os << "  \"folded_samples\": " << folded_.value() << ",\n";
  os << "  \"families\": {";
  bool first_fam = true;
  for (const auto& [name, fam] : families_) {
    os << (first_fam ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": {";
    first_fam = false;
    if (fam.kind == 'c') {
      os << "\"kind\": \"counter\", \"series\": [";
      bool first = true;
      for (const auto& [key, c] : fam.counters) {
        append_series_prefix(os, first, key);
        os << "\"value\": " << c->value() << "}";
        first = false;
      }
      os << (first ? "" : "\n      ") << "]}";
    } else if (fam.kind == 'g') {
      os << "\"kind\": \"gauge\", \"series\": [";
      bool first = true;
      for (const auto& [key, g] : fam.gauges) {
        append_series_prefix(os, first, key);
        os << "\"value\": " << g->value() << "}";
        first = false;
      }
      os << (first ? "" : "\n      ") << "]}";
    } else {
      os << "\"kind\": \"histogram\", \"bounds\": [";
      for (std::size_t i = 0; i < fam.bounds.size(); ++i)
        os << (i ? ", " : "") << fam.bounds[i];
      os << "], \"series\": [";
      bool first = true;
      for (const auto& [key, h] : fam.histograms) {
        append_series_prefix(os, first, key);
        os << "\"count\": " << h->count() << ", \"sum\": " << h->sum()
           << ", \"counts\": [";
        const std::vector<std::int64_t> counts = h->counts();
        for (std::size_t i = 0; i < counts.size(); ++i)
          os << (i ? ", " : "") << counts[i];
        os << "]}";
        first = false;
      }
      os << (first ? "" : "\n      ") << "]}";
    }
  }
  os << (first_fam ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    check_untyped(gauges_, name, "counter");
    check_untyped(histograms_, name, "counter");
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    check_untyped(counters_, name, "gauge");
    check_untyped(histograms_, name, "gauge");
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    check_untyped(counters_, name, "histogram");
    check_untyped(gauges_, name, "histogram");
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  } else if (it->second->bounds() != bounds) {
    throw std::logic_error(cat("histogram '", name,
                               "' re-registered with different bounds"));
  }
  return *it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"schema\": 1,\n";
  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";
  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << g->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";
  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": {";
    os << "\"bounds\": [";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i)
      os << (i ? ", " : "") << bounds[i];
    os << "], \"counts\": [";
    const std::vector<std::int64_t> counts = h->counts();
    for (std::size_t i = 0; i < counts.size(); ++i)
      os << (i ? ", " : "") << counts[i];
    os << "], \"count\": " << h->count() << ", \"sum\": " << h->sum() << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace msc::telemetry
