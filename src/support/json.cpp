// Recursive-descent JSON parser for the toolchain's own payloads. Strict
// where it matters (no trailing commas, full string-escape handling,
// errors carry byte offsets); no streaming, no SAX — the documents are
// trace files and profiles, megabytes at most.
#include "msc/support/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "msc/support/str.hpp"

namespace msc::json {

namespace {

class Parser {
 public:
  Parser(const std::string& text, const ParseLimits& limits)
      : text_(text), limits_(limits) {}

  Value parse_document() {
    if (limits_.max_bytes != 0 && text_.size() > limits_.max_bytes)
      throw ParseError(cat("JSON document of ", text_.size(),
                           " bytes exceeds the ", limits_.max_bytes,
                           "-byte limit"));
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError(cat("JSON parse error at offset ", pos_, ": ", why));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(cat("expected '", std::string(1, c), "'"));
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.str = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::Bool;
    v.b = b;
    return v;
  }

  /// One '['/'{' level of nesting; fails past ParseLimits::max_depth.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > p_.limits_.max_depth)
        p_.fail(cat("nesting exceeds the depth limit of ",
                    p_.limits_.max_depth));
    }
    ~DepthGuard() { --p_.depth_; }
    Parser& p_;
  };

  Value parse_object() {
    DepthGuard depth(*this);
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    DepthGuard depth(*this);
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.elems.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          // Surrogate pairs → one code point.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = parse_hex4();
              if (lo >= 0xDC00 && lo <= 0xDFFF)
                code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
              else
                fail("invalid low surrogate");
            } else {
              fail("lone high surrogate");
            }
          }
          append_utf8(out, code);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    Value v;
    v.kind = Value::Kind::Number;
    char* end = nullptr;
    v.num = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      pos_ = start;
      fail("malformed number");
    }
    if (tok.find('.') == std::string::npos &&
        tok.find('e') == std::string::npos &&
        tok.find('E') == std::string::npos) {
      errno = 0;
      const long long exact = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end == tok.c_str() + tok.size()) {
        v.inum = exact;
        v.is_exact_int = true;
      }
    }
    return v;
  }

  const std::string& text_;
  const ParseLimits& limits_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (!v) throw ParseError(cat("missing JSON member '", key, "'"));
  return *v;
}

std::int64_t Value::as_int() const {
  if (kind != Kind::Number) throw ParseError("JSON value is not a number");
  if (is_exact_int) return inum;
  return static_cast<std::int64_t>(num);
}

double Value::as_double() const {
  if (kind != Kind::Number) throw ParseError("JSON value is not a number");
  return is_exact_int ? static_cast<double>(inum) : num;
}

const std::string& Value::as_string() const {
  if (kind != Kind::String) throw ParseError("JSON value is not a string");
  return str;
}

Value parse(const std::string& text, const ParseLimits& limits) {
  return Parser(text, limits).parse_document();
}

Value parse(const std::string& text) { return parse(text, ParseLimits{}); }

}  // namespace msc::json
