#include "msc/support/trace.hpp"

#include <sstream>

#include "msc/support/str.hpp"

namespace msc::telemetry {

TraceSink::TraceSink() : epoch_(std::chrono::steady_clock::now()) {}

std::int64_t TraceSink::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSink::push(Event e) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void TraceSink::complete(const std::string& name, const std::string& cat,
                         std::int64_t pid, std::int64_t tid,
                         std::int64_t ts_us, std::int64_t dur_us, Args args,
                         StrArgs sargs) {
  push({name, cat, 'X', pid, tid, ts_us, dur_us, std::move(args),
        std::move(sargs)});
}

void TraceSink::instant(const std::string& name, const std::string& cat,
                        std::int64_t pid, std::int64_t tid,
                        std::int64_t ts_us, Args args, StrArgs sargs) {
  push({name, cat, 'i', pid, tid, ts_us, 0, std::move(args),
        std::move(sargs)});
}

void TraceSink::name_process(std::int64_t pid, const std::string& name) {
  push({"process_name", "__metadata", 'M', pid, 0, 0, 0, {},
        {{"name", name}}});
}

void TraceSink::name_thread(std::int64_t pid, std::int64_t tid,
                            const std::string& name) {
  push({"thread_name", "__metadata", 'M', pid, tid, 0, 0, {},
        {{"name", name}}});
}

std::size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceSink::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    os << "  {\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
       << json_escape(e.cat) << "\", \"ph\": \"" << e.ph << "\", \"pid\": "
       << e.pid << ", \"tid\": " << e.tid;
    if (e.ph != 'M') {
      os << ", \"ts\": " << e.ts;
      if (e.ph == 'X') os << ", \"dur\": " << e.dur;
      if (e.ph == 'i') os << ", \"s\": \"t\"";
    }
    if (!e.args.empty() || !e.sargs.empty()) {
      os << ", \"args\": {";
      bool first = true;
      for (const auto& [key, value] : e.args) {
        os << (first ? "" : ", ") << "\"" << json_escape(key)
           << "\": " << value;
        first = false;
      }
      for (const auto& [key, value] : e.sargs) {
        os << (first ? "" : ", ") << "\"" << json_escape(key) << "\": \""
           << json_escape(value) << "\"";
        first = false;
      }
      os << "}";
    }
    os << "}" << (i + 1 < events_.size() ? "," : "") << "\n";
  }
  os << "], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

ScopedSpan::ScopedSpan(TraceSink* sink, std::string name, std::string cat,
                       std::int64_t tid)
    : sink_(sink),
      name_(std::move(name)),
      cat_(std::move(cat)),
      tid_(tid),
      ts_(sink ? sink->now_us() : 0) {}

void ScopedSpan::arg(const std::string& key, std::int64_t value) {
  if (sink_) args_.emplace_back(key, value);
}

ScopedSpan::~ScopedSpan() {
  if (!sink_) return;
  sink_->complete(name_, cat_, TraceSink::kToolchainPid, tid_, ts_,
                  sink_->now_us() - ts_, std::move(args_));
}

}  // namespace msc::telemetry
