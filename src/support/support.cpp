#include <cstdio>
#include <sstream>

#include "msc/support/coverage.hpp"
#include "msc/support/diag.hpp"
#include "msc/support/dot.hpp"
#include "msc/support/str.hpp"
#include "msc/support/value.hpp"

namespace msc {

// ------------------------------------------------------------- coverage

namespace {
CoverageSink* g_coverage_sink = nullptr;
}

void set_coverage_sink(CoverageSink* sink) { g_coverage_sink = sink; }
CoverageSink* coverage_sink() { return g_coverage_sink; }

std::uint32_t coverage_bucket(std::uint64_t v) {
  std::uint32_t b = 0;
  while (v) {
    ++b;
    v >>= 1;
  }
  return b;
}

// ---------------------------------------------------------------- Value

std::string Value::to_string() const {
  if (is_int()) return std::to_string(i);
  return fmt_double(f, 6);
}

// ----------------------------------------------------------------- diag

std::string SourceLoc::to_string() const {
  if (!valid()) return "<unknown>";
  return cat(line, ':', col);
}

CompileError::CompileError(SourceLoc loc, const std::string& message)
    : std::runtime_error(loc.to_string() + ": " + message), loc_(loc) {}

void Diagnostics::warn(SourceLoc loc, const std::string& message) {
  messages_.push_back(cat("warning: ", loc.to_string(), ": ", message));
}

void Diagnostics::error(SourceLoc loc, const std::string& message) {
  messages_.push_back(cat("error: ", loc.to_string(), ": ", message));
  ++error_count_;
}

std::string Diagnostics::joined() const { return join(messages_, "\n"); }

// ------------------------------------------------------------------ dot

DotWriter::DotWriter(const std::string& graph_name) {
  out_ << "digraph " << graph_name << " {\n"
       << "  node [shape=box, fontname=\"monospace\"];\n";
}

void DotWriter::node(const std::string& id, const std::string& label,
                     const std::string& extra_attrs) {
  out_ << "  \"" << escape(id) << "\" [label=\"" << escape(label) << "\"";
  if (!extra_attrs.empty()) out_ << ", " << extra_attrs;
  out_ << "];\n";
}

void DotWriter::edge(const std::string& from, const std::string& to,
                     const std::string& label) {
  out_ << "  \"" << escape(from) << "\" -> \"" << escape(to) << "\"";
  if (!label.empty()) out_ << " [label=\"" << escape(label) << "\"]";
  out_ << ";\n";
}

std::string DotWriter::finish() {
  if (!finished_) {
    out_ << "}\n";
    finished_ = true;
  }
  return out_.str();
}

std::string DotWriter::escape(const std::string& s) {
  std::string r;
  r.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') r.push_back('\\');
    if (c == '\n') {
      r += "\\n";
      continue;
    }
    r.push_back(c);
  }
  return r;
}

// ------------------------------------------------------------------ str

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string r;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) r += sep;
    r += parts[i];
  }
  return r;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20 || c >= 0x7F) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

}  // namespace msc
