#include "msc/support/simd_isa.hpp"

#include <stdexcept>

namespace msc {

bool simd_isa_compiled() {
#if defined(MSC_SIMD_ISA_SCALAR)
  return false;
#else
  return true;
#endif
}

SimdIsa detect_simd_isa() {
#if defined(MSC_SIMD_ISA_SCALAR)
  return SimdIsa::Scalar;
#elif defined(__aarch64__)
  return SimdIsa::Neon;  // AdvSIMD is architecturally mandatory on AArch64.
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") ? SimdIsa::Avx2 : SimdIsa::Scalar;
#else
  return SimdIsa::Scalar;
#endif
}

SimdIsa resolve_simd_isa(SimdIsa requested) {
  switch (requested) {
    case SimdIsa::Auto:
      return detect_simd_isa();
    case SimdIsa::Scalar:
      return SimdIsa::Scalar;
    case SimdIsa::Avx2:
    case SimdIsa::Neon:
      if (!simd_isa_compiled())
        throw std::invalid_argument(
            std::string("SIMD ISA '") + simd_isa_name(requested) +
            "' is not compiled in (built with -DMSC_SIMD_ISA=scalar)");
      if (detect_simd_isa() != requested)
        throw std::invalid_argument(std::string("SIMD ISA '") +
                                    simd_isa_name(requested) +
                                    "' is unavailable on this host");
      return requested;
  }
  throw std::invalid_argument("unknown SIMD ISA value");
}

SimdIsa parse_simd_isa(const std::string& text) {
  if (text == "auto") return SimdIsa::Auto;
  if (text == "scalar") return SimdIsa::Scalar;
  if (text == "avx2") return SimdIsa::Avx2;
  if (text == "neon") return SimdIsa::Neon;
  throw std::invalid_argument("unknown SIMD ISA '" + text +
                              "' (expected auto|scalar|avx2|neon)");
}

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::Auto: return "auto";
    case SimdIsa::Scalar: return "scalar";
    case SimdIsa::Avx2: return "avx2";
    case SimdIsa::Neon: return "neon";
  }
  return "?";
}

int simd_isa_lane_width(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::Avx2: return 4;
    case SimdIsa::Neon: return 2;
    default: return 1;
  }
}

}  // namespace msc
