#include "msc/support/telemetry.hpp"

#include <sstream>

#include "msc/support/str.hpp"

namespace msc::telemetry {

namespace {

void emit_metric(std::ostringstream& os, const char* key, std::int64_t v,
                 bool last = false) {
  os << "\"" << key << "\": ";
  if (v < 0)
    os << "null";
  else
    os << v;
  if (!last) os << ", ";
}

void emit_metrics(std::ostringstream& os, const Metrics& m) {
  os << "{";
  emit_metric(os, "mimd_states", m.mimd_states);
  emit_metric(os, "meta_states", m.meta_states);
  emit_metric(os, "meta_arcs", m.meta_arcs, /*last=*/true);
  os << "}";
}

/// Indent every line of a pre-rendered JSON value by two spaces so spliced
/// sections line up with the hand-written members.
std::string indent_value(const std::string& json) {
  std::string out;
  for (std::size_t i = 0; i < json.size(); ++i) {
    out += json[i];
    if (json[i] == '\n' && i + 1 < json.size()) out += "  ";
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == ' '))
    out.pop_back();
  return out;
}

}  // namespace

std::string PipelineTrace::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": 1,\n";
  os << "  \"pipeline\": [";
  for (std::size_t i = 0; i < passes.size(); ++i)
    os << (i ? ", " : "") << "\"" << json_escape(passes[i].name) << "\"";
  os << "],\n";
  os << "  \"passes\": [\n";
  for (std::size_t i = 0; i < passes.size(); ++i) {
    const PassRecord& p = passes[i];
    os << "    {\"name\": \"" << json_escape(p.name) << "\", \"seconds\": "
       << fmt_double(p.seconds, 6) << ",\n";
    os << "     \"before\": ";
    emit_metrics(os, p.before);
    os << ", \"after\": ";
    emit_metrics(os, p.after);
    if (!p.counters.empty()) {
      os << ",\n     \"counters\": {";
      for (std::size_t c = 0; c < p.counters.size(); ++c)
        os << (c ? ", " : "") << "\"" << json_escape(p.counters[c].first)
           << "\": " << p.counters[c].second;
      os << "}";
    }
    os << "}" << (i + 1 < passes.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"total_seconds\": " << fmt_double(total_seconds, 6);
  for (const auto& [key, value] : sections)
    os << ",\n  \"" << json_escape(key) << "\": " << indent_value(value);
  os << "\n}\n";
  return os.str();
}

}  // namespace msc::telemetry
