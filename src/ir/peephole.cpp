#include "msc/ir/peephole.hpp"

#include "msc/ir/exec.hpp"

namespace msc::ir {

namespace {

bool is_const_push(const Instr& in) {
  return in.op == Opcode::PushI || in.op == Opcode::PushF;
}

bool foldable_binary(Opcode op) {
  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::Lt:
    case Opcode::Le:
    case Opcode::Gt:
    case Opcode::Ge:
    case Opcode::Eq:
    case Opcode::Ne:
    case Opcode::LAnd:
    case Opcode::LOr:
    case Opcode::BitAnd:
    case Opcode::BitOr:
    case Opcode::BitXor:
    case Opcode::Shl:
    case Opcode::Shr:
      return true;
    default:
      return false;
  }
}

bool foldable_unary(Opcode op) {
  switch (op) {
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::BitNot:
    case Opcode::CastI:
    case Opcode::CastF:
      return true;
    default:
      return false;
  }
}

/// Bus that must never be touched by the pure ops we fold.
class NoBus final : public MemoryBus {
 public:
  Value mono_load(std::int64_t) override { throw MachineFault("fold"); }
  void mono_store(std::int64_t, Value) override { throw MachineFault("fold"); }
  Value route_load(std::int64_t, std::int64_t) override {
    throw MachineFault("fold");
  }
  void route_store(std::int64_t, std::int64_t, Value) override {
    throw MachineFault("fold");
  }
};

/// Evaluate a pure op over constants with the *real* interpreter, so the
/// folded result is bit-identical to runtime (total division included).
Value fold(const Instr& op, std::initializer_list<Value> args) {
  std::vector<Value> stack(args);
  NoBus bus;
  PeContext pe{LocalView{}, &stack, 0, 1};
  exec_instr(op, pe, bus);
  return stack.back();
}

Instr push_of(const Value& v) {
  return v.is_float() ? Instr::push_f(v.f) : Instr::push_i(v.i);
}

/// One rewrite sweep over a body; returns instructions removed.
std::size_t sweep(std::vector<Instr>& body) {
  std::vector<Instr> out;
  out.reserve(body.size());
  std::size_t removed = 0;
  auto last = [&](std::size_t back) -> Instr& { return out[out.size() - back]; };

  for (const Instr& in : body) {
    // 1/6: constant fold binary over two pushes.
    if (foldable_binary(in.op) && out.size() >= 2 && is_const_push(last(1)) &&
        is_const_push(last(2))) {
      Value v = fold(in, {last(2).imm, last(1).imm});
      out.pop_back();
      out.pop_back();
      out.push_back(push_of(v));
      removed += 2;
      continue;
    }
    // 2: constant unary / cast.
    if (foldable_unary(in.op) && !out.empty() && is_const_push(last(1))) {
      Value v = fold(in, {last(1).imm});
      out.pop_back();
      out.push_back(push_of(v));
      removed += 1;
      continue;
    }
    // 3: dead value.
    if (in.op == Opcode::Pop && in.imm.i == 1 && !out.empty() &&
        (is_const_push(last(1)) || last(1).op == Opcode::Dup)) {
      out.pop_back();
      removed += 2;
      continue;
    }
    // 4: assignment-as-statement store.
    if (in.op == Opcode::Pop && in.imm.i == 1 && out.size() >= 3 &&
        (last(1).op == Opcode::StL || last(1).op == Opcode::StM) &&
        last(2).op == Opcode::PushI && last(3).op == Opcode::Dup) {
      Instr store = last(1);
      Instr addr = last(2);
      out.pop_back();
      out.pop_back();
      out.pop_back();
      out.push_back(addr);
      out.push_back(store);
      removed += 2;
      continue;
    }
    // 5: pop fusion.
    if (in.op == Opcode::Pop && !out.empty() && last(1).op == Opcode::Pop) {
      last(1).imm.i += in.imm.i;
      removed += 1;
      continue;
    }
    out.push_back(in);
  }
  body = std::move(out);
  return removed;
}

}  // namespace

std::size_t peephole(StateGraph& graph) {
  std::size_t removed = 0;
  for (Block& b : graph.blocks) {
    for (;;) {
      std::size_t r = sweep(b.body);
      removed += r;
      if (r == 0) break;
    }
  }
  return removed;
}

}  // namespace msc::ir
