#include "msc/ir/passes.hpp"

#include <unordered_set>

#include "msc/support/str.hpp"

namespace msc::ir {

bool fold_trivial_branches(StateGraph& graph) {
  bool changed = false;
  for (Block& b : graph.blocks) {
    if (b.exit == ExitKind::Branch && b.target == b.alt) {
      // Both arms coincide: the condition no longer selects anything, but
      // it was pushed by the body, so pop it.
      b.body.push_back(Instr::pop(1));
      b.exit = ExitKind::Jump;
      b.alt = kNoState;
      changed = true;
    }
  }
  return changed;
}

namespace {

bool is_forwarder(const Block& b) {
  return b.body.empty() && b.exit == ExitKind::Jump && !b.barrier_wait;
}

/// Follow a chain of empty forwarding blocks; stops on a cycle.
StateId resolve_forward(const StateGraph& graph, StateId id) {
  std::unordered_set<StateId> seen;
  StateId cur = id;
  while (is_forwarder(graph.at(cur))) {
    if (!seen.insert(cur).second) return id;  // empty cycle: leave alone
    cur = graph.at(cur).target;
  }
  return cur;
}

}  // namespace

bool remove_empty_blocks(StateGraph& graph) {
  bool changed = false;
  auto redirect = [&](StateId& arc) {
    if (arc == kNoState) return;
    StateId resolved = resolve_forward(graph, arc);
    if (resolved != arc) {
      arc = resolved;
      changed = true;
    }
  };
  for (Block& b : graph.blocks) {
    switch (b.exit) {
      case ExitKind::Halt:
        break;
      case ExitKind::Jump:
        redirect(b.target);
        break;
      case ExitKind::Branch:
      case ExitKind::Spawn:
        redirect(b.target);
        redirect(b.alt);
        break;
    }
  }
  StateId new_start = resolve_forward(graph, graph.start);
  if (new_start != graph.start) {
    graph.start = new_start;
    changed = true;
  }
  return changed;
}

bool straighten_chains(StateGraph& graph) {
  auto preds = graph.predecessors();
  bool changed = false;
  for (Block& b : graph.blocks) {
    for (;;) {
      if (b.exit != ExitKind::Jump || b.barrier_wait) break;
      StateId t = b.target;
      if (t == b.id || t == graph.start) break;
      Block& succ = graph.at(t);
      if (succ.barrier_wait) break;
      if (preds[t].size() != 1) break;
      // Absorb the unique successor.
      b.body.insert(b.body.end(), succ.body.begin(), succ.body.end());
      b.exit = succ.exit;
      b.target = succ.target;
      b.alt = succ.alt;
      if (!succ.label.empty())
        b.label = b.label.empty() ? succ.label : cat(b.label, ";", succ.label);
      succ.body.clear();
      succ.exit = ExitKind::Halt;  // orphaned; removed by remove_unreachable
      succ.target = succ.alt = kNoState;
      preds[t].clear();
      // b's new successors gained b as pred in place of t; patch the table.
      for (StateId s : graph.successors(b.id)) {
        for (StateId& p : preds[s])
          if (p == t) p = b.id;
      }
      changed = true;
    }
  }
  return changed;
}

void remove_unreachable(StateGraph& graph) {
  std::vector<StateId> order;
  std::vector<bool> seen(graph.blocks.size(), false);
  std::vector<StateId> work{graph.start};
  seen[graph.start] = true;
  while (!work.empty()) {
    StateId id = work.back();
    work.pop_back();
    order.push_back(id);
    for (StateId s : graph.successors(id)) {
      if (!seen[s]) {
        seen[s] = true;
        work.push_back(s);
      }
    }
  }
  // Keep original relative order for stable numbering.
  std::vector<StateId> remap(graph.blocks.size(), kNoState);
  std::vector<Block> kept;
  kept.reserve(order.size());
  for (const Block& b : graph.blocks) {
    if (!seen[b.id]) continue;
    remap[b.id] = static_cast<StateId>(kept.size());
    kept.push_back(b);
  }
  for (Block& b : kept) {
    b.id = remap[b.id];
    if (b.target != kNoState) b.target = remap[b.target];
    if (b.alt != kNoState) b.alt = remap[b.alt];
  }
  graph.start = remap[graph.start];
  graph.blocks = std::move(kept);
}

void simplify(StateGraph& graph) {
  for (;;) {
    bool changed = false;
    changed |= fold_trivial_branches(graph);
    changed |= remove_empty_blocks(graph);
    remove_unreachable(graph);
    changed |= straighten_chains(graph);
    if (!changed) break;
  }
  remove_unreachable(graph);
}

}  // namespace msc::ir
