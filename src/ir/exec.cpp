#include "msc/ir/exec.hpp"

#include <utility>

#include "msc/support/str.hpp"

namespace msc::ir {

namespace {

Value local_load(PeContext& pe, std::int64_t addr) {
  if (addr < 0 || addr >= pe.local.cells)
    throw MachineFault(cat("local load out of range: ", addr));
  return pe.local.get(addr);
}

void local_store(PeContext& pe, std::int64_t addr, Value v) {
  if (addr < 0 || addr >= pe.local.cells)
    throw MachineFault(cat("local store out of range: ", addr));
  pe.local.put(addr, v);
}

bool either_float(const Value& a, const Value& b) {
  return a.is_float() || b.is_float();
}

Value arith(Opcode op, const Value& a, const Value& b) {
  if (either_float(a, b)) {
    double x = a.as_double(), y = b.as_double();
    switch (op) {
      case Opcode::Add: return Value::of_float(x + y);
      case Opcode::Sub: return Value::of_float(x - y);
      case Opcode::Mul: return Value::of_float(x * y);
      case Opcode::Div: return Value::of_float(y == 0.0 ? 0.0 : x / y);
      case Opcode::Mod: return Value::of_int(0);  // unreachable: sema rejects
      case Opcode::Lt: return Value::of_int(x < y);
      case Opcode::Le: return Value::of_int(x <= y);
      case Opcode::Gt: return Value::of_int(x > y);
      case Opcode::Ge: return Value::of_int(x >= y);
      case Opcode::Eq: return Value::of_int(x == y);
      case Opcode::Ne: return Value::of_int(x != y);
      default: break;
    }
  }
  std::int64_t x = a.as_int(), y = b.as_int();
  // Guest integer arithmetic wraps mod 2^64, matching the hardware the
  // simulated machine models; route through uint64 so overflow is defined.
  auto ux = static_cast<std::uint64_t>(x), uy = static_cast<std::uint64_t>(y);
  switch (op) {
    case Opcode::Add: return Value::of_int(static_cast<std::int64_t>(ux + uy));
    case Opcode::Sub: return Value::of_int(static_cast<std::int64_t>(ux - uy));
    case Opcode::Mul: return Value::of_int(static_cast<std::int64_t>(ux * uy));
    // Division by zero is defined as 0 so that randomly generated
    // workloads are total; documented in DESIGN.md. INT64_MIN / -1 wraps.
    case Opcode::Div:
      if (y == 0) return Value::of_int(0);
      if (y == -1) return Value::of_int(static_cast<std::int64_t>(-ux));
      return Value::of_int(x / y);
    case Opcode::Mod:
      if (y == 0 || y == -1) return Value::of_int(0);
      return Value::of_int(x % y);
    case Opcode::Lt: return Value::of_int(x < y);
    case Opcode::Le: return Value::of_int(x <= y);
    case Opcode::Gt: return Value::of_int(x > y);
    case Opcode::Ge: return Value::of_int(x >= y);
    case Opcode::Eq: return Value::of_int(x == y);
    case Opcode::Ne: return Value::of_int(x != y);
    case Opcode::BitAnd: return Value::of_int(x & y);
    case Opcode::BitOr: return Value::of_int(x | y);
    case Opcode::BitXor: return Value::of_int(x ^ y);
    case Opcode::Shl:
      return Value::of_int(static_cast<std::int64_t>(
          static_cast<std::uint64_t>(x) << (static_cast<std::uint64_t>(y) & 63)));
    case Opcode::Shr:
      return Value::of_int(static_cast<std::int64_t>(
          static_cast<std::uint64_t>(x) >> (static_cast<std::uint64_t>(y) & 63)));
    default: break;
  }
  throw MachineFault("bad arithmetic opcode");
}

}  // namespace

void SoaLocal::assign(std::int64_t cells) {
  const auto n = static_cast<std::size_t>(cells);
  tag_.assign(n, 0);
  ival_.assign(n, 0);
  fval_.assign(n, 0.0);
  cells_ = cells;
}

Value eval_binary(Opcode op, const Value& a, const Value& b) {
  if (op == Opcode::LAnd) return Value::of_int(a.truthy() && b.truthy());
  if (op == Opcode::LOr) return Value::of_int(a.truthy() || b.truthy());
  return arith(op, a, b);
}

Value stack_pop(std::vector<Value>& stack) {
  if (stack.empty()) throw MachineFault("operand stack underflow");
  Value v = stack.back();
  stack.pop_back();
  return v;
}

void exec_instr(const Instr& in, PeContext& pe, MemoryBus& bus) {
  auto& st = *pe.stack;
  switch (in.op) {
    case Opcode::PushI:
    case Opcode::PushF:
      st.push_back(in.imm);
      return;
    case Opcode::Pop: {
      std::int64_t n = in.imm.i;
      if (n < 0 || static_cast<std::size_t>(n) > st.size())
        throw MachineFault("Pop count exceeds stack depth");
      st.resize(st.size() - static_cast<std::size_t>(n));
      return;
    }
    case Opcode::Dup: {
      if (st.empty()) throw MachineFault("Dup on empty stack");
      st.push_back(st.back());
      return;
    }
    case Opcode::Swap: {
      if (st.size() < 2) throw MachineFault("Swap needs two stack cells");
      std::swap(st[st.size() - 1], st[st.size() - 2]);
      return;
    }
    case Opcode::LdL: {
      Value addr = stack_pop(st);
      st.push_back(local_load(pe, addr.as_int()));
      return;
    }
    case Opcode::StL: {
      Value addr = stack_pop(st);
      Value v = stack_pop(st);
      local_store(pe, addr.as_int(), v);
      return;
    }
    case Opcode::LdM: {
      Value addr = stack_pop(st);
      st.push_back(bus.mono_load(addr.as_int()));
      return;
    }
    case Opcode::StM: {
      Value addr = stack_pop(st);
      Value v = stack_pop(st);
      bus.mono_store(addr.as_int(), v);
      return;
    }
    case Opcode::RouteLd: {
      Value proc = stack_pop(st);
      Value addr = stack_pop(st);
      st.push_back(bus.route_load(proc.as_int(), addr.as_int()));
      return;
    }
    case Opcode::RouteSt: {
      Value proc = stack_pop(st);
      Value addr = stack_pop(st);
      Value v = stack_pop(st);
      bus.route_store(proc.as_int(), addr.as_int(), v);
      return;
    }
    case Opcode::Neg: {
      Value a = stack_pop(st);
      st.push_back(a.is_float() ? Value::of_float(-a.f) : Value::of_int(-a.i));
      return;
    }
    case Opcode::Not: {
      Value a = stack_pop(st);
      st.push_back(Value::of_int(!a.truthy()));
      return;
    }
    case Opcode::BitNot: {
      Value a = stack_pop(st);
      st.push_back(Value::of_int(~a.as_int()));
      return;
    }
    case Opcode::CastI: {
      Value a = stack_pop(st);
      st.push_back(Value::of_int(a.as_int()));
      return;
    }
    case Opcode::CastF: {
      Value a = stack_pop(st);
      st.push_back(Value::of_float(a.as_double()));
      return;
    }
    case Opcode::ProcId:
      st.push_back(Value::of_int(pe.proc_id));
      return;
    case Opcode::NProcs:
      st.push_back(Value::of_int(pe.nprocs));
      return;
    case Opcode::LAnd: {
      Value b = stack_pop(st);
      Value a = stack_pop(st);
      st.push_back(Value::of_int(a.truthy() && b.truthy()));
      return;
    }
    case Opcode::LOr: {
      Value b = stack_pop(st);
      Value a = stack_pop(st);
      st.push_back(Value::of_int(a.truthy() || b.truthy()));
      return;
    }
    default: {
      Value b = stack_pop(st);
      Value a = stack_pop(st);
      st.push_back(arith(in.op, a, b));
      return;
    }
  }
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::PushI: return "PushI";
    case Opcode::PushF: return "PushF";
    case Opcode::Pop: return "Pop";
    case Opcode::Dup: return "Dup";
    case Opcode::Swap: return "Swap";
    case Opcode::LdL: return "LdL";
    case Opcode::StL: return "StL";
    case Opcode::LdM: return "LdM";
    case Opcode::StM: return "StM";
    case Opcode::RouteLd: return "RouteLd";
    case Opcode::RouteSt: return "RouteSt";
    case Opcode::Add: return "Add";
    case Opcode::Sub: return "Sub";
    case Opcode::Mul: return "Mul";
    case Opcode::Div: return "Div";
    case Opcode::Mod: return "Mod";
    case Opcode::Lt: return "Lt";
    case Opcode::Le: return "Le";
    case Opcode::Gt: return "Gt";
    case Opcode::Ge: return "Ge";
    case Opcode::Eq: return "Eq";
    case Opcode::Ne: return "Ne";
    case Opcode::LAnd: return "LAnd";
    case Opcode::LOr: return "LOr";
    case Opcode::BitAnd: return "BitAnd";
    case Opcode::BitOr: return "BitOr";
    case Opcode::BitXor: return "BitXor";
    case Opcode::Shl: return "Shl";
    case Opcode::Shr: return "Shr";
    case Opcode::Neg: return "Neg";
    case Opcode::Not: return "Not";
    case Opcode::BitNot: return "BitNot";
    case Opcode::CastI: return "CastI";
    case Opcode::CastF: return "CastF";
    case Opcode::ProcId: return "ProcId";
    case Opcode::NProcs: return "NProcs";
  }
  return "?";
}

std::string Instr::to_string() const {
  switch (op) {
    case Opcode::PushI: return cat("Push(", imm.i, ")");
    case Opcode::PushF: return cat("Push(", fmt_double(imm.f, 3), ")");
    case Opcode::Pop: return cat("Pop(", imm.i, ")");
    default: return opcode_name(op);
  }
}

}  // namespace msc::ir
