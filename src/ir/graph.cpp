#include "msc/ir/graph.hpp"

#include <sstream>

#include "msc/support/dot.hpp"
#include "msc/support/str.hpp"

namespace msc::ir {

StateId StateGraph::add_block(std::string label) {
  StateId id = static_cast<StateId>(blocks.size());
  Block b;
  b.id = id;
  b.label = std::move(label);
  blocks.push_back(std::move(b));
  return id;
}

std::vector<StateId> StateGraph::successors(StateId id) const {
  const Block& b = at(id);
  switch (b.exit) {
    case ExitKind::Halt: return {};
    case ExitKind::Jump: return {b.target};
    case ExitKind::Branch:
    case ExitKind::Spawn: return {b.target, b.alt};
  }
  return {};
}

std::vector<std::vector<StateId>> StateGraph::predecessors() const {
  std::vector<std::vector<StateId>> preds(blocks.size());
  for (const Block& b : blocks)
    for (StateId s : successors(b.id)) preds[s].push_back(b.id);
  return preds;
}

DynBitset StateGraph::barrier_states() const {
  DynBitset set(blocks.size());
  for (const Block& b : blocks)
    if (b.barrier_wait) set.set(b.id);
  return set;
}

bool StateGraph::has_spawn() const {
  for (const Block& b : blocks)
    if (b.exit == ExitKind::Spawn) return true;
  return false;
}

std::vector<std::string> StateGraph::validate() const {
  std::vector<std::string> problems;
  auto bad = [&](const std::string& m) { problems.push_back(m); };
  if (blocks.empty()) {
    bad("graph has no blocks");
    return problems;
  }
  if (start >= blocks.size()) bad("start state out of range");
  for (const Block& b : blocks) {
    if (b.id >= blocks.size() || &at(b.id) != &b) bad(cat("block id mismatch at ", b.id));
    auto check_arc = [&](StateId s, const char* which) {
      if (s == kNoState || s >= blocks.size())
        bad(cat("block ", b.id, ": ", which, " arc out of range"));
    };
    switch (b.exit) {
      case ExitKind::Halt:
        break;
      case ExitKind::Jump:
        check_arc(b.target, "jump");
        break;
      case ExitKind::Branch:
      case ExitKind::Spawn:
        check_arc(b.target, "true/child");
        check_arc(b.alt, "false/continue");
        break;
    }
    if (b.barrier_wait) {
      if (!b.body.empty()) bad(cat("barrier state ", b.id, " has a non-empty body"));
      if (b.exit != ExitKind::Jump)
        bad(cat("barrier state ", b.id, " must have a single exit arc"));
    }
  }
  return problems;
}

namespace {
std::string exit_str(const Block& b) {
  switch (b.exit) {
    case ExitKind::Halt: return "Halt";
    case ExitKind::Jump: return cat("Jump(", b.target, ")");
    case ExitKind::Branch: return cat("JumpF(", b.alt, ",", b.target, ")");
    case ExitKind::Spawn: return cat("Spawn(child=", b.target, ",cont=", b.alt, ")");
  }
  return "?";
}
}  // namespace

std::string StateGraph::dump() const {
  std::ostringstream os;
  os << "MIMD state graph: " << blocks.size() << " states, start=" << start << "\n";
  for (const Block& b : blocks) {
    os << "  state " << b.id;
    if (!b.label.empty()) os << " [" << b.label << "]";
    if (b.barrier_wait) os << " (barrier)";
    os << ":";
    for (const Instr& in : b.body) os << " " << in.to_string();
    os << " ; " << exit_str(b) << "\n";
  }
  return os.str();
}

std::string StateGraph::to_dot(const std::string& name) const {
  DotWriter w(name);
  for (const Block& b : blocks) {
    std::string label = cat("S", b.id);
    if (!b.label.empty()) label += cat("\n", b.label);
    if (b.barrier_wait) label += "\n(wait)";
    w.node(cat("s", b.id), label, b.id == start ? "style=bold" : "");
    switch (b.exit) {
      case ExitKind::Halt:
        break;
      case ExitKind::Jump:
        w.edge(cat("s", b.id), cat("s", b.target));
        break;
      case ExitKind::Branch:
        w.edge(cat("s", b.id), cat("s", b.target), "T");
        w.edge(cat("s", b.id), cat("s", b.alt), "F");
        break;
      case ExitKind::Spawn:
        w.edge(cat("s", b.id), cat("s", b.target), "spawn");
        w.edge(cat("s", b.id), cat("s", b.alt), "cont");
        break;
    }
  }
  return w.finish();
}

}  // namespace msc::ir
