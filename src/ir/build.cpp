#include "msc/ir/build.hpp"

#include <map>
#include <unordered_map>
#include <vector>

#include "msc/support/str.hpp"

namespace msc::ir {

namespace fe = msc::frontend;

namespace {

class GraphBuilder {
 public:
  GraphBuilder(const fe::Program& prog, const fe::Layout& layout)
      : prog_(prog), layout_(layout) {}

  StateGraph build() {
    const fe::FuncDecl* main = prog_.find_func("main");
    graph_.start = graph_.add_block("entry");
    cur_ = graph_.start;

    // Prologue: SP = frame_stack_base, FP = 0.
    emit(Instr::push_i(layout_.frame_stack_base));
    emit(Instr::push_i(fe::Layout::kSpAddr));
    emit(Instr::of(Opcode::StL));

    inline_ctx_.push_back({main, kNoState});
    gen_stmt(*main->body);
    inline_ctx_.pop_back();

    // main falls off the end: return 0.
    emit(Instr::push_i(0));
    emit(Instr::push_i(fe::Layout::kResultAddr));
    emit(Instr::of(Opcode::StL));
    seal_halt();

    finalize_recursive_returns();
    return std::move(graph_);
  }

 private:
  // ------------------------------------------------------------- plumbing

  void emit(Instr in) { graph_.at(cur_).body.push_back(in); }

  StateId new_block(std::string label = {}) { return graph_.add_block(std::move(label)); }

  void seal_jump(StateId target) {
    Block& b = graph_.at(cur_);
    b.exit = ExitKind::Jump;
    b.target = target;
  }

  void seal_branch(StateId on_true, StateId on_false) {
    Block& b = graph_.at(cur_);
    b.exit = ExitKind::Branch;
    b.target = on_true;
    b.alt = on_false;
  }

  void seal_halt() { graph_.at(cur_).exit = ExitKind::Halt; }

  void seal_spawn(StateId child, StateId cont) {
    Block& b = graph_.at(cur_);
    b.exit = ExitKind::Spawn;
    b.target = child;
    b.alt = cont;
  }

  void switch_to(StateId b) { cur_ = b; }

  void emit_cast(fe::Ty from, fe::Ty to) {
    if (from == to) return;
    if (to == fe::Ty::Int) emit(Instr::of(Opcode::CastI));
    else if (to == fe::Ty::Float) emit(Instr::of(Opcode::CastF));
  }

  // ------------------------------------------------------------ addressing

  bool is_mono(const fe::VarDecl& d) const { return d.storage == fe::Storage::MonoStatic; }

  /// Push the address of `d` (plus an optional already-evaluated index that
  /// the caller will Add). For frame vars this reads FP first.
  void emit_base_addr(const fe::VarDecl& d) {
    switch (d.storage) {
      case fe::Storage::MonoStatic:
      case fe::Storage::PolyStatic:
        emit(Instr::push_i(d.addr));
        return;
      case fe::Storage::Frame:
        emit(Instr::push_i(fe::Layout::kFpAddr));
        emit(Instr::of(Opcode::LdL));
        emit(Instr::push_i(d.addr));
        emit(Instr::of(Opcode::Add));
        return;
    }
  }

  /// Push the full element address of an lvalue (VarRef or Index).
  /// Returns the decl so the caller can pick LdL/LdM.
  const fe::VarDecl* emit_lvalue_addr(const fe::Expr& e) {
    if (e.kind == fe::ExprKind::VarRef) {
      const auto& v = static_cast<const fe::VarRefExpr&>(e);
      emit_base_addr(*v.decl);
      return v.decl;
    }
    if (e.kind == fe::ExprKind::Index) {
      const auto& x = static_cast<const fe::IndexExpr&>(e);
      const auto& v = static_cast<const fe::VarRefExpr&>(*x.base);
      emit_base_addr(*v.decl);
      gen_expr(*x.index);
      emit(Instr::of(Opcode::Add));
      return v.decl;
    }
    throw CompileError(e.loc, "internal: not an addressable lvalue");
  }

  // ------------------------------------------------------------ statements

  void gen_stmt(const fe::Stmt& s) {
    switch (s.kind) {
      case fe::StmtKind::Expr: {
        const auto& x = static_cast<const fe::ExprStmt&>(s);
        gen_expr(*x.expr);
        if (x.expr->ty != fe::Ty::Void) emit(Instr::pop(1));
        return;
      }
      case fe::StmtKind::Decl: {
        const auto& x = static_cast<const fe::DeclStmt&>(s);
        if (x.init) {
          gen_expr(*x.init);
          emit_cast(x.init->ty, x.decl->ty);
          emit_base_addr(*x.decl);
          emit(Instr::of(Opcode::StL));
        }
        return;
      }
      case fe::StmtKind::Block:
        for (const auto& st : static_cast<const fe::BlockStmt&>(s).stmts) gen_stmt(*st);
        return;
      case fe::StmtKind::If: {
        const auto& x = static_cast<const fe::IfStmt&>(s);
        gen_expr(*x.cond);
        StateId then_blk = new_block("then");
        StateId join = new_block("join");
        StateId else_blk = x.else_branch ? new_block("else") : join;
        seal_branch(then_blk, else_blk);
        switch_to(then_blk);
        gen_stmt(*x.then_branch);
        seal_jump(join);
        if (x.else_branch) {
          switch_to(else_blk);
          gen_stmt(*x.else_branch);
          seal_jump(join);
        }
        switch_to(join);
        return;
      }
      case fe::StmtKind::While: {
        // §4.2 normalized form: condition replicated at entry and in a
        // bottom "latch" block (the `continue` target), so the body runs
        // one or more times once entered. Straightening merges body and
        // latch when no `continue` keeps the latch shared.
        const auto& x = static_cast<const fe::WhileStmt&>(s);
        gen_expr(*x.cond);
        StateId body = new_block("loop");
        StateId latch = new_block("latch");
        StateId exit = new_block("endloop");
        seal_branch(body, exit);
        switch_to(body);
        loops_.push_back({exit, latch});
        gen_stmt(*x.body);
        loops_.pop_back();
        seal_jump(latch);
        switch_to(latch);
        gen_expr(*x.cond);
        seal_branch(body, exit);
        switch_to(exit);
        return;
      }
      case fe::StmtKind::DoWhile: {
        const auto& x = static_cast<const fe::DoWhileStmt&>(s);
        StateId body = new_block("loop");
        StateId latch = new_block("latch");
        StateId exit = new_block("endloop");
        seal_jump(body);
        switch_to(body);
        loops_.push_back({exit, latch});
        gen_stmt(*x.body);
        loops_.pop_back();
        seal_jump(latch);
        switch_to(latch);
        gen_expr(*x.cond);
        seal_branch(body, exit);
        switch_to(exit);
        return;
      }
      case fe::StmtKind::For: {
        const auto& x = static_cast<const fe::ForStmt&>(s);
        if (x.init) {
          gen_expr(*x.init);
          if (x.init->ty != fe::Ty::Void) emit(Instr::pop(1));
        }
        StateId body = new_block("loop");
        StateId latch = new_block("latch");
        StateId exit = new_block("endloop");
        if (x.cond) {
          gen_expr(*x.cond);
          seal_branch(body, exit);
        } else {
          seal_jump(body);
        }
        switch_to(body);
        loops_.push_back({exit, latch});
        gen_stmt(*x.body);
        loops_.pop_back();
        seal_jump(latch);
        switch_to(latch);
        if (x.step) {
          gen_expr(*x.step);
          if (x.step->ty != fe::Ty::Void) emit(Instr::pop(1));
        }
        if (x.cond) {
          gen_expr(*x.cond);
          seal_branch(body, exit);
        } else {
          seal_jump(body);
        }
        switch_to(exit);
        return;
      }
      case fe::StmtKind::Return:
        gen_return(static_cast<const fe::ReturnStmt&>(s));
        return;
      case fe::StmtKind::Break:
        seal_jump(loops_.back().break_target);
        switch_to(new_block("dead"));
        return;
      case fe::StmtKind::Continue:
        seal_jump(loops_.back().continue_target);
        switch_to(new_block("dead"));
        return;
      case fe::StmtKind::Wait: {
        StateId wait_blk = new_block("wait");
        graph_.at(wait_blk).barrier_wait = true;
        graph_.at(wait_blk).loc = s.loc;
        StateId after = new_block("afterwait");
        seal_jump(wait_blk);
        switch_to(wait_blk);
        seal_jump(after);
        switch_to(after);
        return;
      }
      case fe::StmtKind::Halt: {
        seal_halt();
        switch_to(new_block("dead"));
        return;
      }
      case fe::StmtKind::Spawn: {
        const auto& x = static_cast<const fe::SpawnStmt&>(s);
        StateId child = new_block("spawned");
        StateId cont = new_block("cont");
        graph_.at(cur_).loc = s.loc;  // the block carrying the Spawn exit
        seal_spawn(child, cont);
        switch_to(child);
        std::vector<LoopCtx> saved;
        saved.swap(loops_);  // children are fresh processes (sema enforces)
        gen_stmt(*x.body);
        loops_.swap(saved);
        seal_halt();  // children release their PE when done (§3.2.5)
        switch_to(cont);
        return;
      }
      case fe::StmtKind::Empty:
        return;
    }
  }

  void gen_return(const fe::ReturnStmt& s) {
    const InlineCtx& ctx = inline_ctx_.back();
    const fe::FuncDecl* fn = ctx.fn;
    if (fn->name == "main") {
      if (s.value) {
        gen_expr(*s.value);
        emit_cast(s.value->ty, fe::Ty::Int);
      } else {
        emit(Instr::push_i(0));
      }
      emit(Instr::push_i(fe::Layout::kResultAddr));
      emit(Instr::of(Opcode::StL));
      seal_halt();
      switch_to(new_block("dead"));
      return;
    }
    if (s.value) {
      gen_expr(*s.value);
      emit_cast(s.value->ty, fn->ret_ty);
      emit(Instr::push_i(fn->retval_addr));
      emit(Instr::of(Opcode::StL));
    }
    if (fn->recursive) {
      seal_jump(rec_info_.at(fn->name).exit_block);
    } else {
      seal_jump(ctx.join);
    }
    switch_to(new_block("dead"));
  }

  // ----------------------------------------------------------- expressions

  void gen_expr(const fe::Expr& e) {
    switch (e.kind) {
      case fe::ExprKind::IntLit:
        emit(Instr::push_i(static_cast<const fe::IntLitExpr&>(e).value));
        return;
      case fe::ExprKind::FloatLit:
        emit(Instr::push_f(static_cast<const fe::FloatLitExpr&>(e).value));
        return;
      case fe::ExprKind::VarRef:
      case fe::ExprKind::Index: {
        const fe::VarDecl* d = emit_lvalue_addr(e);
        emit(Instr::of(is_mono(*d) ? Opcode::LdM : Opcode::LdL));
        return;
      }
      case fe::ExprKind::ParIndex: {
        const auto& x = static_cast<const fe::ParIndexExpr&>(e);
        require_routable(*x.base);
        emit_lvalue_addr(*x.base);
        gen_expr(*x.proc);
        emit(Instr::of(Opcode::RouteLd));
        return;
      }
      case fe::ExprKind::Unary: {
        const auto& x = static_cast<const fe::UnaryExpr&>(e);
        gen_expr(*x.operand);
        switch (x.op) {
          case fe::UnOp::Neg: emit(Instr::of(Opcode::Neg)); break;
          case fe::UnOp::Not: emit(Instr::of(Opcode::Not)); break;
          case fe::UnOp::BitNot: emit(Instr::of(Opcode::BitNot)); break;
        }
        return;
      }
      case fe::ExprKind::Binary: {
        const auto& x = static_cast<const fe::BinaryExpr&>(e);
        gen_expr(*x.lhs);
        gen_expr(*x.rhs);
        emit(Instr::of(binop_opcode(x.op)));
        return;
      }
      case fe::ExprKind::Assign:
        gen_assign(static_cast<const fe::AssignExpr&>(e));
        return;
      case fe::ExprKind::CompoundAssign:
        gen_compound_assign(static_cast<const fe::CompoundAssignExpr&>(e));
        return;
      case fe::ExprKind::IncDec:
        gen_incdec(static_cast<const fe::IncDecExpr&>(e));
        return;
      case fe::ExprKind::Call:
        gen_call(static_cast<const fe::CallExpr&>(e));
        return;
      case fe::ExprKind::Builtin: {
        const auto& x = static_cast<const fe::BuiltinExpr&>(e);
        emit(Instr::of(x.which == fe::Builtin::ProcId ? Opcode::ProcId
                                                      : Opcode::NProcs));
        return;
      }
    }
  }

  static Opcode binop_opcode(fe::BinOp op) {
    switch (op) {
      case fe::BinOp::Add: return Opcode::Add;
      case fe::BinOp::Sub: return Opcode::Sub;
      case fe::BinOp::Mul: return Opcode::Mul;
      case fe::BinOp::Div: return Opcode::Div;
      case fe::BinOp::Mod: return Opcode::Mod;
      case fe::BinOp::Lt: return Opcode::Lt;
      case fe::BinOp::Le: return Opcode::Le;
      case fe::BinOp::Gt: return Opcode::Gt;
      case fe::BinOp::Ge: return Opcode::Ge;
      case fe::BinOp::Eq: return Opcode::Eq;
      case fe::BinOp::Ne: return Opcode::Ne;
      case fe::BinOp::LAnd: return Opcode::LAnd;
      case fe::BinOp::LOr: return Opcode::LOr;
      case fe::BinOp::BitAnd: return Opcode::BitAnd;
      case fe::BinOp::BitOr: return Opcode::BitOr;
      case fe::BinOp::BitXor: return Opcode::BitXor;
      case fe::BinOp::Shl: return Opcode::Shl;
      case fe::BinOp::Shr: return Opcode::Shr;
    }
    return Opcode::Add;
  }

  void require_routable(const fe::Expr& base) {
    const fe::VarDecl* d = nullptr;
    if (base.kind == fe::ExprKind::VarRef)
      d = static_cast<const fe::VarRefExpr&>(base).decl;
    else if (base.kind == fe::ExprKind::Index)
      d = static_cast<const fe::VarRefExpr&>(
              *static_cast<const fe::IndexExpr&>(base).base)
              .decl;
    if (d && d->storage == fe::Storage::Frame)
      throw CompileError(base.loc,
                         "parallel subscript of a recursive function's local is "
                         "not supported (remote frame pointer is unknown)");
  }

  void gen_assign(const fe::AssignExpr& e) {
    gen_expr(*e.value);
    emit_cast(e.value->ty, e.target->ty);
    emit(Instr::of(Opcode::Dup));  // assignment yields its value
    if (e.target->kind == fe::ExprKind::ParIndex) {
      const auto& t = static_cast<const fe::ParIndexExpr&>(*e.target);
      require_routable(*t.base);
      emit_lvalue_addr(*t.base);
      gen_expr(*t.proc);
      emit(Instr::of(Opcode::RouteSt));
      return;
    }
    const fe::VarDecl* d = emit_lvalue_addr(*e.target);
    emit(Instr::of(is_mono(*d) ? Opcode::StM : Opcode::StL));
  }

  /// Store the value on top of the stack into `target`, consuming it.
  /// The target's subscripts are (re)evaluated here — callers needing
  /// load-then-store semantics rely on sema's purity check.
  void emit_store_to(const fe::Expr& target) {
    if (target.kind == fe::ExprKind::ParIndex) {
      const auto& t = static_cast<const fe::ParIndexExpr&>(target);
      require_routable(*t.base);
      emit_lvalue_addr(*t.base);
      gen_expr(*t.proc);
      emit(Instr::of(Opcode::RouteSt));
      return;
    }
    const fe::VarDecl* d = emit_lvalue_addr(target);
    emit(Instr::of(is_mono(*d) ? Opcode::StM : Opcode::StL));
  }

  void gen_compound_assign(const fe::CompoundAssignExpr& e) {
    // value first, then the current target value, so a side-effecting RHS
    // runs exactly once and before the (pure) subscript evaluations.
    gen_expr(*e.value);
    gen_expr(*e.target);  // rvalue load
    emit(Instr::of(Opcode::Swap));
    emit(Instr::of(binop_opcode(e.op)));
    emit_cast(result_ty(e), e.target->ty);
    emit(Instr::of(Opcode::Dup));  // the expression's value
    emit_store_to(*e.target);
  }

  static fe::Ty result_ty(const fe::CompoundAssignExpr& e) {
    switch (e.op) {
      case fe::BinOp::Add:
      case fe::BinOp::Sub:
      case fe::BinOp::Mul:
      case fe::BinOp::Div:
        return (e.target->ty == fe::Ty::Float || e.value->ty == fe::Ty::Float)
                   ? fe::Ty::Float
                   : fe::Ty::Int;
      default:
        return fe::Ty::Int;
    }
  }

  void gen_incdec(const fe::IncDecExpr& e) {
    // Postfix keeps the old value as the result (dup before the add);
    // prefix keeps the new one (dup after). Add/Sub preserve the operand
    // type, so no cast is needed.
    gen_expr(*e.target);  // old value
    if (!e.is_prefix) emit(Instr::of(Opcode::Dup));
    emit(Instr::push_i(1));
    emit(Instr::of(e.is_increment ? Opcode::Add : Opcode::Sub));
    if (e.is_prefix) emit(Instr::of(Opcode::Dup));
    emit_store_to(*e.target);
  }

  // ----------------------------------------------------------------- calls

  struct InlineCtx {
    const fe::FuncDecl* fn;
    StateId join;  ///< kNoState for main and recursive bodies
  };

  /// Innermost-first targets for break/continue.
  struct LoopCtx {
    StateId break_target;
    StateId continue_target;  ///< the loop's latch block
  };

  struct RecInfo {
    StateId entry_block = kNoState;
    StateId exit_block = kNoState;  ///< epilogue + return-site dispatch
    std::vector<StateId> site_joins;
    bool body_generated = false;
  };

  void gen_call(const fe::CallExpr& e) {
    const fe::FuncDecl* fn = e.target;
    if (fn->name == "main") throw CompileError(e.loc, "calling main is not allowed");
    // Evaluate all arguments first (a nested call in a later argument must
    // not clobber already-stored parameter cells), then store in reverse.
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      gen_expr(*e.args[i]);
      emit_cast(e.args[i]->ty, fn->params[i]->ty);
    }
    if (fn->recursive) {
      gen_recursive_call(e, fn);
    } else {
      gen_inline_call(e, fn);
    }
    if (fn->ret_ty != fe::Ty::Void) {
      emit(Instr::push_i(fn->retval_addr));
      emit(Instr::of(Opcode::LdL));
    }
  }

  void gen_inline_call(const fe::CallExpr& e, const fe::FuncDecl* fn) {
    (void)e;
    for (std::size_t i = fn->params.size(); i-- > 0;) {
      emit(Instr::push_i(fn->params[i]->addr));
      emit(Instr::of(Opcode::StL));
    }
    StateId join = new_block(cat("ret<", fn->name, ">"));
    inline_ctx_.push_back({fn, join});
    gen_stmt(*fn->body);
    inline_ctx_.pop_back();
    // Fall-through: non-void functions that can drop off the end return 0.
    if (fn->ret_ty != fe::Ty::Void) {
      emit(Instr::push_i(0));
      emit(Instr::push_i(fn->retval_addr));
      emit(Instr::of(Opcode::StL));
    }
    seal_jump(join);
    switch_to(join);
  }

  void gen_recursive_call(const fe::CallExpr& e, const fe::FuncDecl* fn) {
    (void)e;
    RecInfo& info = rec_info_[fn->name];
    if (info.entry_block == kNoState) {
      info.entry_block = new_block(cat("fn<", fn->name, ">"));
      info.exit_block = new_block(cat("ret-dispatch<", fn->name, ">"));
    }
    std::uint32_t site_id = static_cast<std::uint32_t>(info.site_joins.size());
    StateId join = new_block(cat("ret<", fn->name, "#", site_id, ">"));
    info.site_joins.push_back(join);

    // Arguments are on the operand stack (last on top): store them into the
    // *new* frame at SP before FP/SP are updated.
    for (std::size_t i = fn->params.size(); i-- > 0;) {
      emit(Instr::push_i(fe::Layout::kSpAddr));
      emit(Instr::of(Opcode::LdL));
      emit(Instr::push_i(fn->params[i]->addr));
      emit(Instr::of(Opcode::Add));
      emit(Instr::of(Opcode::StL));
    }
    // frame[0] = saved FP
    emit(Instr::push_i(fe::Layout::kFpAddr));
    emit(Instr::of(Opcode::LdL));
    emit(Instr::push_i(fe::Layout::kSpAddr));
    emit(Instr::of(Opcode::LdL));
    emit(Instr::of(Opcode::StL));
    // frame[1] = return-site id
    emit(Instr::push_i(site_id));
    emit(Instr::push_i(fe::Layout::kSpAddr));
    emit(Instr::of(Opcode::LdL));
    emit(Instr::push_i(1));
    emit(Instr::of(Opcode::Add));
    emit(Instr::of(Opcode::StL));
    // FP = SP
    emit(Instr::push_i(fe::Layout::kSpAddr));
    emit(Instr::of(Opcode::LdL));
    emit(Instr::push_i(fe::Layout::kFpAddr));
    emit(Instr::of(Opcode::StL));
    // SP += frame_size
    emit(Instr::push_i(fe::Layout::kSpAddr));
    emit(Instr::of(Opcode::LdL));
    emit(Instr::push_i(fn->frame_size));
    emit(Instr::of(Opcode::Add));
    emit(Instr::push_i(fe::Layout::kSpAddr));
    emit(Instr::of(Opcode::StL));

    seal_jump(info.entry_block);

    if (!info.body_generated) {
      info.body_generated = true;
      switch_to(info.entry_block);
      inline_ctx_.push_back({fn, kNoState});
      gen_stmt(*fn->body);
      inline_ctx_.pop_back();
      if (fn->ret_ty != fe::Ty::Void) {
        emit(Instr::push_i(0));
        emit(Instr::push_i(fn->retval_addr));
        emit(Instr::of(Opcode::StL));
      }
      seal_jump(info.exit_block);
    }
    switch_to(join);
  }

  /// §2.2: "at compile time we can compute the set of all possible return
  /// targets" — once every call site is known, fill in each recursive
  /// function's epilogue: restore SP/FP, then branch on the saved return-
  /// site id through a chain of binary tests.
  void finalize_recursive_returns() {
    for (auto& [fn, info] : rec_info_) {
      (void)fn;
      switch_to(info.exit_block);
      // SP = FP  (frees the callee frame; FP still points at it)
      emit(Instr::push_i(fe::Layout::kFpAddr));
      emit(Instr::of(Opcode::LdL));
      emit(Instr::push_i(fe::Layout::kSpAddr));
      emit(Instr::of(Opcode::StL));
      // push return-site id = frame[1]
      emit(Instr::push_i(fe::Layout::kFpAddr));
      emit(Instr::of(Opcode::LdL));
      emit(Instr::push_i(1));
      emit(Instr::of(Opcode::Add));
      emit(Instr::of(Opcode::LdL));
      // FP = frame[0] (saved FP)
      emit(Instr::push_i(fe::Layout::kFpAddr));
      emit(Instr::of(Opcode::LdL));
      emit(Instr::of(Opcode::LdL));
      emit(Instr::push_i(fe::Layout::kFpAddr));
      emit(Instr::of(Opcode::StL));

      const std::vector<StateId>& joins = info.site_joins;
      if (joins.size() == 1) {
        emit(Instr::pop(1));
        seal_jump(joins[0]);
        continue;
      }
      // Chain: test site 0..m-2; the last site is the unconditional tail.
      for (std::size_t k = 0; k + 1 < joins.size(); ++k) {
        StateId tramp = new_block(cat("ret-pop#", k));
        graph_.at(tramp).body.push_back(Instr::pop(1));
        graph_.at(tramp).exit = ExitKind::Jump;
        graph_.at(tramp).target = joins[k];

        emit(Instr::of(Opcode::Dup));
        emit(Instr::push_i(static_cast<std::int64_t>(k)));
        emit(Instr::of(Opcode::Eq));
        if (k + 2 < joins.size()) {
          StateId next_test = new_block(cat("ret-test#", k + 1));
          seal_branch(tramp, next_test);
          switch_to(next_test);
        } else {
          StateId last = new_block(cat("ret-pop#", k + 1));
          graph_.at(last).body.push_back(Instr::pop(1));
          graph_.at(last).exit = ExitKind::Jump;
          graph_.at(last).target = joins[k + 1];
          seal_branch(tramp, last);
        }
      }
    }
  }

  const fe::Program& prog_;
  const fe::Layout& layout_;
  StateGraph graph_;
  StateId cur_ = kNoState;
  std::vector<InlineCtx> inline_ctx_;
  std::vector<LoopCtx> loops_;
  std::map<std::string, RecInfo> rec_info_;
};

}  // namespace

StateGraph build_state_graph(const fe::Program& program, const fe::Layout& layout) {
  return GraphBuilder(program, layout).build();
}

}  // namespace msc::ir
