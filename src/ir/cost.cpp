#include "msc/ir/cost.hpp"

namespace msc::ir {

std::int64_t CostModel::instr_cost(const Instr& in) const {
  switch (in.op) {
    case Opcode::PushI:
    case Opcode::PushF:
      return push;
    case Opcode::Pop:
      return pop;
    case Opcode::Dup:
    case Opcode::Swap:
      return dup;
    case Opcode::LdL:
      return ld_local;
    case Opcode::StL:
      return st_local;
    case Opcode::LdM:
      return ld_mono;
    case Opcode::StM:
      return st_mono;
    case Opcode::RouteLd:
    case Opcode::RouteSt:
      return route;
    case Opcode::Mul:
      return mul;
    case Opcode::Div:
    case Opcode::Mod:
      return div;
    case Opcode::CastI:
    case Opcode::CastF:
      return cast;
    case Opcode::ProcId:
    case Opcode::NProcs:
      return query;
    default:
      return alu;
  }
}

std::int64_t CostModel::exit_cost(const Block& b) const {
  switch (b.exit) {
    case ExitKind::Halt: return halt;
    case ExitKind::Jump: return jump;
    case ExitKind::Branch: return branch;
    case ExitKind::Spawn: return spawn;
  }
  return 0;
}

std::int64_t CostModel::block_cost(const Block& b) const {
  std::int64_t total = 0;
  for (const Instr& in : b.body) total += instr_cost(in);
  return total + exit_cost(b);
}

}  // namespace msc::ir
