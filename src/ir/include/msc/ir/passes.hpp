#ifndef MSC_IR_PASSES_HPP
#define MSC_IR_PASSES_HPP

#include "msc/ir/graph.hpp"

namespace msc::ir {

/// §2.1/§4.2: "The control-flow graph is straightened and empty nodes are
/// removed. This maximizes the size of the nodes." Runs, to a fixpoint:
///   1. fold branches whose arms coincide (pop the condition, jump),
///   2. bypass empty forwarding blocks,
///   3. merge single-successor/single-predecessor chains,
///   4. drop unreachable blocks and renumber densely.
/// Barrier-wait states are never merged away (they carry §2.6 semantics),
/// and the start block is preserved.
void simplify(StateGraph& graph);

/// Individual passes, exposed for tests.
bool fold_trivial_branches(StateGraph& graph);
bool remove_empty_blocks(StateGraph& graph);
bool straighten_chains(StateGraph& graph);
void remove_unreachable(StateGraph& graph);

}  // namespace msc::ir

#endif  // MSC_IR_PASSES_HPP
