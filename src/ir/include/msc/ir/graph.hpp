#ifndef MSC_IR_GRAPH_HPP
#define MSC_IR_GRAPH_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "msc/ir/instr.hpp"
#include "msc/support/bitset.hpp"
#include "msc/support/diag.hpp"

namespace msc::ir {

using StateId = std::uint32_t;
inline constexpr StateId kNoState = 0xFFFFFFFFu;

/// How a MIMD state (basic block) exits. §2.1: "Each of these MIMD states
/// has zero, one, or two exit arcs."
enum class ExitKind : std::uint8_t {
  Halt,    ///< no exit arc — end of this process (or `halt`)
  Jump,    ///< one arc: unconditional to `target`
  Branch,  ///< two arcs: pop condition; TRUE → target, FALSE → alt
  Spawn,   ///< §3.2.5 pseudo-branch: children → target, originals → alt
};

/// One MIMD state: a (maximal, until time splitting) basic block.
struct Block {
  StateId id = kNoState;
  std::vector<Instr> body;
  ExitKind exit = ExitKind::Halt;
  StateId target = kNoState;  ///< Jump target / Branch TRUE / Spawn child entry
  StateId alt = kNoState;     ///< Branch FALSE / Spawn continuation
  /// §2.6: this state is a barrier-synchronization wait point. Barrier
  /// states carry no body; their single exit arc leads past the barrier.
  bool barrier_wait = false;
  std::string label;  ///< human-readable tag for dumps ("A", "B;C", ...)
  /// Source position of the construct that created this state (set for
  /// barrier waits and spawn exits) so later stages can point compile
  /// errors back at the offending `wait`/`spawn`.
  SourceLoc loc;

  bool has_two_exits() const {
    return exit == ExitKind::Branch || exit == ExitKind::Spawn;
  }
};

/// The whole-program MIMD control-flow graph after call elimination.
/// Block ids are dense indices into `blocks`.
struct StateGraph {
  std::vector<Block> blocks;
  StateId start = kNoState;

  StateId add_block(std::string label = {});
  Block& at(StateId id) { return blocks[id]; }
  const Block& at(StateId id) const { return blocks[id]; }
  std::size_t size() const { return blocks.size(); }

  /// Exit arcs of `id` in (target, alt) order; 0–2 entries.
  std::vector<StateId> successors(StateId id) const;
  /// Predecessor lists for all blocks.
  std::vector<std::vector<StateId>> predecessors() const;

  /// Set of all barrier-wait states (the `waits` set of §2.6).
  DynBitset barrier_states() const;
  /// True if any block spawns (enables free-pool handling in machines).
  bool has_spawn() const;

  /// Structural checks: start valid, arc targets in range, Branch/Spawn
  /// have both arcs, barrier states have empty bodies and Jump exits.
  /// Returns a list of problems (empty = valid).
  std::vector<std::string> validate() const;

  std::string dump() const;
  std::string to_dot(const std::string& name = "mimd") const;
};

}  // namespace msc::ir

#endif  // MSC_IR_GRAPH_HPP
