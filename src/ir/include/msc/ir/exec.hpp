#ifndef MSC_IR_EXEC_HPP
#define MSC_IR_EXEC_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "msc/ir/instr.hpp"
#include "msc/support/value.hpp"

namespace msc::ir {

/// Access to memories outside the executing PE. Both machine simulators
/// (the asynchronous MIMD oracle and the SIMD target) implement this, so a
/// single `exec_instr` defines instruction semantics once — divergence
/// between oracle and target is impossible by construction.
class MemoryBus {
 public:
  virtual ~MemoryBus() = default;
  virtual Value mono_load(std::int64_t addr) = 0;
  virtual void mono_store(std::int64_t addr, Value v) = 0;
  virtual Value route_load(std::int64_t proc, std::int64_t addr) = 0;
  virtual void route_store(std::int64_t proc, std::int64_t addr, Value v) = 0;
};

/// One PE's mutable execution state as seen by exec_instr.
struct PeContext {
  std::vector<Value>* local;  ///< PE-local memory
  std::vector<Value>* stack;  ///< persistent operand stack
  std::int64_t proc_id;
  std::int64_t nprocs;
};

/// Thrown on machine-level faults (stack underflow, address out of range).
class MachineFault : public std::runtime_error {
 public:
  explicit MachineFault(const std::string& what) : std::runtime_error(what) {}
};

/// Execute one instruction. Throws MachineFault on underflow/range errors.
void exec_instr(const Instr& in, PeContext& pe, MemoryBus& bus);

/// Semantics of one pure binary opcode (Add…Shr, LAnd, LOr) on two popped
/// operands — the single definition exec_instr routes through, exposed so
/// the translation-cache engine's fused immediate ops and constant folder
/// share it (divergence impossible by construction).
Value eval_binary(Opcode op, const Value& a, const Value& b);

/// Pop helper shared with block-exit condition evaluation.
Value stack_pop(std::vector<Value>& stack);

}  // namespace msc::ir

#endif  // MSC_IR_EXEC_HPP
