#ifndef MSC_IR_EXEC_HPP
#define MSC_IR_EXEC_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "msc/ir/instr.hpp"
#include "msc/support/value.hpp"

namespace msc::ir {

/// Access to memories outside the executing PE. Both machine simulators
/// (the asynchronous MIMD oracle and the SIMD target) implement this, so a
/// single `exec_instr` defines instruction semantics once — divergence
/// between oracle and target is impossible by construction.
class MemoryBus {
 public:
  virtual ~MemoryBus() = default;
  virtual Value mono_load(std::int64_t addr) = 0;
  virtual void mono_store(std::int64_t addr, Value v) = 0;
  virtual Value route_load(std::int64_t proc, std::int64_t addr) = 0;
  virtual void route_store(std::int64_t proc, std::int64_t addr, Value v) = 0;
};

/// Structure-of-arrays window onto one PE's local memory. The backing
/// store keeps kind tags, integer payloads and float payloads in three
/// separate arrays so the SIMD engines can lay all PEs' copies of a
/// variable out as one contiguous lane; `stride` is the element distance
/// between consecutive addresses (1 for the per-PE machines, the padded
/// lane width for the lane-major store). A default view has zero cells,
/// so every access faults like an empty local memory.
struct LocalView {
  std::uint8_t* tag = nullptr;
  std::int64_t* ival = nullptr;
  double* fval = nullptr;
  std::size_t stride = 1;
  std::int64_t cells = 0;

  Value get(std::int64_t addr) const {
    Value v;
    v.kind = static_cast<Value::Kind>(tag[static_cast<std::size_t>(addr) * stride]);
    v.i = ival[static_cast<std::size_t>(addr) * stride];
    v.f = fval[static_cast<std::size_t>(addr) * stride];
    return v;
  }
  void put(std::int64_t addr, const Value& v) {
    const std::size_t at = static_cast<std::size_t>(addr) * stride;
    tag[at] = static_cast<std::uint8_t>(v.kind);
    ival[at] = v.i;
    fval[at] = v.f;
  }
};

/// Owning stride-1 SoA local memory for the per-PE machines (MIMD oracle,
/// interpreter); the SIMD engines use the shared lane-major store instead.
class SoaLocal {
 public:
  /// Reset to `cells` zeroed cells (Value{} == integer 0).
  void assign(std::int64_t cells);
  Value get(std::int64_t addr) const { return view_const().get(addr); }
  void set(std::int64_t addr, const Value& v) { view().put(addr, v); }
  std::int64_t cells() const { return cells_; }
  LocalView view() {
    return {tag_.data(), ival_.data(), fval_.data(), 1, cells_};
  }

 private:
  LocalView view_const() const {
    return {const_cast<std::uint8_t*>(tag_.data()),
            const_cast<std::int64_t*>(ival_.data()),
            const_cast<double*>(fval_.data()), 1, cells_};
  }
  std::vector<std::uint8_t> tag_;
  std::vector<std::int64_t> ival_;
  std::vector<double> fval_;
  std::int64_t cells_ = 0;
};

/// One PE's mutable execution state as seen by exec_instr.
struct PeContext {
  LocalView local;            ///< PE-local memory window
  std::vector<Value>* stack;  ///< persistent operand stack
  std::int64_t proc_id;
  std::int64_t nprocs;
};

/// Thrown on machine-level faults (stack underflow, address out of range).
class MachineFault : public std::runtime_error {
 public:
  explicit MachineFault(const std::string& what) : std::runtime_error(what) {}
};

/// Execute one instruction. Throws MachineFault on underflow/range errors.
void exec_instr(const Instr& in, PeContext& pe, MemoryBus& bus);

/// Semantics of one pure binary opcode (Add…Shr, LAnd, LOr) on two popped
/// operands — the single definition exec_instr routes through, exposed so
/// the translation-cache engine's fused immediate ops and constant folder
/// share it (divergence impossible by construction).
Value eval_binary(Opcode op, const Value& a, const Value& b);

/// Pop helper shared with block-exit condition evaluation.
Value stack_pop(std::vector<Value>& stack);

}  // namespace msc::ir

#endif  // MSC_IR_EXEC_HPP
