#ifndef MSC_IR_COST_HPP
#define MSC_IR_COST_HPP

#include <cstdint>

#include "msc/ir/graph.hpp"

namespace msc::ir {

/// Cycle costs of the simulated SIMD/MIMD hardware.
///
/// §2.4 requires each MIMD state to carry an execution time so that time
/// splitting can balance meta states. The defaults are loosely modelled on
/// the MasPar MP-1 relative costs (memory slower than ALU, router and
/// broadcast much slower, global-OR moderately priced); every experiment
/// that depends on a constant takes a CostModel so benches can sweep them.
struct CostModel {
  std::int64_t push = 1;
  std::int64_t pop = 1;
  std::int64_t dup = 1;
  std::int64_t ld_local = 2;
  std::int64_t st_local = 2;
  std::int64_t ld_mono = 2;
  std::int64_t st_mono = 8;   ///< broadcast to all replicas
  std::int64_t route = 20;    ///< router traversal (RouteLd/RouteSt)
  std::int64_t alu = 1;
  std::int64_t mul = 3;
  std::int64_t div = 12;
  std::int64_t cast = 1;
  std::int64_t query = 1;  ///< ProcId/NProcs
  // control
  std::int64_t jump = 1;
  std::int64_t branch = 2;  ///< conditional pc update
  std::int64_t halt = 1;
  std::int64_t spawn = 4;
  // SIMD-machine specifics used by codegen/simulator
  std::int64_t guard_switch = 1;   ///< re-programming the PE enable mask
  std::int64_t global_or = 6;      ///< aggregate-pc reduction (§3.2.3)
  std::int64_t hash_dispatch = 3;  ///< hashed switch through a jump table
  std::int64_t case_test = 2;      ///< one test of a linear case chain
  // interpreter-baseline specifics (§1.1)
  std::int64_t interp_fetch = 6;   ///< fetch op+2 operands from PE memory
  std::int64_t interp_loop = 2;    ///< jump back to the interpreter top

  std::int64_t instr_cost(const Instr& in) const;
  /// Body + exit cost of one MIMD state.
  std::int64_t block_cost(const Block& b) const;
  std::int64_t exit_cost(const Block& b) const;
};

}  // namespace msc::ir

#endif  // MSC_IR_COST_HPP
