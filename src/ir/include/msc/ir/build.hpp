#ifndef MSC_IR_BUILD_HPP
#define MSC_IR_BUILD_HPP

#include "msc/frontend/ast.hpp"
#include "msc/frontend/sema.hpp"
#include "msc/ir/graph.hpp"

namespace msc::ir {

/// Build the whole-program MIMD state graph from an analyzed AST (§2.1–2.2).
///
/// - Loops are normalized to the paper's §4.2 form (body executes one or
///   more times): `while (c) s` becomes `if (c) do s while (c);` with the
///   condition code replicated.
/// - Non-recursive calls are in-line expanded per call site; `return`
///   becomes a jump to that site's join block.
/// - Recursive functions are expanded once; calls push an activation frame
///   (saved FP, return-site id, params, locals) and `return` becomes the
///   §2.2 multiway branch over the statically-known return-site set,
///   realised as a chain of binary branches since MIMD states have ≤2 exits.
/// - `wait` becomes a dedicated barrier-wait state (§2.6), `spawn`/`halt`
///   become the §3.2.5 exits.
///
/// The result is raw (unstraightened); run `simplify` from passes.hpp next.
StateGraph build_state_graph(const frontend::Program& program,
                             const frontend::Layout& layout);

}  // namespace msc::ir

#endif  // MSC_IR_BUILD_HPP
