#ifndef MSC_IR_PEEPHOLE_HPP
#define MSC_IR_PEEPHOLE_HPP

#include "msc/ir/graph.hpp"

namespace msc::ir {

/// Local strength reductions on block bodies. Semantics-preserving on the
/// stack machine; patterns (applied to a fixpoint per block):
///   1. constant folding:   Push(a) Push(b) ⊕  →  Push(a⊕b)
///      (int and float arithmetic/comparisons, matching exec_instr exactly,
///      including the total-division rule)
///   2. constant unary:     Push(a) op       →  Push(op a)
///   3. dead value:         Push(_) Pop(1)   →  ∅ ;  Dup Pop(1) → ∅
///   4. statement stores:   Dup Push(addr) StL Pop(1) → Push(addr) StL
///      (an assignment used as a statement; also the StM form)
///   5. pop fusion:         Pop(a) Pop(b)    →  Pop(a+b)
///   6. cast of constant:   Push(a) CastI/F  →  Push(cast a)
/// Returns the number of instructions removed across the graph.
std::size_t peephole(StateGraph& graph);

}  // namespace msc::ir

#endif  // MSC_IR_PEEPHOLE_HPP
