#ifndef MSC_IR_INSTR_HPP
#define MSC_IR_INSTR_HPP

#include <cstdint>
#include <string>

#include "msc/support/value.hpp"

namespace msc::ir {

/// Stack-machine opcodes executed per processing element.
///
/// This is the "simple SIMD stack code" of the paper's Listing 5 (Push,
/// LdL, StL, Pop, JumpF, Ret, ...), extended with the mono/route accesses
/// MIMDC needs (§4.1). Control transfers (JumpF/Jump/Halt/Spawn) are not
/// opcodes; they live in the block exit descriptor so every MIMD state has
/// zero, one, or two exit arcs exactly as §2 requires.
enum class Opcode : std::uint8_t {
  // constants & stack shuffling
  PushI,  ///< push imm.i
  PushF,  ///< push imm.f
  Pop,    ///< pop imm.i cells
  Dup,    ///< duplicate top of stack
  Swap,   ///< exchange the two topmost cells
  // PE-local memory
  LdL,  ///< pop addr; push local[addr]
  StL,  ///< pop addr, pop value; local[addr] = value
  // shared (mono) memory; StM is a broadcast on real hardware
  LdM,  ///< pop addr; push mono[addr]
  StM,  ///< pop addr, pop value; mono[addr] = value
  // parallel subscripting (§4.1) via the router
  RouteLd,  ///< pop proc, pop addr; push local-of(proc)[addr]
  RouteSt,  ///< pop proc, pop addr, pop value; local-of(proc)[addr] = value
  // arithmetic: pop b, pop a, push a·b; float if either operand is float
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,  ///< push int 0/1
  LAnd, LOr,               ///< truthiness of both operands (non-short-circuit)
  BitAnd, BitOr, BitXor, Shl, Shr,  ///< int only; shift counts masked to 63
  // unary: pop a, push op(a)
  Neg, Not, BitNot,
  CastI,  ///< to int (float truncates)
  CastF,  ///< to float
  // machine queries
  ProcId,  ///< push this PE's processor number
  NProcs,  ///< push the machine's processor count
};

const char* opcode_name(Opcode op);

struct Instr {
  Opcode op;
  Value imm;  ///< PushI/PushF payload; Pop count

  static Instr push_i(std::int64_t v) { return {Opcode::PushI, Value::of_int(v)}; }
  static Instr push_f(double v) { return {Opcode::PushF, Value::of_float(v)}; }
  static Instr pop(std::int64_t n) { return {Opcode::Pop, Value::of_int(n)}; }
  static Instr of(Opcode op) { return {op, Value{}}; }

  bool operator==(const Instr& o) const { return op == o.op && imm == o.imm; }
  std::string to_string() const;
};

}  // namespace msc::ir

#endif  // MSC_IR_INSTR_HPP
