#ifndef MSC_MIMD_MACHINE_HPP
#define MSC_MIMD_MACHINE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "msc/ir/cost.hpp"
#include "msc/ir/exec.hpp"
#include "msc/ir/graph.hpp"
#include "msc/support/simd_isa.hpp"

namespace msc::mimd {

/// Which SIMD simulator executes the meta-state program. All engines are
/// observably identical (memories, stats, tracer streams — enforced by
/// tests/simd_differential_test.cpp); they differ only in host cost:
///  - Fast: occupancy-indexed — per-broadcast work proportional to the
///    PEs actually enabled, with incrementally maintained aggregate pc,
///    alive count, and free-PE pool.
///  - Reference: the original scalar oracle — every broadcast scans all
///    nprocs PEs; kept compiled in forever as the differential baseline.
///  - Codegen: translation-cache engine — at automaton load each meta
///    state's guarded SOp sequence is compiled (once per program hash ×
///    cost model, qemu-TCG-style) into a fused, constant-folded host
///    stream executed group-at-a-time; fastest on high-occupancy runs.
enum class SimdEngine : std::uint8_t { Fast, Reference, Codegen };

/// Shared run parameters for both simulated machines.
struct RunConfig {
  std::int64_t nprocs = 4;
  /// PEs that begin in main's start state; the rest form the free pool for
  /// `spawn` (§3.2.5: "processing elements that are not in use"). -1 = all.
  std::int64_t initial_active = -1;
  std::int64_t local_mem_cells = 4096;
  std::int64_t mono_mem_cells = 1024;
  /// Safety cap on total executed blocks (guards non-terminating inputs).
  std::int64_t max_blocks = 4'000'000;
  /// §3.2.5: "processors that complete their processes early can be
  /// returned to the pool of free processors." When true, a halted PE can
  /// be re-allocated by a later spawn — which makes PE assignment depend
  /// on execution timing, so the asynchronous oracle and the lockstep
  /// SIMD machine may hand the same process different PEs. The default
  /// (false) allocates fresh PEs only, keeping assignment deterministic.
  bool reuse_halted_pes = false;
  /// SIMD simulator engine built by simd::make_machine / driver::run_simd.
  SimdEngine engine = SimdEngine::Fast;
  /// Host ISA for whole-lane PE evaluation (simulated semantics are
  /// ISA-independent; this only selects the host execution backend).
  /// Resolved at machine construction; unavailable explicit requests fault.
  SimdIsa simd_isa = SimdIsa::Auto;

  std::int64_t active() const { return initial_active < 0 ? nprocs : initial_active; }
};

/// Thrown when `max_blocks` is exhausted.
class Timeout : public ir::MachineFault {
 public:
  Timeout() : ir::MachineFault("execution exceeded the configured block budget") {}
};

struct MimdStats {
  std::int64_t blocks_executed = 0;
  std::int64_t busy_cycles = 0;          ///< sum of executed block costs
  std::int64_t makespan = 0;             ///< latest PE clock at completion
  std::int64_t barrier_idle_cycles = 0;  ///< time spent blocked at barriers
  std::int64_t barrier_sync_cycles = 0;  ///< runtime sync protocol cost (§5)
  std::int64_t barrier_releases = 0;
  std::int64_t spawns = 0;
};

/// Asynchronous MIMD multiprocessor — the paper's execution model being
/// emulated, and this repo's semantic oracle. Each PE runs the MIMD state
/// graph independently with its own clock; PEs are scheduled in
/// (clock, pe-id) order so runs are deterministic. Barrier-wait states
/// block a PE until every live PE sits in some barrier state (§2.6);
/// the MIMD machine pays `cost.mimd_barrier` per release, modelling the
/// runtime synchronization the paper says MSC eliminates.
class MimdMachine : public ir::MemoryBus {
 public:
  /// Cost knob for the runtime barrier protocol (MIMD machines only).
  static constexpr std::int64_t kBarrierSyncCost = 24;

  MimdMachine(const ir::StateGraph& graph, const ir::CostModel& cost,
              const RunConfig& config);

  // Pre/post-run raw memory access (the driver layers names on top).
  void poke(std::int64_t proc, std::int64_t addr, Value v);
  Value peek(std::int64_t proc, std::int64_t addr) const;
  /// Seed one local cell across all PEs from a per-PE integer vector
  /// (vals.size() == nprocs); same observable effect as nprocs pokes.
  void fill_lane(std::int64_t addr, const std::vector<std::int64_t>& vals);
  void poke_mono(std::int64_t addr, Value v);
  Value peek_mono(std::int64_t addr) const;

  /// Run to completion (all PEs halted or back in the free pool).
  void run();

  const MimdStats& stats() const { return stats_; }
  bool halted(std::int64_t proc) const { return pes_[proc].status == Status::Halted; }
  /// True if the PE executed at least one block (spawned or initial).
  bool ever_ran(std::int64_t proc) const { return pes_[proc].ever_ran; }
  std::int64_t finish_clock(std::int64_t proc) const { return pes_[proc].clock; }

  // MemoryBus:
  Value mono_load(std::int64_t addr) override;
  void mono_store(std::int64_t addr, Value v) override;
  Value route_load(std::int64_t proc, std::int64_t addr) override;
  void route_store(std::int64_t proc, std::int64_t addr, Value v) override;

 private:
  enum class Status : std::uint8_t { Free, Running, Waiting, Halted };

  struct Pe {
    ir::StateId pc = ir::kNoState;
    std::int64_t clock = 0;
    Status status = Status::Free;
    bool ever_ran = false;
    ir::SoaLocal local;
    std::vector<Value> stack;
  };

  void exec_block(std::int64_t pid);
  void maybe_release_barrier();
  std::int64_t pick_next() const;  ///< PE with min (clock, id), or -1
  void check_local(std::int64_t proc, std::int64_t addr) const;

  const ir::StateGraph& graph_;
  const ir::CostModel& cost_;
  RunConfig config_;
  std::vector<Pe> pes_;
  std::vector<Value> mono_;
  MimdStats stats_;
};

}  // namespace msc::mimd

#endif  // MSC_MIMD_MACHINE_HPP
