#include "msc/mimd/machine.hpp"

#include <algorithm>

#include "msc/support/str.hpp"

namespace msc::mimd {

using ir::ExitKind;
using ir::kNoState;
using ir::MachineFault;
using ir::StateId;

MimdMachine::MimdMachine(const ir::StateGraph& graph, const ir::CostModel& cost,
                         const RunConfig& config)
    : graph_(graph), cost_(cost), config_(config) {
  if (config_.nprocs <= 0) throw MachineFault("nprocs must be positive");
  if (config_.active() > config_.nprocs)
    throw MachineFault("initial_active exceeds nprocs");
  pes_.resize(static_cast<std::size_t>(config_.nprocs));
  for (std::int64_t i = 0; i < config_.nprocs; ++i) {
    Pe& pe = pes_[static_cast<std::size_t>(i)];
    pe.local.assign(config_.local_mem_cells);
    if (i < config_.active()) {
      pe.pc = graph_.start;
      pe.status = Status::Running;
      pe.ever_ran = true;
    }
  }
  mono_.assign(static_cast<std::size_t>(config_.mono_mem_cells), Value{});
}

void MimdMachine::check_local(std::int64_t proc, std::int64_t addr) const {
  if (proc < 0 || proc >= config_.nprocs)
    throw MachineFault(cat("PE index out of range: ", proc));
  if (addr < 0 || addr >= config_.local_mem_cells)
    throw MachineFault(cat("local address out of range: ", addr));
}

void MimdMachine::poke(std::int64_t proc, std::int64_t addr, Value v) {
  check_local(proc, addr);
  pes_[static_cast<std::size_t>(proc)].local.set(addr, v);
}

Value MimdMachine::peek(std::int64_t proc, std::int64_t addr) const {
  check_local(proc, addr);
  return pes_[static_cast<std::size_t>(proc)].local.get(addr);
}

void MimdMachine::fill_lane(std::int64_t addr,
                            const std::vector<std::int64_t>& vals) {
  check_local(0, addr);
  for (std::int64_t p = 0; p < config_.nprocs; ++p)
    pes_[static_cast<std::size_t>(p)].local.set(
        addr, Value::of_int(vals[static_cast<std::size_t>(p)]));
}

void MimdMachine::poke_mono(std::int64_t addr, Value v) {
  if (addr < 0 || addr >= config_.mono_mem_cells)
    throw MachineFault(cat("mono address out of range: ", addr));
  mono_[static_cast<std::size_t>(addr)] = v;
}

Value MimdMachine::peek_mono(std::int64_t addr) const {
  if (addr < 0 || addr >= config_.mono_mem_cells)
    throw MachineFault(cat("mono address out of range: ", addr));
  return mono_[static_cast<std::size_t>(addr)];
}

Value MimdMachine::mono_load(std::int64_t addr) { return peek_mono(addr); }

void MimdMachine::mono_store(std::int64_t addr, Value v) { poke_mono(addr, v); }

Value MimdMachine::route_load(std::int64_t proc, std::int64_t addr) {
  return peek(proc, addr);
}

void MimdMachine::route_store(std::int64_t proc, std::int64_t addr, Value v) {
  poke(proc, addr, v);
}

std::int64_t MimdMachine::pick_next() const {
  std::int64_t best = -1;
  for (std::int64_t i = 0; i < config_.nprocs; ++i) {
    const Pe& pe = pes_[static_cast<std::size_t>(i)];
    if (pe.status != Status::Running) continue;
    if (best < 0 || pe.clock < pes_[static_cast<std::size_t>(best)].clock) best = i;
  }
  return best;
}

void MimdMachine::exec_block(std::int64_t pid) {
  Pe& pe = pes_[static_cast<std::size_t>(pid)];
  const ir::Block& b = graph_.at(pe.pc);

  if (b.barrier_wait) {
    // Arrived at a barrier-wait state; block here until everyone arrives.
    pe.status = Status::Waiting;
    maybe_release_barrier();
    return;
  }

  ir::PeContext ctx{pe.local.view(), &pe.stack, pid, config_.nprocs};
  for (const ir::Instr& in : b.body) ir::exec_instr(in, ctx, *this);
  pe.clock += cost_.block_cost(b);
  stats_.busy_cycles += cost_.block_cost(b);
  ++stats_.blocks_executed;
  if (stats_.blocks_executed > config_.max_blocks) throw Timeout();

  switch (b.exit) {
    case ExitKind::Halt:
      // §3.2.5: with pool reuse the PE goes straight back to Free.
      pe.status = config_.reuse_halted_pes ? Status::Free : Status::Halted;
      pe.pc = kNoState;
      // A halting PE may have been the last one a barrier was waiting on.
      maybe_release_barrier();
      return;
    case ExitKind::Jump:
      pe.pc = b.target;
      return;
    case ExitKind::Branch: {
      Value cond = ir::stack_pop(pe.stack);
      pe.pc = cond.truthy() ? b.target : b.alt;
      return;
    }
    case ExitKind::Spawn: {
      std::int64_t child = -1;
      for (std::int64_t i = 0; i < config_.nprocs; ++i) {
        if (pes_[static_cast<std::size_t>(i)].status == Status::Free) {
          child = i;
          break;
        }
      }
      if (child < 0)
        throw MachineFault("spawn failed: no free processing element "
                           "(§3.2.5 assumes processes ≤ processors)");
      Pe& ch = pes_[static_cast<std::size_t>(child)];
      ch.local.assign(config_.local_mem_cells);
      ch.stack.clear();
      ch.pc = b.target;
      ch.clock = pe.clock;
      ch.status = Status::Running;
      ch.ever_ran = true;
      ++stats_.spawns;
      pe.pc = b.alt;
      return;
    }
  }
}

void MimdMachine::maybe_release_barrier() {
  bool any_waiting = false;
  std::int64_t release_clock = 0;
  for (const Pe& pe : pes_) {
    if (pe.status == Status::Running) return;  // someone still computing
    if (pe.status == Status::Waiting) {
      any_waiting = true;
      release_clock = std::max(release_clock, pe.clock);
    }
  }
  if (!any_waiting) return;
  // Everyone live is at a barrier-wait state: release them all (§2.6).
  for (Pe& pe : pes_) {
    if (pe.status != Status::Waiting) continue;
    stats_.barrier_idle_cycles += release_clock - pe.clock;
    pe.clock = release_clock + kBarrierSyncCost;
    stats_.barrier_sync_cycles += kBarrierSyncCost;
    pe.pc = graph_.at(pe.pc).target;
    pe.status = Status::Running;
  }
  ++stats_.barrier_releases;
}

void MimdMachine::run() {
  for (;;) {
    std::int64_t pid = pick_next();
    if (pid < 0) break;
    exec_block(pid);
  }
  for (const Pe& pe : pes_)
    if (pe.status == Status::Waiting)
      throw MachineFault("deadlock: PEs waiting at a barrier at program end");
  for (const Pe& pe : pes_) stats_.makespan = std::max(stats_.makespan, pe.clock);
}

}  // namespace msc::mimd
