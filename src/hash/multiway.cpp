#include "msc/hash/multiway.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "msc/support/str.hpp"

namespace msc::hash {

std::uint64_t HashFn::eval(std::uint64_t key) const {
  switch (kind) {
    case Kind::Identity:
      return key & mask;
    case Kind::ShiftMask:
      return (key >> shift) & mask;
    case Kind::NotShiftMask:
      return (~key >> shift) & mask;
    case Kind::XorShiftMask:
      return ((key >> shift) ^ key) & mask;
    case Kind::MulShift:
      return ((key * mul) >> shift) & mask;
    case Kind::Linear:
      return 0;
  }
  return 0;
}

std::string HashFn::render(const std::string& var) const {
  switch (kind) {
    case Kind::Identity:
      return cat("(", var, " & ", mask, ")");
    case Kind::ShiftMask:
      return cat("((", var, " >> ", shift, ") & ", mask, ")");
    case Kind::NotShiftMask:
      return cat("(((~", var, ") >> ", shift, ") & ", mask, ")");
    case Kind::XorShiftMask:
      return cat("(((", var, " >> ", shift, ") ^ ", var, ") & ", mask, ")");
    case Kind::MulShift:
      return cat("(((", var, " * ", mul, "ull) >> ", shift, ") & ", mask, ")");
    case Kind::Linear:
      return cat("/* linear scan over ", var, " */");
  }
  return "?";
}

std::int32_t HashedSwitch::lookup(std::uint64_t key) const {
  if (fn.kind == HashFn::Kind::Linear) {
    for (std::size_t i = 0; i < keys.size(); ++i)
      if (keys[i] == key) return static_cast<std::int32_t>(i);
    return -1;
  }
  std::uint64_t h = fn.eval(key);
  if (h >= table.size()) return -1;
  std::int32_t idx = table[h];
  // A foreign key can hash to an empty slot: that is a miss, and the -1
  // sentinel must never escape as if it were a match for "key index -1".
  if (idx < 0) return -1;
  // Guard against aliasing: a foreign key may hash into an occupied slot.
  // A corrupt or hand-built table may also hold an index past `keys`;
  // bounds-check before the confirming compare rather than reading out of
  // range.
  if (static_cast<std::size_t>(idx) >= keys.size() ||
      keys[static_cast<std::size_t>(idx)] != key)
    return -1;
  return idx;
}

double HashedSwitch::density() const {
  if (table.empty()) return 0.0;
  std::size_t used = 0;
  for (std::int32_t v : table)
    if (v >= 0) ++used;
  return static_cast<double>(used) / static_cast<double>(table.size());
}

namespace {

bool injective(const HashFn& fn, const std::vector<std::uint64_t>& keys) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(keys.size() * 2);
  for (std::uint64_t k : keys)
    if (!seen.insert(fn.eval(k)).second) return false;
  return true;
}

HashedSwitch finish(HashFn fn, const std::vector<std::uint64_t>& keys) {
  HashedSwitch sw;
  sw.fn = fn;
  sw.keys = keys;
  if (fn.kind == HashFn::Kind::Linear) return sw;
  sw.table.assign(static_cast<std::size_t>(fn.mask) + 1, -1);
  for (std::size_t i = 0; i < keys.size(); ++i)
    sw.table[fn.eval(keys[i])] = static_cast<std::int32_t>(i);
  return sw;
}

}  // namespace

HashedSwitch build_switch(const std::vector<std::uint64_t>& keys,
                          const SearchOptions& options) {
  if (keys.empty()) throw std::invalid_argument("build_switch: no keys");
  {
    std::unordered_set<std::uint64_t> distinct(keys.begin(), keys.end());
    if (distinct.size() != keys.size())
      throw std::invalid_argument("build_switch: duplicate keys");
  }

  std::uint32_t min_bits = 0;
  while ((std::size_t{1} << min_bits) < keys.size()) ++min_bits;

  for (std::uint32_t bits = min_bits; bits <= options.max_bits; ++bits) {
    std::uint64_t mask = (bits >= 64) ? ~0ull : ((std::uint64_t{1} << bits) - 1);
    // Cheapest families first; within a family smallest shift first, so
    // the chosen encoding is deterministic.
    {
      HashFn fn{HashFn::Kind::Identity, 0, 0, mask};
      if (injective(fn, keys)) return finish(fn, keys);
    }
    for (std::uint32_t s = 1; s < 64; ++s) {
      HashFn fn{HashFn::Kind::ShiftMask, s, 0, mask};
      if (injective(fn, keys)) return finish(fn, keys);
    }
    for (std::uint32_t s = 0; s < 64; ++s) {
      HashFn fn{HashFn::Kind::NotShiftMask, s, 0, mask};
      if (injective(fn, keys)) return finish(fn, keys);
    }
    for (std::uint32_t s = 1; s < 64; ++s) {
      HashFn fn{HashFn::Kind::XorShiftMask, s, 0, mask};
      if (injective(fn, keys)) return finish(fn, keys);
    }
    std::uint64_t mul = 0x9E3779B97F4A7C15ull;  // golden-ratio seed
    for (std::uint32_t a = 0; a < options.mul_attempts; ++a) {
      HashFn fn{HashFn::Kind::MulShift, 64 - bits, mul | 1, mask};
      if (injective(fn, keys)) return finish(fn, keys);
      mul = mul * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull;
    }
  }
  HashFn fn;
  fn.kind = HashFn::Kind::Linear;
  return finish(fn, keys);
}

}  // namespace msc::hash
