#ifndef MSC_HASH_MULTIWAY_HPP
#define MSC_HASH_MULTIWAY_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace msc::hash {

/// A customized hash function for multiway-branch encoding [Die92a].
///
/// §3.2.3 keys each meta-state transition on the aggregate of the PEs'
/// "pc" bits. The aggregate values are sparse (one bit per possible next
/// MIMD state), so "a hash function is applied to make the case values
/// contiguous so that the ... compiler will use a jump table" — exactly
/// the `((~apc) >> 5) & 3` / `((apc >> 6) ^ apc) & 15` patterns of the
/// paper's Listing 5. The searcher tries families in increasing dispatch
/// cost and the smallest usable table first.
struct HashFn {
  enum class Kind : std::uint8_t {
    Identity,      ///< key & mask (keys already dense)
    ShiftMask,     ///< (key >> s) & mask
    NotShiftMask,  ///< (~key >> s) & mask
    XorShiftMask,  ///< ((key >> s) ^ key) & mask
    MulShift,      ///< (key * mul) >> s & mask (universal fallback family)
    Linear,        ///< no perfect hash found: sequential compare chain
  };

  Kind kind = Kind::Identity;
  std::uint32_t shift = 0;
  std::uint64_t mul = 0;
  std::uint64_t mask = 0;

  std::uint64_t eval(std::uint64_t key) const;
  /// Render as C-like source over a variable name, e.g. "((apc >> 5) & 3)".
  std::string render(const std::string& var) const;
};

/// A complete encoded multiway branch: hash function + dense jump table.
struct HashedSwitch {
  HashFn fn;
  /// table[fn.eval(key)] = case index, or -1 for impossible slots.
  std::vector<std::int32_t> table;
  /// Original keys in case-index order (used by Kind::Linear and tests).
  std::vector<std::uint64_t> keys;

  /// Case index for `key`, or -1 if the key is not in the branch.
  std::int32_t lookup(std::uint64_t key) const;
  std::size_t table_size() const { return table.size(); }
  /// Fraction of table slots holding a real case.
  double density() const;
  bool is_linear() const { return fn.kind == HashFn::Kind::Linear; }
};

struct SearchOptions {
  /// Largest table considered: 2^max_bits entries.
  std::uint32_t max_bits = 12;
  /// Try this many multiplier constants in the MulShift family.
  std::uint32_t mul_attempts = 32;
};

/// Find a perfect (collision-free over `keys`) hash and build the jump
/// table. Keys must be distinct. Falls back to Kind::Linear if no perfect
/// function exists within the table budget — lookup still works, just
/// costs a compare chain instead of one dispatch.
HashedSwitch build_switch(const std::vector<std::uint64_t>& keys,
                          const SearchOptions& options = {});

}  // namespace msc::hash

#endif  // MSC_HASH_MULTIWAY_HPP
