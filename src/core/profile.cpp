#include "msc/core/profile.hpp"

#include <algorithm>
#include <sstream>

#include "msc/support/str.hpp"

namespace msc::core {

double AutomatonProfile::mean_replication() const {
  if (replication.empty()) return 0.0;
  std::size_t used = 0, total = 0;
  for (std::size_t r : replication) {
    if (r == 0) continue;
    ++used;
    total += r;
  }
  return used == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(used);
}

AutomatonProfile profile(const MetaAutomaton& automaton) {
  AutomatonProfile p;
  p.states = automaton.num_states();
  p.arcs = automaton.num_arcs();

  std::size_t mimd_states = 0;
  for (const MetaState& s : automaton.states)
    for (std::size_t m : s.members.bits())
      mimd_states = std::max(mimd_states, m + 1);
  p.replication.assign(mimd_states, 0);

  std::size_t width_total = 0;
  for (const MetaState& s : automaton.states) {
    std::size_t w = s.width();
    width_total += w;
    p.max_width = std::max(p.max_width, w);
    ++p.width_histogram[w];
    ++p.out_degree_histogram[s.arcs.size()];
    p.max_out_degree = std::max(p.max_out_degree, s.arcs.size());
    if (s.terminal()) ++p.terminal_states;
    if (s.unconditional != kNoMeta) ++p.unconditional_states;
    if (!automaton.barriers.empty() && s.members.is_subset_of(automaton.barriers))
      ++p.all_barrier_states;
    for (std::size_t m : s.members.bits()) ++p.replication[m];
  }
  p.mean_width = p.states == 0
                     ? 0.0
                     : static_cast<double>(width_total) / static_cast<double>(p.states);
  return p;
}

std::string AutomatonProfile::to_string() const {
  std::ostringstream os;
  os << "automaton profile:\n"
     << "  states            " << states << "\n"
     << "  arcs              " << arcs << "\n"
     << "  terminal          " << terminal_states << "\n"
     << "  unconditional     " << unconditional_states << "\n"
     << "  all-barrier       " << all_barrier_states << "\n"
     << "  width mean/max    " << fmt_double(mean_width, 2) << " / " << max_width
     << "\n"
     << "  out-degree max    " << max_out_degree << "\n"
     << "  replication mean  " << fmt_double(mean_replication(), 2) << "\n"
     << "  width histogram  ";
  for (const auto& [w, n] : width_histogram) os << " " << w << ":" << n;
  os << "\n  degree histogram ";
  for (const auto& [d, n] : out_degree_histogram) os << " " << d << ":" << n;
  os << "\n";
  return os.str();
}

}  // namespace msc::core
