#include "msc/core/straighten.hpp"

#include <vector>

namespace msc::core {

namespace {

/// The unique successor a state would fall through to, or kNoMeta.
MetaId single_successor(const MetaState& s) {
  if (s.unconditional != kNoMeta && s.arcs.empty()) return s.unconditional;
  if (s.unconditional == kNoMeta && s.arcs.size() == 1) return s.arcs[0].second;
  return kNoMeta;
}

}  // namespace

std::size_t straighten(MetaAutomaton& automaton) {
  const std::size_t n = automaton.states.size();
  if (n == 0) return 0;

  // Count predecessors (all arc kinds).
  std::vector<std::size_t> preds(n, 0);
  for (const MetaState& s : automaton.states) {
    if (s.unconditional != kNoMeta) ++preds[s.unconditional];
    for (const auto& [key, target] : s.arcs) ++preds[target];
  }

  // Greedy chain layout: start from the entry state, then every remaining
  // state in id order; follow single-successor links into states that have
  // exactly one predecessor and are not the entry.
  std::vector<MetaId> order;
  order.reserve(n);
  std::vector<bool> placed(n, false);
  std::size_t fallthroughs = 0;
  auto lay_chain = [&](MetaId head) {
    MetaId cur = head;
    while (cur != kNoMeta && !placed[cur]) {
      placed[cur] = true;
      order.push_back(cur);
      MetaId next = single_successor(automaton.states[cur]);
      if (next == kNoMeta || next == cur || placed[next] ||
          next == automaton.start || preds[next] != 1)
        break;
      ++fallthroughs;
      cur = next;
    }
  };
  lay_chain(automaton.start);
  for (MetaId id = 0; id < n; ++id)
    if (!placed[id]) lay_chain(id);

  // Apply the permutation.
  std::vector<MetaId> newid(n);
  for (std::size_t pos = 0; pos < n; ++pos) newid[order[pos]] = static_cast<MetaId>(pos);
  std::vector<MetaState> reordered(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    MetaState s = std::move(automaton.states[order[pos]]);
    s.id = static_cast<MetaId>(pos);
    if (s.unconditional != kNoMeta) s.unconditional = newid[s.unconditional];
    for (auto& [key, target] : s.arcs) target = newid[target];
    reordered[pos] = std::move(s);
  }
  automaton.states = std::move(reordered);
  automaton.start = newid[automaton.start];
  automaton.index.clear();
  for (const MetaState& s : automaton.states)
    automaton.index.emplace(s.members, s.id);
  return fallthroughs;
}

}  // namespace msc::core
