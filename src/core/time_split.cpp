#include "msc/core/time_split.hpp"

#include <algorithm>
#include <limits>

#include "msc/support/str.hpp"

namespace msc::core {

using ir::Block;
using ir::ExitKind;
using ir::StateGraph;
using ir::StateId;

namespace {

/// Split `id` so the head costs roughly `target` cycles. Returns false if
/// the block cannot be divided at any instruction boundary.
bool split_block(StateGraph& graph, StateId id, std::int64_t target,
                 const ir::CostModel& cost) {
  Block& b = graph.at(id);
  if (b.barrier_wait || b.body.size() < 2) return false;

  // Longest instruction prefix with cost ≤ target (head also pays its
  // Jump exit); always keep ≥1 instruction on each side.
  std::int64_t budget = target - cost.jump;
  std::int64_t acc = 0;
  std::size_t cut = 0;
  for (std::size_t i = 0; i + 1 < b.body.size(); ++i) {
    std::int64_t c = cost.instr_cost(b.body[i]);
    if (cut > 0 && acc + c > budget) break;
    acc += c;
    cut = i + 1;
  }
  if (cut == 0 || cut >= b.body.size()) return false;

  StateId tail = graph.add_block(b.label.empty() ? std::string("'") : b.label + "'");
  Block& head = graph.at(id);  // re-fetch: add_block may reallocate
  Block& tb = graph.at(tail);
  tb.body.assign(head.body.begin() + static_cast<std::ptrdiff_t>(cut),
                 head.body.end());
  tb.exit = head.exit;
  tb.target = head.target;
  tb.alt = head.alt;
  head.body.resize(cut);
  head.exit = ExitKind::Jump;
  head.target = tail;
  head.alt = ir::kNoState;
  return true;
}

}  // namespace

int time_split_state(StateGraph& graph, const DynBitset& members,
                     const ir::CostModel& cost, std::int64_t split_delta,
                     std::int64_t split_percent,
                     std::vector<StateId>* split_ids) {
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = 0;
  for (std::size_t s : members.bits()) {
    std::int64_t c = cost.block_cost(graph.at(static_cast<StateId>(s)));
    if (c == 0) continue;  // ignore zero-time components
    min = std::min(min, c);
    max = std::max(max, c);
  }
  if (max == 0) return 0;

  // "Is enough time wasted to be worth splitting?"
  if (min + split_delta > max) return 0;
  if (min > (split_percent * max) / 100) return 0;

  int did_split = 0;
  for (std::size_t s : members.bits()) {
    StateId id = static_cast<StateId>(s);
    if (cost.block_cost(graph.at(id)) > min) {
      if (split_block(graph, id, min, cost)) {
        ++did_split;
        if (split_ids) split_ids->push_back(id);
      }
    }
  }
  return did_split;
}

double meta_state_idle_fraction(const StateGraph& graph, const DynBitset& members,
                                const ir::CostModel& cost) {
  std::int64_t max = 0;
  std::vector<std::int64_t> costs;
  for (std::size_t s : members.bits()) {
    std::int64_t c = cost.block_cost(graph.at(static_cast<StateId>(s)));
    costs.push_back(c);
    max = std::max(max, c);
  }
  if (max == 0 || costs.empty()) return 0.0;
  std::int64_t idle = 0;
  for (std::int64_t c : costs) idle += max - c;
  return static_cast<double>(idle) /
         static_cast<double>(max * static_cast<std::int64_t>(costs.size()));
}

}  // namespace msc::core
