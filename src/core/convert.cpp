#include "msc/core/convert.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "msc/core/straighten.hpp"
#include "msc/core/subsume.hpp"
#include "msc/core/time_split.hpp"
#include "msc/support/coverage.hpp"
#include "msc/support/metrics.hpp"
#include "msc/support/str.hpp"

namespace msc::core {

using ir::Block;
using ir::ExitKind;
using ir::StateGraph;
using ir::StateId;

ExplosionError::ExplosionError(std::size_t limit)
    : std::runtime_error(cat("meta-state space exceeded the configured limit of ",
                             limit,
                             " states (§1.2 warns of up to S!/(S-N)! states; "
                             "try compression or barriers)")) {}

namespace {

using Clock = std::chrono::steady_clock;

double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Internal signal: a meta state triggered §2.4 time splitting, the graph
/// changed, and "the construction of the meta-state automaton is restarted
/// to ensure that the final meta-state automaton is consistent."
struct RestartRequest {
  int splits;
  std::vector<StateId> split_ids;
};

/// Successor-set memo: member bitset → the raw (pre-mask) successor sets
/// reach() enumerates for it. Owned by meta_state_convert() so it survives
/// §2.4 restarts; a restart invalidates only the entries whose member sets
/// include a split state (splitting rewrites exactly those blocks' exits —
/// every other member's block, and therefore every other entry, is
/// untouched). Barrier membership never changes across restarts
/// (split_block refuses barrier-wait blocks), so the all-barrier flag and
/// the §2.6 mask derived from an entry's key stay valid too.
struct SuccessorMemo {
  std::unordered_map<DynBitset, std::vector<DynBitset>, DynBitsetHash> map;
  /// Member sets already cost-scanned by time_split_state() and found not
  /// worth splitting. Split decisions depend only on the members' block
  /// costs, so they survive restarts under the same invalidation rule as
  /// the successor map.
  std::unordered_set<DynBitset, DynBitsetHash> no_split;

  std::size_t invalidate(const std::vector<StateId>& split_ids) {
    DynBitset split;
    for (StateId s : split_ids) split.set(s);
    std::size_t dropped = 0;
    for (auto it = map.begin(); it != map.end();) {
      if (it->first.intersects(split)) {
        it = map.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    for (auto it = no_split.begin(); it != no_split.end();) {
      if (it->intersects(split))
        it = no_split.erase(it);
      else
        ++it;
    }
    return dropped;
  }
};

class Converter {
 public:
  Converter(StateGraph& graph, const ir::CostModel& cost,
            const ConvertOptions& opts, bool allow_split, ConvertStats& stats,
            SuccessorMemo* memo)
      : g_(graph), cost_(cost), opts_(opts), allow_split_(allow_split),
        stats_(stats), memo_(memo) {}

  MetaAutomaton run() {
    // meta_state_convert() already rejected the unsound PaperPrune
    // combinations (compress / spawn / multiple barriers), so the mode is
    // taken verbatim.
    aut_ = MetaAutomaton{};
    aut_.barrier_mode = opts_.barrier_mode;
    aut_.barriers = g_.barrier_states();
    aut_.compressed = opts_.compress;

    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = opts_.threads != 0 ? opts_.threads : (hw != 0 ? hw : 1);
    stats_.threads_used = threads_;

    // A restart round rebuilds roughly the memoized prefix: pre-size the
    // state table and index to skip their reallocation/rehash churn.
    if (memo_ && !memo_->map.empty()) {
      aut_.states.reserve(memo_->map.size() + 64);
      aut_.index.reserve(memo_->map.size() + 64);
    }

    DynBitset start(g_.size());
    start.set(g_.start);
    aut_.start = get_or_create(start);

    // meta_state_convert() main loop (§2.3), batched: take every unmarked
    // meta state (one BFS layer of the discovery frontier), enumerate all
    // their successor sets — in parallel, against the memo — then merge in
    // discovery order so state numbering is identical to a serial run.
    for (std::size_t begin = 0; begin < aut_.states.size();) {
      const std::size_t end = aut_.states.size();
      ++stats_.batches;

      std::vector<Job> jobs = make_jobs(begin, end);
      Clock::time_point t0 = Clock::now();
      expand(jobs);
      stats_.expand_seconds += since(t0);

      Clock::time_point t1 = Clock::now();
      merge(jobs);
      stats_.merge_seconds += since(t1);

      begin = end;
    }

    if (opts_.compress && opts_.subsume) {
      Clock::time_point t0 = Clock::now();
      subsume_automaton(aut_);
      stats_.subsume_seconds += since(t0);
    }

    stats_.meta_states = aut_.num_states();
    stats_.arcs = aut_.num_arcs();
    return std::move(aut_);
  }

 private:
  /// One frontier meta state awaiting successor enumeration. `cached`
  /// points into the memo (unordered_map references are insert-stable);
  /// a miss fills `computed` instead. Member sets are read through the
  /// automaton by id — stable across the reallocation merge() causes —
  /// so hits carry no per-job copies at all.
  struct Job {
    MetaId id = kNoMeta;
    bool all_barrier = false;
    const std::vector<DynBitset>* cached = nullptr;
    std::vector<DynBitset> computed;

    const std::vector<DynBitset>& raw() const {
      return cached ? *cached : computed;
    }
  };

  const DynBitset& members_of(const Job& job) const {
    return aut_.states[job.id].members;
  }

  MetaId get_or_create(const DynBitset& members) {
    bool created = false;
    MetaId id = aut_.find_or_add(members, created);
    if (!created) return id;
    // Enforced at insertion: exactly max_meta_states may be created. The
    // rollback keeps the single-hash fast path out of the cold limit check.
    if (aut_.states.size() > opts_.max_meta_states) {
      aut_.states.pop_back();
      aut_.index.erase(members);
      throw ExplosionError(opts_.max_meta_states);
    }
    if (allow_split_ && !(memo_ && memo_->no_split.contains(members))) {
      std::vector<StateId> split_ids;
      int splits = time_split_state(g_, members, cost_, opts_.split_delta,
                                    opts_.split_percent, &split_ids);
      if (splits > 0) throw RestartRequest{splits, std::move(split_ids)};
      if (memo_) memo_->no_split.insert(members);
    }
    return id;
  }

  std::vector<Job> make_jobs(std::size_t begin, std::size_t end) {
    std::vector<Job> jobs(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      Job& job = jobs[i - begin];
      job.id = static_cast<MetaId>(i);
      const DynBitset& members = aut_.states[i].members;
      job.all_barrier =
          !aut_.barriers.empty() && members.is_subset_of(aut_.barriers);
      if (memo_) {
        auto it = memo_->map.find(members);
        if (it != memo_->map.end()) {
          job.cached = &it->second;
          ++stats_.cache_hits;
        } else {
          ++stats_.cache_misses;
        }
      } else {
        ++stats_.cache_misses;
      }
    }
    return jobs;
  }

  /// Enumerate successor sets for every miss in the batch. Workers only
  /// read the graph and write disjoint Job slots; the memo is frozen for
  /// the duration (inserts happen in merge()), so hits stay valid.
  void expand(std::vector<Job>& jobs) {
    std::vector<Job*> misses;
    for (Job& job : jobs)
      if (!job.cached) misses.push_back(&job);
    if (misses.empty()) return;

    if (threads_ <= 1 || misses.size() < 2) {
      std::size_t calls = 0;
      for (Job* job : misses) expand_one(*job, calls);
      stats_.reach_calls += calls;
      return;
    }

    const std::size_t nworkers = std::min<std::size_t>(threads_, misses.size());
    const std::size_t chunk = (misses.size() + nworkers - 1) / nworkers;
    std::vector<std::size_t> calls(nworkers, 0);
    std::vector<std::exception_ptr> errors(nworkers);
    std::vector<std::thread> pool;
    pool.reserve(nworkers);
    for (std::size_t w = 0; w < nworkers; ++w) {
      pool.emplace_back([&, w] {
        try {
          const std::size_t lo = w * chunk;
          const std::size_t hi = std::min(misses.size(), lo + chunk);
          for (std::size_t i = lo; i < hi; ++i) expand_one(*misses[i], calls[w]);
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    for (std::thread& t : pool) t.join();
    for (std::size_t w = 0; w < nworkers; ++w) {
      stats_.reach_calls += calls[w];
      if (errors[w]) std::rethrow_exception(errors[w]);
    }
  }

  void expand_one(Job& job, std::size_t& calls) const {
    std::vector<StateId> mem;
    for (std::size_t s : members_of(job).bits())
      mem.push_back(static_cast<StateId>(s));
    std::set<DynBitset> out;
    DynBitset t(g_.size());
    reach(mem, 0, t, job.all_barrier, out, calls);
    job.computed.assign(out.begin(), out.end());
  }

  /// Discovery-order merge: publish this batch's enumerations to the memo
  /// (before any state creation, so a §2.4 restart keeps them), then walk
  /// the batch in id order creating successors and arcs — the exact order
  /// a serial converter would, hence identical state numbering.
  void merge(std::vector<Job>& jobs) {
    if (memo_) {
      for (Job& job : jobs)
        if (!job.cached) {
          auto [it, inserted] =
              memo_->map.emplace(members_of(job), std::move(job.computed));
          job.cached = &it->second;
          (void)inserted;  // member sets are unique within a round
        }
    }
    for (Job& job : jobs) {
      if (opts_.compress)
        attach_compressed(job);
      else
        attach(job);
    }
  }

  void attach(Job& job) {
    std::vector<DynBitset> keys;
    keys.reserve(job.raw().size());
    for (const DynBitset& raw : job.raw()) {
      if (raw.empty()) continue;  // every process ended: terminal (§3.2.1)
      keys.push_back(mask(raw));
    }
    // Sorted + deduplicated: the same (ordered) key sequence a std::set
    // would yield, without per-key node allocations.
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    for (DynBitset& key : keys) {
      MetaId target = get_or_create(key);
      aut_.at(job.id).arcs.emplace_back(std::move(key), target);
    }
  }

  void attach_compressed(Job& job) {
    // §2.5: every member takes all paths, so reach() produced exactly one
    // union — the unconditional successor (§3.2.2).
    if (job.raw().size() != 1)
      throw std::logic_error("compressed reach must yield one successor");
    const DynBitset& succ = job.raw().front();
    if (!succ.empty()) {
      MetaId target = get_or_create(succ);
      aut_.at(job.id).unconditional = target;
    }
    // Barrier release: when every live PE is waiting, occupancy is some
    // nonempty subset of this state's barrier members; key each such
    // occupancy to its dedicated all-barrier meta state so the compressed
    // automaton cannot livelock on a barrier.
    DynBitset b = members_of(job) & aut_.barriers;
    if (b.empty() || job.all_barrier) return;
    std::vector<std::size_t> bits = b.to_vector();
    if (bits.size() > 16)
      throw std::runtime_error(
          "more than 16 distinct barrier states in one compressed meta state");
    std::set<DynBitset> keys;
    for (std::uint32_t m = 1; m < (1u << bits.size()); ++m) {
      DynBitset s(g_.size());
      for (std::size_t i = 0; i < bits.size(); ++i)
        if (m & (1u << i)) s.set(bits[i]);
      if (s != succ) keys.insert(s);
    }
    for (const DynBitset& key : keys) {
      MetaId target = get_or_create(key);
      aut_.at(job.id).arcs.emplace_back(key, target);
    }
  }

  /// §2.6 barrier_sync(): under the paper's rule, remove barrier states
  /// from the meta state unless everyone has reached a barrier.
  DynBitset mask(const DynBitset& raw) const {
    if (aut_.barrier_mode == BarrierMode::TrackOccupancy || aut_.barriers.empty())
      return raw;
    if (raw.is_subset_of(aut_.barriers)) return raw;
    return raw - aut_.barriers;
  }

  /// §2.3 reach(): enumerate every achievable union of per-member choices.
  /// Each member contributes TRUE / FALSE / both for a two-exit state
  /// (just both under §2.5 compression), its single successor for a jump,
  /// both arcs for a spawn (§3.2.5), nothing when the process ends, and
  /// itself when stalled at a barrier. Pure with respect to the automaton
  /// and graph, so expansion workers may run it concurrently.
  void reach(const std::vector<StateId>& mem, std::size_t i, const DynBitset& t,
             bool all_barrier, std::set<DynBitset>& out,
             std::size_t& calls) const {
    ++calls;
    if (i == mem.size()) {
      out.insert(t);
      return;
    }
    const Block& b = g_.at(mem[i]);
    auto with = [&](std::initializer_list<StateId> add) {
      DynBitset next = t;
      for (StateId s : add) next.set(s);
      return next;
    };
    if (b.barrier_wait && !all_barrier) {
      // Waiting: this member cannot advance until everyone reaches a
      // barrier; it keeps occupying its own state. (Under PaperPrune
      // such members only appear in all-barrier states, so this path is
      // TrackOccupancy/compressed-specific.)
      reach(mem, i + 1, with({b.id}), all_barrier, out, calls);
      return;
    }
    switch (b.exit) {
      case ExitKind::Halt:
        reach(mem, i + 1, t, all_barrier, out, calls);
        return;
      case ExitKind::Jump:
        reach(mem, i + 1, with({b.target}), all_barrier, out, calls);
        return;
      case ExitKind::Spawn:
        reach(mem, i + 1, with({b.target, b.alt}), all_barrier, out, calls);
        return;
      case ExitKind::Branch:
        if (opts_.compress) {
          reach(mem, i + 1, with({b.target, b.alt}), all_barrier, out, calls);
        } else {
          reach(mem, i + 1, with({b.target}), all_barrier, out, calls);
          if (b.alt != b.target) {
            reach(mem, i + 1, with({b.alt}), all_barrier, out, calls);
            reach(mem, i + 1, with({b.target, b.alt}), all_barrier, out, calls);
          }
        }
        return;
    }
  }

  StateGraph& g_;
  const ir::CostModel& cost_;
  const ConvertOptions& opts_;
  const bool allow_split_;
  ConvertStats& stats_;
  SuccessorMemo* memo_;
  unsigned threads_ = 1;
  MetaAutomaton aut_;
};

/// §2.6 masking is only sound when the aggregate pc can never mix barrier
/// and non-barrier occupancy that conversion did not enumerate. Three
/// combinations break that — they used to be patched over at runtime (the
/// executor's rescue path, a fuzzer skip, a silent mode override); each is
/// now a compile error pointing at the offending construct.
void check_paper_prune(const StateGraph& graph, const ConvertOptions& options) {
  if (options.barrier_mode != BarrierMode::PaperPrune) return;
  if (options.compress)
    throw CompileError(
        SourceLoc{},
        "barrier mode 'prune' cannot be combined with meta-state "
        "compression: compressed transitions are unconditional, so the "
        "§3.2.4 aggregate-pc masking has nothing to key on (use barrier "
        "mode 'track')");
  for (const Block& b : graph.blocks)
    if (b.exit == ExitKind::Spawn)
      throw CompileError(
          b.loc,
          "barrier mode 'prune' is unsound with 'spawn': §3.2.5 children "
          "can leave only themselves waiting at a barrier, an occupancy "
          "the pruned automaton has no arc for (use barrier mode 'track')");
  const DynBitset waits = graph.barrier_states();
  if (waits.count() > 1) {
    const std::size_t second = waits.next(waits.first());
    throw CompileError(
        graph.at(static_cast<StateId>(second)).loc,
        "barrier mode 'prune' is unsound with more than one distinct "
        "barrier-wait state: §2.6 masks earlier waiters out of the "
        "transition keys, so conversion never enumerates the mixed-barrier "
        "aggregates the program can reach (use barrier mode 'track')");
  }
}

}  // namespace

std::string to_json(const ConvertStats& stats) {
  std::ostringstream os;
  os << "{\n"
     << "  \"meta_states\": " << stats.meta_states << ",\n"
     << "  \"arcs\": " << stats.arcs << ",\n"
     << "  \"reach_calls\": " << stats.reach_calls << ",\n"
     << "  \"splits_performed\": " << stats.splits_performed << ",\n"
     << "  \"restarts\": " << stats.restarts << ",\n"
     << "  \"cache\": {\n"
     << "    \"hits\": " << stats.cache_hits << ",\n"
     << "    \"misses\": " << stats.cache_misses << ",\n"
     << "    \"invalidated\": " << stats.cache_invalidated << "\n"
     << "  },\n"
     << "  \"threads\": " << stats.threads_used << ",\n"
     << "  \"batches\": " << stats.batches << ",\n"
     << "  \"phase_seconds\": {\n"
     << "    \"expand\": " << fmt_double(stats.expand_seconds, 6) << ",\n"
     << "    \"merge\": " << fmt_double(stats.merge_seconds, 6) << ",\n"
     << "    \"subsume\": " << fmt_double(stats.subsume_seconds, 6) << ",\n"
     << "    \"straighten\": " << fmt_double(stats.straighten_seconds, 6) << ",\n"
     << "    \"total\": " << fmt_double(stats.total_seconds, 6) << "\n"
     << "  }\n"
     << "}\n";
  return os.str();
}

ConvertResult meta_state_convert(const StateGraph& graph, const ir::CostModel& cost,
                                 const ConvertOptions& options) {
  ConvertResult res;
  check_paper_prune(graph, options);
  res.graph = graph;

  // The memo outlives each restarted Converter: that is what makes §2.4
  // restarts cheap. Scoped to this call — reach() semantics depend on the
  // compress mode, so adaptive's fallback run builds its own memo.
  SuccessorMemo memo;
  SuccessorMemo* memo_ptr = options.memoize ? &memo : nullptr;

  const Clock::time_point t_total = Clock::now();
  int rounds = 0;
  bool allow_split = options.time_split;
  for (;;) {
    try {
      Converter conv(res.graph, cost, options, allow_split, res.stats, memo_ptr);
      res.automaton = conv.run();
      if (options.straighten) {
        Clock::time_point t0 = Clock::now();
        straighten(res.automaton);
        res.stats.straighten_seconds += since(t0);
      }
      res.stats.total_seconds = since(t_total);
      // Fuzzer feature coverage (no-op without an installed sink): the
      // automaton's coarse shape and how much §2.4 splitting it needed.
      if (coverage_sink()) {
        coverage_hit(cov::kConvertShape,
                     (std::uint64_t{coverage_bucket(res.stats.meta_states)} << 16) |
                         (std::uint64_t{coverage_bucket(res.stats.arcs)} << 8) |
                         coverage_bucket(res.stats.reach_calls));
        coverage_hit(cov::kConvertRestarts,
                     (std::uint64_t{std::min(res.stats.restarts, 15)} << 8) |
                         coverage_bucket(
                             static_cast<std::uint64_t>(res.stats.splits_performed)));
      }
      // Publish conversion aggregates into the process-global metrics
      // registry (mscc --metrics). References resolve once; the adds are
      // relaxed atomics, well off any hot path.
      {
        using telemetry::Counter;
        using telemetry::Histogram;
        telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
        static Counter& conversions = reg.counter("convert.runs");
        static Counter& reach_calls = reg.counter("convert.reach_calls");
        static Counter& restarts = reg.counter("convert.restarts");
        static Counter& splits = reg.counter("convert.splits_performed");
        static Counter& cache_hits = reg.counter("convert.cache_hits");
        static Counter& cache_misses = reg.counter("convert.cache_misses");
        static Histogram& meta_states = reg.histogram(
            "convert.meta_states", Histogram::pow2_bounds(20));
        static Histogram& arcs =
            reg.histogram("convert.arcs", Histogram::pow2_bounds(20));
        conversions.add();
        reach_calls.add(static_cast<std::int64_t>(res.stats.reach_calls));
        restarts.add(res.stats.restarts);
        splits.add(res.stats.splits_performed);
        cache_hits.add(static_cast<std::int64_t>(res.stats.cache_hits));
        cache_misses.add(static_cast<std::int64_t>(res.stats.cache_misses));
        meta_states.record(static_cast<std::int64_t>(res.stats.meta_states));
        arcs.record(static_cast<std::int64_t>(res.stats.arcs));
      }
      return res;
    } catch (const ExplosionError&) {
      coverage_hit(cov::kConvertExplosion, 1);
      throw;
    } catch (const RestartRequest& restart) {
      res.stats.splits_performed += restart.splits;
      ++res.stats.restarts;
      if (memo_ptr)
        res.stats.cache_invalidated += memo.invalidate(restart.split_ids);
      if (++rounds >= options.max_split_rounds) {
        // Too much churn: finish with splitting disabled so the automaton
        // is still consistent with the (already split) graph.
        allow_split = false;
      }
    }
  }
}

ConvertResult meta_state_convert_adaptive(const StateGraph& graph,
                                          const ir::CostModel& cost,
                                          ConvertOptions options) {
  try {
    return meta_state_convert(graph, cost, options);
  } catch (const ExplosionError&) {
    options.compress = true;
    // Compression forfeits the §3.2.4 masking anyway; degrade the barrier
    // mode with it rather than trade an explosion for a compile error.
    options.barrier_mode = BarrierMode::TrackOccupancy;
    return meta_state_convert(graph, cost, options);
  }
}

}  // namespace msc::core
