#include "msc/core/convert.hpp"

#include <algorithm>
#include <set>

#include "msc/core/straighten.hpp"
#include "msc/core/time_split.hpp"
#include "msc/support/str.hpp"

namespace msc::core {

using ir::Block;
using ir::ExitKind;
using ir::StateGraph;
using ir::StateId;

ExplosionError::ExplosionError(std::size_t limit)
    : std::runtime_error(cat("meta-state space exceeded the configured limit of ",
                             limit,
                             " states (§1.2 warns of up to S!/(S-N)! states; "
                             "try compression or barriers)")) {}

namespace {

/// Internal signal: a meta state triggered §2.4 time splitting, the graph
/// changed, and "the construction of the meta-state automaton is restarted
/// to ensure that the final meta-state automaton is consistent."
struct RestartRequest {
  int splits;
};

class Converter {
 public:
  Converter(StateGraph& graph, const ir::CostModel& cost,
            const ConvertOptions& opts, bool allow_split, ConvertStats& stats)
      : g_(graph), cost_(cost), opts_(opts), allow_split_(allow_split),
        stats_(stats) {}

  MetaAutomaton run() {
    aut_ = MetaAutomaton{};
    // A compressed transition is unconditional, so the §3.2.4 apc masking
    // has nothing to key on; compression always tracks barrier occupancy.
    aut_.barrier_mode =
        opts_.compress ? BarrierMode::TrackOccupancy : opts_.barrier_mode;
    aut_.barriers = g_.barrier_states();
    aut_.compressed = opts_.compress;

    DynBitset start(g_.size());
    start.set(g_.start);
    aut_.start = get_or_create(start);

    // With ≥2 distinct barrier-wait states, the paper's pruning rule can
    // reach a runtime aggregate (all PEs waiting, spread over several
    // barriers) that conversion never enumerates, because earlier waiters
    // were masked out of the keys. Pre-create every all-barrier subset so
    // the §3.2.4 "proceed normally" lookup (the executor's rescue path)
    // always has a target. See tests/soundness_test.cpp.
    if (aut_.barrier_mode == BarrierMode::PaperPrune && !opts_.compress) {
      std::vector<std::size_t> bits = aut_.barriers.to_vector();
      if (bits.size() >= 2) {
        if (bits.size() > 16)
          throw std::runtime_error(
              "more than 16 distinct barrier-wait states under PaperPrune; "
              "use BarrierMode::TrackOccupancy");
        for (std::uint32_t m = 1; m < (1u << bits.size()); ++m) {
          DynBitset s(g_.size());
          for (std::size_t i = 0; i < bits.size(); ++i)
            if (m & (1u << i)) s.set(bits[i]);
          get_or_create(s);
        }
      }
    }

    // meta_state_convert() main loop (§2.3): take an unmarked meta state,
    // add arcs to every meta state it can reach, repeat until none remain.
    // States are created in discovery order, so the worklist is an index.
    for (MetaId next = 0; next < aut_.states.size(); ++next) process(next);

    if (opts_.compress && opts_.subsume) subsume();

    stats_.meta_states = aut_.num_states();
    stats_.arcs = aut_.num_arcs();
    return std::move(aut_);
  }

 private:
  MetaId get_or_create(const DynBitset& members) {
    MetaId found = aut_.find(members);
    if (found != kNoMeta) return found;
    if (aut_.states.size() >= opts_.max_meta_states)
      throw ExplosionError(opts_.max_meta_states);
    MetaId id = aut_.add(members);
    if (allow_split_) {
      int splits = time_split_state(g_, members, cost_, opts_.split_delta,
                                    opts_.split_percent);
      if (splits > 0) throw RestartRequest{splits};
    }
    return id;
  }

  void process(MetaId id) {
    // Copy members: arcs mutation below may reallocate `states`.
    const DynBitset members = aut_.at(id).members;
    std::vector<StateId> mem;
    for (std::size_t s : members.bits()) mem.push_back(static_cast<StateId>(s));

    const bool all_barrier =
        !aut_.barriers.empty() && members.is_subset_of(aut_.barriers);

    std::set<DynBitset> raw_targets;
    DynBitset t(g_.size());
    reach(mem, 0, t, all_barrier, raw_targets);

    if (opts_.compress) {
      process_compressed(id, members, all_barrier, raw_targets);
      return;
    }

    std::set<DynBitset> keys;
    for (const DynBitset& raw : raw_targets) {
      if (raw.empty()) continue;  // every process ended: terminal (§3.2.1)
      keys.insert(mask(raw));
    }
    for (const DynBitset& key : keys) {
      MetaId target = get_or_create(key);
      aut_.at(id).arcs.emplace_back(key, target);
    }
  }

  void process_compressed(MetaId id, const DynBitset& members, bool all_barrier,
                          const std::set<DynBitset>& raw_targets) {
    // §2.5: every member takes all paths, so reach() produced exactly one
    // union — the unconditional successor (§3.2.2).
    if (raw_targets.size() != 1)
      throw std::logic_error("compressed reach must yield one successor");
    const DynBitset& succ = *raw_targets.begin();
    if (!succ.empty()) {
      MetaId target = get_or_create(succ);
      aut_.at(id).unconditional = target;
    }
    // Barrier release: when every live PE is waiting, occupancy is some
    // nonempty subset of this state's barrier members; key each such
    // occupancy to its dedicated all-barrier meta state so the compressed
    // automaton cannot livelock on a barrier.
    DynBitset b = members & aut_.barriers;
    if (b.empty() || all_barrier) return;
    std::vector<std::size_t> bits = b.to_vector();
    if (bits.size() > 16)
      throw std::runtime_error(
          "more than 16 distinct barrier states in one compressed meta state");
    std::set<DynBitset> keys;
    for (std::uint32_t m = 1; m < (1u << bits.size()); ++m) {
      DynBitset s(g_.size());
      for (std::size_t i = 0; i < bits.size(); ++i)
        if (m & (1u << i)) s.set(bits[i]);
      if (s != succ) keys.insert(s);
    }
    for (const DynBitset& key : keys) {
      MetaId target = get_or_create(key);
      aut_.at(id).arcs.emplace_back(key, target);
    }
  }

  /// §2.6 barrier_sync(): under the paper's rule, remove barrier states
  /// from the meta state unless everyone has reached a barrier.
  DynBitset mask(const DynBitset& raw) const {
    if (aut_.barrier_mode == BarrierMode::TrackOccupancy || aut_.barriers.empty())
      return raw;
    if (raw.is_subset_of(aut_.barriers)) return raw;
    return raw - aut_.barriers;
  }

  /// §2.3 reach(): enumerate every achievable union of per-member choices.
  /// Each member contributes TRUE / FALSE / both for a two-exit state
  /// (just both under §2.5 compression), its single successor for a jump,
  /// both arcs for a spawn (§3.2.5), nothing when the process ends, and
  /// itself when stalled at a barrier.
  void reach(const std::vector<StateId>& mem, std::size_t i, const DynBitset& t,
             bool all_barrier, std::set<DynBitset>& out) {
    ++stats_.reach_calls;
    if (i == mem.size()) {
      out.insert(t);
      return;
    }
    const Block& b = g_.at(mem[i]);
    auto with = [&](std::initializer_list<StateId> add) {
      DynBitset next = t;
      for (StateId s : add) next.set(s);
      return next;
    };
    if (b.barrier_wait && !all_barrier) {
      // Waiting: this member cannot advance until everyone reaches a
      // barrier; it keeps occupying its own state. (Under PaperPrune
      // such members only appear in all-barrier states, so this path is
      // TrackOccupancy/compressed-specific.)
      reach(mem, i + 1, with({b.id}), all_barrier, out);
      return;
    }
    switch (b.exit) {
      case ExitKind::Halt:
        reach(mem, i + 1, t, all_barrier, out);
        return;
      case ExitKind::Jump:
        reach(mem, i + 1, with({b.target}), all_barrier, out);
        return;
      case ExitKind::Spawn:
        reach(mem, i + 1, with({b.target, b.alt}), all_barrier, out);
        return;
      case ExitKind::Branch:
        if (opts_.compress) {
          reach(mem, i + 1, with({b.target, b.alt}), all_barrier, out);
        } else {
          reach(mem, i + 1, with({b.target}), all_barrier, out);
          if (b.alt != b.target) {
            reach(mem, i + 1, with({b.alt}), all_barrier, out);
            reach(mem, i + 1, with({b.target, b.alt}), all_barrier, out);
          }
        }
        return;
    }
  }

  /// Fig. 5 reduction: a compressed meta state X strictly contained in
  /// another state Y can be replaced by Y, because Y holds (guarded) code
  /// for every member of X and its unconditional successor covers X's.
  /// All-barrier release states are exempt — a superset would stall their
  /// waiting PEs forever — as is the start state (kept for entry).
  void subsume() {
    const std::size_t n = aut_.states.size();
    std::vector<MetaId> rep(n);
    for (std::size_t i = 0; i < n; ++i) rep[i] = static_cast<MetaId>(i);

    for (std::size_t x = 0; x < n; ++x) {
      if (x == aut_.start) continue;
      const DynBitset& xm = aut_.states[x].members;
      if (!aut_.barriers.empty() && xm.is_subset_of(aut_.barriers)) continue;
      MetaId best = kNoMeta;
      std::size_t best_count = 0;
      for (std::size_t y = 0; y < n; ++y) {
        if (y == x) continue;
        const DynBitset& ym = aut_.states[y].members;
        if (!xm.is_subset_of(ym) || xm == ym) continue;
        std::size_t c = ym.count();
        if (best == kNoMeta || c < best_count ||
            (c == best_count && y < best)) {
          best = static_cast<MetaId>(y);
          best_count = c;
        }
      }
      if (best != kNoMeta) rep[x] = best;
    }
    // Resolve chains (strict ⊂ is acyclic, so this terminates).
    auto resolve = [&](MetaId id) {
      while (rep[id] != id) id = rep[id];
      return id;
    };
    bool any = false;
    for (std::size_t i = 0; i < n; ++i)
      if (resolve(static_cast<MetaId>(i)) != static_cast<MetaId>(i)) any = true;
    if (!any) return;

    // Compact surviving states and remap every reference.
    std::vector<MetaId> newid(n, kNoMeta);
    std::vector<MetaState> kept;
    for (std::size_t i = 0; i < n; ++i) {
      if (resolve(static_cast<MetaId>(i)) != static_cast<MetaId>(i)) continue;
      newid[i] = static_cast<MetaId>(kept.size());
      kept.push_back(std::move(aut_.states[i]));
    }
    auto remap = [&](MetaId id) {
      return id == kNoMeta ? kNoMeta : newid[resolve(id)];
    };
    for (MetaState& s : kept) {
      s.id = remap(s.id);
      s.unconditional = remap(s.unconditional);
      for (auto& [key, target] : s.arcs) target = remap(target);
    }
    aut_.start = remap(aut_.start);
    aut_.states = std::move(kept);
    aut_.index.clear();
    for (const MetaState& s : aut_.states) aut_.index.emplace(s.members, s.id);
  }

  StateGraph& g_;
  const ir::CostModel& cost_;
  const ConvertOptions& opts_;
  const bool allow_split_;
  ConvertStats& stats_;
  MetaAutomaton aut_;
};

}  // namespace

ConvertResult meta_state_convert(const StateGraph& graph, const ir::CostModel& cost,
                                 const ConvertOptions& options) {
  ConvertResult res;
  res.graph = graph;

  int rounds = 0;
  bool allow_split = options.time_split;
  for (;;) {
    try {
      Converter conv(res.graph, cost, options, allow_split, res.stats);
      res.automaton = conv.run();
      if (options.straighten) straighten(res.automaton);
      return res;
    } catch (const RestartRequest& restart) {
      res.stats.splits_performed += restart.splits;
      ++res.stats.restarts;
      if (++rounds >= options.max_split_rounds) {
        // Too much churn: finish with splitting disabled so the automaton
        // is still consistent with the (already split) graph.
        allow_split = false;
      }
    }
  }
}

ConvertResult meta_state_convert_adaptive(const StateGraph& graph,
                                          const ir::CostModel& cost,
                                          ConvertOptions options) {
  try {
    return meta_state_convert(graph, cost, options);
  } catch (const ExplosionError&) {
    options.compress = true;
    return meta_state_convert(graph, cost, options);
  }
}

}  // namespace msc::core
