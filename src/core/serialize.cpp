#include "msc/core/serialize.hpp"

#include <bit>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "msc/support/str.hpp"

namespace msc::core {

namespace {

constexpr int kVersion = 2;

std::int64_t micros(double seconds) {
  return static_cast<std::int64_t>(seconds * 1e6 + 0.5);
}

std::string bits_of(const DynBitset& b) {
  std::string out;
  for (std::size_t bit : b.bits()) out += cat(" ", bit);
  return out;
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error(cat("module parse error at line ", line, ": ", what));
}

class Reader {
 public:
  explicit Reader(const std::string& text) : in_(text) {}

  /// Next non-comment, non-blank line split into fields; false at EOF.
  bool next(std::vector<std::string>& fields) {
    std::string line;
    while (std::getline(in_, line)) {
      ++lineno_;
      std::istringstream ls(line);
      fields.clear();
      std::string tok;
      while (ls >> tok) {
        if (tok[0] == '#') break;
        fields.push_back(tok);
      }
      if (!fields.empty()) return true;
    }
    return false;
  }

  std::size_t lineno() const { return lineno_; }

 private:
  std::istringstream in_;
  std::size_t lineno_ = 0;
};

std::int64_t to_i64(const std::string& s, std::size_t line) {
  try {
    return std::stoll(s);
  } catch (...) {
    fail(line, cat("expected integer, got '", s, "'"));
  }
}

std::uint64_t to_u64(const std::string& s, std::size_t line) {
  try {
    return std::stoull(s);
  } catch (...) {
    fail(line, cat("expected unsigned integer, got '", s, "'"));
  }
}

DynBitset bits_from(const std::vector<std::string>& fields, std::size_t first,
                    std::size_t line) {
  DynBitset b;
  for (std::size_t i = first; i < fields.size(); ++i)
    b.set(static_cast<std::size_t>(to_u64(fields[i], line)));
  return b;
}

}  // namespace

std::string serialize(const Module& module) {
  std::ostringstream os;
  os << "mscmod " << kVersion << "\n";

  const ir::StateGraph& g = module.graph;
  os << "graph " << g.size() << " " << g.start << "\n";
  for (const ir::Block& b : g.blocks) {
    os << "block " << b.id << " " << static_cast<int>(b.exit) << " "
       << static_cast<std::int64_t>(
              b.target == ir::kNoState ? -1 : static_cast<std::int64_t>(b.target))
       << " "
       << static_cast<std::int64_t>(
              b.alt == ir::kNoState ? -1 : static_cast<std::int64_t>(b.alt))
       << " " << (b.barrier_wait ? 1 : 0);
    if (!b.label.empty()) os << " " << b.label;  // labels have no spaces
    os << "\n";
    for (const ir::Instr& in : b.body)
      os << "instr " << b.id << " " << static_cast<int>(in.op) << " "
         << static_cast<int>(in.imm.kind) << " " << in.imm.i << " "
         << std::bit_cast<std::uint64_t>(in.imm.f) << "\n";
  }

  const MetaAutomaton& a = module.automaton;
  os << "automaton " << a.num_states() << " " << a.start << " "
     << static_cast<int>(a.barrier_mode) << " " << (a.compressed ? 1 : 0)
     << "\n";
  os << "barriers" << bits_of(a.barriers) << "\n";
  for (const MetaState& s : a.states) {
    os << "meta " << s.id << " "
       << static_cast<std::int64_t>(
              s.unconditional == kNoMeta
                  ? -1
                  : static_cast<std::int64_t>(s.unconditional))
       << bits_of(s.members) << "\n";
    for (const auto& [key, target] : s.arcs)
      os << "arc " << s.id << " " << target << bits_of(key) << "\n";
  }

  const ConvertStats& st = module.stats;
  os << "stats " << st.meta_states << " " << st.arcs << " " << st.reach_calls
     << " " << st.splits_performed << " " << st.restarts << " "
     << st.cache_hits << " " << st.cache_misses << " " << st.cache_invalidated
     << " " << st.threads_used << " " << st.batches << " "
     << micros(st.expand_seconds) << " " << micros(st.merge_seconds) << " "
     << micros(st.subsume_seconds) << " " << micros(st.straighten_seconds)
     << " " << micros(st.total_seconds) << "\n";
  os << "end\n";
  return os.str();
}

Module deserialize(const std::string& text) {
  Reader rd(text);
  std::vector<std::string> f;
  Module mod;

  if (!rd.next(f) || f.size() != 2 || f[0] != "mscmod")
    fail(rd.lineno(), "missing 'mscmod' header");
  if (to_i64(f[1], rd.lineno()) != kVersion)
    fail(rd.lineno(),
         cat("unsupported module version ", f[1], " (this build reads version ",
             kVersion, "; regenerate with mscc --emit module)"));

  if (!rd.next(f) || f.size() != 3 || f[0] != "graph")
    fail(rd.lineno(), "expected 'graph'");
  std::size_t nblocks = static_cast<std::size_t>(to_u64(f[1], rd.lineno()));
  for (std::size_t i = 0; i < nblocks; ++i) mod.graph.add_block();
  mod.graph.start = static_cast<ir::StateId>(to_u64(f[2], rd.lineno()));

  bool saw_automaton = false, saw_end = false;
  while (rd.next(f)) {
    std::size_t ln = rd.lineno();
    if (f[0] == "block") {
      if (f.size() < 6) fail(ln, "short 'block' record");
      std::size_t id = static_cast<std::size_t>(to_u64(f[1], ln));
      if (id >= nblocks) fail(ln, "block id out of range");
      ir::Block& b = mod.graph.at(static_cast<ir::StateId>(id));
      int exit = static_cast<int>(to_i64(f[2], ln));
      if (exit < 0 || exit > 3) fail(ln, "bad exit kind");
      b.exit = static_cast<ir::ExitKind>(exit);
      std::int64_t t = to_i64(f[3], ln), alt = to_i64(f[4], ln);
      b.target = t < 0 ? ir::kNoState : static_cast<ir::StateId>(t);
      b.alt = alt < 0 ? ir::kNoState : static_cast<ir::StateId>(alt);
      b.barrier_wait = to_i64(f[5], ln) != 0;
      if (f.size() > 6) b.label = f[6];
    } else if (f[0] == "instr") {
      if (f.size() != 6) fail(ln, "short 'instr' record");
      std::size_t id = static_cast<std::size_t>(to_u64(f[1], ln));
      if (id >= nblocks) fail(ln, "instr block id out of range");
      ir::Instr in;
      in.op = static_cast<ir::Opcode>(to_i64(f[2], ln));
      in.imm.kind = static_cast<Value::Kind>(to_i64(f[3], ln));
      in.imm.i = to_i64(f[4], ln);
      in.imm.f = std::bit_cast<double>(to_u64(f[5], ln));
      mod.graph.at(static_cast<ir::StateId>(id)).body.push_back(in);
    } else if (f[0] == "automaton") {
      if (f.size() != 5) fail(ln, "short 'automaton' record");
      saw_automaton = true;
      std::size_t nstates = static_cast<std::size_t>(to_u64(f[1], ln));
      for (std::size_t i = 0; i < nstates; ++i)
        mod.automaton.add(DynBitset());  // members filled by 'meta'
      mod.automaton.start = static_cast<MetaId>(to_u64(f[2], ln));
      std::int64_t mode = to_i64(f[3], ln);
      if (mode != static_cast<std::int64_t>(BarrierMode::TrackOccupancy) &&
          mode != static_cast<std::int64_t>(BarrierMode::PaperPrune))
        fail(ln, cat("unknown barrier mode ", mode));
      mod.automaton.barrier_mode = static_cast<BarrierMode>(mode);
      std::int64_t compressed = to_i64(f[4], ln);
      if (compressed != 0 && compressed != 1)
        fail(ln, cat("bad compressed flag ", compressed));
      mod.automaton.compressed = compressed != 0;
    } else if (f[0] == "barriers") {
      mod.automaton.barriers = bits_from(f, 1, ln);
    } else if (f[0] == "meta") {
      if (f.size() < 3) fail(ln, "short 'meta' record");
      std::size_t id = static_cast<std::size_t>(to_u64(f[1], ln));
      if (id >= mod.automaton.states.size()) fail(ln, "meta id out of range");
      MetaState& s = mod.automaton.states[id];
      std::int64_t unc = to_i64(f[2], ln);
      s.unconditional = unc < 0 ? kNoMeta : static_cast<MetaId>(unc);
      s.members = bits_from(f, 3, ln);
    } else if (f[0] == "arc") {
      if (f.size() < 4) fail(ln, "short 'arc' record");
      std::size_t from = static_cast<std::size_t>(to_u64(f[1], ln));
      std::size_t to = static_cast<std::size_t>(to_u64(f[2], ln));
      if (from >= mod.automaton.states.size() ||
          to >= mod.automaton.states.size())
        fail(ln, "arc endpoint out of range");
      mod.automaton.states[from].arcs.emplace_back(bits_from(f, 3, ln),
                                                   static_cast<MetaId>(to));
    } else if (f[0] == "stats") {
      if (f.size() != 16) fail(ln, "short 'stats' record");
      ConvertStats& st = mod.stats;
      st.meta_states = static_cast<std::size_t>(to_u64(f[1], ln));
      st.arcs = static_cast<std::size_t>(to_u64(f[2], ln));
      st.reach_calls = static_cast<std::size_t>(to_u64(f[3], ln));
      st.splits_performed = static_cast<int>(to_i64(f[4], ln));
      st.restarts = static_cast<int>(to_i64(f[5], ln));
      st.cache_hits = static_cast<std::size_t>(to_u64(f[6], ln));
      st.cache_misses = static_cast<std::size_t>(to_u64(f[7], ln));
      st.cache_invalidated = static_cast<std::size_t>(to_u64(f[8], ln));
      st.threads_used = static_cast<unsigned>(to_u64(f[9], ln));
      st.batches = static_cast<std::size_t>(to_u64(f[10], ln));
      st.expand_seconds = static_cast<double>(to_i64(f[11], ln)) / 1e6;
      st.merge_seconds = static_cast<double>(to_i64(f[12], ln)) / 1e6;
      st.subsume_seconds = static_cast<double>(to_i64(f[13], ln)) / 1e6;
      st.straighten_seconds = static_cast<double>(to_i64(f[14], ln)) / 1e6;
      st.total_seconds = static_cast<double>(to_i64(f[15], ln)) / 1e6;
    } else if (f[0] == "end") {
      saw_end = true;
      break;
    } else {
      fail(ln, cat("unknown record '", f[0], "'"));
    }
  }
  if (!saw_automaton) fail(rd.lineno(), "missing 'automaton' section");
  if (!saw_end) fail(rd.lineno(), "missing 'end'");

  // Rebuild the member index and sanity-check against the graph.
  mod.automaton.index.clear();
  for (const MetaState& s : mod.automaton.states)
    mod.automaton.index.emplace(s.members, s.id);
  auto graph_problems = mod.graph.validate();
  if (!graph_problems.empty()) fail(rd.lineno(), graph_problems.front());
  auto aut_problems = mod.automaton.validate(mod.graph);
  if (!aut_problems.empty()) fail(rd.lineno(), aut_problems.front());
  return mod;
}

}  // namespace msc::core
