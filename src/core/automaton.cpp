#include "msc/core/automaton.hpp"

#include <algorithm>
#include <sstream>

#include "msc/support/dot.hpp"
#include "msc/support/str.hpp"

namespace msc::core {

MetaId MetaAutomaton::add(DynBitset members) {
  MetaId id = static_cast<MetaId>(states.size());
  MetaState ms;
  ms.id = id;
  ms.members = members;
  states.push_back(std::move(ms));
  index.emplace(std::move(members), id);
  return id;
}

MetaId MetaAutomaton::find_or_add(const DynBitset& members, bool& created) {
  auto [it, inserted] =
      index.try_emplace(members, static_cast<MetaId>(states.size()));
  created = inserted;
  if (inserted) {
    MetaState ms;
    ms.id = it->second;
    ms.members = members;
    states.push_back(std::move(ms));
  }
  return it->second;
}

std::size_t MetaAutomaton::num_arcs() const {
  std::size_t n = 0;
  for (const MetaState& s : states) n += s.arcs.size();
  return n;
}

std::size_t MetaAutomaton::max_width() const {
  std::size_t w = 0;
  for (const MetaState& s : states) w = std::max(w, s.width());
  return w;
}

double MetaAutomaton::mean_width() const {
  if (states.empty()) return 0.0;
  std::size_t total = 0;
  for (const MetaState& s : states) total += s.width();
  return static_cast<double>(total) / static_cast<double>(states.size());
}

DynBitset MetaAutomaton::transition_key(const DynBitset& apc) const {
  if (barrier_mode == BarrierMode::TrackOccupancy || barriers.empty()) return apc;
  // §3.2.4: proceed normally if everyone is at a barrier, otherwise the
  // next meta state is determined by subtracting the barrier states.
  if (apc.is_subset_of(barriers)) return apc;
  return apc - barriers;
}

std::vector<std::string> MetaAutomaton::validate(const ir::StateGraph& graph) const {
  std::vector<std::string> problems;
  auto bad = [&](const std::string& m) { problems.push_back(m); };
  if (states.empty()) {
    bad("automaton has no states");
    return problems;
  }
  if (start >= states.size()) bad("start meta state out of range");
  DynBitset all(graph.size());
  for (std::size_t i = 0; i < graph.size(); ++i) all.set(i);
  for (const MetaState& s : states) {
    if (s.members.empty()) bad(cat("meta state ", s.id, " has no members"));
    if (!s.members.is_subset_of(all))
      bad(cat("meta state ", s.id, " references MIMD states out of range"));
    if (s.unconditional != kNoMeta) {
      if (!compressed)
        bad(cat("meta state ", s.id, ": unconditional arc in a base-mode automaton"));
      if (s.unconditional >= states.size())
        bad(cat("meta state ", s.id, ": unconditional target out of range"));
    }
    DynBitset prev;
    bool first = true;
    for (const auto& [key, target] : s.arcs) {
      if (target >= states.size())
        bad(cat("meta state ", s.id, ": arc target out of range"));
      if (key.empty()) bad(cat("meta state ", s.id, ": empty arc key"));
      if (!first && !(prev < key))
        bad(cat("meta state ", s.id, ": arcs not sorted/unique"));
      prev = key;
      first = false;
    }
    // Exact-occupancy soundness: every keyed arc must lead to the meta
    // state whose members equal the key (after this automaton's masking).
    // (Compressed release arcs satisfy this too: all-barrier states are
    // never subsumed.)
    for (const auto& [key, target] : s.arcs) {
      if (target >= states.size()) continue;  // already reported above
      if (states[target].members != key)
        bad(cat("meta state ", s.id, ": arc key ", key.to_string(),
                " does not match target members ",
                states[target].members.to_string()));
    }
  }
  if (start < states.size() && !states[start].members.test(graph.start))
    bad("start meta state does not contain the MIMD start state");
  return problems;
}

std::string MetaAutomaton::dump() const {
  std::ostringstream os;
  os << "meta-state automaton: " << states.size() << " states, " << num_arcs()
     << " arcs, start=" << start
     << (compressed ? ", compressed" : "")
     << (barrier_mode == BarrierMode::PaperPrune ? ", barrier=paper-prune"
                                                 : ", barrier=track-occupancy")
     << "\n";
  for (const MetaState& s : states) {
    os << "  ms" << s.id << " " << s.label();
    if (s.terminal()) {
      os << " -> exit\n";
      continue;
    }
    os << "\n";
    for (const auto& [key, target] : s.arcs)
      os << "    on " << key.to_string() << " -> ms" << target << " "
         << states[target].label() << "\n";
    if (s.unconditional != kNoMeta)
      os << "    else -> ms" << s.unconditional << " "
         << states[s.unconditional].label() << "\n";
  }
  return os.str();
}

std::string MetaAutomaton::to_dot(const std::string& name) const {
  DotWriter w(name);
  for (const MetaState& s : states) {
    w.node(cat("m", s.id), s.label(), s.id == start ? "style=bold" : "");
    for (const auto& [key, target] : s.arcs)
      w.edge(cat("m", s.id), cat("m", target), key.to_string());
    if (s.unconditional != kNoMeta)
      w.edge(cat("m", s.id), cat("m", s.unconditional));
  }
  return w.finish();
}

}  // namespace msc::core
