#ifndef MSC_CORE_CONVERT_HPP
#define MSC_CORE_CONVERT_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

#include "msc/core/automaton.hpp"
#include "msc/ir/cost.hpp"
#include "msc/ir/graph.hpp"

namespace msc::core {

/// Options for meta-state conversion.
struct ConvertOptions {
  /// §2.5: assume both successors of every two-exit state are always
  /// taken. Collapses the automaton dramatically (Fig. 5) at the cost of
  /// wider (less efficient) meta states.
  bool compress = false;

  /// With compression, additionally merge any meta state whose member set
  /// is strictly contained in another's into that superset (the paper's
  /// "the case of both successors can always emulate either successor");
  /// this is what reduces Listing 1's compressed automaton to the two
  /// states of Fig. 5. Ignored in base mode, where transitions are keyed
  /// on exact occupancy.
  bool subsume = true;

  /// Ignored under compression, which always tracks barrier occupancy
  /// (a compressed transition is unconditional, so the §3.2.4 masking
  /// trick has no key to adjust; release is handled by occupancy-keyed
  /// arcs instead).
  BarrierMode barrier_mode = BarrierMode::TrackOccupancy;

  /// §4.2: straighten the finished automaton — lay single-successor chains
  /// out consecutively so codegen emits fall-throughs instead of gotos.
  bool straighten = true;

  /// §2.4 MIMD-state time splitting. When a freshly created meta state
  /// mixes member costs badly, the expensive members are split into a
  /// min-cost head plus a tail state and the conversion restarts.
  bool time_split = false;
  std::int64_t split_delta = 4;     ///< cost noise level, in cycles
  std::int64_t split_percent = 75;  ///< acceptable utilization, in percent
  int max_split_rounds = 64;

  /// Memoize successor-set enumerations keyed on the meta-state member
  /// bitset. The memo survives §2.4 time-split restarts: a restart only
  /// invalidates entries whose member sets include a split state, so the
  /// (typically dominant) untouched frontier is reused instead of
  /// recomputed. Disable only to measure the cache (bench_convert_cache).
  bool memoize = true;

  /// Worker threads for frontier expansion. 1 = serial; 0 = one per
  /// hardware thread. Any value produces a bit-identical automaton: the
  /// frontier is expanded in deterministic batches and merged in
  /// discovery order, so state numbering never depends on thread timing.
  unsigned threads = 1;

  /// Explosion guard (§1.2 warns of up to S!/(S−N)! states). Enforced
  /// before insertion: exactly this many meta states may be created.
  std::size_t max_meta_states = 250'000;
};

/// Thrown when `max_meta_states` is exceeded.
class ExplosionError : public std::runtime_error {
 public:
  explicit ExplosionError(std::size_t limit);
};

struct ConvertStats {
  std::size_t meta_states = 0;
  std::size_t arcs = 0;
  std::size_t reach_calls = 0;      ///< recursive successor enumerations
  int splits_performed = 0;         ///< §2.4 state splits across all rounds
  int restarts = 0;                 ///< conversion restarts due to splitting

  // Successor-set memo cache (survives time-split restarts).
  std::size_t cache_hits = 0;        ///< member sets served from the memo
  std::size_t cache_misses = 0;      ///< member sets enumerated by reach()
  std::size_t cache_invalidated = 0; ///< entries dropped by split restarts

  // Parallel frontier expansion.
  unsigned threads_used = 1;  ///< effective worker count
  std::size_t batches = 0;    ///< deterministic frontier batches expanded

  // Per-phase wall time, in seconds (accumulated across restart rounds).
  double expand_seconds = 0.0;      ///< successor enumeration (parallel)
  double merge_seconds = 0.0;       ///< discovery-order merge / arc build
  double subsume_seconds = 0.0;     ///< Fig. 5 subsumption pass
  double straighten_seconds = 0.0;  ///< §4.2 layout pass
  double total_seconds = 0.0;       ///< whole meta_state_convert() call
};

/// Render stats as a stable JSON object (the `--trace-convert` payload).
/// Schema documented in DESIGN.md §"Conversion engine".
std::string to_json(const ConvertStats& stats);

struct ConvertResult {
  /// The (possibly time-split) MIMD state graph the automaton refers to.
  ir::StateGraph graph;
  MetaAutomaton automaton;
  ConvertStats stats;
};

/// Meta-state conversion (§2): build the meta-state automaton for `graph`.
/// The input graph is copied; time splitting mutates only the copy.
ConvertResult meta_state_convert(const ir::StateGraph& graph,
                                 const ir::CostModel& cost,
                                 const ConvertOptions& options = {});

/// The practical policy the paper's §1.2 warning implies: run the base
/// conversion under a state budget; if it explodes, fall back to §2.5
/// compression (which is bounded by the reachable unions). The result
/// records which mode actually ran via `automaton.compressed`.
ConvertResult meta_state_convert_adaptive(const ir::StateGraph& graph,
                                          const ir::CostModel& cost,
                                          ConvertOptions options = {});

}  // namespace msc::core

#endif  // MSC_CORE_CONVERT_HPP
