#ifndef MSC_CORE_CONVERT_HPP
#define MSC_CORE_CONVERT_HPP

#include <cstdint>
#include <stdexcept>

#include "msc/core/automaton.hpp"
#include "msc/ir/cost.hpp"
#include "msc/ir/graph.hpp"

namespace msc::core {

/// Options for meta-state conversion.
struct ConvertOptions {
  /// §2.5: assume both successors of every two-exit state are always
  /// taken. Collapses the automaton dramatically (Fig. 5) at the cost of
  /// wider (less efficient) meta states.
  bool compress = false;

  /// With compression, additionally merge any meta state whose member set
  /// is strictly contained in another's into that superset (the paper's
  /// "the case of both successors can always emulate either successor");
  /// this is what reduces Listing 1's compressed automaton to the two
  /// states of Fig. 5. Ignored in base mode, where transitions are keyed
  /// on exact occupancy.
  bool subsume = true;

  /// Ignored under compression, which always tracks barrier occupancy
  /// (a compressed transition is unconditional, so the §3.2.4 masking
  /// trick has no key to adjust; release is handled by occupancy-keyed
  /// arcs instead).
  BarrierMode barrier_mode = BarrierMode::TrackOccupancy;

  /// §4.2: straighten the finished automaton — lay single-successor chains
  /// out consecutively so codegen emits fall-throughs instead of gotos.
  bool straighten = true;

  /// §2.4 MIMD-state time splitting. When a freshly created meta state
  /// mixes member costs badly, the expensive members are split into a
  /// min-cost head plus a tail state and the conversion restarts.
  bool time_split = false;
  std::int64_t split_delta = 4;     ///< cost noise level, in cycles
  std::int64_t split_percent = 75;  ///< acceptable utilization, in percent
  int max_split_rounds = 64;

  /// Explosion guard (§1.2 warns of up to S!/(S−N)! states).
  std::size_t max_meta_states = 250'000;
};

/// Thrown when `max_meta_states` is exceeded.
class ExplosionError : public std::runtime_error {
 public:
  explicit ExplosionError(std::size_t limit);
};

struct ConvertStats {
  std::size_t meta_states = 0;
  std::size_t arcs = 0;
  std::size_t reach_calls = 0;      ///< recursive successor enumerations
  int splits_performed = 0;         ///< §2.4 state splits across all rounds
  int restarts = 0;                 ///< conversion restarts due to splitting
};

struct ConvertResult {
  /// The (possibly time-split) MIMD state graph the automaton refers to.
  ir::StateGraph graph;
  MetaAutomaton automaton;
  ConvertStats stats;
};

/// Meta-state conversion (§2): build the meta-state automaton for `graph`.
/// The input graph is copied; time splitting mutates only the copy.
ConvertResult meta_state_convert(const ir::StateGraph& graph,
                                 const ir::CostModel& cost,
                                 const ConvertOptions& options = {});

/// The practical policy the paper's §1.2 warning implies: run the base
/// conversion under a state budget; if it explodes, fall back to §2.5
/// compression (which is bounded by the reachable unions). The result
/// records which mode actually ran via `automaton.compressed`.
ConvertResult meta_state_convert_adaptive(const ir::StateGraph& graph,
                                          const ir::CostModel& cost,
                                          ConvertOptions options = {});

}  // namespace msc::core

#endif  // MSC_CORE_CONVERT_HPP
