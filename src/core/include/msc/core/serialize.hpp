#ifndef MSC_CORE_SERIALIZE_HPP
#define MSC_CORE_SERIALIZE_HPP

#include <string>

#include "msc/core/automaton.hpp"
#include "msc/core/convert.hpp"
#include "msc/ir/graph.hpp"

namespace msc::core {

/// Versioned, line-oriented text serialization of a compiled module — the
/// MIMD state graph plus its meta-state automaton and the stats of the
/// conversion that produced it. Lets a build cache a conversion (they can
/// be expensive, §1.2) and reload it without re-running the compiler:
/// `codegen::generate` only needs these structures.
///
/// Format (one record per line, space-separated, '#' comments ignored):
///   mscmod 2
///   graph <nblocks> <start>
///   block <id> <exit> <target> <alt> <barrier> <label…>
///   instr <block> <op> <kind> <int> <float-bits>
///   automaton <nstates> <start> <mode> <compressed>
///   barriers <bit…>
///   meta <id> <unconditional> <member-bit…>
///   arc <from> <to> <key-bit…>
///   stats <meta_states> <arcs> <reach_calls> <splits> <restarts>
///         <cache_hits> <cache_misses> <cache_invalidated> <threads>
///         <batches> <expand_us> <merge_us> <subsume_us> <straighten_us>
///         <total_us>                                    (one line)
///   end
///
/// A version other than the current one is rejected with a clear error —
/// silent reinterpretation of old records is how boundary bugs survive.
struct Module {
  ir::StateGraph graph;
  MetaAutomaton automaton;
  ConvertStats stats;
};

std::string serialize(const Module& module);

/// Parse a serialized module. Throws std::runtime_error with a line number
/// on malformed input.
Module deserialize(const std::string& text);

}  // namespace msc::core

#endif  // MSC_CORE_SERIALIZE_HPP
