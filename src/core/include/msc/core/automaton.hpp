#ifndef MSC_CORE_AUTOMATON_HPP
#define MSC_CORE_AUTOMATON_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "msc/ir/graph.hpp"
#include "msc/support/bitset.hpp"

namespace msc::core {

using MetaId = std::uint32_t;
inline constexpr MetaId kNoMeta = 0xFFFFFFFFu;

/// §2.6 handling of barrier-wait states during conversion and execution.
enum class BarrierMode : std::uint8_t {
  /// Sound generalization (default): occupied barrier states stay members
  /// of the meta state and simply stall until every member is a barrier
  /// state; transitions key on the raw aggregate pc. Handles programs
  /// where different barrier-wait states are occupied concurrently.
  TrackOccupancy,
  /// The paper's rule, verbatim: barrier states are pruned from a meta
  /// state unless *all* its members are barriers, and at runtime the
  /// aggregate pc is masked by the barrier set (§3.2.4). Reproduces
  /// Figure 6 exactly. Sound whenever at most one distinct barrier-wait
  /// state can be occupied at a time *and* the process population is
  /// static (the common SPMD pattern): a §3.2.5 spawn can leave only the
  /// children at a barrier, an occupancy the pruned automaton has no arc
  /// for (found by mscfuzz — see tests/corpus/spawn_child_barrier.mimdc).
  PaperPrune,
};

/// One meta state: an aggregate of MIMD states (§1.2).
struct MetaState {
  MetaId id = kNoMeta;
  /// The MIMD states merged into this meta state. Invariant (exact-
  /// occupancy): on every runtime entry each member holds ≥1 PE, except
  /// under compression where members over-approximate occupancy.
  DynBitset members;
  /// Transition arcs: aggregate-pc key → successor. Keys are raw apc
  /// under TrackOccupancy, barrier-masked apc under PaperPrune. Sorted by
  /// key for deterministic iteration. In compressed automata these hold
  /// only the barrier-release transitions (keyed on all-waiting occupancy).
  std::vector<std::pair<DynBitset, MetaId>> arcs;
  /// §2.5/§3.2.2: the compressed, unconditional successor, taken when no
  /// arc key matches. kNoMeta in base-mode automata.
  MetaId unconditional = kNoMeta;

  bool terminal() const { return arcs.empty() && unconditional == kNoMeta; }
  std::size_t width() const { return members.count(); }
  std::string label() const { return members.to_string(); }
};

/// The meta-state automaton: "literally ... a SIMD program that preserves
/// the relative timing properties of MIMD execution" (§1.2).
struct MetaAutomaton {
  std::vector<MetaState> states;
  MetaId start = kNoMeta;
  BarrierMode barrier_mode = BarrierMode::TrackOccupancy;
  DynBitset barriers;  ///< barrier-wait states of the source graph
  bool compressed = false;

  MetaId find(const DynBitset& members) const {
    auto it = index.find(members);
    return it == index.end() ? kNoMeta : it->second;
  }
  MetaId add(DynBitset members);
  /// Combined find()/add() with a single hash of `members`. Sets `created`
  /// when a new state was made (the caller may roll it back with
  /// `states.pop_back()` + `index.erase(members)` if it must not exist).
  MetaId find_or_add(const DynBitset& members, bool& created);
  const MetaState& at(MetaId id) const { return states[id]; }
  MetaState& at(MetaId id) { return states[id]; }

  std::size_t num_states() const { return states.size(); }
  std::size_t num_arcs() const;
  std::size_t max_width() const;
  double mean_width() const;

  /// Apply this automaton's barrier masking to a runtime aggregate pc to
  /// obtain the transition key (§3.2.4). Identity under TrackOccupancy.
  DynBitset transition_key(const DynBitset& apc) const;

  /// Structural checks against the source graph; empty = valid.
  std::vector<std::string> validate(const ir::StateGraph& graph) const;

  std::string dump() const;
  std::string to_dot(const std::string& name = "meta") const;

  std::unordered_map<DynBitset, MetaId, DynBitsetHash> index;
};

}  // namespace msc::core

#endif  // MSC_CORE_AUTOMATON_HPP
