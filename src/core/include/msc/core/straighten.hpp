#ifndef MSC_CORE_STRAIGHTEN_HPP
#define MSC_CORE_STRAIGHTEN_HPP

#include "msc/core/automaton.hpp"

namespace msc::core {

/// §4.2 step 4: "The resulting meta-state graph is straightened and
/// output." Reorders the automaton's states so that whenever a meta state
/// has a single (direct/unconditional) successor whose only predecessor is
/// that state, the successor is laid out immediately after it. Codegen
/// then turns the transition into a fall-through instead of a goto, and
/// the emitted MPL reads as straight-line chains.
///
/// Pure permutation: ids are renumbered, `start`/arcs/index updated; no
/// state is added, removed, or semantically altered. Returns the number of
/// fall-through pairs created.
std::size_t straighten(MetaAutomaton& automaton);

}  // namespace msc::core

#endif  // MSC_CORE_STRAIGHTEN_HPP
