#ifndef MSC_CORE_PROFILE_HPP
#define MSC_CORE_PROFILE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "msc/core/automaton.hpp"

namespace msc::core {

/// Structural statistics of a meta-state automaton — the quantities the
/// paper's trade-off discussions revolve around (state count vs. width,
/// branch fan-out vs. the 3^n bound).
struct AutomatonProfile {
  std::size_t states = 0;
  std::size_t arcs = 0;
  std::size_t terminal_states = 0;
  std::size_t unconditional_states = 0;  ///< compressed direct transitions
  std::size_t all_barrier_states = 0;
  std::size_t max_width = 0;
  double mean_width = 0.0;
  std::size_t max_out_degree = 0;
  /// width → number of meta states with that many members.
  std::map<std::size_t, std::size_t> width_histogram;
  /// out-degree (keyed arcs) → number of meta states.
  std::map<std::size_t, std::size_t> out_degree_histogram;
  /// For each MIMD state: in how many meta states it appears (the "code
  /// duplication factor" of the SIMD coding).
  std::vector<std::size_t> replication;

  double mean_replication() const;
  std::string to_string() const;
};

AutomatonProfile profile(const MetaAutomaton& automaton);

}  // namespace msc::core

#endif  // MSC_CORE_PROFILE_HPP
