#ifndef MSC_CORE_TIME_SPLIT_HPP
#define MSC_CORE_TIME_SPLIT_HPP

#include <cstdint>
#include <vector>

#include "msc/ir/cost.hpp"
#include "msc/ir/graph.hpp"
#include "msc/support/bitset.hpp"

namespace msc::core {

/// §2.4 MIMD-state time splitting, exposed separately for tests/benches.
///
/// Given the member set of a (candidate) meta state, decide whether the
/// cost imbalance warrants splitting, and if so split every member whose
/// cost exceeds the minimum into a head of roughly min cost followed
/// unconditionally by a tail holding the remainder (Figs. 3–4). Returns
/// the number of blocks split (0 = no change). Mutates `graph`.
///
/// Mirrors the paper's time_split_state():
///  - members with zero cost are ignored ("you can't do anything about
///    them anyway");
///  - no split if min + split_delta > max (imbalance at noise level);
///  - no split if min > split_percent% of max (utilization acceptable);
///  - a block that cannot be divided (fewer than 2 body instructions)
///    is left alone.
///
/// When `split_ids` is non-null, the id of every block actually split is
/// appended to it (the conversion cache uses this to invalidate only memo
/// entries whose member sets include a split state).
int time_split_state(ir::StateGraph& graph, const DynBitset& members,
                     const ir::CostModel& cost, std::int64_t split_delta,
                     std::int64_t split_percent,
                     std::vector<ir::StateId>* split_ids = nullptr);

/// The idle fraction a meta state with these members would induce:
/// sum over members of (max_cost − cost) / (width · max_cost).
double meta_state_idle_fraction(const ir::StateGraph& graph,
                                const DynBitset& members,
                                const ir::CostModel& cost);

}  // namespace msc::core

#endif  // MSC_CORE_TIME_SPLIT_HPP
