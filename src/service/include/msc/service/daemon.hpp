#ifndef MSC_SERVICE_DAEMON_HPP
#define MSC_SERVICE_DAEMON_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "msc/service/service.hpp"

namespace msc::service {

struct DaemonOptions {
  std::string socket_path;
  /// Worker threads executing requests. 0 = one per hardware thread.
  std::size_t workers = 4;
  ServiceOptions service;

  /// Snapshot Service::metrics_json() to `metrics_path` every
  /// `metrics_interval_ms` milliseconds (atomic tmp+rename, plus one
  /// final snapshot at shutdown). 0 = disabled.
  std::int64_t metrics_interval_ms = 0;
  std::string metrics_path;
  /// Dump the slowlog ring as pid-3 Chrome spans to this file at
  /// shutdown; empty = disabled.
  std::string trace_chrome_path;
};

/// The socket front half of mscd: acceptor → per-connection readers →
/// worker pool, all funneling into one Service (DESIGN.md §13).
///
///  - The acceptor thread polls the listening socket plus a self-pipe;
///    request_stop() writes the pipe, so shutdown never waits on accept().
///  - One reader thread per connection splits the byte stream into
///    newline-delimited frames and enqueues {connection, frame} tasks. A
///    frame exceeding max_frame_bytes gets a terse frame-too-large error
///    and the connection is dropped (the reader cannot resynchronize).
///  - Workers pop tasks FIFO, call Service::handle_line(), and write the
///    response under the connection's write mutex — concurrent responses
///    to one pipelined client interleave by whole lines, never by bytes.
///
/// Shutdown (stop(), or a shutdown request observed by wait()) is clean:
/// the listener closes first, readers are woken with SHUT_RDWR and
/// joined, then one poison task per worker is enqueued BEHIND any queued
/// requests — every request read before shutdown still gets its response
/// before the daemon exits (service_concurrency_test pins this).
class Daemon {
 public:
  explicit Daemon(const DaemonOptions& options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind the socket and start the acceptor + worker threads. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Block until the daemon stops: either request_stop() was called or a
  /// client's shutdown request was accepted. Performs the stop sequence
  /// itself, so when wait() returns every thread is joined and the socket
  /// file is unlinked.
  void wait();

  /// Signal-safe stop trigger (SIGINT/SIGTERM handlers; the shutdown op).
  void request_stop();

  Service& service() { return service_; }
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct Conn {
    int fd = -1;
    /// 1-based accept order; the RequestTrace conn id (viewer lane).
    std::int64_t id = 0;
    std::mutex write_mu;
    std::thread reader;
  };

  struct Task {
    std::shared_ptr<Conn> conn;  ///< null = poison pill
    std::string frame;
    /// Assigned by the reader at frame-read time — readers are
    /// single-threaded per connection and the queue is FIFO, so request
    /// ids stay monotonic per connection no matter how workers interleave.
    std::int64_t request_id = 0;
    std::int64_t accepted_us = 0;
  };

  void accept_loop();
  void read_loop(const std::shared_ptr<Conn>& conn);
  void worker_loop();
  void metrics_loop();
  void enqueue(Task task);
  void stop();
  bool send_line(Conn& conn, const std::string& line);
  bool send_line_unlocked(Conn& conn, const std::string& line);
  DaemonInfo status();
  void write_metrics_snapshot();
  void write_trace_chrome();

  DaemonOptions options_;
  Service service_;

  std::atomic<std::int64_t> conns_accepted_{0};
  std::atomic<std::int64_t> conns_active_{0};
  std::thread metrics_thread_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Task> queue_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
};

}  // namespace msc::service

#endif  // MSC_SERVICE_DAEMON_HPP
