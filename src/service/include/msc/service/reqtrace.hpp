#ifndef MSC_SERVICE_REQTRACE_HPP
#define MSC_SERVICE_REQTRACE_HPP

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "msc/support/trace.hpp"

namespace msc::service {

/// One request's lifecycle record (DESIGN.md §15). Filled by
/// Service::handle_line() as the frame moves through
/// accept → parse → admission → cache → convert → run → serialize → write,
/// committed exactly once by Service::finish() — which is the single place
/// labeled metrics, the access log, and the slowlog observe a request, so
/// per-tenant counters sum exactly to the globals by construction.
///
/// Timestamps are microseconds on the owning Service's steady clock
/// (Service::now_us(), 0 = service construction). Phase durations are a
/// fixed set so the JSON field order is stable for golden tests; phases a
/// request never enters stay 0. `serialize` is defined as the handler time
/// not attributed to any earlier phase, so the phase durations sum to the
/// in-handler time exactly.
struct RequestTrace {
  std::int64_t request_id = 0;
  /// Daemon connection the frame arrived on; 0 for in-process callers.
  std::int64_t conn_id = 0;
  std::string tenant = "unknown";
  /// Wire op name; "invalid" until the frame parses.
  std::string op = "invalid";
  /// "ok" or "error".
  std::string outcome = "ok";
  /// Typed error kind wire string; empty when outcome is "ok".
  std::string error_kind;
  /// "none" (op has no conversion), "hit", "miss", or "inflight-wait".
  std::string cache_state = "none";
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;
  /// When the daemon reader accepted the frame; 0 for in-process callers
  /// (the accept phase then has zero duration).
  std::int64_t accepted_us = 0;
  /// When handle_line() started on the frame.
  std::int64_t start_us = 0;
  /// accept + handler + write: set by Service::finish().
  std::int64_t total_us = 0;
  /// True when the client asked for the trace in the response.
  bool wanted = false;

  struct Phases {
    std::int64_t accept = 0;     ///< frame read → handler start (queue wait)
    std::int64_t parse = 0;      ///< frame limit check + JSON parse + validate
    std::int64_t admission = 0;  ///< quota check
    std::int64_t cache = 0;      ///< conversion-cache lookup / in-flight wait
    std::int64_t convert = 0;    ///< front-half compute on a cache miss
    std::int64_t run = 0;        ///< machine execution (run / coschedule)
    std::int64_t serialize = 0;  ///< response rendering (handler remainder)
    std::int64_t write = 0;      ///< socket write (daemon only)
  } phases;

  /// One line, stable field order (the access-log line format; also the
  /// response "trace" member and the slowlog entries). Newline excluded.
  std::string to_json() const;
};

/// Export one request as pid-kServicePid spans: an enclosing "request"
/// span plus one child span per non-zero phase, laid back-to-back on the
/// service clock, one viewer lane (tid) per connection.
void append_chrome_spans(const RequestTrace& rt, telemetry::TraceSink& sink);

/// Thread-safe JSONL appender: one RequestTrace::to_json() line per
/// request, flushed per line so scrapers and crash forensics see every
/// committed request. Never enabled unless open() succeeded.
class AccessLog {
 public:
  AccessLog() = default;
  ~AccessLog();
  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Open (append) the log file. Returns false on failure.
  bool open(const std::string& path);
  bool enabled() const { return file_ != nullptr; }
  void append(const RequestTrace& rt);

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

/// Bounded worst-offenders ring: keeps the full RequestTrace of the
/// slowest requests at or above the threshold. Disabled until configured
/// with a positive threshold. Linear insert/evict — capacity is tens, the
/// cost is noise next to a request.
class SlowLog {
 public:
  SlowLog() = default;

  void configure(std::int64_t threshold_us, std::size_t capacity);
  bool enabled() const { return threshold_us_ > 0; }
  std::int64_t threshold_us() const { return threshold_us_; }

  void offer(const RequestTrace& rt);

  /// Slowest first; ties broken by request id (older first).
  std::vector<RequestTrace> snapshot() const;

 private:
  std::int64_t threshold_us_ = 0;
  std::size_t capacity_ = 32;
  mutable std::mutex mu_;
  std::vector<RequestTrace> entries_;
};

}  // namespace msc::service

#endif  // MSC_SERVICE_REQTRACE_HPP
