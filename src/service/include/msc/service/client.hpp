#ifndef MSC_SERVICE_CLIENT_HPP
#define MSC_SERVICE_CLIENT_HPP

#include <string>

namespace msc::service {

/// Minimal blocking client for the mscd wire protocol: connect to a
/// Unix-domain socket, send newline-delimited frames, read newline-
/// delimited responses. Used by mscli, the tests, and the load bench; not
/// thread-safe (one Client per thread).
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;

  /// Connect, with a bounded retry loop so callers racing a daemon that
  /// is still binding (tests, mscli right after spawning mscd) converge.
  /// Throws std::runtime_error when the socket stays unreachable.
  void connect(const std::string& socket_path, int timeout_ms = 2000);
  /// Take ownership of an already-connected stream fd (tests drive the
  /// line protocol over a socketpair without a daemon).
  void adopt(int fd);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one frame; the newline is appended. Throws on a broken pipe.
  void send_line(const std::string& line);
  /// Read one response line (newline stripped). Returns false on EOF /
  /// timeout (`timeout_ms` < 0 = block forever).
  bool recv_line(std::string& line, int timeout_ms = -1);
  /// send_line + recv_line; throws std::runtime_error when the daemon
  /// hangs up without responding.
  std::string request(const std::string& line, int timeout_ms = -1);

  /// Half-close the write side, leaving the read side open — used by the
  /// disconnect tests to model a client that stops mid-request.
  void shutdown_write();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace msc::service

#endif  // MSC_SERVICE_CLIENT_HPP
