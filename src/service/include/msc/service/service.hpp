#ifndef MSC_SERVICE_SERVICE_HPP
#define MSC_SERVICE_SERVICE_HPP

#include <atomic>
#include <cstdint>
#include <string>

#include "msc/service/admission.hpp"
#include "msc/service/cache.hpp"
#include "msc/service/protocol.hpp"

namespace msc::service {

/// Per-connection input limits, enforced twice: the daemon's reader drops
/// a connection whose frame exceeds max_frame_bytes (after sending a
/// terse frame-too-large error), and handle_line() re-checks so in-process
/// callers (fuzzer, bench) get the same behavior without a socket.
struct ServiceLimits {
  std::size_t max_frame_bytes = 1 << 20;
  int max_json_depth = 64;
};

struct ServiceOptions {
  ServiceLimits limits;
  QuotaOptions quota;
  std::size_t cache_capacity = 64;
};

/// The protocol engine: one frame in, one response line out. Owns the
/// process-wide conversion cache and the admission controller; holds no
/// per-connection state, so any number of daemon workers (or in-process
/// test/fuzz/bench threads) may call handle_line() concurrently.
///
/// handle_line() never throws and always returns exactly one line —
/// every failure mode (hostile bytes, compile errors, state explosion,
/// quota) renders as a typed error response. Responses are deterministic
/// per request: the "automaton" / "simd" / "observed" / "cosched" payload
/// members are byte-identical to what the standalone driver produces for
/// the same inputs (service_test pins this against the mscc binary), and
/// only the "cache" member reflects cross-request state.
class Service {
 public:
  explicit Service(const ServiceOptions& options = {});

  /// Handle one request frame (newline not included) and render the
  /// response line (newline not included).
  std::string handle_line(const std::string& line);

  /// True once a shutdown request has been accepted; the daemon's wait()
  /// observes this and stops the serving loop. Subsequent requests get
  /// "shutting-down" errors.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  ConversionCache& cache() { return cache_; }
  AdmissionControl& admission() { return admission_; }
  const ServiceOptions& options() const { return options_; }

 private:
  std::string dispatch(const Request& request);
  std::string do_compile(const Request& request);
  std::string do_run(const Request& request);
  std::string do_coschedule(const Request& request);
  std::string do_stats(const Request& request);

  /// Fetch (or compute, single-miss) the conversion for a compile-like
  /// request. Sets `*hit` to whether this request found the entry ready
  /// or in flight. Throws CompileError / ExplosionError / PipelineError.
  std::shared_ptr<const CachedConversion> convert_cached(
      const Request& request, const std::string& source, bool* hit);

  ServiceOptions options_;
  ConversionCache cache_;
  AdmissionControl admission_;
  std::atomic<bool> shutdown_{false};

  // Served-request counters, by outcome (stats op).
  std::atomic<std::int64_t> requests_ok_{0};
  std::atomic<std::int64_t> requests_error_{0};
};

}  // namespace msc::service

#endif  // MSC_SERVICE_SERVICE_HPP
