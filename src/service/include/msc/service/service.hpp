#ifndef MSC_SERVICE_SERVICE_HPP
#define MSC_SERVICE_SERVICE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "msc/service/admission.hpp"
#include "msc/service/cache.hpp"
#include "msc/service/protocol.hpp"
#include "msc/service/reqtrace.hpp"
#include "msc/support/metrics.hpp"

namespace msc::service {

/// Per-connection input limits, enforced twice: the daemon's reader drops
/// a connection whose frame exceeds max_frame_bytes (after sending a
/// terse frame-too-large error), and handle_line() re-checks so in-process
/// callers (fuzzer, bench) get the same behavior without a socket.
struct ServiceLimits {
  std::size_t max_frame_bytes = 1 << 20;
  int max_json_depth = 64;
};

/// Serving-tier observability knobs (DESIGN.md §15). All off by default:
/// the labeled registry always accumulates (it is the metrics op's data),
/// but the access log and slowlog only engage when configured.
struct ObservabilityOptions {
  /// JSONL access log path; empty = disabled. Service construction throws
  /// when the file cannot be opened — silently dropping an operator's
  /// audit trail is worse than failing to start.
  std::string access_log_path;
  /// Keep the full RequestTrace of requests at/above this many
  /// microseconds; 0 = slowlog disabled.
  std::int64_t slow_micros = 0;
  std::size_t slowlog_capacity = 32;
  /// Cardinality bound per labeled metric family; past it, new {tenant,
  /// op} series fold into the "other" overflow tenant.
  std::size_t max_label_series = 64;
};

struct ServiceOptions {
  ServiceLimits limits;
  QuotaOptions quota;
  std::size_t cache_capacity = 64;
  ObservabilityOptions observability;
};

/// Daemon-level numbers the stats op reports when the Service runs under
/// a Daemon (absent for in-process callers).
struct DaemonInfo {
  std::int64_t workers = 0;
  std::int64_t queue_depth = 0;
  std::int64_t connections_accepted = 0;
  std::int64_t connections_active = 0;
};

/// The protocol engine: one frame in, one response line out. Owns the
/// process-wide conversion cache and the admission controller; holds no
/// per-connection state, so any number of daemon workers (or in-process
/// test/fuzz/bench threads) may call handle_line() concurrently.
///
/// handle_line() never throws and always returns exactly one line —
/// every failure mode (hostile bytes, compile errors, state explosion,
/// quota) renders as a typed error response. Responses are deterministic
/// per request: the "automaton" / "simd" / "observed" / "cosched" payload
/// members are byte-identical to what the standalone driver produces for
/// the same inputs (service_test pins this against the mscc binary), and
/// only the "cache" member and the optional "trace" member reflect
/// cross-request state / wall-clock timings.
///
/// Observability contract (DESIGN.md §15): every request is committed
/// exactly once through finish() — global outcome counters, the labeled
/// {tenant, op} families, the access log, and the slowlog all observe the
/// request there and only there, so per-tenant series sum exactly to the
/// globals. The two-argument handle_line() overload leaves the commit to
/// the caller (the daemon, which first writes the response so the trace
/// includes the write phase and the true bytes_out); the one-argument form
/// commits before returning.
class Service {
 public:
  /// Throws std::runtime_error when the configured access log cannot be
  /// opened.
  explicit Service(const ServiceOptions& options = {});

  /// Handle one request frame (newline not included) and render the
  /// response line (newline not included). Commits the request.
  std::string handle_line(const std::string& line);

  /// As above, but fills `rt` and does NOT commit: the caller must call
  /// finish(rt) exactly once after the response is written. An unset
  /// rt.request_id is assigned on entry; a daemon reader that assigned
  /// ids at frame-read time (keeping them monotonic per connection)
  /// pre-fills request_id and accepted_us.
  std::string handle_line(const std::string& line, RequestTrace& rt);

  /// Commit one request: outcome counters, labeled metrics, access log,
  /// slowlog. Sets rt.total_us from the service clock.
  void finish(RequestTrace& rt);

  /// Monotonic request-id source (first id is 1).
  std::int64_t next_request_id() {
    return request_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Microseconds since construction — the clock every RequestTrace
  /// timestamp is on.
  std::int64_t now_us() const;

  /// The schema-2 labeled telemetry document (the metrics op's payload;
  /// also what --metrics-interval snapshots to a file).
  std::string metrics_json() const;

  std::vector<RequestTrace> slowlog_snapshot() const {
    return slowlog_.snapshot();
  }

  /// Installed by the Daemon so the stats op can report socket-side
  /// state; must be callable from any worker thread.
  void set_daemon_info_source(std::function<DaemonInfo()> source) {
    daemon_info_ = std::move(source);
  }

  /// True once a shutdown request has been accepted; the daemon's wait()
  /// observes this and stops the serving loop. Subsequent requests get
  /// "shutting-down" errors (stats/metrics/slowlog stay serviceable).
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  ConversionCache& cache() { return cache_; }
  AdmissionControl& admission() { return admission_; }
  telemetry::LabeledRegistry& labeled() { return labeled_; }
  const ServiceOptions& options() const { return options_; }

 private:
  std::string dispatch(const Request& request, RequestTrace& rt);
  std::string do_compile(const Request& request, RequestTrace& rt);
  std::string do_run(const Request& request, RequestTrace& rt);
  std::string do_coschedule(const Request& request, RequestTrace& rt);
  std::string do_stats(const Request& request);
  std::string do_metrics(const Request& request);
  std::string do_slowlog(const Request& request);

  /// Record the error outcome on `rt` and render the response.
  std::string fail(RequestTrace& rt, const std::string& id_json,
                   std::optional<Op> op, ErrorKind kind,
                   const std::string& message);

  /// Fetch (or compute, single-miss) the conversion for a compile-like
  /// request. Accumulates the cache/convert phases and the cache state
  /// onto `rt`. Throws CompileError / ExplosionError / PipelineError.
  std::shared_ptr<const CachedConversion> convert_cached(
      const Request& request, const std::string& source, RequestTrace& rt);

  ServiceOptions options_;
  ConversionCache cache_;
  AdmissionControl admission_;
  telemetry::LabeledRegistry labeled_;
  AccessLog access_log_;
  SlowLog slowlog_;
  std::chrono::steady_clock::time_point epoch_;
  std::function<DaemonInfo()> daemon_info_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::int64_t> request_ids_{0};

  // Served-request counters, by outcome (stats op). Only finish() writes
  // these, so the labeled "requests" family sums exactly to them.
  std::atomic<std::int64_t> requests_ok_{0};
  std::atomic<std::int64_t> requests_error_{0};
};

}  // namespace msc::service

#endif  // MSC_SERVICE_SERVICE_HPP
