#ifndef MSC_SERVICE_ADMISSION_HPP
#define MSC_SERVICE_ADMISSION_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace msc::service {

/// Per-tenant admission limits (DESIGN.md §13). Zero = unlimited.
struct QuotaOptions {
  /// Ceiling on the sum of max_blocks across a tenant's in-flight run
  /// requests: admission charges a request's declared block budget up
  /// front and releases it on completion, so one tenant cannot occupy
  /// every worker with billion-block runs.
  std::int64_t block_budget = 64'000'000;
  /// After this many ExplosionErrors a tenant's compile/run requests are
  /// rejected at admission — a client fuzzing for state explosion stops
  /// burning workers after `explosion_quota` strikes.
  std::int64_t explosion_quota = 16;
};

/// Snapshot of one tenant's accounting, for the stats op.
struct TenantStats {
  std::string tenant;
  std::int64_t inflight_blocks = 0;
  std::int64_t explosions = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
};

/// Admission controller: one mutex, one map keyed by tenant id. Decisions
/// are deterministic in (tenant history, request) — contention changes
/// which request is charged first, never whether a lone request within
/// budget is admitted.
class AdmissionControl {
 public:
  explicit AdmissionControl(const QuotaOptions& quota = {});

  /// Outcome of try_admit. `ok` admitted; otherwise `reason` explains the
  /// quota that fired (wire "quota-exceeded" message body).
  struct Decision {
    bool ok = true;
    std::string reason;
  };

  /// Admit a request charging `blocks` against the tenant's budget (pass
  /// 0 for compile/stats requests — the explosion quota still applies).
  /// On success the caller MUST pair with release(tenant, blocks).
  Decision try_admit(const std::string& tenant, std::int64_t blocks);
  void release(const std::string& tenant, std::int64_t blocks);

  /// Record an ExplosionError attributed to `tenant` (cache hits count:
  /// replaying a known-exploding program is the abuse being metered).
  void record_explosion(const std::string& tenant);

  std::vector<TenantStats> stats() const;
  const QuotaOptions& quota() const { return quota_; }

 private:
  struct Tenant {
    std::int64_t inflight_blocks = 0;
    std::int64_t explosions = 0;
    std::int64_t admitted = 0;
    std::int64_t rejected = 0;
  };

  QuotaOptions quota_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Tenant> tenants_;
};

}  // namespace msc::service

#endif  // MSC_SERVICE_ADMISSION_HPP
