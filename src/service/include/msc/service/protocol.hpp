#ifndef MSC_SERVICE_PROTOCOL_HPP
#define MSC_SERVICE_PROTOCOL_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "msc/mimd/machine.hpp"
#include "msc/simd/coschedule.hpp"
#include "msc/support/json.hpp"

namespace msc::service {

/// The mscd wire format (DESIGN.md §13): newline-delimited JSON frames
/// over a Unix-domain socket. One request object per line in, one
/// response object per line out, the request's "id" echoed back so
/// clients may pipeline. Every response is a single JSON object with
/// "ok": true plus an op-specific payload, or "ok": false plus a typed
/// {"kind", "message"} error — a malformed, hostile, or over-quota frame
/// produces an error response (or, past the frame limit, a terse error
/// and a closed connection), never a crash or a hang.

/// Typed error taxonomy. The wire strings are stable API (mscli maps them
/// to exit codes; tests and the fuzzer assert on them).
enum class ErrorKind : std::uint8_t {
  ParseError,     ///< frame is not valid JSON within the parse limits
  Protocol,       ///< valid JSON, invalid request (unknown op/field, types)
  FrameTooLarge,  ///< frame exceeds ServiceLimits::max_frame_bytes
  Compile,        ///< CompileError in the submitted MIMDC source
  Explosion,      ///< conversion exceeded max_meta_states
  Fault,          ///< machine fault while executing
  Pipeline,       ///< pass-pipeline construction error
  Quota,          ///< tenant admission rejected the request
  ShuttingDown,   ///< daemon is stopping; request not accepted
  Internal,       ///< anything unexpected
};

const char* to_string(ErrorKind kind);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
ErrorKind parse_error_kind(const std::string& name);

/// Request kinds accepted by the daemon.
enum class Op : std::uint8_t {
  Compile,
  Run,
  Coschedule,
  Stats,
  Metrics,   ///< labeled per-tenant/per-op telemetry (schema-2 payload)
  Slowlog,   ///< ring-buffered worst-request traces
  Shutdown,
};
const char* to_string(Op op);

/// A validated request. parse_request() is the only way to build one from
/// wire bytes; it enforces the field whitelist per op, so by the time a
/// worker sees a Request every field is typed and range-checked.
struct Request {
  Op op = Op::Stats;
  /// Echo token: requests may carry "id" as an integer or a string; the
  /// response repeats it verbatim. Empty = absent.
  std::string id_json;
  std::string tenant = "anon";

  // compile / run
  std::string source;
  /// Explicit pass pipeline ("pipeline": "compress,convert,subsume,...");
  /// empty = derive from the option booleans exactly as mscc does.
  std::vector<std::string> pipeline;
  bool compress = false;
  bool time_split = false;
  bool adaptive = false;
  bool subsume = true;
  bool prune = false;
  std::size_t max_meta_states = 250'000;

  // run
  std::int64_t nprocs = 8;
  std::int64_t initial_active = -1;
  std::uint64_t seed = 1;
  mimd::SimdEngine engine = mimd::SimdEngine::Fast;
  SimdIsa simd_isa = SimdIsa::Auto;
  bool reuse_halted_pes = false;
  /// Accumulate per-meta-state StateProfiles: the response's "simd"
  /// payload becomes the --profile-simd document instead of --trace-simd.
  bool profile = false;
  std::int64_t max_blocks = 4'000'000;

  // coschedule
  std::vector<std::string> programs;  ///< verified kernel specs "name@n"
  simd::CoPolicy policy = simd::CoPolicy::RoundRobin;
  std::int64_t quantum = 1;

  // stats
  bool metrics = false;  ///< include the process metrics registry JSON

  // any op
  /// Attach the request's RequestTrace to the response as a JSON-escaped
  /// "trace" string member (DESIGN.md §15). The trace holds wall-clock
  /// timings, so byte-identity comparisons exclude it.
  bool trace = false;
};

/// Thrown by parse_request() on a structurally valid JSON object that is
/// not a valid request (unknown op, unknown field, bad type or range).
/// Carries the typed kind so the caller renders the right error.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& message,
                         ErrorKind kind = ErrorKind::Protocol)
      : std::runtime_error(message), kind_(kind) {}
  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

/// Parse one wire frame into a Request. Throws json::ParseError on
/// malformed JSON (within `limits`) and ProtocolError on anything that
/// parses but does not validate.
Request parse_request(const std::string& line, const json::ParseLimits& limits);

/// Best-effort tenant/op attribution for a frame that failed validation,
/// so its error still lands on the right labeled series (DESIGN.md §15).
/// Writes only what a structurally valid object carries with the right
/// type: `tenant` bounded like the validated path, `op` only when it is
/// one of the known op names (never attacker-chosen label values). Never
/// throws; leaves the outputs untouched when nothing qualifies.
void attribute_frame(const std::string& line, const json::ParseLimits& limits,
                     std::string* tenant, std::string* op);

/// Render the standard response envelope. `payload` is a pre-rendered
/// sequence of `"key": value` members spliced after "ok" (may be empty);
/// the result is exactly one line, newline not included.
std::string ok_response(const Request& request, const std::string& payload);
std::string error_response(const std::string& id_json, std::optional<Op> op,
                           ErrorKind kind, const std::string& message);

}  // namespace msc::service

#endif  // MSC_SERVICE_PROTOCOL_HPP
