#ifndef MSC_SERVICE_CACHE_HPP
#define MSC_SERVICE_CACHE_HPP

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "msc/driver/pipeline.hpp"

namespace msc::service {

/// One finished front-half: the compiled program, its conversion, and the
/// SimdProgram the codegen pass produced. Immutable once published —
/// concurrent run requests build their own machines over the shared
/// program, exactly like the co-scheduler does.
struct CachedConversion {
  driver::Converted converted;
  /// The resolved conversion-stage pass list that produced it (response
  /// metadata; also part of the cache key).
  std::vector<std::string> pipeline;
};

/// Canonical cache key: FNV-1a of the program text plus the resolved
/// pipeline and the conversion options that are not passes. Two requests
/// spelling the same compile differently (explicit pipeline vs option
/// booleans) canonicalize to the same key.
std::string conversion_cache_key(const std::string& source,
                                 const std::vector<std::string>& pipeline,
                                 bool adaptive, bool prune,
                                 std::size_t max_meta_states);

/// Process-wide conversion cache shared by every daemon worker, keyed by
/// program hash + pipeline + options. Concurrent identical compiles are
/// single-miss (the translate-cache race idiom, generalized): the first
/// requester inserts an in-flight slot and computes outside the lock;
/// every racer blocks on the slot's condition until the value (or the
/// deterministic error — CompileError/ExplosionError are pure functions
/// of the key) is published, then shares it. Ready entries are LRU-bounded.
class ConversionCache {
 public:
  /// How one get_or_compute() call was satisfied (the per-request view
  /// behind Stats: a wait counts as a hit there, but RequestTrace needs
  /// the three-way distinction).
  enum class Outcome : std::uint8_t { Hit, Miss, InflightWait };

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    /// Requests that blocked on another worker's in-flight compile
    /// (counted as hits too once the value arrives).
    std::int64_t inflight_waits = 0;
    std::int64_t evictions = 0;
    std::int64_t entries = 0;
  };

  explicit ConversionCache(std::size_t capacity = 64);

  /// Look up `key`; on miss, run `compute` exactly once (across all
  /// threads) and publish the result. Throws whatever `compute` threw —
  /// to the computing thread and every waiter alike. `outcome`, when
  /// non-null, reports how this call was satisfied (set before any throw).
  std::shared_ptr<const CachedConversion> get_or_compute(
      const std::string& key,
      const std::function<std::shared_ptr<const CachedConversion>()>& compute,
      Outcome* outcome = nullptr);

  Stats stats() const;
  /// Drop every entry and zero the counters (tests).
  void clear();

 private:
  struct Slot {
    bool ready = false;
    std::shared_ptr<const CachedConversion> value;
    std::exception_ptr error;
  };

  void evict_locked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t capacity_;
  std::unordered_map<std::string, std::shared_ptr<Slot>> map_;
  /// Ready keys, most recently used first (in-flight slots are not
  /// evictable and live only in map_).
  std::list<std::string> lru_;
  Stats stats_;
};

}  // namespace msc::service

#endif  // MSC_SERVICE_CACHE_HPP
