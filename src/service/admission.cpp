#include "msc/service/admission.hpp"

#include <algorithm>

#include "msc/support/str.hpp"

namespace msc::service {

AdmissionControl::AdmissionControl(const QuotaOptions& quota)
    : quota_(quota) {}

AdmissionControl::Decision AdmissionControl::try_admit(
    const std::string& tenant, std::int64_t blocks) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[tenant];
  if (quota_.explosion_quota > 0 && t.explosions >= quota_.explosion_quota) {
    ++t.rejected;
    return {false, cat("tenant '", tenant, "' exhausted its explosion quota (",
                       t.explosions, "/", quota_.explosion_quota, ")")};
  }
  if (quota_.block_budget > 0 && blocks > 0 &&
      t.inflight_blocks + blocks > quota_.block_budget) {
    ++t.rejected;
    return {false,
            cat("tenant '", tenant, "' block budget exceeded: ", blocks,
                " requested, ", quota_.block_budget - t.inflight_blocks,
                " of ", quota_.block_budget, " available")};
  }
  t.inflight_blocks += blocks;
  ++t.admitted;
  return {};
}

void AdmissionControl::release(const std::string& tenant,
                               std::int64_t blocks) {
  if (blocks <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  it->second.inflight_blocks =
      std::max<std::int64_t>(0, it->second.inflight_blocks - blocks);
}

void AdmissionControl::record_explosion(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tenants_[tenant].explosions;
}

std::vector<TenantStats> AdmissionControl::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_)
    out.push_back({name, t.inflight_blocks, t.explosions, t.admitted,
                   t.rejected});
  std::sort(out.begin(), out.end(),
            [](const TenantStats& a, const TenantStats& b) {
              return a.tenant < b.tenant;
            });
  return out;
}

}  // namespace msc::service
