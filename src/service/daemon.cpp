// Socket front half of mscd. POSIX-only (AF_UNIX), like the rest of the
// toolchain's process plumbing (cli_test's popen); no external deps.
#include "msc/service/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "msc/support/str.hpp"
#include "msc/support/trace.hpp"

namespace msc::service {

namespace {

void close_quietly(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

/// Whole-file write through a temp name + rename, so scrapers polling the
/// metrics snapshot never read a torn document.
bool write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = cat(path, ".tmp");
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                  bytes.size();
  std::fclose(f);
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  return ::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

Daemon::Daemon(const DaemonOptions& options)
    : options_(options), service_(options.service) {
  if (options_.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.workers = hw == 0 ? 4 : hw;
  }
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  if (options_.socket_path.empty())
    throw std::runtime_error("daemon: no socket path configured");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error(
        cat("daemon: socket path '", options_.socket_path, "' exceeds ",
            sizeof(addr.sun_path) - 1, " bytes"));
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(cat("daemon: socket(): ", std::strerror(errno)));
  // A stale socket file from a crashed daemon would fail bind(); remove
  // it — connect() on a dead socket errors, so this cannot hijack a
  // running daemon's clients.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    close_quietly(listen_fd_);
    throw std::runtime_error(
        cat("daemon: bind('", options_.socket_path, "'): ", err));
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string err = std::strerror(errno);
    close_quietly(listen_fd_);
    throw std::runtime_error(cat("daemon: listen(): ", err));
  }
  if (::pipe(wake_pipe_) < 0) {
    close_quietly(listen_fd_);
    throw std::runtime_error(cat("daemon: pipe(): ", std::strerror(errno)));
  }

  service_.set_daemon_info_source([this] { return status(); });

  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  if (options_.metrics_interval_ms > 0 && !options_.metrics_path.empty())
    metrics_thread_ = std::thread([this] { metrics_loop(); });
}

void Daemon::accept_loop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // request_stop() wrote the pipe
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->id = conns_accepted_.fetch_add(1, std::memory_order_relaxed) + 1;
    conns_active_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { read_loop(conn); });
  }
}

void Daemon::read_loop(const std::shared_ptr<Conn>& conn) {
  const std::size_t max_frame = options_.service.limits.max_frame_bytes;
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // disconnect (mid-frame bytes are discarded)
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string frame = buffer.substr(start, nl - start);
      if (!frame.empty() && frame.back() == '\r') frame.pop_back();
      start = nl + 1;
      // The id is drawn here, not in the worker: this reader is the only
      // thread splitting this connection's stream and the queue is FIFO,
      // so ids are monotonic per connection (access-log golden tests pin
      // this) even though workers complete out of order.
      enqueue({conn, std::move(frame), service_.next_request_id(),
               service_.now_us()});
    }
    buffer.erase(0, start);

    // A partial frame past the limit can never become a valid request;
    // answer tersely and drop the connection rather than buffer forever.
    if (buffer.size() > max_frame) {
      send_line(*conn,
                error_response("", std::nullopt, ErrorKind::FrameTooLarge,
                               cat("request frame exceeds the ", max_frame,
                                   "-byte limit")));
      ::shutdown(conn->fd, SHUT_RDWR);
      break;
    }
  }
  conns_active_.fetch_sub(1, std::memory_order_relaxed);
}

void Daemon::enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void Daemon::worker_loop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty(); });
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (!task.conn) return;  // poison pill
    RequestTrace rt;
    rt.request_id = task.request_id;
    rt.conn_id = task.conn->id;
    rt.accepted_us = task.accepted_us;
    const std::string response = service_.handle_line(task.frame, rt);
    rt.bytes_out = static_cast<std::int64_t>(response.size());
    {
      // Commit after the write so the trace covers the full lifecycle and
      // the labeled counters never run ahead of what the client saw. The
      // write lock is held across write + commit so a request/response
      // client's next frame on this connection cannot commit first —
      // access-log lines stay id-ordered per connection.
      std::lock_guard<std::mutex> lock(task.conn->write_mu);
      const std::int64_t w0 = service_.now_us();
      send_line_unlocked(*task.conn, response);
      rt.phases.write = service_.now_us() - w0;
      service_.finish(rt);
    }
    if (service_.shutdown_requested()) {
      // Wake wait() so the stop sequence starts; workers keep draining
      // the queue until their poison pill arrives.
      std::lock_guard<std::mutex> lock(stop_mu_);
      stop_requested_ = true;
      stop_cv_.notify_all();
    }
  }
}

void Daemon::metrics_loop() {
  const auto interval =
      std::chrono::milliseconds(options_.metrics_interval_ms);
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested_) {
    stop_cv_.wait_for(lock, interval, [this] { return stop_requested_; });
    lock.unlock();
    write_metrics_snapshot();
    lock.lock();
  }
}

DaemonInfo Daemon::status() {
  DaemonInfo d;
  d.workers = static_cast<std::int64_t>(options_.workers);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    d.queue_depth = static_cast<std::int64_t>(queue_.size());
  }
  d.connections_accepted = conns_accepted_.load(std::memory_order_relaxed);
  d.connections_active = conns_active_.load(std::memory_order_relaxed);
  return d;
}

void Daemon::write_metrics_snapshot() {
  if (options_.metrics_path.empty()) return;
  write_file_atomic(options_.metrics_path, service_.metrics_json());
}

void Daemon::write_trace_chrome() {
  if (options_.trace_chrome_path.empty()) return;
  telemetry::TraceSink sink;
  sink.name_process(telemetry::TraceSink::kServicePid, "mscd requests");
  for (const RequestTrace& rt : service_.slowlog_snapshot())
    append_chrome_spans(rt, sink);
  write_file_atomic(options_.trace_chrome_path, sink.to_json());
}

bool Daemon::send_line(Conn& conn, const std::string& line) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  return send_line_unlocked(conn, line);
}

bool Daemon::send_line_unlocked(Conn& conn, const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(conn.fd, out.data() + sent, out.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;  // client went away; response is dropped
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Daemon::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait(lock, [this] { return stop_requested_; });
  }
  stop();
}

void Daemon::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  // Signal-safe enough for the CLI handlers: write(2) on the self-pipe.
  if (wake_pipe_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Daemon::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();  // wakes the metrics snapshot thread too
  // 1. Stop accepting: wake the poll and join the acceptor.
  if (wake_pipe_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (acceptor_.joinable()) acceptor_.join();
  close_quietly(listen_fd_);

  // 2. Wake every blocked reader and join; readers may still enqueue the
  // frames they had already buffered.
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  // SHUT_RD only: the write side stays open so workers can still answer
  // the frames these connections already delivered.
  for (auto& conn : conns)
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  for (auto& conn : conns)
    if (conn->reader.joinable()) conn->reader.join();

  // 3. Poison pills go behind any queued requests (FIFO): in-flight work
  // is answered, then the workers exit.
  for (std::size_t i = 0; i < workers_.size(); ++i) enqueue({nullptr, ""});
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();

  // 4. Final observability flush: the snapshot after the last worker
  // exits covers every committed request; the chrome dump exports the
  // slowlog ring.
  if (metrics_thread_.joinable()) metrics_thread_.join();
  write_metrics_snapshot();
  write_trace_chrome();

  for (auto& conn : conns) close_quietly(conn->fd);
  close_quietly(wake_pipe_[0]);
  close_quietly(wake_pipe_[1]);
  if (!options_.socket_path.empty())
    ::unlink(options_.socket_path.c_str());
}

}  // namespace msc::service
