#include "msc/service/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "msc/support/str.hpp"

namespace msc::service {

Client::~Client() { close(); }

Client::Client(Client&& o) noexcept : fd_(o.fd_), buffer_(std::move(o.buffer_)) {
  o.fd_ = -1;
}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    buffer_ = std::move(o.buffer_);
    o.fd_ = -1;
  }
  return *this;
}

void Client::connect(const std::string& socket_path, int timeout_ms) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error(cat("client: socket path '", socket_path,
                                 "' too long"));
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  // Retry while the daemon binds: ENOENT/ECONNREFUSED until listen().
  // EINTR retries immediately and burns none of the deadline — a signal
  // is not evidence the daemon is absent.
  for (int waited = 0;;) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
      throw std::runtime_error(cat("client: socket(): ", std::strerror(errno)));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return;
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    if (err == EINTR) continue;
    if (waited >= timeout_ms)
      throw std::runtime_error(cat("client: connect('", socket_path,
                                   "'): ", std::strerror(err)));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    waited += 10;
  }
}

void Client::adopt(int fd) {
  close();
  fd_ = fd;
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

void Client::send_line(const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0)
      throw std::runtime_error(cat("client: send(): ", std::strerror(errno)));
    sent += static_cast<std::size_t>(n);
  }
}

bool Client::recv_line(std::string& line, int timeout_ms) {
  // The deadline is absolute: poll() interrupted by a signal (EINTR) is
  // not a timeout — it re-arms with the remaining budget, so a client
  // sharing a process with interval timers (or a debugger) never fails a
  // request that the daemon answered in time.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (timeout_ms >= 0) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline -
                                     std::chrono::steady_clock::now());
      const int budget =
          remaining.count() > 0 ? static_cast<int>(remaining.count()) : 0;
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, budget);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return false;  // poll error
      }
      if (rc == 0) return false;  // genuine timeout
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // EOF
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::request(const std::string& line, int timeout_ms) {
  send_line(line);
  std::string response;
  if (!recv_line(response, timeout_ms))
    throw std::runtime_error("client: daemon closed without responding");
  return response;
}

void Client::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace msc::service
