// Process-wide conversion cache. The concurrency discipline generalizes
// translate_cache_test's race: one mutex guards the map, compute runs
// outside it, and racers block on a per-slot ready flag — so N identical
// concurrent compiles cost exactly one conversion, and the loser threads
// report as hits that waited.
#include "msc/service/cache.hpp"

#include <algorithm>

#include "msc/support/str.hpp"

namespace msc::service {

namespace {

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string conversion_cache_key(const std::string& source,
                                 const std::vector<std::string>& pipeline,
                                 bool adaptive, bool prune,
                                 std::size_t max_meta_states) {
  return cat(fnv1a64(source), "|", join(pipeline, ","), "|",
             adaptive ? "a" : "-", prune ? "p" : "-", "|", max_meta_states);
}

ConversionCache::ConversionCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const CachedConversion> ConversionCache::get_or_compute(
    const std::string& key,
    const std::function<std::shared_ptr<const CachedConversion>()>& compute,
    Outcome* outcome) {
  std::shared_ptr<Slot> slot;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      slot = it->second;
      if (outcome) *outcome = Outcome::Hit;
      if (!slot->ready) {
        ++stats_.inflight_waits;
        if (outcome) *outcome = Outcome::InflightWait;
        cv_.wait(lock, [&] { return slot->ready; });
      }
      ++stats_.hits;
      // The slot may have been evicted (or cleared) while we waited; it
      // still holds the value, so touch the LRU only if the key is live.
      auto pos = std::find(lru_.begin(), lru_.end(), key);
      if (pos != lru_.end()) lru_.splice(lru_.begin(), lru_, pos);
      if (slot->error) std::rethrow_exception(slot->error);
      return slot->value;
    }
    slot = std::make_shared<Slot>();
    map_.emplace(key, slot);
    ++stats_.misses;
    if (outcome) *outcome = Outcome::Miss;
  }

  // Compute outside the lock; other threads asking for the same key park
  // on the condition variable above.
  std::exception_ptr error;
  std::shared_ptr<const CachedConversion> value;
  try {
    value = compute();
  } catch (...) {
    error = std::current_exception();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    slot->value = value;
    slot->error = error;
    slot->ready = true;
    // A slot that ended in an error is published to its waiters but not
    // retained: transient failures must not poison the key forever.
    // (Compile and explosion errors are deterministic, but cheap.)
    if (error) {
      map_.erase(key);
    } else {
      lru_.push_front(key);
      evict_locked();
    }
    stats_.entries = static_cast<std::int64_t>(lru_.size());
  }
  cv_.notify_all();

  if (error) std::rethrow_exception(error);
  return value;
}

void ConversionCache::evict_locked() {
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ConversionCache::Stats ConversionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = static_cast<std::int64_t>(lru_.size());
  return s;
}

void ConversionCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // In-flight slots survive in their requesters' shared_ptrs; dropping
  // the map reference is safe because publication only touches the slot.
  map_.clear();
  lru_.clear();
  stats_ = Stats{};
}

}  // namespace msc::service
