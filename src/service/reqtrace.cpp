#include "msc/service/reqtrace.hpp"

#include <algorithm>
#include <sstream>

#include "msc/support/str.hpp"

namespace msc::service {

std::string RequestTrace::to_json() const {
  std::ostringstream os;
  os << "{\"request_id\": " << request_id << ", \"conn\": " << conn_id
     << ", \"tenant\": \"" << json_escape(tenant) << "\", \"op\": \""
     << json_escape(op) << "\", \"outcome\": \"" << json_escape(outcome)
     << "\", \"error_kind\": \"" << json_escape(error_kind)
     << "\", \"cache\": \"" << json_escape(cache_state)
     << "\", \"bytes_in\": " << bytes_in << ", \"bytes_out\": " << bytes_out
     << ", \"start_us\": " << start_us << ", \"total_us\": " << total_us
     << ", \"phase_micros\": {\"accept\": " << phases.accept
     << ", \"parse\": " << phases.parse
     << ", \"admission\": " << phases.admission
     << ", \"cache\": " << phases.cache << ", \"convert\": " << phases.convert
     << ", \"run\": " << phases.run << ", \"serialize\": " << phases.serialize
     << ", \"write\": " << phases.write << "}}";
  return os.str();
}

void append_chrome_spans(const RequestTrace& rt, telemetry::TraceSink& sink) {
  const std::int64_t tid = rt.conn_id;
  const std::int64_t begin =
      rt.accepted_us > 0 ? rt.accepted_us : rt.start_us;
  sink.complete(cat("request #", rt.request_id), "service",
                telemetry::TraceSink::kServicePid, tid, begin, rt.total_us,
                {{"bytes_in", rt.bytes_in}, {"bytes_out", rt.bytes_out}},
                {{"tenant", rt.tenant},
                 {"op", rt.op},
                 {"outcome", rt.outcome},
                 {"cache", rt.cache_state}});
  // Phases are recorded as durations; lay them back-to-back in lifecycle
  // order (the daemon executes them sequentially, so this reconstructs the
  // real timeline up to sub-phase interleaving in coschedule requests).
  const std::pair<const char*, std::int64_t> phases[] = {
      {"accept", rt.phases.accept},       {"parse", rt.phases.parse},
      {"admission", rt.phases.admission}, {"cache", rt.phases.cache},
      {"convert", rt.phases.convert},     {"run", rt.phases.run},
      {"serialize", rt.phases.serialize}, {"write", rt.phases.write}};
  std::int64_t ts = begin;
  for (const auto& [name, dur] : phases) {
    if (dur > 0)
      sink.complete(name, "service.phase", telemetry::TraceSink::kServicePid,
                    tid, ts, dur);
    ts += dur;
  }
}

AccessLog::~AccessLog() {
  if (file_) std::fclose(file_);
}

bool AccessLog::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_) std::fclose(file_);
  file_ = std::fopen(path.c_str(), "a");
  return file_ != nullptr;
}

void AccessLog::append(const RequestTrace& rt) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!file_) return;
  const std::string line = rt.to_json();
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void SlowLog::configure(std::int64_t threshold_us, std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_us_ = threshold_us;
  capacity_ = capacity == 0 ? 1 : capacity;
  entries_.clear();
}

void SlowLog::offer(const RequestTrace& rt) {
  if (threshold_us_ <= 0 || rt.total_us < threshold_us_) return;
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(rt);
  if (entries_.size() > capacity_) {
    auto fastest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const RequestTrace& a, const RequestTrace& b) {
          // The newest entry loses ties so long-lived offenders stick.
          return a.total_us != b.total_us ? a.total_us < b.total_us
                                          : a.request_id > b.request_id;
        });
    entries_.erase(fastest);
  }
}

std::vector<RequestTrace> SlowLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestTrace> out = entries_;
  std::sort(out.begin(), out.end(),
            [](const RequestTrace& a, const RequestTrace& b) {
              return a.total_us != b.total_us ? a.total_us > b.total_us
                                              : a.request_id < b.request_id;
            });
  return out;
}

}  // namespace msc::service
