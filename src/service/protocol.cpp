// Wire-format parsing and rendering for mscd (DESIGN.md §13). Validation
// is whitelist-based: every member of the request object must be a known
// field of the request's op, with the right JSON type and a sane range —
// anything else is a typed protocol error, so the fuzzer's mutated frames
// land in exactly two buckets (parse-error / protocol-error) instead of
// leaking half-validated requests into the workers.
#include "msc/service/protocol.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "msc/simd/machine.hpp"
#include "msc/support/str.hpp"

namespace msc::service {

namespace {

struct KindName {
  ErrorKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {ErrorKind::ParseError, "parse-error"},
    {ErrorKind::Protocol, "protocol-error"},
    {ErrorKind::FrameTooLarge, "frame-too-large"},
    {ErrorKind::Compile, "compile-error"},
    {ErrorKind::Explosion, "explosion"},
    {ErrorKind::Fault, "machine-fault"},
    {ErrorKind::Pipeline, "pipeline-error"},
    {ErrorKind::Quota, "quota-exceeded"},
    {ErrorKind::ShuttingDown, "shutting-down"},
    {ErrorKind::Internal, "internal-error"},
};

[[noreturn]] void bad(const std::string& message) {
  throw ProtocolError(message);
}

std::int64_t int_field(const json::Value& v, const std::string& key,
                       std::int64_t lo, std::int64_t hi) {
  if (!v.is_number() || !v.is_exact_int)
    bad(cat("field '", key, "' must be an integer"));
  const std::int64_t n = v.inum;
  if (n < lo || n > hi)
    bad(cat("field '", key, "' = ", n, " out of range [", lo, ", ", hi, "]"));
  return n;
}

bool bool_field(const json::Value& v, const std::string& key) {
  if (v.kind != json::Value::Kind::Bool)
    bad(cat("field '", key, "' must be a boolean"));
  return v.b;
}

const std::string& string_field(const json::Value& v, const std::string& key) {
  if (!v.is_string()) bad(cat("field '", key, "' must be a string"));
  return v.str;
}

}  // namespace

const char* to_string(ErrorKind kind) {
  for (const KindName& k : kKindNames)
    if (k.kind == kind) return k.name;
  return "internal-error";
}

ErrorKind parse_error_kind(const std::string& name) {
  for (const KindName& k : kKindNames)
    if (name == k.name) return k.kind;
  throw std::invalid_argument(cat("unknown error kind '", name, "'"));
}

const char* to_string(Op op) {
  switch (op) {
    case Op::Compile: return "compile";
    case Op::Run: return "run";
    case Op::Coschedule: return "coschedule";
    case Op::Stats: return "stats";
    case Op::Metrics: return "metrics";
    case Op::Slowlog: return "slowlog";
    case Op::Shutdown: return "shutdown";
  }
  return "stats";
}

void attribute_frame(const std::string& line, const json::ParseLimits& limits,
                     std::string* tenant, std::string* op) {
  json::Value doc;
  try {
    doc = json::parse(line, limits);
  } catch (const json::ParseError&) {
    return;  // malformed JSON carries no trustworthy labels
  }
  if (!doc.is_object()) return;
  if (const json::Value* t = doc.find("tenant"))
    if (t->is_string() && !t->str.empty() && t->str.size() <= 64)
      *tenant = t->str;
  if (const json::Value* o = doc.find("op"))
    if (o->is_string()) {
      static const char* kOps[] = {"compile", "run",     "coschedule",
                                   "stats",   "metrics", "slowlog",
                                   "shutdown"};
      for (const char* known : kOps)
        if (o->str == known) {
          *op = o->str;
          break;
        }
    }
}

Request parse_request(const std::string& line,
                      const json::ParseLimits& limits) {
  const json::Value doc = json::parse(line, limits);
  if (!doc.is_object()) bad("request must be a JSON object");

  const json::Value* opv = doc.find("op");
  if (!opv) bad("request is missing 'op'");
  const std::string& opname = string_field(*opv, "op");

  Request req;
  if (opname == "compile") req.op = Op::Compile;
  else if (opname == "run") req.op = Op::Run;
  else if (opname == "coschedule") req.op = Op::Coschedule;
  else if (opname == "stats") req.op = Op::Stats;
  else if (opname == "metrics") req.op = Op::Metrics;
  else if (opname == "slowlog") req.op = Op::Slowlog;
  else if (opname == "shutdown") req.op = Op::Shutdown;
  else bad(cat("unknown op '", opname, "'"));

  const bool compile_like = req.op == Op::Compile || req.op == Op::Run;
  bool have_source = false;

  for (const auto& [key, value] : doc.members) {
    if (key == "op") continue;
    if (key == "id") {
      if (value.is_string())
        req.id_json = cat("\"", json_escape(value.str), "\"");
      else if (value.is_number() && value.is_exact_int)
        req.id_json = std::to_string(value.inum);
      else
        bad("field 'id' must be an integer or a string");
      continue;
    }
    if (key == "tenant") {
      req.tenant = string_field(value, key);
      if (req.tenant.empty() || req.tenant.size() > 64)
        bad("field 'tenant' must be 1..64 characters");
      continue;
    }
    if (key == "trace") {
      req.trace = bool_field(value, key);
      continue;
    }

    if (compile_like && key == "source") {
      req.source = string_field(value, key);
      have_source = true;
      continue;
    }
    if (compile_like && key == "pipeline") {
      for (const std::string& name : split(string_field(value, key), ','))
        if (!name.empty()) req.pipeline.push_back(name);
      continue;
    }
    if (compile_like && key == "compress") {
      req.compress = bool_field(value, key);
      continue;
    }
    if (compile_like && key == "time_split") {
      req.time_split = bool_field(value, key);
      continue;
    }
    if (compile_like && key == "adaptive") {
      req.adaptive = bool_field(value, key);
      continue;
    }
    if (compile_like && key == "subsume") {
      req.subsume = bool_field(value, key);
      continue;
    }
    if (compile_like && key == "prune") {
      req.prune = bool_field(value, key);
      continue;
    }
    if (compile_like && key == "max_meta_states") {
      req.max_meta_states = static_cast<std::size_t>(
          int_field(value, key, 1, 10'000'000));
      continue;
    }

    if (req.op == Op::Run && key == "nprocs") {
      req.nprocs = int_field(value, key, 1, 65'536);
      continue;
    }
    if (req.op == Op::Run && key == "active") {
      req.initial_active = int_field(value, key, -1, 65'536);
      continue;
    }
    if ((req.op == Op::Run || req.op == Op::Coschedule) && key == "seed") {
      req.seed = static_cast<std::uint64_t>(
          int_field(value, key, 0, std::numeric_limits<std::int64_t>::max()));
      continue;
    }
    if ((req.op == Op::Run || req.op == Op::Coschedule) && key == "engine") {
      try {
        req.engine = simd::parse_engine(string_field(value, key));
      } catch (const std::invalid_argument& e) {
        bad(e.what());
      }
      continue;
    }
    if ((req.op == Op::Run || req.op == Op::Coschedule) && key == "simd_isa") {
      try {
        req.simd_isa = parse_simd_isa(string_field(value, key));
      } catch (const std::invalid_argument& e) {
        bad(e.what());
      }
      continue;
    }
    if (req.op == Op::Run && key == "reuse_halted_pes") {
      req.reuse_halted_pes = bool_field(value, key);
      continue;
    }
    if ((req.op == Op::Run || req.op == Op::Coschedule) && key == "profile") {
      req.profile = bool_field(value, key);
      continue;
    }
    if (req.op == Op::Run && key == "max_blocks") {
      req.max_blocks = int_field(value, key, 1, 1'000'000'000);
      continue;
    }

    if (req.op == Op::Coschedule && key == "programs") {
      if (!value.is_array()) bad("field 'programs' must be an array");
      if (value.elems.empty() || value.elems.size() > 16)
        bad("field 'programs' must hold 1..16 kernel specs");
      for (const json::Value& e : value.elems)
        req.programs.push_back(string_field(e, key));
      continue;
    }
    if (req.op == Op::Coschedule && key == "policy") {
      try {
        req.policy = simd::parse_copolicy(string_field(value, key));
      } catch (const std::invalid_argument& e) {
        bad(e.what());
      }
      continue;
    }
    if (req.op == Op::Coschedule && key == "quantum") {
      req.quantum = int_field(value, key, 1, 1'000'000);
      continue;
    }

    if (req.op == Op::Stats && key == "metrics") {
      req.metrics = bool_field(value, key);
      continue;
    }

    bad(cat("unknown field '", key, "' for op '", opname, "'"));
  }

  if (compile_like && !have_source)
    bad(cat("op '", opname, "' requires a 'source' field"));
  if (req.op == Op::Coschedule && req.programs.empty())
    bad("op 'coschedule' requires a 'programs' field");
  if (req.op == Op::Run && req.initial_active > req.nprocs)
    bad("field 'active' exceeds 'nprocs'");
  return req;
}

std::string ok_response(const Request& request, const std::string& payload) {
  std::string out = cat("{\"schema\": 1, \"op\": \"", to_string(request.op),
                        "\"");
  if (!request.id_json.empty()) out += cat(", \"id\": ", request.id_json);
  out += ", \"ok\": true";
  if (!payload.empty()) out += cat(", ", payload);
  out += "}";
  return out;
}

std::string error_response(const std::string& id_json, std::optional<Op> op,
                           ErrorKind kind, const std::string& message) {
  std::string out = "{\"schema\": 1";
  if (op) out += cat(", \"op\": \"", to_string(*op), "\"");
  if (!id_json.empty()) out += cat(", \"id\": ", id_json);
  out += cat(", \"ok\": false, \"error\": {\"kind\": \"", to_string(kind),
             "\", \"message\": \"", json_escape(message), "\"}}");
  return out;
}

}  // namespace msc::service
