// The mscd protocol engine (DESIGN.md §13). One frame in, one line out,
// no per-connection state: parse → admit → execute → render, with every
// toolchain exception folded into the typed error taxonomy. The payload
// documents are the exact strings the standalone toolchain emits —
// automaton.dump() (--emit meta), core::to_json (--trace-convert),
// simd::to_json (--trace-simd / --profile-simd, and the co-scheduled
// document) — so mscprof renders daemon responses unchanged and
// service_test can diff them against mscc byte for byte.
#include "msc/service/service.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "msc/core/convert.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/ir/exec.hpp"
#include "msc/kernels/verified.hpp"
#include "msc/pass/pass.hpp"
#include "msc/simd/coschedule.hpp"
#include "msc/simd/machine.hpp"
#include "msc/support/diag.hpp"
#include "msc/support/metrics.hpp"
#include "msc/support/str.hpp"

namespace msc::service {

namespace {

/// RAII pairing for AdmissionControl::try_admit's block charge.
struct BlockCharge {
  AdmissionControl& admission;
  std::string tenant;
  std::int64_t blocks;
  ~BlockCharge() { admission.release(tenant, blocks); }
};

driver::PipelineOptions pipeline_options(const Request& request) {
  driver::PipelineOptions popts;
  popts.convert.compress = request.compress;
  popts.convert.time_split = request.time_split;
  popts.convert.subsume = request.subsume;
  popts.convert.max_meta_states = request.max_meta_states;
  popts.adaptive = request.adaptive;
  popts.pipeline = request.pipeline;
  if (request.prune)
    popts.convert.barrier_mode = core::BarrierMode::PaperPrune;
  return popts;
}

mimd::RunConfig run_config(const Request& request) {
  mimd::RunConfig config;
  config.nprocs = request.nprocs;
  config.initial_active = request.initial_active;
  config.reuse_halted_pes = request.reuse_halted_pes;
  config.engine = request.engine;
  config.simd_isa = request.simd_isa;
  config.max_blocks = request.max_blocks;
  return config;
}

std::string quoted(const std::string& s) {
  return cat("\"", json_escape(s), "\"");
}

std::string string_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += quoted(items[i]);
  }
  return out + "]";
}

}  // namespace

Service::Service(const ServiceOptions& options)
    : options_(options), cache_(options.cache_capacity),
      admission_(options.quota) {}

std::string Service::handle_line(const std::string& line) {
  if (line.size() > options_.limits.max_frame_bytes) {
    ++requests_error_;
    return error_response(
        "", std::nullopt, ErrorKind::FrameTooLarge,
        cat("request frame of ", line.size(), " bytes exceeds the ",
            options_.limits.max_frame_bytes, "-byte limit"));
  }

  Request request;
  try {
    json::ParseLimits limits;
    limits.max_bytes = options_.limits.max_frame_bytes;
    limits.max_depth = options_.limits.max_json_depth;
    request = parse_request(line, limits);
  } catch (const ProtocolError& e) {
    ++requests_error_;
    return error_response("", std::nullopt, e.kind(), e.what());
  } catch (const json::ParseError& e) {
    ++requests_error_;
    return error_response("", std::nullopt, ErrorKind::ParseError, e.what());
  }

  if (shutdown_requested() && request.op != Op::Stats) {
    ++requests_error_;
    return error_response(request.id_json, request.op,
                          ErrorKind::ShuttingDown,
                          "daemon is shutting down");
  }

  std::string response = dispatch(request);
  return response;
}

std::string Service::dispatch(const Request& request) {
  // Admission: run requests charge their declared block budget; every
  // compile-like and coschedule request is screened against the tenant's
  // explosion quota. Stats and shutdown are never rejected — operators
  // must be able to observe and stop an overloaded daemon.
  std::int64_t charged = 0;
  if (request.op == Op::Run) charged = request.max_blocks;
  if (request.op == Op::Compile || request.op == Op::Run ||
      request.op == Op::Coschedule) {
    AdmissionControl::Decision d = admission_.try_admit(request.tenant,
                                                        charged);
    if (!d.ok) {
      ++requests_error_;
      return error_response(request.id_json, request.op, ErrorKind::Quota,
                            d.reason);
    }
  }
  BlockCharge charge{admission_, request.tenant, charged};

  try {
    std::string payload;
    switch (request.op) {
      case Op::Compile: payload = do_compile(request); break;
      case Op::Run: payload = do_run(request); break;
      case Op::Coschedule: payload = do_coschedule(request); break;
      case Op::Stats: payload = do_stats(request); break;
      case Op::Shutdown:
        shutdown_.store(true, std::memory_order_release);
        payload = "\"stopping\": true";
        break;
    }
    ++requests_ok_;
    return ok_response(request, payload);
  } catch (const CompileError& e) {
    ++requests_error_;
    return error_response(request.id_json, request.op, ErrorKind::Compile,
                          e.what());
  } catch (const core::ExplosionError& e) {
    // Strikes count whether the conversion ran here or the error was
    // replayed from the cache: the quota meters tenant behavior, not CPU.
    admission_.record_explosion(request.tenant);
    ++requests_error_;
    return error_response(request.id_json, request.op, ErrorKind::Explosion,
                          e.what());
  } catch (const ir::MachineFault& e) {
    ++requests_error_;
    return error_response(request.id_json, request.op, ErrorKind::Fault,
                          e.what());
  } catch (const pass::PipelineError& e) {
    ++requests_error_;
    return error_response(request.id_json, request.op, ErrorKind::Pipeline,
                          e.what());
  } catch (const std::exception& e) {
    ++requests_error_;
    return error_response(request.id_json, request.op, ErrorKind::Internal,
                          e.what());
  }
}

std::shared_ptr<const CachedConversion> Service::convert_cached(
    const Request& request, const std::string& source, bool* hit) {
  driver::PipelineOptions popts = pipeline_options(request);
  // Canonicalize exactly as mscc does for --run: resolve the pass list,
  // then append codegen so run requests can share the compile's entry.
  if (popts.pipeline.empty()) popts.pipeline = driver::resolve_pipeline(popts);
  if (std::find(popts.pipeline.begin(), popts.pipeline.end(), "codegen") ==
      popts.pipeline.end())
    popts.pipeline.push_back("codegen");

  const std::string key = conversion_cache_key(
      source, popts.pipeline, request.adaptive, request.prune,
      request.max_meta_states);
  bool miss = false;
  auto cached = cache_.get_or_compute(key, [&] {
    miss = true;
    ir::CostModel cost;
    auto value = std::make_shared<CachedConversion>();
    value->converted = driver::convert(source, cost, popts);
    value->pipeline = popts.pipeline;
    return std::shared_ptr<const CachedConversion>(std::move(value));
  });
  if (hit) *hit = !miss;
  return cached;
}

std::string Service::do_compile(const Request& request) {
  bool hit = false;
  auto cached = convert_cached(request, request.source, &hit);
  const core::ConvertResult& conv = cached->converted.conversion;
  return cat("\"pipeline\": ", string_array(cached->pipeline),
             ", \"cache\": ", quoted(hit ? "hit" : "miss"),
             ", \"meta_states\": ", conv.automaton.num_states(),
             ", \"automaton\": ", quoted(conv.automaton.dump()),
             ", \"stats\": ", quoted(core::to_json(conv.stats)));
}

std::string Service::do_run(const Request& request) {
  bool hit = false;
  auto cached = convert_cached(request, request.source, &hit);
  const driver::Converted& converted = cached->converted;

  const mimd::RunConfig config = run_config(request);
  ir::CostModel cost;
  // The cached SimdProgram is immutable; each run builds its own machine
  // over it, so concurrent runs of one program never share mutable state.
  auto machine = simd::make_machine(*converted.prog, cost, config);
  driver::seed_machine(*machine, converted.compiled, config, request.seed);
  if (request.profile) machine->enable_profiling();
  machine->run();

  const driver::Observed observed =
      driver::observe_simd(*machine, converted.compiled, config);
  return cat("\"pipeline\": ", string_array(cached->pipeline),
             ", \"cache\": ", quoted(hit ? "hit" : "miss"),
             ", \"engine\": ", quoted(simd::engine_name(config.engine)),
             ", \"observed\": ", quoted(observed.to_string()),
             ", \"simd\": ", quoted(simd::to_json(*machine)));
}

std::string Service::do_coschedule(const Request& request) {
  // Mirrors mscc's run_coschedule: each kernel's conversion goes through
  // the shared cache (identical kernel mixes across tenants compile
  // once), then fresh machines time-share one simulated array.
  std::vector<std::shared_ptr<const CachedConversion>> converted;
  std::vector<kernels::VerifiedCase> cases;
  std::vector<mimd::RunConfig> configs;
  simd::CoScheduler cs;
  ir::CostModel cost;
  for (const std::string& spec : request.programs) {
    kernels::VerifiedParams params;
    params.input_seed = request.seed;
    kernels::VerifiedCase c = kernels::parse_case(spec, params);
    auto cached = convert_cached(request, c.source, nullptr);

    mimd::RunConfig config = run_config(request);
    config.nprocs = c.config.nprocs;
    config.initial_active = c.config.initial_active;
    config.reuse_halted_pes = c.config.reuse_halted_pes;
    auto machine = simd::make_machine(*cached->converted.prog, cost, config);
    driver::seed_machine(*machine, cached->converted.compiled, config,
                         request.seed);
    if (request.profile) machine->enable_profiling();
    cs.add_program(spec, std::move(machine));
    converted.push_back(std::move(cached));
    cases.push_back(std::move(c));
    configs.push_back(config);
  }

  simd::CoOptions co;
  co.policy = request.policy;
  co.quantum = request.quantum;
  co.seed = request.seed;
  const simd::CoResult r = cs.run(co);

  std::vector<std::string> verdicts;
  for (std::size_t i = 0; i < r.programs.size(); ++i) {
    const driver::Observed obs = driver::observe_simd(
        cs.machine(i), converted[i]->converted.compiled, configs[i]);
    const std::string verdict = kernels::check(cases[i], obs);
    verdicts.push_back(verdict.empty() ? "ok" : verdict);
  }

  return cat("\"policy\": ", quoted(simd::copolicy_name(r.policy)),
             ", \"quantum\": ", r.quantum,
             ", \"machine_pes\": ", r.machine_pes,
             ", \"verdicts\": ", string_array(verdicts),
             ", \"cosched\": ", quoted(simd::to_json(r)));
}

std::string Service::do_stats(const Request& request) {
  const ConversionCache::Stats cs = cache_.stats();
  std::string out = cat(
      "\"service\": {\"requests\": {\"ok\": ", requests_ok_.load(),
      ", \"error\": ", requests_error_.load(),
      "}, \"cache\": {\"hits\": ", cs.hits, ", \"misses\": ", cs.misses,
      ", \"inflight_waits\": ", cs.inflight_waits,
      ", \"evictions\": ", cs.evictions, ", \"entries\": ", cs.entries,
      "}, \"quota\": {\"block_budget\": ", admission_.quota().block_budget,
      ", \"explosion_quota\": ", admission_.quota().explosion_quota,
      "}, \"tenants\": [");
  const std::vector<TenantStats> tenants = admission_.stats();
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantStats& t = tenants[i];
    if (i) out += ", ";
    out += cat("{\"tenant\": ", quoted(t.tenant),
               ", \"inflight_blocks\": ", t.inflight_blocks,
               ", \"explosions\": ", t.explosions,
               ", \"admitted\": ", t.admitted,
               ", \"rejected\": ", t.rejected, "}");
  }
  out += "]}";
  if (request.metrics)
    out += cat(", \"metrics\": ",
               quoted(telemetry::MetricsRegistry::global().to_json()));
  return out;
}

}  // namespace msc::service
