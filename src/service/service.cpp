// The mscd protocol engine (DESIGN.md §13, §15). One frame in, one line
// out, no per-connection state: parse → admit → execute → render, with
// every toolchain exception folded into the typed error taxonomy. The
// payload documents are the exact strings the standalone toolchain emits —
// automaton.dump() (--emit meta), core::to_json (--trace-convert),
// simd::to_json (--trace-simd / --profile-simd, and the co-scheduled
// document) — so mscprof renders daemon responses unchanged and
// service_test can diff them against mscc byte for byte.
//
// Every request carries a RequestTrace through the handler; finish() is
// the single commit point for the global outcome counters, the labeled
// {tenant, op} families, the access log, and the slowlog, which is what
// makes the per-tenant-sums-equal-globals invariant hold under any worker
// interleaving.
#include "msc/service/service.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "msc/core/convert.hpp"
#include "msc/driver/pipeline.hpp"
#include "msc/driver/runner.hpp"
#include "msc/ir/exec.hpp"
#include "msc/kernels/verified.hpp"
#include "msc/pass/pass.hpp"
#include "msc/simd/coschedule.hpp"
#include "msc/simd/machine.hpp"
#include "msc/support/diag.hpp"
#include "msc/support/str.hpp"

namespace msc::service {

namespace {

/// RAII pairing for AdmissionControl::try_admit's block charge.
struct BlockCharge {
  AdmissionControl& admission;
  std::string tenant;
  std::int64_t blocks;
  ~BlockCharge() { admission.release(tenant, blocks); }
};

driver::PipelineOptions pipeline_options(const Request& request) {
  driver::PipelineOptions popts;
  popts.convert.compress = request.compress;
  popts.convert.time_split = request.time_split;
  popts.convert.subsume = request.subsume;
  popts.convert.max_meta_states = request.max_meta_states;
  popts.adaptive = request.adaptive;
  popts.pipeline = request.pipeline;
  if (request.prune)
    popts.convert.barrier_mode = core::BarrierMode::PaperPrune;
  return popts;
}

mimd::RunConfig run_config(const Request& request) {
  mimd::RunConfig config;
  config.nprocs = request.nprocs;
  config.initial_active = request.initial_active;
  config.reuse_halted_pes = request.reuse_halted_pes;
  config.engine = request.engine;
  config.simd_isa = request.simd_isa;
  config.max_blocks = request.max_blocks;
  return config;
}

std::string quoted(const std::string& s) {
  return cat("\"", json_escape(s), "\"");
}

std::string string_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += quoted(items[i]);
  }
  return out + "]";
}

const char* cache_state_name(ConversionCache::Outcome outcome) {
  switch (outcome) {
    case ConversionCache::Outcome::Hit: return "hit";
    case ConversionCache::Outcome::Miss: return "miss";
    case ConversionCache::Outcome::InflightWait: return "inflight-wait";
  }
  return "none";
}

/// cache_state severity order for multi-conversion (coschedule) requests:
/// a single miss marks the whole request a miss.
int cache_state_rank(const std::string& state) {
  if (state == "miss") return 3;
  if (state == "inflight-wait") return 2;
  if (state == "hit") return 1;
  return 0;
}

void merge_cache_state(RequestTrace& rt, const std::string& state) {
  if (cache_state_rank(state) > cache_state_rank(rt.cache_state))
    rt.cache_state = state;
}

/// Latency histogram edges (µs): fixed so p50/p95/p99 are derivable from
/// bucket counts by any scraper without configuration.
const std::vector<std::int64_t>& latency_bounds() {
  static const std::vector<std::int64_t> bounds{
      50,     100,    200,    500,     1000,    2000,    5000,
      10'000, 20'000, 50'000, 100'000, 200'000, 500'000, 1'000'000};
  return bounds;
}

}  // namespace

Service::Service(const ServiceOptions& options)
    : options_(options), cache_(options.cache_capacity),
      admission_(options.quota),
      labeled_(options.observability.max_label_series),
      epoch_(std::chrono::steady_clock::now()) {
  const ObservabilityOptions& obs = options_.observability;
  if (!obs.access_log_path.empty() && !access_log_.open(obs.access_log_path))
    throw std::runtime_error(
        cat("cannot open access log '", obs.access_log_path, "'"));
  if (obs.slow_micros > 0)
    slowlog_.configure(obs.slow_micros, obs.slowlog_capacity);
}

std::int64_t Service::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::string Service::handle_line(const std::string& line) {
  RequestTrace rt;
  std::string response = handle_line(line, rt);
  rt.bytes_out = static_cast<std::int64_t>(response.size());
  finish(rt);
  return response;
}

std::string Service::handle_line(const std::string& line, RequestTrace& rt) {
  if (rt.request_id == 0) rt.request_id = next_request_id();
  rt.start_us = now_us();
  rt.bytes_in = static_cast<std::int64_t>(line.size());
  if (rt.accepted_us > 0)
    rt.phases.accept = std::max<std::int64_t>(0, rt.start_us - rt.accepted_us);

  std::string response;
  bool parsed = false;
  Request request;
  if (line.size() > options_.limits.max_frame_bytes) {
    response = fail(rt, "", std::nullopt, ErrorKind::FrameTooLarge,
                    cat("request frame of ", line.size(), " bytes exceeds the ",
                        options_.limits.max_frame_bytes, "-byte limit"));
  } else {
    json::ParseLimits limits;
    limits.max_bytes = options_.limits.max_frame_bytes;
    limits.max_depth = options_.limits.max_json_depth;
    try {
      request = parse_request(line, limits);
      parsed = true;
    } catch (const ProtocolError& e) {
      // The frame is valid JSON that failed validation: attribute its
      // error to the tenant/op it names where that is safe, so one
      // misbehaving client doesn't pollute the "unknown" series.
      attribute_frame(line, limits, &rt.tenant, &rt.op);
      response = fail(rt, "", std::nullopt, e.kind(), e.what());
    } catch (const json::ParseError& e) {
      response = fail(rt, "", std::nullopt, ErrorKind::ParseError, e.what());
    }
    rt.phases.parse = now_us() - rt.start_us;
  }

  if (parsed) {
    rt.tenant = request.tenant;
    rt.op = to_string(request.op);
    rt.wanted = request.trace;
    // Observability ops stay serviceable during shutdown — operators must
    // be able to inspect a daemon that is draining.
    const bool observability_op = request.op == Op::Stats ||
                                  request.op == Op::Metrics ||
                                  request.op == Op::Slowlog;
    if (shutdown_requested() && !observability_op)
      response = fail(rt, request.id_json, request.op,
                      ErrorKind::ShuttingDown, "daemon is shutting down");
    else
      response = dispatch(request, rt);
  }

  // serialize is the handler remainder: total in-handler time minus every
  // attributed phase, so the phase durations sum to the handler time.
  const std::int64_t in_handler = now_us() - rt.start_us;
  const std::int64_t attributed = rt.phases.parse + rt.phases.admission +
                                  rt.phases.cache + rt.phases.convert +
                                  rt.phases.run;
  rt.phases.serialize = std::max<std::int64_t>(0, in_handler - attributed);

  if (rt.wanted) {
    // Attach the trace as the response's last member. It is rendered
    // before the socket write, so the embedded view carries no write
    // phase and bytes_out counts the payload before this member; the
    // committed access-log line has the final numbers.
    rt.bytes_out = static_cast<std::int64_t>(response.size());
    rt.total_us = rt.phases.accept + in_handler;
    response.insert(response.size() - 1,
                    cat(", \"trace\": ", quoted(rt.to_json())));
  }
  return response;
}

void Service::finish(RequestTrace& rt) {
  const std::int64_t base = rt.accepted_us > 0 ? rt.accepted_us : rt.start_us;
  rt.total_us = std::max<std::int64_t>(0, now_us() - base);

  const bool ok = rt.outcome == "ok";
  if (ok)
    ++requests_ok_;
  else
    ++requests_error_;
  labeled_.counter("requests", rt.tenant, rt.op).add();
  if (!ok)
    labeled_.counter(cat("errors.", rt.error_kind), rt.tenant, rt.op).add();
  if (rt.error_kind == to_string(ErrorKind::Quota))
    labeled_.counter("admission_rejections", rt.tenant, rt.op).add();
  if (rt.cache_state != "none")
    labeled_.counter(cat("cache.", rt.cache_state), rt.tenant, rt.op).add();
  labeled_.counter("bytes_in", rt.tenant, rt.op).add(rt.bytes_in);
  labeled_.counter("bytes_out", rt.tenant, rt.op).add(rt.bytes_out);
  labeled_.histogram("latency_us", latency_bounds(), rt.tenant, rt.op)
      .record(rt.total_us);

  access_log_.append(rt);
  slowlog_.offer(rt);
}

std::string Service::fail(RequestTrace& rt, const std::string& id_json,
                          std::optional<Op> op, ErrorKind kind,
                          const std::string& message) {
  rt.outcome = "error";
  rt.error_kind = to_string(kind);
  return error_response(id_json, op, kind, message);
}

std::string Service::dispatch(const Request& request, RequestTrace& rt) {
  // Admission: run requests charge their declared block budget; every
  // compile-like and coschedule request is screened against the tenant's
  // explosion quota. Stats, metrics, slowlog and shutdown are never
  // rejected — operators must be able to observe and stop an overloaded
  // daemon.
  std::int64_t charged = 0;
  if (request.op == Op::Run) charged = request.max_blocks;
  if (request.op == Op::Compile || request.op == Op::Run ||
      request.op == Op::Coschedule) {
    const std::int64_t t0 = now_us();
    AdmissionControl::Decision d = admission_.try_admit(request.tenant,
                                                        charged);
    rt.phases.admission = now_us() - t0;
    if (!d.ok)
      return fail(rt, request.id_json, request.op, ErrorKind::Quota,
                  d.reason);
  }
  BlockCharge charge{admission_, request.tenant, charged};

  try {
    std::string payload;
    switch (request.op) {
      case Op::Compile: payload = do_compile(request, rt); break;
      case Op::Run: payload = do_run(request, rt); break;
      case Op::Coschedule: payload = do_coschedule(request, rt); break;
      case Op::Stats: payload = do_stats(request); break;
      case Op::Metrics: payload = do_metrics(request); break;
      case Op::Slowlog: payload = do_slowlog(request); break;
      case Op::Shutdown:
        shutdown_.store(true, std::memory_order_release);
        payload = "\"stopping\": true";
        break;
    }
    return ok_response(request, payload);
  } catch (const CompileError& e) {
    return fail(rt, request.id_json, request.op, ErrorKind::Compile,
                e.what());
  } catch (const core::ExplosionError& e) {
    // Strikes count whether the conversion ran here or the error was
    // replayed from the cache: the quota meters tenant behavior, not CPU.
    admission_.record_explosion(request.tenant);
    return fail(rt, request.id_json, request.op, ErrorKind::Explosion,
                e.what());
  } catch (const ir::MachineFault& e) {
    return fail(rt, request.id_json, request.op, ErrorKind::Fault, e.what());
  } catch (const pass::PipelineError& e) {
    return fail(rt, request.id_json, request.op, ErrorKind::Pipeline,
                e.what());
  } catch (const std::exception& e) {
    return fail(rt, request.id_json, request.op, ErrorKind::Internal,
                e.what());
  }
}

std::shared_ptr<const CachedConversion> Service::convert_cached(
    const Request& request, const std::string& source, RequestTrace& rt) {
  driver::PipelineOptions popts = pipeline_options(request);
  // Canonicalize exactly as mscc does for --run: resolve the pass list,
  // then append codegen so run requests can share the compile's entry.
  if (popts.pipeline.empty()) popts.pipeline = driver::resolve_pipeline(popts);
  if (std::find(popts.pipeline.begin(), popts.pipeline.end(), "codegen") ==
      popts.pipeline.end())
    popts.pipeline.push_back("codegen");

  const std::string key = conversion_cache_key(
      source, popts.pipeline, request.adaptive, request.prune,
      request.max_meta_states);
  const std::int64_t t0 = now_us();
  std::int64_t convert_us = 0;
  ConversionCache::Outcome outcome = ConversionCache::Outcome::Hit;
  // Phase accounting must survive the throw paths (compile errors and
  // explosions are part of the taxonomy, not exceptional flows).
  auto note = [&] {
    rt.phases.convert += convert_us;
    rt.phases.cache +=
        std::max<std::int64_t>(0, (now_us() - t0) - convert_us);
    merge_cache_state(rt, cache_state_name(outcome));
  };
  auto compute = [&]() -> std::shared_ptr<const CachedConversion> {
    const std::int64_t c0 = now_us();
    try {
      ir::CostModel cost;
      auto value = std::make_shared<CachedConversion>();
      value->converted = driver::convert(source, cost, popts);
      value->pipeline = popts.pipeline;
      convert_us = now_us() - c0;
      return std::shared_ptr<const CachedConversion>(std::move(value));
    } catch (...) {
      convert_us = now_us() - c0;
      throw;
    }
  };
  try {
    auto cached = cache_.get_or_compute(key, compute, &outcome);
    note();
    return cached;
  } catch (...) {
    note();
    throw;
  }
}

std::string Service::do_compile(const Request& request, RequestTrace& rt) {
  auto cached = convert_cached(request, request.source, rt);
  const core::ConvertResult& conv = cached->converted.conversion;
  return cat("\"pipeline\": ", string_array(cached->pipeline),
             ", \"cache\": ", quoted(rt.cache_state),
             ", \"meta_states\": ", conv.automaton.num_states(),
             ", \"automaton\": ", quoted(conv.automaton.dump()),
             ", \"stats\": ", quoted(core::to_json(conv.stats)));
}

std::string Service::do_run(const Request& request, RequestTrace& rt) {
  auto cached = convert_cached(request, request.source, rt);
  const driver::Converted& converted = cached->converted;

  const std::int64_t r0 = now_us();
  const mimd::RunConfig config = run_config(request);
  ir::CostModel cost;
  // The cached SimdProgram is immutable; each run builds its own machine
  // over it, so concurrent runs of one program never share mutable state.
  auto machine = simd::make_machine(*converted.prog, cost, config);
  driver::seed_machine(*machine, converted.compiled, config, request.seed);
  if (request.profile) machine->enable_profiling();
  machine->run();

  const driver::Observed observed =
      driver::observe_simd(*machine, converted.compiled, config);
  rt.phases.run += now_us() - r0;
  return cat("\"pipeline\": ", string_array(cached->pipeline),
             ", \"cache\": ", quoted(rt.cache_state),
             ", \"engine\": ", quoted(simd::engine_name(config.engine)),
             ", \"observed\": ", quoted(observed.to_string()),
             ", \"simd\": ", quoted(simd::to_json(*machine)));
}

std::string Service::do_coschedule(const Request& request, RequestTrace& rt) {
  // Mirrors mscc's run_coschedule: each kernel's conversion goes through
  // the shared cache (identical kernel mixes across tenants compile
  // once), then fresh machines time-share one simulated array.
  std::vector<std::shared_ptr<const CachedConversion>> converted;
  std::vector<kernels::VerifiedCase> cases;
  std::vector<mimd::RunConfig> configs;
  simd::CoScheduler cs;
  ir::CostModel cost;
  for (const std::string& spec : request.programs) {
    kernels::VerifiedParams params;
    params.input_seed = request.seed;
    kernels::VerifiedCase c = kernels::parse_case(spec, params);
    auto cached = convert_cached(request, c.source, rt);

    mimd::RunConfig config = run_config(request);
    config.nprocs = c.config.nprocs;
    config.initial_active = c.config.initial_active;
    config.reuse_halted_pes = c.config.reuse_halted_pes;
    auto machine = simd::make_machine(*cached->converted.prog, cost, config);
    driver::seed_machine(*machine, cached->converted.compiled, config,
                         request.seed);
    if (request.profile) machine->enable_profiling();
    cs.add_program(spec, std::move(machine));
    converted.push_back(std::move(cached));
    cases.push_back(std::move(c));
    configs.push_back(config);
  }

  const std::int64_t r0 = now_us();
  simd::CoOptions co;
  co.policy = request.policy;
  co.quantum = request.quantum;
  co.seed = request.seed;
  const simd::CoResult r = cs.run(co);

  std::vector<std::string> verdicts;
  for (std::size_t i = 0; i < r.programs.size(); ++i) {
    const driver::Observed obs = driver::observe_simd(
        cs.machine(i), converted[i]->converted.compiled, configs[i]);
    const std::string verdict = kernels::check(cases[i], obs);
    verdicts.push_back(verdict.empty() ? "ok" : verdict);
  }
  rt.phases.run += now_us() - r0;

  return cat("\"policy\": ", quoted(simd::copolicy_name(r.policy)),
             ", \"quantum\": ", r.quantum,
             ", \"machine_pes\": ", r.machine_pes,
             ", \"verdicts\": ", string_array(verdicts),
             ", \"cosched\": ", quoted(simd::to_json(r)));
}

std::string Service::do_stats(const Request& request) {
  const ConversionCache::Stats cs = cache_.stats();
  std::string out = cat(
      "\"uptime_micros\": ", now_us(),
      ", \"service\": {\"requests\": {\"ok\": ", requests_ok_.load(),
      ", \"error\": ", requests_error_.load(),
      "}, \"cache\": {\"hits\": ", cs.hits, ", \"misses\": ", cs.misses,
      ", \"inflight_waits\": ", cs.inflight_waits,
      ", \"evictions\": ", cs.evictions, ", \"entries\": ", cs.entries,
      "}, \"quota\": {\"block_budget\": ", admission_.quota().block_budget,
      ", \"explosion_quota\": ", admission_.quota().explosion_quota,
      "}, \"tenants\": [");
  const std::vector<TenantStats> tenants = admission_.stats();
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantStats& t = tenants[i];
    if (i) out += ", ";
    out += cat("{\"tenant\": ", quoted(t.tenant),
               ", \"inflight_blocks\": ", t.inflight_blocks,
               ", \"explosions\": ", t.explosions,
               ", \"admitted\": ", t.admitted,
               ", \"rejected\": ", t.rejected, "}");
  }
  out += "]";
  if (daemon_info_) {
    const DaemonInfo d = daemon_info_();
    out += cat(", \"daemon\": {\"workers\": ", d.workers,
               ", \"queue_depth\": ", d.queue_depth,
               ", \"connections_accepted\": ", d.connections_accepted,
               ", \"connections_active\": ", d.connections_active, "}");
  }
  out += "}";
  if (request.metrics)
    out += cat(", \"metrics\": ",
               quoted(telemetry::MetricsRegistry::global().to_json()));
  return out;
}

std::string Service::metrics_json() const {
  return labeled_.to_json(
      cat("\"uptime_micros\": ", now_us(),
          ", \"requests\": {\"ok\": ", requests_ok_.load(),
          ", \"error\": ", requests_error_.load(), "}"));
}

std::string Service::do_metrics(const Request&) {
  // Embedded as a JSON-escaped string like every other payload document,
  // so the response stays one line and mscli --emit metrics recovers the
  // pretty schema-2 document.
  return cat("\"metrics\": ", quoted(metrics_json()));
}

std::string Service::do_slowlog(const Request&) {
  const std::vector<RequestTrace> entries = slowlog_.snapshot();
  std::string arr = "[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i) arr += ", ";
    arr += entries[i].to_json();
  }
  arr += "]";
  return cat("\"threshold_micros\": ", slowlog_.threshold_us(),
             ", \"count\": ", entries.size(), ", \"slowlog\": ", arr);
}

}  // namespace msc::service
