#include <sstream>

#include "msc/codegen/program.hpp"
#include "msc/support/str.hpp"

namespace msc::codegen {

namespace {

std::string meta_name(const DynBitset& members) {
  std::string n = "ms";
  for (std::size_t b : members.bits()) n += cat("_", b);
  return n;
}

std::string guard_expr(const DynBitset& guard) {
  std::vector<std::string> bits;
  for (std::size_t b : guard.bits()) bits.push_back(cat("BIT(", b, ")"));
  if (bits.size() == 1) return cat("pc & ", bits[0]);
  return cat("pc & (", join(bits, " | "), ")");
}

std::string sop_text(const SOp& op) {
  switch (op.kind) {
    case SOpKind::Data:
      return op.instr.to_string();
    case SOpKind::SetPc:
      return cat("Jump(", op.a, ")");
    case SOpKind::CondSetPc:
      return cat("JumpF(", op.b, ",", op.a, ")");  // (FALSE, TRUE) as in Listing 5
    case SOpKind::HaltPc:
      return "Ret";
    case SOpKind::SpawnPc:
      return cat("Spawn(", op.a, ")");
  }
  return "?";
}

}  // namespace

std::string to_mpl(const SimdProgram& program, const ir::StateGraph& graph) {
  (void)graph;
  std::ostringstream os;
  os << "/* meta-state SIMD automaton, MPL-style (cf. paper Listing 5) */\n";
  for (const MetaCode& mc : program.states) {
    os << meta_name(mc.members) << ":\n";
    // Group consecutive ops under one enable-mask `if`, like Listing 5.
    std::size_t i = 0;
    while (i < mc.code.size()) {
      std::size_t j = i;
      while (j < mc.code.size() && mc.code[j].guard == mc.code[i].guard) ++j;
      os << "  if (" << guard_expr(mc.code[i].guard) << ") {\n    ";
      for (std::size_t k = i; k < j; ++k) {
        os << sop_text(mc.code[k]);
        os << (((k - i) % 4 == 3 && k + 1 < j) ? "\n    " : " ");
      }
      os << "\n  }\n";
      i = j;
    }
    switch (mc.trans) {
      case TransKind::Exit:
        os << "  /* no next meta state */\n  exit(0);\n";
        break;
      case TransKind::Direct:
        if (mc.needs_apc)
          os << "  if (!globalor(pc != NOWHERE)) exit(0);\n";
        if (mc.fallthrough)
          os << "  /* fall through to "
             << meta_name(program.states[mc.direct_target].members) << " */\n";
        else
          os << "  goto " << meta_name(program.states[mc.direct_target].members)
             << ";\n";
        break;
      case TransKind::Multiway: {
        os << "  apc = globalor(pc);\n";
        if (!mc.sw.is_linear()) {
          os << "  switch (" << mc.sw.fn.render("apc") << ") {\n";
          for (std::size_t c = 0; c < mc.case_targets.size(); ++c) {
            std::uint64_t v = mc.sw.fn.eval(mc.case_keys[c].fold64());
            os << "  case " << v << ": goto "
               << meta_name(program.states[mc.case_targets[c]].members) << ";\n";
          }
          if (mc.fallback != core::kNoMeta)
            os << "  default: goto "
               << meta_name(program.states[mc.fallback].members) << ";\n";
          os << "  }\n";
        } else {
          for (std::size_t c = 0; c < mc.case_targets.size(); ++c)
            os << "  if (apc == " << mc.case_keys[c].fold64() << "ull) goto "
               << meta_name(program.states[mc.case_targets[c]].members) << ";\n";
          if (mc.fallback != core::kNoMeta)
            os << "  goto " << meta_name(program.states[mc.fallback].members)
               << ";\n";
        }
        break;
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace msc::codegen
