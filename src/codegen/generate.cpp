#include <set>

#include "msc/codegen/program.hpp"
#include "msc/support/str.hpp"

namespace msc::codegen {

using core::kNoMeta;
using core::MetaAutomaton;
using core::MetaId;
using core::MetaState;
using ir::Block;
using ir::ExitKind;
using ir::StateGraph;
using ir::StateId;

DynBitset SimdProgram::transition_key(const DynBitset& apc) const {
  if (barrier_mode == core::BarrierMode::TrackOccupancy || barriers.empty())
    return apc;
  if (apc.is_subset_of(barriers)) return apc;
  return apc - barriers;
}

std::int64_t SimdProgram::transition_cost(const MetaCode& mc,
                                          const ir::CostModel& cost) const {
  switch (mc.trans) {
    case TransKind::Exit:
      return cost.halt;
    case TransKind::Direct:
      return (mc.fallthrough ? 0 : cost.jump) +
             (mc.needs_apc ? cost.global_or : 0);
    case TransKind::Multiway: {
      std::int64_t dispatch =
          mc.sw.is_linear()
              ? cost.case_test *
                    static_cast<std::int64_t>((mc.case_targets.size() + 1) / 2)
              : cost.hash_dispatch;
      return cost.global_or + dispatch + cost.jump;
    }
  }
  return 0;
}

namespace {

class Generator {
 public:
  Generator(const MetaAutomaton& aut, const StateGraph& graph,
            const ir::CostModel& cost, const CodegenOptions& opts)
      : aut_(aut), graph_(graph), cost_(cost), opts_(opts) {}

  SimdProgram run() {
    SimdProgram prog;
    prog.start = aut_.start;
    prog.barriers = aut_.barriers;
    prog.barrier_mode = aut_.barrier_mode;
    prog.compressed = aut_.compressed;
    prog.mimd_states = graph_.size();
    prog.index = aut_.index;
    prog.states.reserve(aut_.states.size());
    for (const MetaState& ms : aut_.states) {
      MetaCode mc = gen_state(ms);
      finalize_guards(mc);
      prog.states.push_back(std::move(mc));
    }
    // §4.2 straightening laid direct chains out consecutively; mark the
    // transitions that became fall-throughs.
    for (MetaCode& mc : prog.states)
      if (mc.trans == TransKind::Direct && mc.direct_target == mc.id + 1)
        mc.fallthrough = true;
    return prog;
  }

 private:
  static void finalize_guards(MetaCode& mc) {
    const DynBitset* prev = nullptr;
    for (SOp& op : mc.code) {
      op.guard_states.clear();
      for (std::size_t s : op.guard.bits())
        op.guard_states.push_back(static_cast<StateId>(s));
      op.new_guard = !prev || !(*prev == op.guard);
      prev = &op.guard;
    }
  }

  MetaCode gen_state(const MetaState& ms) {
    MetaCode mc;
    mc.id = ms.id;
    mc.members = ms.members;

    const bool all_barrier =
        !aut_.barriers.empty() && ms.members.is_subset_of(aut_.barriers);

    // ---- body: common subexpression induction over member threads (§3.1)
    std::vector<csi::Thread> threads;
    for (std::size_t s : ms.members.bits()) {
      const Block& b = graph_.at(static_cast<StateId>(s));
      if (b.barrier_wait && !all_barrier) continue;  // stalled: executes nothing
      if (b.body.empty()) continue;
      threads.push_back({s, &b.body});
    }
    csi::CsiOptions copts;
    copts.algorithm =
        opts_.use_csi ? opts_.csi_algorithm : csi::Algorithm::Serialize;
    copts.guard_bits = graph_.size();
    csi::CsiResult induced = csi::induce(threads, cost_, copts);
    mc.serialized_cost = induced.serialized_cost;
    mc.induced_cost = induced.induced_cost;
    mc.csi_lower_bound = induced.lower_bound;
    for (csi::GuardedOp& op : induced.schedule) {
      SOp s;
      s.kind = SOpKind::Data;
      s.guard = std::move(op.guard);
      s.instr = op.instr;
      mc.code.push_back(std::move(s));
    }

    // ---- per-member exits (the multiway branch inputs, §3.2)
    bool any_halt = false;
    for (std::size_t m : ms.members.bits()) {
      const Block& b = graph_.at(static_cast<StateId>(m));
      if (b.barrier_wait && !all_barrier) continue;  // waiting PEs keep pc
      SOp s;
      s.guard = DynBitset(graph_.size());
      s.guard.set(m);
      switch (b.exit) {
        case ExitKind::Halt:
          s.kind = SOpKind::HaltPc;
          any_halt = true;
          break;
        case ExitKind::Jump:
          s.kind = SOpKind::SetPc;
          s.a = b.target;
          break;
        case ExitKind::Branch:
          s.kind = SOpKind::CondSetPc;
          s.a = b.target;
          s.b = b.alt;
          break;
        case ExitKind::Spawn:
          s.kind = SOpKind::SpawnPc;
          s.a = b.target;
          s.b = b.alt;
          break;
      }
      mc.code.push_back(std::move(s));
    }

    // ---- transition encoding (§3.2.1–3.2.4)
    mc.fallback = ms.unconditional;
    if (ms.arcs.empty() && ms.unconditional == kNoMeta) {
      mc.trans = TransKind::Exit;
      mc.needs_apc = false;
      return mc;
    }
    if (ms.arcs.empty()) {
      mc.trans = TransKind::Direct;
      mc.direct_target = ms.unconditional;
      mc.needs_apc = any_halt;  // must notice "everyone finished"
      return mc;
    }
    if (ms.arcs.size() == 1 && ms.unconditional == kNoMeta && !any_halt) {
      // Deterministic single successor: plain goto, no global-or needed.
      mc.trans = TransKind::Direct;
      mc.direct_target = ms.arcs[0].second;
      mc.needs_apc = false;
      return mc;
    }
    mc.trans = TransKind::Multiway;
    mc.needs_apc = true;
    std::vector<std::uint64_t> folds;
    std::set<std::uint64_t> distinct;
    for (const auto& [key, target] : ms.arcs) {
      mc.case_keys.push_back(key);
      mc.case_targets.push_back(target);
      std::uint64_t f = key.fold64();
      folds.push_back(f);
      distinct.insert(f);
    }
    if (distinct.size() == folds.size()) {
      mc.sw = hash::build_switch(folds, opts_.hash_options);
    } else {
      // >64 MIMD states with colliding folds: fall back to a compare
      // chain; the executor verifies exact keys either way.
      hash::HashFn fn;
      fn.kind = hash::HashFn::Kind::Linear;
      mc.sw.fn = fn;
      mc.sw.keys = folds;
    }
    return mc;
  }

  const MetaAutomaton& aut_;
  const StateGraph& graph_;
  const ir::CostModel& cost_;
  const CodegenOptions& opts_;
};

}  // namespace

SimdProgram generate(const MetaAutomaton& automaton, const StateGraph& graph,
                     const ir::CostModel& cost, const CodegenOptions& options) {
  return Generator(automaton, graph, cost, options).run();
}

}  // namespace msc::codegen
