// SOp → host-stream translation for the codegen engine, plus the
// process-global translation cache.
//
// Translation happens per (program body, cost model), never per RunConfig:
// the per-group cycle aggregates are per-PE factors multiplied by the live
// alive/enabled counts at runtime, and memory bounds are checked against
// the executing machine's config, so one cached entry serves every
// nprocs/memory-size combination of the same automaton.
//
// The folder models qemu's tcg/optimize.c at SOp granularity: a symbolic
// `pending` stack of known constants rides on top of the real operand
// stack. Pure ops over pending constants evaluate at translation time
// (through the same ir::exec_instr / ir::eval_binary the machines use, so
// wrap/div-by-zero/float-promotion semantics cannot drift); one remaining
// constant fuses into the consuming op as an immediate (BinImm, LdLImm,
// StLImm, …); anything else materializes the constants back onto the real
// stack first. Simulated costs are always charged from the ORIGINAL ops,
// so SimdStats are bit-identical no matter how much the host stream folds.
#include "msc/codegen/translate.hpp"

#include <list>
#include <map>
#include <mutex>
#include <utility>

#include "msc/ir/exec.hpp"
#include "msc/support/metrics.hpp"

namespace msc::codegen {

namespace {

using ir::Instr;
using ir::Opcode;

/// Translation-time bus for folding pure ops; unreachable by construction.
class NullBus final : public ir::MemoryBus {
 public:
  Value mono_load(std::int64_t) override { return fault(); }
  void mono_store(std::int64_t, Value) override { fault(); }
  Value route_load(std::int64_t, std::int64_t) override { return fault(); }
  void route_store(std::int64_t, std::int64_t, Value) override { fault(); }

 private:
  static Value fault() {
    throw ir::MachineFault("translation-time bus access");
  }
};

Value fold_unary(const Instr& in, Value a) {
  static NullBus bus;
  std::vector<Value> stack{a};
  ir::PeContext ctx{ir::LocalView{}, &stack, /*proc_id=*/0, /*nprocs=*/1};
  ir::exec_instr(in, ctx, bus);
  return stack.back();
}

bool is_pure_unary(Opcode op) {
  switch (op) {
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::BitNot:
    case Opcode::CastI:
    case Opcode::CastF:
      return true;
    default:
      return false;
  }
}

bool is_pure_binary(Opcode op) {
  switch (op) {
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
    case Opcode::Div: case Opcode::Mod:
    case Opcode::Lt: case Opcode::Le: case Opcode::Gt: case Opcode::Ge:
    case Opcode::Eq: case Opcode::Ne:
    case Opcode::LAnd: case Opcode::LOr:
    case Opcode::BitAnd: case Opcode::BitOr: case Opcode::BitXor:
    case Opcode::Shl: case Opcode::Shr:
      return true;
    default:
      return false;
  }
}

/// Builds one TGroup's host stream while tracking the pending-constant
/// region on top of the (virtual) operand stack.
class GroupFolder {
 public:
  explicit GroupFolder(TGroup* g) : g_(g) {}

  void data(const Instr& in) {
    switch (in.op) {
      case Opcode::PushI:
      case Opcode::PushF:
        pending_.push_back(in.imm);
        return;
      case Opcode::Pop: {
        std::int64_t n = in.imm.i;
        if (n >= 0 && static_cast<std::size_t>(n) <= pending_.size()) {
          pending_.resize(pending_.size() - static_cast<std::size_t>(n));
          return;
        }
        break;  // may underflow the real stack: keep exact fault behaviour
      }
      case Opcode::Dup:
        if (!pending_.empty()) {
          pending_.push_back(pending_.back());
          return;
        }
        break;
      case Opcode::Swap:
        if (pending_.size() >= 2) {
          std::swap(pending_[pending_.size() - 1], pending_[pending_.size() - 2]);
          return;
        }
        break;
      case Opcode::LdL:
      case Opcode::LdM:
        if (!pending_.empty()) {
          // The loaded value lands above whatever sits under the address.
          materialize_below_top();
          Value addr = take_top();
          emit({in.op == Opcode::LdL ? TOpKind::LdLImm : TOpKind::LdMImm,
                Instr{in.op, addr}});
          return;
        }
        break;
      case Opcode::StL:
      case Opcode::StM:
        if (!pending_.empty()) {
          // Pops addr (our constant) then value (real stack top after
          // materializing the rest of the pending region).
          Value addr = take_top();
          materialize();
          emit({in.op == Opcode::StL ? TOpKind::StLImm : TOpKind::StMImm,
                Instr{in.op, addr}});
          return;
        }
        break;
      default:
        if (is_pure_unary(in.op)) {
          if (!pending_.empty()) {
            pending_.back() = fold_unary(in, pending_.back());
            return;
          }
        } else if (is_pure_binary(in.op)) {
          if (pending_.size() >= 2) {
            Value b = take_top();
            Value a = take_top();
            pending_.push_back(ir::eval_binary(in.op, a, b));
            return;
          }
          if (pending_.size() == 1) {
            // One known operand: fuse it as the second (last-pushed) one.
            Value imm = take_top();
            emit({TOpKind::BinImm, Instr{in.op, imm}});
            return;
          }
        }
        break;
    }
    materialize();
    emit({TOpKind::Exec, in});
  }

  void set_pc(ir::StateId a) { emit({TOpKind::SetPc, {}, a}); }

  void cond_set_pc(ir::StateId a, ir::StateId b) {
    if (!pending_.empty()) {
      // tcg-style branch fold: the condition is a known constant.
      Value cond = take_top();
      emit({TOpKind::SetPc, {}, cond.truthy() ? a : b});
      return;
    }
    emit({TOpKind::CondSetPc, {}, a, b});
  }

  void halt_pc() { emit({TOpKind::HaltPc, {}}); }

  void spawn_pc(ir::StateId a, ir::StateId b) {
    emit({TOpKind::SpawnPc, {}, a, b});
  }

  /// Flush remaining constants onto the real stack (group boundary).
  void finish() { materialize(); }

 private:
  void emit(TOp op) { g_->code.push_back(std::move(op)); }

  Value take_top() {
    Value v = pending_.back();
    pending_.pop_back();
    return v;
  }

  void materialize_one(const Value& v) {
    emit({v.is_float() ? TOpKind::PushF : TOpKind::PushI,
          Instr{v.is_float() ? Opcode::PushF : Opcode::PushI, v}});
  }

  void materialize() {
    for (const Value& v : pending_) materialize_one(v);
    pending_.clear();
  }

  void materialize_below_top() {
    for (std::size_t i = 0; i + 1 < pending_.size(); ++i)
      materialize_one(pending_[i]);
    if (!pending_.empty()) pending_.erase(pending_.begin(), pending_.end() - 1);
  }

  TGroup* g_;
  std::vector<Value> pending_;
};

std::int64_t op_cost(const SOp& op, const ir::CostModel& cost) {
  switch (op.kind) {
    case SOpKind::Data: return cost.instr_cost(op.instr);
    case SOpKind::SetPc: return cost.jump;
    case SOpKind::CondSetPc: return cost.branch;
    case SOpKind::HaltPc: return cost.halt;
    case SOpKind::SpawnPc: return cost.spawn;
  }
  return 0;
}

void translate_state(const MetaCode& mc, const ir::CostModel& cost,
                     TransState* out, TransProgram* prog) {
  TGroup* g = nullptr;
  std::unique_ptr<GroupFolder> folder;
  auto close_group = [&] {
    if (!g) return;
    folder->finish();
    g->control_cost = cost.guard_switch + g->cost_sum;
    prog->host_ops += static_cast<std::int64_t>(g->code.size());
    g = nullptr;
    folder.reset();
  };
  for (const SOp& op : mc.code) {
    // Maximal same-guard runs: new_guard marks exactly the enable-mask
    // reprogramming boundaries both interpretive engines charge for.
    if (op.new_guard || !g) {
      close_group();
      out->groups.emplace_back();
      g = &out->groups.back();
      g->guard_states = op.guard_states;
      folder = std::make_unique<GroupFolder>(g);
    }
    ++prog->source_ops;
    g->cost_sum += op_cost(op, cost);
    switch (op.kind) {
      case SOpKind::Data: folder->data(op.instr); break;
      case SOpKind::SetPc: folder->set_pc(op.a); break;
      case SOpKind::CondSetPc: folder->cond_set_pc(op.a, op.b); break;
      case SOpKind::HaltPc: folder->halt_pc(); break;
      case SOpKind::SpawnPc: folder->spawn_pc(op.a, op.b); break;
    }
  }
  close_group();
}

TransProgram translate_uncached(const SimdProgram& prog,
                                const ir::CostModel& cost) {
  TransProgram out;
  out.states.resize(prog.states.size());
  for (std::size_t i = 0; i < prog.states.size(); ++i)
    translate_state(prog.states[i], cost, &out.states[i], &out);
  return out;
}

// ---------------------------------------------------------------------------
// Cache keying: two independent 64-bit structural hashes over everything
// execution-relevant in the program body plus the cost model. Two streams
// (FNV-1a and a splitmix64 accumulator) make an accidental collision — which
// would silently execute the wrong translation — a ~2^-128 event.

struct Key {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool operator<(const Key& o) const {
    return a != o.a ? a < o.a : b < o.b;
  }
};

struct Hasher {
  std::uint64_t a = 1469598103934665603ull;  // FNV-1a offset basis
  std::uint64_t b = 0x243F6A8885A308D3ull;

  void mix(std::uint64_t v) {
    a = (a ^ v) * 1099511628211ull;  // FNV-1a prime
    std::uint64_t x = b + v + 0x9E3779B97F4A7C15ull;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    b = x;
  }
  void mix_value(const Value& v) {
    mix(static_cast<std::uint64_t>(v.kind));
    mix(static_cast<std::uint64_t>(v.i));
    std::uint64_t f;
    static_assert(sizeof f == sizeof v.f);
    __builtin_memcpy(&f, &v.f, sizeof f);
    mix(f);
  }
  Key key() const { return {a, b}; }
};

Key cache_key(const SimdProgram& prog, const ir::CostModel& cost) {
  Hasher h;
  h.mix(prog.mimd_states);
  h.mix(prog.states.size());
  for (const MetaCode& mc : prog.states) {
    h.mix(mc.id);
    h.mix(mc.code.size());
    for (const SOp& op : mc.code) {
      h.mix(static_cast<std::uint64_t>(op.kind));
      h.mix(op.new_guard);
      h.mix(op.guard_states.size());
      for (ir::StateId s : op.guard_states) h.mix(s);
      h.mix(static_cast<std::uint64_t>(op.instr.op));
      h.mix_value(op.instr.imm);
      h.mix(op.a);
      h.mix(op.b);
    }
  }
  for (std::int64_t c :
       {cost.push, cost.pop, cost.dup, cost.ld_local, cost.st_local,
        cost.ld_mono, cost.st_mono, cost.route, cost.alu, cost.mul, cost.div,
        cost.cast, cost.query, cost.jump, cost.branch, cost.halt, cost.spawn,
        cost.guard_switch})
    h.mix(static_cast<std::uint64_t>(c));
  return h.key();
}

struct CacheEntry {
  Key key;
  std::shared_ptr<const TransProgram> prog;
};

struct Cache {
  /// Bounds host memory across long fuzzing sessions; 16 comfortably holds
  /// a differential matrix's distinct (pipeline, cost) combinations.
  static constexpr std::size_t kCapacity = 16;
  std::mutex mu;
  std::list<CacheEntry> lru;  // front = most recently used
  TranslationCacheStats stats;
};

Cache& cache() {
  static Cache c;
  return c;
}

}  // namespace

std::shared_ptr<const TransProgram> translate(const SimdProgram& prog,
                                              const ir::CostModel& cost) {
  using telemetry::Counter;
  using telemetry::MetricsRegistry;
  static Counter& hits_metric =
      MetricsRegistry::global().counter("codegen.trans_cache_hits");
  static Counter& misses_metric =
      MetricsRegistry::global().counter("codegen.trans_cache_misses");

  const Key key = cache_key(prog, cost);
  Cache& c = cache();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    for (auto it = c.lru.begin(); it != c.lru.end(); ++it) {
      if (!(it->key < key) && !(key < it->key)) {
        c.lru.splice(c.lru.begin(), c.lru, it);
        ++c.stats.hits;
        hits_metric.add();
        return c.lru.front().prog;
      }
    }
  }
  // Translate outside the lock (pure function of the inputs: concurrent
  // misses of the same key do redundant work but agree on the result).
  auto trans = std::make_shared<const TransProgram>(translate_uncached(prog, cost));
  std::lock_guard<std::mutex> lock(c.mu);
  ++c.stats.misses;
  misses_metric.add();
  c.lru.push_front({key, trans});
  if (c.lru.size() > Cache::kCapacity) {
    c.lru.pop_back();
    ++c.stats.evictions;
  }
  c.stats.entries = static_cast<std::int64_t>(c.lru.size());
  return trans;
}

TranslationCacheStats translation_cache_stats() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  TranslationCacheStats s = c.stats;
  s.entries = static_cast<std::int64_t>(c.lru.size());
  return s;
}

void translation_cache_clear() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.lru.clear();
  c.stats = {};
}

}  // namespace msc::codegen
